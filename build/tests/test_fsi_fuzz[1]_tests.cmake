add_test([=[FsiFuzz.RandomConfigurationsAllMatchDenseInverses]=]  /root/repo/build/tests/test_fsi_fuzz [==[--gtest_filter=FsiFuzz.RandomConfigurationsAllMatchDenseInverses]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[FsiFuzz.RandomConfigurationsAllMatchDenseInverses]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_fsi_fuzz_TESTS FsiFuzz.RandomConfigurationsAllMatchDenseInverses)
