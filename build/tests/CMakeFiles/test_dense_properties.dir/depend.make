# Empty dependencies file for test_dense_properties.
# This may be replaced when dependencies are built.
