file(REMOVE_RECURSE
  "CMakeFiles/test_dense_properties.dir/test_dense_properties.cpp.o"
  "CMakeFiles/test_dense_properties.dir/test_dense_properties.cpp.o.d"
  "test_dense_properties"
  "test_dense_properties.pdb"
  "test_dense_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
