# Empty compiler generated dependencies file for test_bsofi.
# This may be replaced when dependencies are built.
