file(REMOVE_RECURSE
  "CMakeFiles/test_bsofi.dir/test_bsofi.cpp.o"
  "CMakeFiles/test_bsofi.dir/test_bsofi.cpp.o.d"
  "test_bsofi"
  "test_bsofi.pdb"
  "test_bsofi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bsofi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
