file(REMOVE_RECURSE
  "CMakeFiles/test_selinv_errors.dir/test_selinv_errors.cpp.o"
  "CMakeFiles/test_selinv_errors.dir/test_selinv_errors.cpp.o.d"
  "test_selinv_errors"
  "test_selinv_errors.pdb"
  "test_selinv_errors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selinv_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
