# Empty compiler generated dependencies file for test_selinv_errors.
# This may be replaced when dependencies are built.
