file(REMOVE_RECURSE
  "CMakeFiles/test_dense_lu_rect.dir/test_dense_lu_rect.cpp.o"
  "CMakeFiles/test_dense_lu_rect.dir/test_dense_lu_rect.cpp.o.d"
  "test_dense_lu_rect"
  "test_dense_lu_rect.pdb"
  "test_dense_lu_rect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_lu_rect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
