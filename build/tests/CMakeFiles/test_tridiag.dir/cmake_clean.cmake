file(REMOVE_RECURSE
  "CMakeFiles/test_tridiag.dir/test_tridiag.cpp.o"
  "CMakeFiles/test_tridiag.dir/test_tridiag.cpp.o.d"
  "test_tridiag"
  "test_tridiag.pdb"
  "test_tridiag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tridiag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
