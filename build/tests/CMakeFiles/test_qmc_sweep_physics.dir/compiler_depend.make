# Empty compiler generated dependencies file for test_qmc_sweep_physics.
# This may be replaced when dependencies are built.
