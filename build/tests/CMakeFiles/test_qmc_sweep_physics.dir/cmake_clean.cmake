file(REMOVE_RECURSE
  "CMakeFiles/test_qmc_sweep_physics.dir/test_qmc_sweep_physics.cpp.o"
  "CMakeFiles/test_qmc_sweep_physics.dir/test_qmc_sweep_physics.cpp.o.d"
  "test_qmc_sweep_physics"
  "test_qmc_sweep_physics.pdb"
  "test_qmc_sweep_physics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qmc_sweep_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
