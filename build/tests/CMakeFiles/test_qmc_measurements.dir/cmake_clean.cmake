file(REMOVE_RECURSE
  "CMakeFiles/test_qmc_measurements.dir/test_qmc_measurements.cpp.o"
  "CMakeFiles/test_qmc_measurements.dir/test_qmc_measurements.cpp.o.d"
  "test_qmc_measurements"
  "test_qmc_measurements.pdb"
  "test_qmc_measurements[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qmc_measurements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
