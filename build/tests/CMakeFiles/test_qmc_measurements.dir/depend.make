# Empty dependencies file for test_qmc_measurements.
# This may be replaced when dependencies are built.
