file(REMOVE_RECURSE
  "CMakeFiles/test_dense_expm.dir/test_dense_expm.cpp.o"
  "CMakeFiles/test_dense_expm.dir/test_dense_expm.cpp.o.d"
  "test_dense_expm"
  "test_dense_expm.pdb"
  "test_dense_expm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_expm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
