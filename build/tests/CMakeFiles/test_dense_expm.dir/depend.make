# Empty dependencies file for test_dense_expm.
# This may be replaced when dependencies are built.
