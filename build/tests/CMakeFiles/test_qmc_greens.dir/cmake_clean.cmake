file(REMOVE_RECURSE
  "CMakeFiles/test_qmc_greens.dir/test_qmc_greens.cpp.o"
  "CMakeFiles/test_qmc_greens.dir/test_qmc_greens.cpp.o.d"
  "test_qmc_greens"
  "test_qmc_greens.pdb"
  "test_qmc_greens[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qmc_greens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
