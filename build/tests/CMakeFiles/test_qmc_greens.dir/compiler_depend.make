# Empty compiler generated dependencies file for test_qmc_greens.
# This may be replaced when dependencies are built.
