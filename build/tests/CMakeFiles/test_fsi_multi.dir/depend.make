# Empty dependencies file for test_fsi_multi.
# This may be replaced when dependencies are built.
