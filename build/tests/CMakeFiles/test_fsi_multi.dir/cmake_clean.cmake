file(REMOVE_RECURSE
  "CMakeFiles/test_fsi_multi.dir/test_fsi_multi.cpp.o"
  "CMakeFiles/test_fsi_multi.dir/test_fsi_multi.cpp.o.d"
  "test_fsi_multi"
  "test_fsi_multi.pdb"
  "test_fsi_multi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsi_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
