# Empty dependencies file for test_qmc_dqmc.
# This may be replaced when dependencies are built.
