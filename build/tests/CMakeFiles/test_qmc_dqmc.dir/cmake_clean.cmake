file(REMOVE_RECURSE
  "CMakeFiles/test_qmc_dqmc.dir/test_qmc_dqmc.cpp.o"
  "CMakeFiles/test_qmc_dqmc.dir/test_qmc_dqmc.cpp.o.d"
  "test_qmc_dqmc"
  "test_qmc_dqmc.pdb"
  "test_qmc_dqmc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qmc_dqmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
