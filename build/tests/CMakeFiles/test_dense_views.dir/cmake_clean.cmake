file(REMOVE_RECURSE
  "CMakeFiles/test_dense_views.dir/test_dense_views.cpp.o"
  "CMakeFiles/test_dense_views.dir/test_dense_views.cpp.o.d"
  "test_dense_views"
  "test_dense_views.pdb"
  "test_dense_views[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
