# Empty compiler generated dependencies file for test_dense_views.
# This may be replaced when dependencies are built.
