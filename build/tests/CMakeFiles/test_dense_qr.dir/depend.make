# Empty dependencies file for test_dense_qr.
# This may be replaced when dependencies are built.
