file(REMOVE_RECURSE
  "CMakeFiles/test_dense_qr.dir/test_dense_qr.cpp.o"
  "CMakeFiles/test_dense_qr.dir/test_dense_qr.cpp.o.d"
  "test_dense_qr"
  "test_dense_qr.pdb"
  "test_dense_qr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_qr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
