file(REMOVE_RECURSE
  "CMakeFiles/test_fsi.dir/test_fsi.cpp.o"
  "CMakeFiles/test_fsi.dir/test_fsi.cpp.o.d"
  "test_fsi"
  "test_fsi.pdb"
  "test_fsi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
