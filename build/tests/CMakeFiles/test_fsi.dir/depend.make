# Empty dependencies file for test_fsi.
# This may be replaced when dependencies are built.
