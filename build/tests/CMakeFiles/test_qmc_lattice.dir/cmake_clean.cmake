file(REMOVE_RECURSE
  "CMakeFiles/test_qmc_lattice.dir/test_qmc_lattice.cpp.o"
  "CMakeFiles/test_qmc_lattice.dir/test_qmc_lattice.cpp.o.d"
  "test_qmc_lattice"
  "test_qmc_lattice.pdb"
  "test_qmc_lattice[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qmc_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
