# Empty compiler generated dependencies file for test_qmc_lattice.
# This may be replaced when dependencies are built.
