# Empty dependencies file for test_dense_blas.
# This may be replaced when dependencies are built.
