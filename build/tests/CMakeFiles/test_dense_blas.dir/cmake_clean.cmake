file(REMOVE_RECURSE
  "CMakeFiles/test_dense_blas.dir/test_dense_blas.cpp.o"
  "CMakeFiles/test_dense_blas.dir/test_dense_blas.cpp.o.d"
  "test_dense_blas"
  "test_dense_blas.pdb"
  "test_dense_blas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
