file(REMOVE_RECURSE
  "CMakeFiles/test_qmc_hubbard.dir/test_qmc_hubbard.cpp.o"
  "CMakeFiles/test_qmc_hubbard.dir/test_qmc_hubbard.cpp.o.d"
  "test_qmc_hubbard"
  "test_qmc_hubbard.pdb"
  "test_qmc_hubbard[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qmc_hubbard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
