# Empty dependencies file for test_qmc_hubbard.
# This may be replaced when dependencies are built.
