file(REMOVE_RECURSE
  "CMakeFiles/test_qmc_binning.dir/test_qmc_binning.cpp.o"
  "CMakeFiles/test_qmc_binning.dir/test_qmc_binning.cpp.o.d"
  "test_qmc_binning"
  "test_qmc_binning.pdb"
  "test_qmc_binning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qmc_binning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
