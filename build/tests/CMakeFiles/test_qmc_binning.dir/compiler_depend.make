# Empty compiler generated dependencies file for test_qmc_binning.
# This may be replaced when dependencies are built.
