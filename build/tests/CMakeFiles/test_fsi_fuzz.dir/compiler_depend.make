# Empty compiler generated dependencies file for test_fsi_fuzz.
# This may be replaced when dependencies are built.
