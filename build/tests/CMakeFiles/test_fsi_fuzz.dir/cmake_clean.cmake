file(REMOVE_RECURSE
  "CMakeFiles/test_fsi_fuzz.dir/test_fsi_fuzz.cpp.o"
  "CMakeFiles/test_fsi_fuzz.dir/test_fsi_fuzz.cpp.o.d"
  "test_fsi_fuzz"
  "test_fsi_fuzz.pdb"
  "test_fsi_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsi_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
