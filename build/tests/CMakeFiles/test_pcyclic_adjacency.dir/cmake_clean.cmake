file(REMOVE_RECURSE
  "CMakeFiles/test_pcyclic_adjacency.dir/test_pcyclic_adjacency.cpp.o"
  "CMakeFiles/test_pcyclic_adjacency.dir/test_pcyclic_adjacency.cpp.o.d"
  "test_pcyclic_adjacency"
  "test_pcyclic_adjacency.pdb"
  "test_pcyclic_adjacency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcyclic_adjacency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
