# Empty dependencies file for test_pcyclic_adjacency.
# This may be replaced when dependencies are built.
