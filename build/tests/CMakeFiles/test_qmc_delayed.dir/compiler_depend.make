# Empty compiler generated dependencies file for test_qmc_delayed.
# This may be replaced when dependencies are built.
