
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_qmc_delayed.cpp" "tests/CMakeFiles/test_qmc_delayed.dir/test_qmc_delayed.cpp.o" "gcc" "tests/CMakeFiles/test_qmc_delayed.dir/test_qmc_delayed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qmc/CMakeFiles/fsi_qmc.dir/DependInfo.cmake"
  "/root/repo/build/src/fsi/CMakeFiles/fsi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/fsi_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/bsofi/CMakeFiles/fsi_bsofi.dir/DependInfo.cmake"
  "/root/repo/build/src/pcyclic/CMakeFiles/fsi_pcyclic.dir/DependInfo.cmake"
  "/root/repo/build/src/dense/CMakeFiles/fsi_dense.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fsi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
