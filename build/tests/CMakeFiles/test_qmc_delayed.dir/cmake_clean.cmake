file(REMOVE_RECURSE
  "CMakeFiles/test_qmc_delayed.dir/test_qmc_delayed.cpp.o"
  "CMakeFiles/test_qmc_delayed.dir/test_qmc_delayed.cpp.o.d"
  "test_qmc_delayed"
  "test_qmc_delayed.pdb"
  "test_qmc_delayed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qmc_delayed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
