file(REMOVE_RECURSE
  "CMakeFiles/test_pcyclic.dir/test_pcyclic.cpp.o"
  "CMakeFiles/test_pcyclic.dir/test_pcyclic.cpp.o.d"
  "test_pcyclic"
  "test_pcyclic.pdb"
  "test_pcyclic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcyclic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
