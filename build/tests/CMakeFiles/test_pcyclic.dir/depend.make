# Empty dependencies file for test_pcyclic.
# This may be replaced when dependencies are built.
