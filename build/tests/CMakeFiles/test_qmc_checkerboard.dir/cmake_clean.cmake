file(REMOVE_RECURSE
  "CMakeFiles/test_qmc_checkerboard.dir/test_qmc_checkerboard.cpp.o"
  "CMakeFiles/test_qmc_checkerboard.dir/test_qmc_checkerboard.cpp.o.d"
  "test_qmc_checkerboard"
  "test_qmc_checkerboard.pdb"
  "test_qmc_checkerboard[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qmc_checkerboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
