# Empty compiler generated dependencies file for test_qmc_checkerboard.
# This may be replaced when dependencies are built.
