file(REMOVE_RECURSE
  "CMakeFiles/test_fpenv.dir/test_fpenv.cpp.o"
  "CMakeFiles/test_fpenv.dir/test_fpenv.cpp.o.d"
  "test_fpenv"
  "test_fpenv.pdb"
  "test_fpenv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpenv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
