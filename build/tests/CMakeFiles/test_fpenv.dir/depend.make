# Empty dependencies file for test_fpenv.
# This may be replaced when dependencies are built.
