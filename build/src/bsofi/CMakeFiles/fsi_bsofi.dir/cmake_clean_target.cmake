file(REMOVE_RECURSE
  "libfsi_bsofi.a"
)
