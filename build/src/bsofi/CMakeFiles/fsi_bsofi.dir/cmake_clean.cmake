file(REMOVE_RECURSE
  "CMakeFiles/fsi_bsofi.dir/bsofi.cpp.o"
  "CMakeFiles/fsi_bsofi.dir/bsofi.cpp.o.d"
  "libfsi_bsofi.a"
  "libfsi_bsofi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsi_bsofi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
