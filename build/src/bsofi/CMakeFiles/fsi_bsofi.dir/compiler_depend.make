# Empty compiler generated dependencies file for fsi_bsofi.
# This may be replaced when dependencies are built.
