file(REMOVE_RECURSE
  "libfsi_pcyclic.a"
)
