file(REMOVE_RECURSE
  "CMakeFiles/fsi_pcyclic.dir/adjacency.cpp.o"
  "CMakeFiles/fsi_pcyclic.dir/adjacency.cpp.o.d"
  "CMakeFiles/fsi_pcyclic.dir/explicit_inverse.cpp.o"
  "CMakeFiles/fsi_pcyclic.dir/explicit_inverse.cpp.o.d"
  "CMakeFiles/fsi_pcyclic.dir/patterns.cpp.o"
  "CMakeFiles/fsi_pcyclic.dir/patterns.cpp.o.d"
  "CMakeFiles/fsi_pcyclic.dir/pcyclic.cpp.o"
  "CMakeFiles/fsi_pcyclic.dir/pcyclic.cpp.o.d"
  "libfsi_pcyclic.a"
  "libfsi_pcyclic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsi_pcyclic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
