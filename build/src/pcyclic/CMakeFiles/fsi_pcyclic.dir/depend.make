# Empty dependencies file for fsi_pcyclic.
# This may be replaced when dependencies are built.
