# Empty compiler generated dependencies file for fsi_pcyclic.
# This may be replaced when dependencies are built.
