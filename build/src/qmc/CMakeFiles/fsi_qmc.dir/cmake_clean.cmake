file(REMOVE_RECURSE
  "CMakeFiles/fsi_qmc.dir/binning.cpp.o"
  "CMakeFiles/fsi_qmc.dir/binning.cpp.o.d"
  "CMakeFiles/fsi_qmc.dir/checkerboard.cpp.o"
  "CMakeFiles/fsi_qmc.dir/checkerboard.cpp.o.d"
  "CMakeFiles/fsi_qmc.dir/dqmc.cpp.o"
  "CMakeFiles/fsi_qmc.dir/dqmc.cpp.o.d"
  "CMakeFiles/fsi_qmc.dir/greens.cpp.o"
  "CMakeFiles/fsi_qmc.dir/greens.cpp.o.d"
  "CMakeFiles/fsi_qmc.dir/hubbard.cpp.o"
  "CMakeFiles/fsi_qmc.dir/hubbard.cpp.o.d"
  "CMakeFiles/fsi_qmc.dir/lattice.cpp.o"
  "CMakeFiles/fsi_qmc.dir/lattice.cpp.o.d"
  "CMakeFiles/fsi_qmc.dir/measurements.cpp.o"
  "CMakeFiles/fsi_qmc.dir/measurements.cpp.o.d"
  "CMakeFiles/fsi_qmc.dir/multi_gf.cpp.o"
  "CMakeFiles/fsi_qmc.dir/multi_gf.cpp.o.d"
  "libfsi_qmc.a"
  "libfsi_qmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsi_qmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
