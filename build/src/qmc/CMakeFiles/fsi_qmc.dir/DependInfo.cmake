
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qmc/binning.cpp" "src/qmc/CMakeFiles/fsi_qmc.dir/binning.cpp.o" "gcc" "src/qmc/CMakeFiles/fsi_qmc.dir/binning.cpp.o.d"
  "/root/repo/src/qmc/checkerboard.cpp" "src/qmc/CMakeFiles/fsi_qmc.dir/checkerboard.cpp.o" "gcc" "src/qmc/CMakeFiles/fsi_qmc.dir/checkerboard.cpp.o.d"
  "/root/repo/src/qmc/dqmc.cpp" "src/qmc/CMakeFiles/fsi_qmc.dir/dqmc.cpp.o" "gcc" "src/qmc/CMakeFiles/fsi_qmc.dir/dqmc.cpp.o.d"
  "/root/repo/src/qmc/greens.cpp" "src/qmc/CMakeFiles/fsi_qmc.dir/greens.cpp.o" "gcc" "src/qmc/CMakeFiles/fsi_qmc.dir/greens.cpp.o.d"
  "/root/repo/src/qmc/hubbard.cpp" "src/qmc/CMakeFiles/fsi_qmc.dir/hubbard.cpp.o" "gcc" "src/qmc/CMakeFiles/fsi_qmc.dir/hubbard.cpp.o.d"
  "/root/repo/src/qmc/lattice.cpp" "src/qmc/CMakeFiles/fsi_qmc.dir/lattice.cpp.o" "gcc" "src/qmc/CMakeFiles/fsi_qmc.dir/lattice.cpp.o.d"
  "/root/repo/src/qmc/measurements.cpp" "src/qmc/CMakeFiles/fsi_qmc.dir/measurements.cpp.o" "gcc" "src/qmc/CMakeFiles/fsi_qmc.dir/measurements.cpp.o.d"
  "/root/repo/src/qmc/multi_gf.cpp" "src/qmc/CMakeFiles/fsi_qmc.dir/multi_gf.cpp.o" "gcc" "src/qmc/CMakeFiles/fsi_qmc.dir/multi_gf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsi/CMakeFiles/fsi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/fsi_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/bsofi/CMakeFiles/fsi_bsofi.dir/DependInfo.cmake"
  "/root/repo/build/src/pcyclic/CMakeFiles/fsi_pcyclic.dir/DependInfo.cmake"
  "/root/repo/build/src/dense/CMakeFiles/fsi_dense.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fsi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
