file(REMOVE_RECURSE
  "libfsi_qmc.a"
)
