# Empty dependencies file for fsi_qmc.
# This may be replaced when dependencies are built.
