# Empty compiler generated dependencies file for fsi_qmc.
# This may be replaced when dependencies are built.
