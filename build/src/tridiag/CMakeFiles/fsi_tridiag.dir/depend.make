# Empty dependencies file for fsi_tridiag.
# This may be replaced when dependencies are built.
