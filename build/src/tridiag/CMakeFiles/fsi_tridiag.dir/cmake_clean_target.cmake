file(REMOVE_RECURSE
  "libfsi_tridiag.a"
)
