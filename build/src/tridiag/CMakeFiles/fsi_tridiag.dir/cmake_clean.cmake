file(REMOVE_RECURSE
  "CMakeFiles/fsi_tridiag.dir/tridiag.cpp.o"
  "CMakeFiles/fsi_tridiag.dir/tridiag.cpp.o.d"
  "libfsi_tridiag.a"
  "libfsi_tridiag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsi_tridiag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
