# Empty dependencies file for fsi_core.
# This may be replaced when dependencies are built.
