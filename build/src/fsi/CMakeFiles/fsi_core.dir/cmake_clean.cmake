file(REMOVE_RECURSE
  "CMakeFiles/fsi_core.dir/fsi.cpp.o"
  "CMakeFiles/fsi_core.dir/fsi.cpp.o.d"
  "CMakeFiles/fsi_core.dir/perfmodel.cpp.o"
  "CMakeFiles/fsi_core.dir/perfmodel.cpp.o.d"
  "libfsi_core.a"
  "libfsi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
