file(REMOVE_RECURSE
  "libfsi_core.a"
)
