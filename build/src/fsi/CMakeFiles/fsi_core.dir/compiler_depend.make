# Empty compiler generated dependencies file for fsi_core.
# This may be replaced when dependencies are built.
