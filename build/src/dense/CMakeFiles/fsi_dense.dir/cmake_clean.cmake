file(REMOVE_RECURSE
  "CMakeFiles/fsi_dense.dir/blas12.cpp.o"
  "CMakeFiles/fsi_dense.dir/blas12.cpp.o.d"
  "CMakeFiles/fsi_dense.dir/expm.cpp.o"
  "CMakeFiles/fsi_dense.dir/expm.cpp.o.d"
  "CMakeFiles/fsi_dense.dir/gemm.cpp.o"
  "CMakeFiles/fsi_dense.dir/gemm.cpp.o.d"
  "CMakeFiles/fsi_dense.dir/lu.cpp.o"
  "CMakeFiles/fsi_dense.dir/lu.cpp.o.d"
  "CMakeFiles/fsi_dense.dir/matrix.cpp.o"
  "CMakeFiles/fsi_dense.dir/matrix.cpp.o.d"
  "CMakeFiles/fsi_dense.dir/norms.cpp.o"
  "CMakeFiles/fsi_dense.dir/norms.cpp.o.d"
  "CMakeFiles/fsi_dense.dir/qr.cpp.o"
  "CMakeFiles/fsi_dense.dir/qr.cpp.o.d"
  "CMakeFiles/fsi_dense.dir/triangular.cpp.o"
  "CMakeFiles/fsi_dense.dir/triangular.cpp.o.d"
  "libfsi_dense.a"
  "libfsi_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsi_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
