
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dense/blas12.cpp" "src/dense/CMakeFiles/fsi_dense.dir/blas12.cpp.o" "gcc" "src/dense/CMakeFiles/fsi_dense.dir/blas12.cpp.o.d"
  "/root/repo/src/dense/expm.cpp" "src/dense/CMakeFiles/fsi_dense.dir/expm.cpp.o" "gcc" "src/dense/CMakeFiles/fsi_dense.dir/expm.cpp.o.d"
  "/root/repo/src/dense/gemm.cpp" "src/dense/CMakeFiles/fsi_dense.dir/gemm.cpp.o" "gcc" "src/dense/CMakeFiles/fsi_dense.dir/gemm.cpp.o.d"
  "/root/repo/src/dense/lu.cpp" "src/dense/CMakeFiles/fsi_dense.dir/lu.cpp.o" "gcc" "src/dense/CMakeFiles/fsi_dense.dir/lu.cpp.o.d"
  "/root/repo/src/dense/matrix.cpp" "src/dense/CMakeFiles/fsi_dense.dir/matrix.cpp.o" "gcc" "src/dense/CMakeFiles/fsi_dense.dir/matrix.cpp.o.d"
  "/root/repo/src/dense/norms.cpp" "src/dense/CMakeFiles/fsi_dense.dir/norms.cpp.o" "gcc" "src/dense/CMakeFiles/fsi_dense.dir/norms.cpp.o.d"
  "/root/repo/src/dense/qr.cpp" "src/dense/CMakeFiles/fsi_dense.dir/qr.cpp.o" "gcc" "src/dense/CMakeFiles/fsi_dense.dir/qr.cpp.o.d"
  "/root/repo/src/dense/triangular.cpp" "src/dense/CMakeFiles/fsi_dense.dir/triangular.cpp.o" "gcc" "src/dense/CMakeFiles/fsi_dense.dir/triangular.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fsi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
