# Empty dependencies file for fsi_dense.
# This may be replaced when dependencies are built.
