file(REMOVE_RECURSE
  "libfsi_dense.a"
)
