file(REMOVE_RECURSE
  "CMakeFiles/fsi_io.dir/binary_io.cpp.o"
  "CMakeFiles/fsi_io.dir/binary_io.cpp.o.d"
  "libfsi_io.a"
  "libfsi_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsi_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
