file(REMOVE_RECURSE
  "libfsi_io.a"
)
