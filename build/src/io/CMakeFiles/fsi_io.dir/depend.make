# Empty dependencies file for fsi_io.
# This may be replaced when dependencies are built.
