file(REMOVE_RECURSE
  "libfsi_util.a"
)
