# Empty dependencies file for fsi_util.
# This may be replaced when dependencies are built.
