file(REMOVE_RECURSE
  "CMakeFiles/fsi_util.dir/cli.cpp.o"
  "CMakeFiles/fsi_util.dir/cli.cpp.o.d"
  "CMakeFiles/fsi_util.dir/flops.cpp.o"
  "CMakeFiles/fsi_util.dir/flops.cpp.o.d"
  "CMakeFiles/fsi_util.dir/fpenv.cpp.o"
  "CMakeFiles/fsi_util.dir/fpenv.cpp.o.d"
  "CMakeFiles/fsi_util.dir/table.cpp.o"
  "CMakeFiles/fsi_util.dir/table.cpp.o.d"
  "libfsi_util.a"
  "libfsi_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsi_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
