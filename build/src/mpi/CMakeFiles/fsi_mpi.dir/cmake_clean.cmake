file(REMOVE_RECURSE
  "CMakeFiles/fsi_mpi.dir/edison_model.cpp.o"
  "CMakeFiles/fsi_mpi.dir/edison_model.cpp.o.d"
  "CMakeFiles/fsi_mpi.dir/minimpi.cpp.o"
  "CMakeFiles/fsi_mpi.dir/minimpi.cpp.o.d"
  "libfsi_mpi.a"
  "libfsi_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsi_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
