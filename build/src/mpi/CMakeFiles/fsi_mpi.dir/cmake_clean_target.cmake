file(REMOVE_RECURSE
  "libfsi_mpi.a"
)
