# Empty compiler generated dependencies file for fsi_mpi.
# This may be replaced when dependencies are built.
