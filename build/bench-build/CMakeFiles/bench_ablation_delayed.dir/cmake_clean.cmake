file(REMOVE_RECURSE
  "../bench/bench_ablation_delayed"
  "../bench/bench_ablation_delayed.pdb"
  "CMakeFiles/bench_ablation_delayed.dir/bench_ablation_delayed.cpp.o"
  "CMakeFiles/bench_ablation_delayed.dir/bench_ablation_delayed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_delayed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
