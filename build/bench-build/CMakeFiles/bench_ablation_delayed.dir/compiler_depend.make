# Empty compiler generated dependencies file for bench_ablation_delayed.
# This may be replaced when dependencies are built.
