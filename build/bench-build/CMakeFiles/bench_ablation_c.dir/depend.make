# Empty dependencies file for bench_ablation_c.
# This may be replaced when dependencies are built.
