file(REMOVE_RECURSE
  "../bench/bench_ablation_c"
  "../bench/bench_ablation_c.pdb"
  "CMakeFiles/bench_ablation_c.dir/bench_ablation_c.cpp.o"
  "CMakeFiles/bench_ablation_c.dir/bench_ablation_c.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
