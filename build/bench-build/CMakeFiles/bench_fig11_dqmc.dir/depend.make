# Empty dependencies file for bench_fig11_dqmc.
# This may be replaced when dependencies are built.
