file(REMOVE_RECURSE
  "../bench/bench_fig11_dqmc"
  "../bench/bench_fig11_dqmc.pdb"
  "CMakeFiles/bench_fig11_dqmc.dir/bench_fig11_dqmc.cpp.o"
  "CMakeFiles/bench_fig11_dqmc.dir/bench_fig11_dqmc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_dqmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
