file(REMOVE_RECURSE
  "../bench/bench_patterns"
  "../bench/bench_patterns.pdb"
  "CMakeFiles/bench_patterns.dir/bench_patterns.cpp.o"
  "CMakeFiles/bench_patterns.dir/bench_patterns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
