file(REMOVE_RECURSE
  "../bench/bench_complexity"
  "../bench/bench_complexity.pdb"
  "CMakeFiles/bench_complexity.dir/bench_complexity.cpp.o"
  "CMakeFiles/bench_complexity.dir/bench_complexity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
