# Empty compiler generated dependencies file for bench_ablation_reduced_inv.
# This may be replaced when dependencies are built.
