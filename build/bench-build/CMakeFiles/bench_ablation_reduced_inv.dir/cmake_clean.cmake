file(REMOVE_RECURSE
  "../bench/bench_ablation_reduced_inv"
  "../bench/bench_ablation_reduced_inv.pdb"
  "CMakeFiles/bench_ablation_reduced_inv.dir/bench_ablation_reduced_inv.cpp.o"
  "CMakeFiles/bench_ablation_reduced_inv.dir/bench_ablation_reduced_inv.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reduced_inv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
