# Empty dependencies file for bench_dense.
# This may be replaced when dependencies are built.
