file(REMOVE_RECURSE
  "../bench/bench_dense"
  "../bench/bench_dense.pdb"
  "CMakeFiles/bench_dense.dir/bench_dense.cpp.o"
  "CMakeFiles/bench_dense.dir/bench_dense.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
