# Empty dependencies file for bench_tridiag.
# This may be replaced when dependencies are built.
