file(REMOVE_RECURSE
  "../bench/bench_tridiag"
  "../bench/bench_tridiag.pdb"
  "CMakeFiles/bench_tridiag.dir/bench_tridiag.cpp.o"
  "CMakeFiles/bench_tridiag.dir/bench_tridiag.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tridiag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
