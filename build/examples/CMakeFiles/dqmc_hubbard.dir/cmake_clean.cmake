file(REMOVE_RECURSE
  "CMakeFiles/dqmc_hubbard.dir/dqmc_hubbard.cpp.o"
  "CMakeFiles/dqmc_hubbard.dir/dqmc_hubbard.cpp.o.d"
  "dqmc_hubbard"
  "dqmc_hubbard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqmc_hubbard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
