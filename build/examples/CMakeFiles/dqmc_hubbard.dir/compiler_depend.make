# Empty compiler generated dependencies file for dqmc_hubbard.
# This may be replaced when dependencies are built.
