file(REMOVE_RECURSE
  "CMakeFiles/manygf_hybrid.dir/manygf_hybrid.cpp.o"
  "CMakeFiles/manygf_hybrid.dir/manygf_hybrid.cpp.o.d"
  "manygf_hybrid"
  "manygf_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manygf_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
