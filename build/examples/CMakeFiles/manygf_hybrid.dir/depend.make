# Empty dependencies file for manygf_hybrid.
# This may be replaced when dependencies are built.
