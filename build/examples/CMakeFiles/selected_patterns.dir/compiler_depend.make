# Empty compiler generated dependencies file for selected_patterns.
# This may be replaced when dependencies are built.
