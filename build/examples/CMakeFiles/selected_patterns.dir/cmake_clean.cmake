file(REMOVE_RECURSE
  "CMakeFiles/selected_patterns.dir/selected_patterns.cpp.o"
  "CMakeFiles/selected_patterns.dir/selected_patterns.cpp.o.d"
  "selected_patterns"
  "selected_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selected_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
