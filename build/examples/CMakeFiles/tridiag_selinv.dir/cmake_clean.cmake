file(REMOVE_RECURSE
  "CMakeFiles/tridiag_selinv.dir/tridiag_selinv.cpp.o"
  "CMakeFiles/tridiag_selinv.dir/tridiag_selinv.cpp.o.d"
  "tridiag_selinv"
  "tridiag_selinv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tridiag_selinv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
