# Empty compiler generated dependencies file for tridiag_selinv.
# This may be replaced when dependencies are built.
