/// \file checkpoint_restart.cpp
/// \brief Checkpoint / restart of a DQMC measurement campaign.
///
/// Production QMC campaigns (the paper's "hundreds of millions of core
/// hours") run in many short allocations: each job loads the previous
/// Hubbard-Stratonovich configuration and accumulated measurements,
/// continues the Markov chain, and saves everything back.  This example
/// demonstrates that workflow with the fsi::io layer: a first "job"
/// warms up and measures, checkpoints, and a second "job" restarts and
/// accumulates more samples into the same measurement set.
///
///   ./checkpoint_restart [--nx 4] [--ny 4] [--L 16] [--dir /tmp]

#include <cstdio>
#include <string>

#include "fsi/io/binary_io.hpp"
#include "fsi/pcyclic/adjacency.hpp"
#include "fsi/selinv/fsi.hpp"
#include "fsi/qmc/dqmc.hpp"
#include "fsi/qmc/greens.hpp"
#include "fsi/util/cli.hpp"
#include "fsi/util/fpenv.hpp"

namespace {

using namespace fsi;

/// One "job": run sweeps continuing from `field`, accumulate into `total`.
void run_job(const qmc::HubbardModel& model, qmc::HsField& field,
             qmc::Measurements& total, dense::index_t sweeps,
             std::uint64_t seed) {
  util::Rng rng(seed);
  const dense::index_t c = qmc::default_cluster_size(model.params().l);
  qmc::EqualTimeGreens g_up(model, field, qmc::Spin::Up, c);
  qmc::EqualTimeGreens g_dn(model, field, qmc::Spin::Down, c);
  double sign = 1.0;
  for (dense::index_t s = 0; s < sweeps; ++s) {
    qmc::metropolis_sweep(model, field, g_up, g_dn, rng, sign);
    // Measure equal-time observables from this configuration.
    const dense::index_t q =
        static_cast<dense::index_t>(rng.below(static_cast<std::uint64_t>(c)));
    auto m_up = model.build_m(field, qmc::Spin::Up);
    auto m_dn = model.build_m(field, qmc::Spin::Down);
    pcyclic::BlockOps ops_up(m_up), ops_dn(m_dn);
    selinv::FsiOptions opts;
    opts.c = c;
    opts.q = q;
    auto up = selinv::fsi_multi(m_up, ops_up, {pcyclic::Pattern::AllDiagonals},
                                opts, rng);
    auto dn = selinv::fsi_multi(m_dn, ops_dn, {pcyclic::Pattern::AllDiagonals},
                                opts, rng);
    total.add_sample(sign);
    qmc::accumulate_equal_time(model.lattice(), up[0], dn[0],
                               model.params().t, sign, true, total);
  }
}

}  // namespace

int main(int argc, char** argv) {
  fsi::util::enable_flush_to_zero();
  util::Cli cli(argc, argv);
  const dense::index_t nx = cli.get_int("nx", 4);
  const dense::index_t ny = cli.get_int("ny", 4);
  const std::string dir = cli.get_string("dir", "/tmp");
  const std::string field_ckpt = dir + "/fsi_example_field.bin";
  const std::string meas_ckpt = dir + "/fsi_example_meas.bin";

  qmc::HubbardParams p;
  p.u = 4.0;
  p.beta = 2.0;
  p.l = cli.get_int("L", 16);
  qmc::HubbardModel model(qmc::Lattice::rectangle(nx, ny), p);
  const dense::index_t dmax = model.lattice().num_distance_classes();

  // ---- Job 1: fresh start, checkpoint at the end. ----
  {
    util::Rng rng(2026);
    qmc::HsField field(p.l, model.num_sites(), rng);
    qmc::Measurements total(p.l, dmax);
    run_job(model, field, total, /*sweeps=*/10, /*seed=*/1);
    io::save_field(field_ckpt, field);
    io::save_measurements(meas_ckpt, total);
    std::printf("job 1: %.0f samples, <n> = %.4f, <n_up n_dn> = %.4f "
                "(checkpointed)\n",
                total.samples(), total.density(), total.double_occupancy());
  }

  // ---- Job 2: restart from the checkpoint, continue the campaign. ----
  {
    qmc::HsField field = io::load_field(field_ckpt);
    qmc::Measurements total = io::load_measurements(meas_ckpt);
    run_job(model, field, total, /*sweeps=*/10, /*seed=*/2);
    io::save_field(field_ckpt, field);
    io::save_measurements(meas_ckpt, total);
    std::printf("job 2: %.0f samples, <n> = %.4f, <n_up n_dn> = %.4f "
                "(accumulated across jobs)\n",
                total.samples(), total.density(), total.double_occupancy());
    if (total.samples() != 20.0) return 1;
  }

  std::remove(field_ckpt.c_str());
  std::remove(meas_ckpt.c_str());
  std::printf("checkpoint/restart round trip OK\n");
  return 0;
}
