/// \file manygf_hybrid.cpp
/// \brief Hybrid parallel application of FSI to many Green's functions
/// (paper Alg. 3 / Fig. 5), on the in-process mini-MPI runtime.
///
/// The root rank generates random Hubbard-Stratonovich fields and scatters
/// them; each rank builds its Hubbard matrices, runs FSI with OpenMP inside
/// and accumulates local physical measurements; a Reduce aggregates them —
/// the exact communication structure of the paper's production runs,
/// executable on one machine.
///
///   ./manygf_hybrid [--matrices 8] [--ranks 2] [--threads 1]
///                   [--N 24] [--L 16] [--c 4]
///                   [--static] [--heavy-fraction 1.0]
///
/// --static freezes the scheduler to the contiguous split (Alg. 3's
/// original distribution); --heavy-fraction < 1 skews the batch so that
/// only the leading fraction computes the Rows/Columns passes — run both
/// modes on a skewed batch to watch work stealing flatten the balance.

#include <cstdio>

#include "fsi/util/fpenv.hpp"
#include "fsi/qmc/multi_gf.hpp"
#include "fsi/util/cli.hpp"
#include "fsi/util/table.hpp"

int main(int argc, char** argv) {
  fsi::util::enable_flush_to_zero();
  using namespace fsi;
  util::Cli cli(argc, argv);

  qmc::HubbardParams params;
  params.l = cli.get_int("L", 16);
  params.u = 2.0;
  params.beta = 1.0;
  qmc::HubbardModel model(qmc::Lattice::chain(cli.get_int("N", 24)), params);

  qmc::MultiGfOptions opt;
  opt.num_matrices = cli.get_int("matrices", 8);
  opt.num_ranks = cli.get_int("ranks", 2);
  opt.omp_threads_per_rank = cli.get_int("threads", 1);
  opt.cluster_size = cli.get_int("c", 4);
  opt.schedule =
      cli.has("static") ? qmc::Schedule::Static : qmc::Schedule::WorkStealing;
  opt.heavy_fraction = cli.get_double("heavy-fraction", 1.0);
  opt.seed = 2024;

  std::printf(
      "Alg. 3: selected inversions of %d Hubbard matrices on %d mini-MPI "
      "ranks x %d OpenMP threads\n",
      opt.num_matrices, opt.num_ranks, opt.omp_threads_per_rank);

  qmc::MultiGfResult r = qmc::run_parallel_fsi(model, opt);

  util::Table t({"quantity", "value"});
  t.add_row({"matrices processed", util::Table::num((long long)r.global.samples())});
  t.add_row({"wall time (s)", util::Table::num(r.seconds, 3)});
  t.add_row({"dense-kernel flops", util::Table::num(double(r.flops), 0)});
  t.add_row({"aggregate Gflops", util::Table::num(r.gflops(), 2)});
  t.add_row({"global <n>", util::Table::num(r.global.density(), 4)});
  t.add_row({"global <n_up n_dn>", util::Table::num(r.global.double_occupancy(), 4)});
  t.add_row({"global SPXX(1, 0)", util::Table::num(r.global.spxx(1, 0), 5)});
  t.add_row({"schedule", opt.schedule == qmc::Schedule::Static
                             ? "static split"
                             : "work stealing"});
  t.add_row({"steal batches", util::Table::num((long long)r.sched.steal_batches)});
  t.add_row({"tasks migrated", util::Table::num((long long)r.sched.stolen_tasks)});
  t.add_row({"balance (max/mean busy)", util::Table::num(r.sched.balance(), 2)});
  t.add_row({"pool hit rate", util::Table::num(r.sched.pool_hit_rate(), 3)});
  t.print();
  return 0;
}
