/// \file tridiag_selinv.cpp
/// \brief Selected inversion of a block tridiagonal matrix — the paper's
/// future-work direction (Sec. VI), as a runnable example.
///
/// Builds a block tridiagonal system (e.g. a discretised 1D device in a
/// quantum-transport / NEGF setting, where the retarded Green's function's
/// diagonal and a few columns are the physically relevant blocks), computes
/// selected blocks with the structured engine, and validates against a
/// dense inverse.
///
///   ./tridiag_selinv [--N 32] [--L 24]

#include <cstdio>

#include "fsi/dense/norms.hpp"
#include "fsi/tridiag/tridiag.hpp"
#include "fsi/util/cli.hpp"
#include "fsi/util/fpenv.hpp"
#include "fsi/util/table.hpp"
#include "fsi/util/timer.hpp"

int main(int argc, char** argv) {
  fsi::util::enable_flush_to_zero();
  using namespace fsi;
  util::Cli cli(argc, argv);
  const dense::index_t n = cli.get_int("N", 32);
  const dense::index_t l = cli.get_int("L", 24);

  std::printf("Block tridiagonal selected inversion: %d blocks of %dx%d "
              "(dim %d)\n\n", l, n, n, n * l);

  util::Rng rng(7);
  tridiag::BlockTridiagonalMatrix t =
      tridiag::BlockTridiagonalMatrix::random(n, l, rng);

  util::WallTimer w;
  tridiag::TridiagSelectedInverse sel(t);
  const double setup = w.seconds();

  // The NEGF-style selection: all diagonal blocks + the first column
  // (source-to-everywhere propagator).
  w.reset();
  std::vector<dense::Matrix> diag;
  diag.reserve(static_cast<std::size_t>(l));
  for (dense::index_t i = 0; i < l; ++i) diag.push_back(sel.diag_block(i));
  auto col0 = sel.column(0);
  const double solve = w.seconds();

  // Validate against dense LU.
  w.reset();
  dense::Matrix g = tridiag::invert_dense_lu(t);
  const double dense_t = w.seconds();
  double worst = 0.0;
  for (dense::index_t i = 0; i < l; ++i) {
    worst = std::max(worst,
                     dense::rel_fro_error(
                         diag[static_cast<std::size_t>(i)],
                         dense::Matrix::copy_of(g.block(i * n, i * n, n, n))));
    worst = std::max(worst,
                     dense::rel_fro_error(
                         col0[static_cast<std::size_t>(i)],
                         dense::Matrix::copy_of(g.block(i * n, 0, n, n))));
  }

  util::Table tab({"quantity", "value"});
  tab.add_row({"structured setup (s)", util::Table::num(setup, 4)});
  tab.add_row({"diagonals + 1 column (s)", util::Table::num(solve, 4)});
  tab.add_row({"dense LU inverse (s)", util::Table::num(dense_t, 4)});
  tab.add_row({"speedup", util::Table::num(dense_t / (setup + solve), 1)});
  tab.add_row({"max relative error", util::Table::sci(worst)});
  tab.print();
  return worst < 1e-9 ? 0 : 1;
}
