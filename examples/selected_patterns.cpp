/// \file selected_patterns.cpp
/// \brief Tour of the four selected-inversion patterns (paper Sec. II-B).
///
/// Computes S1 (diagonals), S2 (sub-diagonals), S3 (columns) and S4 (rows)
/// of one Green's function and prints, for each, the paper's Sec. II-B
/// block counts and memory-reduction factors together with the measured
/// sizes and accuracies.
///
///   ./selected_patterns [--N 40] [--L 24] [--c 4]

#include <cstdio>

#include "fsi/util/fpenv.hpp"
#include "fsi/dense/norms.hpp"
#include "fsi/pcyclic/explicit_inverse.hpp"
#include "fsi/qmc/hubbard.hpp"
#include "fsi/selinv/fsi.hpp"
#include "fsi/util/cli.hpp"
#include "fsi/util/table.hpp"

int main(int argc, char** argv) {
  fsi::util::enable_flush_to_zero();
  using namespace fsi;
  util::Cli cli(argc, argv);
  const dense::index_t n = cli.get_int("N", 40);
  const dense::index_t l = cli.get_int("L", 24);
  const dense::index_t c = cli.get_int("c", 4);

  qmc::HubbardParams params;
  params.l = l;
  params.u = 2.0;
  qmc::HubbardModel model(qmc::Lattice::chain(n), params);
  util::Rng rng(77);
  qmc::HsField field(l, n, rng);
  pcyclic::PCyclicMatrix m = model.build_m(field, qmc::Spin::Up);

  // Reference inverse for the accuracy column.
  dense::Matrix g = pcyclic::full_inverse_dense(m);
  const double full_mb = g.bytes() / 1048576.0;
  std::printf("Selected inversion patterns on a %d x %d Hubbard matrix "
              "(c=%d, full inverse %.1f MB):\n\n", m.dim(), m.dim(), c, full_mb);

  util::Table t({"pattern", "blocks", "paper count", "reduction", "paper",
                 "memory MB", "max rel err"});
  const pcyclic::Pattern patterns[] = {
      pcyclic::Pattern::Diagonal, pcyclic::Pattern::SubDiagonal,
      pcyclic::Pattern::Columns, pcyclic::Pattern::Rows,
      pcyclic::Pattern::AllDiagonals};
  const char* paper_counts[] = {"b", "b or b-1", "bL", "bL", "L"};
  const char* paper_reductions[] = {"cL", "cL", "c", "c", "L"};

  for (int pi = 0; pi < 5; ++pi) {
    selinv::FsiOptions opts;
    opts.c = c;
    opts.q = 1;
    opts.pattern = patterns[pi];
    selinv::FsiStats stats;
    pcyclic::SelectedInversion s = selinv::fsi(m, opts, rng, &stats);

    double worst = 0.0;
    for (const auto& [k, col] : s.keys())
      worst = std::max(worst, dense::rel_fro_error(
                                  s.at(k, col),
                                  pcyclic::dense_block(g, n, k, col)));

    const pcyclic::Selection sel(l, c, 1);
    t.add_row({pcyclic::pattern_name(patterns[pi]),
               util::Table::num(static_cast<long long>(s.size())),
               paper_counts[pi],
               util::Table::num(sel.reduction_factor(patterns[pi]), 1),
               paper_reductions[pi],
               util::Table::num(s.bytes() / 1048576.0, 2),
               util::Table::sci(worst)});
  }
  t.print();
  std::printf("\nAll patterns agree with the dense inverse to ~1e-10 "
              "(the paper's validation threshold).\n");
  return 0;
}
