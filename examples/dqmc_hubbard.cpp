/// \file dqmc_hubbard.cpp
/// \brief Full DQMC simulation of the 2D Hubbard model (paper Alg. 4).
///
/// Runs warmup + measurement sweeps on a periodic rectangular lattice with
/// the FSI Green's-function engine and prints the equal-time observables
/// and the SPXX time-dependent spin correlation — the physics workload that
/// motivates the paper.
///
///   ./dqmc_hubbard [--nx 4] [--ny 4] [--U 4] [--beta 2] [--L 16]
///                  [--warmup 20] [--sweeps 40] [--seed 7]

#include <cstdio>

#include "fsi/obs/health.hpp"
#include "fsi/util/fpenv.hpp"
#include "fsi/qmc/dqmc.hpp"
#include "fsi/util/cli.hpp"
#include "fsi/util/table.hpp"

int main(int argc, char** argv) {
  fsi::util::enable_flush_to_zero();
  using namespace fsi;
  util::Cli cli(argc, argv);
  const dense::index_t nx = cli.get_int("nx", 4);
  const dense::index_t ny = cli.get_int("ny", 4);

  qmc::HubbardParams params;
  params.t = 1.0;
  params.u = cli.get_double("U", 4.0);
  params.beta = cli.get_double("beta", 2.0);
  params.l = cli.get_int("L", 16);
  qmc::HubbardModel model(qmc::Lattice::rectangle(nx, ny), params);

  qmc::DqmcOptions opt;
  opt.warmup_sweeps = cli.get_int("warmup", 20);
  opt.measurement_sweeps = cli.get_int("sweeps", 40);
  opt.engine = qmc::GreensEngine::Fsi;
  opt.seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

  std::printf(
      "DQMC of the %dx%d Hubbard model: U=%.2f beta=%.2f L=%d "
      "(%d warmup + %d measurement sweeps)\n",
      nx, ny, params.u, params.beta, params.l, opt.warmup_sweeps,
      opt.measurement_sweeps);

  qmc::DqmcResult r = qmc::run_dqmc(model, opt);

  util::Table obs({"observable", "value"});
  obs.add_row({"acceptance rate", util::Table::num(r.acceptance_rate, 3)});
  obs.add_row({"average sign", util::Table::num(r.measurements.avg_sign(), 3)});
  obs.add_row({"density <n>", util::Table::num(r.measurements.density(), 4)});
  obs.add_row({"double occupancy <n_up n_dn>",
               util::Table::num(r.measurements.double_occupancy(), 4)});
  obs.add_row({"local moment <m_z^2>",
               util::Table::num(r.measurements.local_moment(), 4)});
  obs.add_row({"kinetic energy / site",
               util::Table::num(r.measurements.kinetic_energy(), 4)});
  obs.add_row({"AF structure factor S(pi,pi)",
               util::Table::num(r.measurements.af_structure_factor(), 4)});
  obs.add_row({"pair susceptibility chi_sw",
               util::Table::num(r.measurements.pair_susceptibility(), 4)});
  obs.add_row({"max wrap drift", util::Table::num(r.stats.max_drift, 12)});
  obs.add_row({"Green's fn recomputes",
               util::Table::num((long long)r.stats.recomputes)});
  obs.print();

  // SPXX(tau, d): a few rows of the time-dependent spin-spin correlation.
  std::printf("\nSPXX time-dependent XY spin correlation (rows tau, cols d):\n");
  const dense::index_t dmax = model.lattice().num_distance_classes();
  util::Table spxx([&] {
    std::vector<std::string> h{"tau"};
    for (dense::index_t d = 0; d < dmax; ++d) h.push_back("d=" + std::to_string(d));
    return h;
  }());
  for (dense::index_t tau = 0; tau < std::min<dense::index_t>(params.l, 6); ++tau) {
    std::vector<std::string> row{std::to_string(tau)};
    for (dense::index_t d = 0; d < dmax; ++d)
      row.push_back(util::Table::num(r.measurements.spxx(tau, d), 5));
    spxx.add_row(row);
  }
  spxx.print();

  std::printf(
      "\ntimings: sweeps %.2fs, Green's functions %.2fs, measurements %.2fs "
      "(total %.2fs)\n",
      r.timings.warmup_seconds, r.timings.greens_seconds,
      r.timings.measure_seconds, r.timings.total_seconds);

  // Numerical-health verdict for the whole run: drift / conditioning /
  // residual / FP-sentinel checks against their thresholds (FSI_HEALTH_*).
  if (obs::health::enabled()) {
    std::printf("\nnumerical health:\n");
    obs::health::report().print();
  }
  return 0;
}
