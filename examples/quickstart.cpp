/// \file quickstart.cpp
/// \brief Minimal tour of the FSI public API.
///
/// Builds a Hubbard matrix for a random Hubbard-Stratonovich configuration,
/// computes b selected block columns of its inverse (the Green's function)
/// with the FSI algorithm, and verifies the result against a dense LU
/// inverse — the same validation protocol as the paper's Sec. V-A, at a
/// quickstart-friendly size.
///
///   ./quickstart [--N 48] [--L 32] [--c 4]

#include <cstdio>

#include "fsi/obs/trace.hpp"
#include "fsi/util/fpenv.hpp"
#include "fsi/dense/norms.hpp"
#include "fsi/pcyclic/explicit_inverse.hpp"
#include "fsi/qmc/hubbard.hpp"
#include "fsi/selinv/fsi.hpp"
#include "fsi/util/cli.hpp"

int main(int argc, char** argv) {
  fsi::util::enable_flush_to_zero();
  using namespace fsi;
  util::Cli cli(argc, argv);
  const dense::index_t n = cli.get_int("N", 48);
  const dense::index_t l = cli.get_int("L", 32);
  const dense::index_t c = cli.get_int("c", 4);

  std::printf("FSI quickstart: Hubbard matrix with N=%d sites, L=%d slices\n",
              n, l);

  // 1. A Hubbard model on a periodic chain and a random HS field.
  qmc::HubbardParams params;
  params.t = 1.0;
  params.u = 2.0;
  params.beta = 1.0;
  params.l = l;
  qmc::HubbardModel model(qmc::Lattice::chain(n), params);
  util::Rng rng(2016);
  qmc::HsField field(l, n, rng);

  // 2. The block p-cyclic Hubbard matrix M (Eq. 1 of the paper).
  pcyclic::PCyclicMatrix m = model.build_m(field, qmc::Spin::Up);
  std::printf("  matrix dimension: %d x %d (%d blocks of %d x %d)\n", m.dim(),
              m.dim(), l, n, n);

  // 3. Run FSI for b = L/c selected block columns.
  selinv::FsiOptions opts;
  opts.c = c;
  opts.pattern = pcyclic::Pattern::Columns;
  selinv::FsiStats stats;
  pcyclic::SelectedInversion s = selinv::fsi(m, opts, rng, &stats);
  std::printf("  FSI: c=%d, q=%d -> %d selected blocks\n", c, stats.q, s.size());
  std::printf("  stage flops: CLS %.2e  BSOFI %.2e  WRP %.2e\n",
              double(stats.flops_cls), double(stats.flops_bsofi),
              double(stats.flops_wrap));

  // 4. Validate against the dense LU inverse (DGETRF/DGETRI equivalent).
  dense::Matrix g = pcyclic::full_inverse_dense(m);
  double worst = 0.0;
  for (const auto& [k, col] : s.keys()) {
    const dense::Matrix ref = pcyclic::dense_block(g, n, k, col);
    worst = std::max(worst, dense::rel_fro_error(s.at(k, col), ref));
  }
  // FSI_PRECISION=mixed runs CLS + WRP in fp32 (see docs/precision.md), so
  // the acceptance bound tracks the mode the pipeline actually used.
  const bool mixed = stats.precision_used == Precision::Mixed;
  const double bound = mixed ? 1e-3 : 1e-10;
  std::printf("  max relative error vs dense inverse: %.2e  (%s: < %.0e)\n",
              worst, mixed ? "mixed mode" : "paper", bound);
  std::printf("  memory: selected %.2f MB vs full inverse %.2f MB (%.0fx less)\n",
              s.bytes() / 1048576.0, g.bytes() / 1048576.0,
              double(g.bytes()) / double(s.bytes()));

  // 5. With FSI_TRACE=1 the run was recorded; export it for chrome://tracing.
  const std::string trace_path = obs::write_trace_if_enabled("quickstart");
  if (!trace_path.empty())
    std::printf("  trace written to %s (open in chrome://tracing)\n",
                trace_path.c_str());
  return worst < bound ? 0 : 1;
}
