#pragma once
/// \file perfmodel.hpp
/// \brief Analytic multi-thread / multi-node performance model.
///
/// SUBSTITUTION NOTE (see DESIGN.md): the paper's scaling experiments ran on
/// 12-core Ivy Bridge sockets and 100 Edison nodes.  This reproduction host
/// exposes a single CPU core, so hardware thread-scaling cannot be measured
/// directly.  Instead the benches measure the *serial* per-stage times and
/// flop counts (which they can, exactly) and extrapolate with the Amdahl-style
/// model below, whose two free parameters — the kernel-parallel fraction of
/// the "pure threaded-MKL" mode and the coarse-grain fraction of the
/// FSI/OpenMP mode — are calibrated once against the paper's reported
/// endpoints (MKL ~1.9x and FSI ~10x at 12 threads, Fig. 8 bottom).  All
/// model-derived numbers are labelled "modeled" in bench output.
///
/// The model is deliberately simple and inspectable:
///   - FSI/OpenMP mode: CLS is b-way parallel, WRP is b^2-way parallel
///     (embarrassingly so, per the paper); BSOFI is a dependent panel chain
///     whose R^-1 stage is b-way parallel; a small per-thread overhead grows
///     linearly.
///   - MKL-style mode: the only parallelism is inside dense kernels; its
///     efficiency depends on the block size N (small blocks don't saturate
///     threaded BLAS).

#include "fsi/dense/matrix.hpp"

namespace fsi::selinv {

/// Measured serial wall times of the three FSI stages.
struct StageTimes {
  double cls = 0.0;
  double bsofi = 0.0;
  double wrap = 0.0;
  double total() const { return cls + bsofi + wrap; }
};

/// Fraction of MKL-style work that threaded kernels can parallelise, as a
/// function of the block size N.  Calibrated so a 12-thread run gives the
/// paper's ~1.9x at N ~ 576 and less for smaller blocks.
double mkl_parallel_fraction(dense::index_t n_block);

/// Modeled speedup of an Amdahl workload: 1 / ((1-f) + f/p).
double amdahl_speedup(double parallel_fraction, int threads);

/// Modeled wall time of one FSI call with \p threads OpenMP threads in the
/// paper's FSI/OpenMP mode.  \p b is the number of clusters (= L/c).
double fsi_openmp_time(const StageTimes& serial, int threads, dense::index_t b);

/// Modeled wall time in the "pure multi-threaded MKL" mode.
double mkl_style_time(const StageTimes& serial, int threads,
                      dense::index_t n_block);

/// Modeled aggregate rate (flops/sec) of the hybrid Alg. 3 application on
/// `nodes` Edison-like nodes with `ranks_per_node` x `threads_per_rank`
/// (their product = cores per node), given the measured single-core rate
/// for one matrix.  MPI over independent matrices is embarrassingly
/// parallel; the intra-rank OpenMP efficiency follows fsi_openmp_time.
double hybrid_rate(double single_core_flops_per_sec, int nodes,
                   int ranks_per_node, int threads_per_rank,
                   const StageTimes& serial_profile, dense::index_t b);

}  // namespace fsi::selinv
