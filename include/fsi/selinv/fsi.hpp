#pragma once
/// \file fsi.hpp
/// \brief The Fast Selected Inversion algorithm (paper Alg. 1) — the
/// primary contribution of the reproduced paper.
///
/// FSI computes a selected inversion S of a block p-cyclic matrix M in three
/// stages:
///   1. CLS  — factor-of-c block cyclic reduction: cluster the L blocks into
///             b = L/c products of c consecutive B's (cost 2b(c-1)N^3,
///             embarrassingly parallel over clusters);
///   2. BSOFI — stable structured-orthogonal inversion of the reduced b-block
///             p-cyclic matrix (cost ~7b^2 N^3);
///   3. WRP  — wrapping (paper Alg. 2): the b^2 blocks of the reduced inverse
///             are exact blocks of G (Eq. 8, G~_{k0,l0} = G_{c k0-q, c l0-q});
///             use them as seeds and the adjacency relations to grow the
///             requested pattern (cost 3(bL - b^2)N^3, parallel over seeds).
///
/// The random offset q (uniform in [0, c)) shifts which blocks are selected
/// so that, across many Green's functions in a Monte Carlo run, all of G is
/// sampled uniformly.

#include <cstdint>
#include <vector>

#include "fsi/bsofi/bsofi.hpp"
#include "fsi/pcyclic/adjacency.hpp"
#include "fsi/pcyclic/patterns.hpp"
#include "fsi/pcyclic/pcyclic.hpp"
#include "fsi/precision.hpp"
#include "fsi/sched/task_graph.hpp"
#include "fsi/util/rng.hpp"

namespace fsi::selinv {

using dense::index_t;
using pcyclic::Pattern;

/// FSI parameters.
struct FsiOptions {
  /// Cluster size c (must divide L).  The paper recommends c ~ sqrt(L):
  /// larger c reduces more but loses precision to round-off in the chain
  /// products (see the stability ablation bench).
  index_t c = 10;
  /// Offset q in [0, c), or -1 to draw it uniformly (paper default).
  index_t q = -1;
  /// Which blocks of G to compute.
  Pattern pattern = Pattern::Columns;
  /// Coarse-grain OpenMP parallelism over clusters (CLS) and seeds (WRP).
  /// true  = the paper's "FSI with OpenMP" mode;
  /// false = the paper's "pure multi-threaded MKL" comparator (Figs. 8
  ///         bottom, 10, 11): serial outer loops, threaded kernels only.
  bool coarse_parallel = true;
  /// How the stage parallelism is executed.
  ///   Auto     — Graph when coarse_parallel and the FSI_EXEC env flag
  ///              (default on) allows it, else OmpLoops;
  ///   Graph    — decompose into a dependency-aware task graph run on the
  ///              persistent executor pool (cluster products, BSOFI and
  ///              seed walks become stealable nodes);
  ///   OmpLoops — flat OpenMP loops per stage (the pre-executor behaviour,
  ///              kept as an A/B baseline; bit-identical results).
  /// Note: coarse_parallel == false always executes serial loops — it is
  /// the paper's pure-MKL comparator and must stay loop-shaped.
  enum class Exec { Auto, Graph, OmpLoops };
  Exec exec = Exec::Auto;
  /// Scalar precision of the error-tolerant stages.  Fp64 (the default
  /// unless FSI_PRECISION overrides it) is bit-identical to the historic
  /// pipeline.  Mixed runs CLS cluster products and WRP seed walks in fp32
  /// (BSOFI stays fp64), health-gates the result, and reruns in fp64 when
  /// the gate trips — see mixed_gate() and docs/precision.md.  Mixed runs
  /// execute loop-shaped (the graph path is fp64-only at this layer; the
  /// batched graph engine in qmc::run_fsi_batch has its own mixed nodes).
  Precision precision = precision_from_env();
};

/// Per-stage timings and flop counts of one FSI run (for the Fig. 8/10
/// performance profiles).
struct FsiStats {
  double seconds_cls = 0.0;
  double seconds_bsofi = 0.0;
  double seconds_wrap = 0.0;
  std::uint64_t flops_cls = 0;
  std::uint64_t flops_bsofi = 0;
  std::uint64_t flops_wrap = 0;
  index_t q = 0;  ///< the offset actually used
  /// Precision the returned result was actually computed at: Mixed runs
  /// that trip the health gate report Fp64 here (and set mixed_fallback).
  Precision precision_used = Precision::Fp64;
  bool mixed_fallback = false;  ///< a mixed attempt was redone in fp64

  double seconds_total() const {
    return seconds_cls + seconds_bsofi + seconds_wrap;
  }
  std::uint64_t flops_total() const {
    return flops_cls + flops_bsofi + flops_wrap;
  }
};

/// Stage 1 (CLS): factor-of-c block cyclic reduction.  Returns the reduced
/// b-block p-cyclic matrix whose blocks are
///   B~_{i} = B_{j0} B_{j0-1} ... B_{j0-c+1},  j0 = c(i+1) - q - 1 (0-based),
/// cyclic in the block index.  Cluster products run in parallel (OpenMP).
pcyclic::PCyclicMatrix cluster(const pcyclic::PCyclicMatrix& m, index_t c,
                               index_t q, bool parallel = true);

/// One cluster product B~_i — the body of one CLS loop iteration / graph
/// node.  Pool-backed; safe to call concurrently for distinct \p i.
dense::Matrix cluster_product(const pcyclic::PCyclicMatrix& m, index_t c,
                              index_t q, index_t i);

/// Mixed-precision twin of cluster_product: demotes each B block on the
/// fly (O(N^2) against the O(cN^3) product) and multiplies the chain in
/// fp32.  The caller promotes the product before BSOFI.
dense::MatrixF cluster_product_f(const pcyclic::PCyclicMatrix& m, index_t c,
                                 index_t q, index_t i);

/// CLS with fp32 cluster products, each promoted to fp64 on completion —
/// the reduced matrix feeds the (always-fp64) BSOFI stage unchanged.
pcyclic::PCyclicMatrix cluster_mixed(const pcyclic::PCyclicMatrix& m,
                                     index_t c, index_t q,
                                     bool parallel = true);

/// Number of independent seed walks of one wrapping stage: b for the
/// diagonal-family patterns, b^2 for Columns/Rows (paper Alg. 2).
index_t num_wrap_seeds(Pattern pattern, index_t b);

/// One seed walk — the body of one WRP loop iteration / graph node.  Grows
/// the blocks reachable from linearised seed index \p seed (Columns:
/// seed = l0*b + k0; Rows: seed = k0*b + l0; diagonal family: seed = k0)
/// into \p out.  Distinct seeds write disjoint slots, so concurrent walks
/// need no locking.
void wrap_seed(const pcyclic::BlockOps& ops, const dense::Matrix& gtilde,
               Pattern pattern, const pcyclic::Selection& sel,
               pcyclic::SelectedInversion& out, index_t seed);

/// Mixed-precision twin of wrap_seed: walks fp32 blocks through the fp32
/// adjacency relations of \p ops, starting from the demoted reduced
/// inverse \p gtilde_f, and promotes every stored block into \p out (whose
/// slots stay fp64, so downstream measurement code is unchanged).
void wrap_seed_f(const pcyclic::BlockOpsF& ops, const dense::MatrixF& gtilde_f,
                 Pattern pattern, const pcyclic::Selection& sel,
                 pcyclic::SelectedInversion& out, index_t seed);

/// Stage 3 (WRP): grow the selected inversion from the reduced inverse
/// \p gtilde (a dense bN x bN matrix, as produced by bsofi::invert).
/// Seeds are processed in parallel (OpenMP); each seed walks
/// floor((c-1)/2) steps one way and floor(c/2) the other so consecutive
/// seeds tile the pattern exactly (paper Alg. 2).
pcyclic::SelectedInversion wrap(const pcyclic::BlockOps& ops,
                                const dense::Matrix& gtilde, Pattern pattern,
                                const pcyclic::Selection& sel,
                                bool parallel = true);

/// Mixed-precision WRP over wrap_seed_f (gtilde_f is the demoted reduced
/// inverse; results are promoted fp64 blocks).
pcyclic::SelectedInversion wrap_f(const pcyclic::BlockOpsF& ops,
                                  const dense::MatrixF& gtilde_f,
                                  Pattern pattern,
                                  const pcyclic::Selection& sel,
                                  bool parallel = true);

// ---------------------------------------------------------------------------
// Mixed-precision health gate.

/// Acceptance thresholds of one mixed run.  A run falls back to fp64 when
/// the probed residual exceeds resid_max, when the reduced matrix's cond1
/// estimate exceeds cond_max, or when any fp32 stage produced non-finite
/// values.  Defaults come from FSI_PRECISION_RESID_MAX (1e-3, matching the
/// health layer's resid_fail) and FSI_PRECISION_COND_MAX (1e8: past that,
/// fp32's ~7 significant digits are spent on conditioning alone).
struct MixedGate {
  double resid_max = 1e-3;
  double cond_max = 1e8;
};

/// The process-wide gate (env-seeded once, then runtime-settable — tests
/// force fallbacks by lowering resid_max to 0).
MixedGate mixed_gate() noexcept;
void set_mixed_gate(const MixedGate& gate) noexcept;

/// Worst probed residual ||(M G_sel - I) block||_max over two rotating
/// block probes — the same check residual_spot_check samples, exposed so
/// the mixed gate can run it on every mixed run.  Returns -1 for patterns
/// that store no adjacent blocks (no residual can be formed from stored
/// data); the gate then relies on the cond1 bound alone.
double probe_residual(const pcyclic::PCyclicMatrix& m,
                      const pcyclic::SelectedInversion& out, Pattern pattern,
                      const pcyclic::Selection& sel);

/// cond1 of the reduced matrix from its blocks and explicit inverse:
/// (1 + max_i ||B~_i||_1) ||G~||_1 (exact 1-norm identity for p-cyclic
/// normal form).  O((bN)^2) — the mixed gate's second input.
double reduced_cond1(const pcyclic::PCyclicMatrix& reduced,
                     dense::ConstMatrixView gtilde);

/// The full FSI algorithm (paper Alg. 1).  \p rng supplies the random q
/// when opts.q < 0.  \p stats, when non-null, receives per-stage
/// times/flops.  Pre-factored \p ops must wrap the same matrix \p m.
pcyclic::SelectedInversion fsi(const pcyclic::PCyclicMatrix& m,
                               const pcyclic::BlockOps& ops,
                               const FsiOptions& opts, util::Rng& rng,
                               FsiStats* stats = nullptr);

/// Convenience overload that builds the BlockOps internally (its
/// factorisation time is attributed to the wrapping stage, which is the
/// only consumer).
pcyclic::SelectedInversion fsi(const pcyclic::PCyclicMatrix& m,
                               const FsiOptions& opts, util::Rng& rng,
                               FsiStats* stats = nullptr);

/// Multi-pattern FSI: run CLS + BSOFI *once* and wrap several patterns from
/// the shared reduced inverse — the DQMC measurement workload (all
/// diagonals + block rows + block columns per Green's function, Fig. 10)
/// without re-reducing per pattern.  All patterns share the same q.
/// Results are returned in the order of \p patterns.
std::vector<pcyclic::SelectedInversion> fsi_multi(
    const pcyclic::PCyclicMatrix& m, const pcyclic::BlockOps& ops,
    const std::vector<Pattern>& patterns, const FsiOptions& opts,
    util::Rng& rng, FsiStats* stats = nullptr);

/// Storage of one FSI decomposed into graph nodes.  The caller owns this
/// object and must keep it (and the referenced matrix/ops) alive until the
/// graph has run; node bodies write disjoint parts of it:
///   - cluster node i writes cls_blocks[i];
///   - the BSOFI node assembles the reduced matrix from cls_blocks
///     (recycling them) and writes gtilde + the stage flop fences;
///   - wrap node (p, seed) writes disjoint slots of results[p].
/// After the run the caller recycles gtilde and harvests results.
struct FsiGraphTask {
  const pcyclic::PCyclicMatrix* m = nullptr;
  const pcyclic::BlockOps* ops = nullptr;
  pcyclic::Selection sel{1, 1, 0};
  std::vector<Pattern> patterns;

  std::vector<dense::Matrix> cls_blocks;          ///< filled by CLS nodes
  dense::Matrix gtilde;                           ///< filled by the BSOFI node
  std::vector<pcyclic::SelectedInversion> results;  ///< one per pattern

  /// Global flop-counter fences recorded by the BSOFI node at entry/exit.
  /// Dependencies order the stages inside one graph, so for a lone FSI run
  /// these attribute flops per stage exactly (same external-concurrency
  /// caveat as the loop-mode flop scopes).
  std::uint64_t flops_at_cls_end = 0;
  std::uint64_t flops_at_bsofi_end = 0;
};

/// Node ids of one emitted FSI, for wiring cross-task dependencies (e.g. a
/// measurement node that needs every wrap walk of a task).
struct FsiEmit {
  sched::NodeId bsofi = 0;
  std::vector<sched::NodeId> wrap_nodes;
};

/// Decompose one FSI into graph nodes: b cluster-product nodes, one BSOFI
/// node depending on them, and one node per wrap seed walk (per pattern)
/// depending on BSOFI.  \p task must have m/ops/sel/patterns set; its
/// storage fields are sized here.  All nodes carry \p owner_hint, so with
/// stealing disabled an entire task runs on its statically assigned worker.
FsiEmit emit_fsi_tasks(sched::TaskGraph& graph, FsiGraphTask& task,
                       int owner_hint = 0);

/// Stable computation of the single equal-time block G(k, k) via CLS and a
/// *partial* BSOFI (one block row of the reduced inverse, O(b N^3) instead
/// of O(b^2 N^3)) — the economical path for one Green's function block.
/// The offset q is chosen internally so that k is a seed index.
dense::Matrix equal_time_block(const pcyclic::PCyclicMatrix& m, index_t k,
                               index_t c);

/// Closed-form flop counts from the paper's Sec. II-C complexity table,
/// used by the complexity bench to compare measured vs predicted.
struct ComplexityModel {
  index_t n_block, l_total, c;
  index_t b() const { return l_total / c; }
  /// Per-stage flop predictions (paper Sec. II-C): CLS 2b(c-1)N^3,
  /// BSOFI 7b^2N^3, WRP 3(bL-b^2)N^3 for the column/row patterns.
  /// The obs report layer joins these against measured stage times.
  double cls_flops() const;
  double bsofi_flops() const;
  double wrap_flops(Pattern pattern) const;
  /// FSI flops for the pattern (paper: [2(c-1)+7b]bN^3, [2c+7b]bN^3, 3b^2cN^3).
  double fsi_flops(Pattern pattern) const;
  /// Explicit-form flops (paper: 2b^2cN^3, 4b^2cN^3, b^3c^2N^3).
  double explicit_flops(Pattern pattern) const;
};

}  // namespace fsi::selinv
