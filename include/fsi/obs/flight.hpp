#pragma once
/// \file flight.hpp
/// \brief Crash flight recorder: always-on last-N span ring + signal-safe
/// crash dumps.
///
/// The tracing subsystem (trace.hpp) answers "where did the time go" but is
/// off by default; when a long-lived daemon crashes in production the trace
/// buffer is empty and the interesting question — *what was the process
/// doing in its last milliseconds* — has no answer.  The flight recorder
/// closes that gap: every span close writes one fixed-size record into a
/// per-thread ring that wraps (newest overwrites oldest), whether or not
/// FSI_TRACE is on.  The ring holds the last kRingCapacity spans per
/// thread; a push is a handful of relaxed atomic stores, cheap enough at
/// node/stage granularity to leave enabled in release builds
/// (FSI_FLIGHT=0 opts out).
///
/// On SIGSEGV / SIGABRT / SIGBUS / SIGFPE the installed handler writes
/// `crash-<pid>.fsi.json` (to FSI_CRASH_DIR, default the working directory)
/// containing the rings of every thread, a counter snapshot
/// (metrics::totals_signal_safe) and the build-info stamp — then re-raises
/// with the default disposition so exit codes and core dumps are
/// unchanged.  The entire dump path is async-signal-safe: open/write only,
/// no allocation, no locks, no stdio; span names must be string literals
/// (the existing Span contract), which is what makes them readable from
/// the handler.
///
/// `fsi_postmortem` renders a dump into a human summary and a
/// chrome://tracing timeline of the final moments.
///
/// Concurrency: rings are owner-write-only; record fields are relaxed
/// atomics so the crash handler (and the quiesced-test snapshot()) read
/// torn-free values.  A reader racing a wrapping writer may see a mix of
/// an old and a new record's fields — harmless for postmortem forensics,
/// and impossible in tests that snapshot quiesced threads.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fsi::obs::flight {

/// Ring capacity per thread, in records (power of two; ~32 KiB per thread).
inline constexpr int kRingCapacity = 1024;

/// Rings visible to the crash handler / snapshot.  Threads beyond this
/// still record safely into their own (unregistered) ring.
inline constexpr int kMaxThreads = 256;

/// True when the recorder is active (default on; FSI_FLIGHT=0 disables).
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// One recorded span close, as copied out by snapshot().
struct Record {
  const char* name;       ///< string literal (Span contract)
  std::int64_t t0_ns;     ///< start, obs::now_ns() clock
  std::int64_t dur_ns;
  std::uint64_t trace_id; ///< correlation id (0 = untagged)
  std::int32_t omp_tid;   ///< omp_get_thread_num() at close
};

/// Record one span close into the calling thread's ring (no-op when
/// disabled).  Called by obs::record_interval for every closing span.
void record(const char* name, std::int64_t t0_ns, std::int64_t dur_ns,
            std::uint64_t trace_id, std::int32_t omp_tid) noexcept;

/// Total records ever pushed (wrapped records still count).
std::uint64_t recorded() noexcept;

/// Copy out every registered ring's live records as (thread id, record),
/// oldest first per thread.  For tests and tools running on quiesced
/// threads; a concurrent writer can hand a reader one mixed record.
std::vector<std::pair<int, Record>> snapshot();

/// Reset every ring to empty (same non-racing contract as metrics::reset).
void clear() noexcept;

/// Install the SIGSEGV/SIGABRT/SIGBUS/SIGFPE crash handlers (idempotent).
/// Resolves FSI_CRASH_DIR once, here, into a static buffer so the handler
/// itself never calls getenv.  Tools and the serve daemon call this at
/// startup.
void install_crash_handlers();

/// The path the crash handler will write: "<dir>/crash-<pid>.fsi.json".
/// Valid after install_crash_handlers().
const char* crash_dump_path() noexcept;

/// Write a flight-recorder dump to \p path with \p reason as the "signal"
/// field.  This is the handler's own writer — async-signal-safe, open/write
/// only — exposed so tests and tools can produce a dump without crashing.
/// Returns false when the file cannot be created.
bool write_dump(const char* reason, const char* path) noexcept;

}  // namespace fsi::obs::flight
