#pragma once
/// \file exporter.hpp
/// \brief OpenMetrics text exposition of the whole metrics registry.
///
/// Renders every counter, gauge, accumulator and histogram from
/// metrics.hpp in the OpenMetrics text format (the format Prometheus
/// scrapes), so a standard monitoring stack can watch a live daemon with
/// zero custom glue:
///
///   - counters        -> `fsi_<name>` counter families (`_total` samples)
///   - gauges          -> `fsi_<name>` gauge families
///   - accumulators    -> `fsi_<name>` counter families (seconds, monotone)
///   - lifetime hists  -> `fsi_<name>` histogram families: cumulative
///                        `_bucket{le="..."}` series over the decade
///                        buckets, plus `_sum` and `_count`
///   - windowed hists  -> `fsi_<name>_window_{p50,p95,p99,count}` gauges
///                        (the rolling last-10-seconds percentiles)
///   - build info      -> `fsi_build_info{version=...,git_sha=...} 1`
///
/// The document ends with the mandatory `# EOF` terminator.  Two
/// transports consume this renderer: write_openmetrics() (textfile-
/// collector mode, e.g. node_exporter's textfile directory) and the
/// embedded HTTP listener in fsi::serve (serve/metrics_http.hpp), which
/// answers `GET /metrics` on FSI_SERVE_METRICS.

#include <string>

namespace fsi::obs {

/// MIME type a compliant scrape endpoint must answer with.
inline constexpr const char* kOpenMetricsContentType =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// The full registry rendered as one OpenMetrics text document
/// (terminated by "# EOF\n").  Thread-safe; merges slots on read.
std::string openmetrics();

/// Write openmetrics() to \p path atomically enough for textfile
/// collectors (write to "<path>.tmp", then rename).  Returns false on any
/// I/O error.
bool write_openmetrics(const std::string& path);

}  // namespace fsi::obs
