#pragma once
/// \file log.hpp
/// \brief Leveled, thread-safe, structured operational logging.
///
/// Every operational event in the tree — the serve daemon's lifecycle
/// (accept/drop, shed, malformed frame, shutdown), obs::health WARN/FAIL
/// transitions, tool failures — goes through this one sink instead of
/// scattered fprintf calls, so a fleet scheduler's log pipeline sees a
/// single machine-parseable stream.  One line per event:
///
///   logfmt:  ts=2026-08-09T12:34:56.789Z level=warn event=serve.shed
///            reason="admission queue full" depth=64
///   jsonl:   {"ts":"...","level":"warn","event":"serve.shed",...}
///
/// Configuration (read once at process start, adjustable at runtime):
///   FSI_LOG_LEVEL   debug | info | warn | error | off     (default info)
///   FSI_LOG_FORMAT  logfmt | json                         (default logfmt)
///   FSI_LOG_FILE    append to this path instead of stderr
///
/// Rate limiting is *per call site*: each FSI_LOG_* macro expansion owns a
/// static token window, so one chatty site (a hostile client spamming
/// malformed frames) cannot flood the sink or starve other sites.  When a
/// site re-emits after suppression, the line carries a `suppressed=N`
/// field accounting for the dropped events.
///
/// Correlation: while the process-wide active trace id (obs::set_active_trace)
/// is nonzero — e.g. during a serve batch run — every line is tagged
/// `trace=<id>`, so log lines join the chrome://tracing spans of the same
/// request.
///
/// The emit path takes one mutex around format+write; call sites gate on
/// should(level) first (one relaxed atomic load), so disabled levels cost
/// nothing.  Like the rest of fsi::obs this depends only on the standard
/// library.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <string>

namespace fsi::obs::log {

/// Severity, ordered: a configured level admits itself and everything worse.
enum class Level : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

const char* level_name(Level lv) noexcept;

/// Parse "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Returns false (and leaves \p out untouched) on any other spelling.
bool parse_level(const char* s, Level& out) noexcept;

Level level() noexcept;
void set_level(Level lv) noexcept;

/// True when a record at \p lv would be emitted — the cheap front gate.
inline bool should(Level lv) noexcept {
  extern std::atomic<int> g_level;
  return static_cast<int>(lv) >= g_level.load(std::memory_order_relaxed);
}

enum class Format : int { Logfmt = 0, Jsonl = 1 };

Format format() noexcept;
void set_format(Format f) noexcept;

/// Redirect the sink to \p path (append mode).  An empty path returns to
/// stderr.  Returns false (sink unchanged) when the file cannot be opened.
bool set_file(const std::string& path);

/// Redirect the sink to an already-open stream (tests use tmpfile()); the
/// caller keeps ownership.  nullptr returns to stderr.
void set_stream(std::FILE* stream) noexcept;

/// One key/value pair of a structured record.  Values are rendered at
/// construction (this is the cold path); keys must be string literals.
struct Field {
  Field(const char* k, const char* v);
  Field(const char* k, const std::string& v);
  Field(const char* k, long long v);
  Field(const char* k, unsigned long long v);
  Field(const char* k, int v) : Field(k, static_cast<long long>(v)) {}
  Field(const char* k, long v) : Field(k, static_cast<long long>(v)) {}
  Field(const char* k, unsigned v)
      : Field(k, static_cast<unsigned long long>(v)) {}
  Field(const char* k, unsigned long v)
      : Field(k, static_cast<unsigned long long>(v)) {}
  Field(const char* k, double v);
  Field(const char* k, bool v);

  const char* key;
  std::string value;  ///< rendered; quoted/escaped per format at emit
  bool is_string;     ///< string values are quoted, scalars are not
};

/// Per-call-site rate-limiter state; the FSI_LOG_* macros declare one
/// static instance per expansion.  Fixed one-second windows of at most
/// site_limit() events; excess events are counted, not emitted.
struct Site {
  std::atomic<std::int64_t> window_start_ns{0};
  std::atomic<std::uint32_t> emitted_in_window{0};
  std::atomic<std::uint64_t> suppressed{0};
};

/// Events one site may emit per second before suppression (default 50).
/// Runtime-settable so tests can exercise the limiter deterministically.
std::uint32_t site_limit() noexcept;
void set_site_limit(std::uint32_t per_second) noexcept;

/// Rate-limit check for one site.  True = emit now.  False = the event is
/// suppressed (counted into the site's `suppressed` tally, drained into a
/// `suppressed=N` field on the site's next emitted line).
bool admit(Site& site) noexcept;

/// Emit one record.  \p event must be a stable dotted name ("serve.accept");
/// \p site may be nullptr (no suppression accounting).  Fields render in
/// argument order after ts/level/event (and trace when active).
void write(Level lv, const char* event, Site* site,
           std::initializer_list<Field> fields);

/// Total records written / suppressed since process start (tests, stats).
std::uint64_t lines_written() noexcept;

}  // namespace fsi::obs::log

/// Structured logging macros: cheap level gate, then per-site rate limit,
/// then the cold emit path.  Usage:
///   FSI_LOG_WARN("serve.shed", {"reason", "queue full"}, {"depth", depth});
#define FSI_LOG_AT(lvl, event, ...)                                       \
  do {                                                                    \
    if (::fsi::obs::log::should(lvl)) {                                   \
      static ::fsi::obs::log::Site fsi_log_site__;                        \
      if (::fsi::obs::log::admit(fsi_log_site__))                         \
        ::fsi::obs::log::write(lvl, event, &fsi_log_site__,               \
                               {__VA_ARGS__});                            \
    }                                                                     \
  } while (0)

#define FSI_LOG_DEBUG(event, ...) \
  FSI_LOG_AT(::fsi::obs::log::Level::Debug, event, __VA_ARGS__)
#define FSI_LOG_INFO(event, ...) \
  FSI_LOG_AT(::fsi::obs::log::Level::Info, event, __VA_ARGS__)
#define FSI_LOG_WARN(event, ...) \
  FSI_LOG_AT(::fsi::obs::log::Level::Warn, event, __VA_ARGS__)
#define FSI_LOG_ERROR(event, ...) \
  FSI_LOG_AT(::fsi::obs::log::Level::Error, event, __VA_ARGS__)
