#pragma once
/// \file telemetry.hpp
/// \brief Machine-readable bench telemetry: schema-versioned BENCH_*.json.
///
/// Every bench binary builds one BenchTelemetry, feeds it the headline
/// numbers it already prints (GFLOP/s, speedups, errors), and calls write()
/// on exit.  The emitted JSON bundles, under one schema version:
///
///   - the bench's own metrics, each tagged with a unit, whether CI gates on
///     it, and its direction (higher_is_better);
///   - a build/config fingerprint (compiler, build type, OpenMP threads,
///     FTZ state) so a regression can be told apart from a config change;
///   - the shared obs state at export time: counter totals, wall-time
///     accumulators, the health report, and the per-span trace summary.
///
/// tools/bench_compare diffs two such files and fails CI when a gated
/// metric regresses beyond tolerance or health reports FAIL.  Gate on
/// machine-stable *ratios* (efficiency vs DGEMM, speedup vs a baseline
/// algorithm), not raw GFLOP/s, so baselines survive hardware changes.
///
/// Output path: $FSI_BENCH_DIR/BENCH_<name>.json (default: bench/artifacts,
/// created on demand and gitignored — bench artifacts never land in the
/// repository root).

#include <string>
#include <vector>

namespace fsi::obs {

inline constexpr const char* kBenchSchema = "fsi.bench.v1";

/// Directory all bench artifacts (telemetry JSON, trace JSON) are written
/// to: $FSI_BENCH_DIR when set, else "bench/artifacts" relative to the
/// working directory.  Created (recursively) on first use; returned without
/// a trailing slash.
std::string artifact_dir();

/// One exported bench metric.
struct BenchMetric {
  std::string key;
  double value = 0.0;
  std::string unit;               ///< "gflops", "s", "ratio", ...
  bool gate = false;              ///< CI regression-gates on this metric
  bool higher_is_better = true;   ///< direction of "regression"
};

class BenchTelemetry {
 public:
  /// \p bench_name becomes the "bench" field and the output file name
  /// (BENCH_<bench_name>.json).  Wall time is measured from construction.
  explicit BenchTelemetry(std::string bench_name);

  /// Free-form config fingerprint entries ("L"=100, "pattern"="columns").
  void add_info(const std::string& key, const std::string& value);
  void add_info(const std::string& key, double value);

  /// A headline number.  Only gate=true metrics participate in CI
  /// regression checks.
  void add_metric(const std::string& key, double value, std::string unit,
                  bool gate = false, bool higher_is_better = true);

  /// Full schema-versioned document (metrics + fingerprint + obs state).
  std::string json() const;

  /// Serialise to artifact_dir()/BENCH_<name>.json.
  /// Returns the path written, or "" on I/O failure.
  std::string write() const;

  const std::string& bench_name() const { return name_; }

 private:
  std::string name_;
  double start_s_;  ///< steady-clock seconds at construction
  std::vector<std::pair<std::string, std::string>> info_;  ///< key -> JSON value
  std::vector<BenchMetric> metrics_;
};

}  // namespace fsi::obs
