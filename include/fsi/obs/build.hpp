#pragma once
/// \file build.hpp
/// \brief Build-info stamping: one set of provenance fields for every
/// surface a build identifies itself on.
///
/// The same {version, git SHA, compiler, build type, flags} tuple appears in
/// `--version` output of the operational tools, the `build` section of
/// every BENCH_*.json telemetry document, the StatsResponse a live daemon
/// answers, and the crash dumps the flight recorder writes — so a stats
/// poll, a bench artifact and a post-mortem can all be matched to the exact
/// binary that produced them.
///
/// The git SHA and flags are captured by CMake at configure time
/// (src/obs/build_info.hpp.in); the compiler string is the compile-time
/// __VERSION__.  All fields are string literals with static storage, so
/// build_info() is safe to call from an async-signal context (the crash
/// handler embeds them in the dump without any allocation).

#include <string>

namespace fsi::obs {

/// Static build provenance.  Every pointer is a string literal.
struct BuildInfo {
  const char* version;    ///< project version (CMake PROJECT_VERSION)
  const char* git_sha;    ///< short commit SHA at configure time, +dirty
                          ///< suffix when the tree had local edits
  const char* compiler;   ///< compile-time __VERSION__
  const char* build_type; ///< CMAKE_BUILD_TYPE (plus TSan marker)
  const char* cxx_flags;  ///< effective optimisation/arch flags
};

/// The process's build info.  Async-signal-safe (returns static data).
const BuildInfo& build_info() noexcept;

/// The info as a JSON object: {"version":...,"git_sha":...,...}.
std::string build_info_json();

/// Uniform `--version` line for the operational tools:
///   "<tool> <version> (<git_sha>) <compiler> [<build_type>]\n"
std::string version_line(const char* tool);

}  // namespace fsi::obs
