#pragma once
/// \file metrics.hpp
/// \brief Always-on, OpenMP-safe performance counters.
///
/// One registry of per-thread counter slots covering the quantities the
/// paper's performance figures are built from: floating-point operations,
/// bytes moved through the dense kernels, kernel invocations, and mini-MPI
/// traffic.  fsi::util::flops is a thin façade over the Flops counter here,
/// so flop accounting and the tracing subsystem share a single registry.
///
/// Concurrency model (the result of the PR-1 audit of util/flops under the
/// OpenMP loops in cluster()/wrap()): accumulation is strictly thread-local —
/// each thread owns a heap-allocated slot that only it writes — and totals
/// are merged on read.  The owner updates its slot with a plain
/// load-then-store of a relaxed atomic (no read-modify-write, so no lock
/// prefix on the hot path); concurrent readers see a torn-free value via the
/// atomic load.  reset() zeroes other threads' slots and therefore must not
/// race with counting (same contract as the previous implementation).
///
/// Counters are always on: an add() is a thread-local increment, cheap
/// enough for release builds, and the benches rely on flop totals even when
/// tracing is disabled.

#include <cstdint>
#include <utility>
#include <vector>

namespace fsi::obs::metrics {

/// The tracked quantities.  kCount is the slot-array size, not a counter.
enum class Counter : int {
  Flops = 0,       ///< floating point operations (textbook counts)
  BytesMoved,      ///< bytes read+written by dense kernels (model, not HW)
  KernelCalls,     ///< dense kernel invocations (gemm/trsm/ormqr/...)
  MpiMessages,     ///< mini-MPI point-to-point messages sent
  MpiBytes,        ///< mini-MPI point-to-point payload bytes sent
  kCount
};

/// Human-readable name of a counter (e.g. "flops", "bytes_moved").
const char* name(Counter c) noexcept;

/// Add \p n to the calling thread's slot for counter \p c.
void add(Counter c, std::uint64_t n) noexcept;

/// Merge-on-read sum of all threads' slots for \p c since the last reset.
/// Threads that have exited still contribute their counts.
std::uint64_t total(Counter c) noexcept;

/// Zero one counter, or all of them, across every thread's slot.
/// Must not race with concurrent add() (updates may be lost, never torn).
void reset(Counter c) noexcept;
void reset_all() noexcept;

/// Snapshot of every counter's total, in enum order.
std::vector<std::pair<const char*, std::uint64_t>> snapshot();

/// RAII helper measuring the global growth of one counter during its
/// lifetime.  Not reentrant with reset().
class Scope {
 public:
  explicit Scope(Counter c) : counter_(c), start_(total(c)) {}
  std::uint64_t elapsed() const noexcept { return total(counter_) - start_; }

 private:
  Counter counter_;
  std::uint64_t start_;
};

}  // namespace fsi::obs::metrics
