#pragma once
/// \file metrics.hpp
/// \brief Always-on, OpenMP-safe performance counters.
///
/// One registry of per-thread counter slots covering the quantities the
/// paper's performance figures are built from: floating-point operations,
/// bytes moved through the dense kernels, kernel invocations, and mini-MPI
/// traffic.  fsi::util::flops is a thin façade over the Flops counter here,
/// so flop accounting and the tracing subsystem share a single registry.
///
/// Concurrency model (the result of the PR-1 audit of util/flops under the
/// OpenMP loops in cluster()/wrap()): accumulation is strictly thread-local —
/// each thread owns a heap-allocated slot that only it writes — and totals
/// are merged on read.  The owner updates its slot with a plain
/// load-then-store of a relaxed atomic (no read-modify-write, so no lock
/// prefix on the hot path); concurrent readers see a torn-free value via the
/// atomic load.  reset() zeroes other threads' slots and therefore must not
/// race with counting (same contract as the previous implementation).
///
/// Counters are always on: an add() is a thread-local increment, cheap
/// enough for release builds, and the benches rely on flop totals even when
/// tracing is disabled.

#include <cstdint>
#include <utility>
#include <vector>

namespace fsi::obs::metrics {

/// The tracked quantities.  kCount is the slot-array size, not a counter.
enum class Counter : int {
  Flops = 0,       ///< floating point operations (textbook counts)
  BytesMoved,      ///< bytes read+written by dense kernels (model, not HW)
  KernelCalls,     ///< dense kernel invocations (gemm/trsm/ormqr/...)
  MpiMessages,     ///< mini-MPI point-to-point messages sent
  MpiBytes,        ///< mini-MPI point-to-point payload bytes sent
  PoolHits,        ///< workspace-pool acquires served from the free lists
  PoolMisses,      ///< workspace-pool acquires that fell through to malloc
  SchedTasks,      ///< batch-scheduler tasks executed
  SchedSteals,     ///< successful steal-half operations
  ExecNodes,       ///< task-graph nodes executed by the executor
  ExecSteals,      ///< successful steal-half operations in graph runs
  ServeRequests,   ///< inversion requests admitted by the serve front end
  ServeBatches,    ///< coalesced batches dispatched to the engine
  ServeRejected,   ///< requests shed with RETRY-AFTER (queue full)
  ServeDeadlineMiss,  ///< requests rejected because their deadline expired
  ServeCancelled,  ///< requests dropped because the client disconnected
  ServeErrors,     ///< requests answered Malformed or Error
  ServeQuotaRejected,  ///< requests shed because the client was over quota
  ServeBypassEnter,    ///< adaptive policy transitions into bypass
  ServeBypassExit,     ///< adaptive policy transitions out of bypass
  MixedRuns,           ///< FSI runs attempted in mixed (fp32 CLS+WRP) mode
  MixedFallbacks,      ///< mixed runs the health gate sent back to fp64
  StabQrp,             ///< pivoted-QR re-orthogonalisations in the UDT chain
  StabRecombine,       ///< UDT recombination inversions (1 + UDT)^-1
  GreensRecomputes,    ///< EqualTimeGreens from-scratch stabilised recomputes
  kCount
};

/// Human-readable name of a counter (e.g. "flops", "bytes_moved").
const char* name(Counter c) noexcept;

/// Add \p n to the calling thread's slot for counter \p c.
void add(Counter c, std::uint64_t n) noexcept;

/// Merge-on-read sum of all threads' slots for \p c since the last reset.
/// Threads that have exited still contribute their counts.
std::uint64_t total(Counter c) noexcept;

/// Zero one counter across every thread's slot, or everything in the
/// registry (counters, histograms, gauges, accumulators).
/// Must not race with concurrent add() (updates may be lost, never torn).
void reset(Counter c) noexcept;
void reset_all() noexcept;

/// Snapshot of every counter's total, in enum order.
std::vector<std::pair<const char*, std::uint64_t>> snapshot();

/// Async-signal-safe counter totals: writes total(Counter(i)) into out[i]
/// for i < min(n, kCount) and returns how many were written.  Sums a
/// lock-free mirror of the slot registry (no mutex, no allocation), so the
/// crash handler can embed a counter snapshot in its dump.  Slots still
/// registering concurrently may be missed; all completed ones are seen.
int totals_signal_safe(std::uint64_t* out, int n) noexcept;

/// RAII helper measuring the global growth of one counter during its
/// lifetime.  Not reentrant with reset().
class Scope {
 public:
  explicit Scope(Counter c) : counter_(c), start_(total(c)) {}
  std::uint64_t elapsed() const noexcept { return total(counter_) - start_; }

 private:
  Counter counter_;
  std::uint64_t start_;
};

// ---------------------------------------------------------------------------
// Histograms — log-bucketed value distributions for the numerical-health
// observables (same thread-local-slot / merge-on-read model as the
// counters, so record() is safe from OpenMP regions).

/// The tracked distributions.  kCount is the slot-array size.
enum class Hist : int {
  WrapDrift = 0,  ///< ||G_wrap - G_recompute||_max at each stabilisation
  Cond1Reduced,   ///< 1-norm condition estimate of the reduced BSOFI matrix
  SelResidual,    ///< sampled ||(M G_sel - I) block||_max spot checks
  TaskSeconds,    ///< per-task wall time in the batch scheduler
  QueueDepth,     ///< own-deque depth sampled at each scheduler pop
  ReadyDepth,     ///< own-deque depth sampled at each graph-executor pop
  NodeSeconds,    ///< per-node wall time in the graph executor
  ServeLatency,   ///< serve request latency (arrival -> response), seconds
  ServeQueueWait, ///< serve admission-queue wait per request, seconds
  ServeBatchOccupancy,  ///< dispatched batch size / max_batch, in (0, 1]
  kCount
};

/// Decade buckets: bucket i counts samples v with
/// floor(log10(v)) == i + kHistMinDecade; values at or below 10^kHistMinDecade
/// land in bucket 0, values at or above 10^kHistMaxDecade in the last bucket.
inline constexpr int kHistMinDecade = -18;
inline constexpr int kHistMaxDecade = 8;
inline constexpr int kHistBuckets = kHistMaxDecade - kHistMinDecade + 1;

/// Human-readable name of a histogram (e.g. "wrap_drift").
const char* name(Hist h) noexcept;

/// Bucket index for a value (clamped; non-positive and non-finite values go
/// to the extreme buckets so nothing is silently dropped).
int hist_bucket(double value) noexcept;

/// Record one sample into the calling thread's slot.
void record(Hist h, double value) noexcept;

/// Merged view of one histogram across all threads.
struct HistSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;   ///< 0 when count == 0
  double max = 0.0;
  double last = 0.0;  ///< most recently recorded sample (any thread)
  std::uint64_t buckets[kHistBuckets] = {};

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

HistSnapshot hist(Hist h) noexcept;

/// Zero one histogram across every thread's slot (same contract as
/// reset(Counter): must not race with concurrent record()).
void reset(Hist h) noexcept;

// ---------------------------------------------------------------------------
// Windowed histograms — rolling last-~10-seconds percentiles for the serve
// telemetry plane.  The lifetime histograms above accumulate forever, which
// is what benches want but useless as a *control input* (ROADMAP item 1:
// adaptive batching needs the occupancy and queue wait of the last few
// seconds, not of the whole process).  A windowed histogram is a ring of
// kWindowSeconds one-second buckets, each holding fine log-spaced value
// counts; buckets are invalidated lazily when their wall second falls out
// of the window, so there is no sweeper thread.  Recording takes a mutex —
// windowed hists are for request-rate paths (serve), not kernel-rate ones.

/// Width of the rolling window, in one-second ring buckets.
inline constexpr int kWindowSeconds = 10;
/// Log-spaced value resolution: sub-buckets per decade.  8 per decade keeps
/// any percentile estimate within ~33% of the true sample value.
inline constexpr int kWindowSubBuckets = 8;
inline constexpr int kWindowValueBuckets = kHistBuckets * kWindowSubBuckets;

/// Merged view of one histogram's rolling window.  Percentiles are
/// estimated from the log-spaced buckets (geometric midpoint, clamped to
/// the observed [min, max]); an empty window is all zeros.
struct WindowSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

/// Record one sample into \p h's rolling window *and* its lifetime
/// histogram (callers record once; both views stay consistent).
/// \p now_ns is the sample's timestamp on the obs::now_ns() clock; the
/// overload without it stamps the current time.  Thread-safe.
void record_windowed(Hist h, double value, std::int64_t now_ns) noexcept;
void record_windowed(Hist h, double value) noexcept;

/// Snapshot of the samples recorded into \p h's window during the last
/// kWindowSeconds seconds before \p now_ns (current time if omitted).
WindowSnapshot window(Hist h, std::int64_t now_ns) noexcept;
WindowSnapshot window(Hist h) noexcept;

/// Drop every windowed sample of \p h (lifetime histogram untouched).
void reset_window(Hist h) noexcept;

// ---------------------------------------------------------------------------
// Gauges — last-value-wins scalars (single global cell per gauge).

enum class Gauge : int {
  WrapInterval = 0,   ///< DQMC stabilisation interval currently in effect
  FlushToZero,        ///< 1 when FTZ/DAZ was enabled on the main thread
  HealthSampleEvery,  ///< residual spot-check sampling period (0 = off)
  SchedWorkers,       ///< workers of the most recent batch scheduler
  ExecPoolWorkers,    ///< threads currently in the persistent executor pool
  ServeQueueDepth,    ///< serve admission-queue depth (sampled on change)
  ServePolicyWindowUs,  ///< adaptive policy: effective window of the active key
  ServePolicyMaxBatch,  ///< adaptive policy: effective max batch of the active key
  ServePolicyBypass,    ///< adaptive policy: 1 when the active key is in bypass
  ServeReplicas,        ///< daemon replicas sharing this process's endpoint
  StabScaleSpread,      ///< log10(dmax/dmin) of the last UDT chain recombined
  GreensLastDrift,      ///< most recent EqualTimeGreens wrap-drift sample
  GreensMaxDrift,       ///< worst wrap-drift sample since the last reset
  kCount
};

const char* name(Gauge g) noexcept;
void set(Gauge g, double value) noexcept;
double get(Gauge g) noexcept;

// ---------------------------------------------------------------------------
// Wall-time accumulators — named seconds buckets in the shared registry, so
// stage bookkeeping (e.g. Green's-recompute time) lives here instead of in
// hand-rolled per-object accumulators.  Thread-local slots, merged on read.

enum class Accum : int {
  GreensRecompute = 0,  ///< stabilised Green's-function recomputes
  HealthCheck,          ///< health-layer estimator self-cost
  kCount
};

const char* name(Accum a) noexcept;
void add_seconds(Accum a, double s) noexcept;
double seconds(Accum a) noexcept;
void reset(Accum a) noexcept;

}  // namespace fsi::obs::metrics
