#pragma once
/// \file health.hpp
/// \brief Numerical-health monitoring for the FSI/DQMC pipeline.
///
/// The paper's core claim for BSOFI is *numerical stability* of the
/// selected inverse, and DQMC practice shows that wrap/recompute round-off
/// is the failure mode that silently corrupts physics at large beta.  This
/// layer rides on the obs metrics registry and continuously answers
/// "are the numbers still right?" with four cheap streaming estimators:
///
///   - wrap drift      ||G_wrap - G_recompute||_max at every stabilised
///                     recompute (the value is already computed by the
///                     Green's engine — recording it is free);
///   - cond1(reduced)  1-norm condition estimate of the reduced matrix
///                     inverted by BSOFI, using the exact identity
///                     ||M||_1 = 1 + max_i ||B~_i||_1 for p-cyclic normal
///                     form and the explicitly available inverse
///                     (O((bN)^2), negligible next to BSOFI's O(b^2 N^3));
///   - residual        sampled spot checks ||(M G_sel - I) block||_max on
///                     a rotating selected block (two N x N GEMMs per
///                     sampled FSI call — ~1% of one call at the paper's
///                     shape, further divided by the sampling period);
///   - FP sentinels    NaN/Inf appearing in results (FAIL) and accumulated
///                     IEEE exception flags invalid/divbyzero/overflow/
///                     underflow (informational/WARN).
///
/// Observed values stream into the metrics histograms (Hist::WrapDrift,
/// Hist::Cond1Reduced, Hist::SelResidual) so their distributions export
/// alongside the FLOP counters; report() classifies them against
/// configurable thresholds into a HealthReport with an OK/WARN/FAIL row per
/// check, a console table, and schema-versioned JSON for the bench
/// telemetry pipeline.
///
/// Toggles (read once at process start, adjustable programmatically):
///   FSI_HEALTH=0          disable every hook (they become one relaxed
///                         atomic load + branch);
///   FSI_HEALTH_SAMPLE=N   residual spot check on every Nth FSI call
///                         (default 4; 0 disables just the residual check).
/// Thresholds: FSI_HEALTH_DRIFT_WARN/FAIL, FSI_HEALTH_COND_WARN/FAIL,
/// FSI_HEALTH_RESID_WARN/FAIL.
///
/// Layering: like the rest of fsi::obs this depends only on the standard
/// library; callers (dense/bsofi/selinv/qmc) compute the scalar observables
/// with their own kernels and feed plain doubles in.

#include <cstdint>
#include <string>
#include <vector>

#include "fsi/obs/metrics.hpp"

namespace fsi::obs::health {

/// Per-check classification, ordered so that worse compares greater.
enum class Status : int { Ok = 0, Warn = 1, Fail = 2 };

const char* status_name(Status s) noexcept;

/// WARN/FAIL boundaries for the streaming estimators.  Defaults suit the
/// paper's validation setup (cond(M) ~ 1e5, relative errors ~ 1e-10); all
/// are overridable via FSI_HEALTH_* environment variables at process start
/// or set_thresholds() at runtime.
struct Thresholds {
  double drift_warn = 1e-6;  ///< wrap interval is eating digits
  double drift_fail = 1e-2;  ///< wrapped G no longer resembles recomputed G
  double cond_warn = 1e10;   ///< reduced matrix nearly loses double precision
  double cond_fail = 1e14;
  double resid_warn = 1e-6;  ///< selected blocks are not inverse blocks
  double resid_fail = 1e-3;
};

/// Master toggle (FSI_HEALTH, default on).  When off, every record hook is
/// a relaxed atomic load and a branch.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Residual spot-check sampling period: a check runs on every Nth
/// should_sample_residual() call (FSI_HEALTH_SAMPLE, default 4; 0 = never).
int sample_every() noexcept;
void set_sample_every(int every) noexcept;

Thresholds thresholds() noexcept;
void set_thresholds(const Thresholds& t) noexcept;

// -- Record hooks (no-ops while disabled) -----------------------------------

/// Wrap-vs-recompute drift at a stabilisation point.
void record_drift(double drift) noexcept;
/// 1-norm condition estimate of the reduced matrix.
void record_cond1(double cond) noexcept;
/// Selected-block residual ||(M G_sel - I) block||_max.
void record_residual(double resid) noexcept;
/// A NaN/Inf was observed in a result matrix (\p where: producing stage).
void record_nonfinite(const char* where) noexcept;

/// True when it is this call's turn to run a sampled residual spot check
/// (increments the shared sampling counter; false while disabled).
bool should_sample_residual() noexcept;

// -- Reporting --------------------------------------------------------------

/// Bounded time series of the most recent wrap-drift samples, oldest first
/// (the scalar max_drift hides drift *growth*; the series shows it).
std::vector<double> drift_history();
inline constexpr std::size_t kDriftHistoryCapacity = 256;

/// One classified check.
struct CheckRow {
  std::string name;    ///< "wrap_drift", "cond1_reduced", ...
  Status status = Status::Ok;
  std::uint64_t count = 0;  ///< samples observed
  double last = 0.0;
  double worst = 0.0;  ///< max observed (what status is judged on)
  double warn = 0.0;   ///< thresholds used (0 when not threshold-based)
  double fail = 0.0;
  std::string note;    ///< free-form detail (FP flag names, NaN location)
};

/// Aggregated health state: one row per check, overall = worst row.
struct HealthReport {
  std::vector<CheckRow> rows;
  std::vector<double> drift_history;  ///< recent drift samples, oldest first
  Status overall = Status::Ok;

  /// Console table (check, status, samples, last, worst, thresholds).
  std::string str() const;
  /// Schema-versioned machine-readable export, including the drift series.
  std::string json() const;
  void print() const;
};

inline constexpr const char* kHealthSchema = "fsi.health.v1";

/// Build the report from everything recorded since the last reset().
HealthReport report();

/// Clear recorded health state: histograms, drift series, nonfinite count,
/// sampling counter, and the process's accumulated FP exception flags.
void reset() noexcept;

}  // namespace fsi::obs::health
