#pragma once
/// \file trace.hpp
/// \brief RAII tracing spans with chrome://tracing export.
///
/// The paper's whole argument is a per-stage cost breakdown (CLS 2b(c-1)N^3,
/// BSOFI 7b^2N^3, WRP 3(bL-b^2)N^3, Sec. II-C); this subsystem makes those
/// stages first-class observable.  A Span records {name, start, duration,
/// thread} into a lock-free per-thread ring buffer; the global registry can
/// export every recorded event as chrome://tracing JSON (open in
/// chrome://tracing or https://ui.perfetto.dev) or aggregate them into a
/// per-span-name summary (count / total / min / max / p50).
///
/// Tracing is off by default and enabled at runtime by the FSI_TRACE=1
/// environment variable or obs::set_enabled(true) (benches expose a --trace
/// flag).  When disabled a Span costs one relaxed atomic load and a branch —
/// cheap enough to leave spans compiled into release hot paths.
///
/// OpenMP-awareness: each event records both a stable per-thread id (the
/// registration order of the recording thread, used as the chrome "tid") and
/// the omp_get_thread_num() at span close, so imbalance across an
/// `omp parallel for` is visible lane-by-lane in the trace viewer.
///
/// Layering: fsi::obs sits below fsi::util (utilities delegate their
/// counters here) and depends only on the standard library.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace fsi::obs {

namespace flight {
bool enabled() noexcept;  // flight.hpp; forward-declared for Span's gate
}  // namespace flight

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// True when span recording is on (FSI_TRACE=1 at process start, or
/// set_enabled(true) since).
inline bool enabled() noexcept {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Turn span recording on or off at runtime (e.g. from a --trace CLI flag).
void set_enabled(bool on) noexcept;

/// Drop all recorded events (counters are untouched; see metrics.hpp).
void clear() noexcept;

/// Number of events discarded because a thread's ring buffer was full.
std::uint64_t dropped_events() noexcept;

/// Trace timestamp: nanoseconds since the process epoch (steady clock).
/// Public so intervals that cross threads — e.g. the serve queue wait,
/// stamped on the connection thread and closed on the batcher — can be
/// recorded with record_interval().
std::int64_t now_ns() noexcept;

/// Record a completed interval [t0_ns, t1_ns] under \p name into the
/// calling thread's buffer, if tracing is enabled.  Same lifetime contract
/// as Span: \p name must outlive the trace.  The three-argument form tags
/// the event with the process-wide active trace id (see set_active_trace);
/// the four-argument form tags it with an explicit correlation id — the
/// serve plane uses it to stamp each request's wire trace_id onto its
/// spans, so a client-side and a server-side trace can be stitched into
/// one chrome://tracing timeline (events carry args.trace_id).
void record_interval(const char* name, std::int64_t t0_ns,
                     std::int64_t t1_ns) noexcept;
void record_interval(const char* name, std::int64_t t0_ns, std::int64_t t1_ns,
                     std::uint64_t trace_id) noexcept;

/// Process-wide correlation id applied to every span recorded while it is
/// nonzero.  The serve batcher sets it to the carrying request's trace_id
/// for the duration of an engine run, so the per-node executor spans of
/// that batch (fsi.cls / fsi.bsofi / fsi.wrap, recorded on pool threads)
/// are tagged without threading trace context through the task graph.
/// Single-writer by design (one batcher thread); readers are racy-relaxed.
void set_active_trace(std::uint64_t trace_id) noexcept;
std::uint64_t active_trace() noexcept;

/// RAII span: measures the enclosing scope and records it on destruction.
/// \p name must be a string literal (or otherwise outlive the trace);
/// events store the pointer, not a copy.  A span is live when either the
/// trace buffer (FSI_TRACE) or the always-on flight recorder wants it;
/// record_interval routes to whichever are enabled at close.
class Span {
 public:
  explicit Span(const char* name) noexcept
      : name_(name), active_(enabled() || flight::enabled()) {
    if (active_) start_ns_ = now_ns();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (active_) record_interval(name_, start_ns_, now_ns());
  }

 private:
  const char* name_;
  std::int64_t start_ns_ = 0;
  bool active_;
};

/// Aggregated statistics for one span name across all threads.
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  double total_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;
  double p50_s = 0.0;
};

/// Per-span-name aggregation of everything recorded so far, sorted by
/// descending total time.
std::vector<SpanStats> summary();

/// Total recorded seconds for one span name (0 if never recorded) — the
/// report layer uses this to pull per-stage wall times out of the trace.
double total_seconds(const std::string& name);

/// The summary() rendered as a console table.
std::string summary_str();

/// All recorded events as a chrome://tracing JSON document
/// ({"traceEvents": [...]}, "X" complete events, microsecond timestamps).
std::string chrome_trace_json();

/// Write chrome_trace_json() to \p path; returns false on I/O error.
bool write_chrome_trace(const std::string& path);

/// If tracing is enabled, write the trace: to $FSI_TRACE_FILE when set,
/// else "<basename>.trace.json", where a bare basename (no '/') is placed
/// under obs::artifact_dir() so every trace artifact lands in one place.
/// A basename containing a '/' is honoured verbatim.  Returns the path
/// written, or "" when tracing is disabled or the write failed.
/// Benches and examples call this once before exiting.
std::string write_trace_if_enabled(const std::string& basename);

}  // namespace fsi::obs

/// Convenience macro for a scope-long span with a unique variable name.
#define FSI_OBS_CONCAT_(a, b) a##b
#define FSI_OBS_CONCAT(a, b) FSI_OBS_CONCAT_(a, b)
#define FSI_OBS_SPAN(name) \
  ::fsi::obs::Span FSI_OBS_CONCAT(fsi_obs_span_, __LINE__)(name)
