#pragma once
/// \file env.hpp
/// \brief Environment-variable toggles shared by the obs subsystem.
///
/// Every FSI_* runtime toggle goes through env_flag() so that falsy values
/// are honoured uniformly: FSI_TRACE=0, FSI_TRACE=off and FSI_TRACE=false
/// all disable tracing, instead of "any set value reads as enabled".

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace fsi::obs {

/// Parse a boolean environment toggle.  Unset returns \p fallback; the
/// empty string and the case-insensitive values "0", "false", "off", "no"
/// are false; anything else is true.
inline bool env_flag(const char* name, bool fallback) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char lowered[8] = {};
  std::size_t n = 0;
  for (; v[n] != '\0' && n + 1 < sizeof lowered; ++n)
    lowered[n] = static_cast<char>(std::tolower(static_cast<unsigned char>(v[n])));
  if (v[n] != '\0') return true;  // longer than any falsy literal
  return !(n == 0 || std::strcmp(lowered, "0") == 0 ||
           std::strcmp(lowered, "false") == 0 ||
           std::strcmp(lowered, "off") == 0 || std::strcmp(lowered, "no") == 0);
}

/// Integer environment variable; unset or non-numeric returns \p fallback.
inline long env_long(const char* name, long fallback) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return (end != nullptr && end != v && *end == '\0') ? parsed : fallback;
}

/// Floating-point environment variable; unset or non-numeric returns
/// \p fallback.
inline double env_double(const char* name, double fallback) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && end != v && *end == '\0') ? parsed : fallback;
}

}  // namespace fsi::obs
