#pragma once
/// \file report.hpp
/// \brief Model-vs-measured stage reporting.
///
/// Joins measured stage wall times and flop counts (from trace spans and
/// the metrics counters) against the paper's analytic per-stage flop model
/// (CLS 2b(c-1)N^3, BSOFI 7b^2N^3, WRP 3(bL-b^2)N^3, Sec. II-C) and a
/// reference kernel rate (typically the measured DGEMM GFLOP/s), to answer
/// the question the paper's Figs. 8/10 answer: how close does each stage
/// run to the speed the model says the hardware allows?
///
/// The Report class itself is generic (name + measured + predicted per
/// stage); make_fsi_report() is the convenience adapter that builds one
/// from selinv::FsiStats and selinv::ComplexityModel, preferring stage wall
/// times aggregated from the trace when tracing was enabled.

#include <string>
#include <vector>

#include "fsi/obs/trace.hpp"

namespace fsi::obs {

/// One pipeline stage joined against its analytic prediction.
struct StageRow {
  std::string name;
  double measured_s = 0.0;       ///< measured wall time
  double measured_flops = 0.0;   ///< flops actually counted
  double predicted_flops = 0.0;  ///< analytic model flops

  /// Measured rate in GFLOP/s.
  double gflops() const {
    return measured_s > 0.0 ? measured_flops / measured_s * 1e-9 : 0.0;
  }
  /// Model wall time at the reference rate.
  double predicted_s(double ref_gflops) const {
    return ref_gflops > 0.0 ? predicted_flops * 1e-9 / ref_gflops : 0.0;
  }
  /// Efficiency vs the model: 100% means the stage ran exactly as fast as
  /// the model's flops at the reference rate; below 100% is slower.
  double pct_of_predicted(double ref_gflops) const {
    return measured_s > 0.0 ? predicted_s(ref_gflops) / measured_s * 100.0
                            : 0.0;
  }
};

/// Per-stage model-vs-measured report.
class Report {
 public:
  /// \p ref_gflops: reference kernel rate the predictions are priced at.
  explicit Report(double ref_gflops) : ref_gflops_(ref_gflops) {}

  void add_stage(std::string name, double measured_s, double measured_flops,
                 double predicted_flops);

  const std::vector<StageRow>& rows() const { return rows_; }
  double ref_gflops() const { return ref_gflops_; }
  /// Sum row: total measured/predicted over all stages.
  StageRow total() const;

  /// Console table: stage, wall s, GFLOP/s, model s, % of model.
  std::string str() const;
  /// Machine-readable export of the same join.
  std::string json() const;
  void print() const;

 private:
  double ref_gflops_;
  std::vector<StageRow> rows_;
};

}  // namespace fsi::obs

// ---------------------------------------------------------------------------
// FSI adapter (header-only so the obs library stays below selinv).

#include "fsi/selinv/fsi.hpp"

namespace fsi::obs {

/// Build the CLS/BSOFI/WRP model-vs-measured report for one FSI run.
/// Stage wall times come from the trace spans ("fsi.cls" etc.) when tracing
/// recorded them, else from \p stats; flops come from \p stats; predictions
/// from \p model at the paper's Sec. II-C complexities.
inline Report make_fsi_report(const selinv::FsiStats& stats,
                              const selinv::ComplexityModel& model,
                              pcyclic::Pattern pattern, double ref_gflops) {
  const double cls_s = total_seconds("fsi.cls");
  const double bsofi_s = total_seconds("fsi.bsofi");
  const double wrap_s = total_seconds("fsi.wrap");
  Report r(ref_gflops);
  r.add_stage("CLS", cls_s > 0.0 ? cls_s : stats.seconds_cls,
              static_cast<double>(stats.flops_cls), model.cls_flops());
  r.add_stage("BSOFI", bsofi_s > 0.0 ? bsofi_s : stats.seconds_bsofi,
              static_cast<double>(stats.flops_bsofi), model.bsofi_flops());
  r.add_stage("WRP", wrap_s > 0.0 ? wrap_s : stats.seconds_wrap,
              static_cast<double>(stats.flops_wrap),
              model.wrap_flops(pattern));
  return r;
}

}  // namespace fsi::obs
