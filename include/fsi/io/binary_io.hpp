#pragma once
/// \file binary_io.hpp
/// \brief Binary persistence for the library's value types.
///
/// Production DQMC campaigns checkpoint Hubbard-Stratonovich configurations
/// and accumulated measurements between job allocations, and archive
/// selected inversions for offline analysis.  This module provides a small
/// tagged binary format for those objects:
///
///   [magic "FSIB"] [format version u32] [record tag u32] [payload ...]
///
/// Numbers are written in the host's native byte order (the format is a
/// checkpoint format, not an interchange format); every loader validates
/// magic, version, tag and dimensions and throws util::CheckError on any
/// mismatch or truncation.

#include <string>

#include "fsi/dense/matrix.hpp"
#include "fsi/pcyclic/patterns.hpp"
#include "fsi/pcyclic/pcyclic.hpp"
#include "fsi/qmc/hubbard.hpp"
#include "fsi/qmc/measurements.hpp"

namespace fsi::io {

/// Save / load a dense matrix.
void save_matrix(const std::string& path, dense::ConstMatrixView m);
dense::Matrix load_matrix(const std::string& path);

/// Save / load a block p-cyclic matrix (its B blocks).
void save_pcyclic(const std::string& path, const pcyclic::PCyclicMatrix& m);
pcyclic::PCyclicMatrix load_pcyclic(const std::string& path);

/// Save / load a Hubbard-Stratonovich field.
void save_field(const std::string& path, const qmc::HsField& field);
qmc::HsField load_field(const std::string& path);

/// Save / load an accumulated measurement set.
void save_measurements(const std::string& path, const qmc::Measurements& m);
qmc::Measurements load_measurements(const std::string& path);

/// Save / load a selected inversion (pattern + selection + all blocks;
/// every block must have been computed).
void save_selected_inversion(const std::string& path,
                             const pcyclic::SelectedInversion& s);
pcyclic::SelectedInversion load_selected_inversion(const std::string& path);

}  // namespace fsi::io
