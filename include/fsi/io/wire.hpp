#pragma once
/// \file wire.hpp
/// \brief Bounds-checked binary buffer encoding shared by checkpointing and
/// the serve wire protocol.
///
/// binary_io.hpp writes tagged records to FILE*; the serve subsystem needs
/// the same primitive encodings (native byte order, fixed-width integers,
/// contiguous double payloads) into in-memory buffers that travel over a
/// socket.  WireWriter appends to a growable byte vector; WireReader walks a
/// received buffer and throws util::CheckError on any truncation or
/// over-read, so a malformed frame can never read out of bounds.
///
/// Numbers are written in the host's native byte order — the same trade as
/// the checkpoint format: this is an intra-deployment protocol (client and
/// server run on the same architecture), not an interchange format.  The
/// frame header carries a schema version so a mixed deployment fails
/// loudly instead of misdecoding.

#include <cstdint>
#include <string>
#include <vector>

namespace fsi::io {

/// Append-only encoder into a byte vector.
class WireWriter {
 public:
  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_i32(std::int32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  void put_f64(double v);
  /// u64 count followed by the raw doubles.
  void put_f64_vector(const std::vector<double>& v);
  /// u32 length followed by the raw characters (no terminator).
  void put_string(const std::string& s);

 private:
  void put_bytes(const void* data, std::size_t n);
  std::vector<std::uint8_t> buf_;
};

/// Sequential decoder over a received buffer.  Every get_* throws
/// util::CheckError if fewer bytes remain than requested; vector/string
/// lengths are validated against the remaining payload before allocating,
/// so a hostile length prefix cannot trigger an oversized allocation.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& buf)
      : WireReader(buf.data(), buf.size()) {}

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::int32_t get_i32();
  std::uint64_t get_u64();
  std::int64_t get_i64();
  double get_f64();
  std::vector<double> get_f64_vector();
  std::string get_string();

 private:
  void get_bytes(void* out, std::size_t n);
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace fsi::io
