#pragma once
/// \file qr.hpp
/// \brief Blocked Householder QR (DGEQRF / DORMQR family).
///
/// The BSOFI stage of the FSI algorithm factors 2N x N panels with
/// Householder QR and later applies the accumulated orthogonal factors from
/// the right (G = R^-1 Q^T).  The implementation follows LAPACK's compact-WY
/// scheme: unblocked panel factorisation (geqr2) + T-factor accumulation
/// (larft) + blocked application (larfb), with all heavy lifting in gemm.
/// Templated over the scalar like the rest of the dense layer; BSOFI itself
/// always uses the fp64 instantiation (it is the stability-critical stage).

#include <vector>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/matrix.hpp"

namespace fsi::dense {

/// In-place blocked Householder QR of an m x n matrix (m >= n): A = Q R.
/// On exit the upper triangle holds R; the columns below the diagonal hold
/// the Householder vectors (unit diagonal implicit); \p tau holds the n
/// reflector coefficients.
template <typename T>
void geqrf(BasicMatrixView<T> a, std::vector<T>& tau);

inline void geqrf(MatrixView a, std::vector<double>& tau) {
  geqrf<double>(a, tau);
}
inline void geqrf(MatrixViewF a, std::vector<float>& tau) {
  geqrf<float>(a, tau);
}

/// Apply Q or Q^T (as stored by geqrf in \p v / \p tau, k reflectors) to C:
///   Side::Left : C := op(Q) C      (C has v.rows() rows)
///   Side::Right: C := C op(Q)      (C has v.rows() columns)
template <typename T>
void ormqr(Side side, Trans trans, BasicConstMatrixView<T> v,
           const std::vector<T>& tau, BasicMatrixView<T> c);

inline void ormqr(Side side, Trans trans, ConstMatrixView v,
                  const std::vector<double>& tau, MatrixView c) {
  ormqr<double>(side, trans, v, tau, c);
}
inline void ormqr(Side side, Trans trans, ConstMatrixViewF v,
                  const std::vector<float>& tau, MatrixViewF c) {
  ormqr<float>(side, trans, v, tau, c);
}

/// Owning QR factorisation.
template <typename T>
class BasicQrFactorization {
 public:
  /// Factor \p a (consumed); requires rows >= cols.
  explicit BasicQrFactorization(BasicMatrix<T> a);

  /// C := op(Q) C (Side::Left) or C := C op(Q) (Side::Right).
  void apply_q(Side side, Trans trans, BasicMatrixView<T> c) const {
    ormqr<T>(side, trans, packed_, tau_, c);
  }

  /// The n x n upper-triangular R factor (explicit copy).
  BasicMatrix<T> r() const;

  /// The full m x m Q (explicit, mostly for tests).
  BasicMatrix<T> q() const;

  index_t rows() const { return packed_.rows(); }
  index_t cols() const { return packed_.cols(); }
  const BasicMatrix<T>& packed() const { return packed_; }
  const std::vector<T>& tau() const { return tau_; }

 private:
  BasicMatrix<T> packed_;
  std::vector<T> tau_;
};

extern template class BasicQrFactorization<double>;
extern template class BasicQrFactorization<float>;

using QrFactorization = BasicQrFactorization<double>;
using QrFactorizationF = BasicQrFactorization<float>;

/// In-place Householder QR with column pivoting (DGEQP3/DGEQPF family):
///   A P = Q R,   |r_00| >= |r_11| >= ... >= |r_{n-1,n-1}|.
/// At step j the remaining column of largest partial norm is swapped into
/// position j, so the diagonal of R is monotone and *rank-revealing*: for a
/// chain product whose scales span many orders of magnitude, diag(R) exposes
/// the scale ladder that the stabilised-propagator (UDT) layer separates
/// into its D factor.  Storage convention matches geqrf (R in the upper
/// triangle, reflectors below, coefficients in \p tau); \p jpvt receives the
/// permutation: column j of A*P is original column jpvt[j].  Partial column
/// norms are downdated per step and recomputed when cancellation eats them
/// (the LAPACK xGEQPF safeguard), so the pivot order stays reliable even on
/// graded matrices.
template <typename T>
void geqp3(BasicMatrixView<T> a, std::vector<T>& tau,
           std::vector<index_t>& jpvt);

inline void geqp3(MatrixView a, std::vector<double>& tau,
                  std::vector<index_t>& jpvt) {
  geqp3<double>(a, tau, jpvt);
}
inline void geqp3(MatrixViewF a, std::vector<float>& tau,
                  std::vector<index_t>& jpvt) {
  geqp3<float>(a, tau, jpvt);
}

/// Owning column-pivoted QR factorisation: A P = Q R.  Reflector storage is
/// geqrf-compatible, so apply_q reuses the blocked ormqr machinery.
template <typename T>
class BasicQrpFactorization {
 public:
  /// Factor \p a (consumed); requires rows >= cols.
  explicit BasicQrpFactorization(BasicMatrix<T> a);

  /// C := op(Q) C (Side::Left) or C := C op(Q) (Side::Right).
  void apply_q(Side side, Trans trans, BasicMatrixView<T> c) const {
    ormqr<T>(side, trans, packed_, tau_, c);
  }

  /// The n x n upper-triangular R factor (explicit copy; monotone |diag|).
  BasicMatrix<T> r() const;

  /// The full m x m Q (explicit, mostly for tests).
  BasicMatrix<T> q() const;

  /// Column permutation: column j of A*P is original column jpvt()[j].
  const std::vector<index_t>& jpvt() const { return jpvt_; }

  index_t rows() const { return packed_.rows(); }
  index_t cols() const { return packed_.cols(); }
  const BasicMatrix<T>& packed() const { return packed_; }
  const std::vector<T>& tau() const { return tau_; }

 private:
  BasicMatrix<T> packed_;
  std::vector<T> tau_;
  std::vector<index_t> jpvt_;
};

extern template class BasicQrpFactorization<double>;
extern template class BasicQrpFactorization<float>;

using QrpFactorization = BasicQrpFactorization<double>;
using QrpFactorizationF = BasicQrpFactorization<float>;

}  // namespace fsi::dense
