#pragma once
/// \file qr.hpp
/// \brief Blocked Householder QR (DGEQRF / DORMQR family).
///
/// The BSOFI stage of the FSI algorithm factors 2N x N panels with
/// Householder QR and later applies the accumulated orthogonal factors from
/// the right (G = R^-1 Q^T).  The implementation follows LAPACK's compact-WY
/// scheme: unblocked panel factorisation (geqr2) + T-factor accumulation
/// (larft) + blocked application (larfb), with all heavy lifting in gemm.

#include <vector>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/matrix.hpp"

namespace fsi::dense {

/// In-place blocked Householder QR of an m x n matrix (m >= n): A = Q R.
/// On exit the upper triangle holds R; the columns below the diagonal hold
/// the Householder vectors (unit diagonal implicit); \p tau holds the n
/// reflector coefficients.
void geqrf(MatrixView a, std::vector<double>& tau);

/// Apply Q or Q^T (as stored by geqrf in \p v / \p tau, k reflectors) to C:
///   Side::Left : C := op(Q) C      (C has v.rows() rows)
///   Side::Right: C := C op(Q)      (C has v.rows() columns)
void ormqr(Side side, Trans trans, ConstMatrixView v, const std::vector<double>& tau,
           MatrixView c);

/// Owning QR factorisation.
class QrFactorization {
 public:
  /// Factor \p a (consumed); requires rows >= cols.
  explicit QrFactorization(Matrix a);

  /// C := op(Q) C (Side::Left) or C := C op(Q) (Side::Right).
  void apply_q(Side side, Trans trans, MatrixView c) const {
    ormqr(side, trans, packed_, tau_, c);
  }

  /// The n x n upper-triangular R factor (explicit copy).
  Matrix r() const;

  /// The full m x m Q (explicit, mostly for tests).
  Matrix q() const;

  index_t rows() const { return packed_.rows(); }
  index_t cols() const { return packed_.cols(); }
  const Matrix& packed() const { return packed_; }
  const std::vector<double>& tau() const { return tau_; }

 private:
  Matrix packed_;
  std::vector<double> tau_;
};

}  // namespace fsi::dense
