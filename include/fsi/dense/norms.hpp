#pragma once
/// \file norms.hpp
/// \brief Matrix norms and error measures.

#include "fsi/dense/matrix.hpp"

namespace fsi::dense {

/// Frobenius norm ||A||_F.
double frobenius_norm(ConstMatrixView a);

/// 1-norm (max absolute column sum).
double one_norm(ConstMatrixView a);

/// Infinity norm (max absolute row sum).
double inf_norm(ConstMatrixView a);

/// Largest absolute entry.
double max_abs(ConstMatrixView a);

/// True when every entry is finite (no NaN/Inf) — the health layer's
/// result-matrix sentinel.  One pass, early exit on the first bad entry.
bool all_finite(ConstMatrixView a);

/// ||A - B||_F (shapes must match).
double fro_distance(ConstMatrixView a, ConstMatrixView b);

/// ||A - B||_F / ||B||_F — the relative error measure of the paper's
/// correctness validation (Sec. V-A).  Returns ||A||_F when B is zero.
double rel_fro_error(ConstMatrixView a, ConstMatrixView reference);

}  // namespace fsi::dense
