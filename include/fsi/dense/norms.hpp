#pragma once
/// \file norms.hpp
/// \brief Matrix norms and error measures.
///
/// Overloaded for fp64 and fp32 views; accumulation and return values are
/// always double, so the mixed-precision health gates compare fp32 results
/// against fp64 references without an extra promotion pass.

#include "fsi/dense/matrix.hpp"

namespace fsi::dense {

/// Frobenius norm ||A||_F.
double frobenius_norm(ConstMatrixView a);
double frobenius_norm(ConstMatrixViewF a);

/// 1-norm (max absolute column sum).
double one_norm(ConstMatrixView a);
double one_norm(ConstMatrixViewF a);

/// Infinity norm (max absolute row sum).
double inf_norm(ConstMatrixView a);
double inf_norm(ConstMatrixViewF a);

/// Largest absolute entry.
double max_abs(ConstMatrixView a);
double max_abs(ConstMatrixViewF a);

/// True when every entry is finite (no NaN/Inf) — the health layer's
/// result-matrix sentinel.  One pass, early exit on the first bad entry.
bool all_finite(ConstMatrixView a);
bool all_finite(ConstMatrixViewF a);

/// ||A - B||_F (shapes must match).
double fro_distance(ConstMatrixView a, ConstMatrixView b);
double fro_distance(ConstMatrixViewF a, ConstMatrixViewF b);

/// ||A - B||_F / ||B||_F — the relative error measure of the paper's
/// correctness validation (Sec. V-A).  Returns ||A||_F when B is zero.
double rel_fro_error(ConstMatrixView a, ConstMatrixView reference);
double rel_fro_error(ConstMatrixViewF a, ConstMatrixViewF reference);

}  // namespace fsi::dense
