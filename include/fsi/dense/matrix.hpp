#pragma once
/// \file matrix.hpp
/// \brief Column-major dense matrix container and non-owning views.
///
/// All FSI linear algebra operates on these types.  Storage is column-major
/// with an explicit leading dimension on views, matching the BLAS/LAPACK
/// convention used by the paper (Intel MKL), so every kernel signature maps
/// 1:1 onto its BLAS counterpart.  BasicMatrix owns its storage (RAII, no raw
/// new/delete — C++ Core Guidelines R.11); BasicMatrixView /
/// BasicConstMatrixView are cheap non-owning aliases used to address
/// sub-blocks (e.g. the N x N blocks of an NL x NL Hubbard matrix) without
/// copies.
///
/// Every type is templated over the scalar (`T` in {float, double}): the
/// mixed-precision FSI pipeline runs the CLS cluster products and WRP seed
/// walks in fp32 while BSOFI stays fp64 (ROADMAP item 2).  The `Matrix` /
/// `MatrixView` / `ConstMatrixView` aliases keep the fp64 default path
/// source-identical; the `F`-suffixed aliases name the fp32 instantiations.

#include <algorithm>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "fsi/util/check.hpp"

namespace fsi::dense {

/// Index type for matrix dimensions.  32-bit signed, the BLAS/LAPACK
/// convention.  Each dimension is individually bounded by INT_MAX (~2.1e9);
/// what actually guards the flat storage index is the BasicMatrix
/// constructor, which computes rows*cols in 64-bit and FSI_CHECKs that the
/// element count fits std::size_t before allocating — so a huge-dimension
/// request (e.g. arriving via serve) fails loudly instead of wrapping the
/// column stride `j * ld + i`, which is always evaluated in std::size_t.
using index_t = int;

template <typename T>
class BasicMatrixView;

/// Non-owning read-only view of a column-major block.
template <typename T>
class BasicConstMatrixView {
 public:
  using value_type = T;

  BasicConstMatrixView() = default;
  BasicConstMatrixView(const T* data, index_t rows, index_t cols, index_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    FSI_ASSERT(rows >= 0 && cols >= 0 && ld >= rows);
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return ld_; }
  const T* data() const { return data_; }

  const T& operator()(index_t i, index_t j) const {
    FSI_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j) * ld_ + i];
  }

  /// Sub-block of size bm x bn with top-left corner (i, j).
  BasicConstMatrixView block(index_t i, index_t j, index_t bm,
                             index_t bn) const {
    FSI_ASSERT(i >= 0 && j >= 0 && i + bm <= rows_ && j + bn <= cols_);
    return {&(*this)(i, j), bm, bn, ld_};
  }

  /// Pointer to the start of column j.
  const T* col(index_t j) const { return &(*this)(0, j); }

 private:
  const T* data_ = nullptr;
  index_t rows_ = 0, cols_ = 0, ld_ = 0;
};

/// Non-owning mutable view of a column-major block.
template <typename T>
class BasicMatrixView {
 public:
  using value_type = T;

  BasicMatrixView() = default;
  BasicMatrixView(T* data, index_t rows, index_t cols, index_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    FSI_ASSERT(rows >= 0 && cols >= 0 && ld >= rows);
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return ld_; }
  T* data() const { return data_; }

  T& operator()(index_t i, index_t j) const {
    FSI_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j) * ld_ + i];
  }

  BasicMatrixView block(index_t i, index_t j, index_t bm, index_t bn) const {
    FSI_ASSERT(i >= 0 && j >= 0 && i + bm <= rows_ && j + bn <= cols_);
    return {&(*this)(i, j), bm, bn, ld_};
  }

  T* col(index_t j) const { return &(*this)(0, j); }

  operator BasicConstMatrixView<T>() const {  // NOLINT
    return {data_, rows_, cols_, ld_};
  }

 private:
  T* data_ = nullptr;
  index_t rows_ = 0, cols_ = 0, ld_ = 0;
};

/// Owning column-major dense matrix (leading dimension == rows()).
template <typename T>
class BasicMatrix {
 public:
  using value_type = T;

  /// Empty 0 x 0 matrix.
  BasicMatrix() = default;

  /// rows x cols matrix, zero-initialised.
  BasicMatrix(index_t rows, index_t cols)
      : rows_(rows), cols_(cols), data_(checked_count(rows, cols)) {}

  /// rows x cols matrix reusing \p storage's capacity (the workspace-pool
  /// path); contents are zero-initialised like the plain constructor.
  BasicMatrix(index_t rows, index_t cols, std::vector<T>&& storage)
      : rows_(rows), cols_(cols), data_(std::move(storage)) {
    data_.assign(checked_count(rows, cols), T(0));
  }

  /// n x n identity.
  static BasicMatrix identity(index_t n) {
    BasicMatrix m(n, n);
    for (index_t i = 0; i < n; ++i) m(i, i) = T(1);
    return m;
  }

  /// Deep copy of an arbitrary view (compacts the leading dimension).
  static BasicMatrix copy_of(BasicConstMatrixView<T> v) {
    BasicMatrix m(v.rows(), v.cols());
    for (index_t j = 0; j < v.cols(); ++j)
      for (index_t i = 0; i < v.rows(); ++i) m(i, j) = v(i, j);
    return m;
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return rows_; }
  bool empty() const { return data_.empty(); }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T& operator()(index_t i, index_t j) {
    FSI_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }
  const T& operator()(index_t i, index_t j) const {
    FSI_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }

  BasicMatrixView<T> view() { return {data(), rows_, cols_, rows_}; }
  BasicConstMatrixView<T> view() const { return {data(), rows_, cols_, rows_}; }
  BasicMatrixView<T> block(index_t i, index_t j, index_t bm, index_t bn) {
    return view().block(i, j, bm, bn);
  }
  BasicConstMatrixView<T> block(index_t i, index_t j, index_t bm,
                                index_t bn) const {
    return view().block(i, j, bm, bn);
  }

  operator BasicMatrixView<T>() { return view(); }             // NOLINT
  operator BasicConstMatrixView<T>() const { return view(); }  // NOLINT

  /// Set every entry to \p value.
  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Memory footprint in bytes (used by the Edison node memory model).
  std::size_t bytes() const { return data_.size() * sizeof(T); }

  /// Move the underlying storage out (to a workspace pool), leaving an
  /// empty 0 x 0 matrix.
  std::vector<T> release_storage() {
    std::vector<T> out = std::move(data_);
    data_.clear();  // moved-from state is unspecified; make it definitely empty
    rows_ = cols_ = 0;
    return out;
  }

 private:
  /// Validated element count: dimensions non-negative and rows*cols
  /// representable in std::size_t (the overflow guard index_t's doc comment
  /// points at — serve-originated dimensions are client-controlled).
  static std::size_t checked_count(index_t rows, index_t cols) {
    FSI_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
    const auto r = static_cast<std::size_t>(rows);
    const auto c = static_cast<std::size_t>(cols);
    FSI_CHECK(c == 0 || r <= std::numeric_limits<std::size_t>::max() / c,
              "matrix element count overflows std::size_t");
    return r * c;
  }

  index_t rows_ = 0, cols_ = 0;
  std::vector<T> data_;
};

/// The fp64 default scalar: the paper's precision, and the only one the
/// pre-mixed-precision call sites name.
using ConstMatrixView = BasicConstMatrixView<double>;
using MatrixView = BasicMatrixView<double>;
using Matrix = BasicMatrix<double>;

/// fp32 instantiations for the mixed-precision CLS/WRP stages.
using ConstMatrixViewF = BasicConstMatrixView<float>;
using MatrixViewF = BasicMatrixView<float>;
using MatrixF = BasicMatrix<float>;

/// Copy src into dst (shapes must match; leading dimensions may differ).
void copy(ConstMatrixView src, MatrixView dst);
void copy(ConstMatrixViewF src, MatrixViewF dst);

/// dst := src^T (shapes must be transposes of each other).
void transpose_into(ConstMatrixView src, MatrixView dst);
void transpose_into(ConstMatrixViewF src, MatrixViewF dst);

/// Returns src^T as a fresh matrix.
Matrix transposed(ConstMatrixView src);
MatrixF transposed(ConstMatrixViewF src);

/// Set dst to the identity (dst must be square).
void set_identity(MatrixView dst);
void set_identity(MatrixViewF dst);

/// Set every entry of dst to \p value.
void set_all(MatrixView dst, double value);
void set_all(MatrixViewF dst, float value);

/// Widen an fp32 block into an fp64 destination (shapes must match).
void promote(ConstMatrixViewF src, MatrixView dst);
Matrix promoted(ConstMatrixViewF src);

/// Round an fp64 block to fp32 (shapes must match) — the lossy direction;
/// mixed-precision callers demote inputs once and promote results once.
void demote(ConstMatrixView src, MatrixViewF dst);
MatrixF demoted(ConstMatrixView src);

}  // namespace fsi::dense
