#pragma once
/// \file matrix.hpp
/// \brief Column-major dense matrix container and non-owning views.
///
/// All FSI linear algebra operates on these types.  Storage is column-major
/// with an explicit leading dimension on views, matching the BLAS/LAPACK
/// convention used by the paper (Intel MKL), so every kernel signature maps
/// 1:1 onto its BLAS counterpart.  Matrix owns its storage (RAII, no raw
/// new/delete — C++ Core Guidelines R.11); MatrixView / ConstMatrixView are
/// cheap non-owning aliases used to address sub-blocks (e.g. the N x N blocks
/// of an NL x NL Hubbard matrix) without copies.

#include <utility>
#include <vector>

#include "fsi/util/check.hpp"

namespace fsi::dense {

/// Index type for matrix dimensions.  int is ample: the largest matrices in
/// the reproduction are ~10^4 on a side, and BLAS/LAPACK use 32-bit ints.
using index_t = int;

class MatrixView;

/// Non-owning read-only view of a column-major block.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const double* data, index_t rows, index_t cols, index_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    FSI_ASSERT(rows >= 0 && cols >= 0 && ld >= rows);
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return ld_; }
  const double* data() const { return data_; }

  const double& operator()(index_t i, index_t j) const {
    FSI_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j) * ld_ + i];
  }

  /// Sub-block of size bm x bn with top-left corner (i, j).
  ConstMatrixView block(index_t i, index_t j, index_t bm, index_t bn) const {
    FSI_ASSERT(i >= 0 && j >= 0 && i + bm <= rows_ && j + bn <= cols_);
    return {&(*this)(i, j), bm, bn, ld_};
  }

  /// Pointer to the start of column j.
  const double* col(index_t j) const { return &(*this)(0, j); }

 private:
  const double* data_ = nullptr;
  index_t rows_ = 0, cols_ = 0, ld_ = 0;
};

/// Non-owning mutable view of a column-major block.
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(double* data, index_t rows, index_t cols, index_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    FSI_ASSERT(rows >= 0 && cols >= 0 && ld >= rows);
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return ld_; }
  double* data() const { return data_; }

  double& operator()(index_t i, index_t j) const {
    FSI_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j) * ld_ + i];
  }

  MatrixView block(index_t i, index_t j, index_t bm, index_t bn) const {
    FSI_ASSERT(i >= 0 && j >= 0 && i + bm <= rows_ && j + bn <= cols_);
    return {&(*this)(i, j), bm, bn, ld_};
  }

  double* col(index_t j) const { return &(*this)(0, j); }

  operator ConstMatrixView() const { return {data_, rows_, cols_, ld_}; }  // NOLINT

 private:
  double* data_ = nullptr;
  index_t rows_ = 0, cols_ = 0, ld_ = 0;
};

/// Owning column-major dense matrix (leading dimension == rows()).
class Matrix {
 public:
  /// Empty 0 x 0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialised.
  Matrix(index_t rows, index_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)) {
    FSI_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
  }

  /// rows x cols matrix reusing \p storage's capacity (the workspace-pool
  /// path); contents are zero-initialised like the plain constructor.
  Matrix(index_t rows, index_t cols, std::vector<double>&& storage)
      : rows_(rows), cols_(cols), data_(std::move(storage)) {
    FSI_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
    data_.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
                 0.0);
  }

  /// n x n identity.
  static Matrix identity(index_t n) {
    Matrix m(n, n);
    for (index_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  /// Deep copy of an arbitrary view (compacts the leading dimension).
  static Matrix copy_of(ConstMatrixView v) {
    Matrix m(v.rows(), v.cols());
    for (index_t j = 0; j < v.cols(); ++j)
      for (index_t i = 0; i < v.rows(); ++i) m(i, j) = v(i, j);
    return m;
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return rows_; }
  bool empty() const { return data_.empty(); }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  double& operator()(index_t i, index_t j) {
    FSI_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }
  const double& operator()(index_t i, index_t j) const {
    FSI_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }

  MatrixView view() { return {data(), rows_, cols_, rows_}; }
  ConstMatrixView view() const { return {data(), rows_, cols_, rows_}; }
  MatrixView block(index_t i, index_t j, index_t bm, index_t bn) {
    return view().block(i, j, bm, bn);
  }
  ConstMatrixView block(index_t i, index_t j, index_t bm, index_t bn) const {
    return view().block(i, j, bm, bn);
  }

  operator MatrixView() { return view(); }             // NOLINT
  operator ConstMatrixView() const { return view(); }  // NOLINT

  /// Set every entry to \p value.
  void fill(double value) { std::fill(data_.begin(), data_.end(), value); }

  /// Memory footprint in bytes (used by the Edison node memory model).
  std::size_t bytes() const { return data_.size() * sizeof(double); }

  /// Move the underlying storage out (to a workspace pool), leaving an
  /// empty 0 x 0 matrix.
  std::vector<double> release_storage() {
    std::vector<double> out = std::move(data_);
    data_.clear();  // moved-from state is unspecified; make it definitely empty
    rows_ = cols_ = 0;
    return out;
  }

 private:
  index_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// Copy src into dst (shapes must match; leading dimensions may differ).
void copy(ConstMatrixView src, MatrixView dst);

/// dst := src^T (shapes must be transposes of each other).
void transpose_into(ConstMatrixView src, MatrixView dst);

/// Returns src^T as a fresh matrix.
Matrix transposed(ConstMatrixView src);

/// Set dst to the identity (dst must be square).
void set_identity(MatrixView dst);

/// Set every entry of dst to \p value.
void set_all(MatrixView dst, double value);

}  // namespace fsi::dense
