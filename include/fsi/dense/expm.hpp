#pragma once
/// \file expm.hpp
/// \brief Dense matrix exponential.
///
/// The DQMC B-matrices contain the kinetic propagator e^{t dtau K} where K is
/// the lattice adjacency matrix (paper Sec. V-A).  QUEST computes it with a
/// checkerboard approximation; we compute it exactly with the scaling-and-
/// squaring Padé-13 method (Higham 2005), which is what MATLAB/SciPy expm
/// use.  K is computed once per simulation so speed is irrelevant here.

#include "fsi/dense/matrix.hpp"

namespace fsi::dense {

/// e^A for a square matrix (scaling & squaring with a [13/13] Padé
/// approximant).
Matrix expm(ConstMatrixView a);

}  // namespace fsi::dense
