#pragma once
/// \file expm.hpp
/// \brief Dense matrix exponential.
///
/// The DQMC B-matrices contain the kinetic propagator e^{t dtau K} where K is
/// the lattice adjacency matrix (paper Sec. V-A).  QUEST computes it with a
/// checkerboard approximation; we compute it exactly with the scaling-and-
/// squaring Padé-13 method (Higham 2005), which is what MATLAB/SciPy expm
/// use.  K is computed once per simulation so speed is irrelevant here —
/// model setup always uses the fp64 overload; the fp32 one exists only for
/// completeness of the scalar-generic dense layer.

#include "fsi/dense/matrix.hpp"

namespace fsi::dense {

/// e^A for a square matrix (scaling & squaring with a [13/13] Padé
/// approximant).
Matrix expm(ConstMatrixView a);
MatrixF expm(ConstMatrixViewF a);

}  // namespace fsi::dense
