#pragma once
/// \file lu.hpp
/// \brief Blocked LU factorisation with partial pivoting (DGETRF family).
///
/// This is the reproduction's stand-in for the MKL routines the paper uses as
/// its correctness baseline ("G is computed by Intel MKL routines DGETRF and
/// DGETRI").  The factorisation is right-looking and blocked: panel
/// factorisation + pivot application + trsm + gemm trailing update, so its
/// flops run through the tuned Level-3 kernels.  Everything is templated
/// over the scalar (DGETRF/SGETRF); `LuFactorization` stays the fp64
/// default, `LuFactorizationF` is the fp32 instantiation the mixed-precision
/// adjacency walks use.

#include <vector>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/matrix.hpp"

namespace fsi::dense {

/// In-place blocked LU with partial pivoting: P * A = L * U.
/// On exit \p a holds L (unit lower, below diagonal) and U (upper);
/// \p ipiv holds the row swaps (ipiv[i]: row i was swapped with row ipiv[i],
/// applied in ascending order, LAPACK convention).
template <typename T>
void getrf(BasicMatrixView<T> a, std::vector<index_t>& ipiv);

inline void getrf(MatrixView a, std::vector<index_t>& ipiv) {
  getrf<double>(a, ipiv);
}
inline void getrf(MatrixViewF a, std::vector<index_t>& ipiv) {
  getrf<float>(a, ipiv);
}

/// Owning LU factorisation of a square matrix.
template <typename T>
class BasicLuFactorization {
 public:
  /// Factor \p a (consumed).  Throws util::CheckError on exact singularity.
  explicit BasicLuFactorization(BasicMatrix<T> a);

  /// Factor a copy of \p a.
  static BasicLuFactorization of(BasicConstMatrixView<T> a) {
    return BasicLuFactorization(BasicMatrix<T>::copy_of(a));
  }

  /// Solve op(A) X = B in-place (DGETRS).
  void solve(Trans trans, BasicMatrixView<T> b) const;
  /// Solve A X = B in-place.
  void solve(BasicMatrixView<T> b) const { solve(Trans::No, b); }

  /// Solve X A = B in-place (right division — used by the adjacency
  /// relations G_{k,l+1} = G_{k,l} B_{l+1}^{-1} of the paper's Eq. 7).
  void solve_right(BasicMatrixView<T> b) const;

  /// Explicit inverse A^{-1} (DGETRI: triangular inversion + column sweeps).
  BasicMatrix<T> inverse() const;

  /// log |det A| and sign(det A), from the U diagonal and pivot parity.
  double log_abs_det() const;
  int sign_det() const;

  index_t n() const { return factors_.rows(); }
  const BasicMatrix<T>& factors() const { return factors_; }
  const std::vector<index_t>& pivots() const { return ipiv_; }

 private:
  BasicMatrix<T> factors_;
  std::vector<index_t> ipiv_;
};

extern template class BasicLuFactorization<double>;
extern template class BasicLuFactorization<float>;

using LuFactorization = BasicLuFactorization<double>;
using LuFactorizationF = BasicLuFactorization<float>;

/// Convenience: dense inverse of a square matrix via LU.
Matrix inverse(ConstMatrixView a);
MatrixF inverse(ConstMatrixViewF a);

/// Estimate the 1-norm condition number kappa_1(A) = ||A||_1 ||A^{-1}||_1
/// using Hager's power method on the factorisation (a few solves).
/// Used to report cond(M) ~ 1e5 as in the paper's validation section.
double cond1_estimate(const LuFactorization& lu, double a_one_norm);

}  // namespace fsi::dense
