#pragma once
/// \file blas.hpp
/// \brief BLAS-style dense kernels (the reproduction's stand-in for MKL).
///
/// The paper's FSI implementation is built on Level-3 BLAS ("The main
/// operations of the FSI algorithm are Level-3 BLAS operations, such as
/// DGEMM").  No BLAS is installed in this environment, so these kernels are
/// implemented from scratch: gemm uses a packed, register-blocked
/// micro-kernel with OpenMP worksharing; trsm/trtri are recursive blocked
/// algorithms that funnel their flops into gemm.  Every kernel credits its
/// textbook operation count to fsi::util::flops so benches can report Gflops
/// the same way the paper does.
///
/// Each kernel is a function template over the scalar, explicitly
/// instantiated for double and float in the .cpp files (the S/D pairs of the
/// BLAS naming scheme).  The concrete overloads below forward to the
/// templates; they exist because template argument deduction ignores the
/// implicit Matrix -> view conversions the call sites rely on.

#include "fsi/dense/matrix.hpp"

namespace fsi::dense {

/// Transposition selector (BLAS "TRANS").
enum class Trans { No, Yes };
/// Operand side for triangular operations (BLAS "SIDE").
enum class Side { Left, Right };
/// Triangle selector (BLAS "UPLO").
enum class Uplo { Lower, Upper };
/// Unit-diagonal selector (BLAS "DIAG").
enum class Diag { NonUnit, Unit };

/// C := alpha * op(A) * op(B) + beta * C   (DGEMM / SGEMM).
/// op(A) is m x k, op(B) is k x n, C is m x n.
template <typename T>
void gemm(Trans ta, Trans tb, T alpha, BasicConstMatrixView<T> a,
          BasicConstMatrixView<T> b, T beta, BasicMatrixView<T> c);

inline void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a,
                 ConstMatrixView b, double beta, MatrixView c) {
  gemm<double>(ta, tb, alpha, a, b, beta, c);
}
inline void gemm(Trans ta, Trans tb, float alpha, ConstMatrixViewF a,
                 ConstMatrixViewF b, float beta, MatrixViewF c) {
  gemm<float>(ta, tb, alpha, a, b, beta, c);
}

/// Convenience: C := A * B.
Matrix matmul(ConstMatrixView a, ConstMatrixView b);
MatrixF matmul(ConstMatrixViewF a, ConstMatrixViewF b);

/// y := alpha * op(A) * x + beta * y   (DGEMV / SGEMV).
template <typename T>
void gemv(Trans ta, T alpha, BasicConstMatrixView<T> a, const T* x, T beta,
          T* y);

inline void gemv(Trans ta, double alpha, ConstMatrixView a, const double* x,
                 double beta, double* y) {
  gemv<double>(ta, alpha, a, x, beta, y);
}
inline void gemv(Trans ta, float alpha, ConstMatrixViewF a, const float* x,
                 float beta, float* y) {
  gemv<float>(ta, alpha, a, x, beta, y);
}

/// A := A + alpha * x * y^T   (DGER / SGER, rank-1 update).
template <typename T>
void ger(T alpha, const T* x, const T* y, BasicMatrixView<T> a);

inline void ger(double alpha, const double* x, const double* y, MatrixView a) {
  ger<double>(alpha, x, y, a);
}
inline void ger(float alpha, const float* x, const float* y, MatrixViewF a) {
  ger<float>(alpha, x, y, a);
}

/// B := alpha * B + A  elementwise (shapes equal).
template <typename T>
void axpby(T alpha_b, BasicMatrixView<T> b, BasicConstMatrixView<T> a);

inline void axpby(double alpha_b, MatrixView b, ConstMatrixView a) {
  axpby<double>(alpha_b, b, a);
}
inline void axpby(float alpha_b, MatrixViewF b, ConstMatrixViewF a) {
  axpby<float>(alpha_b, b, a);
}

/// A := alpha * A.
template <typename T>
void scal(T alpha, BasicMatrixView<T> a);

inline void scal(double alpha, MatrixView a) { scal<double>(alpha, a); }
inline void scal(float alpha, MatrixViewF a) { scal<float>(alpha, a); }

/// Solve op(A) * X = alpha * B (Side::Left) or X * op(A) = alpha * B
/// (Side::Right) for X, in-place in B.  A is triangular (DTRSM / STRSM).
template <typename T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha,
          BasicConstMatrixView<T> a, BasicMatrixView<T> b);

inline void trsm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
                 ConstMatrixView a, MatrixView b) {
  trsm<double>(side, uplo, trans, diag, alpha, a, b);
}
inline void trsm(Side side, Uplo uplo, Trans trans, Diag diag, float alpha,
                 ConstMatrixViewF a, MatrixViewF b) {
  trsm<float>(side, uplo, trans, diag, alpha, a, b);
}

/// B := alpha * op(A) * B (Side::Left) or alpha * B * op(A) (Side::Right),
/// A triangular (DTRMM / STRMM).
template <typename T>
void trmm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha,
          BasicConstMatrixView<T> a, BasicMatrixView<T> b);

inline void trmm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
                 ConstMatrixView a, MatrixView b) {
  trmm<double>(side, uplo, trans, diag, alpha, a, b);
}
inline void trmm(Side side, Uplo uplo, Trans trans, Diag diag, float alpha,
                 ConstMatrixViewF a, MatrixViewF b) {
  trmm<float>(side, uplo, trans, diag, alpha, a, b);
}

/// In-place inversion of the triangular matrix A (DTRTRI / STRTRI).
template <typename T>
void trtri(Uplo uplo, Diag diag, BasicMatrixView<T> a);

inline void trtri(Uplo uplo, Diag diag, MatrixView a) {
  trtri<double>(uplo, diag, a);
}
inline void trtri(Uplo uplo, Diag diag, MatrixViewF a) {
  trtri<float>(uplo, diag, a);
}

/// Threshold (in flops) below which kernels stay single-threaded.  Exposed so
/// benches/tests can exercise both paths.
inline constexpr std::size_t kParallelFlopThreshold = 1u << 21;

}  // namespace fsi::dense
