#pragma once
/// \file blas.hpp
/// \brief BLAS-style dense kernels (the reproduction's stand-in for MKL).
///
/// The paper's FSI implementation is built on Level-3 BLAS ("The main
/// operations of the FSI algorithm are Level-3 BLAS operations, such as
/// DGEMM").  No BLAS is installed in this environment, so these kernels are
/// implemented from scratch: gemm uses a packed, register-blocked
/// micro-kernel with OpenMP worksharing; trsm/trtri are recursive blocked
/// algorithms that funnel their flops into gemm.  Every kernel credits its
/// textbook operation count to fsi::util::flops so benches can report Gflops
/// the same way the paper does.

#include "fsi/dense/matrix.hpp"

namespace fsi::dense {

/// Transposition selector (BLAS "TRANS").
enum class Trans { No, Yes };
/// Operand side for triangular operations (BLAS "SIDE").
enum class Side { Left, Right };
/// Triangle selector (BLAS "UPLO").
enum class Uplo { Lower, Upper };
/// Unit-diagonal selector (BLAS "DIAG").
enum class Diag { NonUnit, Unit };

/// C := alpha * op(A) * op(B) + beta * C   (DGEMM).
/// op(A) is m x k, op(B) is k x n, C is m x n.
void gemm(Trans ta, Trans tb, double alpha, ConstMatrixView a, ConstMatrixView b,
          double beta, MatrixView c);

/// Convenience: C := A * B.
Matrix matmul(ConstMatrixView a, ConstMatrixView b);

/// y := alpha * op(A) * x + beta * y   (DGEMV).
void gemv(Trans ta, double alpha, ConstMatrixView a, const double* x, double beta,
          double* y);

/// A := A + alpha * x * y^T   (DGER, rank-1 update).
void ger(double alpha, const double* x, const double* y, MatrixView a);

/// B := alpha * B + A  elementwise (shapes equal).
void axpby(double alpha_b, MatrixView b, ConstMatrixView a);

/// A := alpha * A.
void scal(double alpha, MatrixView a);

/// Solve op(A) * X = alpha * B (Side::Left) or X * op(A) = alpha * B
/// (Side::Right) for X, in-place in B.  A is triangular (DTRSM).
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView a, MatrixView b);

/// B := alpha * op(A) * B (Side::Left) or alpha * B * op(A) (Side::Right),
/// A triangular (DTRMM).
void trmm(Side side, Uplo uplo, Trans trans, Diag diag, double alpha,
          ConstMatrixView a, MatrixView b);

/// In-place inversion of the triangular matrix A (DTRTRI).
void trtri(Uplo uplo, Diag diag, MatrixView a);

/// Threshold (in flops) below which kernels stay single-threaded.  Exposed so
/// benches/tests can exercise both paths.
inline constexpr std::size_t kParallelFlopThreshold = 1u << 21;

}  // namespace fsi::dense
