#pragma once
/// \file bsofi.hpp
/// \brief Block Structured Orthogonal Factorisation and Inversion (BSOFI).
///
/// Step 2 of the FSI algorithm (paper Sec. II-C, method from Gogolenko, Bai
/// & Scalettar, Euro-Par 2014): invert the *reduced* block p-cyclic matrix
/// M~ = Q R with a sequence of 2N x N Householder panel QRs marching down
/// the block subdiagonal, then form G~ = R^-1 Q^T.
///
/// The structured R has only three kinds of nonzero blocks — diagonal R_ii,
/// superdiagonal R_{i,i+1} and last-column R_{i,b-1} — so both the
/// factorisation (O(b N^3)) and the inversion (O(b^2 N^3), ~7 b^2 N^3 flops
/// per the paper) exploit the p-cyclic structure instead of paying the
/// O(b^3 N^3) of a dense QR.  BSOFI is the numerically stable heart of FSI:
/// orthogonal transformations keep the clustered chain products from
/// amplifying round-off.

#include <vector>

#include "fsi/dense/matrix.hpp"
#include "fsi/pcyclic/pcyclic.hpp"

namespace fsi::bsofi {

using dense::ConstMatrixView;
using dense::index_t;
using dense::Matrix;

/// The structured QR factorisation of a block p-cyclic matrix in normal
/// form.  Build once, then call inverse().
class Bsofi {
 public:
  /// Factor M~ (the reduced matrix of the FSI pipeline, or any p-cyclic
  /// matrix in normal form).
  explicit Bsofi(const pcyclic::PCyclicMatrix& m);

  /// Full dense inverse G~ = R^-1 Q^T of size (b N) x (b N).
  Matrix inverse() const;

  /// Partial inversion: block row k0 of G~ only (N x bN), in O(b N^3)
  /// instead of the O(b^2 N^3) full inversion — the economical path when a
  /// consumer needs a single seed row (e.g. one equal-time Green's function
  /// block, or the diagonal-only patterns where BSOFI dominates the cost).
  Matrix inverse_block_row(index_t k0) const;

  index_t block_size() const { return n_; }
  index_t num_blocks() const { return b_; }

  /// R_ii (upper triangular, stored in the top of panel i) — test access.
  Matrix r_diag(index_t i) const;
  /// R_{i,i+1} for i in [0, b-1) — test access.
  const Matrix& r_sup(index_t i) const;
  /// R_{i,b-1} for i in [0, b-2) — test access (empty when b < 3).
  const Matrix& r_last(index_t i) const;

  /// Recycle the factorisation's storage (panels, R blocks) into the global
  /// workspace pool.  The object is dead afterwards — call only when no
  /// further inverse()/r_*() access is needed (the batched drivers call it
  /// as soon as the inverse has been formed).
  void release_workspace();

 private:
  index_t n_ = 0, b_ = 0;
  // Panel i (i < b-1): packed 2N x N Householder factors of
  // [X_ii; -B_{i+1}]; panel b-1: packed N x N factors of the final block.
  std::vector<Matrix> panels_;
  std::vector<std::vector<double>> taus_;
  std::vector<Matrix> rsup_;   // R_{i,i+1}, i = 0..b-2
  std::vector<Matrix> rlast_;  // R_{i,b-1}, i = 0..b-3
};

/// Convenience: full inverse of a block p-cyclic matrix via BSOFI.
Matrix invert(const pcyclic::PCyclicMatrix& m);

/// Reference comparator: dense LU inversion of the assembled matrix
/// (the paper's "MKL DGETRF/DGETRI" path).
Matrix invert_dense_lu(const pcyclic::PCyclicMatrix& m);

}  // namespace fsi::bsofi
