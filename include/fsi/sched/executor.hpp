#pragma once
/// \file executor.hpp
/// \brief Persistent worker pool + dependency-aware graph execution.
///
/// Two responsibilities, one pool of long-lived threads:
///
///   - run_ranks(n, body): dispatch body(0..n-1) onto n dedicated pool
///     workers *concurrently* (mini-MPI ranks block on barriers, so they
///     must all run at once, never be queued) and block until all return.
///     This replaces the per-batch std::thread spawn/join in mpi::run — a
///     DQMC run dispatches one batch per measurement sweep, and thread
///     creation latency was pure overhead between sweeps.
///
///   - run_graph(graph, workers, opts): execute a validated TaskGraph on
///     the calling thread (worker 0) plus up to workers-1 pool helpers.
///     Ready nodes flow through the same owner-FIFO / steal-half TaskDeques
///     as the batch scheduler; newly-ready successors go to the *front* of
///     the finishing worker's deque (depth-first, bounding live per-task
///     memory) while thieves take coarse future work from the back.
///
/// The pool grows on demand and never blocks waiting for a busy worker, so
/// nested dispatch (a graph run inside a rank body, a rank batch inside a
/// test) cannot deadlock.  Idle workers sleep on a condition variable.
/// Executor::instance() is the lazily-created, intentionally-leaked global;
/// local instances are constructible for tests.
///
/// Environment (table in docs/parallelism.md): FSI_SCHED (stealing on/off,
/// shared with BatchScheduler), FSI_EXEC_WORKERS, FSI_EXEC_BACKOFF_US.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "fsi/sched/scheduler.hpp"
#include "fsi/sched/task_graph.hpp"
#include "fsi/sched/task_queue.hpp"

namespace fsi::sched {

/// Knobs of one graph run.
struct ExecOptions {
  bool work_stealing = true;  ///< false = nodes never leave their owner
  int backoff_us = 50;        ///< idle backoff between failed steal scans
  int omp_threads = 0;        ///< >0: OMP team size set on every worker

  /// Defaults overlaid with FSI_SCHED / FSI_EXEC_BACKOFF_US.
  static ExecOptions from_env();
};

/// Per-stage node telemetry of one graph run.
struct StageStats {
  std::uint64_t nodes = 0;     ///< nodes executed with this stage tag
  double busy_seconds = 0.0;   ///< summed node durations (span sum)
  double max_seconds = 0.0;    ///< slowest single node
};

/// Aggregate telemetry of one graph run (valid after every worker returned).
struct GraphStats {
  std::uint64_t nodes = 0;
  std::uint64_t steal_batches = 0;
  std::uint64_t stolen_nodes = 0;
  double busy_max_seconds = 0.0;
  double busy_mean_seconds = 0.0;
  std::vector<double> busy_seconds;  ///< per worker, for imbalance export
  double ready_depth_mean = 0.0;     ///< own-deque depth sampled at pops
  /// Longest duration-weighted dependency chain — the lower bound on wall
  /// time with unlimited workers; wall/critical-path is the achievable
  /// speedup ceiling the bench telemetry reports against.
  double critical_path_seconds = 0.0;
  StageStats stage[kNumStages];

  const StageStats& of(Stage s) const {
    return stage[static_cast<int>(s)];
  }
};

/// Cooperative execution state of one TaskGraph over num_workers workers.
/// Construct once (validates the graph, preloads dependency-free nodes to
/// their owner-hint deques), then have each of the num_workers concurrent
/// threads call run_worker() with its own id — mini-MPI ranks can drive one
/// shared GraphRunner directly.  Executor::run_graph wraps this with pool
/// helpers for the single-caller case.
///
/// Exception policy: the first throwing node body cancels the run — the
/// remaining nodes are drained without executing their bodies, so the
/// termination count still reaches zero and no worker deadlocks — and every
/// run_worker() call rethrows that first exception after the drain.
class GraphRunner {
 public:
  GraphRunner(const TaskGraph& graph, int num_workers, ExecOptions options);

  /// Worker \p worker's loop: pop own deque front, else steal, else back
  /// off; returns when every node of the graph has been retired.
  void run_worker(int worker);

  int workers() const { return num_workers_; }

  /// Aggregate telemetry; valid once run_worker() returned on every worker.
  GraphStats stats() const;

 private:
  struct PerWorker {
    WorkerStats base;
    double ready_depth_sum = 0.0;
    std::uint64_t pops = 0;
    StageStats stage[kNumStages];
  };

  const TaskGraph& graph_;
  int num_workers_;
  ExecOptions options_;
  std::atomic<std::uint32_t> remaining_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> deps_;
  std::vector<double> durations_;  ///< per node, written by its executor
  std::vector<std::unique_ptr<TaskDeque>> deques_;
  std::vector<std::unique_ptr<PerWorker>> per_worker_;
  std::atomic<bool> cancelled_{false};
  mutable std::mutex error_mu_;
  std::exception_ptr first_error_;
};

/// The persistent worker pool.
class Executor {
 public:
  Executor() = default;
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// The process-wide pool, created on first use and deliberately leaked
  /// (workers park on a condition variable; joining at static destruction
  /// would race user code, exactly as with WorkspacePool::global()).
  static Executor& instance();

  /// Dispatch body(0), ..., body(n-1) onto n distinct pool workers, block
  /// until all have returned, rethrow the first exception.  Workers are
  /// reused across calls; the pool grows (never blocks) when fewer than n
  /// are free.  When \p omp_threads > 0 each worker's OpenMP team size is
  /// set to it for this batch; otherwise the default captured at pool
  /// construction is restored — a previous batch's setting never leaks.
  void run_ranks(int n, const std::function<void(int)>& body,
                 int omp_threads = 0);

  /// Execute \p graph on the calling thread plus up to workers-1 pool
  /// helpers.  The caller participates as worker 0, so a graph run from
  /// inside a rank body degrades gracefully instead of deadlocking.
  /// Rethrows the first node exception after the graph has drained.
  GraphStats run_graph(const TaskGraph& graph, int workers,
                       const ExecOptions& options);

  /// Threads currently in the pool (grows monotonically).
  int pool_size() const;

  /// run_ranks batches dispatched so far (bench overhead accounting).
  std::uint64_t dispatch_count() const;

 private:
  struct Slot {
    std::function<void()> job;  ///< guarded by mu_; non-empty = assigned
    bool busy = false;          ///< guarded by mu_
  };
  struct Batch;  // dispatch-completion state, defined in executor.cpp

  /// Pick n free slots (growing the pool as needed) and hand each a job.
  /// Returns the shared completion state to wait_batch() on.
  std::shared_ptr<Batch> dispatch(
      int n, const std::function<void(int slot_index)>& job);
  void wait_batch(const std::shared_ptr<Batch>& batch);
  void worker_main(std::size_t slot_index);

  mutable std::mutex mu_;
  std::condition_variable job_cv_;   ///< workers: wait for a job
  std::condition_variable done_cv_;  ///< dispatchers: wait for completion
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
  std::uint64_t dispatches_ = 0;
  int default_omp_threads_ = 0;  ///< OMP ICV captured at first growth
};

}  // namespace fsi::sched
