#pragma once
/// \file task_queue.hpp
/// \brief Per-worker task deque with steal-half semantics.
///
/// Each scheduler worker owns one deque, preloaded with its static share of
/// the batch.  The owner pops from the front (preserving the preload
/// order); an idle thief takes the *back half* in one locked operation, so
/// a single steal rebalances a large backlog instead of migrating tasks one
/// by one.  A plain mutex + std::deque is deliberate: FSI tasks cost
/// milliseconds to seconds of dense linear algebra, so queue-operation
/// latency is noise and the simple structure is trivially correct under the
/// owner/thief race (unlike Chase-Lev, there is nothing lock-free to get
/// subtly wrong).

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace fsi::sched {

class TaskDeque {
 public:
  /// Append a task at the back (preload, or re-queue of stolen work).
  void push(std::uint32_t task) {
    std::lock_guard<std::mutex> lock(mu_);
    q_.push_back(task);
  }

  /// Prepend a task at the front.  The graph executor pushes newly-ready
  /// successors here so the owner continues depth-first (bounding the live
  /// intermediates of a task chain) while thieves still take the coarse
  /// future work from the back.
  void push_front(std::uint32_t task) {
    std::lock_guard<std::mutex> lock(mu_);
    q_.push_front(task);
  }

  /// Owner pop from the front.  Returns false when the deque is empty.
  bool pop(std::uint32_t& task) {
    std::lock_guard<std::mutex> lock(mu_);
    if (q_.empty()) return false;
    task = q_.front();
    q_.pop_front();
    return true;
  }

  /// Thief: move the back ceil(size/2) tasks into \p out (front-to-back
  /// order preserved).  Returns the number of tasks taken (0 if empty).
  std::size_t steal_half(std::vector<std::uint32_t>& out) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t take = (q_.size() + 1) / 2;
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(q_[q_.size() - take + i]);
    }
    q_.erase(q_.end() - static_cast<std::ptrdiff_t>(take), q_.end());
    return take;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
  }

 private:
  mutable std::mutex mu_;
  std::deque<std::uint32_t> q_;
};

}  // namespace fsi::sched
