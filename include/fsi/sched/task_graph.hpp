#pragma once
/// \file task_graph.hpp
/// \brief Dependency-aware task graph: the unit of work the executor runs.
///
/// BatchScheduler distributes *independent* whole-matrix tasks; the FSI
/// stages inside one matrix are not independent — every BSOFI depends on
/// its b cluster products, every wrap seed walk depends on BSOFI.  A
/// TaskGraph expresses exactly that: nodes carry a body, a stage tag (for
/// telemetry) and a dependency count; edges order them.  The executor
/// (executor.hpp) preloads the dependency-free nodes into the same
/// owner-FIFO / steal-half deques the batch scheduler uses and releases
/// successors as their last predecessor finishes — so a straggler matrix's
/// b² seed walks can be stolen by idle workers, which flat OpenMP loops
/// never allowed.
///
/// A graph is built single-threaded, validated (cycle check) once, and run
/// once; it does not own any execution state, so the same const graph could
/// in principle be replayed.

#include <cstdint>
#include <functional>
#include <vector>

namespace fsi::sched {

using NodeId = std::uint32_t;

/// Stage tag of a node, used to bucket node-latency telemetry and to map
/// graph-mode FsiStats onto the paper's CLS / BSOFI / WRP decomposition.
enum class Stage : int {
  Build = 0,  ///< matrix assembly (HS field -> M, BlockOps factorisation)
  Cls,        ///< one cluster product of the factor-of-c reduction
  Bsofi,      ///< inversion of the reduced b-block p-cyclic matrix
  Wrap,       ///< one seed walk of the wrapping stage
  Measure,    ///< per-task measurement accumulation / cleanup
  Other,      ///< anything else
  kCount
};

/// Human-readable stage name ("build", "cls", ...).
const char* stage_name(Stage s) noexcept;

inline constexpr int kNumStages = static_cast<int>(Stage::kCount);

class TaskGraph {
 public:
  /// Append a node.  \p body receives the executing worker's id (so
  /// consumers can keep per-worker output buffers without locking);
  /// \p owner_hint names the worker whose deque the node is preloaded to
  /// when it starts dependency-free (clamped into range by the executor) —
  /// with stealing disabled this *is* the static assignment.
  NodeId add_node(std::function<void(int)> body, Stage stage = Stage::Other,
                  int owner_hint = 0);

  /// Declare that \p from must complete before \p to may start.
  /// Both ids must already exist; self-edges are rejected.
  void add_edge(NodeId from, NodeId to);

  std::size_t num_nodes() const { return nodes_.size(); }

  /// Kahn's-algorithm acyclicity check; throws util::CheckError when the
  /// edges contain a cycle.  The executor validates before running, so a
  /// malformed graph fails fast instead of deadlocking the termination
  /// count.
  void validate() const;

 private:
  friend class GraphRunner;

  struct Node {
    std::function<void(int)> body;
    Stage stage = Stage::Other;
    int owner_hint = 0;
    std::uint32_t num_deps = 0;
    std::vector<NodeId> successors;
  };

  std::vector<Node> nodes_;
};

}  // namespace fsi::sched
