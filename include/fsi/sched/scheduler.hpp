#pragma once
/// \file scheduler.hpp
/// \brief Work-stealing batch scheduler for heterogeneous FSI tasks.
///
/// The paper's coarse-grain level (Alg. 3) distributes thousands of
/// independent Hubbard-matrix inversions over ranks.  A static split is
/// optimal only when every task costs the same; real DQMC batches are
/// heterogeneous (different selection patterns, measurement depths, matrix
/// shapes), so the scheduler preloads each worker's deque with the static
/// contiguous share and then lets idle workers steal the back half of a
/// victim's backlog.  With stealing disabled the execution is exactly the
/// old static split — that mode is kept as the A/B baseline and for
/// measurements of the balance win.
///
/// Termination: an atomic count of unfinished tasks.  A worker whose deque
/// is empty scans the other deques for work; when nothing is stealable it
/// backs off (sleep FSI_SCHED_BACKOFF_US) until the count reaches zero —
/// tasks in flight on other workers may still fail and re-queue nothing, so
/// an idle worker must not exit while work remains.
///
/// Instrumented through obs::metrics: Counter::SchedTasks / SchedSteals,
/// Hist::TaskSeconds (per-task latency) and Hist::QueueDepth (own-deque
/// depth sampled at each pop), Gauge::SchedWorkers.
///
/// Environment (read through obs/env.hpp, table in docs/parallelism.md):
///   FSI_SCHED            — 0/false/off forces the static split
///   FSI_SCHED_BACKOFF_US — idle backoff in microseconds (default 50)

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fsi/sched/task_queue.hpp"

namespace fsi::sched {

struct SchedulerOptions {
  bool work_stealing = true;  ///< false = frozen static split (no stealing)
  int backoff_us = 50;        ///< idle sleep between failed steal scans

  /// Defaults overlaid with FSI_SCHED / FSI_SCHED_BACKOFF_US.
  static SchedulerOptions from_env();
};

/// Per-worker execution statistics, owner-written, read after the batch.
struct WorkerStats {
  std::uint64_t executed = 0;       ///< tasks this worker ran
  std::uint64_t steal_batches = 0;  ///< successful steal_half() calls
  std::uint64_t stolen_tasks = 0;   ///< tasks acquired by stealing
  double busy_seconds = 0.0;        ///< wall time inside task bodies
};

/// One batch of `num_tasks` task indices over `num_workers` workers.  The
/// scheduler is shared state: construct it once, then have each of the
/// num_workers concurrent threads (mini-MPI ranks) call run_worker() with
/// its own id.  Tasks are preloaded contiguously — worker w starts with
/// [w*T/W, (w+1)*T/W), the same assignment the old static split used — and
/// migrate only via stealing.
class BatchScheduler {
 public:
  BatchScheduler(int num_workers, std::uint32_t num_tasks,
                 SchedulerOptions options);

  /// Worker \p worker's main loop: pop own deque, else steal, else back
  /// off; returns when every task of the batch has finished.  \p body is
  /// called exactly once per task index across all workers.
  void run_worker(int worker, const std::function<void(std::uint32_t)>& body);

  int workers() const { return num_workers_; }
  std::uint32_t tasks() const { return num_tasks_; }
  const SchedulerOptions& options() const { return options_; }

  /// Valid once run_worker() has returned on every worker.
  const WorkerStats& stats(int worker) const;
  std::uint64_t total_steal_batches() const;
  std::uint64_t total_stolen_tasks() const;
  double busy_max_seconds() const;
  double busy_mean_seconds() const;
  /// Per-worker in-task wall time, for load-imbalance export.
  std::vector<double> busy_seconds() const;

 private:
  int num_workers_;
  std::uint32_t num_tasks_;
  SchedulerOptions options_;
  std::atomic<std::uint32_t> remaining_;
  std::vector<std::unique_ptr<TaskDeque>> deques_;
  std::vector<std::unique_ptr<WorkerStats>> stats_;
};

}  // namespace fsi::sched
