#pragma once
/// \file workspace_pool.hpp
/// \brief Recycling pool for the dense workspaces of batched FSI calls.
///
/// Every FSI invocation allocates the same family of dense buffers: N x N
/// cluster products and adjacency-move outputs, 2N x N BSOFI panels, and the
/// bN x bN reduced inverse.  In the batched Alg.-3 workload those shapes
/// repeat thousands of times, so the pool keeps released storage on
/// size-keyed free lists and hands it back on the next acquire() — after a
/// one-batch warmup, steady-state batches run without touching the
/// allocator.  Buffers are fungible per element count (a 4x8 release can
/// serve a 2x16 acquire), which keeps the keying trivial and the hit rate
/// high across patterns.
///
/// The pool is type-aware: fp64 and fp32 buffers live on separate shard
/// sets (an fp32 cluster product must never be served a half-sized view of
/// an fp64 buffer or vice versa), so the mixed-precision CLS/WRP stages
/// recycle their fp32 workspaces with the same steady-state behaviour as
/// the default path.  The shared byte cap covers both scalar types.
///
/// Concurrency: free lists are sharded by size key, each shard behind its
/// own mutex, so concurrent mini-MPI ranks and OpenMP threads acquire and
/// recycle without a global bottleneck.  Hits and misses are mirrored into
/// obs::metrics (Counter::PoolHits / Counter::PoolMisses) for telemetry.
///
/// Environment toggles (read through obs/env.hpp, documented in
/// docs/parallelism.md):
///   FSI_SCHED_POOL        — 0/false/off disables pooling (acquire() then
///                           plainly allocates and recycle() frees)
///   FSI_SCHED_POOL_MAX_MB — cap on cached bytes; recycles beyond the cap
///                           drop the buffer instead of caching it

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "fsi/dense/matrix.hpp"

namespace fsi::sched {

using dense::index_t;

class WorkspacePool {
 public:
  /// \p max_bytes caps the cached storage; recycles beyond it are dropped.
  WorkspacePool(bool enabled, std::size_t max_bytes);

  /// The process-wide pool, configured from FSI_SCHED_POOL /
  /// FSI_SCHED_POOL_MAX_MB on first use.  Intentionally leaked so that
  /// recycling from static-destruction contexts stays safe.
  static WorkspacePool& global();

  /// A rows x cols zero-initialised matrix, backed by recycled storage when
  /// a buffer of the same element count is cached.
  dense::Matrix acquire(index_t rows, index_t cols);
  /// fp32 twin of acquire(), served from the fp32 shard set.
  dense::MatrixF acquire_f(index_t rows, index_t cols);

  /// Deep copy of \p src into pool-backed storage (compacts the leading
  /// dimension, like dense::Matrix::copy_of).
  dense::Matrix acquire_copy(dense::ConstMatrixView src);
  dense::MatrixF acquire_copy_f(dense::ConstMatrixViewF src);

  /// Return a matrix's storage to the pool.  Empty matrices and recycles
  /// beyond the byte cap are dropped; disabled pools free immediately.
  void recycle(dense::Matrix&& m);
  void recycle(dense::MatrixF&& m);

  bool enabled() const { return enabled_; }
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// hits / (hits + misses), or 0 when nothing was acquired.
  double hit_rate() const;

  std::size_t cached_bytes() const;
  std::size_t cached_buffers() const;

  /// Drop every cached buffer (counters are kept).
  void clear();

 private:
  static constexpr std::size_t kShards = 8;
  template <typename T>
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::size_t, std::deque<std::vector<T>>> free;
    std::size_t bytes = 0;
  };
  template <typename T>
  Shard<T>& shard_for(Shard<T> (&shards)[kShards], std::size_t count) {
    // Fibonacci-style mixing: raw element counts cluster on multiples of 8
    // (N^2 for even N), which would funnel everything into one shard.
    return shards[(count * 11400714819323198485ull) >> 61];
  }

  template <typename T>
  dense::BasicMatrix<T> acquire_impl(Shard<T> (&shards)[kShards], index_t rows,
                                     index_t cols);
  template <typename T>
  void recycle_impl(Shard<T> (&shards)[kShards], dense::BasicMatrix<T>&& m);

  bool enabled_;
  std::size_t max_bytes_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  Shard<double> shards_[kShards];
  Shard<float> shards_f_[kShards];
};

/// Conveniences on the global pool — what the FSI stages call.
inline dense::Matrix acquire(index_t rows, index_t cols) {
  return WorkspacePool::global().acquire(rows, cols);
}
inline dense::Matrix acquire_copy(dense::ConstMatrixView src) {
  return WorkspacePool::global().acquire_copy(src);
}
inline void recycle(dense::Matrix&& m) {
  WorkspacePool::global().recycle(std::move(m));
}
inline dense::MatrixF acquire_f(index_t rows, index_t cols) {
  return WorkspacePool::global().acquire_f(rows, cols);
}
inline dense::MatrixF acquire_copy_f(dense::ConstMatrixViewF src) {
  return WorkspacePool::global().acquire_copy_f(src);
}
inline void recycle(dense::MatrixF&& m) {
  WorkspacePool::global().recycle(std::move(m));
}

}  // namespace fsi::sched
