#pragma once
/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation.
///
/// DQMC results must be reproducible run-to-run, and the mini-MPI layer needs
/// independent streams per rank, so we use xoshiro256** (public-domain
/// algorithm by Blackman & Vigna) with a splitmix64 seeder and a jump-free
/// "stream id" mix instead of relying on std::mt19937 state-size overhead.

#include <cstdint>

namespace fsi::util {

/// xoshiro256** generator.  Satisfies (a useful subset of)
/// UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed the generator.  Different (seed, stream) pairs give independent
  /// sequences; \p stream is used to derive per-rank / per-thread streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL,
               std::uint64_t stream = 0) noexcept {
    std::uint64_t x = seed ^ (0xbf58476d1ce4e5b9ULL * (stream + 1));
    for (auto& si : s_) si = splitmix64(x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) noexcept { return (*this)() % n; }

  /// Random Ising spin: +1 or -1 with equal probability — the
  /// Hubbard-Stratonovich field values of the DQMC simulation.
  int spin() noexcept { return ((*this)() & 1u) ? 1 : -1; }

 private:
  static std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  static std::uint64_t rotl(std::uint64_t v, int k) noexcept {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace fsi::util
