#pragma once
/// \file flops.hpp
/// \brief Thread-safe floating-point operation accounting.
///
/// The paper reports its results as performance rates (Gflops, Tflops) for
/// each stage of the FSI algorithm.  Instead of relying on hardware counters
/// (unavailable in this environment), every dense kernel in fsi::dense calls
/// fsi::util::flops::add() with the textbook operation count of the call
/// (e.g. 2*m*n*k for GEMM).  Benches then report measured-flops / wall-time,
/// exactly mirroring how the paper derives its Gflops figures from known
/// complexities.
///
/// The counter is thread-local with a global registry so that totals include
/// work done by OpenMP worker threads and mini-MPI ranks.  add() is a single
/// thread-local increment — cheap enough to keep enabled in release builds.
///
/// Since ISSUE 1 this is a façade over the unified observability registry
/// (fsi/obs/metrics.hpp, Counter::Flops), so flop totals, byte counters and
/// trace spans all come from one place.

#include <cstdint>

namespace fsi::util::flops {

/// Add \p n floating point operations to the calling thread's counter.
void add(std::uint64_t n) noexcept;

/// Sum of all per-thread counters since the last reset().
/// Threads that have exited still contribute their counts.
std::uint64_t total() noexcept;

/// Reset all per-thread counters to zero.
void reset() noexcept;

/// RAII helper measuring the flops performed during its lifetime
/// *across all threads*.  Not reentrant with reset().
class Scope {
 public:
  Scope() : start_(total()) {}
  /// Flops accumulated (globally) since construction.
  std::uint64_t elapsed() const noexcept { return total() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace fsi::util::flops
