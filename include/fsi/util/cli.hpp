#pragma once
/// \file cli.hpp
/// \brief Minimal command-line flag parsing for benches and examples.
///
/// All bench binaries run with paper-shaped defaults scaled to a single
/// server; flags such as --N, --L, --c, --threads restore the paper's sizes.
/// Syntax: --name value  or  --name=value.

#include <string>

namespace fsi::util {

/// Parses "--name value" / "--name=value" style flags from argv.
class Cli {
 public:
  Cli(int argc, char** argv);

  /// Value of flag \p name, or \p fallback if absent.
  int get_int(const std::string& name, int fallback) const;
  double get_double(const std::string& name, double fallback) const;
  std::string get_string(const std::string& name, const std::string& fallback) const;
  /// True if "--name" appears (with or without a value).
  bool has(const std::string& name) const;

 private:
  const char* find(const std::string& name) const;

  int argc_;
  char** argv_;
};

}  // namespace fsi::util
