#pragma once
/// \file timer.hpp
/// \brief Wall-clock timing helpers used by the benchmark harnesses.

#include <chrono>
#include <deque>
#include <string>
#include <utility>

namespace fsi::util {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates wall time into named buckets; used for the per-stage
/// (CLS / BSOFI / WRP) runtime profiles of Fig. 8 and Fig. 10.  Buckets keep
/// insertion order and are iterable, so report layers (fsi/obs/report.hpp)
/// can consume them directly.  Not thread-safe: one StageTimer per thread,
/// or guard externally.
class StageTimer {
 public:
  /// RAII guard: adds the guarded scope's duration to a bucket.
  class Guard {
   public:
    explicit Guard(double& bucket) : bucket_(bucket) {}
    Guard(StageTimer& timer, const std::string& name)
        : bucket_(timer.bucket(name)) {}
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { bucket_ += timer_.seconds(); }

   private:
    double& bucket_;
    WallTimer timer_;
  };

  /// Accumulated seconds of \p name, creating the bucket at zero on first
  /// use.  The reference stays valid for the StageTimer's lifetime.
  double& bucket(const std::string& name) {
    for (auto& [n, s] : buckets_)
      if (n == name) return s;
    buckets_.emplace_back(name, 0.0);
    return buckets_.back().second;
  }

  /// Seconds of \p name, or 0 if the bucket does not exist.
  double seconds(const std::string& name) const {
    for (const auto& [n, s] : buckets_)
      if (n == name) return s;
    return 0.0;
  }

  /// Zero every bucket (names are kept, so iteration order is stable
  /// across repetitions of a measurement loop).
  void reset() {
    for (auto& [n, s] : buckets_) s = 0.0;
  }

  /// Named-bucket iteration, in insertion order.
  auto begin() const { return buckets_.begin(); }
  auto end() const { return buckets_.end(); }
  std::size_t size() const { return buckets_.size(); }

 private:
  // deque, not vector: bucket() hands out references (held by live Guards)
  // that must survive later bucket creations.
  std::deque<std::pair<std::string, double>> buckets_;
};

}  // namespace fsi::util
