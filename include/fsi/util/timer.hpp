#pragma once
/// \file timer.hpp
/// \brief Wall-clock timing helpers used by the benchmark harnesses.

#include <chrono>

namespace fsi::util {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates wall time into a named bucket; used for the per-stage
/// (CLS / BSOFI / WRP) runtime profiles of Fig. 8 and Fig. 10.
class StageTimer {
 public:
  /// RAII guard: adds the guarded scope's duration to \p bucket.
  class Guard {
   public:
    explicit Guard(double& bucket) : bucket_(bucket) {}
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { bucket_ += timer_.seconds(); }

   private:
    double& bucket_;
    WallTimer timer_;
  };
};

}  // namespace fsi::util
