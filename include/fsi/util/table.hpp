#pragma once
/// \file table.hpp
/// \brief Console table formatting for the benchmark harnesses.
///
/// Every bench binary reproduces a table or figure from the paper; this
/// printer renders the measured series in the same rows/columns layout the
/// paper reports, so EXPERIMENTS.md can be filled in by copy-paste.

#include <string>
#include <vector>

namespace fsi::util {

/// A simple right-aligned console table.
class Table {
 public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Append a row; cells are already-formatted strings.
  void add_row(std::vector<std::string> cells);

  /// Render with box-drawing separators to a string.
  std::string str() const;

  /// Print to stdout.
  void print() const;

  /// Format a double with \p precision significant decimal digits.
  static std::string num(double v, int precision = 2);
  /// Format an integer.
  static std::string num(long long v);
  /// Format a double in scientific notation (for errors / flop counts).
  static std::string sci(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fsi::util
