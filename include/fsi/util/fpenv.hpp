#pragma once
/// \file fpenv.hpp
/// \brief Floating-point environment control.
///
/// The kinetic propagator e^{t dtau K} has entries that decay exponentially
/// with lattice distance; for large N they reach the subnormal range, and
/// subnormal arithmetic runs ~10-100x slower on x86.  The paper's
/// environment (Intel compilers + MKL on Edison) runs with FTZ/DAZ
/// (flush-to-zero / denormals-are-zero) enabled by default, so the bench
/// binaries opt into the same mode for comparable throughput.  Tests keep
/// strict IEEE semantics (they never call this).

namespace fsi::util {

/// Enable FTZ + DAZ on this thread (x86 MXCSR bits 15 and 6).  No effect on
/// non-x86 builds.  Each OpenMP / mini-MPI worker thread inherits the mode
/// only if it was set before thread creation, so call this first in main().
/// Also records the mode in obs::metrics::Gauge::FlushToZero so telemetry
/// fingerprints carry the FP environment.
void enable_flush_to_zero() noexcept;

/// True when FTZ+DAZ are both set in the calling thread's MXCSR (always
/// false on non-x86 builds).
bool flush_to_zero_enabled() noexcept;

/// Accumulated IEEE exception flags of this thread, as a bitmask matching
/// <cfenv> (FE_INVALID | FE_DIVBYZERO | FE_OVERFLOW | FE_UNDERFLOW only —
/// FE_INEXACT is raised by essentially every operation and is masked out).
int fp_flags_raised() noexcept;

/// Clear the accumulated IEEE exception flags.
void clear_fp_flags() noexcept;

}  // namespace fsi::util
