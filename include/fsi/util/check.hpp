#pragma once
/// \file check.hpp
/// \brief Error-handling macros used across the FSI libraries.
///
/// Two tiers, following the C++ Core Guidelines (I.6/I.8: state preconditions
/// and postconditions):
///   - FSI_CHECK(cond, msg): always-on precondition check; throws
///     fsi::util::CheckError. Used on public API boundaries where the cost is
///     negligible compared to the O(N^3) work behind it.
///   - FSI_ASSERT(cond): debug-only internal invariant check (compiled out in
///     release builds via NDEBUG), used inside hot kernels.

#include <sstream>
#include <stdexcept>
#include <string>

#include <cassert>

namespace fsi::util {

/// Exception thrown by FSI_CHECK on a violated precondition.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "FSI_CHECK failed: (" << cond << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace fsi::util

#define FSI_CHECK(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::fsi::util::check_failed(#cond, __FILE__, __LINE__, (msg));        \
    }                                                                     \
  } while (0)

#define FSI_ASSERT(cond) assert(cond)
