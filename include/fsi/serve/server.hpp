#pragma once
/// \file server.hpp
/// \brief The long-lived inversion daemon: accept loop, admission control,
/// request batching and deadline handling.
///
/// Thread structure (see docs/serving.md for the full lifecycle):
///   - one *accept* thread blocking in Listener::accept_once();
///   - one *reader* thread per connection: splits frames, decodes and
///     validates requests, resolves c and q, and admits them to the
///     AdmissionQueue (or answers RetryAfter / DeadlineMiss / Malformed
///     inline — rejects never consume queue slots or engine time);
///   - one *batcher* thread: pops coalesced same-key batches from the
///     queue, filters requests whose deadline expired or whose client
///     disconnected while queued, builds (or reuses) the qmc::HubbardModel
///     for the batch key, runs the engine — by default
///     qmc::run_fsi_batch on the persistent executor pool — and writes one
///     response per surviving request.
///
/// Responses are written under a per-connection mutex, so a client may
/// pipeline many requests over one connection and receive answers as the
/// batches complete (responses carry the request id; order is not
/// guaranteed across batches).
///
/// Overload behaviour is explicit by construction: the queue is the only
/// buffer, it is bounded, and a full queue turns into RetryAfter responses
/// with a suggested backoff — never into unbounded memory or a silent
/// stall.  Every outcome is counted in obs::metrics (serve_requests,
/// serve_rejected, serve_deadline_miss, ...) and latencies are recorded
/// into the serve_latency_s / serve_queue_wait_s histograms, which the
/// telemetry JSON exports.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fsi/qmc/multi_gf.hpp"
#include "fsi/serve/policy.hpp"
#include "fsi/serve/protocol.hpp"
#include "fsi/serve/socket.hpp"

namespace fsi::serve {

/// Pluggable inversion engine (test seam: overload and shutdown tests
/// substitute a deterministic stub; production uses qmc::run_fsi_batch).
using Engine = std::function<std::vector<qmc::Measurements>(
    const qmc::HubbardModel&, const std::vector<qmc::FsiBatchTask>&,
    const qmc::FsiBatchOptions&)>;

/// Server configuration.  Every knob has an FSI_SERVE_* environment
/// override (documented in docs/parallelism.md); from_env() applies them
/// on top of the defaults.
struct ServerOptions {
  Endpoint endpoint = Endpoint{true, "fsi_serve.sock", "", 0};
  std::size_t queue_depth = 64;       ///< admission-queue bound
  std::int64_t batch_window_us = 2000;///< straggler wait when forming a batch
  std::size_t max_batch = 8;          ///< max requests coalesced per batch
  std::uint32_t retry_after_ms = 50;  ///< backoff hint in RetryAfter rejects
  std::int64_t default_deadline_ms = 0;  ///< applied when a request has none
  /// Per-request JSONL access log path ("" = off): one line per response
  /// with id, trace_id, status, timing breakdown and batch occupancy —
  /// appended, flushed per line, so `tail -f` works on a live daemon.
  std::string access_log;
  /// OpenMetrics scrape endpoint spec ("" = off), e.g. "tcp:127.0.0.1:9464".
  /// The fsi_serve tool starts a serve::MetricsExporter here so standard
  /// Prometheus infrastructure can watch the daemon (see metrics_http.hpp).
  std::string metrics_endpoint;
  /// Adaptive batching (see policy.hpp): zero ceilings resolve to
  /// batch_window_us / max_batch, so the static knobs stay the upper bound
  /// and `adaptive.enabled = false` restores the fixed-window behaviour.
  AdaptiveConfig adaptive;
  /// Per-client queued-slot quota (AdmissionQueue fairness): one connection
  /// may hold at most this many queue slots; over-quota requests are shed
  /// with RetryAfter instead of starving other clients.  0 = no quota.
  std::size_t client_quota = 0;
  /// Replica count this daemon *reports* (stats/gauge; the fsi_serve tool
  /// runs that many Server instances sharing one TCP port via reuse_port).
  std::size_t replicas = 1;
  /// Set SO_REUSEPORT on a tcp: endpoint so sibling replicas can bind the
  /// same port (rejected for unix: endpoints at start()).
  bool reuse_port = false;
  qmc::FsiBatchOptions batch;         ///< executor knobs of the engine runs
  Engine engine;                      ///< null = qmc::run_fsi_batch

  /// Defaults overridden by FSI_SERVE_SOCKET, FSI_SERVE_QUEUE,
  /// FSI_SERVE_BATCH_WINDOW_US, FSI_SERVE_MAX_BATCH,
  /// FSI_SERVE_RETRY_AFTER_MS, FSI_SERVE_DEADLINE_MS, FSI_SERVE_WORKERS,
  /// FSI_SERVE_LOG, FSI_SERVE_METRICS, FSI_SERVE_ADAPTIVE,
  /// FSI_SERVE_CLIENT_QUOTA, FSI_SERVE_REPLICAS.
  static ServerOptions from_env();
};

/// Lifetime aggregate counters of one Server (monotonic; also mirrored
/// into obs::metrics for the telemetry export).
struct ServerStats {
  std::uint64_t connections = 0;    ///< connections accepted
  std::uint64_t admitted = 0;       ///< requests admitted to the queue
  std::uint64_t served_ok = 0;      ///< Ok responses
  std::uint64_t rejected_full = 0;  ///< RetryAfter responses (queue full)
  std::uint64_t rejected_quota = 0; ///< RetryAfter responses (client quota)
  std::uint64_t deadline_miss = 0;  ///< DeadlineMiss responses
  std::uint64_t cancelled = 0;      ///< dropped: client gone before dispatch
  std::uint64_t malformed = 0;      ///< Malformed responses
  std::uint64_t errors = 0;         ///< Error responses
  std::uint64_t shed_shutdown = 0;  ///< ShuttingDown responses at stop()
  std::uint64_t batches = 0;        ///< engine batches dispatched
  std::uint64_t batched_requests = 0;  ///< requests carried by those batches
  std::size_t queue_high_water = 0; ///< max queue depth observed
  std::uint64_t models_built = 0;   ///< HubbardModel constructions (cache misses)
  std::uint64_t model_cache_hits = 0;  ///< batches served from the cache
  std::size_t model_cache_size = 0; ///< current model-cache entries (bounded)

  double batch_occupancy_mean() const {
    return batches > 0
               ? static_cast<double>(batched_requests) /
                     static_cast<double>(batches)
               : 0.0;
  }
};

/// The daemon.  start() spawns the threads and returns; stop() (or the
/// destructor) wakes everything, answers queued requests with
/// ShuttingDown, and joins.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the endpoint and launch the accept + batcher threads.
  /// Throws util::CheckError if the endpoint cannot be bound.
  void start();

  /// Graceful stop: no new connections, queued requests answered
  /// ShuttingDown, in-flight batch finished, threads joined.  Idempotent.
  void stop();

  /// The bound endpoint (TCP port 0 resolved after start()).
  const Endpoint& endpoint() const;

  ServerStats stats() const;

  /// The live introspection snapshot the daemon answers to a StatsRequest:
  /// lifetime counters, queue gauges, model-cache hit rate, uptime, and
  /// rolling-window latency / queue-wait / occupancy percentiles.  Safe to
  /// call from any thread while the server runs.
  StatsResponse stats_snapshot() const;

  /// Latency percentile (seconds) over all Ok responses so far;
  /// \p p in [0, 1].  Returns 0 when nothing was served.
  double latency_quantile(double p) const;

  /// The adaptive batching controller (live; see policy.hpp).  Tests and
  /// tools read per-key tuning state through it.
  const AdaptivePolicy& policy() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fsi::serve
