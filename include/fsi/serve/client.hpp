#pragma once
/// \file client.hpp
/// \brief Client for the fsi::serve daemon: blocking and async submission
/// over one pipelined connection.
///
/// One Client owns one connection and a reader thread.  submit() assigns a
/// fresh request id, writes the frame, and returns a std::future resolved
/// by the reader when the matching response arrives — so many requests can
/// be in flight at once and share a server-side batch.  request() is the
/// blocking convenience wrapper.
///
/// When the connection drops, every outstanding future is resolved with
/// Status::Error ("connection closed"), never abandoned; outstanding stats
/// futures fail with an exception.
///
/// Tracing: submit() stamps client_send_ns on every request, and — when
/// obs tracing is enabled — assigns a process-unique trace_id (pid << 32 |
/// id) to untraced requests.  The reader records a "serve.client.rtt" span
/// per response and synthesizes the server-side breakdown
/// (serve.server.queue_wait / batch_wait / exec, from the v2 nanosecond
/// fields) onto the *client's* timeline, centred in the RTT slack, so one
/// chrome://tracing artifact shows the stitched client+server journey of
/// each request under a shared trace_id.

#include <cstdint>
#include <future>
#include <memory>

#include "fsi/serve/protocol.hpp"
#include "fsi/serve/socket.hpp"

namespace fsi::serve {

class Client {
 public:
  /// Connect to a serving endpoint and start the reader.
  /// Throws util::CheckError if the connection fails.
  explicit Client(const Endpoint& endpoint);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request (the id field is overwritten with a fresh id) and
  /// return a future for its response.  Throws util::CheckError if the
  /// connection is already closed.
  std::future<InvertResponse> submit(InvertRequest request);

  /// Blocking round trip: submit() + wait.
  InvertResponse request(InvertRequest req);

  /// Ask the server for a live stats snapshot (v2 admin message).  The
  /// future fails with an exception if the connection closes first.
  std::future<StatsResponse> submit_stats();

  /// Blocking stats round trip.
  StatsResponse stats();

  /// True while the connection is up.
  bool connected() const;

  /// Close the connection (outstanding futures resolve with Error).
  void close();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fsi::serve
