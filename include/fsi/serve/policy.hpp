#pragma once
/// \file policy.hpp
/// \brief Adaptive batching policy for the serve daemon.
///
/// The fixed straggler window is a bet: hold a batch open for
/// `batch_window_us` and hope compatible requests arrive to share the
/// engine run.  Under a pipelined burst the bet pays (batches fill
/// instantly and the window is never charged); under sparse or closed-loop
/// traffic every request pays the full window for nothing and coalescing
/// *halves* throughput — the `batching_speedup 0.47` regression that
/// motivated this module (ROADMAP item 1).
///
/// AdaptivePolicy closes the loop: it observes every dispatched batch
/// (size, straggler wait actually paid, engine time, queue depth left
/// behind) and tunes the per-BatchKey coalescing window and max batch from
/// those measurements — the same discipline PSelInv applies to distributed
/// work mapping, applied to the batching layer.  The state machine per key:
///
///   Coalesce ── bypass_after consecutive losing windows ──► Bypass
///      ▲                                                      │
///      └── resume_after consecutive backlogged dispatches ◄───┘
///
/// - A *losing* window is a batch that dispatched alone (size 1) after
///   paying a straggler wait: the measured per-request cost exceeded the
///   solo service time, i.e. the measured batching speedup of that batch
///   was < 1.  Each loss halves the window (multiplicative decrease);
///   `bypass_after` consecutive losses engage Bypass: window 0, max batch
///   1 — coalescing off, every request dispatches immediately.
/// - A *winning* batch (2+ requests amortised one engine run, at a
///   measured per-request cost below the solo service time) doubles the
///   window back toward its configured ceiling.
/// - In Bypass the only signal left is the queue: a dispatch that leaves
///   same-key work queued means arrivals outpace service and coalescing
///   would amortise again.  `resume_after` consecutive backlogged
///   dispatches exit Bypass (window restarts at the floor — slow start —
///   and max batch at the ceiling to absorb the backlog).
///
/// The two streak thresholds are the hysteresis: one stray loss (or one
/// stray burst) moves a counter, not the mode, so an adversarial
/// alternating trace cannot make the policy flap (test_serve_policy.cpp
/// asserts the transition bound).
///
/// Keys are client-supplied (they contain t, u, beta), so the per-key
/// table is LRU-bounded like the server's model cache.

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <utility>
#include <vector>

#include "fsi/serve/queue.hpp"

namespace fsi::serve {

/// Tuning constants of the adaptive policy.  Zero ceilings are resolved by
/// the server from its static knobs (`batch_window_us`, `max_batch`), so a
/// default-constructed config means "adapt within the configured limits".
struct AdaptiveConfig {
  bool enabled = true;
  std::int64_t window_ceiling_us = 0;  ///< 0 = ServerOptions::batch_window_us
  std::int64_t window_floor_us = 50;   ///< smallest non-bypass window
  std::size_t max_batch_ceiling = 0;   ///< 0 = ServerOptions::max_batch
  double ema_alpha = 0.25;             ///< smoothing of the occupancy/cost EMAs
  int bypass_after = 4;   ///< consecutive losing windows to enter Bypass
  int resume_after = 3;   ///< consecutive backlogged dispatches to exit
  std::size_t max_keys = 64;  ///< LRU bound of the per-key table
};

/// One dispatched batch, as the policy sees it (fed by the batcher after
/// the engine run).
struct BatchObservation {
  std::size_t batch_size = 0;        ///< live requests the batch carried
  std::size_t queue_depth_after = 0; ///< queue depth right after the pop
  std::int64_t window_wait_ns = 0;   ///< straggler wait actually paid
  std::int64_t exec_ns = 0;          ///< engine time of the batch
};

/// Live tuning state of one BatchKey (also the wire/dashboard snapshot).
struct KeyPolicy {
  std::int64_t window_us = 0;   ///< effective coalescing window
  std::size_t max_batch = 1;    ///< effective max batch
  bool bypass = false;          ///< true = coalescing disabled for this key
  double ema_occupancy = 0.0;   ///< smoothed dispatched batch size
  double ema_solo_ns = 0.0;     ///< smoothed engine time of size-1 batches
  double speedup = 0.0;         ///< measured batching speedup estimate
                                ///< (solo cost / per-request batched cost;
                                ///< 0 until both sides have samples)
  std::uint64_t batches = 0;    ///< observations folded into this state
  std::uint64_t bypass_enters = 0;
  std::uint64_t bypass_exits = 0;
  int lose_streak = 0;
  int win_streak = 0;
};

/// Per-key adaptive batching controller.  plan() is consulted by the
/// batcher before every pop; observe() feeds the dispatched batch back.
/// Thread-safe (one mutex — this runs at batch rate, not kernel rate).
class AdaptivePolicy {
 public:
  explicit AdaptivePolicy(AdaptiveConfig config);

  /// The window / max-batch the next batch of \p key should use.
  /// Disabled policy (or an unseen key) returns the configured ceilings.
  BatchPlan plan(const BatchKey& key);

  /// Fold one dispatched batch into \p key's state and retune.  Updates the
  /// serve_policy_* gauges and bypass transition counters in obs::metrics.
  void observe(const BatchKey& key, const BatchObservation& obs);

  /// Snapshot of one key's state (default-constructed plan for an unseen
  /// key) and of the most recently observed key (what dashboards show).
  KeyPolicy state(const BatchKey& key) const;
  KeyPolicy active_state() const;

  /// Every tracked key's state, most recently touched first (the stats v4
  /// per-key table; bounded by AdaptiveConfig::max_keys).
  std::vector<std::pair<BatchKey, KeyPolicy>> snapshot() const;

  std::size_t keys() const;
  std::uint64_t bypass_enters() const;
  std::uint64_t bypass_exits() const;
  const AdaptiveConfig& config() const { return config_; }

 private:
  struct Entry {
    BatchKey key;
    KeyPolicy state;
  };
  /// Find or create \p key's entry, moving it to the LRU front.  Caller
  /// holds the lock.
  Entry& touch(const BatchKey& key);
  void publish_gauges(const KeyPolicy& s) const;

  AdaptiveConfig config_;
  mutable std::mutex mu_;
  std::list<Entry> entries_;  ///< LRU front = most recently touched
  KeyPolicy active_;          ///< copy of the last observed key's state
  std::uint64_t bypass_enters_ = 0;
  std::uint64_t bypass_exits_ = 0;
};

}  // namespace fsi::serve
