#pragma once
/// \file queue.hpp
/// \brief Admission control and request coalescing for the serve daemon.
///
/// The queue is the server's only buffer, and it is bounded: when it is
/// full, try_push fails and the caller answers RETRY-AFTER instead of
/// queueing without bound (explicit backpressure, the ISSUE's overload
/// contract).  The batcher drains it with next_batch(), which coalesces
/// *compatible* requests — same lattice, L, cluster size and physics
/// parameters, i.e. the same BatchKey — into one engine batch, waiting up
/// to a short window for stragglers so concurrent clients share a single
/// task-graph run (amortising the executor wake-up and giving the graph
/// enough parallelism to fill the pool).
///
/// Deadlines and cancellation are *checked*, not enforced, here: the queue
/// stores the absolute expiry and the liveness callback, and the server
/// filters expired or disconnected requests when it forms a batch.  This
/// keeps the queue free of response-path knowledge and makes the filter
/// order deterministic (arrival order).

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <condition_variable>
#include <vector>

#include "fsi/serve/protocol.hpp"

namespace fsi::serve {

/// Requests coalesce into one engine batch iff their keys compare equal:
/// the model (lattice + physics + L) and the cluster size must match, since
/// one qmc::HubbardModel and one selinv configuration carry the whole batch.
struct BatchKey {
  std::uint32_t lx = 0, ly = 0, l = 0;
  index_t c = 0;
  double t = 0.0, u = 0.0, beta = 0.0;
  /// Requested precision mode (fsi::Precision wire integer).  Part of the
  /// key: a mixed and an fp64 request must never share an engine run, since
  /// the whole batch executes under one FsiBatchOptions::precision.
  std::uint32_t precision = 0;

  friend bool operator==(const BatchKey& a, const BatchKey& b) {
    return a.lx == b.lx && a.ly == b.ly && a.l == b.l && a.c == b.c &&
           a.t == b.t && a.u == b.u && a.beta == b.beta &&
           a.precision == b.precision;
  }
  friend bool operator!=(const BatchKey& a, const BatchKey& b) {
    return !(a == b);
  }
  /// Strict weak order so keys can index ordered containers.
  friend bool operator<(const BatchKey& a, const BatchKey& b);
};

/// Stable hash of a BatchKey for wire/dashboard rows: the key holds
/// client-supplied doubles (t, u, beta), so stats snapshots carry this
/// digest instead of the raw fields.
std::uint64_t hash(const BatchKey& key);

/// One admitted request waiting for a batch slot.
struct PendingRequest {
  InvertRequest request;
  index_t c = 0;  ///< resolved cluster size
  index_t q = 0;  ///< resolved wrapping offset
  /// Connection the request arrived on; the queue's per-client quota
  /// accounting is keyed by it (0 = unattributed, never quota-limited).
  std::uint64_t client_id = 0;
  std::int64_t arrival_ns = 0;   ///< obs::now_ns() at admission
  std::int64_t deadline_ns = 0;  ///< absolute expiry (0 = none)
  /// obs::now_ns() when next_batch gathered this request out of the queue —
  /// the boundary between its queue wait and its batch-formation wait in
  /// the per-request timing breakdown.  Stamped by the queue.
  std::int64_t popped_ns = 0;
  /// Wire schema the request arrived with; the response is encoded in the
  /// same dialect so v1 clients keep decoding.
  std::uint32_t schema = kSchemaVersion;
  /// Deliver the response; must be safe to call from the batcher thread and
  /// must tolerate a concurrently closed connection.
  std::function<void(InvertResponse&&)> respond;
  /// False once the client's connection is gone — the batcher then drops
  /// the request instead of inverting for nobody.
  std::function<bool()> alive;

  BatchKey key() const {
    return BatchKey{request.lx, request.ly, request.l,    c,
                    request.t,  request.u,  request.beta, request.precision};
  }
  bool expired(std::int64_t now_ns) const {
    return deadline_ns != 0 && now_ns >= deadline_ns;
  }
};

/// How a batch of one key should be formed: how long to hold it open for
/// stragglers and how many requests it may coalesce.  Produced per key by
/// the adaptive policy (or from the static knobs when the policy is off).
struct BatchPlan {
  std::chrono::microseconds window{0};
  std::size_t max_batch = 1;
};

/// Why admit() refused a request (Ok = admitted).
enum class Admit {
  Ok = 0,
  Full,       ///< queue at max_depth — shed with RetryAfter
  OverQuota,  ///< this client already holds its per-client slot quota
};

/// Bounded MPMC queue with key-coalescing batch pop.  All operations are
/// thread-safe; next_batch blocks.
class AdmissionQueue {
 public:
  /// \p max_per_client caps how many queued slots one client (connection)
  /// may hold at once, so a single aggressive pipeliner cannot occupy the
  /// whole queue and starve everyone else into RetryAfter; 0 = no quota.
  explicit AdmissionQueue(std::size_t max_depth,
                          std::size_t max_per_client = 0);

  /// Admit a request.  Returns a rejection reason — without blocking —
  /// when the queue is at max_depth, the client is over its quota, or the
  /// queue is shut down; the caller sheds the request explicitly.
  Admit admit(PendingRequest&& r);

  /// Legacy convenience: admit() == Admit::Ok.
  bool try_push(PendingRequest&& r);

  /// Block until a request is available (or shutdown), then gather the
  /// oldest request plus every queued request with the same BatchKey, in
  /// arrival order, up to the plan's max_batch.  If the batch is not full,
  /// waits up to the plan's window for compatible stragglers to arrive.
  /// Requests with other keys stay queued.  The planner is called once,
  /// with the key of the oldest request, after that request is available —
  /// which is what lets an adaptive policy choose a per-key window.
  /// Returns an empty vector only at shutdown with an empty queue.
  std::vector<PendingRequest> next_batch(
      const std::function<BatchPlan(const BatchKey&)>& plan);

  /// Fixed-plan overload (the pre-adaptive behaviour).
  std::vector<PendingRequest> next_batch(std::chrono::microseconds window,
                                         std::size_t max_batch);

  /// Stop accepting and wake next_batch.  Queued requests remain for
  /// drain().
  void shutdown();

  /// Remove and return everything still queued (used at shutdown to answer
  /// ShuttingDown).
  std::vector<PendingRequest> drain();

  std::size_t depth() const;
  std::size_t max_depth() const { return max_depth_; }
  std::size_t max_per_client() const { return max_per_client_; }
  /// High-water mark of depth() since construction.
  std::size_t max_depth_seen() const;
  /// Queued requests currently held by \p client_id.
  std::size_t client_depth(std::uint64_t client_id) const;

 private:
  /// Move every entry matching \p key (arrival order) into \p out, up to
  /// max_batch total.  Caller holds the lock.
  void take_matching(const BatchKey& key, std::size_t max_batch,
                     std::vector<PendingRequest>& out);
  void note_depth_locked();
  void release_client_locked(std::uint64_t client_id);

  const std::size_t max_depth_;
  const std::size_t max_per_client_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingRequest> queue_;
  /// Queued-slot count per client id; entries are erased at zero so the
  /// map stays bounded by the queue depth, not by client churn.
  std::map<std::uint64_t, std::size_t> clients_;
  std::size_t high_water_ = 0;
  bool shutdown_ = false;
};

}  // namespace fsi::serve
