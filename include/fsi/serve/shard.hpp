#pragma once
/// \file shard.hpp
/// \brief Client-side BatchKey sharding across serve replicas.
///
/// Coalescing only happens inside one daemon's AdmissionQueue, so when the
/// front end scales out to N replicas, requests that *could* share a batch
/// must land on the same replica or the scale-out defeats the batching the
/// engine is built around.  The client therefore shards by BatchKey, not
/// round-robin: every request whose key hashes alike goes to the same
/// replica, keeping coalescing intact while different models spread across
/// the fleet.
///
/// shard_for() uses rendezvous (highest-random-weight) hashing: each
/// (key, replica) pair gets a deterministic score and the replica with the
/// highest score wins.  Unlike `hash % n`, growing or shrinking the fleet
/// by one replica only remaps the keys whose winner changed (~1/n of
/// them), so a rolling restart does not reshuffle every client.
///
/// ShardedClient is the thin convenience wrapper: one Client per replica
/// endpoint, routing submit()/request() by the request's key.  It is NOT a
/// load balancer — a single hot key saturates one replica by design; the
/// tuning guide (docs/tuning.md) covers when to prefer SO_REUSEPORT kernel
/// spreading instead.

#include <cstdint>
#include <memory>
#include <vector>

#include "fsi/serve/client.hpp"
#include "fsi/serve/queue.hpp"
#include "fsi/serve/socket.hpp"

namespace fsi::serve {

/// Deterministic 64-bit FNV-1a hash of a BatchKey's value bits.  Stable
/// across processes and runs (no per-process seed) so client and operator
/// tooling agree on placement.
std::uint64_t batch_key_hash(const BatchKey& key);

/// Rendezvous shard of \p key among \p replicas endpoints (0-based).
/// Returns 0 when replicas <= 1.
std::size_t shard_for(const BatchKey& key, std::size_t replicas);

/// One Client per replica, routed by BatchKey rendezvous hash.
class ShardedClient {
 public:
  /// Connect to every endpoint; throws util::CheckError if any fails.
  explicit ShardedClient(const std::vector<Endpoint>& endpoints);

  /// Replica index this request routes to (exposed for tests/tools).
  std::size_t route(const InvertRequest& request) const;

  /// Submit to the routed replica (see Client::submit).
  std::future<InvertResponse> submit(InvertRequest request);

  /// Blocking round trip against the routed replica.
  InvertResponse request(InvertRequest req);

  /// Stats snapshot of replica \p i.
  StatsResponse stats(std::size_t i);

  std::size_t replicas() const { return clients_.size(); }
  Client& client(std::size_t i) { return *clients_.at(i); }

 private:
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace fsi::serve
