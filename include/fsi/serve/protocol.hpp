#pragma once
/// \file protocol.hpp
/// \brief Wire protocol of the fsi::serve inversion service.
///
/// A client ships a Hubbard-Stratonovich field configuration plus the model
/// parameters that define its Hubbard matrices; the server answers with the
/// measurement quantities computed from the selected inversion (paper
/// Alg. 3's "fields travel, matrices don't" trade, applied across process
/// boundaries).  Framing is length-prefixed:
///
///   [u32 magic "FSRV"] [u32 payload bytes] [payload]
///
/// and every payload is schema-versioned:
///
///   [u32 schema version] [u32 message type] [u64 request id] [body ...]
///
/// Payload encoding reuses io::WireWriter / io::WireReader (native byte
/// order, bounds-checked decode — see io/wire.hpp for the interchange
/// caveat).  A frame with a bad magic or an implausible length is
/// unrecoverable (the stream cannot be resynchronised) and closes the
/// connection; a well-framed payload with an unsupported schema version is
/// answered with Status::Malformed so old clients fail loudly.
///
/// docs/serving.md is the authoritative protocol and lifecycle document.

#include <cstdint>
#include <string>
#include <vector>

#include "fsi/dense/matrix.hpp"
#include "fsi/util/check.hpp"

namespace fsi::serve {

using dense::index_t;

inline constexpr std::uint32_t kFrameMagic = 0x56525346;  // "FSRV" LE
/// Current wire schema.  v2 added end-to-end tracing (trace_id + client
/// send timestamp on requests, a nanosecond timing breakdown on responses)
/// and the Stats message pair.  v3 added the per-request precision field
/// (fsi::Precision) and the precision-used / mixed-fallback echo on
/// responses.  Each version's bodies are strict supersets of the previous
/// — extension fields append after the older body — so the server decodes
/// all of them and answers each request in the schema it arrived with; a
/// v1 or v2 client never sees a v3 frame.
inline constexpr std::uint32_t kSchemaVersion = 3;
/// Oldest schema decode_payload still accepts.
inline constexpr std::uint32_t kMinSchemaVersion = 1;
/// Version tag of the StatsResponse *snapshot layout* (independent of the
/// wire schema so the stats body can evolve without a protocol bump).
/// v2 appended the build-provenance strings so a stats poll identifies the
/// exact binary answering it; v1 decoders were written before those fields
/// existed and simply never read them.  v3 appends the adaptive-batching
/// policy block (live per-key tuning state, quota shedding, replica count)
/// the same append-only way.  v4 appends the mixed-precision totals and
/// the full per-key adaptive-policy table (one row per tracked BatchKey,
/// what fsi_top renders).
inline constexpr std::uint32_t kStatsVersion = 4;
/// Upper bound on one frame's payload; a declared length beyond this is
/// treated as a malformed stream (protects the server from a hostile or
/// corrupt length prefix).  64 MiB fits fields for N*L ~ 8M sites-slices.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

enum class MsgType : std::uint32_t {
  InvertRequest = 1,
  InvertResponse = 2,
  StatsRequest = 3,   ///< admin: ask for a live stats snapshot (v2+)
  StatsResponse = 4,  ///< admin: the snapshot (v2+)
};

/// Response status.  RetryAfter and DeadlineMiss are *load-shedding*
/// outcomes: the server refuses work explicitly instead of queueing without
/// bound (see docs/serving.md, capacity semantics).
enum class Status : std::uint32_t {
  Ok = 0,
  RetryAfter = 1,    ///< admission queue full; back off retry_after_ms
  DeadlineMiss = 2,  ///< deadline expired before execution started
  Malformed = 3,     ///< request failed validation (message has detail)
  ShuttingDown = 4,  ///< server stopping; request was not executed
  Error = 5,         ///< internal failure (message has detail)
};
const char* status_name(Status s) noexcept;

/// One inversion request: model parameters + the HS field.
struct InvertRequest {
  std::uint64_t id = 0;      ///< client-assigned; echoed in the response
  std::uint32_t lx = 4;      ///< lattice extent x
  std::uint32_t ly = 1;      ///< lattice extent y (1 = periodic chain)
  std::uint32_t l = 8;       ///< imaginary-time slices L
  std::uint32_t c = 0;       ///< cluster size (0 = divisor of L near sqrt(L))
  std::int32_t q = -1;       ///< wrap offset in [0, c); -1 = derive from seed
  std::uint64_t seed = 0;    ///< q derivation stream (see resolve_q)
  double t = 1.0;            ///< hopping amplitude
  double u = 2.0;            ///< on-site interaction U
  double beta = 1.0;         ///< inverse temperature
  std::int64_t deadline_us = 0;  ///< relative budget; 0 = none, < 0 = expired
  bool time_dependent = true;    ///< also compute Rows/Columns + SPXX
  std::vector<double> field;     ///< HsField::serialize(), length l * lx * ly

  // --- schema v2 extension (defaults when decoded from a v1 frame) ---
  std::uint64_t trace_id = 0;       ///< correlation id stitched across the
                                    ///< socket; 0 = untraced request
  std::int64_t client_send_ns = 0;  ///< client clock at send (opaque to the
                                    ///< server; echoed into the access log)

  // --- schema v3 extension ---
  /// Requested fsi::Precision as its wire integer (0 = fp64, 1 = mixed;
  /// validate_request rejects anything else).  Older frames decode to 0,
  /// so pre-v3 clients always get the fp64 path.
  std::uint32_t precision = 0;
};

/// One inversion response.
struct InvertResponse {
  std::uint64_t id = 0;
  Status status = Status::Error;
  std::uint32_t retry_after_ms = 0;   ///< RetryAfter: suggested backoff
  std::int32_t q_used = 0;            ///< the wrap offset actually used
  bool deadline_exceeded = false;     ///< Ok result that finished past deadline
  std::uint64_t queue_wait_us = 0;    ///< arrival -> batch dispatch
  std::uint64_t execute_us = 0;       ///< engine time of the carrying batch
  std::uint32_t batch_size = 0;       ///< occupancy of the carrying batch
  std::uint32_t l = 0;                ///< Measurements dimensions (Ok only)
  std::uint32_t dmax = 0;
  std::vector<double> measurements;   ///< qmc::Measurements::serialize()
  std::string message;                ///< human-readable detail on errors

  // --- schema v2 extension: per-request timing breakdown (all zero when
  // encoded for a v1 client).  The nanosecond fields split the request's
  // server-side journey so a client can print where time went and place
  // synthesized server spans on its own trace timeline:
  //   queue_wait_ns : admission -> first gathered out of the queue
  //   batch_wait_ns : gathered -> engine start (straggler window + setup)
  //   exec_ns       : engine run of the carrying batch
  std::uint64_t trace_id = 0;       ///< echo of the request's trace_id
  std::uint64_t queue_wait_ns = 0;
  std::uint64_t batch_wait_ns = 0;
  std::uint64_t exec_ns = 0;
  double batch_occupancy = 0.0;     ///< carrying batch size / max_batch

  // --- schema v3 extension: mixed-precision outcome (zero for v1/v2
  // clients and for fp64 requests) ---
  std::uint32_t precision_used = 0;  ///< the request's effective precision
                                     ///< mode (fsi::Precision wire integer)
  /// True when the carrying batch had at least one mixed task the health
  /// gate sent back to fp64 (the fallback is per task inside the engine,
  /// so this is a batch-level signal; the result is always gated either
  /// way).
  bool mixed_fallback = false;
};

/// Rolling-window percentile summary of one serve histogram (the last
/// ~obs::metrics::kWindowSeconds seconds, not process lifetime).
struct WindowStat {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// One tracked BatchKey's live adaptive-policy state in a stats v4
/// snapshot (fsi_top's per-key table).  The key itself holds
/// client-supplied doubles, so the row carries a stable hash of it rather
/// than the raw fields.
struct PolicyKeyRow {
  std::uint64_t key_hash = 0;   ///< serve::hash(BatchKey) of the key
  std::int64_t window_us = 0;   ///< effective coalescing window
  std::uint64_t max_batch = 1;  ///< effective max batch
  bool bypass = false;          ///< coalescing disabled for this key
  double speedup = 0.0;         ///< measured batching-speedup EMA
};

/// Live introspection snapshot answered to a StatsRequest.  Lifetime
/// counters mirror ServerStats; the WindowStat fields are rolling windows
/// so consecutive polls show current load, not process history.
struct StatsResponse {
  std::uint64_t id = 0;
  std::uint32_t stats_version = kStatsVersion;
  std::uint64_t uptime_ns = 0;        ///< since Server::start()
  std::uint64_t connections = 0;
  std::uint64_t admitted = 0;
  std::uint64_t served_ok = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t deadline_miss = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t malformed = 0;
  std::uint64_t errors = 0;
  std::uint64_t shed_shutdown = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;
  std::uint64_t models_built = 0;
  std::uint64_t model_cache_hits = 0;
  std::uint64_t model_cache_size = 0;
  std::uint64_t queue_depth = 0;      ///< gauge at snapshot time
  std::uint64_t queue_high_water = 0;
  std::uint64_t queue_capacity = 0;
  WindowStat latency_s;               ///< rolling ServeLatency (seconds)
  WindowStat queue_wait_s;            ///< rolling ServeQueueWait (seconds)
  WindowStat occupancy;               ///< rolling ServeBatchOccupancy

  // --- stats v2 extension: build provenance of the answering daemon
  // (obs::build_info()); empty when decoded from a v1 snapshot.
  std::string build_version;
  std::string build_git_sha;
  std::string build_compiler;
  std::string build_type;

  // --- stats v3 extension: adaptive batching + scale-out.  The policy_*
  // fields snapshot the most recently observed BatchKey's tuning state
  // (what fsi_top shows); all zero when decoded from an older snapshot or
  // when the adaptive policy is disabled.
  std::uint64_t rejected_quota = 0;   ///< requests shed: client over quota
  std::uint64_t replicas = 0;         ///< replicas this daemon runs (0 = pre-v3)
  bool adaptive_enabled = false;
  std::uint64_t policy_keys = 0;      ///< BatchKeys the policy is tracking
  std::int64_t policy_window_us = 0;  ///< active key: effective window
  std::uint64_t policy_max_batch = 0; ///< active key: effective max batch
  bool policy_bypass = false;         ///< active key: coalescing bypassed
  double policy_speedup = 0.0;        ///< active key: measured batching speedup
  std::uint64_t bypass_enters = 0;    ///< total bypass entries, all keys
  std::uint64_t bypass_exits = 0;     ///< total bypass exits, all keys

  // --- stats v4 extension: mixed-precision totals (process-wide
  // obs::metrics counters) and the full per-key policy table, most
  // recently dispatched key first.  Empty when decoded from an older
  // snapshot.
  std::uint64_t mixed_runs = 0;       ///< FSI runs attempted in mixed mode
  std::uint64_t mixed_fallbacks = 0;  ///< mixed runs health-gated to fp64
  std::vector<PolicyKeyRow> policy_rows;

  double model_cache_hit_rate() const {
    const std::uint64_t lookups = models_built + model_cache_hits;
    return lookups > 0
               ? static_cast<double>(model_cache_hits) /
                     static_cast<double>(lookups)
               : 0.0;
  }
};

/// Thrown by decode_payload on a well-framed payload whose schema version
/// is outside [kMinSchemaVersion, kSchemaVersion] — distinct from
/// CheckError so the server can answer Status::Malformed instead of
/// dropping the connection.
class SchemaMismatch : public util::CheckError {
 public:
  explicit SchemaMismatch(std::uint32_t got);
  std::uint32_t got_version;
};

/// Encode a message into a frame *payload* (schema | type | id | body).
/// \p version selects the wire schema: kSchemaVersion by default; passing 1
/// emits the legacy v1 body (no tracing fields) — the server uses this to
/// answer v1 clients in kind, and the compat tests to impersonate them.
std::vector<std::uint8_t> encode_request(const InvertRequest& r,
                                         std::uint32_t version = kSchemaVersion);
std::vector<std::uint8_t> encode_response(const InvertResponse& r,
                                          std::uint32_t version = kSchemaVersion);
/// Stats messages exist only in v2+, so they take no version parameter.
std::vector<std::uint8_t> encode_stats_request(std::uint64_t id);
std::vector<std::uint8_t> encode_stats_response(const StatsResponse& r);

/// Decoded frame payload; exactly one of request/response/stats is
/// meaningful, selected by type.  \p schema records the version the frame
/// arrived with so a server can answer in the same dialect.
struct Decoded {
  MsgType type = MsgType::InvertRequest;
  std::uint32_t schema = kSchemaVersion;
  InvertRequest request;
  InvertResponse response;
  StatsResponse stats;
};

/// Decode one frame payload.  Throws SchemaMismatch on an unsupported
/// version and util::CheckError on truncation, trailing garbage or an
/// unknown message type (Stats* under schema 1 is unknown: v1 never had it).
Decoded decode_payload(const std::uint8_t* data, std::size_t size);

/// Append [magic | length | payload] to \p out.
void append_frame(std::vector<std::uint8_t>& out,
                  const std::vector<std::uint8_t>& payload);

/// Incremental frame splitter for a byte stream.  feed() buffers received
/// bytes; next() yields complete frame payloads in order.  Throws
/// util::CheckError on a bad magic or a length above max_frame_bytes —
/// both unrecoverable for the stream.
class FrameParser {
 public:
  explicit FrameParser(std::size_t max_frame_bytes = kMaxFrameBytes)
      : max_(max_frame_bytes) {}

  void feed(const std::uint8_t* data, std::size_t n);
  bool next(std::vector<std::uint8_t>& payload);
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::size_t max_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

/// Validate an InvertRequest's parameters and field payload.  Returns "" if
/// valid, else a human-readable reason (becomes the Malformed message).
std::string validate_request(const InvertRequest& r);

/// The cluster size a request resolves to (r.c, or the default divisor of L
/// nearest sqrt(L) when r.c == 0).  Requires a validated request.
index_t effective_cluster(const InvertRequest& r);

/// The wrap offset a request resolves to: r.q when >= 0, else drawn
/// uniformly from [0, c) by the (seed)-keyed stream — deterministic, so an
/// in-process reference run with the same seed selects the same blocks.
index_t resolve_q(const InvertRequest& r, index_t c);

/// Convenience for clients and tests: a random ±1 HS field configuration
/// of the request's dimensions, serialized (HsField(l, n, Rng(seed))).
std::vector<double> random_field(std::uint32_t lx, std::uint32_t ly,
                                 std::uint32_t l, std::uint64_t seed);

}  // namespace fsi::serve
