#pragma once
/// \file socket.hpp
/// \brief Thin POSIX socket RAII layer for the serve daemon and client.
///
/// Endpoints are spelled "unix:/path/to.sock" (Unix-domain, the default for
/// same-host deployments and the CI smoke test) or "tcp:host:port"
/// (loopback/LAN; port 0 binds an ephemeral port, resolved after listen).
/// The Listener's accept loop blocks in poll() on {listen fd, wake pipe} so
/// stop() can interrupt it without signals; sends use MSG_NOSIGNAL so a
/// client that vanished mid-response surfaces as an error return, not
/// SIGPIPE.

#include <cstddef>
#include <string>

namespace fsi::serve {

/// A parsed listen/connect address.
struct Endpoint {
  bool is_unix = true;
  std::string path;  ///< Unix-domain socket path
  std::string host;  ///< TCP host
  int port = 0;      ///< TCP port (0 = ephemeral when listening)

  /// Parse "unix:<path>" or "tcp:<host>:<port>".  Throws util::CheckError
  /// on any other spelling.
  static Endpoint parse(const std::string& spec);
  /// The canonical spec string ("unix:/tmp/fsi.sock", "tcp:127.0.0.1:7070").
  std::string describe() const;
};

/// Move-only owner of one connected socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close(); }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Write the whole buffer (handles short writes, EINTR; MSG_NOSIGNAL).
  /// Returns false on any error — the peer is gone.
  bool send_all(const void* data, std::size_t n);
  /// One recv: > 0 bytes read, 0 orderly EOF, -1 error.  Retries EINTR.
  long recv_some(void* out, std::size_t n);
  /// Half-close both directions (wakes a peer blocked in recv).
  void shutdown_both();
  void close();

 private:
  int fd_ = -1;
};

/// A listening socket plus a self-pipe so accept_once() can be interrupted.
class Listener {
 public:
  /// Bind + listen.  Unix sockets: an existing socket file at the path is
  /// unlinked first (stale from a previous run).  TCP port 0 is resolved to
  /// the bound port in endpoint().  Throws util::CheckError on failure.
  ///
  /// \p reuse_port sets SO_REUSEPORT before bind so N replica daemons can
  /// share one TCP port and let the kernel spread incoming connections
  /// across their accept loops (the replica scale-out of docs/tuning.md).
  /// TCP-only: unix sockets have no port to share — the path unlink would
  /// make replicas steal each other's socket file — so requesting it on a
  /// unix endpoint throws.
  static Listener listen_on(const Endpoint& ep, int backlog = 16,
                            bool reuse_port = false);

  Listener(Listener&&) noexcept;
  Listener& operator=(Listener&&) = delete;
  Listener(const Listener&) = delete;
  ~Listener();

  /// Block until a connection arrives or wake() is called.  Returns an
  /// invalid Socket when woken (or on a transient accept failure).
  Socket accept_once();
  /// Interrupt accept_once from another thread (idempotent).
  void wake();

  const Endpoint& endpoint() const { return endpoint_; }

 private:
  Listener() = default;
  Endpoint endpoint_;
  int listen_fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  bool unlink_on_close_ = false;
};

/// Connect to a serving endpoint.  Throws util::CheckError on failure.
Socket connect_to(const Endpoint& ep);

}  // namespace fsi::serve
