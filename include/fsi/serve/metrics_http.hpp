#pragma once
/// \file metrics_http.hpp
/// \brief Minimal HTTP/1.1 scrape endpoint for the OpenMetrics exporter.
///
/// A Prometheus (or any OpenMetrics-speaking) scraper wants `GET /metrics`
/// over plain HTTP; the serve wire protocol is framed binary.  This
/// listener bridges the two: a second serve::Listener (FSI_SERVE_METRICS,
/// e.g. "tcp:127.0.0.1:9464") answered by one thread that speaks just
/// enough HTTP/1.1 for scrapers and curl —
///
///   GET /metrics   obs::openmetrics() with the OpenMetrics content type
///   GET /healthz   "ok\n" while the process is up (liveness probe)
///   anything else  404; non-GET methods 405
///
/// Connections are handled serially and closed after one response
/// (`Connection: close`): scrape traffic is one request every few seconds,
/// so a serial loop is simpler and unkillable by design — a slow scraper
/// delays the next scrape, never the inversion plane.  Requests are read
/// with a short poll() timeout and a small header cap so a hung or hostile
/// client cannot pin the thread.
///
/// This sits in fsi::serve (not fsi::obs) because it reuses the serve
/// socket layer; the obs exporter stays transport-free.

#include <cstdint>
#include <memory>

#include "fsi/serve/socket.hpp"

namespace fsi::serve {

/// The scrape listener.  start() binds and spawns the serving thread;
/// stop() (or the destructor) wakes and joins it.
class MetricsExporter {
 public:
  explicit MetricsExporter(Endpoint endpoint);
  ~MetricsExporter();
  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Bind the endpoint and launch the serving thread.  Throws
  /// util::CheckError when the endpoint cannot be bound.
  void start();

  /// Stop serving and join (idempotent).
  void stop();

  /// The bound endpoint (TCP port 0 resolved after start()).
  const Endpoint& endpoint() const;

  /// Requests answered so far (any status) — tests poll this.
  std::uint64_t requests_served() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fsi::serve
