#pragma once
/// \file pcyclic.hpp
/// \brief Block p-cyclic matrices in normal form (the "Hubbard matrices").
///
/// The paper's Eq. (1) matrix A is normalised to M = D^-1 A, which has
/// identity diagonal blocks, -B_i on the block subdiagonal (i = 2..L) and
/// +B_1 in the top-right corner:
///
///         [  I                 B_1 ]
///         [ -B_2   I               ]
///   M  =  [       -B_3  I          ]
///         [             ...        ]
///         [            -B_L   I    ]
///
/// PCyclicMatrix stores exactly the L dense N x N blocks B_1..B_L.  This
/// file uses 0-based indices throughout: b(i) is the paper's B_{i+1}, and
/// Green's-function blocks G(k, l) correspond to the paper's G_{k+1,l+1}.
/// All index arithmetic is cyclic ("torus index notation" in the paper).

#include <vector>

#include "fsi/dense/matrix.hpp"
#include "fsi/util/rng.hpp"

namespace fsi::pcyclic {

using dense::ConstMatrixView;
using dense::index_t;
using dense::Matrix;
using dense::MatrixView;

/// Block p-cyclic matrix in normal form, stored as its B blocks.
class PCyclicMatrix {
 public:
  /// L zero blocks of size N x N (fill via b()).
  PCyclicMatrix(index_t block_size, index_t num_blocks);

  /// Take ownership of pre-built blocks (all must be square, same size).
  explicit PCyclicMatrix(std::vector<Matrix> blocks);

  /// Random nonsingular instance: B_i = I/2 + U with U uniform in
  /// [-1/(2N), 1/(2N)) — well-conditioned, suitable for unit tests.
  static PCyclicMatrix random(index_t block_size, index_t num_blocks,
                              util::Rng& rng);

  /// Block dimension N.
  index_t block_size() const { return n_; }
  /// Number of block rows/columns L.
  index_t num_blocks() const { return l_; }
  /// Overall matrix dimension N * L.
  index_t dim() const { return n_ * l_; }

  /// The paper's B_{i+1} (0-based i in [0, L)).
  MatrixView b(index_t i);
  ConstMatrixView b(index_t i) const;
  Matrix& b_matrix(index_t i);
  const Matrix& b_matrix(index_t i) const;

  /// Cyclic index helper: wraps i into [0, L).
  index_t wrap(index_t i) const {
    const index_t l = l_;
    return ((i % l) + l) % l;
  }

  /// Assemble the dense NL x NL matrix M (for baselines and tests).
  Matrix to_dense() const;

  /// Storage footprint of the B blocks in bytes.
  std::size_t bytes() const;

  /// Recycle every block's storage into the global workspace pool, leaving
  /// the blocks empty.  Call when the numeric content is dead (e.g. the
  /// reduced matrix once BSOFI has consumed it in a batched run).
  void release_blocks();

 private:
  index_t n_ = 0, l_ = 0;
  std::vector<Matrix> blocks_;
};

/// Product of the chain B[k] B[k-1] ... B[l+1] (cyclic descending,
/// (k - l) mod L factors; k == l gives the identity).  This is the paper's
/// Z_{kl} chain without the sign.
Matrix chain_product(const PCyclicMatrix& m, index_t k, index_t l);

/// W_k = I + B[k] B[k-1] ... B[k+1] (full cyclic chain of L factors);
/// Eq. (3) of the paper.
Matrix w_matrix(const PCyclicMatrix& m, index_t k);

}  // namespace fsi::pcyclic
