#pragma once
/// \file patterns.hpp
/// \brief Selected-inversion patterns (Sec. II-B of the paper) and the
/// container holding a computed selected inversion.
///
/// The index set is the paper's I = {c-q, 2c-q, ..., bc-q} (1-based) with
/// b = L/c and q uniform in [0, c); in the 0-based convention used here the
/// selected indices are {(j+1)c - q - 1 : j = 0..b-1}.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fsi/dense/matrix.hpp"

namespace fsi::pcyclic {

/// The four selection patterns of Fig. 2, plus the all-diagonals pattern
/// used by the equal-time measurements of the DQMC experiments (Fig. 10:
/// "we compute all diagonal blocks, b block rows and b block columns").
enum class Pattern {
  Diagonal,      ///< S1: b diagonal blocks G(k, k), k in I
  SubDiagonal,   ///< S2: b (or b-1) blocks G(k, k+1), k in I \ {L-1}
  Columns,       ///< S3: b full block columns G(:, l), l in I
  Rows,          ///< S4: b full block rows G(k, :), k in I
  AllDiagonals,  ///< all L diagonal blocks G(k, k), grown from the b seeds
};

const char* pattern_name(Pattern p);

/// A (L, c, q) selection.  Requires c to divide L and 0 <= q < c.
struct Selection {
  dense::index_t l_total;  ///< L: number of block rows/cols
  dense::index_t c;        ///< cluster factor
  dense::index_t q;        ///< random offset in [0, c)

  Selection(dense::index_t l_total, dense::index_t c, dense::index_t q);

  dense::index_t b() const { return l_total / c; }

  /// The 0-based selected indices, ascending.
  std::vector<dense::index_t> indices() const;

  /// True iff \p i is a selected index.
  bool contains(dense::index_t i) const;

  /// Number of selected N x N blocks for \p pattern (paper Sec. II-B table).
  dense::index_t block_count(Pattern pattern) const;

  /// Memory reduction factor vs storing the full L^2-block inverse
  /// (paper Sec. II-B table: cL, cL, c, c).
  double reduction_factor(Pattern pattern) const;
};

/// Storage for a computed selected inversion: the set S of N x N blocks,
/// addressable by (k, l).  Slots are preallocated per pattern so the
/// wrapping stage can fill them from concurrent OpenMP threads without
/// locking.
class SelectedInversion {
 public:
  SelectedInversion(Pattern pattern, dense::index_t block_size, Selection sel);

  Pattern pattern() const { return pattern_; }
  const Selection& selection() const { return sel_; }
  dense::index_t block_size() const { return n_; }

  /// True iff block (k, l) belongs to the pattern.
  bool contains(dense::index_t k, dense::index_t l) const;

  /// Mutable slot for block (k, l); throws if outside the pattern.
  /// Thread-safe for distinct (k, l).
  dense::Matrix& slot(dense::index_t k, dense::index_t l);

  /// Read a stored block.
  const dense::Matrix& at(dense::index_t k, dense::index_t l) const;

  /// All (k, l) keys of the pattern, in slot order.
  const std::vector<std::pair<dense::index_t, dense::index_t>>& keys() const {
    return keys_;
  }

  /// Total number of blocks in the pattern.
  dense::index_t size() const { return static_cast<dense::index_t>(keys_.size()); }

  /// Bytes of block storage (for the memory-reduction experiments).
  std::size_t bytes() const;

  /// Recycle every stored block's storage into the global workspace pool,
  /// leaving the container empty-shaped.  Consumers call this once the
  /// measurements that read the blocks are accumulated, so the next FSI
  /// call in a batch reuses the memory.
  void release_blocks();

 private:
  dense::index_t slot_index(dense::index_t k, dense::index_t l) const;

  Pattern pattern_;
  dense::index_t n_;
  Selection sel_;
  std::vector<dense::index_t> selected_;             // ascending selected indices
  std::vector<dense::index_t> position_of_;          // index -> position or -1
  std::vector<dense::Matrix> blocks_;
  std::vector<std::pair<dense::index_t, dense::index_t>> keys_;
};

}  // namespace fsi::pcyclic
