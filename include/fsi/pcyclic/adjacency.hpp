#pragma once
/// \file adjacency.hpp
/// \brief The adjacency relations between neighbouring Green's-function
/// blocks (Eqs. 4–7 of the paper) — the engine of the FSI wrapping stage.
///
/// Once any block G(k, l) is known, its four neighbours follow from one
/// N x N matrix product or solve:
///   up    : G(k-1, l) = B_k^-1 G(k, l)
///   down  : G(k+1, l) = B_{k+1} G(k, l)
///   left  : G(k, l-1) = G(k, l) B_l
///   right : G(k, l+1) = G(k, l) B_{l+1}^-1
/// with twelve boundary special cases (diagonal / first row / last row /
/// first column / last column / corners) spelled out in the paper and
/// re-derived in 0-based torus indexing in the implementation.
///
/// BlockOps pre-factors every B block once (LU) so that the solve-based
/// moves (up/right) are plain triangular solves; all moves are `const` and
/// safe to call concurrently from OpenMP threads, which is how the wrapping
/// stage parallelises over seeds.

#include <memory>
#include <vector>

#include "fsi/dense/lu.hpp"
#include "fsi/pcyclic/pcyclic.hpp"

namespace fsi::pcyclic {

/// Per-matrix context for adjacency moves: holds the B blocks plus their LU
/// factorisations.
class BlockOps {
 public:
  /// Factor all L blocks (parallelised with OpenMP).
  explicit BlockOps(const PCyclicMatrix& m);

  const PCyclicMatrix& matrix() const { return m_; }
  index_t block_size() const { return m_.block_size(); }
  index_t num_blocks() const { return m_.num_blocks(); }

  /// G(k-1, l) from g = G(k, l)   (Eq. 4, all boundary cases).
  Matrix up(index_t k, index_t l, ConstMatrixView g) const;
  /// G(k+1, l) from g = G(k, l)   (Eq. 5).
  Matrix down(index_t k, index_t l, ConstMatrixView g) const;
  /// G(k, l-1) from g = G(k, l)   (Eq. 6).
  Matrix left(index_t k, index_t l, ConstMatrixView g) const;
  /// G(k, l+1) from g = G(k, l)   (Eq. 7).
  Matrix right(index_t k, index_t l, ConstMatrixView g) const;

  /// LU factorisation of B[i] (shared by the FSI driver).
  const dense::LuFactorization& lu(index_t i) const;

 private:
  const PCyclicMatrix& m_;
  std::vector<std::unique_ptr<dense::LuFactorization>> lu_;
};

/// fp32 analog of BlockOps for the mixed-precision wrapping stage: owns
/// demoted copies of the B blocks plus their fp32 LU factorisations, and
/// implements the same four moves (with the same twelve boundary cases)
/// on fp32 operands.  Indexing still goes through the referenced fp64
/// matrix, so wrap arithmetic and bounds are shared with the fp64 path.
/// Factoring is ~2x cheaper and every move runs at fp32 GEMM/TRSM rates —
/// the WRP half of the Mixed speedup.  Accuracy is policed downstream by
/// the selinv mixed gate, not here.
class BlockOpsF {
 public:
  /// Demote + factor all L blocks (parallelised with OpenMP).
  explicit BlockOpsF(const PCyclicMatrix& m);

  const PCyclicMatrix& matrix() const { return m_; }
  index_t block_size() const { return m_.block_size(); }
  index_t num_blocks() const { return m_.num_blocks(); }

  /// The demoted B[i].
  dense::ConstMatrixViewF b(index_t i) const;

  /// The four adjacency moves of BlockOps, on fp32 operands.
  dense::MatrixF up(index_t k, index_t l, dense::ConstMatrixViewF g) const;
  dense::MatrixF down(index_t k, index_t l, dense::ConstMatrixViewF g) const;
  dense::MatrixF left(index_t k, index_t l, dense::ConstMatrixViewF g) const;
  dense::MatrixF right(index_t k, index_t l, dense::ConstMatrixViewF g) const;

  /// fp32 LU factorisation of B[i].
  const dense::LuFactorizationF& lu(index_t i) const;

 private:
  const PCyclicMatrix& m_;
  std::vector<dense::MatrixF> bf_;
  std::vector<std::unique_ptr<dense::LuFactorizationF>> lu_;
};

}  // namespace fsi::pcyclic
