#pragma once
/// \file explicit_inverse.hpp
/// \brief Baseline Green's-function computations.
///
/// Two baselines from the paper:
///   - the *explicit form* (Eqs. 2/3): G_kl = W_k^-1 Z_kl computed by chain
///     multiplication, the comparator in the Sec. II-C complexity table;
///   - the *full dense inversion* of the assembled M via LU (the "MKL
///     DGETRF/DGETRI" comparator of the Sec. V-A correctness validation).

#include "fsi/dense/matrix.hpp"
#include "fsi/pcyclic/pcyclic.hpp"

namespace fsi::pcyclic {

/// G(k, l) by the explicit form (Eq. 3): W_k^-1 Z_kl with
/// Z_kl = sign * B[k] ... B[l+1], sign = -1 iff the chain wraps (k < l).
Matrix explicit_block(const PCyclicMatrix& m, index_t k, index_t l);

/// All L blocks of block column l by the explicit form — the paper's
/// b L^2 N^3-flop baseline when repeated for b columns.
std::vector<Matrix> explicit_block_column(const PCyclicMatrix& m, index_t l);

/// Full G = M^-1 as a dense NL x NL matrix via LU (DGETRF + DGETRI).
Matrix full_inverse_dense(const PCyclicMatrix& m);

/// Extract block (k, l) of a dense NL x NL inverse.
Matrix dense_block(const Matrix& g, index_t n, index_t k, index_t l);

}  // namespace fsi::pcyclic
