#pragma once
/// \file checkerboard.hpp
/// \brief Checkerboard (bond-split) approximation of the kinetic propagator.
///
/// QUEST — the production DQMC code the paper builds on — approximates
/// e^{t dtau K} by a product of exact 2x2 bond exponentials
///   e^{t dtau K} ~ prod_{bonds (i,j)} e^{t dtau K_ij},
/// which applies in O(#bonds) vector operations instead of a dense N^2
/// multiply and introduces an O((t dtau)^2) Trotter-like error absorbed by
/// the existing discretisation error.  This module provides that propagator
/// as a drop-in alternative to HubbardModel::expk() (an extension beyond
/// the paper's minimal description, tested against the exact exponential).

#include <vector>

#include "fsi/dense/matrix.hpp"
#include "fsi/qmc/lattice.hpp"

namespace fsi::qmc {

/// Bond-factorised approximation of e^{coeff * K} for a lattice adjacency K.
class CheckerboardExpK {
 public:
  /// \p coeff is the paper's t * dtau.
  CheckerboardExpK(const Lattice& lattice, double coeff);

  index_t num_sites() const { return n_; }
  index_t num_bonds() const { return static_cast<index_t>(bonds_.size()); }
  double coeff() const { return coeff_; }

  /// g := B_cb * g, applying the bond rotations in order (O(bonds * cols)).
  void apply_left(dense::MatrixView g) const;

  /// g := B_cb^-1 * g (bonds in reverse order with -coeff).
  void apply_inverse_left(dense::MatrixView g) const;

  /// Dense N x N matrix of the approximation (tests / interoperability).
  dense::Matrix to_dense() const;

 private:
  struct Bond {
    index_t i, j;
  };

  index_t n_ = 0;
  double coeff_ = 0.0;
  double ch_ = 1.0, sh_ = 0.0;  // cosh(coeff), sinh(coeff)
  std::vector<Bond> bonds_;
};

}  // namespace fsi::qmc
