#pragma once
/// \file multi_gf.hpp
/// \brief Parallel application of FSI to many Green's functions
/// (paper Alg. 3 / Fig. 5) over the mini-MPI + OpenMP hybrid.
///
/// DQMC needs selected inversions of tens of thousands of Hubbard matrices.
/// The matrices are parameterised by the Hubbard-Stratonovich field, so —
/// exactly as the paper prescribes — the root rank generates the random
/// fields and scatters *them* (not the matrices) to the MPI ranks; each
/// rank builds its matrices locally, runs FSI with OpenMP inside, computes
/// local measurement quantities in the OpenMP region, and a final Reduce
/// aggregates the global measurements on the root.

#include <cstdint>

#include "fsi/qmc/hubbard.hpp"
#include "fsi/qmc/measurements.hpp"

namespace fsi::qmc {

/// Options of one hybrid run (paper Fig. 9 sweeps ranks x threads with the
/// product fixed at the machine's core count).
struct MultiGfOptions {
  index_t num_matrices = 8;      ///< total Hubbard matrices (per spin pair)
  int num_ranks = 2;             ///< mini-MPI ranks
  int omp_threads_per_rank = 0;  ///< 0 = leave the OpenMP default
  index_t cluster_size = 0;      ///< 0 = divisor of L nearest sqrt(L)
  bool measure_time_dependent = true;
  std::uint64_t seed = 99;
};

struct MultiGfResult {
  Measurements global;     ///< reduced over all ranks
  double seconds = 0.0;    ///< wall time of the parallel region
  std::uint64_t flops = 0; ///< dense-kernel flops across all ranks/threads
  double gflops() const { return seconds > 0 ? flops / seconds * 1e-9 : 0.0; }
};

/// Run Alg. 3: scatter fields, per-rank FSI + local measurements, reduce.
MultiGfResult run_parallel_fsi(const HubbardModel& model,
                               const MultiGfOptions& options);

}  // namespace fsi::qmc
