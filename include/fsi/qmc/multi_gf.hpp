#pragma once
/// \file multi_gf.hpp
/// \brief Parallel application of FSI to many Green's functions
/// (paper Alg. 3 / Fig. 5) over the mini-MPI + OpenMP hybrid.
///
/// DQMC needs selected inversions of tens of thousands of Hubbard matrices.
/// The matrices are parameterised by the Hubbard-Stratonovich field, so —
/// exactly as the paper prescribes — the root rank generates the random
/// fields and broadcasts *them* (not the matrices) to the MPI ranks; each
/// rank builds its matrices locally, runs FSI with OpenMP inside, computes
/// local measurement quantities in the OpenMP region, and the root merges
/// the global measurements.
///
/// Task distribution goes through sched::BatchScheduler: every rank is
/// preloaded with the contiguous static share [r*m/R, (r+1)*m/R) and idle
/// ranks steal the back half of a victim's backlog, so heterogeneous batches
/// (see \ref MultiGfOptions::heavy_fraction) balance automatically.  The
/// result is bit-identical regardless of rank count, thread count or steal
/// order: each task derives its wrapping offset q from (seed, task index)
/// alone, accumulates its measurements serially into a per-task buffer, and
/// the root merges the buffers in ascending task order.

#include <cstdint>
#include <vector>

#include "fsi/precision.hpp"
#include "fsi/qmc/hubbard.hpp"
#include "fsi/qmc/measurements.hpp"

namespace fsi::qmc {

/// How the batch of matrices is spread over the mini-MPI ranks.
enum class Schedule {
  WorkStealing,  ///< stealing on (default; batch scheduler or graph executor)
  Static,        ///< frozen contiguous split — the paper's Alg. 3 baseline
};

/// At which level the batch is decomposed into stealable units.
enum class Granularity {
  Auto,    ///< Fine when the FSI_EXEC env flag (default on) allows it
  Coarse,  ///< one unit per matrix: mini-MPI ranks + BatchScheduler (Alg. 3)
  Fine,    ///< one unit per FSI stage node: matrix assembly, each cluster
           ///< product, BSOFI and each seed walk become task-graph nodes on
           ///< the persistent executor pool, so a straggler matrix's b^2
           ///< seed walks are stolen by idle workers.  Shared-memory only
           ///< (no mini-MPI messaging); bit-identical to Coarse.
};

/// Options of one hybrid run (paper Fig. 9 sweeps ranks x threads with the
/// product fixed at the machine's core count).
struct MultiGfOptions {
  index_t num_matrices = 8;      ///< total Hubbard matrices (per spin pair)
  int num_ranks = 2;             ///< mini-MPI ranks
  int omp_threads_per_rank = 0;  ///< 0 = leave the OpenMP default
  index_t cluster_size = 0;      ///< 0 = divisor of L nearest sqrt(L)
  bool measure_time_dependent = true;
  /// Fraction of the batch (front-loaded) that also computes the Rows /
  /// Columns wrapping passes and SPXX; the rest measures equal-time only.
  /// 1.0 = homogeneous batch; < 1.0 makes the batch skewed — the contiguous
  /// static split then overloads the low ranks, which is exactly the
  /// imbalance work stealing is there to fix.  Ignored (treated as 0) when
  /// measure_time_dependent is false.
  double heavy_fraction = 1.0;
  Schedule schedule = Schedule::WorkStealing;
  Granularity granularity = Granularity::Auto;
  std::uint64_t seed = 99;
};

/// Scheduler + workspace-pool telemetry of one run_parallel_fsi call.
struct SchedSummary {
  int workers = 0;                  ///< mini-MPI ranks driving the batch
  std::uint32_t tasks = 0;          ///< matrices scheduled
  std::uint64_t steal_batches = 0;  ///< successful steals across all ranks
  std::uint64_t stolen_tasks = 0;   ///< tasks that migrated via stealing
  std::uint64_t pool_hits = 0;      ///< workspace-pool hits during the run
  std::uint64_t pool_misses = 0;    ///< workspace-pool misses during the run
  double busy_max_seconds = 0.0;    ///< busiest rank's in-task wall time
  double busy_mean_seconds = 0.0;   ///< mean in-task wall time per rank
  std::vector<double> busy_seconds; ///< per-worker in-task wall time

  // --- graph-granularity telemetry (zero in Coarse mode) ------------------
  std::uint64_t graph_nodes = 0;       ///< task-graph nodes executed
  double critical_path_seconds = 0.0;  ///< duration-weighted longest chain
  double ready_depth_mean = 0.0;       ///< own-deque depth sampled at pops
  double stage_build_seconds = 0.0;    ///< summed matrix-assembly node time
  double stage_cls_seconds = 0.0;      ///< summed cluster-product node time
  double stage_bsofi_seconds = 0.0;    ///< summed BSOFI node time
  double stage_wrap_seconds = 0.0;     ///< summed seed-walk node time
  double stage_measure_seconds = 0.0;  ///< summed measurement node time

  // --- mixed-precision telemetry (zero for fp64 batches) ------------------
  std::uint32_t mixed_tasks = 0;      ///< tasks attempted in mixed mode
  std::uint32_t mixed_fallbacks = 0;  ///< tasks the gate redid in fp64

  /// Load balance as max/mean busy time; 1.0 is perfect, higher is worse.
  double balance() const {
    return busy_mean_seconds > 0.0 ? busy_max_seconds / busy_mean_seconds
                                   : 1.0;
  }
  /// hits / (hits + misses), or 0 when nothing was acquired.
  double pool_hit_rate() const {
    const double total =
        static_cast<double>(pool_hits) + static_cast<double>(pool_misses);
    return total > 0.0 ? static_cast<double>(pool_hits) / total : 0.0;
  }
};

struct MultiGfResult {
  Measurements global;     ///< merged over all ranks, ascending task order
  double seconds = 0.0;    ///< wall time of the parallel region
  std::uint64_t flops = 0; ///< dense-kernel flops across all ranks/threads
  SchedSummary sched;      ///< scheduler + pool telemetry
  double gflops() const { return seconds > 0 ? flops / seconds * 1e-9 : 0.0; }
};

/// Run Alg. 3: broadcast fields, scheduler-driven per-rank FSI + local
/// measurements, deterministic merge on the root.
MultiGfResult run_parallel_fsi(const HubbardModel& model,
                               const MultiGfOptions& options);

/// One externally-supplied inversion task for run_fsi_batch.  Unlike
/// run_parallel_fsi — which derives every field and wrapping offset from its
/// batch seed — the field and q here come from the caller (the serve path:
/// each network client ships its own Hubbard-Stratonovich configuration).
struct FsiBatchTask {
  HsField field;     ///< the HS configuration (defines M up to spin)
  index_t q = 0;     ///< wrapping offset in [0, c)
  bool heavy = true; ///< also compute the Rows/Columns passes + SPXX
};

/// Execution knobs of one run_fsi_batch call.
struct FsiBatchOptions {
  int num_workers = 0;           ///< graph workers (0 = OpenMP max threads)
  int omp_threads_per_worker = 0;///< 0 = leave the OpenMP default
  index_t cluster_size = 0;      ///< 0 = divisor of L nearest sqrt(L)
  Schedule schedule = Schedule::WorkStealing;
  /// Scalar precision of the CLS and WRP nodes (FSI_PRECISION env default).
  /// Mixed tasks get a per-task gate node between the wrap fences and the
  /// measurement: probed residual / cond1 beyond selinv::mixed_gate() (or
  /// non-finite fp32 output) triggers an in-node serial fp64 recompute of
  /// that task, counted in Counter::MixedFallbacks.  BSOFI always runs
  /// fp64.  Fp64 batches are bit-identical to the pre-precision engine.
  Precision precision = precision_from_env();
};

/// Execute a batch of externally-supplied tasks through the same
/// fine-granularity task graph as run_parallel_fsi (build -> cluster
/// products -> BSOFI -> seed walks -> measure, one sub-graph per task and
/// spin, all on the persistent sched::Executor pool, so a straggler task's
/// seed walks are stolen by idle workers).  Returns one Measurements per
/// task, in task order; results are bit-identical to running in-process
/// selinv::fsi_multi + the measurement accumulators per task, regardless of
/// worker count or steal order.  \p sched, when non-null, receives the
/// run's scheduler telemetry.
std::vector<Measurements> run_fsi_batch(const HubbardModel& model,
                                        const std::vector<FsiBatchTask>& tasks,
                                        const FsiBatchOptions& options,
                                        SchedSummary* sched = nullptr);

}  // namespace fsi::qmc
