#pragma once
/// \file hubbard.hpp
/// \brief Hubbard-model physics: parameters, Hubbard-Stratonovich field and
/// the B-matrix / Hubbard-matrix factory (paper Secs. IV, V-A).
///
/// After the Trotter split and the discrete Hubbard-Stratonovich (HS)
/// transformation, each imaginary-time slice l contributes a propagator
///   B_l^sigma = e^{t dtau K} e^{sigma nu V_l(h)},
/// where K is the lattice adjacency matrix, V_l(h) = diag(h(l, :)) is the
/// Ising HS field at slice l, sigma = +1/-1 for spin up/down, and
/// cosh(nu) = e^{U dtau / 2}.  The Hubbard matrix M^sigma(h) is the block
/// p-cyclic matrix of Sec. II-A built from these B blocks.

#include <cmath>
#include <cstdint>
#include <vector>

#include "fsi/pcyclic/pcyclic.hpp"
#include "fsi/qmc/lattice.hpp"
#include "fsi/util/rng.hpp"

namespace fsi::qmc {

/// Spin direction: the paper's sigma in {+1 (up), -1 (down)}.
enum class Spin : int { Up = +1, Down = -1 };
inline int sign_of(Spin s) { return static_cast<int>(s); }

/// How the kinetic propagator e^{t dtau K} is realised.
enum class Kinetic {
  Exact,         ///< dense Pade matrix exponential (this library's default)
  Checkerboard,  ///< QUEST-style bond-split approximation (O(dtau^2) error)
};

/// Physical parameters of one simulation (paper defaults in parentheses).
struct HubbardParams {
  double t = 1.0;     ///< hopping amplitude (1)
  double u = 2.0;     ///< on-site interaction U (2)
  double beta = 1.0;  ///< inverse temperature (1)
  index_t l = 8;      ///< imaginary-time slices L; dtau = beta / L
  Kinetic kinetic = Kinetic::Exact;  ///< kinetic propagator realisation

  double dtau() const { return beta / static_cast<double>(l); }
  /// HS coupling: cosh(nu) = e^{U dtau / 2}.
  double nu() const { return std::acosh(std::exp(u * dtau() / 2.0)); }
};

/// The Ising Hubbard-Stratonovich configuration h(l, i) = +-1.
class HsField {
 public:
  /// All spins +1.
  HsField(index_t l, index_t n);
  /// Random +-1 configuration (the paper's initialisation).
  HsField(index_t l, index_t n, util::Rng& rng);

  index_t num_slices() const { return l_; }
  index_t num_sites() const { return n_; }

  int at(index_t slice, index_t site) const {
    return h_[index(slice, site)];
  }
  void set(index_t slice, index_t site, int value);
  /// Flip h(l, i) in place (the Metropolis proposal h' = -h).
  void flip(index_t slice, index_t site) {
    h_[index(slice, site)] = -h_[index(slice, site)];
  }

  /// Pack into doubles for mini-MPI scatter (paper Alg. 3 scatters the HS
  /// parameters, not the matrices).
  std::vector<double> serialize() const;
  static HsField deserialize(index_t l, index_t n,
                             const double* data, std::size_t len);

 private:
  std::size_t index(index_t slice, index_t site) const {
    FSI_ASSERT(slice >= 0 && slice < l_ && site >= 0 && site < n_);
    return static_cast<std::size_t>(slice) * n_ + site;
  }

  index_t l_ = 0, n_ = 0;
  std::vector<std::int8_t> h_;
};

/// Precomputed propagator pieces for a (lattice, parameters) pair; builds
/// B matrices and full Hubbard matrices for any HS configuration.
class HubbardModel {
 public:
  HubbardModel(Lattice lattice, HubbardParams params);

  const Lattice& lattice() const { return lattice_; }
  const HubbardParams& params() const { return params_; }
  index_t num_sites() const { return lattice_.num_sites(); }

  /// e^{t dtau K} (exact dense exponential, computed once).
  const Matrix& expk() const { return expk_; }
  /// e^{-t dtau K}.
  const Matrix& expk_inv() const { return expk_inv_; }

  /// B_l^sigma = e^{t dtau K} e^{sigma nu V_l(h)}.
  Matrix b_matrix(const HsField& h, index_t slice, Spin spin) const;
  /// (B_l^sigma)^-1 = e^{-sigma nu V_l(h)} e^{-t dtau K} (analytic inverse).
  Matrix b_matrix_inv(const HsField& h, index_t slice, Spin spin) const;

  /// The full Hubbard matrix M^sigma(h) as a block p-cyclic matrix.
  pcyclic::PCyclicMatrix build_m(const HsField& h, Spin spin) const;

  /// In-place g := B_l^sigma * g (used by the Green's-function wraps).
  void multiply_b_left(const HsField& h, index_t slice, Spin spin,
                       Matrix& g) const;
  /// In-place g := g * (B_l^sigma)^-1.
  void multiply_binv_right(const HsField& h, index_t slice, Spin spin,
                           Matrix& g) const;

  /// The HS weight factor e^{sigma nu h} for a single site value.
  double hs_factor(int h, Spin spin) const {
    return std::exp(sign_of(spin) * params_.nu() * h);
  }

 private:
  Lattice lattice_;
  HubbardParams params_;
  Matrix expk_, expk_inv_;
};

}  // namespace fsi::qmc
