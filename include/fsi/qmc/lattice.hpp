#pragma once
/// \file lattice.hpp
/// \brief Real-space lattices for the Hubbard model.
///
/// QUEST's default geometry is the two-dimensional periodic rectangular
/// lattice (paper Sec. I); a periodic chain is provided for cheap tests.
/// The lattice supplies the adjacency (hopping) matrix K of the kinetic
/// propagator e^{t dtau K} and the spatial-distance classification D(i, j)
/// used by the time-dependent measurements (paper Sec. IV).

#include <utility>
#include <vector>

#include "fsi/dense/matrix.hpp"

namespace fsi::qmc {

using dense::index_t;
using dense::Matrix;

/// Periodic lattice with nearest-neighbour hopping, or an arbitrary
/// hopping graph.
class Lattice {
 public:
  /// 1D periodic chain of \p nx sites.
  static Lattice chain(index_t nx);
  /// 2D periodic rectangle of nx * ny sites (QUEST's default geometry).
  static Lattice rectangle(index_t nx, index_t ny);
  /// Arbitrary undirected hopping graph on \p num_sites sites (QUEST-style
  /// "general geometry" input).  Distance classes become graph (BFS)
  /// distances; the staggering parity comes from a bipartite 2-colouring
  /// when one exists (all +1 on non-bipartite graphs, where S_AF is not a
  /// staggered observable anyway).
  static Lattice from_edges(index_t num_sites,
                            const std::vector<std::pair<index_t, index_t>>& edges);

  index_t num_sites() const { return nx_ * ny_; }
  index_t nx() const { return nx_; }
  index_t ny() const { return ny_; }
  bool is_chain() const { return ny_ == 1; }

  /// Adjacency matrix K: K(i, j) = 1 iff i and j are nearest neighbours
  /// (periodic).  Symmetric; diagonal is zero.
  const Matrix& adjacency() const { return k_; }

  /// Site index of lattice coordinates (x, y), periodic.
  index_t site(index_t x, index_t y) const;
  index_t x_of(index_t s) const { return s % nx_; }
  index_t y_of(index_t s) const { return s / nx_; }

  /// Nearest neighbours of site s (4 on the rectangle, 2 on the chain;
  /// duplicates collapse on tiny lattices).
  const std::vector<index_t>& neighbors(index_t s) const;

  /// Spatial distance class D(i, j): the canonical periodic displacement
  /// (|dx| and |dy| folded into [0, n/2]) enumerated as a single index.
  /// This is the paper's mapping from entry index (i, j) to d.
  index_t distance_class(index_t i, index_t j) const;

  /// Number of distance classes d_max (the paper's "d_max ~ O(N)" second
  /// dimension of the SPXX matrix).
  index_t num_distance_classes() const;

  /// Sublattice parity (-1)^(x+y) of site \p s (general graphs: bipartite
  /// 2-colouring, or +1 when the graph is not bipartite) — the staggering
  /// sign of antiferromagnetic correlation functions.
  int parity(index_t s) const {
    if (!parity_.empty()) return parity_[static_cast<std::size_t>(s)];
    return ((x_of(s) + y_of(s)) % 2 == 0) ? 1 : -1;
  }

  /// True if this lattice was built from an explicit edge list.
  bool is_general_graph() const { return !dist_table_.empty(); }

  /// Number of (ordered) site pairs in each distance class; used to
  /// normalise correlation functions.
  const std::vector<index_t>& distance_class_sizes() const {
    return class_sizes_;
  }

 private:
  Lattice(index_t nx, index_t ny);
  Lattice(index_t num_sites,
          const std::vector<std::pair<index_t, index_t>>& edges);
  void build_class_sizes();

  index_t nx_ = 0, ny_ = 0;
  Matrix k_;
  std::vector<std::vector<index_t>> neighbors_;
  std::vector<index_t> class_sizes_;
  // General-graph extras (empty for chain/rectangle lattices):
  std::vector<index_t> dist_table_;  // n*n BFS distances
  std::vector<int> parity_;          // bipartite colouring or all +1
  index_t graph_dmax_ = 0;
};

}  // namespace fsi::qmc
