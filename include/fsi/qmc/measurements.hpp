#pragma once
/// \file measurements.hpp
/// \brief Physical measurements of the DQMC simulation (paper Sec. IV).
///
/// Two categories, as in the paper:
///   - *equal-time* measurements need only diagonal blocks G(k, k): density,
///     double occupancy, kinetic energy, local moment;
///   - *time-dependent* measurements need off-diagonal blocks; the paper's
///     worked example is the XY spin-spin correlation SPXX, an
///     L x d_max matrix built from element-wise products
///     G^up_{kl}(i,j) G^dn_{lk}(j,i) + (up <-> dn) — which is why the
///     selected inversion must deliver block rows AND block columns
///     simultaneously.
///
/// Measurements accumulate sign-weighted sums (standard DQMC estimator
/// <O> = <O s> / <s>), merge across OpenMP threads and mini-MPI ranks, and
/// serialise to flat double buffers for the Alg. 3 MPI_Reduce.

#include <vector>

#include "fsi/pcyclic/patterns.hpp"
#include "fsi/qmc/lattice.hpp"

namespace fsi::qmc {

/// Accumulated measurement quantities for one simulation (or one rank /
/// thread before merging).
class Measurements {
 public:
  /// \p l: time slices (rows of SPXX); \p dmax: spatial distance classes.
  Measurements(index_t l, index_t dmax);

  index_t num_slices() const { return l_; }
  index_t num_distance_classes() const { return dmax_; }
  double samples() const { return n_samples_; }

  // -- accumulation (called by the drivers) ---------------------------------
  /// Register one configuration with Monte Carlo sign \p sign; the
  /// subsequent add_* calls contribute that configuration's observables
  /// (already sign-weighted by the caller via the same sign).
  void add_sample(double sign);
  void add_density(double up, double down);       ///< per-site, sign-weighted
  void add_double_occupancy(double v);            ///< per-site, sign-weighted
  void add_kinetic_energy(double v);              ///< per-site, sign-weighted
  void add_af_structure_factor(double v);         ///< sign-weighted
  void add_pair_susceptibility(double v);         ///< sign-weighted
  void add_spxx(index_t tau, index_t d, double v);

  /// Merge another accumulator (thread-local or remote rank).
  void merge(const Measurements& other);

  // -- sign-corrected estimators --------------------------------------------
  double avg_sign() const;
  double density() const;           ///< <n> = <n_up + n_dn>
  double density_up() const;
  double density_down() const;
  double double_occupancy() const;  ///< <n_up n_dn>
  double kinetic_energy() const;    ///< per site
  /// Local moment <m_z^2> = <n_up> + <n_dn> - 2 <n_up n_dn>.
  double local_moment() const;
  /// Antiferromagnetic structure factor
  /// S_AF = (1/N) sum_ij (-1)^{i+j} <m_i^z m_j^z> (equal-time, staggered) —
  /// the magnetism probe of the paper's introduction.
  double af_structure_factor() const;
  /// s-wave pair-field susceptibility chi_pair =
  /// integral_0^beta dtau (1/N) sum_ij <Delta_i(tau) Delta_j^+(0)>,
  /// Delta_i = c_{i dn} c_{i up} — the superconductivity probe the paper's
  /// abstract motivates ("physical measurements such as superconductivity").
  double pair_susceptibility() const;
  double spxx(index_t tau, index_t d) const;

  // -- flat-buffer exchange (mini-MPI Reduce) -------------------------------
  std::vector<double> serialize() const;
  static Measurements deserialize(index_t l, index_t dmax,
                                  const std::vector<double>& buf);
  static std::size_t serialized_size(index_t l, index_t dmax);

 private:
  index_t l_ = 0, dmax_ = 0;
  double n_samples_ = 0.0;
  double sign_sum_ = 0.0;
  double den_up_ = 0.0, den_dn_ = 0.0;
  double docc_ = 0.0;
  double kinetic_ = 0.0;
  double af_ = 0.0;
  double pair_ = 0.0;
  std::vector<double> spxx_;
};

/// Accumulate the equal-time observables of one configuration from
/// diagonal Green blocks of both spins (Pattern::AllDiagonals or
/// Pattern::Diagonal).  Averages over the available diagonal blocks and
/// sites; runs the slice loop in OpenMP when \p parallel is set (the
/// paper's FSI mode) or serially (the MKL mode of Fig. 10).
void accumulate_equal_time(const Lattice& lat,
                           const pcyclic::SelectedInversion& g_up,
                           const pcyclic::SelectedInversion& g_dn, double t_hop,
                           double sign, bool parallel, Measurements& out);

/// Accumulate the SPXX time-dependent correlation of one configuration.
/// \p rows_* and \p cols_* are Pattern::Rows / Pattern::Columns selected
/// inversions with the SAME Selection, so that for every selected k both
/// G_{k,l} (row) and G_{l,k} (column) are available — the paper's
/// requirement that "block columns and rows are both required".
/// SPXX(tau, d) = 1/(2 C(tau) |D(d)|) sum_{k in I} sum_{(i,j) in D(d)}
///   [G^up_{k,l}(i,j) G^dn_{l,k}(j,i) + G^dn_{k,l}(i,j) G^up_{l,k}(j,i)],
/// l = (k - tau) mod L.  Element-wise Level-1 work, OpenMP-threaded per
/// the paper when \p parallel is set.
/// Accumulate the s-wave pair-field susceptibility of one configuration
/// from block rows of both spins (same Selection):
///   chi_pair += dtau * (1/(N C(tau))) sum_{k in I, l} sum_ij
///                 G^up_{k,l}(i,j) G^dn_{k,l}(i,j).
/// Needs only Pattern::Rows — one of the selected-inversion shapes FSI
/// serves directly.
void accumulate_pair_susceptibility(const Lattice& lat,
                                    const pcyclic::SelectedInversion& rows_up,
                                    const pcyclic::SelectedInversion& rows_dn,
                                    double dtau, double sign, bool parallel,
                                    Measurements& out);

void accumulate_spxx(const Lattice& lat,
                     const pcyclic::SelectedInversion& rows_up,
                     const pcyclic::SelectedInversion& cols_up,
                     const pcyclic::SelectedInversion& rows_dn,
                     const pcyclic::SelectedInversion& cols_dn, double sign,
                     bool parallel, Measurements& out);

}  // namespace fsi::qmc
