#pragma once
/// \file dqmc.hpp
/// \brief The full DQMC simulation driver (paper Alg. 4 / Fig. 7).
///
/// A simulation runs `warmup` sweeps to thermalise the Hubbard-Stratonovich
/// field, then `measurement` sweeps; after each measurement sweep it builds
/// the Hubbard matrices M^up/M^dn for the current field and computes the
/// Green's-function blocks that the physical measurements need — all L
/// diagonal blocks plus b block rows and b block columns (the Fig. 10
/// workload) — with one of two engines:
///
///   - GreensEngine::Fsi      : the paper's contribution — CLS + BSOFI once,
///                              then three wrapping passes share the reduced
///                              inverse; coarse-grain OpenMP over clusters /
///                              seeds / measurement loops.
///   - GreensEngine::MklStyle : the paper's comparator ("pure multi-threaded
///                              MKL"): identical linear algebra, but the only
///                              parallelism is inside the dense kernels;
///                              outer loops and measurements run serially,
///                              which is what flattens the MKL curves in
///                              Figs. 8 (bottom), 10 and 11.

#include <cstdint>

#include "fsi/qmc/greens.hpp"
#include "fsi/qmc/hubbard.hpp"
#include "fsi/qmc/measurements.hpp"

namespace fsi::qmc {

/// How the per-measurement Green's-function blocks are produced.
enum class GreensEngine {
  Fsi,       ///< FSI with coarse OpenMP + parallel measurements (paper mode)
  MklStyle,  ///< same algorithm, threaded kernels only, serial outer loops
             ///< and serial measurements — the paper's "pure MKL" comparator
};

/// Simulation options (paper Fig. 11 uses w=100, m=200, c=10).
struct DqmcOptions {
  index_t warmup_sweeps = 20;
  index_t measurement_sweeps = 40;
  /// FSI cluster size c; 0 picks the divisor of L closest to sqrt(L).
  index_t cluster_size = 0;
  /// Sweeps' Green's functions are recomputed (stabilised) after this many
  /// slice wraps.
  index_t wrap_interval = 8;
  /// Delayed-update depth of the sweep engines (0 = immediate rank-1
  /// updates; >0 accumulates that many updates per GEMM flush — the
  /// optimisation of the paper's ref. [23]).
  index_t delay_depth = 0;
  GreensEngine engine = GreensEngine::Fsi;
  /// How the sweep engines recompute G at stabilisation points; the default
  /// follows FSI_STAB (QrAccumulate when unset — pre-stab behavior, or the
  /// stab::StabilizedChain UDT path for large-beta runs).
  RecomputeMethod recompute = default_recompute_method();
  /// Also compute the SPXX time-dependent measurement (needs rows+columns).
  bool measure_time_dependent = true;
  std::uint64_t seed = 1234;
};

/// Wall-clock breakdown matching the paper's Fig. 10/11 profiles.
struct DqmcTimings {
  double warmup_seconds = 0.0;   ///< Metropolis sweeps (both phases)
  double greens_seconds = 0.0;   ///< selected-inversion computation
  double measure_seconds = 0.0;  ///< physical-measurement accumulation
  double total_seconds = 0.0;
};

/// Numerical-stability statistics of one simulation (both spin engines
/// combined).  The drift samples also stream into obs::health, where the
/// bounded per-recompute time series and the OK/WARN/FAIL classification
/// live; this struct carries the scalar summary alongside the result.
struct DqmcStats {
  index_t recomputes = 0;      ///< stabilised recomputes across both spins
  double last_drift = 0.0;     ///< worse spin's drift at the final recompute
  double max_drift = 0.0;      ///< largest drift over the whole simulation
};

struct DqmcResult {
  Measurements measurements;
  DqmcTimings timings;
  double acceptance_rate = 0.0;
  /// Largest wrap-vs-recompute drift observed (stability diagnostic);
  /// equals stats.max_drift, kept as a field for existing callers.
  double max_drift = 0.0;
  DqmcStats stats;
};

/// Choose the divisor of \p l closest to sqrt(l) (the paper's c ~ sqrt(L)).
index_t default_cluster_size(index_t l);

/// One full Metropolis sweep over all (slice, site) pairs, updating
/// \p field and the two Green's engines in lock-step.  Returns the number
/// of accepted flips; \p sign is multiplied by the sign of each accepted
/// ratio (tracking the Monte Carlo sign).
index_t metropolis_sweep(const HubbardModel& model, HsField& field,
                         EqualTimeGreens& g_up, EqualTimeGreens& g_dn,
                         util::Rng& rng, double& sign);

/// Run a full DQMC simulation.
DqmcResult run_dqmc(const HubbardModel& model, const DqmcOptions& options);

}  // namespace fsi::qmc
