#pragma once
/// \file binning.hpp
/// \brief Binned error analysis for Monte Carlo observables.
///
/// Successive DQMC sweeps are correlated, so the naive standard error of the
/// per-sweep samples underestimates the true statistical error.  The
/// standard remedy is *binning*: average consecutive samples into bins long
/// compared to the autocorrelation time, then treat the bins as independent.
/// BinnedScalar implements that with on-line accumulation; the reported
/// error grows with bin size until it plateaus at the decorrelated value.

#include <cstddef>
#include <vector>

#include "fsi/util/check.hpp"

namespace fsi::qmc {

/// On-line binned mean / standard-error estimator for one scalar observable.
class BinnedScalar {
 public:
  /// \p bin_capacity: samples per bin (choose >> autocorrelation time).
  explicit BinnedScalar(std::size_t bin_capacity);

  /// Add one (sign-corrected) sample.
  void add(double value);

  std::size_t num_samples() const { return count_; }
  std::size_t num_complete_bins() const { return bins_.size(); }

  /// Mean over all samples (including the partial last bin).
  double mean() const;

  /// Standard error of the mean estimated from complete bins
  /// (sqrt(var(bin means) / n_bins)); 0 with fewer than 2 complete bins.
  double error() const;

  /// Rebin by a factor (merges adjacent bins) — used to check the error
  /// plateau; factor must divide the current number of complete bins away
  /// cleanly (trailing remainder bins are dropped).
  BinnedScalar rebinned(std::size_t factor) const;

 private:
  std::size_t capacity_;
  std::size_t count_ = 0;
  double total_ = 0.0;
  double current_sum_ = 0.0;
  std::size_t current_count_ = 0;
  std::vector<double> bins_;  // completed bin means
};

}  // namespace fsi::qmc
