#pragma once
/// \file greens.hpp
/// \brief Equal-time Green's function engine for the Metropolis sweep.
///
/// During a DQMC sweep (paper Alg. 4) the Metropolis ratio for flipping
/// h(l, i) needs the equal-time Green's function "at slice l":
///   G_l = (I + A(l-1))^-1,  A(k) = B_k B_{k-1} ... B_{k+1},
/// which is exactly the diagonal block G(l-1, l-1) of the block p-cyclic
/// inverse.  The engine maintains G_l across the sweep with three O(N^2..3)
/// primitives:
///   - flip_ratio:  r_sigma = 1 + alpha (1 - G(i, i)),
///                  alpha = e^{-2 sigma nu h(l,i)} - 1;
///   - apply_flip:  rank-1 Sherman-Morrison update
///                  G <- G - (alpha/r) (e_i - G e_i)(e_i^T G);
///   - advance:     wrap to the next slice, G <- B_l G B_l^-1.
/// Round-off accumulates across wraps and rank-1 updates, so the engine
/// periodically *recomputes* G from scratch with the same stabilised
/// clustered scheme FSI uses (Hirsch's block cyclic reduction idea):
/// cluster products of c consecutive B's with a QR re-orthogonalisation
/// between clusters, then (I + QR)^-1 = (Q^T + R)^-1 Q^T.

#include "fsi/dense/matrix.hpp"
#include "fsi/qmc/hubbard.hpp"

namespace fsi::qmc {

/// How EqualTimeGreens recomputes G from scratch at stabilisation points.
enum class RecomputeMethod {
  QrAccumulate,  ///< clustered QR-accumulated chain product (default)
  PartialBsofi,  ///< CLS + one block row of the BSOFI inverse (selinv path)
  Udt,           ///< fsi::stab UDT chain + scale-separated inversion — the
                 ///< large-beta path; accurate where QrAccumulate's wrap
                 ///< drift blows through the obs::health budget
};

/// The recompute method selected by the FSI_STAB environment variable
/// (stab::StabStrategy): Naive (unset/default) maps to QrAccumulate, Udt to
/// Udt — so default runs stay bit-identical to the pre-stab pipeline.
/// Throws util::CheckError on an unparsable FSI_STAB value.
RecomputeMethod default_recompute_method();

/// Equal-time Green's function for one spin species.
///
/// Optionally uses *delayed updates* (the optimisation lineage of the
/// paper's ref. [23], Tomas et al. IPDPS 2012): accepted flips are
/// accumulated as rank-1 pairs U W^T and applied to G in one Level-3 GEMM
/// once `delay_depth` of them have piled up, trading k rank-1 GERs
/// (memory-bound) for one GEMM (compute-bound).  delay_depth = 0 applies
/// every update immediately (the classic algorithm).
class EqualTimeGreens {
 public:
  /// \p cluster_size: c of the stabilised recompute (c ~ sqrt(L) as in FSI).
  /// \p wrap_interval: slices between stabilised recomputes.
  /// \p delay_depth: rank-1 updates accumulated before the GEMM flush.
  EqualTimeGreens(const HubbardModel& model, const HsField& field, Spin spin,
                  index_t cluster_size, index_t wrap_interval = 8,
                  index_t delay_depth = 0,
                  RecomputeMethod method = default_recompute_method());

  /// Slice whose updates this G serves (the l of G_l above).
  index_t slice() const { return slice_; }
  Spin spin() const { return spin_; }
  /// The current Green's function (flushes pending delayed updates).
  const Matrix& g() const {
    flush_delayed();
    return g_;
  }
  index_t delay_depth() const { return delay_depth_; }
  /// Pending (unflushed) delayed updates — diagnostics/tests.
  index_t pending_updates() const { return pending_; }

  /// alpha_sigma for flipping h(slice, site) at the current field value.
  double flip_alpha(index_t site) const;
  /// Metropolis ratio r_sigma = 1 + alpha (1 - G(i, i)).
  double flip_ratio(index_t site, double alpha) const;
  /// Rank-1 update of G after the flip is accepted.  Must be called with
  /// the SAME alpha/ratio used for the decision, BEFORE the field is
  /// actually flipped by the caller.
  void apply_flip(index_t site, double alpha, double ratio);

  /// Move to the next slice: G <- B_l G B_l^-1 (uses the *current* field,
  /// i.e. after all accepted flips of slice l).  Triggers a stabilised
  /// recompute every wrap_interval wraps.
  void advance();

  /// Stabilised recompute of G at the current slice.
  void recompute();

  /// Recompute G for the *current* field state and clear the drift
  /// statistics (last_drift/max_drift/recomputes).  Call when reusing an
  /// engine on a new chain — e.g. after externally rewriting the HS field —
  /// so stale drift from the previous chain is not reported for the new one.
  void reseed();

  /// || G_wrapped - G_recomputed ||_max at the most recent stabilised
  /// recompute; a growing drift signals too large a wrap interval.
  double last_drift() const { return last_drift_; }

  /// Largest drift seen over all stabilised recomputes since construction
  /// or the last reseed() — not just the most recent one.
  double max_drift() const { return max_drift_; }

  /// Stabilised recomputes performed since construction / last reseed().
  /// Wall time spent in them accumulates in the shared obs registry under
  /// metrics::Accum::GreensRecompute (it is process-wide Green's-function
  /// work, not a per-engine quantity).
  index_t recomputes() const { return recomputes_; }

 private:
  /// Apply the pending U W accumulation to g_ with one GEMM.
  void flush_delayed() const;
  /// Effective G(i, i) / column / row including pending updates.
  double effective_diag(index_t i) const;

  const HubbardModel& model_;
  const HsField& field_;
  Spin spin_;
  index_t cluster_size_;
  index_t wrap_interval_;
  index_t delay_depth_;
  RecomputeMethod method_;
  index_t slice_ = 0;
  index_t wraps_since_recompute_ = 0;
  double last_drift_ = 0.0;
  double max_drift_ = 0.0;
  index_t recomputes_ = 0;
  // Delayed-update accumulators (mutable: flushing is observably pure).
  mutable Matrix g_;
  mutable Matrix delay_u_, delay_w_;  // N x depth, depth x N
  mutable index_t pending_ = 0;
};

/// Stabilised computation of (I + B_{k} B_{k-1} ... B_{k+1})^-1 — the
/// equal-time Green's function G(k, k) of the p-cyclic inverse — using
/// cluster products with QR re-orthogonalisation.  Exposed for tests and
/// for the U = 0 free-fermion checks.
Matrix equal_time_greens(const HubbardModel& model, const HsField& field,
                         Spin spin, index_t k, index_t cluster_size);

/// Same G(k, k), computed through the stab::StabilizedChain UDT engine:
/// the chain is accumulated as U diag(d) T with a pivoted QR every
/// `cluster_size` slices (FSI_STAB_CLUSTER overrides when set and > 0) and
/// inverted with the large/small-scale separation.  The accurate path at
/// large beta*L; see docs/stabilization.md.
Matrix stabilized_equal_time_greens(const HubbardModel& model,
                                    const HsField& field, Spin spin, index_t k,
                                    index_t cluster_size);

}  // namespace fsi::qmc
