#pragma once
/// \file tridiag.hpp
/// \brief Selected inversion of block *tridiagonal* matrices — the paper's
/// stated future work ("One promising future work is the extension of the
/// basic idea of the FSI algorithm to other types of structured matrices
/// such as block tridiagonal matrices", Sec. VI).
///
/// The FSI idea carries over directly: compute a small set of anchor blocks
/// of the inverse with a stable structured factorisation, then grow the
/// requested pattern with O(N^3) adjacency-style recurrences.  For block
/// tridiagonal T the anchors are the diagonal blocks, obtained from the
/// classical two-sided (RGF / Takahashi) recurrences
///
///   gL_0     = D_0^-1,        gL_i = (D_i - A_i gL_{i-1} C_i)^-1
///   gR_{L-1} = D_{L-1}^-1,    gR_i = (D_i - C_{i+1} gR_{i+1} A_{i+1})^-1
///   G_ii = (D_i - A_i gL_{i-1} C_i - C_{i+1} gR_{i+1} A_{i+1})^-1
///
/// and the off-diagonal adjacency relations (the tridiagonal analogue of
/// the paper's Eqs. 4-7)
///
///   G_{i+1,j} = -gR_{i+1} A_{i+1} G_{i,j}       (move down)
///   G_{i-1,j} = -gL_{i-1} C_i     G_{i,j}       (move up),
///
/// with blocks A_i = T(i, i-1), C_i = T(i-1, i), D_i = T(i, i).

#include <memory>
#include <vector>

#include "fsi/dense/lu.hpp"
#include "fsi/dense/matrix.hpp"
#include "fsi/util/rng.hpp"

namespace fsi::tridiag {

using dense::ConstMatrixView;
using dense::index_t;
using dense::Matrix;
using dense::MatrixView;

/// Block tridiagonal matrix with L diagonal blocks of size N x N.
class BlockTridiagonalMatrix {
 public:
  /// Zero blocks; fill via d()/a()/c().
  BlockTridiagonalMatrix(index_t block_size, index_t num_blocks);

  /// Random diagonally-dominant instance (safe to invert) for tests/benches.
  static BlockTridiagonalMatrix random(index_t block_size, index_t num_blocks,
                                       util::Rng& rng);

  index_t block_size() const { return n_; }
  index_t num_blocks() const { return l_; }
  index_t dim() const { return n_ * l_; }

  /// Diagonal block D_i, i in [0, L).
  MatrixView d(index_t i);
  ConstMatrixView d(index_t i) const;
  /// Sub-diagonal block A_i = T(i, i-1), i in [1, L).
  MatrixView a(index_t i);
  ConstMatrixView a(index_t i) const;
  /// Super-diagonal block C_i = T(i-1, i), i in [1, L).
  MatrixView c(index_t i);
  ConstMatrixView c(index_t i) const;

  /// Assemble the dense NL x NL matrix (baselines and tests).
  Matrix to_dense() const;

 private:
  index_t n_ = 0, l_ = 0;
  std::vector<Matrix> diag_, sub_, super_;
};

/// Selected inversion engine: factors the two-sided recurrences once
/// (O(L N^3)), then serves diagonal blocks in O(N^3) each and arbitrary
/// blocks / block columns via the adjacency moves.
class TridiagSelectedInverse {
 public:
  explicit TridiagSelectedInverse(const BlockTridiagonalMatrix& t);

  index_t block_size() const { return t_.block_size(); }
  index_t num_blocks() const { return t_.num_blocks(); }

  /// Diagonal block G(i, i) of T^-1.
  Matrix diag_block(index_t i) const;

  /// Move down: G(i+1, j) from g = G(i, j) (requires i + 1 < L).
  Matrix down(index_t i, index_t j, ConstMatrixView g) const;
  /// Move up: G(i-1, j) from g = G(i, j) (requires i > 0).
  Matrix up(index_t i, index_t j, ConstMatrixView g) const;

  /// Arbitrary block G(i, j): diagonal anchor at (j, j) walked to row i.
  Matrix block(index_t i, index_t j) const;

  /// Full block column j (all L blocks), grown from the (j, j) anchor —
  /// the tridiagonal analogue of the paper's Alg. 2 with one seed.
  std::vector<Matrix> column(index_t j) const;

 private:
  const BlockTridiagonalMatrix& t_;
  // gL_i and gR_i as dense blocks, plus pre-factored "move" operators
  // U_i = -gL_{i-1} C_i (up) and V_i = -gR_{i+1} A_{i+1} (down).
  std::vector<Matrix> gl_, gr_;
  std::vector<Matrix> up_op_, down_op_;
  std::vector<std::unique_ptr<dense::LuFactorization>> diag_lu_;
};

/// Reference: dense LU inversion of the assembled matrix.
Matrix invert_dense_lu(const BlockTridiagonalMatrix& t);

}  // namespace fsi::tridiag
