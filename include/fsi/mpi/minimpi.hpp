#pragma once
/// \file minimpi.hpp
/// \brief In-process message-passing runtime ("mini-MPI").
///
/// The paper's coarse-grain level distributes thousands of Hubbard matrices
/// over MPI ranks on NERSC Edison (Alg. 3: MPI_Scatter the HS fields,
/// per-rank FSI, MPI_Reduce the measurement quantities).  No MPI
/// implementation is installed in this environment, so this module provides
/// the subset of the MPI programming model that Alg. 3 needs — ranks,
/// point-to-point sends/receives, Barrier, Bcast, Scatter, Reduce,
/// Allreduce — with ranks running as std::threads inside one process.
///
/// The API shape deliberately mirrors the MPI specification (see the LLNL
/// MPI tutorial): cooperative operations on a communicator, rank/size
/// addressing, root-based collectives.  Message passing is by value (data
/// is moved/copied through a mailbox), preserving MPI's
/// no-shared-address-space semantics so the code would port to real MPI
/// mechanically.  Each rank can additionally set its own OpenMP team size,
/// enabling the paper's (#MPI processes) x (#OpenMP threads) trade-off
/// study on a single machine.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "fsi/util/check.hpp"

namespace fsi::mpi {

namespace detail {
struct Context;
}

/// Handle to the shared runtime, one per rank (cf. MPI_COMM_WORLD).
class Communicator {
 public:
  /// This rank's id in [0, size()).
  int rank() const { return rank_; }
  /// Number of ranks in the communicator.
  int size() const;

  /// Blocking point-to-point send (cf. MPI_Send).  Tags disambiguate
  /// independent message streams between the same pair of ranks.
  void send(int dest, int tag, std::vector<double> data);

  /// Blocking receive (cf. MPI_Recv): waits until a matching message
  /// (source, tag) arrives.
  std::vector<double> recv(int source, int tag);

  /// Synchronise all ranks (cf. MPI_Barrier).
  void barrier();

  /// Broadcast root's buffer to every rank (cf. MPI_Bcast).
  void bcast(std::vector<double>& data, int root);

  /// Scatter equal chunks of root's send buffer (cf. MPI_Scatter).
  /// On the root, \p sendbuf must hold size() * count elements; elsewhere it
  /// is ignored.  Returns this rank's chunk of \p count elements.
  std::vector<double> scatter(const std::vector<double>& sendbuf,
                              std::size_t count, int root);

  /// Element-wise sum reduction to root (cf. MPI_Reduce with MPI_SUM).
  /// Returns the reduced vector on the root, an empty vector elsewhere.
  std::vector<double> reduce_sum(const std::vector<double>& local, int root);

  /// Element-wise sum reduction to all ranks (cf. MPI_Allreduce).
  std::vector<double> allreduce_sum(const std::vector<double>& local);

  /// Gather each rank's (equally sized) buffer to root (cf. MPI_Gather).
  std::vector<double> gather(const std::vector<double>& local, int root);

 private:
  friend void run(int, const std::function<void(Communicator&)>&, int);
  Communicator(detail::Context& ctx, int rank) : ctx_(&ctx), rank_(rank) {}

  detail::Context* ctx_;
  int rank_;
};

/// Launch \p num_ranks ranks, each executing \p body with its own
/// Communicator (cf. mpirun -np N).  If \p omp_threads_per_rank > 0, each
/// rank's OpenMP ICV is set to that team size before \p body runs — the
/// "(#MPI processes) x (#OpenMP threads / process)" knob of the paper's
/// Fig. 9.  Rethrows the first exception raised by any rank after all have
/// joined.
void run(int num_ranks, const std::function<void(Communicator&)>& body,
         int omp_threads_per_rank = 0);

}  // namespace fsi::mpi
