#pragma once
/// \file edison_model.hpp
/// \brief Analytic memory-feasibility model of a NERSC Edison compute node.
///
/// The paper's Fig. 9 shows that pure-MPI execution (24 ranks per node) is
/// the fastest configuration *when it fits in memory*, but for N >= 576 the
/// per-rank footprint of a selected inversion exceeds the node's budget and
/// the OOM killer terminates the job — hybrid MPI/OpenMP is then required.
/// We cannot rent 100 Edison nodes, so this model reproduces the
/// feasibility boundary analytically from the measured per-matrix footprint
/// (paper: "When N = 576, the memory requirement for the selected inversion
/// is approximately 2.65 GB; 12 MPI processes per socket require 31.8 GB
/// that exceeds the available memory").

#include <cstddef>

#include "fsi/dense/matrix.hpp"
#include "fsi/pcyclic/patterns.hpp"

namespace fsi::mpi {

/// Hardware description of one Edison node (paper Sec. III-A / V).
struct EdisonNode {
  int sockets = 2;
  int cores_per_socket = 12;
  double memory_gb = 64.0;
  /// OS / Lustre / MPI buffers etc.: the paper quotes ~2.5 GB usable per
  /// core out of 64/24 = 2.67 GB, i.e. ~6.7% reserved.
  double reserved_gb = 4.0;

  int cores() const { return sockets * cores_per_socket; }
  double usable_gb() const { return memory_gb - reserved_gb; }
};

/// Estimated bytes one MPI rank needs to run FSI on one Hubbard matrix with
/// the given shape: B blocks (L N^2), the reduced matrix (b N^2), the dense
/// reduced inverse ((bN)^2), the LU factors for the wrapping moves (L N^2)
/// and the selected inversion itself (the dominant term: bL N^2 for block
/// columns — 2.65 GB at (N, L, c) = (576, 100, 10), matching the paper).
std::size_t fsi_rank_bytes(dense::index_t n, dense::index_t l, dense::index_t c,
                           pcyclic::Pattern pattern);

/// Can \p ranks_per_node ranks of \p bytes_per_rank each run on \p node?
bool config_fits(int ranks_per_node, std::size_t bytes_per_rank,
                 const EdisonNode& node = EdisonNode{});

}  // namespace fsi::mpi
