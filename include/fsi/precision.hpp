#pragma once
/// \file precision.hpp
/// \brief Scalar-precision selection for the FSI pipeline.
///
/// The dense layer is scalar-generic (float/double); this enum selects how
/// one FSI run uses it:
///
///   Fp64  — everything in double.  The default, bit-identical to the
///           pre-generic pipeline; what every correctness bench compares
///           against.
///   Mixed — the error-tolerant stages run in fp32: CLS cluster products
///           multiply demoted B blocks and promote each product to fp64,
///           and the WRP seed walks move demoted blocks through fp32
///           adjacency relations, promoting every stored block.  BSOFI —
///           the stability-critical stage the paper's accuracy claim rests
///           on — always stays fp64.  Every mixed run is health-gated
///           (sampled residual + cond1 of the reduced matrix) and falls
///           back to a full fp64 rerun when the gate trips; see
///           docs/precision.md.
///
/// The enum is wire-stable (serialised in the serve protocol v3 request
/// field), so values must never be renumbered.

#include <cstdint>
#include <string>

namespace fsi {

enum class Precision : std::uint32_t {
  Fp64 = 0,   ///< full double precision (default)
  Mixed = 1,  ///< fp32 CLS + WRP, fp64 BSOFI, health-gated fp64 fallback
};

/// Canonical lower-case name ("fp64", "mixed").
const char* precision_name(Precision p) noexcept;

/// Parse a precision name (case-insensitive; accepts "fp64"/"double"/"64"
/// and "mixed"/"fp32"/"32").  Returns false on anything else, leaving
/// \p out untouched.
bool parse_precision(const std::string& text, Precision& out) noexcept;

/// Value of a wire/env integer as a Precision; false when out of range.
bool precision_from_u32(std::uint32_t v, Precision& out) noexcept;

/// Interpret one FSI_PRECISION value: nullptr/"" selects Fp64; anything
/// unparsable throws util::CheckError naming the value and the accepted
/// spellings.  A typo like FSI_PRECISION=fp16 must not silently run the
/// whole job in fp64 — fail-loud is the only recoverable behavior for a
/// precision selector.  Exposed separately from the cached reader so tests
/// can exercise the error path without mutating the environment.
Precision precision_from_env_value(const char* value);

/// The FSI_PRECISION environment variable ("fp64" when unset).  Read once
/// and cached; throws util::CheckError on an unparsable value (the throw is
/// retried on the next call, so a bad first read does not poison the cache).
Precision precision_from_env();

}  // namespace fsi
