#pragma once
/// \file strategy.hpp
/// \brief Chain-stabilization strategy selection (FSI_STAB).
///
/// Selects how qmc::EqualTimeGreens recomputes Green's functions from
/// scratch at each stabilisation point:
///
///   Naive — the existing QR-accumulate product path.  The default,
///           bit-identical to the pre-stab pipeline; accurate up to
///           moderate beta*L, then the chain's exponential scale spread
///           swamps double precision and the wrap drift blows through the
///           obs::health budget.
///   Udt   — the fsi::stab ASvQRD engine: the chain is held as U diag(d) T
///           and inverted with the large/small-scale separation, pushing
///           the attainable beta*L frontier out by well over 4x at the
///           same drift budget (see bench_stab_beta and
///           docs/stabilization.md).
///
/// Like Precision, the enum is wire/env-stable: values are never
/// renumbered.  Unknown FSI_STAB values fail loudly (util::CheckError) —
/// silently falling back to Naive would un-stabilise a large-beta run.

#include <cstdint>
#include <string>

namespace fsi::stab {

enum class StabStrategy : std::uint32_t {
  Naive = 0,  ///< plain QR-accumulate product (default, pre-stab behavior)
  Udt = 1,    ///< ASvQRD UDT-decomposed chain + scale-separated inversion
};

/// Canonical lower-case name ("naive", "udt").
const char* stab_strategy_name(StabStrategy s) noexcept;

/// Parse a strategy name (case-insensitive; accepts "naive"/"qr" and
/// "udt"/"asvqrd").  Returns false on anything else, leaving \p out
/// untouched.
bool parse_stab_strategy(const std::string& text, StabStrategy& out) noexcept;

/// Interpret one FSI_STAB value: nullptr/"" selects Naive; anything
/// unparsable throws util::CheckError naming the value and the accepted
/// spellings.  Exposed separately from the cached reader so tests can
/// exercise the fail-loud path without mutating the environment.
StabStrategy stab_strategy_from_env_value(const char* value);

/// The FSI_STAB environment variable, read once and cached.  Throws
/// util::CheckError on an unparsable value (retried on the next call, so a
/// throwing first read does not poison the cache).
StabStrategy stab_strategy_from_env();

}  // namespace fsi::stab
