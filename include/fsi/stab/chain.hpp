#pragma once
/// \file chain.hpp
/// \brief Stabilized propagator-chain engine.
///
/// StabilizedChain accumulates a product of slice propagators
/// B_L ... B_2 B_1 (appended left-to-right in application order: B_1 first)
/// while keeping it in UDT-decomposed form.  Factors are buffered into a
/// small *pending cluster* — a plain product of up to cluster_size
/// consecutive B's, safe because a handful of slices spans only a few
/// decades — and each full cluster is folded into the UDT with one pivoted
/// QR.  cluster_size trades QR count against scale mixing: 1 is the
/// maximally careful ASvQRD, ~8 matches the paper's CLS cluster width and
/// loses nothing at physical couplings.
///
/// The appender is a callback that LEFT-multiplies the pending product in
/// place (m <- B m), matching qmc::HubbardModel::multiply_b_left, so the
/// engine never needs to know what a Hubbard model is.

#include <utility>

#include "fsi/stab/udt.hpp"

namespace fsi::stab {

class StabilizedChain {
 public:
  /// Chain of n x n factors; fold every \p cluster_size appends (>= 1).
  StabilizedChain(index_t n, index_t cluster_size);

  /// Append one factor: chain <- B * chain, via \p apply_left(pending_)
  /// which must perform m <- B m on the pending cluster product.
  template <typename Fn>
  void append(Fn&& apply_left) {
    std::forward<Fn>(apply_left)(pending_);
    ++factors_;
    if (++pending_count_ == cluster_) flush();
  }

  /// Fold any buffered factors into the UDT (no-op when none pending).
  void flush();

  /// The decomposed chain product (flushes first).
  const UdtDecomposition& udt();

  /// Equal-time Green's function G = (1 + B_L...B_1)^-1 of the chain
  /// appended so far (flushes first).  Publishes the chain's scale spread
  /// to Gauge::StabScaleSpread.
  Matrix greens();

  /// log10(dmax/dmin) of the decomposed chain (flushes first).
  double scale_spread_log10();

  index_t n() const { return udt_.n(); }
  index_t cluster_size() const { return cluster_; }
  /// Total factors appended since construction.
  index_t factors() const { return factors_; }

 private:
  UdtDecomposition udt_;
  Matrix pending_;
  index_t cluster_ = 1;
  index_t pending_count_ = 0;
  index_t factors_ = 0;
};

}  // namespace fsi::stab
