#pragma once
/// \file reference.hpp
/// \brief Extended-precision reference Green's functions for validation.
///
/// A deliberately simple, self-contained long-double (x86 80-bit)
/// implementation of the stabilized chain inversion: per-factor pivoted-QR
/// UDT recurrence (cluster size 1 — maximally careful) plus the Db/Ds
/// scale-separated solve, written as scalar loops with no dependence on the
/// dense templates (which only instantiate float/double).  With ~19
/// significant digits and per-slice re-orthogonalisation it stays accurate
/// far beyond where any double-precision path can, so tests and
/// bench_stab_beta use it as the "quad-careful" ground truth for G at
/// large beta.  O(L * n^3) scalar flops — small n only.

#include <vector>

#include "fsi/dense/matrix.hpp"

namespace fsi::stab {

/// G = (1 + B[L-1] * ... * B[1] * B[0])^-1 in long double; all factors must
/// be square and of equal dimension, and the list non-empty.
dense::Matrix reference_inverse_one_plus_chain(
    const std::vector<dense::Matrix>& b_factors);

}  // namespace fsi::stab
