#pragma once
/// \file udt.hpp
/// \brief UDT-decomposed propagator products (ASvQRD recurrence).
///
/// At large inverse temperature beta the slice-propagator chain
/// B_L ... B_1 spans exponentially separated scales: forming it as a plain
/// (or even QR-accumulated) product mixes scales that differ by more than
/// 1/eps and the equal-time Green's function G = (1 + B_L...B_1)^-1 loses
/// every digit.  The standard cure (ASvQRD — Bauer 2020 "Fast and stable
/// determinant quantum Monte Carlo"; Luu et al. 2026) keeps the chain in
/// decomposed form
///
///   B_k ... B_1 = U * diag(d) * T,
///
/// with U orthogonal, d a positive scale vector sorted descending by the
/// column-pivoted QR, and T the bounded triangular-ish remainder.  The
/// recurrence never forms the explosive product: appending a factor C
/// computes QRP((C U) * diag(d)) — the only unbounded object is the
/// column-scaled n x n matrix whose scales the next pivoted QR immediately
/// re-separates into the new d.
///
/// The inversion G = (1 + U D T)^-1 uses the large/small-scale separation:
/// with D = Db * Ds, Db = max(d, 1), Ds = min(d, 1),
///
///   1 + U D T = U Db (Db^-1 U^T + Ds T)
///   =>  G = (Db^-1 U^T + Ds T)^-1 Db^-1 U^T,
///
/// where both summands of the inner matrix are O(1)-bounded (Db^-1 <= 1
/// row-scales an orthogonal matrix, Ds <= 1 row-scales the bounded T), so
/// the LU solve is well conditioned regardless of how far d spans.
///
/// The stored scales saturate at +-120 decades: a scale past ~1e16 already
/// contributes zero (or exactly its T row) to G at double precision, so
/// truncating keeps the recurrence inside double range at arbitrary beta
/// instead of overflowing near a 300-decade spread the way any plain
/// product representation must.

#include <vector>

#include "fsi/dense/matrix.hpp"

namespace fsi::stab {

using dense::index_t;
using dense::Matrix;

/// The decomposed chain product U * diag(d) * T.
struct UdtDecomposition {
  Matrix u;               ///< n x n orthogonal
  std::vector<double> d;  ///< n positive scales, descending (pivoted QR)
  Matrix t;               ///< n x n bounded remainder (row-scaled permuted R
                          ///< times the previous T; not triangular in general)

  index_t n() const { return u.rows(); }

  /// The chain with zero factors: U = T = I, d = 1.
  static UdtDecomposition identity(index_t n);

  /// Largest / smallest scale of d (1 for the empty decomposition).
  double dmax() const;
  double dmin() const;

  /// log10(dmax/dmin) — how many decades the chain's scales span.  Above
  /// ~15 a plain double-precision product has already lost every digit.
  double scale_spread_log10() const;

  /// Recombine U * diag(d) * T explicitly (overflows for long chains at
  /// large beta — tests/diagnostics only).
  Matrix dense() const;
};

/// One ASvQRD step: udt <- UDT(c * U * diag(d) * T).  Cost: two n^3 GEMMs
/// plus one pivoted QR; \p c is typically a cluster product of a few
/// consecutive slice propagators (the pending product of StabilizedChain).
void udt_advance(UdtDecomposition& udt, dense::ConstMatrixView c);

/// Decompose a single matrix: UDT(a) (one udt_advance from identity).
UdtDecomposition udt_decompose(Matrix a);

/// G = (1 + U D T)^-1 via the Db/Ds scale separation described above.
Matrix inverse_one_plus(const UdtDecomposition& udt);

}  // namespace fsi::stab
