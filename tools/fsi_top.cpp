/// \file fsi_top.cpp
/// \brief Live terminal dashboard for a running fsi_serve daemon.
///
/// Usage:
///   fsi_top --socket unix:/tmp/fsi.sock [--interval-ms 1000] [--count 0]
///           [--json]
///
/// Polls the daemon's StatsRequest endpoint (wire schema v2) and redraws a
/// one-screen summary: uptime, request rate, queue depth against capacity,
/// lifetime counters, the rolling-window latency / queue-wait percentiles,
/// batch occupancy and model-cache hit rate.  --json suppresses the
/// dashboard and prints one snapshot as a single JSON object (machine
/// consumption: the CI smoke test and scripts), then exits.  --count N
/// stops after N polls (0 = until interrupted).
///
/// A daemon restart does not kill the dashboard: on a failed poll (or a
/// failed connect) fsi_top shows a "disconnected" banner and retries with
/// bounded exponential backoff (250 ms doubling to 5 s) until the daemon
/// returns or the user interrupts.  --json keeps the old fail-fast exit so
/// scripts see a dead daemon as a nonzero status.

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <optional>
#include <string>

#include <thread>

#include "fsi/obs/build.hpp"
#include "fsi/serve/client.hpp"
#include "fsi/util/cli.hpp"

namespace {

using namespace fsi;

volatile std::sig_atomic_t g_stop_requested = 0;

void handle_signal(int) { g_stop_requested = 1; }

void print_window(const char* label, const serve::WindowStat& w,
                  double scale, const char* unit) {
  std::printf("  %-12s n=%-6llu mean %8.3f  p50 %8.3f  p95 %8.3f  "
              "p99 %8.3f %s\n",
              label, static_cast<unsigned long long>(w.count),
              w.mean * scale, w.p50 * scale, w.p95 * scale, w.p99 * scale,
              unit);
}

std::string policy_rows_json(const serve::StatsResponse& s) {
  std::string out = "[";
  for (std::size_t i = 0; i < s.policy_rows.size(); ++i) {
    const serve::PolicyKeyRow& r = s.policy_rows[i];
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"key_hash\":\"%016llx\",\"window_us\":%lld,"
                  "\"max_batch\":%llu,\"bypass\":%s,\"speedup\":%.4f}",
                  i == 0 ? "" : ",",
                  static_cast<unsigned long long>(r.key_hash),
                  static_cast<long long>(r.window_us),
                  static_cast<unsigned long long>(r.max_batch),
                  r.bypass ? "true" : "false", r.speedup);
    out += buf;
  }
  out += "]";
  return out;
}

void print_json(const serve::StatsResponse& s) {
  const auto win = [](const serve::WindowStat& w) {
    static char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\":%llu,\"mean\":%.9g,\"p50\":%.9g,"
                  "\"p95\":%.9g,\"p99\":%.9g}",
                  static_cast<unsigned long long>(w.count), w.mean, w.p50,
                  w.p95, w.p99);
    return std::string(buf);
  };
  std::printf(
      "{\"stats_version\":%u,\"uptime_s\":%.3f,"
      "\"connections\":%llu,\"admitted\":%llu,\"served_ok\":%llu,"
      "\"rejected_full\":%llu,\"deadline_miss\":%llu,\"cancelled\":%llu,"
      "\"malformed\":%llu,\"errors\":%llu,\"shed_shutdown\":%llu,"
      "\"batches\":%llu,\"batched_requests\":%llu,"
      "\"models_built\":%llu,\"model_cache_hits\":%llu,"
      "\"model_cache_size\":%llu,\"model_cache_hit_rate\":%.4f,"
      "\"queue_depth\":%llu,\"queue_high_water\":%llu,"
      "\"queue_capacity\":%llu,"
      "\"rejected_quota\":%llu,\"replicas\":%llu,"
      "\"adaptive_enabled\":%s,\"policy_keys\":%llu,"
      "\"policy_window_us\":%lld,\"policy_max_batch\":%llu,"
      "\"policy_bypass\":%s,\"policy_speedup\":%.4f,"
      "\"bypass_enters\":%llu,\"bypass_exits\":%llu,"
      "\"mixed_runs\":%llu,\"mixed_fallbacks\":%llu,"
      "\"policy_rows\":%s,"
      "\"latency_s\":%s,\"queue_wait_s\":%s,\"occupancy\":%s}\n",
      s.stats_version, static_cast<double>(s.uptime_ns) * 1e-9,
      static_cast<unsigned long long>(s.connections),
      static_cast<unsigned long long>(s.admitted),
      static_cast<unsigned long long>(s.served_ok),
      static_cast<unsigned long long>(s.rejected_full),
      static_cast<unsigned long long>(s.deadline_miss),
      static_cast<unsigned long long>(s.cancelled),
      static_cast<unsigned long long>(s.malformed),
      static_cast<unsigned long long>(s.errors),
      static_cast<unsigned long long>(s.shed_shutdown),
      static_cast<unsigned long long>(s.batches),
      static_cast<unsigned long long>(s.batched_requests),
      static_cast<unsigned long long>(s.models_built),
      static_cast<unsigned long long>(s.model_cache_hits),
      static_cast<unsigned long long>(s.model_cache_size),
      s.model_cache_hit_rate(),
      static_cast<unsigned long long>(s.queue_depth),
      static_cast<unsigned long long>(s.queue_high_water),
      static_cast<unsigned long long>(s.queue_capacity),
      static_cast<unsigned long long>(s.rejected_quota),
      static_cast<unsigned long long>(s.replicas),
      s.adaptive_enabled ? "true" : "false",
      static_cast<unsigned long long>(s.policy_keys),
      static_cast<long long>(s.policy_window_us),
      static_cast<unsigned long long>(s.policy_max_batch),
      s.policy_bypass ? "true" : "false", s.policy_speedup,
      static_cast<unsigned long long>(s.bypass_enters),
      static_cast<unsigned long long>(s.bypass_exits),
      static_cast<unsigned long long>(s.mixed_runs),
      static_cast<unsigned long long>(s.mixed_fallbacks),
      policy_rows_json(s).c_str(),
      win(s.latency_s).c_str(), win(s.queue_wait_s).c_str(),
      win(s.occupancy).c_str());
}

void print_dashboard(const std::string& endpoint,
                     const serve::StatsResponse& s, double req_per_s) {
  // Home + clear-to-end keeps the redraw flicker-free on a normal terminal.
  std::printf("\x1b[H\x1b[J");
  std::printf("fsi_top — %s   uptime %.1f s\n\n", endpoint.c_str(),
              static_cast<double>(s.uptime_ns) * 1e-9);
  std::printf("  rate         %.1f ok/s   queue %llu / %llu (high water "
              "%llu)\n",
              req_per_s, static_cast<unsigned long long>(s.queue_depth),
              static_cast<unsigned long long>(s.queue_capacity),
              static_cast<unsigned long long>(s.queue_high_water));
  std::printf("  lifetime     conn %llu  admitted %llu  ok %llu  "
              "retry-after %llu  deadline-miss %llu\n",
              static_cast<unsigned long long>(s.connections),
              static_cast<unsigned long long>(s.admitted),
              static_cast<unsigned long long>(s.served_ok),
              static_cast<unsigned long long>(s.rejected_full),
              static_cast<unsigned long long>(s.deadline_miss));
  std::printf("               cancelled %llu  malformed %llu  errors %llu  "
              "shed %llu\n",
              static_cast<unsigned long long>(s.cancelled),
              static_cast<unsigned long long>(s.malformed),
              static_cast<unsigned long long>(s.errors),
              static_cast<unsigned long long>(s.shed_shutdown));
  std::printf("  batching     %llu batches carrying %llu requests "
              "(lifetime mean %.2f/batch)\n",
              static_cast<unsigned long long>(s.batches),
              static_cast<unsigned long long>(s.batched_requests),
              s.batches > 0 ? static_cast<double>(s.batched_requests) /
                                  static_cast<double>(s.batches)
                            : 0.0);
  std::printf("  model cache  %llu built, %llu hits (%.0f%%), %llu "
              "resident\n",
              static_cast<unsigned long long>(s.models_built),
              static_cast<unsigned long long>(s.model_cache_hits),
              s.model_cache_hit_rate() * 100.0,
              static_cast<unsigned long long>(s.model_cache_size));
  // Adaptive-policy line (stats v3): the active key's live tuning state —
  // docs/tuning.md walks an operator through reading it.  Pre-v3 daemons
  // report replicas == 0; skip the line rather than print zeros.
  if (s.replicas > 0) {
    if (!s.adaptive_enabled) {
      std::printf("  policy       static (adaptive off)  replicas %llu  "
                  "over-quota %llu\n",
                  static_cast<unsigned long long>(s.replicas),
                  static_cast<unsigned long long>(s.rejected_quota));
    } else {
      std::printf("  policy       window %lld us  max-batch %llu  %s  "
                  "speedup %.2f  keys %llu\n",
                  static_cast<long long>(s.policy_window_us),
                  static_cast<unsigned long long>(s.policy_max_batch),
                  s.policy_bypass ? "BYPASS" : "coalesce",
                  s.policy_speedup,
                  static_cast<unsigned long long>(s.policy_keys));
      std::printf("               bypass enters %llu / exits %llu  "
                  "replicas %llu  over-quota %llu\n",
                  static_cast<unsigned long long>(s.bypass_enters),
                  static_cast<unsigned long long>(s.bypass_exits),
                  static_cast<unsigned long long>(s.replicas),
                  static_cast<unsigned long long>(s.rejected_quota));
    }
  }
  // Mixed-precision line (stats v4): attempts and health-gate fallbacks.
  if (s.stats_version >= 4 && s.mixed_runs > 0) {
    std::printf("  precision    mixed runs %llu  fp64 fallbacks %llu "
                "(%.1f%%)\n",
                static_cast<unsigned long long>(s.mixed_runs),
                static_cast<unsigned long long>(s.mixed_fallbacks),
                100.0 * static_cast<double>(s.mixed_fallbacks) /
                    static_cast<double>(s.mixed_runs));
  }
  // Per-key policy table (stats v4), most recently dispatched first.
  if (!s.policy_rows.empty()) {
    std::printf("\n  per-key policy (%zu tracked):\n", s.policy_rows.size());
    std::printf("    %-18s %10s %10s %9s %8s\n", "key", "window_us",
                "max_batch", "mode", "speedup");
    const std::size_t shown = std::min<std::size_t>(s.policy_rows.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) {
      const serve::PolicyKeyRow& r = s.policy_rows[i];
      std::printf("    %016llx %10lld %10llu %9s %8.2f\n",
                  static_cast<unsigned long long>(r.key_hash),
                  static_cast<long long>(r.window_us),
                  static_cast<unsigned long long>(r.max_batch),
                  r.bypass ? "BYPASS" : "coalesce", r.speedup);
    }
    if (shown < s.policy_rows.size())
      std::printf("    ... %zu more\n", s.policy_rows.size() - shown);
  }
  std::printf("\n  rolling window (last ~10 s):\n");
  print_window("latency", s.latency_s, 1e3, "ms");
  print_window("queue wait", s.queue_wait_s, 1e3, "ms");
  print_window("occupancy", s.occupancy, 1.0, "");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.has("version")) {
    std::fputs(obs::version_line("fsi_top").c_str(), stdout);
    return 0;
  }
  const std::string socket_spec =
      cli.get_string("socket", "unix:fsi_serve.sock");
  const bool json = cli.has("json");
  const int interval_ms = cli.get_int("interval-ms", 1000);
  const int count = cli.get_int("count", json ? 1 : 0);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  constexpr int kBackoffMinMs = 250;
  constexpr int kBackoffMaxMs = 5000;

  std::optional<serve::Client> client;
  std::uint64_t last_ok = 0;
  std::uint64_t last_uptime_ns = 0;
  int polls = 0;
  int backoff_ms = kBackoffMinMs;
  bool was_disconnected = false;

  while (g_stop_requested == 0) {
    try {
      if (!client.has_value())
        client.emplace(serve::Endpoint::parse(socket_spec));
      const serve::StatsResponse s = client->stats();
      backoff_ms = kBackoffMinMs;
      if (json) {
        print_json(s);
      } else {
        // Rate from the served_ok delta over the daemon's own clock, so a
        // slow poll doesn't inflate it.  A restarted daemon's uptime runs
        // backwards past ours — treat that as a fresh baseline.
        double req_per_s = 0.0;
        if (polls > 0 && !was_disconnected && s.uptime_ns > last_uptime_ns &&
            s.served_ok >= last_ok)
          req_per_s = static_cast<double>(s.served_ok - last_ok) /
                      (static_cast<double>(s.uptime_ns - last_uptime_ns) *
                       1e-9);
        print_dashboard(socket_spec, s, req_per_s);
        last_ok = s.served_ok;
        last_uptime_ns = s.uptime_ns;
      }
      was_disconnected = false;
      ++polls;
      if (count > 0 && polls >= count) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    } catch (const std::exception& e) {
      // The daemon is gone (restart, crash, not yet up).  A dashboard
      // outlives it: drop the connection, show the outage, retry with
      // bounded backoff.  --json keeps the legacy fail-fast contract.
      if (json) {
        std::fprintf(stderr, "fsi_top: %s\n", e.what());
        return 1;
      }
      client.reset();
      if (!was_disconnected) std::printf("\x1b[H\x1b[J");
      was_disconnected = true;
      std::printf("\x1b[Hfsi_top — %s   [disconnected: %s; retrying in "
                  "%d ms]\x1b[K\n",
                  socket_spec.c_str(), e.what(), backoff_ms);
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, kBackoffMaxMs);
    }
  }
  return 0;
}
