#!/usr/bin/env bash
# Smoke test of the fsi::serve daemon as CI (and operators) run it: boot
# fsi_serve on a Unix socket, drive it with concurrent fsi_request clients
# of mixed sizes — every response verified bit-identical against the
# in-process qmc::run_fsi_batch reference — plus one past-deadline request
# that must be shed with an explicit DeadlineMiss, then stop the daemon
# with SIGTERM and check it exits cleanly and writes its telemetry.
#
# Usage: tools/serve_smoke.sh [build-dir]   (default: build)

set -euo pipefail

build=${1:-build}
sock="unix:/tmp/fsi_serve_smoke_$$.sock"
artifacts=$(mktemp -d)
trap 'kill "$server_pid" 2>/dev/null || true; rm -rf "$artifacts"' EXIT

FSI_BENCH_DIR="$artifacts" "$build"/tools/fsi_serve \
    --socket "$sock" --queue 32 --window-us 20000 --max-batch 4 &
server_pid=$!

# Wait for the socket to appear (the daemon binds before serving).
for _ in $(seq 1 50); do
  [ -S "${sock#unix:}" ] && break
  sleep 0.1
done
[ -S "${sock#unix:}" ] || { echo "serve_smoke: daemon never bound $sock"; exit 1; }

# Concurrent clients, mixed sizes; --verify diffs every response against
# the in-process selected inversion (bit-identical or non-zero exit).
pids=()
"$build"/tools/fsi_request --socket "$sock" --lx 4 --L 8  --count 3 --seed 11 --verify & pids+=($!)
"$build"/tools/fsi_request --socket "$sock" --lx 6 --L 12 --count 2 --seed 23 --verify & pids+=($!)
"$build"/tools/fsi_request --socket "$sock" --lx 4 --L 8  --count 3 --seed 37 --verify & pids+=($!)
# One request with an already-expired deadline: must be rejected, not run.
"$build"/tools/fsi_request --socket "$sock" --lx 4 --L 8 \
    --deadline-us -1 --expect-status deadline-miss & pids+=($!)

fail=0
for pid in "${pids[@]}"; do
  wait "$pid" || fail=1
done
[ "$fail" -eq 0 ] || { echo "serve_smoke: a client failed"; exit 1; }

# One stats poll against the live daemon: the JSON must parse and show
# every verified request above as completed.
"$build"/tools/fsi_top --socket "$sock" --json | python3 -c '
import json, sys
stats = json.load(sys.stdin)
assert stats["served_ok"] >= 1, stats
assert stats["uptime_s"] > 0, stats
served, depth = stats["served_ok"], stats["queue_depth"]
print(f"serve_smoke: fsi_top sees {served} served, queue depth {depth}")
' || { echo "serve_smoke: fsi_top stats poll failed"; exit 1; }

# Graceful shutdown on SIGTERM; the daemon prints stats and writes
# BENCH_fsi_serve.json telemetry into $FSI_BENCH_DIR.
kill -TERM "$server_pid"
wait "$server_pid" || { echo "serve_smoke: daemon exited non-zero"; exit 1; }
test -s "$artifacts/BENCH_fsi_serve.json" \
    || { echo "serve_smoke: daemon telemetry missing"; exit 1; }

python3 - "$artifacts/BENCH_fsi_serve.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
metrics = {m["key"]: m["value"] for m in doc["metrics"]}
assert metrics["served_ok"] == 8, metrics
assert metrics["deadline_miss"] == 1, metrics
assert metrics["latency_p99_ms"] > 0, metrics
print(f"serve_smoke OK: {int(metrics['served_ok'])} served, "
      f"{int(metrics['deadline_miss'])} shed by deadline, "
      f"p99 {metrics['latency_p99_ms']:.2f} ms")
EOF
