#!/usr/bin/env bash
# Smoke test of the fsi::serve daemon as CI (and operators) run it: boot
# fsi_serve on a Unix socket, drive it with concurrent fsi_request clients
# of mixed sizes — every fp64 response verified bit-identical against the
# in-process qmc::run_fsi_batch reference, every --precision mixed response
# verified within the health gate's error budget — plus one past-deadline
# request that must be shed with an explicit DeadlineMiss, scrape the OpenMetrics
# endpoint and validate the exposition grammar, then stop the daemon with
# SIGTERM and check it exits cleanly and writes its telemetry.
#
# A second section boots a 2-replica fleet on one shared TCP port
# (SO_REUSEPORT), drives verified clients through the kernel's connection
# spreading, and checks the aggregated stats cover every request.
#
# Usage: tools/serve_smoke.sh [build-dir]   (default: build)

set -euo pipefail

build=${1:-build}
tools_dir=$(dirname "$0")
sock="unix:/tmp/fsi_serve_smoke_$$.sock"
artifacts=$(mktemp -d)
server_pid=""
fleet_pid=""
trap 'kill "$server_pid" "$fleet_pid" 2>/dev/null || true; rm -rf "$artifacts"' EXIT

# --metrics with TCP port 0: the kernel picks a free port and the daemon
# prints the resolved endpoint on its "metrics on" line.
FSI_BENCH_DIR="$artifacts" "$build"/tools/fsi_serve \
    --socket "$sock" --queue 32 --window-us 20000 --max-batch 4 \
    --metrics tcp:127.0.0.1:0 > "$artifacts/serve.log" 2>&1 &
server_pid=$!

# Wait for the socket to appear (the daemon binds before serving).
for _ in $(seq 1 50); do
  [ -S "${sock#unix:}" ] && break
  sleep 0.1
done
[ -S "${sock#unix:}" ] || { echo "serve_smoke: daemon never bound $sock"; cat "$artifacts/serve.log"; exit 1; }

# Concurrent clients, mixed sizes; --verify diffs every response against
# the in-process selected inversion (bit-identical or non-zero exit).
pids=()
"$build"/tools/fsi_request --socket "$sock" --lx 4 --L 8  --count 3 --seed 11 --verify & pids+=($!)
"$build"/tools/fsi_request --socket "$sock" --lx 6 --L 12 --count 2 --seed 23 --verify & pids+=($!)
"$build"/tools/fsi_request --socket "$sock" --lx 4 --L 8  --count 3 --seed 37 --verify & pids+=($!)
# Mixed-precision requests: verified against the fp64 reference within the
# gate's error budget (or bit-identical if the health gate fell back).
"$build"/tools/fsi_request --socket "$sock" --lx 4 --L 8  --count 2 --seed 41 \
    --precision mixed --verify --verify-tol 5e-3 & pids+=($!)
# One request with an already-expired deadline: must be rejected, not run.
"$build"/tools/fsi_request --socket "$sock" --lx 4 --L 8 \
    --deadline-us -1 --expect-status deadline-miss & pids+=($!)

fail=0
for pid in "${pids[@]}"; do
  wait "$pid" || fail=1
done
[ "$fail" -eq 0 ] || { echo "serve_smoke: a client failed"; exit 1; }

# One stats poll against the live daemon: the JSON must parse and show
# every verified request above as completed.
"$build"/tools/fsi_top --socket "$sock" --json | python3 -c '
import json, sys
stats = json.load(sys.stdin)
assert stats["served_ok"] >= 1, stats
assert stats["uptime_s"] > 0, stats
served, depth = stats["served_ok"], stats["queue_depth"]
print(f"serve_smoke: fsi_top sees {served} served, queue depth {depth}")
' || { echo "serve_smoke: fsi_top stats poll failed"; exit 1; }

# Scrape the OpenMetrics endpoint and validate the exposition: the port is
# on the daemon's "metrics on http://tcp:127.0.0.1:<port>/metrics" line.
metrics_port=$(sed -n 's|.*metrics on http://tcp:127\.0\.0\.1:\([0-9]*\)/metrics.*|\1|p' \
    "$artifacts/serve.log" | head -n1)
[ -n "$metrics_port" ] || { echo "serve_smoke: no metrics endpoint in daemon log"; cat "$artifacts/serve.log"; exit 1; }

python3 - "$metrics_port" > "$artifacts/metrics.txt" <<'EOF'
import sys, urllib.request
with urllib.request.urlopen(
        "http://127.0.0.1:%s/metrics" % sys.argv[1], timeout=10) as resp:
    assert resp.status == 200, resp.status
    ctype = resp.headers.get("Content-Type", "")
    assert ctype.startswith("application/openmetrics-text"), ctype
    sys.stdout.write(resp.read().decode("utf-8"))
EOF
python3 "$tools_dir"/check_openmetrics.py "$artifacts/metrics.txt" \
    --require fsi_build --require fsi_serve_requests \
    --require fsi_serve_latency_s --require fsi_mixed_runs \
    || { echo "serve_smoke: /metrics failed the grammar check"; exit 1; }

# The mixed clients above ran under this daemon: its mixed-run counter must
# have moved (fallbacks allowed — the gate decides — but runs must count).
python3 - "$artifacts/metrics.txt" <<'EOF'
import sys
runs = 0.0
for line in open(sys.argv[1]):
    if line.startswith("fsi_mixed_runs_total "):
        runs = float(line.split()[1])
assert runs >= 2, f"expected >= 2 mixed runs in /metrics, saw {runs}"
print(f"serve_smoke: /metrics shows {int(runs)} mixed-precision runs")
EOF

# Liveness probe answers while the daemon is up.
python3 - "$metrics_port" <<'EOF'
import sys, urllib.request
with urllib.request.urlopen(
        "http://127.0.0.1:%s/healthz" % sys.argv[1], timeout=10) as resp:
    assert resp.status == 200 and b"ok" in resp.read(), "healthz failed"
print("serve_smoke: /healthz ok")
EOF

# Graceful shutdown on SIGTERM; the daemon prints stats and writes
# BENCH_fsi_serve.json telemetry into $FSI_BENCH_DIR.
kill -TERM "$server_pid"
wait "$server_pid" || { echo "serve_smoke: daemon exited non-zero"; exit 1; }
test -s "$artifacts/BENCH_fsi_serve.json" \
    || { echo "serve_smoke: daemon telemetry missing"; exit 1; }

python3 - "$artifacts/BENCH_fsi_serve.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
metrics = {m["key"]: m["value"] for m in doc["metrics"]}
assert metrics["served_ok"] == 10, metrics
assert metrics["deadline_miss"] == 1, metrics
assert metrics["latency_p99_ms"] > 0, metrics
print(f"serve_smoke OK: {int(metrics['served_ok'])} served, "
      f"{int(metrics['deadline_miss'])} shed by deadline, "
      f"p99 {metrics['latency_p99_ms']:.2f} ms")
EOF

# ---------------------------------------------------------------------------
# 2-replica fleet on one shared TCP port (SO_REUSEPORT).  Port 0: replica 0
# resolves a free port, the sibling binds the same one, and the daemon
# prints the resolved endpoint on its "listening on" line.
fleet_art=$(mktemp -d)
FSI_BENCH_DIR="$fleet_art" "$build"/tools/fsi_serve \
    --socket tcp:127.0.0.1:0 --replicas 2 --queue 32 --window-us 5000 \
    --max-batch 4 > "$fleet_art/serve.log" 2>&1 &
fleet_pid=$!

fleet_sock=""
for _ in $(seq 1 50); do
  fleet_sock=$(sed -n 's|.*listening on \(tcp:[0-9.]*:[0-9]*\) .*|\1|p' \
      "$fleet_art/serve.log" | head -n1)
  [ -n "$fleet_sock" ] && break
  sleep 0.1
done
[ -n "$fleet_sock" ] || { echo "serve_smoke: fleet never announced its port"; cat "$fleet_art/serve.log"; exit 1; }

pids=()
"$build"/tools/fsi_request --socket "$fleet_sock" --lx 4 --L 8 --count 3 --seed 51 --verify & pids+=($!)
"$build"/tools/fsi_request --socket "$fleet_sock" --lx 6 --L 12 --count 2 --seed 67 --verify & pids+=($!)
"$build"/tools/fsi_request --socket "$fleet_sock" --lx 4 --L 8 --count 3 --seed 73 --verify & pids+=($!)
fail=0
for pid in "${pids[@]}"; do
  wait "$pid" || fail=1
done
[ "$fail" -eq 0 ] || { echo "serve_smoke: a fleet client failed"; cat "$fleet_art/serve.log"; exit 1; }

kill -TERM "$fleet_pid"
wait "$fleet_pid" || { echo "serve_smoke: fleet exited non-zero"; exit 1; }
fleet_pid=""

# Aggregated (cross-replica) telemetry must account for every request; the
# kernel decides the split, so only the total is asserted.
python3 - "$fleet_art/BENCH_fsi_serve.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
metrics = {m["key"]: m["value"] for m in doc["metrics"]}
assert metrics["served_ok"] == 8, metrics
print(f"serve_smoke OK: 2-replica fleet served {int(metrics['served_ok'])} "
      "verified requests on one SO_REUSEPORT port")
EOF
rm -rf "$fleet_art"
