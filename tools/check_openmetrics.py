#!/usr/bin/env python3
"""Validate an OpenMetrics text exposition read from a file or stdin.

Shell-pipeline twin of tests/openmetrics_checker.hpp — the serve smoke
script scrapes a live `GET /metrics` endpoint and pipes the body through
this script, so the same grammar the unit tests enforce is enforced
against a real daemon from outside the process. Checks:

  - every family is announced by `# HELP` then `# TYPE` before any of its
    samples, and families are contiguous (no interleaving);
  - the TYPE is one of counter | gauge | histogram | info;
  - counter samples end in `_total`, info samples in `_info`, gauge
    samples are bare;
  - histogram families expose `_bucket{le="..."}` series with strictly
    increasing `le` bounds ending at `+Inf`, cumulative (non-decreasing)
    bucket counts, and a `_sum`/`_count` pair where `_count` equals the
    `+Inf` bucket;
  - the document ends with exactly `# EOF\n`.

Usage:
  check_openmetrics.py [file]          # default: stdin
  check_openmetrics.py --require NAME  # additionally require family NAME
                                       # (repeatable)

Exit 0 and a one-line summary on success; exit 1 with the offending line
on the first violation. Standard library only.
"""

import argparse
import math
import sys

KNOWN_TYPES = ("counter", "gauge", "histogram", "info")


class CheckFailure(Exception):
    pass


def parse_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise CheckFailure("unparsable value: %r" % text)


def label_value(labels, key):
    needle = key + '="'
    at = labels.find(needle)
    if at < 0:
        return ""
    start = at + len(needle)
    end = labels.find('"', start)
    return labels[start:end] if end >= 0 else ""


def check(text):
    """Validate the document; returns {family: type}. Raises CheckFailure."""
    if not text or not text.endswith("\n"):
        raise CheckFailure("document must end with a newline")
    lines = text.split("\n")[:-1]
    if not lines or lines[-1] != "# EOF":
        raise CheckFailure("document must end with '# EOF'")
    lines = lines[:-1]

    families = {}
    values = {}
    buckets = {}
    closed = set()
    family = ""
    family_type = ""
    have_type = False
    have_sample = False

    def close_family():
        if not family:
            return
        if not have_type:
            raise CheckFailure("family without TYPE: " + family)
        if not have_sample:
            raise CheckFailure("family without samples: " + family)
        if family_type == "histogram":
            bs = buckets.get(family, [])
            if not bs:
                raise CheckFailure("histogram without buckets: " + family)
            if not math.isinf(bs[-1][0]):
                raise CheckFailure("histogram missing +Inf bucket: " + family)
            for i in range(1, len(bs)):
                if not bs[i][0] > bs[i - 1][0]:
                    raise CheckFailure("le bounds not increasing: " + family)
                if bs[i][1] < bs[i - 1][1]:
                    raise CheckFailure(
                        "bucket counts not cumulative: " + family)
            if family + "_sum" not in values or family + "_count" not in values:
                raise CheckFailure("histogram missing _sum/_count: " + family)
            if values[family + "_count"] != bs[-1][1]:
                raise CheckFailure("_count != +Inf bucket: " + family)
        closed.add(family)

    for line in lines:
        if not line:
            raise CheckFailure("empty line inside document")
        if line == "# EOF":
            raise CheckFailure("'# EOF' before end of document")
        if line.startswith("# HELP "):
            rest = line[7:]
            sp = rest.find(" ")
            if sp <= 0:
                raise CheckFailure("malformed HELP: " + line)
            name = rest[:sp]
            close_family()
            if name in closed:
                raise CheckFailure("family reopened (interleaved): " + name)
            family, have_type, have_sample = name, False, False
            continue
        if line.startswith("# TYPE "):
            rest = line[7:]
            sp = rest.find(" ")
            if sp < 0:
                raise CheckFailure("malformed TYPE: " + line)
            name, mtype = rest[:sp], rest[sp + 1:]
            if name != family:
                raise CheckFailure(
                    "TYPE for '%s' but open family is '%s'" % (name, family))
            if have_type:
                raise CheckFailure("duplicate TYPE: " + name)
            if have_sample:
                raise CheckFailure("TYPE after samples: " + name)
            if mtype not in KNOWN_TYPES:
                raise CheckFailure(
                    "unknown TYPE '%s' for %s" % (mtype, name))
            family_type, have_type = mtype, True
            families[family] = mtype
            continue
        if line[0] == "#":
            raise CheckFailure("unknown comment: " + line)

        # Sample line: <name>[{labels}] <value>
        if not family or not have_type:
            raise CheckFailure("sample outside a family: " + line)
        brace = line.find("{")
        space = line.find(" ")
        if space < 0 and brace < 0:
            raise CheckFailure("malformed sample: " + line)
        name_end = brace if 0 <= brace < (space if space >= 0 else len(line)) \
            else space
        sample = line[:name_end]
        labels = ""
        value_at = name_end
        if line[name_end] == "{":
            close = line.find("}", name_end)
            if close < 0:
                raise CheckFailure("unterminated labels: " + line)
            labels = line[name_end + 1:close]
            value_at = close + 1
        if value_at >= len(line) or line[value_at] != " ":
            raise CheckFailure("missing value: " + line)
        try:
            value = parse_value(line[value_at + 1:])
        except CheckFailure:
            raise CheckFailure("unparsable value: " + line)

        suffix = sample[len(family):] if sample.startswith(family) else "?"
        ok = ((family_type == "counter" and suffix == "_total") or
              (family_type == "gauge" and suffix == "") or
              (family_type == "info" and suffix == "_info") or
              (family_type == "histogram" and
               suffix in ("_bucket", "_sum", "_count")))
        if not ok:
            raise CheckFailure("sample '%s' invalid for %s family %s"
                               % (sample, family_type, family))
        if family_type == "histogram" and suffix == "_bucket":
            le = label_value(labels, "le")
            if not le:
                raise CheckFailure("bucket without le label: " + line)
            bound = math.inf if le == "+Inf" else float(le)
            buckets.setdefault(family, []).append((bound, value))
        have_sample = True
        if not labels:
            values[sample] = value

    close_family()
    return families


def main():
    ap = argparse.ArgumentParser(
        description="Validate an OpenMetrics text exposition.")
    ap.add_argument("file", nargs="?", default="-",
                    help="exposition file (default: stdin)")
    ap.add_argument("--require", action="append", default=[],
                    metavar="FAMILY",
                    help="require this metric family to be present "
                         "(repeatable)")
    args = ap.parse_args()

    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file, "r", encoding="utf-8") as f:
            text = f.read()

    try:
        families = check(text)
    except CheckFailure as e:
        print("check_openmetrics: FAIL: %s" % e, file=sys.stderr)
        return 1

    missing = [name for name in args.require if name not in families]
    if missing:
        print("check_openmetrics: FAIL: required families missing: %s"
              % ", ".join(missing), file=sys.stderr)
        return 1

    print("check_openmetrics: OK (%d families, %d lines)"
          % (len(families), text.count("\n")))
    return 0


if __name__ == "__main__":
    sys.exit(main())
