/// \file fsi_serve.cpp
/// \brief The inversion daemon: bind a socket, serve batched selected
/// inversions until SIGINT/SIGTERM, then print statistics and write the
/// telemetry artifacts.
///
/// Usage:
///   fsi_serve --socket unix:/tmp/fsi.sock [--queue 64] [--window-us 2000]
///             [--max-batch 8] [--retry-after-ms 50] [--deadline-ms 0]
///             [--workers 0] [--trace] [--log access.jsonl]
///             [--metrics tcp:127.0.0.1:9464] [--replicas 1] [--quota 0]
///             [--no-adaptive] [--version]
///
/// Every flag has an FSI_SERVE_* environment equivalent (the flag wins);
/// see docs/serving.md and the env-var table in docs/parallelism.md.
/// --metrics (FSI_SERVE_METRICS) opens an HTTP scrape endpoint answering
/// GET /metrics in OpenMetrics format and GET /healthz.
///
/// --replicas N runs N Server instances in this process sharing one TCP
/// port via SO_REUSEPORT (requires a tcp: endpoint when N > 1): the kernel
/// spreads incoming connections across the replicas' accept loops, and
/// each replica batches its own admission queue independently — see
/// docs/tuning.md for when that beats a single queue.  --quota caps the
/// queue slots one connection may hold (per replica); --no-adaptive pins
/// the batching policy to the static --window-us/--max-batch knobs.

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fsi/obs/build.hpp"
#include "fsi/obs/flight.hpp"
#include "fsi/obs/log.hpp"
#include "fsi/obs/metrics.hpp"
#include "fsi/obs/telemetry.hpp"
#include "fsi/obs/trace.hpp"
#include "fsi/serve/metrics_http.hpp"
#include "fsi/serve/server.hpp"
#include "fsi/util/cli.hpp"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void handle_signal(int) { g_stop_requested = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace fsi;
  const util::Cli cli(argc, argv);
  if (cli.has("version")) {
    std::fputs(obs::version_line("fsi_serve").c_str(), stdout);
    return 0;
  }
  obs::flight::install_crash_handlers();

  serve::ServerOptions options = serve::ServerOptions::from_env();
  const std::string socket_spec =
      cli.get_string("socket", options.endpoint.describe());
  options.endpoint = serve::Endpoint::parse(socket_spec);
  options.queue_depth = static_cast<std::size_t>(
      cli.get_int("queue", static_cast<int>(options.queue_depth)));
  options.batch_window_us =
      cli.get_int("window-us", static_cast<int>(options.batch_window_us));
  options.max_batch = static_cast<std::size_t>(
      cli.get_int("max-batch", static_cast<int>(options.max_batch)));
  options.retry_after_ms = static_cast<std::uint32_t>(
      cli.get_int("retry-after-ms", static_cast<int>(options.retry_after_ms)));
  options.default_deadline_ms = cli.get_int(
      "deadline-ms", static_cast<int>(options.default_deadline_ms));
  options.batch.num_workers =
      cli.get_int("workers", options.batch.num_workers);
  options.access_log = cli.get_string("log", options.access_log);
  options.metrics_endpoint =
      cli.get_string("metrics", options.metrics_endpoint);
  options.replicas = static_cast<std::size_t>(
      cli.get_int("replicas", static_cast<int>(options.replicas)));
  options.client_quota = static_cast<std::size_t>(
      cli.get_int("quota", static_cast<int>(options.client_quota)));
  if (cli.has("adaptive")) options.adaptive.enabled = true;
  if (cli.has("no-adaptive")) options.adaptive.enabled = false;
  if (cli.has("trace")) obs::set_enabled(true);

  const std::size_t queue_depth = options.queue_depth;
  const std::int64_t window_us = options.batch_window_us;
  const std::size_t max_batch = options.max_batch;
  const std::string metrics_spec = options.metrics_endpoint;
  const std::size_t replicas = std::max<std::size_t>(1, options.replicas);
  options.replicas = replicas;
  if (replicas > 1) {
    if (options.endpoint.is_unix) {
      FSI_LOG_ERROR("serve.fatal",
                    {"reason", "--replicas > 1 requires a tcp: endpoint"});
      return 1;
    }
    options.reuse_port = true;
  }

  // Replica 0 binds first (resolving port 0 if asked); the siblings then
  // bind the *resolved* endpoint so all replicas share one port.
  std::vector<std::unique_ptr<serve::Server>> servers;
  servers.push_back(std::make_unique<serve::Server>(options));
  serve::Server& server = *servers.front();
  try {
    server.start();
    options.endpoint = server.endpoint();
    for (std::size_t r = 1; r < replicas; ++r) {
      servers.push_back(std::make_unique<serve::Server>(options));
      servers.back()->start();
    }
  } catch (const std::exception& e) {
    FSI_LOG_ERROR("serve.fatal", {"reason", e.what()});
    return 1;
  }

  std::unique_ptr<serve::MetricsExporter> metrics_http;
  if (!metrics_spec.empty()) {
    try {
      metrics_http = std::make_unique<serve::MetricsExporter>(
          serve::Endpoint::parse(metrics_spec));
      metrics_http->start();
      std::printf("fsi_serve: metrics on http://%s/metrics\n",
                  metrics_http->endpoint().describe().c_str());
    } catch (const std::exception& e) {
      FSI_LOG_ERROR("serve.fatal",
                    {"reason", std::string("metrics endpoint: ") + e.what()});
      return 1;
    }
  }
  std::printf("fsi_serve: listening on %s (queue %zu, window %lld us, "
              "max batch %zu, replicas %zu)\n",
              server.endpoint().describe().c_str(), queue_depth,
              static_cast<long long>(window_us), max_batch, replicas);
  std::fflush(stdout);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (g_stop_requested == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  if (metrics_http != nullptr) metrics_http->stop();
  for (auto& s : servers) s->stop();

  // Aggregate counters across replicas (one queue + batcher each).
  serve::ServerStats stats;
  for (const auto& s : servers) {
    const serve::ServerStats r = s->stats();
    stats.connections += r.connections;
    stats.admitted += r.admitted;
    stats.served_ok += r.served_ok;
    stats.rejected_full += r.rejected_full;
    stats.rejected_quota += r.rejected_quota;
    stats.deadline_miss += r.deadline_miss;
    stats.cancelled += r.cancelled;
    stats.malformed += r.malformed;
    stats.errors += r.errors;
    stats.shed_shutdown += r.shed_shutdown;
    stats.batches += r.batches;
    stats.batched_requests += r.batched_requests;
    stats.models_built += r.models_built;
    stats.model_cache_hits += r.model_cache_hits;
    stats.model_cache_size += r.model_cache_size;
    stats.queue_high_water = std::max(stats.queue_high_water,
                                      r.queue_high_water);
  }
  std::printf(
      "fsi_serve: %llu connections, %llu admitted, %llu ok, %llu retry-after "
      "(%llu over-quota), %llu deadline-miss, %llu cancelled, %llu malformed, "
      "%llu errors\n",
      static_cast<unsigned long long>(stats.connections),
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.served_ok),
      static_cast<unsigned long long>(stats.rejected_full),
      static_cast<unsigned long long>(stats.rejected_quota),
      static_cast<unsigned long long>(stats.deadline_miss),
      static_cast<unsigned long long>(stats.cancelled),
      static_cast<unsigned long long>(stats.malformed),
      static_cast<unsigned long long>(stats.errors));
  std::printf("fsi_serve: %llu batches, mean occupancy %.2f, queue high water "
              "%zu, latency p50/p95/p99 = %.3f/%.3f/%.3f ms\n",
              static_cast<unsigned long long>(stats.batches),
              stats.batch_occupancy_mean(), stats.queue_high_water,
              server.latency_quantile(0.50) * 1e3,
              server.latency_quantile(0.95) * 1e3,
              server.latency_quantile(0.99) * 1e3);

  // Telemetry artifact: the serve histograms (latency, queue wait, batch
  // occupancy) land in the "hists" section; the explicit percentiles are
  // exported as metrics.  Both under obs::artifact_dir().
  obs::BenchTelemetry telemetry("fsi_serve");
  telemetry.add_info("endpoint", server.endpoint().describe());
  telemetry.add_metric("served_ok", static_cast<double>(stats.served_ok),
                       "requests");
  telemetry.add_metric("rejected_full",
                       static_cast<double>(stats.rejected_full), "requests",
                       false, false);
  telemetry.add_metric("deadline_miss",
                       static_cast<double>(stats.deadline_miss), "requests",
                       false, false);
  telemetry.add_metric("latency_p50_ms", server.latency_quantile(0.50) * 1e3,
                       "ms", false, false);
  telemetry.add_metric("latency_p95_ms", server.latency_quantile(0.95) * 1e3,
                       "ms", false, false);
  telemetry.add_metric("latency_p99_ms", server.latency_quantile(0.99) * 1e3,
                       "ms", false, false);
  telemetry.add_metric("batch_occupancy_mean", stats.batch_occupancy_mean(),
                       "requests");
  const std::string telemetry_path = telemetry.write();
  if (!telemetry_path.empty())
    std::printf("fsi_serve: telemetry written to %s\n", telemetry_path.c_str());
  const std::string trace_path = obs::write_trace_if_enabled("fsi_serve");
  if (!trace_path.empty())
    std::printf("fsi_serve: trace written to %s\n", trace_path.c_str());
  return 0;
}
