/// \file fsi_crash_helper.cpp
/// \brief Deliberately-crashing helper exercising the crash flight recorder
/// end to end: record spans, bump counters, then die by the requested
/// signal.  The flight-recorder test (and the CI post-mortem flow) runs it,
/// waits for the signal exit, and parses the crash-<pid>.fsi.json dump the
/// handler wrote.
///
/// Usage:
///   fsi_crash_helper [--signal segv|abrt|fpe|none] [--spans 64] [--dump X]
///                    [--version]
///
/// --signal none records and exits 0 without crashing (the control case:
/// no dump may appear).  --dump overrides the dump path directly via
/// flight::write_dump — used to test the writer without taking a fault.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "fsi/obs/build.hpp"
#include "fsi/obs/flight.hpp"
#include "fsi/obs/metrics.hpp"
#include "fsi/obs/trace.hpp"
#include "fsi/util/cli.hpp"

namespace {

// The null pointer lives in a volatile global so the optimizer cannot prove
// the store traps and quietly delete it (a deleted store means no SIGSEGV
// and a very confusing test failure).
volatile int* g_null = nullptr;
volatile int g_zero = 0;

}  // namespace

int main(int argc, char** argv) {
  using namespace fsi;
  const util::Cli cli(argc, argv);
  if (cli.has("version")) {
    std::fputs(obs::version_line("fsi_crash_helper").c_str(), stdout);
    return 0;
  }
  obs::flight::install_crash_handlers();

  const std::string sig = cli.get_string("signal", "segv");
  const int spans = cli.get_int("spans", 64);
  const std::string dump_to = cli.get_string("dump", "");

  // Leave recognisable breadcrumbs for the post-mortem: a few named spans
  // per "phase" plus counter traffic, so the dump has both rings and a
  // non-trivial counter section.
  for (int i = 0; i < spans; ++i) {
    FSI_OBS_SPAN(i % 2 == 0 ? "helper.compute" : "helper.io");
    obs::metrics::add(obs::metrics::Counter::KernelCalls, 1);
  }
  {
    const std::int64_t t = obs::now_ns();
    obs::flight::record("helper.final_span", t, 1000, 0xfeedbeef, 0);
  }
  std::printf("fsi_crash_helper: %llu spans recorded, dump path %s\n",
              static_cast<unsigned long long>(obs::flight::recorded()),
              obs::flight::crash_dump_path());
  std::fflush(stdout);

  if (!dump_to.empty()) {
    // Direct writer test: no fault, just the dump.
    const bool ok = obs::flight::write_dump("TEST", dump_to.c_str());
    std::printf("fsi_crash_helper: write_dump -> %s\n", ok ? "ok" : "FAILED");
    return ok ? 0 : 1;
  }

  if (sig == "none") return 0;
  if (sig == "abrt") std::abort();
  if (sig == "fpe") {
    std::raise(SIGFPE);  // portable: integer division traps are ISA-specific
    return 1;
  }
  *g_null = g_zero;  // segv (default)
  return 1;          // unreachable
}
