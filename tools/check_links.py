#!/usr/bin/env python3
"""Check intra-repo markdown links.

Usage: check_links.py [FILE_OR_DIR ...]

Scans the given markdown files (directories are searched recursively for
*.md) for inline links and validates every relative target against the
filesystem. External links (http/https/mailto) and pure in-page anchors
(#...) are skipped; anchors on relative targets are stripped before the
existence check. Exits 1 listing every dead link.

CI runs this over README.md and docs/ so that file moves and renames cannot
leave dead cross-references behind.
"""

import re
import sys
from pathlib import Path

# Inline markdown links: [text](target). Images share the syntax.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def collect_files(args: list[str]) -> list[Path]:
    files: list[Path] = []
    for arg in args:
        p = Path(arg)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.md")))
        else:
            files.append(p)
    return files


def check_file(path: Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            errors.append(f"{path}:{line}: dead link -> {target}")
    return errors


def main() -> int:
    args = sys.argv[1:] or ["README.md", "docs"]
    files = collect_files(args)
    if not files:
        print("check_links: no markdown files found", file=sys.stderr)
        return 1
    errors = []
    for f in files:
        errors.extend(check_file(f))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"check_links: {len(files)} files, "
          f"{len(errors)} dead links" + (" — FAIL" if errors else " — OK"))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
