/// \file fsi_request.cpp
/// \brief CLI client for the fsi_serve daemon: submit inversion requests,
/// optionally verify the responses bit-for-bit against an in-process
/// selinv::fsi run of the same fields.
///
/// Usage:
///   fsi_request --socket unix:/tmp/fsi.sock [--lx 4 --ly 1 --L 8 --c 0]
///               [--t 1 --u 2 --beta 1] [--count 4] [--seed 7]
///               [--deadline-us 0] [--equal-time-only]
///               [--precision fp64|mixed] [--verify] [--verify-tol 1e-3]
///               [--expect-status ok] [--trace]
///
/// --count N pipelines N requests over one connection (fields seeded
/// seed, seed+1, ...), so concurrent fsi_request processes exercise the
/// server's batch coalescing.  --verify recomputes every inversion
/// in-process through qmc::run_fsi_batch — always at fp64 — and fails
/// unless the serve-path measurements match bit-for-bit (fp64 requests)
/// or element-wise within --verify-tol relative error (--precision mixed:
/// the fp32 CLS+WRP stages are not bit-reproducible against fp64, the
/// health gate only bounds their error).  --expect-status makes a
/// rejection the *expected* outcome (e.g. --deadline-us -1
/// --expect-status deadline-miss in the CI smoke test).  --trace enables
/// obs tracing: every request gets a trace_id, the server's v2 timing
/// breakdown is printed per response, and a chrome://tracing artifact
/// with the stitched client+server spans is written at exit.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fsi/obs/build.hpp"
#include "fsi/obs/trace.hpp"
#include "fsi/qmc/multi_gf.hpp"
#include "fsi/serve/client.hpp"
#include "fsi/util/cli.hpp"

namespace {

using namespace fsi;

/// In-process reference: the same field and wrap offset through the same
/// batch engine the server uses, pinned to fp64.  For fp64 requests
/// bit-identity holds regardless of the server-side batch composition
/// because each task's sub-graph and its measurement accumulation are
/// independent and deterministic; for mixed requests this is the accuracy
/// baseline the response is compared against within tolerance.
std::vector<double> reference_measurements(const serve::InvertRequest& req) {
  const qmc::Lattice lat =
      req.ly == 1 ? qmc::Lattice::chain(static_cast<qmc::index_t>(req.lx))
                  : qmc::Lattice::rectangle(static_cast<qmc::index_t>(req.lx),
                                            static_cast<qmc::index_t>(req.ly));
  qmc::HubbardParams params;
  params.t = req.t;
  params.u = req.u;
  params.beta = req.beta;
  params.l = static_cast<qmc::index_t>(req.l);
  const qmc::HubbardModel model(lat, params);

  const qmc::index_t c = serve::effective_cluster(req);
  std::vector<qmc::FsiBatchTask> tasks;
  tasks.push_back(qmc::FsiBatchTask{
      qmc::HsField::deserialize(static_cast<qmc::index_t>(req.l),
                                model.num_sites(), req.field.data(),
                                req.field.size()),
      serve::resolve_q(req, c), req.time_dependent});
  qmc::FsiBatchOptions opts;
  opts.cluster_size = c;
  opts.precision = Precision::Fp64;
  return qmc::run_fsi_batch(model, tasks, opts).front().serialize();
}

/// Element-wise |got - ref| <= tol * (1 + |ref|) — the mixed-precision
/// acceptance check (absolute near zero, relative for O(1) observables).
bool within_tolerance(const std::vector<double>& got,
                      const std::vector<double>& ref, double tol) {
  if (got.size() != ref.size()) return false;
  for (std::size_t i = 0; i < got.size(); ++i)
    if (!(std::abs(got[i] - ref[i]) <= tol * (1.0 + std::abs(ref[i]))))
      return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.has("version")) {
    std::fputs(obs::version_line("fsi_request").c_str(), stdout);
    return 0;
  }

  const std::string socket_spec =
      cli.get_string("socket", "unix:fsi_serve.sock");
  const int count = cli.get_int("count", 1);
  const std::string expect =
      cli.get_string("expect-status", "ok");
  const bool verify = cli.has("verify");
  const bool trace = cli.has("trace");
  if (trace) obs::set_enabled(true);

  serve::InvertRequest base;
  base.lx = static_cast<std::uint32_t>(cli.get_int("lx", 4));
  base.ly = static_cast<std::uint32_t>(cli.get_int("ly", 1));
  base.l = static_cast<std::uint32_t>(cli.get_int("L", 8));
  base.c = static_cast<std::uint32_t>(cli.get_int("c", 0));
  base.q = cli.get_int("q", -1);
  base.t = cli.get_double("t", 1.0);
  base.u = cli.get_double("u", 2.0);
  base.beta = cli.get_double("beta", 1.0);
  base.deadline_us = cli.get_int("deadline-us", 0);
  base.time_dependent = !cli.has("equal-time-only");
  const std::string precision_text = cli.get_string("precision", "fp64");
  Precision precision = Precision::Fp64;
  if (!parse_precision(precision_text, precision)) {
    std::fprintf(stderr, "fsi_request: unknown --precision '%s' "
                 "(fp64 or mixed)\n", precision_text.c_str());
    return 1;
  }
  base.precision = static_cast<std::uint32_t>(precision);
  const double verify_tol = cli.get_double("verify-tol", 1e-3);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 7));

  int failures = 0;
  try {
    serve::Client client(serve::Endpoint::parse(socket_spec));

    // Pipeline all requests before collecting, so the server can coalesce.
    std::vector<serve::InvertRequest> requests;
    std::vector<std::future<serve::InvertResponse>> futures;
    for (int i = 0; i < count; ++i) {
      serve::InvertRequest req = base;
      req.seed = seed + static_cast<std::uint64_t>(i);
      req.field = serve::random_field(req.lx, req.ly, req.l, req.seed);
      futures.push_back(client.submit(req));
      requests.push_back(std::move(req));
    }

    for (int i = 0; i < count; ++i) {
      const serve::InvertResponse resp = futures[static_cast<std::size_t>(i)].get();
      const std::string got = serve::status_name(resp.status);
      if (got != expect) {
        std::fprintf(stderr,
                     "fsi_request: request %d: status %s (expected %s)%s%s\n",
                     i, got.c_str(), expect.c_str(),
                     resp.message.empty() ? "" : ": ",
                     resp.message.c_str());
        ++failures;
        continue;
      }
      if (resp.status == serve::Status::Ok) {
        std::printf("fsi_request: request %d ok: batch %u, queue wait %llu us, "
                    "execute %llu us, %zu measurement doubles\n",
                    i, resp.batch_size,
                    static_cast<unsigned long long>(resp.queue_wait_us),
                    static_cast<unsigned long long>(resp.execute_us),
                    resp.measurements.size());
        // v2 servers break the server-side journey down to nanoseconds; a
        // v1 server leaves these at zero and the line is skipped.
        if (resp.queue_wait_ns + resp.batch_wait_ns + resp.exec_ns > 0) {
          std::printf(
              "fsi_request: request %d breakdown: trace %llx, queue "
              "%.3f ms, batch wait %.3f ms, exec %.3f ms, occupancy %.2f\n",
              i, static_cast<unsigned long long>(resp.trace_id),
              static_cast<double>(resp.queue_wait_ns) * 1e-6,
              static_cast<double>(resp.batch_wait_ns) * 1e-6,
              static_cast<double>(resp.exec_ns) * 1e-6,
              resp.batch_occupancy);
        }
        if (precision == Precision::Mixed) {
          std::printf("fsi_request: request %d precision: %s%s\n", i,
                      resp.precision_used ==
                              static_cast<std::uint32_t>(Precision::Mixed)
                          ? "mixed"
                          : "fp64",
                      resp.mixed_fallback ? " (batch had fp64 fallback)" : "");
        }
        if (verify) {
          const std::vector<double> expected =
              reference_measurements(requests[static_cast<std::size_t>(i)]);
          if (precision == Precision::Mixed) {
            // Mixed results are health-gated, not bit-reproducible: accept
            // within tolerance of the fp64 reference.
            if (!within_tolerance(resp.measurements, expected, verify_tol)) {
              std::fprintf(stderr,
                           "fsi_request: request %d: mixed measurements "
                           "outside %.1e tolerance of fp64 reference\n",
                           i, verify_tol);
              ++failures;
            } else {
              std::printf("fsi_request: request %d verified within %.1e of "
                          "fp64 in-process selected inversion\n",
                          i, verify_tol);
            }
          } else {
            const bool same =
                expected.size() == resp.measurements.size() &&
                std::memcmp(expected.data(), resp.measurements.data(),
                            expected.size() * sizeof(double)) == 0;
            if (!same) {
              std::fprintf(stderr,
                           "fsi_request: request %d: serve-path measurements "
                           "differ from the in-process reference\n", i);
              ++failures;
            } else {
              std::printf("fsi_request: request %d verified bit-identical to "
                          "in-process selected inversion\n", i);
            }
          }
        }
      } else {
        std::printf("fsi_request: request %d: %s as expected%s%s\n", i,
                    got.c_str(), resp.message.empty() ? "" : ": ",
                    resp.message.c_str());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fsi_request: %s\n", e.what());
    return 1;
  }
  const std::string trace_path = obs::write_trace_if_enabled("fsi_request");
  if (!trace_path.empty())
    std::printf("fsi_request: trace written to %s\n", trace_path.c_str());
  return failures == 0 ? 0 : 1;
}
