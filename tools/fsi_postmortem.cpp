/// \file fsi_postmortem.cpp
/// \brief Render a flight-recorder crash dump (crash-<pid>.fsi.json) as a
/// human-readable post-mortem and, optionally, a chrome://tracing timeline.
///
/// Usage:
///   fsi_postmortem crash-1234.fsi.json [--trace out.trace.json]
///                  [--records 20] [--version]
///
/// The dump is what the async-signal-safe crash handler in obs::flight
/// managed to write between the fault and the re-raise: signal name, build
/// provenance, a counter snapshot, and the last ~1024 completed spans per
/// thread.  This tool answers the first three post-mortem questions without
/// a debugger: *which binary* crashed (build section), *what was it doing*
/// (the most recent spans, newest first), and *how much had it done*
/// (counters).  --trace re-emits every ring record as chrome://tracing
/// complete events — load the file in a trace viewer to see the final
/// milliseconds across all threads on a common timeline.
///
/// Exit status: 0 on a well-formed dump, 1 on a missing/invalid file.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "fsi/obs/build.hpp"
#include "fsi/util/cli.hpp"

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value parser.  The dump grammar is tiny (objects, arrays,
// strings, integers) but this accepts full JSON so a hand-edited or
// truncated-then-repaired dump still loads.  Kept local to the tool: the
// library deliberately has no JSON *input* dependency.

struct Json {
  enum class Kind { Null, Bool, Num, Str, Arr, Obj };
  Kind kind = Kind::Null;
  bool b = false;
  double num = 0.0;
  std::string raw;  ///< number literal as written (exact u64 round-trip)
  std::string str;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;

  const Json* find(const char* key) const {
    if (kind != Kind::Obj) return nullptr;
    for (const auto& [k, v] : obj)
      if (k == key) return &v;
    return nullptr;
  }
  std::string str_or(const char* key, const char* fallback) const {
    const Json* v = find(key);
    return (v != nullptr && v->kind == Kind::Str) ? v->str : fallback;
  }
  double num_or(const char* key, double fallback) const {
    const Json* v = find(key);
    return (v != nullptr && v->kind == Kind::Num) ? v->num : fallback;
  }
  std::uint64_t u64_or(const char* key, std::uint64_t fallback) const {
    const Json* v = find(key);
    if (v == nullptr || v->kind != Kind::Num) return fallback;
    return std::strtoull(v->raw.c_str(), nullptr, 10);
  }
  std::int64_t i64_or(const char* key, std::int64_t fallback) const {
    const Json* v = find(key);
    if (v == nullptr || v->kind != Kind::Num) return fallback;
    return std::strtoll(v->raw.c_str(), nullptr, 10);
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : s_(std::move(text)) {}

  bool parse(Json* out) {
    pos_ = 0;
    if (!value(out)) return false;
    ws();
    return pos_ == s_.size();
  }

 private:
  void ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool lit(const char* t, Json* out, Json::Kind k, bool bval) {
    const std::size_t n = std::strlen(t);
    if (s_.compare(pos_, n, t) != 0) return false;
    pos_ += n;
    out->kind = k;
    out->b = bval;
    return true;
  }
  bool string(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) return false;
            pos_ += 4;
            c = '?';  // non-ASCII escapes are display-only here
            break;
          default: c = e; break;
        }
      }
      *out += c;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool number(Json* out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    bool digits = false;
    auto eat = [&] {
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat();
    if (pos_ < s_.size() && s_[pos_] == '.') ++pos_, eat();
    if (!digits) return false;
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      const std::size_t before = pos_;
      eat();
      if (pos_ == before) return false;
    }
    out->kind = Json::Kind::Num;
    out->raw = s_.substr(start, pos_ - start);
    out->num = std::strtod(out->raw.c_str(), nullptr);
    return true;
  }
  bool value(Json* out) {
    ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = Json::Kind::Obj;
      ws();
      if (pos_ < s_.size() && s_[pos_] == '}') return ++pos_, true;
      while (true) {
        ws();
        std::string key;
        if (!string(&key)) return false;
        ws();
        if (pos_ >= s_.size() || s_[pos_++] != ':') return false;
        Json v;
        if (!value(&v)) return false;
        out->obj.emplace_back(std::move(key), std::move(v));
        ws();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        return s_[pos_++] == '}';
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = Json::Kind::Arr;
      ws();
      if (pos_ < s_.size() && s_[pos_] == ']') return ++pos_, true;
      while (true) {
        Json v;
        if (!value(&v)) return false;
        out->arr.push_back(std::move(v));
        ws();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        return s_[pos_++] == ']';
      }
    }
    if (c == '"') {
      out->kind = Json::Kind::Str;
      return string(&out->str);
    }
    if (c == 't') return lit("true", out, Json::Kind::Bool, true);
    if (c == 'f') return lit("false", out, Json::Kind::Bool, false);
    if (c == 'n') return lit("null", out, Json::Kind::Null, false);
    return number(out);
  }

  std::string s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

struct FlatSpan {
  std::int64_t tid;
  std::string name;
  std::int64_t t0_ns;
  std::int64_t dur_ns;
  std::uint64_t trace_id;
  std::int64_t omp_tid;
};

std::string read_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return "";
  std::string out;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

void json_escape(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

/// Re-emit the ring records as chrome://tracing complete events, same shape
/// as obs::chrome_trace_json() so the two artifacts look alike in a viewer.
bool write_chrome_trace(const std::string& path,
                        const std::vector<FlatSpan>& spans,
                        std::int64_t pid) {
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const FlatSpan& s : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    json_escape(out, s.name);
    std::snprintf(buf, sizeof buf,
                  "\",\"cat\":\"fsi\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                  "\"pid\":%lld,\"tid\":%lld,\"args\":{\"omp_tid\":%lld",
                  static_cast<double>(s.t0_ns) * 1e-3,
                  static_cast<double>(s.dur_ns) * 1e-3,
                  static_cast<long long>(pid), static_cast<long long>(s.tid),
                  static_cast<long long>(s.omp_tid));
    out += buf;
    if (s.trace_id != 0) {
      std::snprintf(buf, sizeof buf, ",\"trace_id\":%llu",
                    static_cast<unsigned long long>(s.trace_id));
      out += buf;
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsi;
  const util::Cli cli(argc, argv);
  if (cli.has("version")) {
    std::fputs(obs::version_line("fsi_postmortem").c_str(), stdout);
    return 0;
  }

  // The dump path is the one positional argument (or --dump for scripts).
  // Cli flags are "--name value" pairs, so a flag's value token must not be
  // mistaken for the positional.
  std::string path = cli.get_string("dump", "");
  if (path.empty()) {
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (a[0] == '-') {
        if (std::strchr(a, '=') == nullptr && i + 1 < argc &&
            argv[i + 1][0] != '-')
          ++i;  // skip "--flag value"
        continue;
      }
      path = a;
      break;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: fsi_postmortem <crash-PID.fsi.json> "
                 "[--trace out.trace.json] [--records N]\n");
    return 1;
  }
  const std::string trace_out = cli.get_string("trace", "");
  const int show = std::max(1, cli.get_int("records", 20));

  const std::string text = read_file(path.c_str());
  if (text.empty()) {
    std::fprintf(stderr, "fsi_postmortem: cannot read %s\n", path.c_str());
    return 1;
  }
  Json doc;
  if (!JsonParser(text).parse(&doc) || doc.kind != Json::Kind::Obj ||
      doc.find("fsi_crash_dump") == nullptr) {
    std::fprintf(stderr, "fsi_postmortem: %s is not an fsi crash dump\n",
                 path.c_str());
    return 1;
  }

  const std::string sig = doc.str_or("signal", "?");
  const std::int64_t pid = doc.i64_or("pid", 0);
  const double uptime_s = static_cast<double>(doc.i64_or("uptime_ns", 0)) * 1e-9;
  std::printf("crash dump    %s\n", path.c_str());
  std::printf("signal        %s   (pid %lld, uptime %.3f s)\n", sig.c_str(),
              static_cast<long long>(pid), uptime_s);

  if (const Json* b = doc.find("build")) {
    std::printf("build         %s (%s) [%s]\n",
                b->str_or("version", "?").c_str(),
                b->str_or("git_sha", "?").c_str(),
                b->str_or("build_type", "?").c_str());
    std::printf("compiler      %s\n", b->str_or("compiler", "?").c_str());
    std::printf("cxx_flags     %s\n", b->str_or("cxx_flags", "?").c_str());
  }

  if (const Json* c = doc.find("counters")) {
    std::vector<std::pair<std::string, std::uint64_t>> nonzero;
    for (const auto& [k, v] : c->obj) {
      const std::uint64_t n = std::strtoull(v.raw.c_str(), nullptr, 10);
      if (n != 0) nonzero.emplace_back(k, n);
    }
    std::printf("\ncounters      %zu non-zero of %zu\n", nonzero.size(),
                c->obj.size());
    for (const auto& [k, n] : nonzero)
      std::printf("  %-28s %llu\n", k.c_str(),
                  static_cast<unsigned long long>(n));
  }

  // Flatten the rings; the flight recorder keeps the last kRingCapacity
  // completed spans per thread, newest last within each ring.
  std::vector<FlatSpan> spans;
  std::uint64_t pushed_total = 0;
  std::size_t ring_count = 0;
  if (const Json* rings = doc.find("rings");
      rings != nullptr && rings->kind == Json::Kind::Arr) {
    ring_count = rings->arr.size();
    for (const Json& ring : rings->arr) {
      pushed_total += ring.u64_or("pushed", 0);
      const Json* recs = ring.find("records");
      if (recs == nullptr || recs->kind != Json::Kind::Arr) continue;
      const std::int64_t tid = ring.i64_or("tid", -1);
      for (const Json& r : recs->arr)
        spans.push_back(FlatSpan{tid, r.str_or("name", "?"),
                                 r.i64_or("t0_ns", 0), r.i64_or("dur_ns", 0),
                                 r.u64_or("trace_id", 0),
                                 r.i64_or("omp_tid", 0)});
    }
  }
  std::printf("\nflight rings  %zu thread%s, %llu spans pushed, %zu retained\n",
              ring_count, ring_count == 1 ? "" : "s",
              static_cast<unsigned long long>(pushed_total), spans.size());

  // The most recent spans (by end time) across all threads are the closest
  // thing to "what was it doing when it died".
  std::vector<FlatSpan> recent = spans;
  std::sort(recent.begin(), recent.end(),
            [](const FlatSpan& a, const FlatSpan& b) {
              return a.t0_ns + a.dur_ns > b.t0_ns + b.dur_ns;
            });
  if (recent.size() > static_cast<std::size_t>(show)) recent.resize(show);
  if (!recent.empty()) {
    std::printf("\nlast %zu spans (most recent first):\n", recent.size());
    for (const FlatSpan& s : recent) {
      std::printf("  [tid %2lld] %-24s end=%10.3f ms  dur=%9.3f ms",
                  static_cast<long long>(s.tid), s.name.c_str(),
                  static_cast<double>(s.t0_ns + s.dur_ns) * 1e-6,
                  static_cast<double>(s.dur_ns) * 1e-6);
      if (s.trace_id != 0)
        std::printf("  trace=%llu",
                    static_cast<unsigned long long>(s.trace_id));
      std::printf("\n");
    }
  }

  if (!trace_out.empty()) {
    if (!write_chrome_trace(trace_out, spans, pid)) {
      std::fprintf(stderr, "fsi_postmortem: cannot write %s\n",
                   trace_out.c_str());
      return 1;
    }
    std::printf("\ntimeline      %s (load in a chrome://tracing viewer)\n",
                trace_out.c_str());
  }
  return 0;
}
