#include "fsi/pcyclic/patterns.hpp"

#include "fsi/sched/workspace_pool.hpp"
#include "fsi/util/check.hpp"

namespace fsi::pcyclic {

using dense::index_t;

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::Diagonal: return "diagonal";
    case Pattern::SubDiagonal: return "sub-diagonal";
    case Pattern::Columns: return "columns";
    case Pattern::Rows: return "rows";
    case Pattern::AllDiagonals: return "all-diagonals";
  }
  return "?";
}

Selection::Selection(index_t l_total_, index_t c_, index_t q_)
    : l_total(l_total_), c(c_), q(q_) {
  FSI_CHECK(l_total > 0 && c > 0, "Selection: L and c must be positive");
  FSI_CHECK(l_total % c == 0, "Selection: c must divide L");
  FSI_CHECK(q >= 0 && q < c, "Selection: q must be in [0, c)");
}

std::vector<index_t> Selection::indices() const {
  std::vector<index_t> idx;
  idx.reserve(static_cast<std::size_t>(b()));
  for (index_t j = 0; j < b(); ++j) idx.push_back((j + 1) * c - q - 1);
  return idx;
}

bool Selection::contains(index_t i) const {
  return i >= 0 && i < l_total && (i + q + 1) % c == 0;
}

index_t Selection::block_count(Pattern pattern) const {
  switch (pattern) {
    case Pattern::Diagonal:
      return b();
    case Pattern::SubDiagonal:
      // G(k, k+1) is excluded when k = L-1 (the paper's k = L case),
      // which is selected exactly when q = 0.
      return (q == 0) ? b() - 1 : b();
    case Pattern::Columns:
    case Pattern::Rows:
      return b() * l_total;
    case Pattern::AllDiagonals:
      return l_total;
  }
  return 0;
}

double Selection::reduction_factor(Pattern pattern) const {
  const double full = static_cast<double>(l_total) * l_total;
  return full / static_cast<double>(block_count(pattern));
}

SelectedInversion::SelectedInversion(Pattern pattern, index_t block_size,
                                     Selection sel)
    : pattern_(pattern), n_(block_size), sel_(sel), selected_(sel.indices()) {
  position_of_.assign(static_cast<std::size_t>(sel_.l_total), -1);
  for (index_t p = 0; p < static_cast<index_t>(selected_.size()); ++p)
    position_of_[static_cast<std::size_t>(selected_[p])] = p;

  const index_t l = sel_.l_total;
  switch (pattern_) {
    case Pattern::Diagonal:
      for (index_t k : selected_) keys_.emplace_back(k, k);
      break;
    case Pattern::SubDiagonal:
      for (index_t k : selected_)
        if (k != l - 1) keys_.emplace_back(k, k + 1);
      break;
    case Pattern::Columns:
      for (index_t col : selected_)
        for (index_t k = 0; k < l; ++k) keys_.emplace_back(k, col);
      break;
    case Pattern::Rows:
      for (index_t row : selected_)
        for (index_t col = 0; col < l; ++col) keys_.emplace_back(row, col);
      break;
    case Pattern::AllDiagonals:
      for (index_t k = 0; k < l; ++k) keys_.emplace_back(k, k);
      break;
  }
  blocks_.resize(keys_.size());
}

index_t SelectedInversion::slot_index(index_t k, index_t l) const {
  const index_t lt = sel_.l_total;
  if (k < 0 || k >= lt || l < 0 || l >= lt) return -1;
  switch (pattern_) {
    case Pattern::Diagonal: {
      if (k != l) return -1;
      return position_of_[static_cast<std::size_t>(k)];
    }
    case Pattern::SubDiagonal: {
      if (l != k + 1) return -1;
      const index_t pos = position_of_[static_cast<std::size_t>(k)];
      if (pos < 0) return -1;
      // Slot order skips a selected k = L-1 (which has no sub-diagonal
      // block); selected indices are ascending so that can only be the last.
      return pos;
    }
    case Pattern::Columns: {
      const index_t pos = position_of_[static_cast<std::size_t>(l)];
      if (pos < 0) return -1;
      return pos * lt + k;
    }
    case Pattern::Rows: {
      const index_t pos = position_of_[static_cast<std::size_t>(k)];
      if (pos < 0) return -1;
      return pos * lt + l;
    }
    case Pattern::AllDiagonals:
      return (k == l) ? k : -1;
  }
  return -1;
}

bool SelectedInversion::contains(index_t k, index_t l) const {
  return slot_index(k, l) >= 0;
}

dense::Matrix& SelectedInversion::slot(index_t k, index_t l) {
  const index_t s = slot_index(k, l);
  FSI_CHECK(s >= 0, "SelectedInversion: block (k, l) not in the pattern");
  return blocks_[static_cast<std::size_t>(s)];
}

const dense::Matrix& SelectedInversion::at(index_t k, index_t l) const {
  const index_t s = slot_index(k, l);
  FSI_CHECK(s >= 0, "SelectedInversion: block (k, l) not in the pattern");
  const dense::Matrix& m = blocks_[static_cast<std::size_t>(s)];
  FSI_CHECK(!m.empty(), "SelectedInversion: block (k, l) was never computed");
  return m;
}

std::size_t SelectedInversion::bytes() const {
  std::size_t total = 0;
  for (const auto& b : blocks_) total += b.bytes();
  return total;
}

void SelectedInversion::release_blocks() {
  for (auto& b : blocks_) sched::recycle(std::move(b));
}

}  // namespace fsi::pcyclic
