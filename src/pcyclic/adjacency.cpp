#include "fsi/pcyclic/adjacency.hpp"

#include <exception>

#include <omp.h>

#include "fsi/dense/blas.hpp"
#include "fsi/sched/workspace_pool.hpp"

namespace fsi::pcyclic {
namespace {

/// g - I (g must be square).  Pool-backed: adjacency moves run thousands of
/// times per batched FSI call, so their workspaces recycle.
Matrix minus_identity(ConstMatrixView g) {
  Matrix out = sched::acquire_copy(g);
  for (index_t d = 0; d < out.rows(); ++d) out(d, d) -= 1.0;
  return out;
}

dense::MatrixF minus_identity(dense::ConstMatrixViewF g) {
  dense::MatrixF out = sched::acquire_copy_f(g);
  for (index_t d = 0; d < out.rows(); ++d) out(d, d) -= 1.0f;
  return out;
}

}  // namespace

BlockOps::BlockOps(const PCyclicMatrix& m) : m_(m) {
  const index_t l = m.num_blocks();
  lu_.resize(static_cast<std::size_t>(l));
  // Factor the L independent B blocks in parallel; exceptions (singular
  // blocks) must not escape the OpenMP region, so stash and rethrow.
  std::exception_ptr error;
#pragma omp parallel for schedule(dynamic)
  for (index_t i = 0; i < l; ++i) {
    try {
      lu_[static_cast<std::size_t>(i)] =
          std::make_unique<dense::LuFactorization>(m.b_matrix(i));
    } catch (...) {
#pragma omp critical
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

const dense::LuFactorization& BlockOps::lu(index_t i) const {
  FSI_CHECK(i >= 0 && i < num_blocks(), "BlockOps: block index out of range");
  return *lu_[static_cast<std::size_t>(i)];
}

// ---------------------------------------------------------------------------
// 0-based boundary-case tables (derived from the explicit form, Eq. 3; see
// tests/test_pcyclic_adjacency.cpp which checks every case against a dense
// inverse).  B ranges over b(0..L-1) = paper's B_1..B_L; row/col indices are
// 0-based so "first row k=1" becomes k=0 and "last row k=L" becomes k=L-1.
// ---------------------------------------------------------------------------

Matrix BlockOps::up(index_t k, index_t l, ConstMatrixView g) const {
  //  k != l, k != 0 : G(k-1, l) =  B_k^-1  G(k, l)
  //  k == l != 0    : G(k-1, l) =  B_k^-1 (G(k, k) - I)        [diagonal]
  //  k == 0, l != 0 : G(L-1, l) = -B_0^-1  G(0, l)             [first row]
  //  k == 0, l == 0 : G(L-1, 0) = -B_0^-1 (G(0, 0) - I)        [corner]
  Matrix rhs = (k == l) ? minus_identity(g) : sched::acquire_copy(g);
  if (k == 0) dense::scal(-1.0, rhs);
  lu(k).solve(rhs);
  return rhs;
}

Matrix BlockOps::down(index_t k, index_t l, ConstMatrixView g) const {
  //  generic            : G(k+1, l) =  B_{k+1} G(k, l)
  //  k+1 == l (k!=L-1)  : G(l, l)   =  B_l G(l-1, l) + I       [sub-diagonal]
  //  k == L-1, l != 0   : G(0, l)   = -B_0 G(L-1, l)           [last row]
  //  k == L-1, l == 0   : G(0, 0)   = -B_0 G(L-1, 0) + I       [corner]
  const index_t lmax = num_blocks() - 1;
  const index_t kn = m_.wrap(k + 1);
  Matrix out = sched::acquire(block_size(), block_size());
  const double sign = (k == lmax) ? -1.0 : 1.0;
  dense::gemm(dense::Trans::No, dense::Trans::No, sign, m_.b(kn), g, 0.0, out);
  if (kn == l) {  // landed on the diagonal (covers the corner case too)
    for (index_t d = 0; d < block_size(); ++d) out(d, d) += 1.0;
  }
  return out;
}

Matrix BlockOps::left(index_t k, index_t l, ConstMatrixView g) const {
  //  generic            : G(k, l-1) =  G(k, l) B_l
  //  l == k+1 (k!=L-1)  : G(k, k)   =  G(k, k+1) B_{k+1} + I   [sub-diagonal]
  //  l == 0, k != L-1   : G(k, L-1) = -G(k, 0) B_0             [first column]
  //  l == 0, k == L-1   : G(L-1,L-1)= -G(L-1, 0) B_0 + I       [corner]
  Matrix out = sched::acquire(block_size(), block_size());
  const double sign = (l == 0) ? -1.0 : 1.0;
  dense::gemm(dense::Trans::No, dense::Trans::No, sign, g, m_.b(l), 0.0, out);
  if (m_.wrap(l - 1) == k) {  // landed on the diagonal
    for (index_t d = 0; d < block_size(); ++d) out(d, d) += 1.0;
  }
  return out;
}

Matrix BlockOps::right(index_t k, index_t l, ConstMatrixView g) const {
  //  k != l, l != L-1 : G(k, l+1) =  G(k, l) B_{l+1}^-1
  //  k == l != L-1    : G(k, k+1) = (G(k, k) - I) B_{k+1}^-1   [diagonal]
  //  l == L-1, k != l : G(k, 0)   = -G(k, L-1) B_0^-1          [last column]
  //  k == l == L-1    : G(L-1, 0) = -(G(L-1,L-1) - I) B_0^-1   [corner]
  const index_t ln = m_.wrap(l + 1);
  Matrix rhs = (k == l) ? minus_identity(g) : sched::acquire_copy(g);
  if (l == num_blocks() - 1) dense::scal(-1.0, rhs);
  lu(ln).solve_right(rhs);
  return rhs;
}

// ---------------------------------------------------------------------------
// BlockOpsF — the same moves and boundary-case tables on fp32 operands.
// Kept in lockstep with BlockOps above; test_fsi_mixed checks every move
// against its fp64 twin within fp32 tolerance.
// ---------------------------------------------------------------------------

BlockOpsF::BlockOpsF(const PCyclicMatrix& m) : m_(m) {
  const index_t l = m.num_blocks();
  bf_.resize(static_cast<std::size_t>(l));
  lu_.resize(static_cast<std::size_t>(l));
  std::exception_ptr error;
#pragma omp parallel for schedule(dynamic)
  for (index_t i = 0; i < l; ++i) {
    try {
      dense::MatrixF bf = dense::demoted(m.b(i));
      lu_[static_cast<std::size_t>(i)] =
          std::make_unique<dense::LuFactorizationF>(dense::MatrixF::copy_of(bf));
      bf_[static_cast<std::size_t>(i)] = std::move(bf);
    } catch (...) {
#pragma omp critical
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

dense::ConstMatrixViewF BlockOpsF::b(index_t i) const {
  FSI_CHECK(i >= 0 && i < num_blocks(), "BlockOpsF: block index out of range");
  return bf_[static_cast<std::size_t>(i)];
}

const dense::LuFactorizationF& BlockOpsF::lu(index_t i) const {
  FSI_CHECK(i >= 0 && i < num_blocks(), "BlockOpsF: block index out of range");
  return *lu_[static_cast<std::size_t>(i)];
}

dense::MatrixF BlockOpsF::up(index_t k, index_t l,
                             dense::ConstMatrixViewF g) const {
  dense::MatrixF rhs = (k == l) ? minus_identity(g) : sched::acquire_copy_f(g);
  if (k == 0) dense::scal(-1.0f, rhs);
  lu(k).solve(rhs);
  return rhs;
}

dense::MatrixF BlockOpsF::down(index_t k, index_t l,
                               dense::ConstMatrixViewF g) const {
  const index_t lmax = num_blocks() - 1;
  const index_t kn = m_.wrap(k + 1);
  dense::MatrixF out = sched::acquire_f(block_size(), block_size());
  const float sign = (k == lmax) ? -1.0f : 1.0f;
  dense::gemm(dense::Trans::No, dense::Trans::No, sign, b(kn), g, 0.0f, out);
  if (kn == l) {
    for (index_t d = 0; d < block_size(); ++d) out(d, d) += 1.0f;
  }
  return out;
}

dense::MatrixF BlockOpsF::left(index_t k, index_t l,
                               dense::ConstMatrixViewF g) const {
  dense::MatrixF out = sched::acquire_f(block_size(), block_size());
  const float sign = (l == 0) ? -1.0f : 1.0f;
  dense::gemm(dense::Trans::No, dense::Trans::No, sign, g, b(l), 0.0f, out);
  if (m_.wrap(l - 1) == k) {
    for (index_t d = 0; d < block_size(); ++d) out(d, d) += 1.0f;
  }
  return out;
}

dense::MatrixF BlockOpsF::right(index_t k, index_t l,
                                dense::ConstMatrixViewF g) const {
  const index_t ln = m_.wrap(l + 1);
  dense::MatrixF rhs = (k == l) ? minus_identity(g) : sched::acquire_copy_f(g);
  if (l == num_blocks() - 1) dense::scal(-1.0f, rhs);
  lu(ln).solve_right(rhs);
  return rhs;
}

}  // namespace fsi::pcyclic
