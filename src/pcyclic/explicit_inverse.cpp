#include "fsi/pcyclic/explicit_inverse.hpp"

#include "fsi/dense/blas.hpp"
#include "fsi/dense/lu.hpp"

namespace fsi::pcyclic {

Matrix explicit_block(const PCyclicMatrix& m, index_t k, index_t l) {
  FSI_CHECK(k >= 0 && k < m.num_blocks() && l >= 0 && l < m.num_blocks(),
            "explicit_block: block index out of range");
  Matrix z = chain_product(m, k, l);
  if (k < l) dense::scal(-1.0, z);  // the chain wrapped through the corner
  dense::LuFactorization lu(w_matrix(m, k));
  lu.solve(z);
  return z;
}

std::vector<Matrix> explicit_block_column(const PCyclicMatrix& m, index_t l) {
  std::vector<Matrix> col;
  col.reserve(static_cast<std::size_t>(m.num_blocks()));
  for (index_t k = 0; k < m.num_blocks(); ++k)
    col.push_back(explicit_block(m, k, l));
  return col;
}

Matrix full_inverse_dense(const PCyclicMatrix& m) {
  return dense::inverse(m.to_dense());
}

Matrix dense_block(const Matrix& g, index_t n, index_t k, index_t l) {
  return Matrix::copy_of(g.block(k * n, l * n, n, n));
}

}  // namespace fsi::pcyclic
