#include "fsi/pcyclic/pcyclic.hpp"

#include "fsi/dense/blas.hpp"
#include "fsi/sched/workspace_pool.hpp"

namespace fsi::pcyclic {

PCyclicMatrix::PCyclicMatrix(index_t block_size, index_t num_blocks)
    : n_(block_size), l_(num_blocks) {
  FSI_CHECK(block_size > 0 && num_blocks > 0,
            "PCyclicMatrix: need positive block size and count");
  blocks_.reserve(static_cast<std::size_t>(num_blocks));
  for (index_t i = 0; i < num_blocks; ++i) blocks_.emplace_back(n_, n_);
}

PCyclicMatrix::PCyclicMatrix(std::vector<Matrix> blocks)
    : blocks_(std::move(blocks)) {
  FSI_CHECK(!blocks_.empty(), "PCyclicMatrix: need at least one block");
  n_ = blocks_.front().rows();
  l_ = static_cast<index_t>(blocks_.size());
  for (const Matrix& b : blocks_)
    FSI_CHECK(b.rows() == n_ && b.cols() == n_,
              "PCyclicMatrix: all blocks must be square with equal size");
}

PCyclicMatrix PCyclicMatrix::random(index_t block_size, index_t num_blocks,
                                    util::Rng& rng) {
  PCyclicMatrix m(block_size, num_blocks);
  const double scale = 0.5 / static_cast<double>(block_size);
  for (index_t i = 0; i < num_blocks; ++i) {
    MatrixView b = m.b(i);
    for (index_t cj = 0; cj < block_size; ++cj)
      for (index_t ci = 0; ci < block_size; ++ci)
        b(ci, cj) = rng.uniform(-scale, scale);
    for (index_t d = 0; d < block_size; ++d) b(d, d) += 0.5;
  }
  return m;
}

MatrixView PCyclicMatrix::b(index_t i) {
  FSI_CHECK(i >= 0 && i < l_, "PCyclicMatrix: block index out of range");
  return blocks_[static_cast<std::size_t>(i)].view();
}

ConstMatrixView PCyclicMatrix::b(index_t i) const {
  FSI_CHECK(i >= 0 && i < l_, "PCyclicMatrix: block index out of range");
  return blocks_[static_cast<std::size_t>(i)].view();
}

Matrix& PCyclicMatrix::b_matrix(index_t i) {
  FSI_CHECK(i >= 0 && i < l_, "PCyclicMatrix: block index out of range");
  return blocks_[static_cast<std::size_t>(i)];
}

const Matrix& PCyclicMatrix::b_matrix(index_t i) const {
  FSI_CHECK(i >= 0 && i < l_, "PCyclicMatrix: block index out of range");
  return blocks_[static_cast<std::size_t>(i)];
}

Matrix PCyclicMatrix::to_dense() const {
  Matrix m(dim(), dim());
  for (index_t d = 0; d < dim(); ++d) m(d, d) = 1.0;
  // Corner block +B_1 at block position (0, L-1); for L == 1 the "corner"
  // coincides with the diagonal: M = I + B_1.
  {
    MatrixView corner = m.block(0, (l_ - 1) * n_, n_, n_);
    ConstMatrixView b1 = b(0);
    for (index_t j = 0; j < n_; ++j)
      for (index_t i = 0; i < n_; ++i) corner(i, j) += b1(i, j);
  }
  // Subdiagonal blocks -B_{i+1} at block positions (i, i-1).
  for (index_t i = 1; i < l_; ++i) {
    MatrixView sub = m.block(i * n_, (i - 1) * n_, n_, n_);
    ConstMatrixView bi = b(i);
    for (index_t j = 0; j < n_; ++j)
      for (index_t r = 0; r < n_; ++r) sub(r, j) -= bi(r, j);
  }
  return m;
}

std::size_t PCyclicMatrix::bytes() const {
  std::size_t total = 0;
  for (const Matrix& b : blocks_) total += b.bytes();
  return total;
}

void PCyclicMatrix::release_blocks() {
  for (Matrix& b : blocks_) sched::recycle(std::move(b));
}

Matrix chain_product(const PCyclicMatrix& m, index_t k, index_t l) {
  const index_t count = m.wrap(k - l);
  Matrix prod = Matrix::identity(m.block_size());
  // Multiply from the right: prod := B[k] (B[k-1] (... B[l+1])).
  for (index_t t = 0; t < count; ++t) {
    const index_t j = m.wrap(l + 1 + t);
    Matrix next = dense::matmul(m.b(j), prod);
    prod = std::move(next);
  }
  return prod;
}

Matrix w_matrix(const PCyclicMatrix& m, index_t k) {
  // Full chain B[k] ... B[k+1]: the (k - (k+1)) mod L = L-1 factor chain
  // times the final B[k+1]... equivalently build it directly.
  Matrix prod = Matrix::identity(m.block_size());
  for (index_t t = 0; t < m.num_blocks(); ++t) {
    const index_t j = m.wrap(k + 1 + t);
    Matrix next = dense::matmul(m.b(j), prod);
    prod = std::move(next);
  }
  for (index_t d = 0; d < m.block_size(); ++d) prod(d, d) += 1.0;
  return prod;
}

}  // namespace fsi::pcyclic
