#include "fsi/mpi/edison_model.hpp"

namespace fsi::mpi {

std::size_t fsi_rank_bytes(dense::index_t n, dense::index_t l, dense::index_t c,
                           pcyclic::Pattern pattern) {
  const std::size_t n2 = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  const std::size_t b = static_cast<std::size_t>(l / c);
  const std::size_t lblocks = static_cast<std::size_t>(l);

  std::size_t selected_blocks = 0;
  switch (pattern) {
    case pcyclic::Pattern::Diagonal:
    case pcyclic::Pattern::SubDiagonal:
      selected_blocks = b;
      break;
    case pcyclic::Pattern::Columns:
    case pcyclic::Pattern::Rows:
      selected_blocks = b * lblocks;
      break;
    case pcyclic::Pattern::AllDiagonals:
      selected_blocks = lblocks;
      break;
  }

  const std::size_t b_blocks = lblocks * n2;        // input B_1..B_L
  const std::size_t lu_blocks = lblocks * n2;       // wrapping-move LU factors
  const std::size_t reduced = b * n2;               // clustered matrix
  const std::size_t gtilde = (b * b) * n2;          // dense reduced inverse
  const std::size_t selected = selected_blocks * n2;
  return (b_blocks + lu_blocks + reduced + gtilde + selected) * sizeof(double);
}

bool config_fits(int ranks_per_node, std::size_t bytes_per_rank,
                 const EdisonNode& node) {
  const double need_gb = static_cast<double>(ranks_per_node) *
                         static_cast<double>(bytes_per_rank) / (1024.0 * 1024.0 * 1024.0);
  return need_gb <= node.usable_gb();
}

}  // namespace fsi::mpi
