#include "fsi/mpi/minimpi.hpp"

#include <exception>

#include <omp.h>

#include "fsi/obs/metrics.hpp"
#include "fsi/obs/trace.hpp"
#include "fsi/sched/executor.hpp"

namespace fsi::mpi {

namespace detail {

/// Shared state of one run(): a generation barrier, a typed mailbox, and a
/// per-rank slot table for collectives.
struct Context {
  explicit Context(int n) : num_ranks(n), slots(static_cast<std::size_t>(n)) {}

  const int num_ranks;

  // --- generation barrier --------------------------------------------------
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  int barrier_waiting = 0;
  std::uint64_t barrier_generation = 0;

  void barrier() {
    std::unique_lock<std::mutex> lock(barrier_mutex);
    const std::uint64_t gen = barrier_generation;
    if (++barrier_waiting == num_ranks) {
      barrier_waiting = 0;
      ++barrier_generation;
      barrier_cv.notify_all();
    } else {
      barrier_cv.wait(lock, [&] { return barrier_generation != gen; });
    }
  }

  // --- point-to-point mailbox ----------------------------------------------
  struct Key {
    int src, dst, tag;
    bool operator<(const Key& o) const {
      if (src != o.src) return src < o.src;
      if (dst != o.dst) return dst < o.dst;
      return tag < o.tag;
    }
  };
  std::mutex mail_mutex;
  std::condition_variable mail_cv;
  std::map<Key, std::vector<std::vector<double>>> mailbox;  // FIFO per key

  // --- collective slots ----------------------------------------------------
  // Each rank parks a pointer to its local buffer, the relevant rank(s)
  // consume between two barriers.
  std::vector<const std::vector<double>*> slots;
  const std::vector<double>* root_buffer = nullptr;
  std::vector<double> collective_result;
};

}  // namespace detail

using detail::Context;

int Communicator::size() const { return ctx_->num_ranks; }

void Communicator::send(int dest, int tag, std::vector<double> data) {
  FSI_OBS_SPAN("mpi.send");
  FSI_CHECK(dest >= 0 && dest < size(), "send: invalid destination rank");
  obs::metrics::add(obs::metrics::Counter::MpiMessages, 1);
  obs::metrics::add(obs::metrics::Counter::MpiBytes,
                    data.size() * sizeof(double));
  {
    std::lock_guard<std::mutex> lock(ctx_->mail_mutex);
    ctx_->mailbox[{rank_, dest, tag}].push_back(std::move(data));
  }
  ctx_->mail_cv.notify_all();
}

std::vector<double> Communicator::recv(int source, int tag) {
  // The recv span includes the blocking wait, so sender/receiver imbalance
  // shows up as long mpi.recv spans in the trace.
  FSI_OBS_SPAN("mpi.recv");
  FSI_CHECK(source >= 0 && source < size(), "recv: invalid source rank");
  std::unique_lock<std::mutex> lock(ctx_->mail_mutex);
  const Context::Key key{source, rank_, tag};
  ctx_->mail_cv.wait(lock, [&] {
    auto it = ctx_->mailbox.find(key);
    return it != ctx_->mailbox.end() && !it->second.empty();
  });
  auto& queue = ctx_->mailbox[key];
  std::vector<double> out = std::move(queue.front());
  queue.erase(queue.begin());
  return out;
}

void Communicator::barrier() { ctx_->barrier(); }

void Communicator::bcast(std::vector<double>& data, int root) {
  FSI_CHECK(root >= 0 && root < size(), "bcast: invalid root");
  if (rank_ == root) ctx_->root_buffer = &data;
  ctx_->barrier();  // root buffer published
  if (rank_ != root) data = *ctx_->root_buffer;
  ctx_->barrier();  // all copies done before root's buffer may change
}

std::vector<double> Communicator::scatter(const std::vector<double>& sendbuf,
                                          std::size_t count, int root) {
  FSI_CHECK(root >= 0 && root < size(), "scatter: invalid root");
  if (rank_ == root) {
    FSI_CHECK(sendbuf.size() == count * static_cast<std::size_t>(size()),
              "scatter: send buffer must hold size() * count elements");
    ctx_->root_buffer = &sendbuf;
  }
  ctx_->barrier();
  const double* base = ctx_->root_buffer->data() +
                       count * static_cast<std::size_t>(rank_);
  std::vector<double> chunk(base, base + count);
  ctx_->barrier();
  return chunk;
}

std::vector<double> Communicator::reduce_sum(const std::vector<double>& local,
                                             int root) {
  FSI_CHECK(root >= 0 && root < size(), "reduce_sum: invalid root");
  ctx_->slots[static_cast<std::size_t>(rank_)] = &local;
  ctx_->barrier();  // all contributions published
  std::vector<double> out;
  if (rank_ == root) {
    out.assign(local.size(), 0.0);
    for (int r = 0; r < size(); ++r) {
      const auto& contrib = *ctx_->slots[static_cast<std::size_t>(r)];
      FSI_CHECK(contrib.size() == out.size(),
                "reduce_sum: all ranks must contribute equal-sized buffers");
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += contrib[i];
    }
  }
  ctx_->barrier();  // locals stay alive until the root has summed
  return out;
}

std::vector<double> Communicator::allreduce_sum(const std::vector<double>& local) {
  ctx_->slots[static_cast<std::size_t>(rank_)] = &local;
  ctx_->barrier();
  if (rank_ == 0) {
    auto& result = ctx_->collective_result;
    result.assign(local.size(), 0.0);
    for (int r = 0; r < size(); ++r) {
      const auto& contrib = *ctx_->slots[static_cast<std::size_t>(r)];
      FSI_CHECK(contrib.size() == result.size(),
                "allreduce_sum: all ranks must contribute equal-sized buffers");
      for (std::size_t i = 0; i < result.size(); ++i) result[i] += contrib[i];
    }
  }
  ctx_->barrier();  // result ready
  std::vector<double> out = ctx_->collective_result;
  ctx_->barrier();  // all copies taken before result may be reused
  return out;
}

std::vector<double> Communicator::gather(const std::vector<double>& local,
                                         int root) {
  FSI_CHECK(root >= 0 && root < size(), "gather: invalid root");
  ctx_->slots[static_cast<std::size_t>(rank_)] = &local;
  ctx_->barrier();
  std::vector<double> out;
  if (rank_ == root) {
    out.reserve(local.size() * static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      const auto& contrib = *ctx_->slots[static_cast<std::size_t>(r)];
      FSI_CHECK(contrib.size() == local.size(),
                "gather: all ranks must contribute equal-sized buffers");
      out.insert(out.end(), contrib.begin(), contrib.end());
    }
  }
  ctx_->barrier();
  return out;
}

void run(int num_ranks, const std::function<void(Communicator&)>& body,
         int omp_threads_per_rank) {
  FSI_CHECK(num_ranks > 0, "run: need at least one rank");
  Context ctx(num_ranks);

  // Ranks run on the persistent executor pool instead of freshly spawned
  // threads: a DQMC run dispatches one rank batch per measurement sweep, and
  // re-creating OS threads (plus their OpenMP teams) between sweeps was pure
  // overhead.  The executor dispatches all num_ranks bodies concurrently —
  // required, since ranks block on each other's barriers — and restores each
  // worker's OMP team size afterwards.
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(num_ranks));
  sched::Executor::instance().run_ranks(
      num_ranks,
      [&](int r) {
        try {
          Communicator comm(ctx, r);
          body(comm);
        } catch (...) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
          // A failed rank must not deadlock the others at a barrier; there
          // is no recovery story (like real MPI's abort-on-error default),
          // so terminate the run.
          std::lock_guard<std::mutex> lock(ctx.barrier_mutex);
          ctx.barrier_waiting = 0;
          ++ctx.barrier_generation;
          ctx.barrier_cv.notify_all();
        }
      },
      omp_threads_per_rank);
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace fsi::mpi
