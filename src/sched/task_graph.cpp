#include "fsi/sched/task_graph.hpp"

#include "fsi/util/check.hpp"

namespace fsi::sched {

const char* stage_name(Stage s) noexcept {
  switch (s) {
    case Stage::Build: return "build";
    case Stage::Cls: return "cls";
    case Stage::Bsofi: return "bsofi";
    case Stage::Wrap: return "wrap";
    case Stage::Measure: return "measure";
    case Stage::Other: return "other";
    case Stage::kCount: break;
  }
  return "?";
}

NodeId TaskGraph::add_node(std::function<void(int)> body, Stage stage,
                           int owner_hint) {
  FSI_CHECK(body != nullptr, "TaskGraph: node needs a body");
  Node node;
  node.body = std::move(body);
  node.stage = stage;
  node.owner_hint = owner_hint;
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void TaskGraph::add_edge(NodeId from, NodeId to) {
  FSI_CHECK(from < nodes_.size() && to < nodes_.size(),
            "TaskGraph: edge endpoint out of range");
  FSI_CHECK(from != to, "TaskGraph: self-dependency");
  nodes_[from].successors.push_back(to);
  ++nodes_[to].num_deps;
}

void TaskGraph::validate() const {
  // Kahn's algorithm: repeatedly retire in-degree-zero nodes; anything left
  // unprocessed sits on a cycle and would hang the executor's termination
  // count forever.
  std::vector<std::uint32_t> indeg(nodes_.size());
  std::vector<NodeId> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    indeg[i] = nodes_[i].num_deps;
    if (indeg[i] == 0) ready.push_back(static_cast<NodeId>(i));
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    const NodeId v = ready.back();
    ready.pop_back();
    ++processed;
    for (NodeId succ : nodes_[v].successors)
      if (--indeg[succ] == 0) ready.push_back(succ);
  }
  FSI_CHECK(processed == nodes_.size(),
            "TaskGraph: dependency cycle detected");
}

}  // namespace fsi::sched
