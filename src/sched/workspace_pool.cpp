#include "fsi/sched/workspace_pool.hpp"

#include <algorithm>
#include <utility>

#include "fsi/obs/env.hpp"
#include "fsi/obs/metrics.hpp"

namespace fsi::sched {

WorkspacePool::WorkspacePool(bool enabled, std::size_t max_bytes)
    : enabled_(enabled), max_bytes_(max_bytes) {}

WorkspacePool& WorkspacePool::global() {
  // Leaked on purpose: destructors of pooled consumers (e.g. thread-local
  // state torn down at exit) may still recycle, so the pool must outlive
  // every static object.
  static WorkspacePool* pool = new WorkspacePool(
      obs::env_flag("FSI_SCHED_POOL", true),
      static_cast<std::size_t>(
          std::max(0L, obs::env_long("FSI_SCHED_POOL_MAX_MB", 512)))
          << 20);
  return *pool;
}

template <typename T>
dense::BasicMatrix<T> WorkspacePool::acquire_impl(Shard<T> (&shards)[kShards],
                                                  index_t rows, index_t cols) {
  const std::size_t count =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  if (enabled_ && count > 0) {
    Shard<T>& s = shard_for(shards, count);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.free.find(count);
    if (it != s.free.end() && !it->second.empty()) {
      std::vector<T> buf = std::move(it->second.back());
      it->second.pop_back();
      s.bytes -= count * sizeof(T);
      hits_.fetch_add(1, std::memory_order_relaxed);
      obs::metrics::add(obs::metrics::Counter::PoolHits, 1);
      return dense::BasicMatrix<T>(rows, cols, std::move(buf));
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs::metrics::add(obs::metrics::Counter::PoolMisses, 1);
  return dense::BasicMatrix<T>(rows, cols);
}

template <typename T>
void WorkspacePool::recycle_impl(Shard<T> (&shards)[kShards],
                                 dense::BasicMatrix<T>&& m) {
  if (m.empty()) return;
  std::vector<T> buf = m.release_storage();
  if (!enabled_) return;  // buf frees here
  const std::size_t count = buf.size();
  Shard<T>& s = shard_for(shards, count);
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.bytes + count * sizeof(T) > max_bytes_ / kShards) return;
  s.bytes += count * sizeof(T);
  s.free[count].push_back(std::move(buf));
}

dense::Matrix WorkspacePool::acquire(index_t rows, index_t cols) {
  return acquire_impl(shards_, rows, cols);
}

dense::MatrixF WorkspacePool::acquire_f(index_t rows, index_t cols) {
  return acquire_impl(shards_f_, rows, cols);
}

dense::Matrix WorkspacePool::acquire_copy(dense::ConstMatrixView src) {
  dense::Matrix out = acquire(src.rows(), src.cols());
  dense::copy(src, out.view());
  return out;
}

dense::MatrixF WorkspacePool::acquire_copy_f(dense::ConstMatrixViewF src) {
  dense::MatrixF out = acquire_f(src.rows(), src.cols());
  dense::copy(src, out.view());
  return out;
}

void WorkspacePool::recycle(dense::Matrix&& m) {
  recycle_impl(shards_, std::move(m));
}

void WorkspacePool::recycle(dense::MatrixF&& m) {
  recycle_impl(shards_f_, std::move(m));
}

double WorkspacePool::hit_rate() const {
  const std::uint64_t h = hits(), m = misses();
  return (h + m) > 0 ? static_cast<double>(h) / static_cast<double>(h + m)
                     : 0.0;
}

std::size_t WorkspacePool::cached_bytes() const {
  std::size_t total = 0;
  for (const Shard<double>& s : shards_) {
    std::lock_guard<std::mutex> lock(const_cast<Shard<double>&>(s).mu);
    total += s.bytes;
  }
  for (const Shard<float>& s : shards_f_) {
    std::lock_guard<std::mutex> lock(const_cast<Shard<float>&>(s).mu);
    total += s.bytes;
  }
  return total;
}

std::size_t WorkspacePool::cached_buffers() const {
  std::size_t total = 0;
  for (const Shard<double>& s : shards_) {
    std::lock_guard<std::mutex> lock(const_cast<Shard<double>&>(s).mu);
    for (const auto& [count, list] : s.free) total += list.size();
  }
  for (const Shard<float>& s : shards_f_) {
    std::lock_guard<std::mutex> lock(const_cast<Shard<float>&>(s).mu);
    for (const auto& [count, list] : s.free) total += list.size();
  }
  return total;
}

void WorkspacePool::clear() {
  for (Shard<double>& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.free.clear();
    s.bytes = 0;
  }
  for (Shard<float>& s : shards_f_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.free.clear();
    s.bytes = 0;
  }
}

}  // namespace fsi::sched
