#include "fsi/sched/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "fsi/obs/env.hpp"
#include "fsi/obs/metrics.hpp"
#include "fsi/util/check.hpp"
#include "fsi/util/timer.hpp"

namespace fsi::sched {

SchedulerOptions SchedulerOptions::from_env() {
  SchedulerOptions o;
  o.work_stealing = obs::env_flag("FSI_SCHED", true);
  o.backoff_us = static_cast<int>(
      std::max(0L, obs::env_long("FSI_SCHED_BACKOFF_US", 50)));
  return o;
}

BatchScheduler::BatchScheduler(int num_workers, std::uint32_t num_tasks,
                               SchedulerOptions options)
    : num_workers_(num_workers), num_tasks_(num_tasks), options_(options),
      remaining_(num_tasks) {
  FSI_CHECK(num_workers > 0, "BatchScheduler: need at least one worker");
  deques_.reserve(static_cast<std::size_t>(num_workers));
  stats_.reserve(static_cast<std::size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    deques_.push_back(std::make_unique<TaskDeque>());
    stats_.push_back(std::make_unique<WorkerStats>());
  }
  // Contiguous preload, identical to the old static split for divisible
  // batches and balanced to within one task otherwise.
  const std::uint64_t t = num_tasks, ws = static_cast<std::uint64_t>(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    const std::uint32_t lo = static_cast<std::uint32_t>(t * static_cast<std::uint64_t>(w) / ws);
    const std::uint32_t hi = static_cast<std::uint32_t>(t * (static_cast<std::uint64_t>(w) + 1) / ws);
    for (std::uint32_t task = lo; task < hi; ++task) deques_[static_cast<std::size_t>(w)]->push(task);
  }
  obs::metrics::set(obs::metrics::Gauge::SchedWorkers,
                    static_cast<double>(num_workers));
}

void BatchScheduler::run_worker(
    int worker, const std::function<void(std::uint32_t)>& body) {
  FSI_CHECK(worker >= 0 && worker < num_workers_,
            "BatchScheduler: worker id out of range");
  TaskDeque& mine = *deques_[static_cast<std::size_t>(worker)];
  WorkerStats& st = *stats_[static_cast<std::size_t>(worker)];
  std::vector<std::uint32_t> batch;

  for (;;) {
    std::uint32_t task;
    if (mine.pop(task)) {
      obs::metrics::record(obs::metrics::Hist::QueueDepth,
                           static_cast<double>(mine.size()));
      util::WallTimer timer;
      body(task);
      const double s = timer.seconds();
      st.busy_seconds += s;
      ++st.executed;
      obs::metrics::add(obs::metrics::Counter::SchedTasks, 1);
      obs::metrics::record(obs::metrics::Hist::TaskSeconds, s);
      remaining_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    if (remaining_.load(std::memory_order_acquire) == 0) return;
    if (options_.work_stealing && num_workers_ > 1) {
      bool stole = false;
      for (int i = 1; i < num_workers_ && !stole; ++i) {
        TaskDeque& victim =
            *deques_[static_cast<std::size_t>((worker + i) % num_workers_)];
        batch.clear();
        if (victim.steal_half(batch) > 0) {
          for (std::uint32_t b : batch) mine.push(b);
          ++st.steal_batches;
          st.stolen_tasks += batch.size();
          obs::metrics::add(obs::metrics::Counter::SchedSteals, 1);
          stole = true;
        }
      }
      if (stole) continue;
    }
    // Nothing runnable right now, but tasks are still in flight elsewhere:
    // back off and re-check rather than spinning on the victim locks.
    if (options_.backoff_us > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(options_.backoff_us));
    else
      std::this_thread::yield();
  }
}

const WorkerStats& BatchScheduler::stats(int worker) const {
  FSI_CHECK(worker >= 0 && worker < num_workers_,
            "BatchScheduler: worker id out of range");
  return *stats_[static_cast<std::size_t>(worker)];
}

std::uint64_t BatchScheduler::total_steal_batches() const {
  std::uint64_t total = 0;
  for (const auto& s : stats_) total += s->steal_batches;
  return total;
}

std::uint64_t BatchScheduler::total_stolen_tasks() const {
  std::uint64_t total = 0;
  for (const auto& s : stats_) total += s->stolen_tasks;
  return total;
}

double BatchScheduler::busy_max_seconds() const {
  double mx = 0.0;
  for (const auto& s : stats_) mx = std::max(mx, s->busy_seconds);
  return mx;
}

double BatchScheduler::busy_mean_seconds() const {
  double sum = 0.0;
  for (const auto& s : stats_) sum += s->busy_seconds;
  return num_workers_ > 0 ? sum / num_workers_ : 0.0;
}

std::vector<double> BatchScheduler::busy_seconds() const {
  std::vector<double> out;
  out.reserve(stats_.size());
  for (const auto& s : stats_) out.push_back(s->busy_seconds);
  return out;
}

}  // namespace fsi::sched
