#include "fsi/sched/executor.hpp"

#include <omp.h>

#include <algorithm>
#include <chrono>

#include "fsi/obs/env.hpp"
#include "fsi/obs/metrics.hpp"
#include "fsi/util/check.hpp"
#include "fsi/util/timer.hpp"

namespace fsi::sched {

ExecOptions ExecOptions::from_env() {
  ExecOptions o;
  // FSI_SCHED governs stealing for both the batch scheduler and the graph
  // executor — one switch freezes every static baseline at once.
  o.work_stealing = obs::env_flag("FSI_SCHED", true);
  o.backoff_us = static_cast<int>(
      std::max(0L, obs::env_long("FSI_EXEC_BACKOFF_US", 50)));
  return o;
}

// ---------------------------------------------------------------------------
// GraphRunner

GraphRunner::GraphRunner(const TaskGraph& graph, int num_workers,
                         ExecOptions options)
    : graph_(graph), num_workers_(num_workers), options_(options),
      remaining_(static_cast<std::uint32_t>(graph.nodes_.size())),
      durations_(graph.nodes_.size(), 0.0) {
  FSI_CHECK(num_workers > 0, "GraphRunner: need at least one worker");
  graph.validate();
  deps_ = std::make_unique<std::atomic<std::uint32_t>[]>(graph.nodes_.size());
  for (std::size_t i = 0; i < graph.nodes_.size(); ++i)
    deps_[i].store(graph.nodes_[i].num_deps, std::memory_order_relaxed);
  deques_.reserve(static_cast<std::size_t>(num_workers));
  per_worker_.reserve(static_cast<std::size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    deques_.push_back(std::make_unique<TaskDeque>());
    per_worker_.push_back(std::make_unique<PerWorker>());
  }
  // Dependency-free nodes go to their owner-hint deque in emission order:
  // the graph-level analogue of the batch scheduler's contiguous static
  // preload.  Everything else enters a deque only when its last dependency
  // retires.
  for (std::size_t i = 0; i < graph.nodes_.size(); ++i) {
    if (graph.nodes_[i].num_deps != 0) continue;
    const int hint = graph.nodes_[i].owner_hint;
    const int owner = (hint >= 0 && hint < num_workers) ? hint
                      : ((hint % num_workers) + num_workers) % num_workers;
    deques_[static_cast<std::size_t>(owner)]->push(static_cast<NodeId>(i));
  }
}

void GraphRunner::run_worker(int worker) {
  FSI_CHECK(worker >= 0 && worker < num_workers_,
            "GraphRunner: worker id out of range");
  TaskDeque& mine = *deques_[static_cast<std::size_t>(worker)];
  PerWorker& pw = *per_worker_[static_cast<std::size_t>(worker)];
  std::vector<std::uint32_t> loot;

  for (;;) {
    std::uint32_t id;
    if (mine.pop(id)) {
      const double depth = static_cast<double>(mine.size());
      pw.ready_depth_sum += depth;
      ++pw.pops;
      obs::metrics::record(obs::metrics::Hist::ReadyDepth, depth);
      const TaskGraph::Node& node = graph_.nodes_[id];
      util::WallTimer timer;
      if (!cancelled_.load(std::memory_order_relaxed)) {
        try {
          node.body(worker);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(error_mu_);
            if (!first_error_) first_error_ = std::current_exception();
          }
          // Cancel: remaining node bodies are skipped but every node is
          // still retired, so the termination count reaches zero and no
          // worker deadlocks waiting for work that will never appear.
          cancelled_.store(true, std::memory_order_relaxed);
        }
      }
      const double s = timer.seconds();
      durations_[id] = s;
      StageStats& ss = pw.stage[static_cast<int>(node.stage)];
      ++ss.nodes;
      ss.busy_seconds += s;
      ss.max_seconds = std::max(ss.max_seconds, s);
      pw.base.busy_seconds += s;
      ++pw.base.executed;
      obs::metrics::add(obs::metrics::Counter::ExecNodes, 1);
      obs::metrics::record(obs::metrics::Hist::NodeSeconds, s);
      // Release successors.  The acq_rel RMW chain on the dependency count
      // makes every predecessor's writes visible to whichever worker pops
      // the successor.  push_front keeps the owner depth-first.
      for (NodeId succ : node.successors)
        if (deps_[succ].fetch_sub(1, std::memory_order_acq_rel) == 1)
          mine.push_front(succ);
      remaining_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    if (remaining_.load(std::memory_order_acquire) == 0) break;
    if (options_.work_stealing && num_workers_ > 1) {
      bool stole = false;
      for (int i = 1; i < num_workers_ && !stole; ++i) {
        TaskDeque& victim =
            *deques_[static_cast<std::size_t>((worker + i) % num_workers_)];
        loot.clear();
        if (victim.steal_half(loot) > 0) {
          for (std::uint32_t t : loot) mine.push(t);
          ++pw.base.steal_batches;
          pw.base.stolen_tasks += loot.size();
          obs::metrics::add(obs::metrics::Counter::ExecSteals, 1);
          stole = true;
        }
      }
      if (stole) continue;
    }
    if (options_.backoff_us > 0)
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.backoff_us));
    else
      std::this_thread::yield();
  }

  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    err = first_error_;
  }
  if (err) std::rethrow_exception(err);
}

GraphStats GraphRunner::stats() const {
  GraphStats g;
  g.nodes = graph_.nodes_.size();
  g.busy_seconds.reserve(static_cast<std::size_t>(num_workers_));
  double busy_sum = 0.0, depth_sum = 0.0;
  std::uint64_t pops = 0;
  for (const auto& pw : per_worker_) {
    g.steal_batches += pw->base.steal_batches;
    g.stolen_nodes += pw->base.stolen_tasks;
    g.busy_max_seconds = std::max(g.busy_max_seconds, pw->base.busy_seconds);
    busy_sum += pw->base.busy_seconds;
    g.busy_seconds.push_back(pw->base.busy_seconds);
    depth_sum += pw->ready_depth_sum;
    pops += pw->pops;
    for (int s = 0; s < kNumStages; ++s) {
      g.stage[s].nodes += pw->stage[s].nodes;
      g.stage[s].busy_seconds += pw->stage[s].busy_seconds;
      g.stage[s].max_seconds =
          std::max(g.stage[s].max_seconds, pw->stage[s].max_seconds);
    }
  }
  g.busy_mean_seconds =
      num_workers_ > 0 ? busy_sum / num_workers_ : 0.0;
  g.ready_depth_mean = pops > 0 ? depth_sum / static_cast<double>(pops) : 0.0;
  // Critical path: longest duration-weighted chain, via one Kahn pass over
  // the measured per-node durations.
  const std::size_t n = graph_.nodes_.size();
  std::vector<double> finish(n, 0.0);
  std::vector<std::uint32_t> indeg(n);
  std::vector<NodeId> ready;
  for (std::size_t i = 0; i < n; ++i) {
    indeg[i] = graph_.nodes_[i].num_deps;
    if (indeg[i] == 0) ready.push_back(static_cast<NodeId>(i));
  }
  while (!ready.empty()) {
    const NodeId v = ready.back();
    ready.pop_back();
    finish[v] += durations_[v];
    g.critical_path_seconds = std::max(g.critical_path_seconds, finish[v]);
    for (NodeId succ : graph_.nodes_[v].successors) {
      finish[succ] = std::max(finish[succ], finish[v]);
      if (--indeg[succ] == 0) ready.push_back(succ);
    }
  }
  return g;
}

// ---------------------------------------------------------------------------
// Executor

/// Completion state of one dispatch: written by the job wrappers under the
/// pool mutex, waited on by the dispatcher.
struct Executor::Batch {
  int pending = 0;                          // guarded by Executor::mu_
  std::vector<std::exception_ptr> errors;   // one slot per job, lock-free
};

Executor& Executor::instance() {
  static Executor* global = new Executor();  // leaked deliberately
  return *global;
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::shared_ptr<Executor::Batch> Executor::dispatch(
    int n, const std::function<void(int)>& job) {
  auto batch = std::make_shared<Batch>();
  batch->pending = n;
  batch->errors.resize(static_cast<std::size_t>(n));
  {
    std::lock_guard<std::mutex> lock(mu_);
    FSI_CHECK(!shutdown_, "Executor: dispatch after shutdown");
    if (threads_.empty())
      default_omp_threads_ = omp_get_max_threads();
    std::vector<std::size_t> chosen;
    chosen.reserve(static_cast<std::size_t>(n));
    for (std::size_t s = 0; s < slots_.size() && chosen.size() < static_cast<std::size_t>(n); ++s)
      if (!slots_[s]->busy) chosen.push_back(s);
    // Grow instead of waiting for busy workers: a dispatch from inside a
    // pool worker (nested rank batches, graph helpers under a rank) must
    // never block on the workers it is itself occupying.
    while (chosen.size() < static_cast<std::size_t>(n)) {
      slots_.push_back(std::make_unique<Slot>());
      const std::size_t s = slots_.size() - 1;
      threads_.emplace_back([this, s] { worker_main(s); });
      chosen.push_back(s);
    }
    obs::metrics::set(obs::metrics::Gauge::ExecPoolWorkers,
                      static_cast<double>(slots_.size()));
    for (int i = 0; i < n; ++i) {
      Slot* slot = slots_[chosen[static_cast<std::size_t>(i)]].get();
      slot->busy = true;
      slot->job = [this, batch, job, i, slot] {
        try {
          job(i);
        } catch (...) {
          batch->errors[static_cast<std::size_t>(i)] =
              std::current_exception();
        }
        {
          std::lock_guard<std::mutex> lock(mu_);
          slot->busy = false;
          --batch->pending;
        }
        done_cv_.notify_all();
      };
    }
    ++dispatches_;
  }
  job_cv_.notify_all();
  return batch;
}

void Executor::wait_batch(const std::shared_ptr<Batch>& batch) {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return batch->pending == 0; });
}

void Executor::worker_main(std::size_t slot_index) {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      Slot* slot = slots_[slot_index].get();
      job_cv_.wait(lock, [&] { return shutdown_ || slot->job != nullptr; });
      if (slot->job == nullptr) return;  // shutdown with nothing assigned
      job = std::move(slot->job);
      slot->job = nullptr;
    }
    job();
  }
}

void Executor::run_ranks(int n, const std::function<void(int)>& body,
                         int omp_threads) {
  FSI_CHECK(n > 0, "Executor: need at least one rank");
  const int dflt = [&] {
    std::lock_guard<std::mutex> lock(mu_);
    return threads_.empty() ? omp_get_max_threads() : default_omp_threads_;
  }();
  auto batch = dispatch(n, [&, dflt](int i) {
    omp_set_num_threads(omp_threads > 0 ? omp_threads : dflt);
    body(i);
  });
  wait_batch(batch);
  for (const std::exception_ptr& e : batch->errors)
    if (e) std::rethrow_exception(e);
}

GraphStats Executor::run_graph(const TaskGraph& graph, int workers,
                               const ExecOptions& options) {
  FSI_CHECK(workers > 0, "Executor: need at least one graph worker");
  GraphRunner runner(graph, workers, options);
  const int caller_omp = omp_get_max_threads();
  const int team = options.omp_threads > 0 ? options.omp_threads : caller_omp;
  std::shared_ptr<Batch> helpers;
  if (workers > 1) {
    helpers = dispatch(workers - 1, [&runner, team](int i) {
      omp_set_num_threads(team);
      // Worker 0 is the caller; helper i drives deque i + 1.  A node
      // exception is recorded inside the runner and rethrown by every
      // worker after the drain — the caller's rethrow below reports it, so
      // the helpers' copies are swallowed here.
      try {
        runner.run_worker(i + 1);
      } catch (...) {
      }
    });
  }
  if (options.omp_threads > 0) omp_set_num_threads(options.omp_threads);
  try {
    runner.run_worker(0);
  } catch (...) {
    if (helpers) wait_batch(helpers);
    if (options.omp_threads > 0) omp_set_num_threads(caller_omp);
    throw;
  }
  if (helpers) wait_batch(helpers);
  if (options.omp_threads > 0) omp_set_num_threads(caller_omp);
  return runner.stats();
}

int Executor::pool_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(slots_.size());
}

std::uint64_t Executor::dispatch_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dispatches_;
}

}  // namespace fsi::sched
