#include "fsi/tridiag/tridiag.hpp"

#include "fsi/dense/blas.hpp"

namespace fsi::tridiag {

BlockTridiagonalMatrix::BlockTridiagonalMatrix(index_t block_size,
                                               index_t num_blocks)
    : n_(block_size), l_(num_blocks) {
  FSI_CHECK(block_size > 0 && num_blocks > 0,
            "BlockTridiagonalMatrix: need positive dimensions");
  diag_.reserve(static_cast<std::size_t>(l_));
  for (index_t i = 0; i < l_; ++i) diag_.emplace_back(n_, n_);
  if (l_ > 1) {
    sub_.reserve(static_cast<std::size_t>(l_ - 1));
    super_.reserve(static_cast<std::size_t>(l_ - 1));
    for (index_t i = 1; i < l_; ++i) {
      sub_.emplace_back(n_, n_);
      super_.emplace_back(n_, n_);
    }
  }
}

BlockTridiagonalMatrix BlockTridiagonalMatrix::random(index_t block_size,
                                                      index_t num_blocks,
                                                      util::Rng& rng) {
  BlockTridiagonalMatrix t(block_size, num_blocks);
  auto fill = [&](MatrixView v, double scale) {
    for (index_t j = 0; j < v.cols(); ++j)
      for (index_t i = 0; i < v.rows(); ++i) v(i, j) = rng.uniform(-scale, scale);
  };
  for (index_t i = 0; i < num_blocks; ++i) {
    fill(t.d(i), 0.5);
    // Diagonal dominance across the block row keeps every Schur complement
    // of the recurrences nonsingular.
    for (index_t k = 0; k < block_size; ++k) t.d(i)(k, k) += 3.0;
  }
  for (index_t i = 1; i < num_blocks; ++i) {
    fill(t.a(i), 0.5);
    fill(t.c(i), 0.5);
  }
  return t;
}

MatrixView BlockTridiagonalMatrix::d(index_t i) {
  FSI_CHECK(i >= 0 && i < l_, "tridiag: diagonal index out of range");
  return diag_[static_cast<std::size_t>(i)].view();
}
ConstMatrixView BlockTridiagonalMatrix::d(index_t i) const {
  FSI_CHECK(i >= 0 && i < l_, "tridiag: diagonal index out of range");
  return diag_[static_cast<std::size_t>(i)].view();
}
MatrixView BlockTridiagonalMatrix::a(index_t i) {
  FSI_CHECK(i >= 1 && i < l_, "tridiag: sub-diagonal index out of range");
  return sub_[static_cast<std::size_t>(i - 1)].view();
}
ConstMatrixView BlockTridiagonalMatrix::a(index_t i) const {
  FSI_CHECK(i >= 1 && i < l_, "tridiag: sub-diagonal index out of range");
  return sub_[static_cast<std::size_t>(i - 1)].view();
}
MatrixView BlockTridiagonalMatrix::c(index_t i) {
  FSI_CHECK(i >= 1 && i < l_, "tridiag: super-diagonal index out of range");
  return super_[static_cast<std::size_t>(i - 1)].view();
}
ConstMatrixView BlockTridiagonalMatrix::c(index_t i) const {
  FSI_CHECK(i >= 1 && i < l_, "tridiag: super-diagonal index out of range");
  return super_[static_cast<std::size_t>(i - 1)].view();
}

Matrix BlockTridiagonalMatrix::to_dense() const {
  Matrix m(dim(), dim());
  for (index_t i = 0; i < l_; ++i) {
    dense::copy(d(i), m.block(i * n_, i * n_, n_, n_));
    if (i >= 1) {
      dense::copy(a(i), m.block(i * n_, (i - 1) * n_, n_, n_));
      dense::copy(c(i), m.block((i - 1) * n_, i * n_, n_, n_));
    }
  }
  return m;
}

TridiagSelectedInverse::TridiagSelectedInverse(const BlockTridiagonalMatrix& t)
    : t_(t) {
  const index_t l = t.num_blocks();
  const index_t n = t.block_size();
  gl_.reserve(static_cast<std::size_t>(l));
  gr_.resize(static_cast<std::size_t>(l));

  // Left-connected: gL_0 = D_0^-1; gL_i = (D_i - A_i gL_{i-1} C_i)^-1.
  for (index_t i = 0; i < l; ++i) {
    Matrix m = Matrix::copy_of(t.d(i));
    if (i > 0) {
      Matrix w = dense::matmul(gl_[static_cast<std::size_t>(i - 1)],
                               Matrix::copy_of(t.c(i)));
      dense::gemm(dense::Trans::No, dense::Trans::No, -1.0, t.a(i), w, 1.0, m);
    }
    gl_.push_back(dense::inverse(m));
  }

  // Right-connected: gR_{L-1} = D_{L-1}^-1; gR_i = (D_i - C_{i+1} gR_{i+1} A_{i+1})^-1.
  for (index_t i = l - 1; i >= 0; --i) {
    Matrix m = Matrix::copy_of(t.d(i));
    if (i + 1 < l) {
      Matrix w = dense::matmul(gr_[static_cast<std::size_t>(i + 1)],
                               Matrix::copy_of(t.a(i + 1)));
      dense::gemm(dense::Trans::No, dense::Trans::No, -1.0, t.c(i + 1), w, 1.0, m);
    }
    gr_[static_cast<std::size_t>(i)] = dense::inverse(m);
  }

  // Diagonal anchors: LU of D_i - A_i gL_{i-1} C_i - C_{i+1} gR_{i+1} A_{i+1}.
  diag_lu_.resize(static_cast<std::size_t>(l));
  for (index_t i = 0; i < l; ++i) {
    Matrix m = Matrix::copy_of(t.d(i));
    if (i > 0) {
      Matrix w = dense::matmul(gl_[static_cast<std::size_t>(i - 1)],
                               Matrix::copy_of(t.c(i)));
      dense::gemm(dense::Trans::No, dense::Trans::No, -1.0, t.a(i), w, 1.0, m);
    }
    if (i + 1 < l) {
      Matrix w = dense::matmul(gr_[static_cast<std::size_t>(i + 1)],
                               Matrix::copy_of(t.a(i + 1)));
      dense::gemm(dense::Trans::No, dense::Trans::No, -1.0, t.c(i + 1), w, 1.0, m);
    }
    diag_lu_[static_cast<std::size_t>(i)] =
        std::make_unique<dense::LuFactorization>(std::move(m));
  }

  // Move operators: up_op_[i] = -gL_{i-1} C_i, down_op_[i] = -gR_{i+1} A_{i+1}.
  up_op_.resize(static_cast<std::size_t>(l));
  down_op_.resize(static_cast<std::size_t>(l));
  for (index_t i = 1; i < l; ++i) {
    Matrix u(n, n);
    dense::gemm(dense::Trans::No, dense::Trans::No, -1.0,
                gl_[static_cast<std::size_t>(i - 1)], t.c(i), 0.0, u);
    up_op_[static_cast<std::size_t>(i)] = std::move(u);
  }
  for (index_t i = 0; i + 1 < l; ++i) {
    Matrix v(n, n);
    dense::gemm(dense::Trans::No, dense::Trans::No, -1.0,
                gr_[static_cast<std::size_t>(i + 1)], t.a(i + 1), 0.0, v);
    down_op_[static_cast<std::size_t>(i)] = std::move(v);
  }
}

Matrix TridiagSelectedInverse::diag_block(index_t i) const {
  FSI_CHECK(i >= 0 && i < num_blocks(), "diag_block: index out of range");
  Matrix g = Matrix::identity(block_size());
  diag_lu_[static_cast<std::size_t>(i)]->solve(g);
  return g;
}

Matrix TridiagSelectedInverse::down(index_t i, index_t j, ConstMatrixView g) const {
  FSI_CHECK(i + 1 < num_blocks(), "down: already at the last block row");
  FSI_CHECK(i >= j, "down: move is only valid at or below the diagonal");
  return dense::matmul(down_op_[static_cast<std::size_t>(i)], g);
}

Matrix TridiagSelectedInverse::up(index_t i, index_t j, ConstMatrixView g) const {
  FSI_CHECK(i > 0, "up: already at the first block row");
  FSI_CHECK(i <= j, "up: move is only valid at or above the diagonal");
  return dense::matmul(up_op_[static_cast<std::size_t>(i)], g);
}

Matrix TridiagSelectedInverse::block(index_t i, index_t j) const {
  FSI_CHECK(i >= 0 && i < num_blocks() && j >= 0 && j < num_blocks(),
            "block: index out of range");
  Matrix g = diag_block(j);
  for (index_t r = j; r < i; ++r) g = down(r, j, g);
  for (index_t r = j; r > i; --r) g = up(r, j, g);
  return g;
}

std::vector<Matrix> TridiagSelectedInverse::column(index_t j) const {
  FSI_CHECK(j >= 0 && j < num_blocks(), "column: index out of range");
  const index_t l = num_blocks();
  std::vector<Matrix> col(static_cast<std::size_t>(l));
  col[static_cast<std::size_t>(j)] = diag_block(j);
  for (index_t i = j; i + 1 < l; ++i)
    col[static_cast<std::size_t>(i + 1)] =
        down(i, j, col[static_cast<std::size_t>(i)]);
  for (index_t i = j; i > 0; --i)
    col[static_cast<std::size_t>(i - 1)] =
        up(i, j, col[static_cast<std::size_t>(i)]);
  return col;
}

Matrix invert_dense_lu(const BlockTridiagonalMatrix& t) {
  return dense::inverse(t.to_dense());
}

}  // namespace fsi::tridiag
