#include "fsi/qmc/multi_gf.hpp"

#include "fsi/mpi/minimpi.hpp"
#include "fsi/qmc/dqmc.hpp"
#include "fsi/selinv/fsi.hpp"
#include "fsi/util/flops.hpp"
#include "fsi/util/timer.hpp"

namespace fsi::qmc {

MultiGfResult run_parallel_fsi(const HubbardModel& model,
                               const MultiGfOptions& options) {
  const index_t l = model.params().l;
  const index_t n = model.num_sites();
  const index_t m_total = options.num_matrices;
  const int ranks = options.num_ranks;
  FSI_CHECK(ranks > 0, "run_parallel_fsi: need at least one rank");
  FSI_CHECK(m_total % ranks == 0,
            "run_parallel_fsi: num_matrices must be divisible by num_ranks");
  const index_t c = (options.cluster_size > 0) ? options.cluster_size
                                               : default_cluster_size(l);
  FSI_CHECK(l % c == 0, "run_parallel_fsi: cluster size must divide L");
  const index_t per_rank = m_total / ranks;
  const std::size_t field_len = static_cast<std::size_t>(l) * n;
  const index_t dmax = model.lattice().num_distance_classes();

  MultiGfResult result{Measurements(l, dmax), 0.0, 0};
  util::flops::reset();
  util::WallTimer timer;

  mpi::run(
      ranks,
      [&](mpi::Communicator& comm) {
        // --- On MPI_root: generate all HS fields, scatter them (Alg. 3:
        // "generate a set of random parameters h on the MPI root process
        // and scatter h to other MPI processes").
        std::vector<double> all_fields;
        if (comm.rank() == 0) {
          util::Rng root_rng(options.seed);
          all_fields.reserve(static_cast<std::size_t>(m_total) * field_len);
          for (index_t i = 0; i < m_total; ++i) {
            HsField f(l, n, root_rng);
            const auto buf = f.serialize();
            all_fields.insert(all_fields.end(), buf.begin(), buf.end());
          }
        }
        const std::vector<double> my_fields = comm.scatter(
            all_fields, static_cast<std::size_t>(per_rank) * field_len, 0);

        // --- On each MPI_process: per-matrix FSI + local measurements.
        Measurements local(l, dmax);
        util::Rng rank_rng(options.seed, static_cast<std::uint64_t>(comm.rank()) + 1);
        for (index_t it = 0; it < per_rank; ++it) {
          const HsField field = HsField::deserialize(
              l, n, my_fields.data() + static_cast<std::size_t>(it) * field_len,
              field_len);
          const index_t q =
              static_cast<index_t>(rank_rng.below(static_cast<std::uint64_t>(c)));
          const pcyclic::Selection sel(l, c, q);

          // Per spin: build M, CLS, BSOFI, then the three wrapping passes.
          struct SpinBlocks {
            pcyclic::SelectedInversion diag, rows, cols;
          };
          auto compute = [&](Spin spin) {
            const pcyclic::PCyclicMatrix mat = model.build_m(field, spin);
            const pcyclic::BlockOps ops(mat);
            const pcyclic::PCyclicMatrix reduced = selinv::cluster(mat, c, q);
            const dense::Matrix gtilde = bsofi::invert(reduced);
            return SpinBlocks{
                selinv::wrap(ops, gtilde, pcyclic::Pattern::AllDiagonals, sel),
                selinv::wrap(ops, gtilde, pcyclic::Pattern::Rows, sel),
                selinv::wrap(ops, gtilde, pcyclic::Pattern::Columns, sel)};
          };
          const SpinBlocks up = compute(Spin::Up);
          const SpinBlocks dn = compute(Spin::Down);

          // Local measurement quantities, computed in the OpenMP region.
          local.add_sample(1.0);
          accumulate_equal_time(model.lattice(), up.diag, dn.diag,
                                model.params().t, 1.0, true, local);
          if (options.measure_time_dependent)
            accumulate_spxx(model.lattice(), up.rows, up.cols, dn.rows, dn.cols,
                            1.0, true, local);
        }

        // --- MPI_Reduce of the local measurement quantities to the root.
        const std::vector<double> reduced =
            comm.reduce_sum(local.serialize(), 0);
        if (comm.rank() == 0)
          result.global = Measurements::deserialize(l, dmax, reduced);
      },
      options.omp_threads_per_rank);

  result.seconds = timer.seconds();
  result.flops = util::flops::total();
  return result;
}

}  // namespace fsi::qmc
