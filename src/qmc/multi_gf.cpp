#include "fsi/qmc/multi_gf.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "fsi/mpi/minimpi.hpp"
#include "fsi/qmc/dqmc.hpp"
#include "fsi/sched/scheduler.hpp"
#include "fsi/sched/workspace_pool.hpp"
#include "fsi/selinv/fsi.hpp"
#include "fsi/util/flops.hpp"
#include "fsi/util/timer.hpp"

namespace fsi::qmc {

namespace {

/// Tag for the (task index, measurement payload) records sent to the root.
constexpr int kTagTaskResults = 7;

}  // namespace

MultiGfResult run_parallel_fsi(const HubbardModel& model,
                               const MultiGfOptions& options) {
  const index_t l = model.params().l;
  const index_t n = model.num_sites();
  const index_t m_total = options.num_matrices;
  const int ranks = options.num_ranks;
  FSI_CHECK(ranks > 0, "run_parallel_fsi: need at least one rank");
  FSI_CHECK(m_total > 0, "run_parallel_fsi: need at least one matrix");
  const index_t c = (options.cluster_size > 0) ? options.cluster_size
                                               : default_cluster_size(l);
  FSI_CHECK(l % c == 0, "run_parallel_fsi: cluster size must divide L");
  const std::size_t field_len = static_cast<std::size_t>(l) * n;
  const index_t dmax = model.lattice().num_distance_classes();
  const std::size_t payload_len = Measurements::serialized_size(l, dmax);
  const std::size_t record_len = 1 + payload_len;  // [task index, payload]

  // Tasks [0, heavy_cutoff) run the full three-pattern wrap + SPXX; the rest
  // measure equal-time only.  With the contiguous static preload the heavy
  // front chunk lands on the low ranks — the skew the scheduler rebalances.
  const double frac = std::clamp(options.heavy_fraction, 0.0, 1.0);
  const index_t heavy_cutoff =
      options.measure_time_dependent
          ? static_cast<index_t>(
                std::ceil(frac * static_cast<double>(m_total)))
          : 0;

  sched::SchedulerOptions sched_opts = sched::SchedulerOptions::from_env();
  if (options.schedule == Schedule::Static) sched_opts.work_stealing = false;
  sched::BatchScheduler scheduler(ranks, static_cast<std::uint32_t>(m_total),
                                  sched_opts);

  auto& pool = sched::WorkspacePool::global();
  const std::uint64_t pool_hits0 = pool.hits();
  const std::uint64_t pool_misses0 = pool.misses();

  MultiGfResult result{Measurements(l, dmax), 0.0, 0, SchedSummary{}};
  util::flops::reset();
  util::WallTimer timer;

  mpi::run(
      ranks,
      [&](mpi::Communicator& comm) {
        // --- On MPI_root: generate all HS fields, broadcast them (Alg. 3
        // scatters the static shares; with task migration every rank may
        // need any field, so the field table is broadcast instead — the
        // same "parameters travel, matrices don't" trade as the paper's).
        std::vector<double> all_fields;
        if (comm.rank() == 0) {
          util::Rng root_rng(options.seed);
          all_fields.reserve(static_cast<std::size_t>(m_total) * field_len);
          for (index_t i = 0; i < m_total; ++i) {
            HsField f(l, n, root_rng);
            const auto buf = f.serialize();
            all_fields.insert(all_fields.end(), buf.begin(), buf.end());
          }
        }
        comm.bcast(all_fields, 0);

        // --- On each MPI_process: scheduler-driven FSI + local
        // measurements.  Everything inside the task body depends only on
        // (seed, task index), so the batch result is invariant under rank
        // count, thread count and steal order.
        std::vector<double> done;  // [task, payload] records, fixed stride
        scheduler.run_worker(comm.rank(), [&](std::uint32_t task) {
          const HsField field = HsField::deserialize(
              l, n,
              all_fields.data() + static_cast<std::size_t>(task) * field_len,
              field_len);
          util::Rng task_rng(options.seed,
                             static_cast<std::uint64_t>(task) + 1);
          const index_t q =
              static_cast<index_t>(task_rng.below(static_cast<std::uint64_t>(c)));
          const pcyclic::Selection sel(l, c, q);
          const bool heavy = static_cast<index_t>(task) < heavy_cutoff;

          // Per spin: build M, CLS, BSOFI, then the wrapping passes; all
          // intermediates cycle through the workspace pool.
          struct SpinBlocks {
            pcyclic::SelectedInversion diag, rows, cols;
          };
          auto compute = [&](Spin spin) {
            const pcyclic::PCyclicMatrix mat = model.build_m(field, spin);
            const pcyclic::BlockOps ops(mat);
            pcyclic::PCyclicMatrix reduced = selinv::cluster(mat, c, q);
            dense::Matrix gtilde = bsofi::invert(reduced);
            reduced.release_blocks();
            SpinBlocks blocks{
                selinv::wrap(ops, gtilde, pcyclic::Pattern::AllDiagonals, sel),
                pcyclic::SelectedInversion(pcyclic::Pattern::Rows,
                                           mat.block_size(), sel),
                pcyclic::SelectedInversion(pcyclic::Pattern::Columns,
                                           mat.block_size(), sel)};
            if (heavy) {
              blocks.rows =
                  selinv::wrap(ops, gtilde, pcyclic::Pattern::Rows, sel);
              blocks.cols =
                  selinv::wrap(ops, gtilde, pcyclic::Pattern::Columns, sel);
            }
            sched::recycle(std::move(gtilde));
            return blocks;
          };
          SpinBlocks up = compute(Spin::Up);
          SpinBlocks dn = compute(Spin::Down);

          // This task's measurement quantities.  Serial accumulation into a
          // per-task buffer keeps the floating-point summation order fixed.
          Measurements task_meas(l, dmax);
          task_meas.add_sample(1.0);
          accumulate_equal_time(model.lattice(), up.diag, dn.diag,
                                model.params().t, 1.0, false, task_meas);
          if (heavy)
            accumulate_spxx(model.lattice(), up.rows, up.cols, dn.rows,
                            dn.cols, 1.0, false, task_meas);
          for (SpinBlocks* s : {&up, &dn}) {
            s->diag.release_blocks();
            s->rows.release_blocks();
            s->cols.release_blocks();
          }

          done.push_back(static_cast<double>(task));
          const std::vector<double> payload = task_meas.serialize();
          done.insert(done.end(), payload.begin(), payload.end());
        });

        // --- Merge on the root in ascending task order (a deterministic
        // replacement for Alg. 3's MPI_Reduce: the records carry their task
        // index, so the summation order never depends on placement).
        if (comm.rank() == 0) {
          std::vector<std::vector<double>> payloads(
              static_cast<std::size_t>(m_total));
          std::vector<bool> seen(static_cast<std::size_t>(m_total), false);
          auto ingest = [&](const std::vector<double>& records) {
            FSI_CHECK(records.size() % record_len == 0,
                      "run_parallel_fsi: malformed task-result records");
            for (std::size_t off = 0; off < records.size();
                 off += record_len) {
              const auto task = static_cast<std::size_t>(records[off]);
              FSI_CHECK(task < static_cast<std::size_t>(m_total) &&
                            !seen[task],
                        "run_parallel_fsi: duplicate or out-of-range task");
              seen[task] = true;
              payloads[task].assign(records.begin() + off + 1,
                                    records.begin() + off + record_len);
            }
          };
          ingest(done);
          for (int r = 1; r < comm.size(); ++r)
            ingest(comm.recv(r, kTagTaskResults));
          Measurements global(l, dmax);
          for (index_t t = 0; t < m_total; ++t) {
            FSI_CHECK(seen[static_cast<std::size_t>(t)],
                      "run_parallel_fsi: task result missing");
            global.merge(Measurements::deserialize(
                l, dmax, payloads[static_cast<std::size_t>(t)]));
          }
          result.global = global;
        } else {
          comm.send(0, kTagTaskResults, std::move(done));
        }
      },
      options.omp_threads_per_rank);

  result.seconds = timer.seconds();
  result.flops = util::flops::total();
  result.sched.workers = scheduler.workers();
  result.sched.tasks = scheduler.tasks();
  result.sched.steal_batches = scheduler.total_steal_batches();
  result.sched.stolen_tasks = scheduler.total_stolen_tasks();
  result.sched.busy_max_seconds = scheduler.busy_max_seconds();
  result.sched.busy_mean_seconds = scheduler.busy_mean_seconds();
  result.sched.pool_hits = pool.hits() - pool_hits0;
  result.sched.pool_misses = pool.misses() - pool_misses0;
  return result;
}

}  // namespace fsi::qmc
