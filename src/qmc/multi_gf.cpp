#include "fsi/qmc/multi_gf.hpp"

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <memory>

#include "fsi/dense/norms.hpp"
#include "fsi/mpi/minimpi.hpp"
#include "fsi/obs/env.hpp"
#include "fsi/obs/health.hpp"
#include "fsi/obs/log.hpp"
#include "fsi/obs/metrics.hpp"
#include "fsi/obs/trace.hpp"
#include "fsi/qmc/dqmc.hpp"
#include "fsi/sched/executor.hpp"
#include "fsi/sched/scheduler.hpp"
#include "fsi/sched/workspace_pool.hpp"
#include "fsi/selinv/fsi.hpp"
#include "fsi/util/flops.hpp"
#include "fsi/util/timer.hpp"

namespace fsi::qmc {

namespace {

/// Tag for the (task index, measurement payload) records sent to the root.
constexpr int kTagTaskResults = 7;

bool use_fine_granularity(const MultiGfOptions& options) {
  switch (options.granularity) {
    case Granularity::Fine: return true;
    case Granularity::Coarse: return false;
    case Granularity::Auto: break;
  }
  return obs::env_flag("FSI_EXEC", true);
}

/// Fine-granularity path: generate the batch's fields and offsets from the
/// run seed — the same (seed)-keyed streams the coarse path broadcasts —
/// then lower everything onto the shared run_fsi_batch graph engine and
/// merge the per-task measurements in ascending task order.  Outputs are
/// disjoint per node and the merge is task-ordered, so the result is
/// bit-identical to the coarse path.
void run_fine_granularity(const HubbardModel& model,
                          const MultiGfOptions& options, index_t c,
                          index_t heavy_cutoff, MultiGfResult& result) {
  const index_t l = model.params().l;
  const index_t n = model.num_sites();
  const index_t m_total = options.num_matrices;
  const index_t dmax = model.lattice().num_distance_classes();

  // The caller stands in for the root rank: all fields come from one
  // sequential stream, each task's q from (seed, task index) alone.
  std::vector<FsiBatchTask> tasks;
  tasks.reserve(static_cast<std::size_t>(m_total));
  util::Rng root_rng(options.seed);
  for (index_t t = 0; t < m_total; ++t)
    tasks.push_back(FsiBatchTask{HsField(l, n, root_rng), 0, false});
  for (index_t t = 0; t < m_total; ++t) {
    util::Rng task_rng(options.seed, static_cast<std::uint64_t>(t) + 1);
    tasks[static_cast<std::size_t>(t)].q =
        static_cast<index_t>(task_rng.below(static_cast<std::uint64_t>(c)));
    tasks[static_cast<std::size_t>(t)].heavy = t < heavy_cutoff;
  }

  FsiBatchOptions batch_opts;
  batch_opts.num_workers = options.num_ranks;
  batch_opts.omp_threads_per_worker = options.omp_threads_per_rank;
  batch_opts.cluster_size = c;
  batch_opts.schedule = options.schedule;
  const std::vector<Measurements> per_task =
      run_fsi_batch(model, tasks, batch_opts, &result.sched);

  Measurements global(l, dmax);
  for (const Measurements& m : per_task) global.merge(m);
  result.global = global;
}

}  // namespace

std::vector<Measurements> run_fsi_batch(const HubbardModel& model,
                                        const std::vector<FsiBatchTask>& tasks,
                                        const FsiBatchOptions& options,
                                        SchedSummary* sched_out) {
  const index_t l = model.params().l;
  const index_t n = model.num_sites();
  const auto m_total = static_cast<index_t>(tasks.size());
  FSI_CHECK(m_total > 0, "run_fsi_batch: need at least one task");
  const index_t c = (options.cluster_size > 0) ? options.cluster_size
                                               : default_cluster_size(l);
  FSI_CHECK(l % c == 0, "run_fsi_batch: cluster size must divide L");
  for (const FsiBatchTask& task : tasks) {
    FSI_CHECK(task.field.num_slices() == l && task.field.num_sites() == n,
              "run_fsi_batch: field dimensions must match the model");
    FSI_CHECK(task.q >= 0 && task.q < c, "run_fsi_batch: q out of [0, c)");
  }
  int workers = options.num_workers > 0 ? options.num_workers
                                        : omp_get_max_threads();
  if (workers < 1) workers = 1;
  const index_t dmax = model.lattice().num_distance_classes();

  // Static owner of each task: the BatchScheduler contiguous preload split,
  // so with stealing disabled the placement is exactly the static baseline;
  // with stealing on, idle workers pick up a straggler task's remaining
  // seed walks, which whole-matrix scheduling could never migrate.
  std::vector<int> owner(static_cast<std::size_t>(m_total), 0);
  for (int w = 0; w < workers; ++w) {
    const auto lo = static_cast<index_t>(
        static_cast<std::uint64_t>(m_total) * static_cast<std::uint64_t>(w) /
        static_cast<std::uint64_t>(workers));
    const auto hi = static_cast<index_t>(
        static_cast<std::uint64_t>(m_total) * (static_cast<std::uint64_t>(w) + 1) /
        static_cast<std::uint64_t>(workers));
    for (index_t t = lo; t < hi; ++t) owner[static_cast<std::size_t>(t)] = w;
  }

  const bool mixed = options.precision == Precision::Mixed;
  // Mixed-task telemetry, accumulated by the gate nodes.
  std::atomic<std::uint32_t> mixed_tasks{0};
  std::atomic<std::uint32_t> mixed_fallbacks{0};

  /// Per-spin node storage; bodies of different nodes write disjoint fields.
  struct SpinWork {
    std::unique_ptr<pcyclic::PCyclicMatrix> mat;  ///< set by the Build node
    std::unique_ptr<pcyclic::BlockOps> ops;       ///< set by the Build node
    std::unique_ptr<pcyclic::BlockOpsF> ops_f;    ///< Build node, mixed only
    std::vector<dense::Matrix> cls_blocks;        ///< one per Cls node
    dense::Matrix gtilde;                         ///< set by the Bsofi node
    dense::MatrixF gtilde_f;                      ///< Bsofi node, mixed only
    double cond1 = 0.0;                           ///< Bsofi node, mixed only
    pcyclic::SelectedInversion diag, rows, cols;  ///< filled by Wrap nodes
    SpinWork(index_t nn, const pcyclic::Selection& sel)
        : diag(pcyclic::Pattern::AllDiagonals, nn, sel),
          rows(pcyclic::Pattern::Rows, nn, sel),
          cols(pcyclic::Pattern::Columns, nn, sel) {}
  };
  struct TaskWork {
    pcyclic::Selection sel;
    bool heavy;
    SpinWork up, dn;
    TaskWork(const pcyclic::Selection& s, bool h, index_t nn)
        : sel(s), heavy(h), up(nn, s), dn(nn, s) {}
  };

  std::vector<std::unique_ptr<TaskWork>> work;
  work.reserve(static_cast<std::size_t>(m_total));
  // One result slot per task: the Measure nodes write disjoint entries, so
  // the per-task accumulation order is fixed and worker-count independent.
  std::vector<Measurements> results(static_cast<std::size_t>(m_total),
                                    Measurements(l, dmax));

  sched::TaskGraph graph;
  for (index_t t = 0; t < m_total; ++t) {
    const FsiBatchTask& task = tasks[static_cast<std::size_t>(t)];
    const pcyclic::Selection sel(l, c, task.q);
    work.push_back(std::make_unique<TaskWork>(sel, task.heavy, n));
    TaskWork* tw = work.back().get();
    const int hint = owner[static_cast<std::size_t>(t)];
    const index_t b = sel.b();
    const index_t q = task.q;

    std::vector<sched::NodeId> fences;  // all wrap nodes of both spins
    for (SpinWork* sw : {&tw->up, &tw->dn}) {
      const Spin spin = (sw == &tw->up) ? Spin::Up : Spin::Down;
      const sched::NodeId build = graph.add_node(
          [&model, &task, sw, spin, mixed](int) {
            FSI_OBS_SPAN("qmc.build_m");
            sw->mat = std::make_unique<pcyclic::PCyclicMatrix>(
                model.build_m(task.field, spin));
            // Mixed tasks factor fp32; the fp64 BlockOps is built lazily by
            // the gate node only when the task falls back.
            if (mixed)
              sw->ops_f = std::make_unique<pcyclic::BlockOpsF>(*sw->mat);
            else
              sw->ops = std::make_unique<pcyclic::BlockOps>(*sw->mat);
          },
          sched::Stage::Build, hint);

      sw->cls_blocks.assign(static_cast<std::size_t>(b), dense::Matrix());
      std::vector<sched::NodeId> cls_nodes;
      cls_nodes.reserve(static_cast<std::size_t>(b));
      for (index_t i = 0; i < b; ++i) {
        const sched::NodeId id = graph.add_node(
            [sw, c, q, i, mixed](int) {
              FSI_OBS_SPAN("fsi.cls");
              dense::Matrix& slot = sw->cls_blocks[static_cast<std::size_t>(i)];
              if (mixed) {
                dense::MatrixF prod =
                    selinv::cluster_product_f(*sw->mat, c, q, i);
                slot = sched::acquire(prod.rows(), prod.cols());
                dense::promote(prod, slot.view());
                sched::recycle(std::move(prod));
              } else {
                slot = selinv::cluster_product(*sw->mat, c, q, i);
              }
            },
            sched::Stage::Cls, hint);
        graph.add_edge(build, id);
        cls_nodes.push_back(id);
      }
      const sched::NodeId bsofi_node = graph.add_node(
          [sw, mixed](int) {
            FSI_OBS_SPAN("fsi.bsofi");
            pcyclic::PCyclicMatrix reduced(std::move(sw->cls_blocks));
            sw->gtilde = bsofi::invert(reduced);
            if (mixed)
              sw->cond1 = selinv::reduced_cond1(reduced, sw->gtilde);
            reduced.release_blocks();
            if (mixed) {
              sw->gtilde_f =
                  sched::acquire_f(sw->gtilde.rows(), sw->gtilde.cols());
              dense::demote(sw->gtilde, sw->gtilde_f.view());
            }
          },
          sched::Stage::Bsofi, hint);
      for (sched::NodeId id : cls_nodes) graph.add_edge(id, bsofi_node);

      auto emit_wrap = [&](pcyclic::Pattern pat,
                           pcyclic::SelectedInversion* out) {
        const index_t seeds = selinv::num_wrap_seeds(pat, b);
        for (index_t s = 0; s < seeds; ++s) {
          const sched::NodeId id = graph.add_node(
              [sw, tw, pat, out, s, mixed](int) {
                FSI_OBS_SPAN("fsi.wrap");
                if (mixed)
                  selinv::wrap_seed_f(*sw->ops_f, sw->gtilde_f, pat, tw->sel,
                                      *out, s);
                else
                  selinv::wrap_seed(*sw->ops, sw->gtilde, pat, tw->sel, *out,
                                    s);
              },
              sched::Stage::Wrap, hint);
          graph.add_edge(bsofi_node, id);
          fences.push_back(id);
        }
      };
      emit_wrap(pcyclic::Pattern::AllDiagonals, &sw->diag);
      if (tw->heavy) {
        emit_wrap(pcyclic::Pattern::Rows, &sw->rows);
        emit_wrap(pcyclic::Pattern::Columns, &sw->cols);
      }
    }

    // Mixed tasks get a gate node between the wrap fences and the
    // measurement: check cond1, finiteness and (heavy tasks) the probed
    // residual of both spins against selinv::mixed_gate(); on a trip,
    // recompute the whole task serially in fp64 in-node, so the measurement
    // downstream always consumes gated data.
    sched::NodeId gate_node = 0;
    if (mixed) {
      gate_node = graph.add_node(
          [tw, t, c, q, &mixed_tasks, &mixed_fallbacks](int) {
            FSI_OBS_SPAN("fsi.mixed_gate");
            mixed_tasks.fetch_add(1, std::memory_order_relaxed);
            obs::metrics::add(obs::metrics::Counter::MixedRuns, 1);
            const selinv::MixedGate gate = selinv::mixed_gate();
            const char* reason = nullptr;
            for (SpinWork* s : {&tw->up, &tw->dn}) {
              if (!(s->cond1 <= gate.cond_max)) reason = "cond1";
              else if (!dense::all_finite(s->gtilde.view()))
                reason = "nonfinite";
              else if (tw->heavy) {
                for (const pcyclic::SelectedInversion* out :
                     {&s->rows, &s->cols}) {
                  const double r = selinv::probe_residual(
                      *s->mat, *out, out->pattern(), tw->sel);
                  if (r >= 0.0) obs::health::record_residual(r);
                  if (!(r <= gate.resid_max)) reason = "residual";
                }
              }
              if (reason != nullptr) break;
            }
            // fp32 context is spent either way.
            for (SpinWork* s : {&tw->up, &tw->dn}) {
              sched::recycle(std::move(s->gtilde_f));
              s->ops_f.reset();
            }
            if (reason == nullptr) return;
            mixed_fallbacks.fetch_add(1, std::memory_order_relaxed);
            obs::metrics::add(obs::metrics::Counter::MixedFallbacks, 1);
            FSI_LOG_WARN("qmc.mixed_fallback", {"task", t}, {"reason", reason},
                         {"resid_max", gate.resid_max},
                         {"cond_max", gate.cond_max});
            for (SpinWork* s : {&tw->up, &tw->dn}) {
              s->ops = std::make_unique<pcyclic::BlockOps>(*s->mat);
              pcyclic::PCyclicMatrix reduced =
                  selinv::cluster(*s->mat, c, q, false);
              sched::recycle(std::move(s->gtilde));
              s->gtilde = bsofi::invert(reduced);
              reduced.release_blocks();
              s->diag.release_blocks();
              s->diag = selinv::wrap(*s->ops, s->gtilde,
                                     pcyclic::Pattern::AllDiagonals, tw->sel,
                                     false);
              if (tw->heavy) {
                s->rows.release_blocks();
                s->rows = selinv::wrap(*s->ops, s->gtilde,
                                       pcyclic::Pattern::Rows, tw->sel, false);
                s->cols.release_blocks();
                s->cols = selinv::wrap(*s->ops, s->gtilde,
                                       pcyclic::Pattern::Columns, tw->sel,
                                       false);
              }
            }
          },
          sched::Stage::Measure, hint);
      for (sched::NodeId id : fences) graph.add_edge(id, gate_node);
    }

    // The per-task Measure node: serial accumulation into this task's
    // result slot (fixed floating-point order), then recycle/release
    // everything back to the workspace pool.
    const sched::NodeId measure = graph.add_node(
        [&model, &results, tw, t](int) {
          FSI_OBS_SPAN("qmc.measure");
          sched::recycle(std::move(tw->up.gtilde));
          sched::recycle(std::move(tw->dn.gtilde));
          Measurements& task_meas = results[static_cast<std::size_t>(t)];
          task_meas.add_sample(1.0);
          accumulate_equal_time(model.lattice(), tw->up.diag, tw->dn.diag,
                                model.params().t, 1.0, false, task_meas);
          if (tw->heavy)
            accumulate_spxx(model.lattice(), tw->up.rows, tw->up.cols,
                            tw->dn.rows, tw->dn.cols, 1.0, false, task_meas);
          for (SpinWork* s : {&tw->up, &tw->dn}) {
            s->diag.release_blocks();
            s->rows.release_blocks();
            s->cols.release_blocks();
            s->ops.reset();
            s->mat.reset();
          }
        },
        sched::Stage::Measure, hint);
    if (mixed)
      graph.add_edge(gate_node, measure);
    else
      for (sched::NodeId id : fences) graph.add_edge(id, measure);
  }

  sched::ExecOptions exec_opts = sched::ExecOptions::from_env();
  if (options.schedule == Schedule::Static) exec_opts.work_stealing = false;
  exec_opts.omp_threads = options.omp_threads_per_worker;
  const sched::GraphStats gs =
      sched::Executor::instance().run_graph(graph, workers, exec_opts);

  if (sched_out != nullptr) {
    sched_out->workers = workers;
    sched_out->tasks = static_cast<std::uint32_t>(m_total);
    sched_out->steal_batches = gs.steal_batches;
    sched_out->stolen_tasks = gs.stolen_nodes;
    sched_out->busy_max_seconds = gs.busy_max_seconds;
    sched_out->busy_mean_seconds = gs.busy_mean_seconds;
    sched_out->busy_seconds = gs.busy_seconds;
    sched_out->graph_nodes = gs.nodes;
    sched_out->critical_path_seconds = gs.critical_path_seconds;
    sched_out->ready_depth_mean = gs.ready_depth_mean;
    sched_out->stage_build_seconds = gs.of(sched::Stage::Build).busy_seconds;
    sched_out->stage_cls_seconds = gs.of(sched::Stage::Cls).busy_seconds;
    sched_out->stage_bsofi_seconds = gs.of(sched::Stage::Bsofi).busy_seconds;
    sched_out->stage_wrap_seconds = gs.of(sched::Stage::Wrap).busy_seconds;
    sched_out->stage_measure_seconds =
        gs.of(sched::Stage::Measure).busy_seconds;
    sched_out->mixed_tasks = mixed_tasks.load(std::memory_order_relaxed);
    sched_out->mixed_fallbacks =
        mixed_fallbacks.load(std::memory_order_relaxed);
  }
  return results;
}

MultiGfResult run_parallel_fsi(const HubbardModel& model,
                               const MultiGfOptions& options) {
  const index_t l = model.params().l;
  const index_t n = model.num_sites();
  const index_t m_total = options.num_matrices;
  const int ranks = options.num_ranks;
  FSI_CHECK(ranks > 0, "run_parallel_fsi: need at least one rank");
  FSI_CHECK(m_total > 0, "run_parallel_fsi: need at least one matrix");
  const index_t c = (options.cluster_size > 0) ? options.cluster_size
                                               : default_cluster_size(l);
  FSI_CHECK(l % c == 0, "run_parallel_fsi: cluster size must divide L");
  const std::size_t field_len = static_cast<std::size_t>(l) * n;
  const index_t dmax = model.lattice().num_distance_classes();
  const std::size_t payload_len = Measurements::serialized_size(l, dmax);
  const std::size_t record_len = 1 + payload_len;  // [task index, payload]

  // Tasks [0, heavy_cutoff) run the full three-pattern wrap + SPXX; the rest
  // measure equal-time only.  With the contiguous static preload the heavy
  // front chunk lands on the low ranks — the skew the scheduler rebalances.
  const double frac = std::clamp(options.heavy_fraction, 0.0, 1.0);
  const index_t heavy_cutoff =
      options.measure_time_dependent
          ? static_cast<index_t>(
                std::ceil(frac * static_cast<double>(m_total)))
          : 0;

  auto& pool = sched::WorkspacePool::global();
  const std::uint64_t pool_hits0 = pool.hits();
  const std::uint64_t pool_misses0 = pool.misses();

  MultiGfResult result{Measurements(l, dmax), 0.0, 0, SchedSummary{}};
  util::flops::reset();
  util::WallTimer timer;

  if (use_fine_granularity(options)) {
    run_fine_granularity(model, options, c, heavy_cutoff, result);
    result.seconds = timer.seconds();
    result.flops = util::flops::total();
    result.sched.pool_hits = pool.hits() - pool_hits0;
    result.sched.pool_misses = pool.misses() - pool_misses0;
    return result;
  }

  sched::SchedulerOptions sched_opts = sched::SchedulerOptions::from_env();
  if (options.schedule == Schedule::Static) sched_opts.work_stealing = false;
  sched::BatchScheduler scheduler(ranks, static_cast<std::uint32_t>(m_total),
                                  sched_opts);

  mpi::run(
      ranks,
      [&](mpi::Communicator& comm) {
        // --- On MPI_root: generate all HS fields, broadcast them (Alg. 3
        // scatters the static shares; with task migration every rank may
        // need any field, so the field table is broadcast instead — the
        // same "parameters travel, matrices don't" trade as the paper's).
        std::vector<double> all_fields;
        if (comm.rank() == 0) {
          util::Rng root_rng(options.seed);
          all_fields.reserve(static_cast<std::size_t>(m_total) * field_len);
          for (index_t i = 0; i < m_total; ++i) {
            HsField f(l, n, root_rng);
            const auto buf = f.serialize();
            all_fields.insert(all_fields.end(), buf.begin(), buf.end());
          }
        }
        comm.bcast(all_fields, 0);

        // --- On each MPI_process: scheduler-driven FSI + local
        // measurements.  Everything inside the task body depends only on
        // (seed, task index), so the batch result is invariant under rank
        // count, thread count and steal order.
        std::vector<double> done;  // [task, payload] records, fixed stride
        scheduler.run_worker(comm.rank(), [&](std::uint32_t task) {
          const HsField field = HsField::deserialize(
              l, n,
              all_fields.data() + static_cast<std::size_t>(task) * field_len,
              field_len);
          util::Rng task_rng(options.seed,
                             static_cast<std::uint64_t>(task) + 1);
          const index_t q =
              static_cast<index_t>(task_rng.below(static_cast<std::uint64_t>(c)));
          const pcyclic::Selection sel(l, c, q);
          const bool heavy = static_cast<index_t>(task) < heavy_cutoff;

          // Per spin: build M, CLS, BSOFI, then the wrapping passes; all
          // intermediates cycle through the workspace pool.
          struct SpinBlocks {
            pcyclic::SelectedInversion diag, rows, cols;
          };
          auto compute = [&](Spin spin) {
            const pcyclic::PCyclicMatrix mat = model.build_m(field, spin);
            const pcyclic::BlockOps ops(mat);
            pcyclic::PCyclicMatrix reduced = selinv::cluster(mat, c, q);
            dense::Matrix gtilde = bsofi::invert(reduced);
            reduced.release_blocks();
            SpinBlocks blocks{
                selinv::wrap(ops, gtilde, pcyclic::Pattern::AllDiagonals, sel),
                pcyclic::SelectedInversion(pcyclic::Pattern::Rows,
                                           mat.block_size(), sel),
                pcyclic::SelectedInversion(pcyclic::Pattern::Columns,
                                           mat.block_size(), sel)};
            if (heavy) {
              blocks.rows =
                  selinv::wrap(ops, gtilde, pcyclic::Pattern::Rows, sel);
              blocks.cols =
                  selinv::wrap(ops, gtilde, pcyclic::Pattern::Columns, sel);
            }
            sched::recycle(std::move(gtilde));
            return blocks;
          };
          SpinBlocks up = compute(Spin::Up);
          SpinBlocks dn = compute(Spin::Down);

          // This task's measurement quantities.  Serial accumulation into a
          // per-task buffer keeps the floating-point summation order fixed.
          Measurements task_meas(l, dmax);
          task_meas.add_sample(1.0);
          accumulate_equal_time(model.lattice(), up.diag, dn.diag,
                                model.params().t, 1.0, false, task_meas);
          if (heavy)
            accumulate_spxx(model.lattice(), up.rows, up.cols, dn.rows,
                            dn.cols, 1.0, false, task_meas);
          for (SpinBlocks* s : {&up, &dn}) {
            s->diag.release_blocks();
            s->rows.release_blocks();
            s->cols.release_blocks();
          }

          done.push_back(static_cast<double>(task));
          const std::vector<double> payload = task_meas.serialize();
          done.insert(done.end(), payload.begin(), payload.end());
        });

        // --- Merge on the root in ascending task order (a deterministic
        // replacement for Alg. 3's MPI_Reduce: the records carry their task
        // index, so the summation order never depends on placement).
        if (comm.rank() == 0) {
          std::vector<std::vector<double>> payloads(
              static_cast<std::size_t>(m_total));
          std::vector<bool> seen(static_cast<std::size_t>(m_total), false);
          auto ingest = [&](const std::vector<double>& records) {
            FSI_CHECK(records.size() % record_len == 0,
                      "run_parallel_fsi: malformed task-result records");
            for (std::size_t off = 0; off < records.size();
                 off += record_len) {
              const auto task = static_cast<std::size_t>(records[off]);
              FSI_CHECK(task < static_cast<std::size_t>(m_total) &&
                            !seen[task],
                        "run_parallel_fsi: duplicate or out-of-range task");
              seen[task] = true;
              payloads[task].assign(records.begin() + off + 1,
                                    records.begin() + off + record_len);
            }
          };
          ingest(done);
          for (int r = 1; r < comm.size(); ++r)
            ingest(comm.recv(r, kTagTaskResults));
          Measurements global(l, dmax);
          for (index_t t = 0; t < m_total; ++t) {
            FSI_CHECK(seen[static_cast<std::size_t>(t)],
                      "run_parallel_fsi: task result missing");
            global.merge(Measurements::deserialize(
                l, dmax, payloads[static_cast<std::size_t>(t)]));
          }
          result.global = global;
        } else {
          comm.send(0, kTagTaskResults, std::move(done));
        }
      },
      options.omp_threads_per_rank);

  result.seconds = timer.seconds();
  result.flops = util::flops::total();
  result.sched.workers = scheduler.workers();
  result.sched.tasks = scheduler.tasks();
  result.sched.steal_batches = scheduler.total_steal_batches();
  result.sched.stolen_tasks = scheduler.total_stolen_tasks();
  result.sched.busy_max_seconds = scheduler.busy_max_seconds();
  result.sched.busy_mean_seconds = scheduler.busy_mean_seconds();
  result.sched.busy_seconds = scheduler.busy_seconds();
  result.sched.pool_hits = pool.hits() - pool_hits0;
  result.sched.pool_misses = pool.misses() - pool_misses0;
  return result;
}

}  // namespace fsi::qmc
