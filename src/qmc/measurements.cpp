#include "fsi/qmc/measurements.hpp"

#include <omp.h>

#include "fsi/util/check.hpp"

namespace fsi::qmc {

Measurements::Measurements(index_t l, index_t dmax) : l_(l), dmax_(dmax) {
  FSI_CHECK(l > 0 && dmax > 0, "Measurements: need positive dimensions");
  spxx_.assign(static_cast<std::size_t>(l) * dmax, 0.0);
}

void Measurements::add_sample(double sign) {
  n_samples_ += 1.0;
  sign_sum_ += sign;
}

void Measurements::add_density(double up, double down) {
  den_up_ += up;
  den_dn_ += down;
}

void Measurements::add_double_occupancy(double v) { docc_ += v; }

void Measurements::add_kinetic_energy(double v) { kinetic_ += v; }

void Measurements::add_af_structure_factor(double v) { af_ += v; }

void Measurements::add_pair_susceptibility(double v) { pair_ += v; }

void Measurements::add_spxx(index_t tau, index_t d, double v) {
  FSI_ASSERT(tau >= 0 && tau < l_ && d >= 0 && d < dmax_);
  spxx_[static_cast<std::size_t>(tau) * dmax_ + d] += v;
}

void Measurements::merge(const Measurements& other) {
  FSI_CHECK(other.l_ == l_ && other.dmax_ == dmax_,
            "Measurements::merge: shape mismatch");
  n_samples_ += other.n_samples_;
  sign_sum_ += other.sign_sum_;
  den_up_ += other.den_up_;
  den_dn_ += other.den_dn_;
  docc_ += other.docc_;
  kinetic_ += other.kinetic_;
  af_ += other.af_;
  pair_ += other.pair_;
  for (std::size_t i = 0; i < spxx_.size(); ++i) spxx_[i] += other.spxx_[i];
}

namespace {
double safe_div(double num, double den) { return den == 0.0 ? 0.0 : num / den; }
}  // namespace

double Measurements::avg_sign() const { return safe_div(sign_sum_, n_samples_); }
double Measurements::density_up() const { return safe_div(den_up_, sign_sum_); }
double Measurements::density_down() const { return safe_div(den_dn_, sign_sum_); }
double Measurements::density() const { return density_up() + density_down(); }
double Measurements::double_occupancy() const { return safe_div(docc_, sign_sum_); }
double Measurements::kinetic_energy() const { return safe_div(kinetic_, sign_sum_); }
double Measurements::af_structure_factor() const { return safe_div(af_, sign_sum_); }
double Measurements::pair_susceptibility() const { return safe_div(pair_, sign_sum_); }
double Measurements::local_moment() const {
  return density_up() + density_down() - 2.0 * double_occupancy();
}

double Measurements::spxx(index_t tau, index_t d) const {
  FSI_CHECK(tau >= 0 && tau < l_ && d >= 0 && d < dmax_,
            "spxx: index out of range");
  return safe_div(spxx_[static_cast<std::size_t>(tau) * dmax_ + d], sign_sum_);
}

std::size_t Measurements::serialized_size(index_t l, index_t dmax) {
  return 8u + static_cast<std::size_t>(l) * static_cast<std::size_t>(dmax);
}

std::vector<double> Measurements::serialize() const {
  std::vector<double> buf;
  buf.reserve(serialized_size(l_, dmax_));
  buf.push_back(n_samples_);
  buf.push_back(sign_sum_);
  buf.push_back(den_up_);
  buf.push_back(den_dn_);
  buf.push_back(docc_);
  buf.push_back(kinetic_);
  buf.push_back(af_);
  buf.push_back(pair_);
  buf.insert(buf.end(), spxx_.begin(), spxx_.end());
  return buf;
}

Measurements Measurements::deserialize(index_t l, index_t dmax,
                                       const std::vector<double>& buf) {
  FSI_CHECK(buf.size() == serialized_size(l, dmax),
            "Measurements::deserialize: buffer size mismatch");
  Measurements m(l, dmax);
  m.n_samples_ = buf[0];
  m.sign_sum_ = buf[1];
  m.den_up_ = buf[2];
  m.den_dn_ = buf[3];
  m.docc_ = buf[4];
  m.kinetic_ = buf[5];
  m.af_ = buf[6];
  m.pair_ = buf[7];
  std::copy(buf.begin() + 8, buf.end(), m.spxx_.begin());
  return m;
}

void accumulate_equal_time(const Lattice& lat,
                           const pcyclic::SelectedInversion& g_up,
                           const pcyclic::SelectedInversion& g_dn, double t_hop,
                           double sign, bool parallel, Measurements& out) {
  const index_t n = lat.num_sites();
  FSI_CHECK(g_up.block_size() == n && g_dn.block_size() == n,
            "accumulate_equal_time: block size must equal the site count");
  const auto& keys = g_up.keys();
  FSI_CHECK(!keys.empty(), "accumulate_equal_time: no diagonal blocks");

  double den_up = 0.0, den_dn = 0.0, docc = 0.0, kin = 0.0, af = 0.0;
  const index_t nk = static_cast<index_t>(keys.size());

#pragma omp parallel for reduction(+ : den_up, den_dn, docc, kin, af) \
    schedule(static) if (parallel)
  for (index_t ki = 0; ki < nk; ++ki) {
    const auto [k, l] = keys[static_cast<std::size_t>(ki)];
    FSI_ASSERT(k == l);
    const dense::Matrix& gu = g_up.at(k, l);
    const dense::Matrix& gd = g_dn.at(k, l);
    for (index_t i = 0; i < n; ++i) {
      const double nu_i = 1.0 - gu(i, i);
      const double nd_i = 1.0 - gd(i, i);
      den_up += nu_i;
      den_dn += nd_i;
      docc += nu_i * nd_i;
      // <c_i^+ c_j> = -G(j, i) for i != j; kinetic sums both spins over
      // the directed neighbour pairs.
      for (index_t j : lat.neighbors(i)) kin += t_hop * (gu(j, i) + gd(j, i));
      // Staggered spin-spin correlation, Wick-decomposed per spin species:
      // <m_i m_j> = (n_i^u - n_i^d)(n_j^u - n_j^d)
      //           + sum_s (delta_ij - G^s(j,i)) G^s(i,j).
      const double m_i = nu_i - nd_i;
      for (index_t j = 0; j < n; ++j) {
        const double m_j = (1.0 - gu(j, j)) - (1.0 - gd(j, j));
        const double delta = (i == j) ? 1.0 : 0.0;
        const double wick = (delta - gu(j, i)) * gu(i, j) +
                            (delta - gd(j, i)) * gd(i, j);
        af += lat.parity(i) * lat.parity(j) * (m_i * m_j + wick);
      }
    }
  }

  // Average over the diagonal blocks used and the sites (per-site values).
  const double norm = static_cast<double>(nk) * static_cast<double>(n);
  out.add_density(sign * den_up / norm, sign * den_dn / norm);
  out.add_double_occupancy(sign * docc / norm);
  out.add_kinetic_energy(sign * kin / norm);
  // S_AF is intensive per site but sums over all pairs: normalise by N and
  // the number of diagonal blocks used.
  out.add_af_structure_factor(sign * af / norm);
}

void accumulate_pair_susceptibility(const Lattice& lat,
                                    const pcyclic::SelectedInversion& rows_up,
                                    const pcyclic::SelectedInversion& rows_dn,
                                    double dtau, double sign, bool parallel,
                                    Measurements& out) {
  const index_t n = lat.num_sites();
  const index_t l = rows_up.selection().l_total;
  FSI_CHECK(rows_up.pattern() == pcyclic::Pattern::Rows &&
                rows_dn.pattern() == pcyclic::Pattern::Rows,
            "accumulate_pair_susceptibility: needs Rows patterns");
  FSI_CHECK(rows_up.selection().q == rows_dn.selection().q,
            "accumulate_pair_susceptibility: selections must match");
  const auto selected = rows_up.selection().indices();
  const double c_tau = static_cast<double>(selected.size());

  double total = 0.0;
#pragma omp parallel for collapse(2) reduction(+ : total) \
    schedule(dynamic) if (parallel)
  for (std::size_t ks = 0; ks < selected.size(); ++ks) {
    for (index_t ell = 0; ell < l; ++ell) {
      const index_t k = selected[ks];
      const dense::Matrix& gu = rows_up.at(k, ell);
      const dense::Matrix& gd = rows_dn.at(k, ell);
      double s = 0.0;
      for (index_t j = 0; j < n; ++j)
        for (index_t i = 0; i < n; ++i) s += gu(i, j) * gd(i, j);
      total += s;
    }
  }
  out.add_pair_susceptibility(sign * dtau * total /
                              (static_cast<double>(n) * c_tau));
}

void accumulate_spxx(const Lattice& lat,
                     const pcyclic::SelectedInversion& rows_up,
                     const pcyclic::SelectedInversion& cols_up,
                     const pcyclic::SelectedInversion& rows_dn,
                     const pcyclic::SelectedInversion& cols_dn, double sign,
                     bool parallel, Measurements& out) {
  const index_t n = lat.num_sites();
  const index_t l = rows_up.selection().l_total;
  const index_t dmax = lat.num_distance_classes();
  FSI_CHECK(rows_up.pattern() == pcyclic::Pattern::Rows &&
                rows_dn.pattern() == pcyclic::Pattern::Rows,
            "accumulate_spxx: rows_* must be Rows patterns");
  FSI_CHECK(cols_up.pattern() == pcyclic::Pattern::Columns &&
                cols_dn.pattern() == pcyclic::Pattern::Columns,
            "accumulate_spxx: cols_* must be Columns patterns");
  FSI_CHECK(rows_up.selection().q == cols_up.selection().q &&
                rows_up.selection().q == rows_dn.selection().q &&
                rows_up.selection().q == cols_dn.selection().q,
            "accumulate_spxx: all patterns must share one Selection");

  const auto selected = rows_up.selection().indices();
  const double c_tau = static_cast<double>(selected.size());  // C(tau) = b
  const auto& class_sizes = lat.distance_class_sizes();

  // Per-thread local accumulators, merged under a critical section — the
  // paper's remedy for the concurrent-writing hazard of measurement sums
  // ("the reason to create local measurements for each thread", Sec. III-B).
  Measurements total(l, dmax);

#pragma omp parallel if (parallel)
  {
    Measurements local(l, dmax);
    std::vector<double> buf(static_cast<std::size_t>(dmax));
#pragma omp for collapse(2) schedule(dynamic)
    for (std::size_t ks = 0; ks < selected.size(); ++ks) {
      for (index_t tau = 0; tau < l; ++tau) {
        const index_t k = selected[ks];
        const index_t ell = ((k - tau) % l + l) % l;
        const dense::Matrix& gu_kl = rows_up.at(k, ell);
        const dense::Matrix& gd_lk = cols_dn.at(ell, k);
        const dense::Matrix& gd_kl = rows_dn.at(k, ell);
        const dense::Matrix& gu_lk = cols_up.at(ell, k);
        std::fill(buf.begin(), buf.end(), 0.0);
        for (index_t j = 0; j < n; ++j) {
          for (index_t i = 0; i < n; ++i) {
            const double v = gu_kl(i, j) * gd_lk(j, i) + gd_kl(i, j) * gu_lk(j, i);
            buf[static_cast<std::size_t>(lat.distance_class(i, j))] += v;
          }
        }
        for (index_t d = 0; d < dmax; ++d) {
          const double denom = 2.0 * c_tau *
                               static_cast<double>(class_sizes[static_cast<std::size_t>(d)]);
          local.add_spxx(tau, d, sign * buf[static_cast<std::size_t>(d)] / denom);
        }
      }
    }
#pragma omp critical(fsi_spxx_merge)
    total.merge(local);
  }
  out.merge(total);
}

}  // namespace fsi::qmc
