#include "fsi/qmc/greens.hpp"

#include <algorithm>
#include <cmath>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/lu.hpp"
#include "fsi/dense/norms.hpp"
#include "fsi/dense/qr.hpp"
#include "fsi/obs/env.hpp"
#include "fsi/obs/health.hpp"
#include "fsi/obs/metrics.hpp"
#include "fsi/obs/trace.hpp"
#include "fsi/selinv/fsi.hpp"
#include "fsi/stab/chain.hpp"
#include "fsi/stab/strategy.hpp"
#include "fsi/util/timer.hpp"

namespace fsi::qmc {

RecomputeMethod default_recompute_method() {
  switch (stab::stab_strategy_from_env()) {
    case stab::StabStrategy::Udt: return RecomputeMethod::Udt;
    case stab::StabStrategy::Naive: break;
  }
  return RecomputeMethod::QrAccumulate;
}

Matrix stabilized_equal_time_greens(const HubbardModel& model,
                                    const HsField& field, Spin spin, index_t k,
                                    index_t cluster_size) {
  FSI_OBS_SPAN("greens.udt_chain");
  const index_t l = field.num_slices();
  const index_t n = model.num_sites();
  FSI_CHECK(k >= 0 && k < l, "stabilized_equal_time_greens: slice out of range");
  FSI_CHECK(cluster_size >= 1,
            "stabilized_equal_time_greens: cluster size must be >= 1");
  const long env_cluster = obs::env_long("FSI_STAB_CLUSTER", 0);
  if (env_cluster > 0) cluster_size = static_cast<index_t>(env_cluster);

  // A(k) = B_k ... B_{k+1}, same factor order as equal_time_greens, held as
  // U diag(d) T with a pivoted QR per cluster; G = (1 + UDT)^-1 via the
  // Db/Ds scale separation.
  stab::StabilizedChain chain(n, cluster_size);
  for (index_t t = 0; t < l; ++t) {
    const index_t j = (k + 1 + t) % l;
    chain.append(
        [&](Matrix& m) { model.multiply_b_left(field, j, spin, m); });
  }
  return chain.greens();
}

Matrix equal_time_greens(const HubbardModel& model, const HsField& field,
                         Spin spin, index_t k, index_t cluster_size) {
  FSI_OBS_SPAN("greens.qr_accumulate");
  const index_t l = field.num_slices();
  const index_t n = model.num_sites();
  FSI_CHECK(k >= 0 && k < l, "equal_time_greens: slice out of range");
  FSI_CHECK(cluster_size >= 1, "equal_time_greens: cluster size must be >= 1");

  // Accumulate A(k) = B_k ... B_{k+1} (factors applied in ascending cyclic
  // order starting at k+1) as Q * R, re-orthogonalising after every cluster
  // of `cluster_size` plain products.  The orthogonal Q absorbs the
  // directional growth of the chain; the triangular R carries the scales —
  // this is the standard stratified-product stabilisation, and the QR-based
  // counterpart of what BSOFI does for the full selected inversion.
  Matrix q = Matrix::identity(n);
  Matrix r = Matrix::identity(n);
  Matrix acc = Matrix::identity(n);  // pending (un-orthogonalised) product
  index_t pending = 0;

  auto flush = [&] {
    if (pending == 0) return;
    // q := qr_q(acc * q), r := qr_r(acc * q) * r.
    Matrix t = dense::matmul(acc, q);
    dense::QrFactorization qr(std::move(t));
    Matrix rnew = qr.r();
    dense::trmm(dense::Side::Right, dense::Uplo::Upper, dense::Trans::No,
                dense::Diag::NonUnit, 1.0, r, rnew);  // rnew := rnew * r
    r = std::move(rnew);
    q = qr.q();
    dense::set_identity(acc);
    pending = 0;
  };

  for (index_t t = 0; t < l; ++t) {
    const index_t j = (k + 1 + t) % l;
    model.multiply_b_left(field, j, spin, acc);
    if (++pending == cluster_size) flush();
  }
  flush();

  // (I + Q R)^-1 = (Q^T + R)^-1 Q^T: both summands are O(1)-bounded (Q
  // orthogonal) or triangular with the chain's scales, so the LU solve is
  // well behaved even when the raw chain overflows double precision.
  Matrix qt_plus_r = dense::transposed(q);
  dense::axpby(1.0, qt_plus_r, r);  // hold Q^T + R... (axpby: b := a + b)
  dense::LuFactorization lu(std::move(qt_plus_r));
  Matrix g = dense::transposed(q);
  lu.solve(g);
  return g;
}

EqualTimeGreens::EqualTimeGreens(const HubbardModel& model, const HsField& field,
                                 Spin spin, index_t cluster_size,
                                 index_t wrap_interval, index_t delay_depth,
                                 RecomputeMethod method)
    : model_(model),
      field_(field),
      spin_(spin),
      cluster_size_(cluster_size),
      wrap_interval_(wrap_interval),
      delay_depth_(delay_depth),
      method_(method) {
  FSI_CHECK(field.num_slices() == model.params().l &&
                field.num_sites() == model.num_sites(),
            "EqualTimeGreens: field shape mismatch");
  FSI_CHECK(wrap_interval_ >= 1, "EqualTimeGreens: wrap interval must be >= 1");
  FSI_CHECK(delay_depth_ >= 0, "EqualTimeGreens: delay depth must be >= 0");
  if (delay_depth_ > 0) {
    delay_u_ = Matrix(model.num_sites(), delay_depth_);
    delay_w_ = Matrix(delay_depth_, model.num_sites());
  }
  recompute();
}

void EqualTimeGreens::flush_delayed() const {
  if (pending_ == 0) return;
  // G += U(:, 0:pending) * W(0:pending, :).
  dense::gemm(dense::Trans::No, dense::Trans::No, 1.0,
              delay_u_.block(0, 0, delay_u_.rows(), pending_),
              delay_w_.block(0, 0, pending_, delay_w_.cols()), 1.0, g_);
  pending_ = 0;
}

double EqualTimeGreens::effective_diag(index_t i) const {
  double v = g_(i, i);
  for (index_t m = 0; m < pending_; ++m) v += delay_u_(i, m) * delay_w_(m, i);
  return v;
}

double EqualTimeGreens::flip_alpha(index_t site) const {
  const double nu = model_.params().nu();
  const int h = field_.at(slice_, site);
  return std::exp(-2.0 * sign_of(spin_) * nu * h) - 1.0;
}

double EqualTimeGreens::flip_ratio(index_t site, double alpha) const {
  FSI_CHECK(site >= 0 && site < g_.rows(), "flip_ratio: site out of range");
  return 1.0 + alpha * (1.0 - effective_diag(site));
}

void EqualTimeGreens::apply_flip(index_t site, double alpha, double ratio) {
  // G <- G - (alpha/ratio) (e_i - G(:, i)) (G(i, :)), where G is the
  // *effective* Green's function including any pending delayed updates.
  const index_t n = g_.rows();
  if (delay_depth_ == 0) {
    std::vector<double> u(static_cast<std::size_t>(n));
    std::vector<double> w(static_cast<std::size_t>(n));
    for (index_t j = 0; j < n; ++j) {
      u[static_cast<std::size_t>(j)] = -g_(j, site);
      w[static_cast<std::size_t>(j)] = g_(site, j);
    }
    u[static_cast<std::size_t>(site)] += 1.0;
    dense::ger(-alpha / ratio, u.data(), w.data(), g_);
    return;
  }

  // Delayed mode: new pair from the effective column/row
  //   g_col = G0(:, i) + U W(:, i),  g_row = G0(i, :) + U(i, :) W.
  const index_t m = pending_;
  double* ucol = delay_u_.view().col(m);
  for (index_t j = 0; j < n; ++j) ucol[j] = -g_(j, site);
  for (index_t p = 0; p < m; ++p) {
    const double wpi = delay_w_(p, site);
    if (wpi == 0.0) continue;
    const double* up = delay_u_.view().col(p);
    for (index_t j = 0; j < n; ++j) ucol[j] -= up[j] * wpi;
  }
  ucol[site] += 1.0;

  for (index_t j = 0; j < n; ++j) {
    double v = g_(site, j);
    for (index_t p = 0; p < m; ++p) v += delay_u_(site, p) * delay_w_(p, j);
    delay_w_(m, j) = v;
  }

  const double scale = -alpha / ratio;
  for (index_t j = 0; j < n; ++j) ucol[j] *= scale;
  if (++pending_ == delay_depth_) flush_delayed();
}

void EqualTimeGreens::advance() {
  flush_delayed();
  // Wrap with the slice just completed: G_{l+1} = B_l G_l B_l^-1.
  Matrix g = std::move(g_);
  model_.multiply_b_left(field_, slice_, spin_, g);
  model_.multiply_binv_right(field_, slice_, spin_, g);
  g_ = std::move(g);
  slice_ = (slice_ + 1) % field_.num_slices();
  if (++wraps_since_recompute_ >= wrap_interval_) {
    Matrix wrapped = g_;
    recompute();
    last_drift_ = dense::max_abs([&] {
      Matrix diff = std::move(wrapped);
      dense::axpby(-1.0, diff, g_);  // diff := g_ - diff
      return diff;
    }());
    max_drift_ = std::max(max_drift_, last_drift_);
    obs::health::record_drift(last_drift_);
    obs::metrics::set(obs::metrics::Gauge::GreensLastDrift, last_drift_);
    obs::metrics::set(obs::metrics::Gauge::GreensMaxDrift, max_drift_);
    if (!dense::all_finite(g_.view()))
      obs::health::record_nonfinite("greens.recompute");
  }
}

void EqualTimeGreens::recompute() {
  flush_delayed();
  FSI_OBS_SPAN("greens.recompute");
  util::WallTimer timer;
  const index_t l = field_.num_slices();
  const index_t prev = (slice_ - 1 + l) % l;
  if (method_ == RecomputeMethod::Udt) {
    g_ = stabilized_equal_time_greens(model_, field_, spin_, prev,
                                      cluster_size_);
  } else if (method_ == RecomputeMethod::QrAccumulate ||
             l % cluster_size_ != 0 /* partial BSOFI needs c | L */) {
    g_ = equal_time_greens(model_, field_, spin_, prev, cluster_size_);
  } else {
    const pcyclic::PCyclicMatrix m = model_.build_m(field_, spin_);
    g_ = selinv::equal_time_block(m, prev, cluster_size_);
  }
  wraps_since_recompute_ = 0;
  ++recomputes_;
  obs::metrics::add(obs::metrics::Counter::GreensRecomputes, 1);
  obs::metrics::add_seconds(obs::metrics::Accum::GreensRecompute,
                            timer.seconds());
}

void EqualTimeGreens::reseed() {
  last_drift_ = 0.0;
  max_drift_ = 0.0;
  recomputes_ = 0;
  pending_ = 0;  // pending updates belong to the previous chain
  recompute();
}

}  // namespace fsi::qmc
