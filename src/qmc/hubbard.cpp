#include "fsi/qmc/hubbard.hpp"

#include "fsi/dense/blas.hpp"
#include "fsi/dense/expm.hpp"
#include "fsi/qmc/checkerboard.hpp"

namespace fsi::qmc {

HsField::HsField(index_t l, index_t n) : l_(l), n_(n) {
  FSI_CHECK(l > 0 && n > 0, "HsField: need positive dimensions");
  h_.assign(static_cast<std::size_t>(l) * n, 1);
}

HsField::HsField(index_t l, index_t n, util::Rng& rng) : HsField(l, n) {
  for (auto& v : h_) v = static_cast<std::int8_t>(rng.spin());
}

void HsField::set(index_t slice, index_t site, int value) {
  FSI_CHECK(value == 1 || value == -1, "HsField: values must be +-1");
  h_[index(slice, site)] = static_cast<std::int8_t>(value);
}

std::vector<double> HsField::serialize() const {
  std::vector<double> out(h_.size());
  for (std::size_t i = 0; i < h_.size(); ++i) out[i] = h_[i];
  return out;
}

HsField HsField::deserialize(index_t l, index_t n, const double* data,
                             std::size_t len) {
  FSI_CHECK(len == static_cast<std::size_t>(l) * static_cast<std::size_t>(n),
            "HsField::deserialize: length mismatch");
  HsField f(l, n);
  for (std::size_t i = 0; i < len; ++i) {
    FSI_CHECK(data[i] == 1.0 || data[i] == -1.0,
              "HsField::deserialize: values must be +-1");
    f.h_[i] = static_cast<std::int8_t>(data[i]);
  }
  return f;
}

HubbardModel::HubbardModel(Lattice lattice, HubbardParams params)
    : lattice_(std::move(lattice)), params_(params) {
  FSI_CHECK(params_.l > 0, "HubbardModel: need at least one time slice");
  FSI_CHECK(params_.beta > 0.0, "HubbardModel: beta must be positive");
  FSI_CHECK(params_.u >= 0.0, "HubbardModel: repulsive U only");
  const index_t n = lattice_.num_sites();
  if (params_.kinetic == Kinetic::Exact) {
    Matrix kd(n, n);
    dense::copy(lattice_.adjacency(), kd);
    dense::scal(params_.t * params_.dtau(), kd);
    expk_ = dense::expm(kd);
    dense::scal(-1.0, kd);
    expk_inv_ = dense::expm(kd);
  } else {
    // Checkerboard: assemble the bond-split propagator densely once so the
    // rest of the pipeline is agnostic to the kinetic realisation.  (A
    // production sweep would apply the bonds directly; this library keeps
    // the dense-blocks interface of the paper.)
    CheckerboardExpK cb(lattice_, params_.t * params_.dtau());
    expk_ = cb.to_dense();
    expk_inv_ = Matrix::identity(n);
    cb.apply_inverse_left(expk_inv_);
  }
}

Matrix HubbardModel::b_matrix(const HsField& h, index_t slice, Spin spin) const {
  // B = expK * diag(e^{sigma nu h(l,:)}): scale the columns of expK.
  const index_t n = num_sites();
  Matrix b(n, n);
  dense::copy(expk_, b);
  for (index_t j = 0; j < n; ++j) {
    const double f = hs_factor(h.at(slice, j), spin);
    double* col = b.view().col(j);
    for (index_t i = 0; i < n; ++i) col[i] *= f;
  }
  return b;
}

Matrix HubbardModel::b_matrix_inv(const HsField& h, index_t slice,
                                  Spin spin) const {
  // B^-1 = diag(e^{-sigma nu h}) * expK^-1: scale the rows of expK^-1.
  const index_t n = num_sites();
  Matrix b(n, n);
  dense::copy(expk_inv_, b);
  for (index_t i = 0; i < n; ++i) {
    const double f = 1.0 / hs_factor(h.at(slice, i), spin);
    for (index_t j = 0; j < n; ++j) b(i, j) *= f;
  }
  return b;
}

pcyclic::PCyclicMatrix HubbardModel::build_m(const HsField& h, Spin spin) const {
  FSI_CHECK(h.num_slices() == params_.l && h.num_sites() == num_sites(),
            "build_m: HS field shape mismatch");
  std::vector<Matrix> blocks;
  blocks.reserve(static_cast<std::size_t>(params_.l));
  for (index_t l = 0; l < params_.l; ++l) blocks.push_back(b_matrix(h, l, spin));
  return pcyclic::PCyclicMatrix(std::move(blocks));
}

void HubbardModel::multiply_b_left(const HsField& h, index_t slice, Spin spin,
                                   Matrix& g) const {
  // g := expK * (D g) with D = diag(e^{sigma nu h}).
  const index_t n = num_sites();
  FSI_CHECK(g.rows() == n, "multiply_b_left: dimension mismatch");
  for (index_t i = 0; i < n; ++i) {
    const double f = hs_factor(h.at(slice, i), spin);
    for (index_t j = 0; j < g.cols(); ++j) g(i, j) *= f;
  }
  Matrix out(n, g.cols());
  dense::gemm(dense::Trans::No, dense::Trans::No, 1.0, expk_, g, 0.0, out);
  g = std::move(out);
}

void HubbardModel::multiply_binv_right(const HsField& h, index_t slice,
                                       Spin spin, Matrix& g) const {
  // g := (g D^-1) * expK^-1.
  const index_t n = num_sites();
  FSI_CHECK(g.cols() == n, "multiply_binv_right: dimension mismatch");
  for (index_t j = 0; j < n; ++j) {
    const double f = 1.0 / hs_factor(h.at(slice, j), spin);
    double* col = g.view().col(j);
    for (index_t i = 0; i < g.rows(); ++i) col[i] *= f;
  }
  Matrix out(g.rows(), n);
  dense::gemm(dense::Trans::No, dense::Trans::No, 1.0, g, expk_inv_, 0.0, out);
  g = std::move(out);
}

}  // namespace fsi::qmc
