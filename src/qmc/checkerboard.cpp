#include "fsi/qmc/checkerboard.hpp"

#include <cmath>

#include "fsi/util/check.hpp"

namespace fsi::qmc {

CheckerboardExpK::CheckerboardExpK(const Lattice& lattice, double coeff)
    : n_(lattice.num_sites()), coeff_(coeff) {
  ch_ = std::cosh(coeff);
  sh_ = std::sinh(coeff);
  // Enumerate each undirected bond once (i < j).
  for (index_t i = 0; i < n_; ++i)
    for (index_t j : lattice.neighbors(i))
      if (i < j) bonds_.push_back({i, j});
}

void CheckerboardExpK::apply_left(dense::MatrixView g) const {
  FSI_CHECK(g.rows() == n_, "checkerboard: row count mismatch");
  // Each bond's exact 2x2 exponential [[ch, sh], [sh, ch]] mixes rows i, j.
  for (const Bond& b : bonds_) {
    for (index_t col = 0; col < g.cols(); ++col) {
      double* column = g.col(col);
      const double ri = column[b.i];
      const double rj = column[b.j];
      column[b.i] = ch_ * ri + sh_ * rj;
      column[b.j] = sh_ * ri + ch_ * rj;
    }
  }
}

void CheckerboardExpK::apply_inverse_left(dense::MatrixView g) const {
  FSI_CHECK(g.rows() == n_, "checkerboard: row count mismatch");
  // Inverse: bonds in reverse order with the 2x2 inverse [[ch, -sh], [-sh, ch]].
  for (auto it = bonds_.rbegin(); it != bonds_.rend(); ++it) {
    for (index_t col = 0; col < g.cols(); ++col) {
      double* column = g.col(col);
      const double ri = column[it->i];
      const double rj = column[it->j];
      column[it->i] = ch_ * ri - sh_ * rj;
      column[it->j] = -sh_ * ri + ch_ * rj;
    }
  }
}

dense::Matrix CheckerboardExpK::to_dense() const {
  dense::Matrix m = dense::Matrix::identity(n_);
  apply_left(m);
  return m;
}

}  // namespace fsi::qmc
