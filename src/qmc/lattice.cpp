#include "fsi/qmc/lattice.hpp"

#include <algorithm>
#include <queue>

#include "fsi/util/check.hpp"

namespace fsi::qmc {

Lattice Lattice::chain(index_t nx) { return Lattice(nx, 1); }

Lattice Lattice::rectangle(index_t nx, index_t ny) { return Lattice(nx, ny); }

Lattice Lattice::from_edges(
    index_t num_sites, const std::vector<std::pair<index_t, index_t>>& edges) {
  return Lattice(num_sites, edges);
}

Lattice::Lattice(index_t num_sites,
                 const std::vector<std::pair<index_t, index_t>>& edges)
    : nx_(num_sites), ny_(1) {
  FSI_CHECK(num_sites >= 1, "Lattice: need at least one site");
  const index_t n = num_sites;
  k_ = Matrix(n, n);
  neighbors_.resize(static_cast<std::size_t>(n));
  for (const auto& [a, b] : edges) {
    FSI_CHECK(a >= 0 && a < n && b >= 0 && b < n,
              "Lattice::from_edges: site index out of range");
    FSI_CHECK(a != b, "Lattice::from_edges: self-loops are not allowed");
    if (k_(a, b) != 0.0) continue;  // duplicate edge
    k_(a, b) = k_(b, a) = 1.0;
    neighbors_[static_cast<std::size_t>(a)].push_back(b);
    neighbors_[static_cast<std::size_t>(b)].push_back(a);
  }

  // BFS distances (disconnected pairs get class dmax) and 2-colouring.
  dist_table_.assign(static_cast<std::size_t>(n) * n, -1);
  parity_.assign(static_cast<std::size_t>(n), 1);
  std::vector<int> colour(static_cast<std::size_t>(n), -1);
  bool bipartite = true;
  index_t max_dist = 0;
  for (index_t src = 0; src < n; ++src) {
    std::queue<index_t> q;
    q.push(src);
    dist_table_[static_cast<std::size_t>(src) * n + src] = 0;
    while (!q.empty()) {
      const index_t u = q.front();
      q.pop();
      const index_t du = dist_table_[static_cast<std::size_t>(src) * n + u];
      for (index_t v : neighbors_[static_cast<std::size_t>(u)]) {
        auto& dv = dist_table_[static_cast<std::size_t>(src) * n + v];
        if (dv < 0) {
          dv = du + 1;
          max_dist = std::max(max_dist, dv);
          q.push(v);
        }
      }
    }
    // Colouring from the first source's BFS only.
    if (src == 0) {
      for (index_t v = 0; v < n; ++v) {
        const index_t d = dist_table_[static_cast<std::size_t>(v)];
        colour[static_cast<std::size_t>(v)] = (d < 0) ? 0 : (d % 2);
      }
    }
  }
  // Disconnected pairs: put them in their own final class.
  graph_dmax_ = max_dist + 1;
  bool has_disconnected = false;
  for (auto& d : dist_table_)
    if (d < 0) {
      d = graph_dmax_;
      has_disconnected = true;
    }
  if (has_disconnected) ++graph_dmax_;

  // Bipartiteness check: no edge may connect same-coloured sites.
  for (index_t u = 0; u < n; ++u)
    for (index_t v : neighbors_[static_cast<std::size_t>(u)])
      if (colour[static_cast<std::size_t>(u)] ==
          colour[static_cast<std::size_t>(v)])
        bipartite = false;
  if (bipartite)
    for (index_t v = 0; v < n; ++v)
      parity_[static_cast<std::size_t>(v)] =
          (colour[static_cast<std::size_t>(v)] == 0) ? 1 : -1;

  build_class_sizes();
}

void Lattice::build_class_sizes() {
  class_sizes_.assign(static_cast<std::size_t>(num_distance_classes()), 0);
  const index_t n = num_sites();
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      ++class_sizes_[static_cast<std::size_t>(distance_class(i, j))];
}

Lattice::Lattice(index_t nx, index_t ny) : nx_(nx), ny_(ny) {
  FSI_CHECK(nx >= 1 && ny >= 1, "Lattice: dimensions must be positive");
  FSI_CHECK(nx * ny >= 1, "Lattice: need at least one site");
  const index_t n = num_sites();
  k_ = Matrix(n, n);
  neighbors_.resize(static_cast<std::size_t>(n));

  for (index_t s = 0; s < n; ++s) {
    const index_t x = x_of(s), y = y_of(s);
    std::vector<index_t> nbr;
    if (nx_ > 1) {
      nbr.push_back(site(x + 1, y));
      nbr.push_back(site(x - 1 + nx_, y));
    }
    if (ny_ > 1) {
      nbr.push_back(site(x, y + 1));
      nbr.push_back(site(x, y - 1 + ny_));
    }
    // Collapse duplicates (nx == 2 makes +1 and -1 the same site) and
    // self-loops on degenerate sizes.
    std::sort(nbr.begin(), nbr.end());
    nbr.erase(std::unique(nbr.begin(), nbr.end()), nbr.end());
    nbr.erase(std::remove(nbr.begin(), nbr.end(), s), nbr.end());
    for (index_t t : nbr) k_(s, t) = 1.0;
    neighbors_[static_cast<std::size_t>(s)] = std::move(nbr);
  }

  build_class_sizes();
}

index_t Lattice::site(index_t x, index_t y) const {
  return (x % nx_) + (y % ny_) * nx_;
}

const std::vector<index_t>& Lattice::neighbors(index_t s) const {
  FSI_CHECK(s >= 0 && s < num_sites(), "Lattice: site out of range");
  return neighbors_[static_cast<std::size_t>(s)];
}

index_t Lattice::distance_class(index_t i, index_t j) const {
  FSI_ASSERT(i >= 0 && i < num_sites() && j >= 0 && j < num_sites());
  if (!dist_table_.empty())
    return dist_table_[static_cast<std::size_t>(i) * num_sites() + j];
  index_t dx = std::abs(x_of(i) - x_of(j));
  dx = std::min(dx, nx_ - dx);
  index_t dy = std::abs(y_of(i) - y_of(j));
  dy = std::min(dy, ny_ - dy);
  return dx + dy * (nx_ / 2 + 1);
}

index_t Lattice::num_distance_classes() const {
  // General graphs: classes are 0..max_dist (+1 for disconnected pairs);
  // graph_dmax_ already holds that count.
  if (!dist_table_.empty()) return graph_dmax_;
  return (nx_ / 2 + 1) * (ny_ / 2 + 1);
}

}  // namespace fsi::qmc
