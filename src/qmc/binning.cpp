#include "fsi/qmc/binning.hpp"

#include <cmath>

namespace fsi::qmc {

BinnedScalar::BinnedScalar(std::size_t bin_capacity) : capacity_(bin_capacity) {
  FSI_CHECK(bin_capacity >= 1, "BinnedScalar: bin capacity must be >= 1");
}

void BinnedScalar::add(double value) {
  ++count_;
  total_ += value;
  current_sum_ += value;
  if (++current_count_ == capacity_) {
    bins_.push_back(current_sum_ / static_cast<double>(capacity_));
    current_sum_ = 0.0;
    current_count_ = 0;
  }
}

double BinnedScalar::mean() const {
  return count_ == 0 ? 0.0 : total_ / static_cast<double>(count_);
}

double BinnedScalar::error() const {
  const std::size_t nb = bins_.size();
  if (nb < 2) return 0.0;
  double m = 0.0;
  for (double b : bins_) m += b;
  m /= static_cast<double>(nb);
  double var = 0.0;
  for (double b : bins_) var += (b - m) * (b - m);
  var /= static_cast<double>(nb - 1);
  return std::sqrt(var / static_cast<double>(nb));
}

BinnedScalar BinnedScalar::rebinned(std::size_t factor) const {
  FSI_CHECK(factor >= 1, "rebinned: factor must be >= 1");
  BinnedScalar out(capacity_ * factor);
  const std::size_t usable = (bins_.size() / factor) * factor;
  for (std::size_t g = 0; g < usable; g += factor) {
    double s = 0.0;
    for (std::size_t i = 0; i < factor; ++i) s += bins_[g + i];
    out.bins_.push_back(s / static_cast<double>(factor));
    out.count_ += capacity_ * factor;
    out.total_ += s * static_cast<double>(capacity_);
  }
  return out;
}

}  // namespace fsi::qmc
