#include "fsi/qmc/dqmc.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "fsi/obs/metrics.hpp"
#include "fsi/obs/trace.hpp"
#include "fsi/selinv/fsi.hpp"
#include "fsi/util/timer.hpp"

namespace fsi::qmc {

index_t default_cluster_size(index_t l) {
  FSI_CHECK(l >= 1, "default_cluster_size: L must be positive");
  const double target = std::sqrt(static_cast<double>(l));
  index_t best = 1;
  double best_dist = std::abs(1.0 - target);
  for (index_t c = 1; c <= l; ++c) {
    if (l % c != 0) continue;
    const double dist = std::abs(static_cast<double>(c) - target);
    if (dist < best_dist) {
      best = c;
      best_dist = dist;
    }
  }
  return best;
}

index_t metropolis_sweep(const HubbardModel& /*model*/, HsField& field,
                         EqualTimeGreens& g_up, EqualTimeGreens& g_dn,
                         util::Rng& rng, double& sign) {
  FSI_OBS_SPAN("dqmc.sweep");
  FSI_CHECK(g_up.slice() == g_dn.slice(),
            "metropolis_sweep: spin engines out of sync");
  const index_t l = field.num_slices();
  const index_t n = field.num_sites();
  index_t accepted = 0;

  for (index_t s = 0; s < l; ++s) {
    const index_t slice = g_up.slice();
    for (index_t i = 0; i < n; ++i) {
      // (1) propose h' = -h(l, i); (2) Metropolis ratio r = r_up * r_dn;
      // (3) accept with min(1, |r|) (paper Alg. 4, DQMC sweep box).
      const double a_up = g_up.flip_alpha(i);
      const double a_dn = g_dn.flip_alpha(i);
      const double r_up = g_up.flip_ratio(i, a_up);
      const double r_dn = g_dn.flip_ratio(i, a_dn);
      const double r = r_up * r_dn;
      if (rng.uniform() < std::min(1.0, std::fabs(r))) {
        g_up.apply_flip(i, a_up, r_up);
        g_dn.apply_flip(i, a_dn, r_dn);
        field.flip(slice, i);
        if (r < 0.0) sign = -sign;
        ++accepted;
      }
    }
    g_up.advance();
    g_dn.advance();
  }
  return accepted;
}

namespace {

/// Selected-inversion bundle for one spin: all diagonals (+ rows/cols when
/// the time-dependent measurement is on).
struct GreenBlocks {
  pcyclic::SelectedInversion diag;
  std::unique_ptr<pcyclic::SelectedInversion> rows;
  std::unique_ptr<pcyclic::SelectedInversion> cols;
};

GreenBlocks compute_green_blocks(const HubbardModel& model, const HsField& field,
                                 Spin spin, index_t c, index_t q,
                                 bool coarse_parallel, bool time_dependent) {
  FSI_OBS_SPAN("dqmc.greens");
  const pcyclic::PCyclicMatrix m = model.build_m(field, spin);
  const pcyclic::BlockOps ops(m);

  // fsi_multi shares one CLS + BSOFI across all wrapping passes.  With
  // coarse_parallel on, Exec::Auto lowers the call onto the task-graph
  // executor (cluster products, BSOFI and seed walks as dependency-ordered
  // nodes on the persistent pool); coarse_parallel == false keeps the
  // strictly serial loop pipeline.  Either way the result is bit-identical.
  selinv::FsiOptions opts;
  opts.c = c;
  opts.q = q;
  opts.coarse_parallel = coarse_parallel;
  std::vector<pcyclic::Pattern> patterns{pcyclic::Pattern::AllDiagonals};
  if (time_dependent) {
    patterns.push_back(pcyclic::Pattern::Rows);
    patterns.push_back(pcyclic::Pattern::Columns);
  }
  util::Rng unused(0);  // q is fixed; the rng is not consulted
  auto blocks = selinv::fsi_multi(m, ops, patterns, opts, unused);

  GreenBlocks out{std::move(blocks[0]), nullptr, nullptr};
  if (time_dependent) {
    out.rows = std::make_unique<pcyclic::SelectedInversion>(std::move(blocks[1]));
    out.cols = std::make_unique<pcyclic::SelectedInversion>(std::move(blocks[2]));
  }
  return out;
}

}  // namespace

DqmcResult run_dqmc(const HubbardModel& model, const DqmcOptions& options) {
  const index_t l = model.params().l;
  const index_t c =
      (options.cluster_size > 0) ? options.cluster_size : default_cluster_size(l);
  FSI_CHECK(l % c == 0, "run_dqmc: cluster size must divide L");
  const bool coarse = (options.engine == GreensEngine::Fsi);

  util::Rng rng(options.seed);
  obs::metrics::set(obs::metrics::Gauge::WrapInterval,
                    static_cast<double>(options.wrap_interval));
  // Recompute seconds fold: the engines stream their stabilised-recompute
  // wall time into the shared registry; the delta over this simulation is
  // re-attributed from warmup_seconds to greens_seconds below.
  const double recompute_s0 =
      obs::metrics::seconds(obs::metrics::Accum::GreensRecompute);
  HsField field(l, model.num_sites(), rng);  // random +-1 initial config
  EqualTimeGreens g_up(model, field, Spin::Up, c, options.wrap_interval,
                       options.delay_depth, options.recompute);
  EqualTimeGreens g_dn(model, field, Spin::Down, c, options.wrap_interval,
                       options.delay_depth, options.recompute);

  DqmcResult result{
      Measurements(l, model.lattice().num_distance_classes()), {}, 0.0, 0.0,
      {}};
  double sign = 1.0;
  index_t accepted = 0, attempted = 0;

  util::WallTimer total;

  // Warmup stage.
  util::WallTimer phase;
  for (index_t w = 0; w < options.warmup_sweeps; ++w) {
    accepted += metropolis_sweep(model, field, g_up, g_dn, rng, sign);
    attempted += l * model.num_sites();
  }
  result.timings.warmup_seconds = phase.seconds();

  // Measurement stage.
  for (index_t mstep = 0; mstep < options.measurement_sweeps; ++mstep) {
    phase.reset();
    accepted += metropolis_sweep(model, field, g_up, g_dn, rng, sign);
    attempted += l * model.num_sites();
    result.timings.warmup_seconds += phase.seconds();

    // Green's functions for this configuration (both spins share q so that
    // the SPXX mixed-spin products line up).
    phase.reset();
    const index_t q = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(c)));
    GreenBlocks up = compute_green_blocks(model, field, Spin::Up, c, q, coarse,
                                          options.measure_time_dependent);
    GreenBlocks dn = compute_green_blocks(model, field, Spin::Down, c, q, coarse,
                                          options.measure_time_dependent);
    result.timings.greens_seconds += phase.seconds();

    // Physical measurements.
    phase.reset();
    FSI_OBS_SPAN("dqmc.measure");
    result.measurements.add_sample(sign);
    accumulate_equal_time(model.lattice(), up.diag, dn.diag, model.params().t,
                          sign, coarse, result.measurements);
    if (options.measure_time_dependent) {
      accumulate_spxx(model.lattice(), *up.rows, *up.cols, *dn.rows, *dn.cols,
                      sign, coarse, result.measurements);
      accumulate_pair_susceptibility(model.lattice(), *up.rows, *dn.rows,
                                     model.params().dtau(), sign, coarse,
                                     result.measurements);
    }
    result.timings.measure_seconds += phase.seconds();

    // Recycle this configuration's Green blocks into the workspace pool so
    // the next measurement sweep's FSI pass reuses the storage.
    for (GreenBlocks* g : {&up, &dn}) {
      g->diag.release_blocks();
      if (g->rows) g->rows->release_blocks();
      if (g->cols) g->cols->release_blocks();
    }
  }

  // The stabilised recomputes inside the sweeps are Green's-function work;
  // report them under greens_seconds as the paper's profiles do.
  const double recompute_s =
      obs::metrics::seconds(obs::metrics::Accum::GreensRecompute) -
      recompute_s0;
  result.timings.warmup_seconds -= recompute_s;
  result.timings.greens_seconds += recompute_s;

  result.timings.total_seconds = total.seconds();
  result.acceptance_rate =
      attempted > 0 ? static_cast<double>(accepted) / attempted : 0.0;
  result.stats.recomputes = g_up.recomputes() + g_dn.recomputes();
  result.stats.last_drift = std::max(g_up.last_drift(), g_dn.last_drift());
  result.stats.max_drift = std::max(g_up.max_drift(), g_dn.max_drift());
  result.max_drift = result.stats.max_drift;
  return result;
}

}  // namespace fsi::qmc
