#include "fsi/stab/reference.hpp"

#include <cmath>
#include <cstddef>
#include <vector>

#include "fsi/util/check.hpp"

namespace fsi::stab {
namespace {

// Column-major n x n long-double workspace: a[j * n + i].
using Vec = std::vector<long double>;

std::size_t at(int n, int i, int j) {
  return static_cast<std::size_t>(j) * static_cast<std::size_t>(n) +
         static_cast<std::size_t>(i);
}

Vec ident(int n) {
  Vec a(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0L);
  for (int i = 0; i < n; ++i) a[at(n, i, i)] = 1.0L;
  return a;
}

Vec mul(int n, const Vec& a, const Vec& b) {
  Vec c(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0L);
  for (int j = 0; j < n; ++j)
    for (int k = 0; k < n; ++k) {
      const long double bkj = b[at(n, k, j)];
      if (bkj == 0.0L) continue;
      for (int i = 0; i < n; ++i) c[at(n, i, j)] += a[at(n, i, k)] * bkj;
    }
  return c;
}

/// Householder QR with column pivoting; Q returned explicitly.  Norms are
/// recomputed from scratch at every step (O(n^3) total) — slow and safe,
/// which is exactly what a reference wants.
void qrp(int n, Vec m, Vec& q, Vec& r, std::vector<int>& jpvt) {
  jpvt.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) jpvt[static_cast<std::size_t>(j)] = j;
  q = ident(n);

  for (int k = 0; k < n; ++k) {
    // Pivot: remaining column with the largest trailing norm.
    int pk = k;
    long double best = -1.0L;
    for (int j = k; j < n; ++j) {
      long double s = 0.0L;
      for (int i = k; i < n; ++i) s += m[at(n, i, j)] * m[at(n, i, j)];
      if (s > best) {
        best = s;
        pk = j;
      }
    }
    if (pk != k) {
      for (int i = 0; i < n; ++i) std::swap(m[at(n, i, k)], m[at(n, i, pk)]);
      std::swap(jpvt[static_cast<std::size_t>(k)],
                jpvt[static_cast<std::size_t>(pk)]);
    }

    // Householder reflector annihilating column k below the diagonal.
    long double norm = 0.0L;
    for (int i = k; i < n; ++i) norm += m[at(n, i, k)] * m[at(n, i, k)];
    norm = std::sqrt(norm);
    if (norm == 0.0L) continue;
    const long double alpha = m[at(n, k, k)] >= 0.0L ? -norm : norm;
    Vec v(static_cast<std::size_t>(n), 0.0L);
    for (int i = k; i < n; ++i) v[static_cast<std::size_t>(i)] = m[at(n, i, k)];
    v[static_cast<std::size_t>(k)] -= alpha;
    long double vtv = 0.0L;
    for (int i = k; i < n; ++i)
      vtv += v[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)];
    if (vtv == 0.0L) continue;
    const long double beta = 2.0L / vtv;

    // M <- (I - beta v v^T) M on the trailing columns.
    for (int j = k; j < n; ++j) {
      long double dot = 0.0L;
      for (int i = k; i < n; ++i)
        dot += v[static_cast<std::size_t>(i)] * m[at(n, i, j)];
      dot *= beta;
      for (int i = k; i < n; ++i)
        m[at(n, i, j)] -= dot * v[static_cast<std::size_t>(i)];
    }
    // Q <- Q (I - beta v v^T)  (accumulating Q = H_0 H_1 ...).
    for (int i = 0; i < n; ++i) {
      long double dot = 0.0L;
      for (int l = k; l < n; ++l)
        dot += q[at(n, i, l)] * v[static_cast<std::size_t>(l)];
      dot *= beta;
      for (int l = k; l < n; ++l)
        q[at(n, i, l)] -= dot * v[static_cast<std::size_t>(l)];
    }
  }
  r = std::move(m);
  // Zero the sub-diagonal noise so R is exactly triangular.
  for (int j = 0; j < n; ++j)
    for (int i = j + 1; i < n; ++i) r[at(n, i, j)] = 0.0L;
}

/// Gaussian elimination with partial pivoting: X = A^-1 B, in place over B.
void solve(int n, Vec a, Vec& b) {
  for (int k = 0; k < n; ++k) {
    int pk = k;
    long double best = std::abs(a[at(n, k, k)]);
    for (int i = k + 1; i < n; ++i) {
      const long double m = std::abs(a[at(n, i, k)]);
      if (m > best) {
        best = m;
        pk = i;
      }
    }
    FSI_CHECK(best > 0.0L, "reference chain solve: singular pivot");
    if (pk != k)
      for (int j = 0; j < n; ++j) {
        std::swap(a[at(n, k, j)], a[at(n, pk, j)]);
        std::swap(b[at(n, k, j)], b[at(n, pk, j)]);
      }
    const long double inv = 1.0L / a[at(n, k, k)];
    for (int i = k + 1; i < n; ++i) {
      const long double f = a[at(n, i, k)] * inv;
      if (f == 0.0L) continue;
      for (int j = k + 1; j < n; ++j) a[at(n, i, j)] -= f * a[at(n, k, j)];
      for (int j = 0; j < n; ++j) b[at(n, i, j)] -= f * b[at(n, k, j)];
    }
  }
  for (int k = n - 1; k >= 0; --k) {
    const long double inv = 1.0L / a[at(n, k, k)];
    for (int j = 0; j < n; ++j) {
      long double s = b[at(n, k, j)];
      for (int i = k + 1; i < n; ++i) s -= a[at(n, k, i)] * b[at(n, i, j)];
      b[at(n, k, j)] = s * inv;
    }
  }
}

}  // namespace

dense::Matrix reference_inverse_one_plus_chain(
    const std::vector<dense::Matrix>& b_factors) {
  FSI_CHECK(!b_factors.empty(), "reference chain: need at least one factor");
  const int n = b_factors.front().rows();
  for (const dense::Matrix& b : b_factors)
    FSI_CHECK(b.rows() == n && b.cols() == n,
              "reference chain: factors must be square and of equal size");

  // UDT recurrence in long double, one pivoted QR per factor.
  Vec u = ident(n);
  Vec t = ident(n);
  Vec d(static_cast<std::size_t>(n), 1.0L);

  for (const dense::Matrix& bk : b_factors) {
    Vec b(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i)
        b[at(n, i, j)] = static_cast<long double>(bk(i, j));

    Vec m = mul(n, b, u);
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i)
        m[at(n, i, j)] *= d[static_cast<std::size_t>(j)];

    Vec q, r;
    std::vector<int> jpvt;
    qrp(n, std::move(m), q, r, jpvt);

    Vec d_new(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const long double di = std::abs(r[at(n, i, i)]);
      FSI_CHECK(std::isfinite(di) && di > 0.0L,
                "reference chain: singular UDT step");
      d_new[static_cast<std::size_t>(i)] = di;
    }
    Vec w(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0L);
    for (int j = 0; j < n; ++j) {
      const int orig = jpvt[static_cast<std::size_t>(j)];
      for (int i = 0; i <= j; ++i)
        w[at(n, i, orig)] = r[at(n, i, j)] / d_new[static_cast<std::size_t>(i)];
    }
    t = mul(n, w, t);
    u = std::move(q);
    d = std::move(d_new);
  }

  // G = (Db^-1 U^T + Ds T)^-1 Db^-1 U^T.
  Vec h(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  Vec rhs(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const long double di = d[static_cast<std::size_t>(i)];
    const long double db_inv = di > 1.0L ? 1.0L / di : 1.0L;
    const long double ds = di < 1.0L ? di : 1.0L;
    for (int j = 0; j < n; ++j) {
      const long double ut_ij = u[at(n, j, i)] * db_inv;
      h[at(n, i, j)] = ut_ij + ds * t[at(n, i, j)];
      rhs[at(n, i, j)] = ut_ij;
    }
  }
  solve(n, std::move(h), rhs);

  dense::Matrix g(n, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      g(i, j) = static_cast<double>(rhs[at(n, i, j)]);
  return g;
}

}  // namespace fsi::stab
