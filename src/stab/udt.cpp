#include "fsi/stab/udt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/lu.hpp"
#include "fsi/dense/qr.hpp"
#include "fsi/obs/metrics.hpp"
#include "fsi/obs/trace.hpp"
#include "fsi/util/check.hpp"

namespace fsi::stab {

/// Saturation bounds for the stored scale vector: +-120 decades.  Wide
/// enough that a saturated direction is "infinitely large/small" to any
/// double-precision G (which resolves ~16 decades), narrow enough that
/// after one more cluster product the pivoted QR's column-norm *squares*
/// (the quantity that actually overflows first) stay inside double range.
constexpr double kScaleCap = 0x1p+400;    // ~2.6e120
constexpr double kScaleFloor = 0x1p-400;  // ~3.9e-121

UdtDecomposition UdtDecomposition::identity(index_t n) {
  UdtDecomposition udt;
  udt.u = Matrix::identity(n);
  udt.d.assign(static_cast<std::size_t>(n), 1.0);
  udt.t = Matrix::identity(n);
  return udt;
}

double UdtDecomposition::dmax() const {
  double m = 1.0;
  for (std::size_t i = 0; i < d.size(); ++i) m = i == 0 ? d[i] : std::max(m, d[i]);
  return m;
}

double UdtDecomposition::dmin() const {
  double m = 1.0;
  for (std::size_t i = 0; i < d.size(); ++i) m = i == 0 ? d[i] : std::min(m, d[i]);
  return m;
}

double UdtDecomposition::scale_spread_log10() const {
  if (d.empty()) return 0.0;
  return std::log10(dmax()) - std::log10(dmin());
}

Matrix UdtDecomposition::dense() const {
  const index_t nn = n();
  Matrix ud(nn, nn);
  for (index_t j = 0; j < nn; ++j)
    for (index_t i = 0; i < nn; ++i)
      ud(i, j) = u(i, j) * d[static_cast<std::size_t>(j)];
  return dense::matmul(ud, t);
}

void udt_advance(UdtDecomposition& udt, dense::ConstMatrixView c) {
  const index_t n = udt.n();
  FSI_CHECK(c.rows() == n && c.cols() == n,
            "udt_advance: factor shape does not match the chain dimension");
  FSI_OBS_SPAN("stab.qrp");

  // M = (C * U) * diag(d): the only place the chain's scales meet, and they
  // meet column-separated — column j carries scale d[j], no mixing.
  Matrix m = dense::matmul(c, udt.u);
  for (index_t j = 0; j < n; ++j) {
    const double dj = udt.d[static_cast<std::size_t>(j)];
    for (index_t i = 0; i < n; ++i) m(i, j) *= dj;
  }

  // Pivoted QR re-separates the scales: M P = Q R with |diag R| descending.
  dense::QrpFactorization qrp(std::move(m));
  obs::metrics::add(obs::metrics::Counter::StabQrp, 1);

  const Matrix r = qrp.r();
  std::vector<double> d_new(static_cast<std::size_t>(n));
  std::vector<double> d_div(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    const double di = std::abs(r(i, i));
    FSI_CHECK(std::isfinite(di),
              "udt_advance: one UDT step overflowed double range — the "
              "pending cluster product is too long; reduce the cluster size");
    // The division below must use the raw scale (pivoting guarantees
    // |r_ij| <= |r_ii|, so W stays bounded by ~1); DBL_MIN only guards an
    // exactly-zero pivot, where the whole row is zero anyway.
    d_div[static_cast<std::size_t>(i)] =
        std::max(di, std::numeric_limits<double>::min());
    // The *stored* scale saturates at +-120 decades (Luu et al. 2026): a
    // direction beyond ~1e16 already contributes 0 (or exactly its T row)
    // to G at machine precision, so truncating 1e130 -> 1e120 perturbs G
    // by < 1e-104 — while keeping the next advance's column scaling, and
    // with it the whole recurrence, inside double range at ANY beta.  Only
    // a >= 100-decade swing back towards O(1) could expose the truncation,
    // and Lyapunov growth of DQMC chains admits no such swing.
    d_new[static_cast<std::size_t>(i)] =
        std::min(std::max(di, kScaleFloor), kScaleCap);
  }

  // T_new = (D_new^-1 R P^T) * T_old.  Un-permuting R's columns breaks its
  // triangularity, so W is a full matrix and the update is a plain gemm.
  const std::vector<index_t>& jpvt = qrp.jpvt();
  Matrix w(n, n);
  for (index_t j = 0; j < n; ++j) {
    const index_t orig = jpvt[static_cast<std::size_t>(j)];
    for (index_t i = 0; i <= j; ++i)
      w(i, orig) = r(i, j) / d_div[static_cast<std::size_t>(i)];
  }
  udt.t = dense::matmul(w, udt.t);

  udt.u = qrp.q();
  udt.d = std::move(d_new);
}

UdtDecomposition udt_decompose(Matrix a) {
  FSI_CHECK(a.rows() == a.cols(), "udt_decompose: matrix must be square");
  UdtDecomposition udt = UdtDecomposition::identity(a.rows());
  udt_advance(udt, a);
  return udt;
}

Matrix inverse_one_plus(const UdtDecomposition& udt) {
  const index_t n = udt.n();
  FSI_OBS_SPAN("stab.recombine");

  // 1 + U D T = U Db (Db^-1 U^T + Ds T) with Db = max(d,1), Ds = min(d,1):
  // both summands are bounded, so H = Db^-1 U^T + Ds T is benign even when
  // d spans hundreds of decades.
  Matrix h(n, n);
  Matrix rhs(n, n);
  for (index_t i = 0; i < n; ++i) {
    const double di = udt.d[static_cast<std::size_t>(i)];
    const double db_inv = di > 1.0 ? 1.0 / di : 1.0;
    const double ds = di < 1.0 ? di : 1.0;
    for (index_t j = 0; j < n; ++j) {
      const double ut_ij = udt.u(j, i) * db_inv;  // row i of Db^-1 U^T
      h(i, j) = ut_ij + ds * udt.t(i, j);
      rhs(i, j) = ut_ij;
    }
  }

  // G = H^-1 (Db^-1 U^T).
  dense::LuFactorization lu(std::move(h));
  lu.solve(rhs.view());
  obs::metrics::add(obs::metrics::Counter::StabRecombine, 1);
  return rhs;
}

}  // namespace fsi::stab
