#include "fsi/stab/chain.hpp"

#include "fsi/obs/metrics.hpp"
#include "fsi/util/check.hpp"

namespace fsi::stab {

StabilizedChain::StabilizedChain(index_t n, index_t cluster_size)
    : udt_(UdtDecomposition::identity(n)),
      pending_(Matrix::identity(n)),
      cluster_(cluster_size) {
  FSI_CHECK(n > 0, "StabilizedChain: dimension must be positive");
  FSI_CHECK(cluster_size >= 1, "StabilizedChain: cluster_size must be >= 1");
}

void StabilizedChain::flush() {
  if (pending_count_ == 0) return;
  udt_advance(udt_, pending_.view());
  dense::set_identity(pending_.view());
  pending_count_ = 0;
}

const UdtDecomposition& StabilizedChain::udt() {
  flush();
  return udt_;
}

double StabilizedChain::scale_spread_log10() {
  flush();
  return udt_.scale_spread_log10();
}

Matrix StabilizedChain::greens() {
  flush();
  obs::metrics::set(obs::metrics::Gauge::StabScaleSpread,
                    udt_.scale_spread_log10());
  return inverse_one_plus(udt_);
}

}  // namespace fsi::stab
