#include "fsi/stab/strategy.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "fsi/util/check.hpp"

namespace fsi::stab {

const char* stab_strategy_name(StabStrategy s) noexcept {
  switch (s) {
    case StabStrategy::Naive: return "naive";
    case StabStrategy::Udt: return "udt";
  }
  return "unknown";
}

bool parse_stab_strategy(const std::string& text,
                         StabStrategy& out) noexcept {
  std::string t = text;
  std::transform(t.begin(), t.end(), t.begin(), [](unsigned char ch) {
    return static_cast<char>(std::tolower(ch));
  });
  if (t == "naive" || t == "qr") {
    out = StabStrategy::Naive;
    return true;
  }
  if (t == "udt" || t == "asvqrd") {
    out = StabStrategy::Udt;
    return true;
  }
  return false;
}

StabStrategy stab_strategy_from_env_value(const char* value) {
  if (value == nullptr || *value == '\0') return StabStrategy::Naive;
  StabStrategy s = StabStrategy::Naive;
  FSI_CHECK(parse_stab_strategy(value, s),
            std::string("unknown FSI_STAB value \"") + value +
                "\" (accepted: naive, qr, udt, asvqrd)");
  return s;
}

StabStrategy stab_strategy_from_env() {
  // If the initializer throws, C++ retries the static init on the next
  // call — the cache is only populated by a successful parse.
  static const StabStrategy cached =
      stab_strategy_from_env_value(std::getenv("FSI_STAB"));
  return cached;
}

}  // namespace fsi::stab
