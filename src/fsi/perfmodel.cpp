#include "fsi/selinv/perfmodel.hpp"

#include <algorithm>
#include <cmath>

#include "fsi/util/check.hpp"

namespace fsi::selinv {

double amdahl_speedup(double parallel_fraction, int threads) {
  FSI_CHECK(threads >= 1, "amdahl_speedup: need at least one thread");
  FSI_CHECK(parallel_fraction >= 0.0 && parallel_fraction <= 1.0,
            "amdahl_speedup: fraction must be in [0, 1]");
  return 1.0 / ((1.0 - parallel_fraction) +
                parallel_fraction / static_cast<double>(threads));
}

double mkl_parallel_fraction(dense::index_t n_block) {
  // Threaded dense kernels only help once blocks are large enough to keep a
  // team busy; ramp from ~0.25 at N=64 to ~0.60 at N=1024 (log scale).
  // The ~0.53 value near N=576 reproduces the paper's ~2x MKL speedup at
  // 12 threads (Fig. 8 bottom: "almost doubles").
  const double n = static_cast<double>(std::max<dense::index_t>(n_block, 1));
  const double x = std::log2(n / 64.0) / std::log2(1024.0 / 64.0);  // 0 @64, 1 @1024
  const double clamped = std::clamp(x, 0.0, 1.0);
  return 0.25 + clamped * (0.60 - 0.25);
}

double fsi_openmp_time(const StageTimes& serial, int threads, dense::index_t b) {
  FSI_CHECK(threads >= 1 && b >= 1, "fsi_openmp_time: invalid arguments");
  const double p = static_cast<double>(threads);
  // CLS: b independent cluster products.
  const double t_cls = serial.cls / std::min<double>(p, static_cast<double>(b));
  // BSOFI: the 2N x N panel chain is sequential, but it is only O(b N^3) of
  // BSOFI's ~7 b^2 N^3; the dominant R^-1 back-substitution is b-way
  // parallel and the Q applications are kernel-rich: ~85% parallel.
  const double t_bsofi = serial.bsofi / amdahl_speedup(0.85, threads);
  // WRP: b^2 independent seeds — essentially perfectly parallel for p <= b^2.
  const double t_wrap =
      serial.wrap / std::min<double>(p, static_cast<double>(b) * b);
  // Thread-team overhead (barriers, NUMA traffic): ~0.5% per extra thread,
  // matching the paper's "OpenMP overhead is negligible when the number of
  // threads is small".
  const double overhead = 1.0 + 0.005 * (p - 1.0);
  return (t_cls + t_bsofi + t_wrap) * overhead;
}

double mkl_style_time(const StageTimes& serial, int threads,
                      dense::index_t n_block) {
  FSI_CHECK(threads >= 1, "mkl_style_time: invalid arguments");
  return serial.total() / amdahl_speedup(mkl_parallel_fraction(n_block), threads);
}

double hybrid_rate(double single_core_flops_per_sec, int nodes,
                   int ranks_per_node, int threads_per_rank,
                   const StageTimes& serial_profile, dense::index_t b) {
  FSI_CHECK(nodes >= 1 && ranks_per_node >= 1 && threads_per_rank >= 1,
            "hybrid_rate: invalid configuration");
  // Each rank works on its own matrices (perfect MPI scaling over
  // independent Green's functions); within a rank, OpenMP efficiency is the
  // modeled FSI speedup divided by the thread count.
  const double serial_t = serial_profile.total();
  const double omp_speedup =
      serial_t / fsi_openmp_time(serial_profile, threads_per_rank, b);
  const double omp_efficiency = omp_speedup / threads_per_rank;
  const double cores =
      static_cast<double>(nodes) * ranks_per_node * threads_per_rank;
  return single_core_flops_per_sec * cores * omp_efficiency;
}

}  // namespace fsi::selinv
