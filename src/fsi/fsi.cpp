#include "fsi/selinv/fsi.hpp"

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <memory>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/norms.hpp"
#include "fsi/obs/env.hpp"
#include "fsi/obs/health.hpp"
#include "fsi/obs/log.hpp"
#include "fsi/obs/metrics.hpp"
#include "fsi/obs/trace.hpp"
#include "fsi/sched/executor.hpp"
#include "fsi/sched/workspace_pool.hpp"
#include "fsi/util/flops.hpp"
#include "fsi/util/timer.hpp"

namespace fsi::selinv {

using pcyclic::PCyclicMatrix;
using pcyclic::SelectedInversion;
using pcyclic::Selection;

namespace {

/// Meters one FSI stage: opens a trace span and, on destruction, adds the
/// stage's wall time and flop delta to the FsiStats fields it was given.
class StageMeter {
 public:
  StageMeter(const char* span_name, double& seconds, std::uint64_t& flops)
      : span_(span_name), seconds_(seconds), flops_(flops) {}
  StageMeter(const StageMeter&) = delete;
  StageMeter& operator=(const StageMeter&) = delete;
  ~StageMeter() {
    seconds_ += timer_.seconds();
    flops_ += flop_scope_.elapsed();
  }

 private:
  obs::Span span_;
  double& seconds_;
  std::uint64_t& flops_;
  util::WallTimer timer_;
  util::flops::Scope flop_scope_;
};

}  // namespace

dense::Matrix cluster_product(const PCyclicMatrix& m, index_t c, index_t q,
                              index_t i) {
  // Cluster i covers the c consecutive blocks ending at j0 = c(i+1)-q-1:
  //   B~_i = B[j0] B[j0-1] ... B[j0-c+1]  (indices cyclic).
  FSI_OBS_SPAN("cls.cluster");
  const index_t n = m.block_size();
  const index_t j_lo = c * i - q;  // j0 - c + 1
  dense::Matrix prod = sched::acquire_copy(m.b(m.wrap(j_lo)));
  dense::Matrix next = sched::acquire(n, n);
  for (index_t t = 1; t < c; ++t) {
    dense::gemm(dense::Trans::No, dense::Trans::No, 1.0, m.b(m.wrap(j_lo + t)),
                prod, 0.0, next);
    std::swap(prod, next);
  }
  sched::recycle(std::move(next));
  return prod;
}

PCyclicMatrix cluster(const PCyclicMatrix& m, index_t c, index_t q,
                      bool parallel) {
  const index_t l = m.num_blocks();
  FSI_CHECK(c > 0 && l % c == 0, "cluster: c must divide L");
  FSI_CHECK(q >= 0 && q < c, "cluster: q must be in [0, c)");
  const index_t b = l / c;
  const index_t n = m.block_size();

  PCyclicMatrix reduced(n, b);
  // Clusters are data-independent: "iterations for clustering B_i's can be
  // executed in embarrassingly parallel" (paper Sec. II-C).
#pragma omp parallel for schedule(dynamic) if (parallel)
  for (index_t i = 0; i < b; ++i)
    reduced.b_matrix(i) = cluster_product(m, c, q, i);
  return reduced;
}

dense::MatrixF cluster_product_f(const PCyclicMatrix& m, index_t c, index_t q,
                                 index_t i) {
  // Same chain as cluster_product, with every factor demoted on the fly:
  // each B block belongs to exactly one cluster, so nothing is demoted
  // twice and the O(N^2) conversions vanish next to the O(cN^3) products.
  FSI_OBS_SPAN("cls.cluster_f");
  const index_t n = m.block_size();
  const index_t j_lo = c * i - q;  // j0 - c + 1
  dense::MatrixF prod = sched::acquire_f(n, n);
  dense::demote(m.b(m.wrap(j_lo)), prod.view());
  dense::MatrixF bf = sched::acquire_f(n, n);
  dense::MatrixF next = sched::acquire_f(n, n);
  for (index_t t = 1; t < c; ++t) {
    dense::demote(m.b(m.wrap(j_lo + t)), bf.view());
    dense::gemm(dense::Trans::No, dense::Trans::No, 1.0f, bf, prod, 0.0f,
                next);
    std::swap(prod, next);
  }
  sched::recycle(std::move(bf));
  sched::recycle(std::move(next));
  return prod;
}

PCyclicMatrix cluster_mixed(const PCyclicMatrix& m, index_t c, index_t q,
                            bool parallel) {
  const index_t l = m.num_blocks();
  FSI_CHECK(c > 0 && l % c == 0, "cluster_mixed: c must divide L");
  FSI_CHECK(q >= 0 && q < c, "cluster_mixed: q must be in [0, c)");
  const index_t b = l / c;
  const index_t n = m.block_size();

  PCyclicMatrix reduced(n, b);
#pragma omp parallel for schedule(dynamic) if (parallel)
  for (index_t i = 0; i < b; ++i) {
    dense::MatrixF prod = cluster_product_f(m, c, q, i);
    dense::Matrix promoted = sched::acquire(n, n);
    dense::promote(prod, promoted.view());
    sched::recycle(std::move(prod));
    reduced.b_matrix(i) = std::move(promoted);
  }
  return reduced;
}

namespace {

/// Copy the seed block G~(k0, l0) out of the reduced inverse (pool-backed).
dense::Matrix seed_block(const dense::Matrix& gtilde, index_t n, index_t k0,
                         index_t l0) {
  return sched::acquire_copy(gtilde.block(k0 * n, l0 * n, n, n));
}

/// Sampled health spot check: verify two stored blocks of a completed
/// Columns/Rows wrap against the defining relation M G = G M = I.
///
/// The Columns pattern stores a *full* block column per selected index, so
/// block row k of M applied to stored column `col` must give
///   G(k, col) - B_k G(k-1, col)       = delta_{k,col} I   (k >= 1)
///   G(0, col) + B_1 G(L-1, col)       = delta_{0,col} I   (corner block)
/// and symmetrically via G M = I for the Rows pattern.  Two probed block
/// rows cost ~4 N^3 flops against the ~3 b^2 c N^3 of the wrap itself
/// (~0.1% at the paper's shape), further divided by the sampling period;
/// probe positions rotate across calls so repeated sampling sweeps the
/// whole selection.  Other patterns store no adjacent blocks, so no
/// residual can be formed from stored data alone — they are skipped.
void residual_spot_check(const PCyclicMatrix& m, const SelectedInversion& out,
                         Pattern pattern, const Selection& sel) {
  if (pattern != Pattern::Columns && pattern != Pattern::Rows) return;
  if (!obs::health::should_sample_residual()) return;
  util::WallTimer health_timer;
  const double worst = probe_residual(m, out, pattern, sel);
  obs::health::record_residual(worst);
  obs::metrics::add_seconds(obs::metrics::Accum::HealthCheck,
                            health_timer.seconds());
}

}  // namespace

double probe_residual(const PCyclicMatrix& m, const SelectedInversion& out,
                      Pattern pattern, const Selection& sel) {
  if (pattern != Pattern::Columns && pattern != Pattern::Rows) return -1.0;
  const index_t n = m.block_size();
  const index_t l = m.num_blocks();
  const auto idx = sel.indices();

  static std::atomic<std::uint64_t> probe_tick{0};
  const std::uint64_t t = probe_tick.fetch_add(1, std::memory_order_relaxed);
  const index_t line = idx[static_cast<index_t>(t % idx.size())];

  double worst = 0.0;
  for (int probe = 0; probe < 2; ++probe) {
    const index_t k = static_cast<index_t>(
        (t + static_cast<std::uint64_t>(probe) *
                 static_cast<std::uint64_t>(l / 2 + 1)) %
        static_cast<std::uint64_t>(l));
    dense::Matrix r(n, n);
    index_t diag;  // the index that makes this block a diagonal of G
    if (pattern == Pattern::Columns) {
      dense::copy(out.at(k, line), r.view());
      if (k >= 1)
        dense::gemm(dense::Trans::No, dense::Trans::No, -1.0, m.b(k),
                    out.at(k - 1, line), 1.0, r);
      else
        dense::gemm(dense::Trans::No, dense::Trans::No, 1.0, m.b(0),
                    out.at(l - 1, line), 1.0, r);
      diag = line;
    } else {
      dense::copy(out.at(line, k), r.view());
      if (k + 1 < l)
        dense::gemm(dense::Trans::No, dense::Trans::No, -1.0,
                    out.at(line, k + 1), m.b(k + 1), 1.0, r);
      else
        dense::gemm(dense::Trans::No, dense::Trans::No, 1.0, out.at(line, 0),
                    m.b(0), 1.0, r);
      diag = line;
    }
    if (k == diag)
      for (index_t d = 0; d < n; ++d) r(d, d) -= 1.0;
    worst = std::max(worst, dense::max_abs(r.view()));
  }
  return worst;
}

double reduced_cond1(const PCyclicMatrix& reduced,
                     dense::ConstMatrixView gtilde) {
  double max_b = 0.0;
  for (index_t i = 0; i < reduced.num_blocks(); ++i)
    max_b = std::max(max_b, dense::one_norm(reduced.b(i)));
  return (1.0 + max_b) * dense::one_norm(gtilde);
}

namespace {

/// The process-wide gate cells, env-seeded on first touch.
struct GateCells {
  std::atomic<double> resid;
  std::atomic<double> cond;
  GateCells()
      : resid(obs::env_double("FSI_PRECISION_RESID_MAX",
                              MixedGate{}.resid_max)),
        cond(obs::env_double("FSI_PRECISION_COND_MAX", MixedGate{}.cond_max)) {}
};

GateCells& gate_cells() noexcept {
  static GateCells cells;
  return cells;
}

}  // namespace

MixedGate mixed_gate() noexcept {
  GateCells& g = gate_cells();
  return MixedGate{g.resid.load(std::memory_order_relaxed),
                   g.cond.load(std::memory_order_relaxed)};
}

void set_mixed_gate(const MixedGate& gate) noexcept {
  GateCells& g = gate_cells();
  g.resid.store(gate.resid_max, std::memory_order_relaxed);
  g.cond.store(gate.cond_max, std::memory_order_relaxed);
}

index_t num_wrap_seeds(Pattern pattern, index_t b) {
  switch (pattern) {
    case Pattern::Diagonal:
    case Pattern::SubDiagonal:
    case Pattern::AllDiagonals:
      return b;
    case Pattern::Columns:
    case Pattern::Rows:
      return b * b;
  }
  return 0;
}

void wrap_seed(const pcyclic::BlockOps& ops, const dense::Matrix& gtilde,
               Pattern pattern, const Selection& sel, SelectedInversion& out,
               index_t seed) {
  FSI_OBS_SPAN("wrp.seed");
  const index_t n = ops.block_size();
  const index_t l = ops.num_blocks();
  const index_t b = sel.b();
  const auto idx = sel.indices();
  const index_t up_steps = (sel.c - 1) / 2;
  const index_t down_steps = sel.c / 2;

  switch (pattern) {
    case Pattern::Diagonal: {
      // S1 is exactly the diagonal seeds — no adjacency moves needed.
      const index_t k0 = seed;
      out.slot(idx[k0], idx[k0]) = seed_block(gtilde, n, k0, k0);
      break;
    }
    case Pattern::SubDiagonal: {
      // One rightward move from each diagonal seed (skip k = L-1, whose
      // sub-diagonal neighbour leaves the matrix per the paper's S2).
      const index_t k0 = seed;
      const index_t k = idx[k0];
      if (k == l - 1) break;
      dense::Matrix sb = seed_block(gtilde, n, k0, k0);
      out.slot(k, k + 1) = ops.right(k, k, sb);
      sched::recycle(std::move(sb));
      break;
    }
    case Pattern::Columns: {
      // Paper Alg. 2: each of the b^2 seeds fills the c rows around it in
      // its column; two independent walks minimise error accumulation.
      const index_t l0 = seed / b;
      const index_t k0 = seed % b;
      const index_t col = idx[l0];
      const index_t row = idx[k0];
      // Two independent walks from one seed; every intermediate and
      // every stored copy cycles through the workspace pool.
      dense::Matrix sb = seed_block(gtilde, n, k0, l0);
      dense::Matrix cur = sched::acquire_copy(sb);
      index_t k = row;
      for (index_t s = 0; s < up_steps; ++s) {
        dense::Matrix next = ops.up(k, col, cur);
        sched::recycle(std::move(cur));
        cur = std::move(next);
        k = ops.matrix().wrap(k - 1);
        out.slot(k, col) = sched::acquire_copy(cur);
      }
      sched::recycle(std::move(cur));
      cur = std::move(sb);
      k = row;
      out.slot(k, col) = sched::acquire_copy(cur);
      for (index_t s = 0; s < down_steps; ++s) {
        dense::Matrix next = ops.down(k, col, cur);
        sched::recycle(std::move(cur));
        cur = std::move(next);
        k = ops.matrix().wrap(k + 1);
        out.slot(k, col) = sched::acquire_copy(cur);
      }
      sched::recycle(std::move(cur));
      break;
    }
    case Pattern::AllDiagonals: {
      // Diagonal walk: G(k+1,k+1) = B_{k+1} G(k,k) B_{k+1}^-1 and its
      // inverse move, composed from one vertical and one horizontal
      // adjacency step each (the "Hirsch wrapping" for equal-time blocks).
      const index_t k0 = seed;
      const index_t row = idx[k0];
      dense::Matrix sb = seed_block(gtilde, n, k0, k0);
      dense::Matrix cur = sched::acquire_copy(sb);
      index_t k = row;
      for (index_t s = 0; s < up_steps; ++s) {
        // up-left: G(k-1, k-1) = B_k^-1 G(k, k) B_k.
        dense::Matrix mid = ops.up(k, k, cur);
        sched::recycle(std::move(cur));
        cur = ops.left(ops.matrix().wrap(k - 1), k, mid);
        sched::recycle(std::move(mid));
        k = ops.matrix().wrap(k - 1);
        out.slot(k, k) = sched::acquire_copy(cur);
      }
      sched::recycle(std::move(cur));
      cur = std::move(sb);
      k = row;
      out.slot(k, k) = sched::acquire_copy(cur);
      for (index_t s = 0; s < down_steps; ++s) {
        // down-right: G(k+1, k+1) = B_{k+1} G(k, k) B_{k+1}^-1.
        dense::Matrix mid = ops.down(k, k, cur);
        sched::recycle(std::move(cur));
        cur = ops.right(ops.matrix().wrap(k + 1), k, mid);
        sched::recycle(std::move(mid));
        k = ops.matrix().wrap(k + 1);
        out.slot(k, k) = sched::acquire_copy(cur);
      }
      sched::recycle(std::move(cur));
      break;
    }
    case Pattern::Rows: {
      // Mirror of the column wrap using the horizontal relations (Eqs. 6/7).
      const index_t k0 = seed / b;
      const index_t l0 = seed % b;
      const index_t row = idx[k0];
      const index_t col = idx[l0];
      dense::Matrix sb = seed_block(gtilde, n, k0, l0);
      dense::Matrix cur = sched::acquire_copy(sb);
      index_t cl = col;
      for (index_t s = 0; s < up_steps; ++s) {
        dense::Matrix next = ops.left(row, cl, cur);
        sched::recycle(std::move(cur));
        cur = std::move(next);
        cl = ops.matrix().wrap(cl - 1);
        out.slot(row, cl) = sched::acquire_copy(cur);
      }
      sched::recycle(std::move(cur));
      cur = std::move(sb);
      cl = col;
      out.slot(row, cl) = sched::acquire_copy(cur);
      for (index_t s = 0; s < down_steps; ++s) {
        dense::Matrix next = ops.right(row, cl, cur);
        sched::recycle(std::move(cur));
        cur = std::move(next);
        cl = ops.matrix().wrap(cl + 1);
        out.slot(row, cl) = sched::acquire_copy(cur);
      }
      sched::recycle(std::move(cur));
      break;
    }
  }
}

namespace {

/// Copy the seed block G~(k0, l0) out of the demoted reduced inverse.
dense::MatrixF seed_block_f(const dense::MatrixF& gtilde_f, index_t n,
                            index_t k0, index_t l0) {
  return sched::acquire_copy_f(gtilde_f.block(k0 * n, l0 * n, n, n));
}

/// Promote an fp32 walk block into a pool-backed fp64 matrix — what the
/// mixed wrap stores into the (fp64) SelectedInversion slots.
dense::Matrix promoted_store(const dense::MatrixF& src) {
  dense::Matrix out = sched::acquire(src.rows(), src.cols());
  dense::promote(src, out.view());
  return out;
}

}  // namespace

void wrap_seed_f(const pcyclic::BlockOpsF& ops, const dense::MatrixF& gtilde_f,
                 Pattern pattern, const Selection& sel, SelectedInversion& out,
                 index_t seed) {
  // Kept in lockstep with wrap_seed above: same walks, same recycle
  // discipline, fp32 intermediates, promoted stores.
  FSI_OBS_SPAN("wrp.seed_f");
  const index_t n = ops.block_size();
  const index_t l = ops.num_blocks();
  const index_t b = sel.b();
  const auto idx = sel.indices();
  const index_t up_steps = (sel.c - 1) / 2;
  const index_t down_steps = sel.c / 2;

  switch (pattern) {
    case Pattern::Diagonal: {
      const index_t k0 = seed;
      dense::MatrixF sb = seed_block_f(gtilde_f, n, k0, k0);
      out.slot(idx[k0], idx[k0]) = promoted_store(sb);
      sched::recycle(std::move(sb));
      break;
    }
    case Pattern::SubDiagonal: {
      const index_t k0 = seed;
      const index_t k = idx[k0];
      if (k == l - 1) break;
      dense::MatrixF sb = seed_block_f(gtilde_f, n, k0, k0);
      dense::MatrixF moved = ops.right(k, k, sb);
      out.slot(k, k + 1) = promoted_store(moved);
      sched::recycle(std::move(moved));
      sched::recycle(std::move(sb));
      break;
    }
    case Pattern::Columns: {
      const index_t l0 = seed / b;
      const index_t k0 = seed % b;
      const index_t col = idx[l0];
      const index_t row = idx[k0];
      dense::MatrixF sb = seed_block_f(gtilde_f, n, k0, l0);
      dense::MatrixF cur = sched::acquire_copy_f(sb);
      index_t k = row;
      for (index_t s = 0; s < up_steps; ++s) {
        dense::MatrixF next = ops.up(k, col, cur);
        sched::recycle(std::move(cur));
        cur = std::move(next);
        k = ops.matrix().wrap(k - 1);
        out.slot(k, col) = promoted_store(cur);
      }
      sched::recycle(std::move(cur));
      cur = std::move(sb);
      k = row;
      out.slot(k, col) = promoted_store(cur);
      for (index_t s = 0; s < down_steps; ++s) {
        dense::MatrixF next = ops.down(k, col, cur);
        sched::recycle(std::move(cur));
        cur = std::move(next);
        k = ops.matrix().wrap(k + 1);
        out.slot(k, col) = promoted_store(cur);
      }
      sched::recycle(std::move(cur));
      break;
    }
    case Pattern::AllDiagonals: {
      const index_t k0 = seed;
      const index_t row = idx[k0];
      dense::MatrixF sb = seed_block_f(gtilde_f, n, k0, k0);
      dense::MatrixF cur = sched::acquire_copy_f(sb);
      index_t k = row;
      for (index_t s = 0; s < up_steps; ++s) {
        dense::MatrixF mid = ops.up(k, k, cur);
        sched::recycle(std::move(cur));
        cur = ops.left(ops.matrix().wrap(k - 1), k, mid);
        sched::recycle(std::move(mid));
        k = ops.matrix().wrap(k - 1);
        out.slot(k, k) = promoted_store(cur);
      }
      sched::recycle(std::move(cur));
      cur = std::move(sb);
      k = row;
      out.slot(k, k) = promoted_store(cur);
      for (index_t s = 0; s < down_steps; ++s) {
        dense::MatrixF mid = ops.down(k, k, cur);
        sched::recycle(std::move(cur));
        cur = ops.right(ops.matrix().wrap(k + 1), k, mid);
        sched::recycle(std::move(mid));
        k = ops.matrix().wrap(k + 1);
        out.slot(k, k) = promoted_store(cur);
      }
      sched::recycle(std::move(cur));
      break;
    }
    case Pattern::Rows: {
      const index_t k0 = seed / b;
      const index_t l0 = seed % b;
      const index_t row = idx[k0];
      const index_t col = idx[l0];
      dense::MatrixF sb = seed_block_f(gtilde_f, n, k0, l0);
      dense::MatrixF cur = sched::acquire_copy_f(sb);
      index_t cl = col;
      for (index_t s = 0; s < up_steps; ++s) {
        dense::MatrixF next = ops.left(row, cl, cur);
        sched::recycle(std::move(cur));
        cur = std::move(next);
        cl = ops.matrix().wrap(cl - 1);
        out.slot(row, cl) = promoted_store(cur);
      }
      sched::recycle(std::move(cur));
      cur = std::move(sb);
      cl = col;
      out.slot(row, cl) = promoted_store(cur);
      for (index_t s = 0; s < down_steps; ++s) {
        dense::MatrixF next = ops.right(row, cl, cur);
        sched::recycle(std::move(cur));
        cur = std::move(next);
        cl = ops.matrix().wrap(cl + 1);
        out.slot(row, cl) = promoted_store(cur);
      }
      sched::recycle(std::move(cur));
      break;
    }
  }
}

SelectedInversion wrap(const pcyclic::BlockOps& ops, const dense::Matrix& gtilde,
                       Pattern pattern, const Selection& sel, bool parallel) {
  const index_t n = ops.block_size();
  const index_t l = ops.num_blocks();
  const index_t b = sel.b();
  FSI_CHECK(gtilde.rows() == b * n && gtilde.cols() == b * n,
            "wrap: reduced inverse has wrong dimensions");
  FSI_CHECK(sel.l_total == l, "wrap: selection does not match the matrix");

  SelectedInversion out(pattern, n, sel);
  const index_t seeds = num_wrap_seeds(pattern, b);
  if (pattern == Pattern::Diagonal) {
    // Plain seed copies — not worth a parallel region.
    for (index_t s = 0; s < seeds; ++s)
      wrap_seed(ops, gtilde, pattern, sel, out, s);
    return out;
  }
#pragma omp parallel for schedule(dynamic) if (parallel)
  for (index_t s = 0; s < seeds; ++s)
    wrap_seed(ops, gtilde, pattern, sel, out, s);
  return out;
}

SelectedInversion wrap_f(const pcyclic::BlockOpsF& ops,
                         const dense::MatrixF& gtilde_f, Pattern pattern,
                         const Selection& sel, bool parallel) {
  const index_t n = ops.block_size();
  const index_t l = ops.num_blocks();
  const index_t b = sel.b();
  FSI_CHECK(gtilde_f.rows() == b * n && gtilde_f.cols() == b * n,
            "wrap_f: reduced inverse has wrong dimensions");
  FSI_CHECK(sel.l_total == l, "wrap_f: selection does not match the matrix");

  SelectedInversion out(pattern, n, sel);
  const index_t seeds = num_wrap_seeds(pattern, b);
  if (pattern == Pattern::Diagonal) {
    for (index_t s = 0; s < seeds; ++s)
      wrap_seed_f(ops, gtilde_f, pattern, sel, out, s);
    return out;
  }
#pragma omp parallel for schedule(dynamic) if (parallel)
  for (index_t s = 0; s < seeds; ++s)
    wrap_seed_f(ops, gtilde_f, pattern, sel, out, s);
  return out;
}

FsiEmit emit_fsi_tasks(sched::TaskGraph& graph, FsiGraphTask& task,
                       int owner_hint) {
  FSI_CHECK(task.m != nullptr && task.ops != nullptr,
            "emit_fsi_tasks: task needs a matrix and BlockOps");
  FSI_CHECK(&task.ops->matrix() == task.m,
            "emit_fsi_tasks: BlockOps must wrap the same matrix");
  FSI_CHECK(!task.patterns.empty(), "emit_fsi_tasks: need at least one pattern");
  const PCyclicMatrix& m = *task.m;
  const index_t l = m.num_blocks();
  const index_t c = task.sel.c;
  const index_t q = task.sel.q;
  FSI_CHECK(c > 0 && l % c == 0, "emit_fsi_tasks: c must divide L");
  FSI_CHECK(q >= 0 && q < c, "emit_fsi_tasks: q must be in [0, c)");
  FSI_CHECK(task.sel.l_total == l,
            "emit_fsi_tasks: selection does not match the matrix");
  const index_t b = task.sel.b();
  const index_t n = m.block_size();

  task.cls_blocks.assign(static_cast<std::size_t>(b), dense::Matrix());
  task.results.clear();
  task.results.reserve(task.patterns.size());
  for (Pattern p : task.patterns) task.results.emplace_back(p, n, task.sel);

  FsiGraphTask* t = &task;
  FsiEmit emit;
  std::vector<sched::NodeId> cls_nodes;
  cls_nodes.reserve(static_cast<std::size_t>(b));
  for (index_t i = 0; i < b; ++i) {
    cls_nodes.push_back(graph.add_node(
        [t, c, q, i](int) {
          FSI_OBS_SPAN("fsi.cls");
          t->cls_blocks[static_cast<std::size_t>(i)] =
              cluster_product(*t->m, c, q, i);
        },
        sched::Stage::Cls, owner_hint));
  }
  emit.bsofi = graph.add_node(
      [t](int) {
        FSI_OBS_SPAN("fsi.bsofi");
        t->flops_at_cls_end = util::flops::total();
        PCyclicMatrix reduced(std::move(t->cls_blocks));
        t->gtilde = bsofi::invert(reduced);
        reduced.release_blocks();  // the clustered products feed only BSOFI
        t->flops_at_bsofi_end = util::flops::total();
      },
      sched::Stage::Bsofi, owner_hint);
  for (sched::NodeId id : cls_nodes) graph.add_edge(id, emit.bsofi);

  for (std::size_t p = 0; p < task.patterns.size(); ++p) {
    const Pattern pat = task.patterns[p];
    const index_t seeds = num_wrap_seeds(pat, b);
    for (index_t s = 0; s < seeds; ++s) {
      const sched::NodeId w = graph.add_node(
          [t, p, pat, s](int) {
            FSI_OBS_SPAN("fsi.wrap");
            wrap_seed(*t->ops, t->gtilde, pat, t->sel, t->results[p], s);
          },
          sched::Stage::Wrap, owner_hint);
      graph.add_edge(emit.bsofi, w);
      emit.wrap_nodes.push_back(w);
    }
  }
  return emit;
}

namespace {

/// Resolve FsiOptions::Exec against the FSI_EXEC env flag.
bool use_graph(const FsiOptions& opts) {
  switch (opts.exec) {
    case FsiOptions::Exec::Graph: return true;
    case FsiOptions::Exec::OmpLoops: return false;
    case FsiOptions::Exec::Auto: break;
  }
  // coarse_parallel == false is the paper's pure-MKL comparator: serial
  // outer loops by definition, so the graph path never applies.
  return opts.coarse_parallel && obs::env_flag("FSI_EXEC", true);
}

/// Graph workers for a standalone fsi() call: FSI_EXEC_WORKERS, or the
/// caller's OMP team size (which a mini-MPI rank body has already had set
/// to its per-rank allotment — nested graphs stay within their share).
int graph_workers() {
  const long w = obs::env_long("FSI_EXEC_WORKERS", 0);
  return w > 0 ? static_cast<int>(w) : omp_get_max_threads();
}

/// Shared graph-mode driver of fsi() and fsi_multi(): emit, run on the
/// persistent pool, derive FsiStats from per-stage busy sums (span sums —
/// overlapped stages no longer double-count wall time) and the BSOFI node's
/// flop fences.
std::vector<SelectedInversion> fsi_graph_run(const PCyclicMatrix& m,
                                             const pcyclic::BlockOps& ops,
                                             const std::vector<Pattern>& patterns,
                                             const Selection& sel,
                                             FsiStats& stats) {
  const std::uint64_t f0 = util::flops::total();
  FsiGraphTask task;
  task.m = &m;
  task.ops = &ops;
  task.sel = sel;
  task.patterns = patterns;

  sched::TaskGraph graph;
  emit_fsi_tasks(graph, task);
  const sched::GraphStats gs = sched::Executor::instance().run_graph(
      graph, graph_workers(), sched::ExecOptions::from_env());
  const std::uint64_t f_end = util::flops::total();

  sched::recycle(std::move(task.gtilde));
  for (std::size_t i = 0; i < patterns.size(); ++i)
    residual_spot_check(m, task.results[i], patterns[i], sel);

  stats.q = sel.q;
  stats.seconds_cls = gs.of(sched::Stage::Cls).busy_seconds;
  stats.seconds_bsofi = gs.of(sched::Stage::Bsofi).busy_seconds;
  stats.seconds_wrap = gs.of(sched::Stage::Wrap).busy_seconds;
  stats.flops_cls = task.flops_at_cls_end - f0;
  stats.flops_bsofi = task.flops_at_bsofi_end - task.flops_at_cls_end;
  stats.flops_wrap = f_end - task.flops_at_bsofi_end;
  return std::move(task.results);
}

/// One mixed-precision attempt: fp32 CLS (promoted per product), fp64
/// BSOFI, fp32 WRP (promoted stores), then the health gate.  True when the
/// gate accepted; false (results discarded by the caller) when the run must
/// be redone in fp64.  Stage accounting goes into \p stats exactly like the
/// fp64 loop path's.
bool fsi_mixed_attempt(const PCyclicMatrix& m,
                       const std::vector<Pattern>& patterns,
                       const Selection& sel, bool coarse_parallel,
                       std::vector<SelectedInversion>& results,
                       FsiStats& stats) {
  obs::metrics::add(obs::metrics::Counter::MixedRuns, 1);
  const MixedGate gate = mixed_gate();

  PCyclicMatrix reduced = [&] {  // Stage 1: CLS in fp32.
    StageMeter meter("fsi.cls", stats.seconds_cls, stats.flops_cls);
    return cluster_mixed(m, sel.c, sel.q, coarse_parallel);
  }();
  dense::Matrix gtilde = [&] {  // Stage 2: BSOFI, always fp64.
    StageMeter meter("fsi.bsofi", stats.seconds_bsofi, stats.flops_bsofi);
    return bsofi::invert(reduced);
  }();
  // cond1 gate before any wrapping work: when the reduced matrix already
  // eats most of fp32's ~7 digits, the walks cannot recover.  (The value
  // also streams into Hist::Cond1Reduced via bsofi::invert.)
  const double cond1 = reduced_cond1(reduced, gtilde);
  reduced.release_blocks();
  if (!dense::all_finite(gtilde.view()) || !(cond1 <= gate.cond_max)) {
    sched::recycle(std::move(gtilde));
    return false;
  }

  {  // Stage 3: WRP in fp32 (BlockOpsF demote+factor is wrap work, like
     // the fp64 convenience overload attributes BlockOps).
    StageMeter meter("fsi.wrap", stats.seconds_wrap, stats.flops_wrap);
    const pcyclic::BlockOpsF opsf(m);
    dense::MatrixF gtilde_f = sched::acquire_f(gtilde.rows(), gtilde.cols());
    dense::demote(gtilde, gtilde_f.view());
    results.reserve(patterns.size());
    for (Pattern p : patterns)
      results.push_back(wrap_f(opsf, gtilde_f, p, sel, coarse_parallel));
    sched::recycle(std::move(gtilde_f));
  }
  sched::recycle(std::move(gtilde));

  // Residual gate: probe every checkable pattern (unconditionally — mixed
  // runs always pay the ~4 N^3 probe; it is what licenses the fp32 result).
  util::WallTimer health_timer;
  bool ok = true;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    const double r = probe_residual(m, results[i], patterns[i], sel);
    if (r < 0.0) continue;  // pattern stores no adjacent blocks
    obs::health::record_residual(r);
    if (!(r <= gate.resid_max)) ok = false;  // catches NaN too
  }
  obs::metrics::add_seconds(obs::metrics::Accum::HealthCheck,
                            health_timer.seconds());
  return ok;
}

/// Mixed driver shared by fsi() and fsi_multi(): try fp32, fall back to
/// fp64 (counted + WARN-logged) when the gate trips or the fp32 factorise
/// dies on a singular block.  True = \p results holds the accepted mixed
/// run; false = caller must run the fp64 path (with \p stats freshly
/// zeroed here, mixed_fallback flagged).
bool fsi_mixed_try(const PCyclicMatrix& m, const std::vector<Pattern>& patterns,
                   const Selection& sel, const FsiOptions& opts,
                   std::vector<SelectedInversion>& results, FsiStats& stats) {
  const char* reason = "health_gate";
  bool ok = false;
  try {
    ok = fsi_mixed_attempt(m, patterns, sel, opts.coarse_parallel, results,
                           stats);
  } catch (const util::CheckError& e) {
    // e.g. a block singular at fp32 that is fine at fp64.
    reason = e.what();
    ok = false;
  }
  if (ok) {
    stats.precision_used = Precision::Mixed;
    return true;
  }
  obs::metrics::add(obs::metrics::Counter::MixedFallbacks, 1);
  FSI_LOG_WARN("fsi.mixed_fallback", {"reason", reason},
               {"resid_max", mixed_gate().resid_max},
               {"cond_max", mixed_gate().cond_max});
  results.clear();
  const index_t q = stats.q;
  stats = FsiStats{};
  stats.q = q;
  stats.mixed_fallback = true;
  stats.precision_used = Precision::Fp64;
  return false;
}

}  // namespace

SelectedInversion fsi(const PCyclicMatrix& m, const pcyclic::BlockOps& ops,
                      const FsiOptions& opts, util::Rng& rng, FsiStats* stats) {
  FSI_CHECK(&ops.matrix() == &m, "fsi: BlockOps must wrap the same matrix");
  const index_t c = opts.c;
  const index_t q =
      (opts.q >= 0) ? opts.q : static_cast<index_t>(rng.below(static_cast<std::uint64_t>(c)));
  Selection sel(m.num_blocks(), c, q);

  FsiStats local;
  local.q = q;

  if (opts.precision == Precision::Mixed) {
    std::vector<SelectedInversion> results;
    if (fsi_mixed_try(m, {opts.pattern}, sel, opts, results, local)) {
      if (stats != nullptr) *stats = local;
      return std::move(results.front());
    }
    // Gate tripped: fall through to the fp64 path below (loop or graph),
    // with local freshly zeroed and mixed_fallback flagged.
  }

  if (use_graph(opts)) {
    const bool fell_back = local.mixed_fallback;
    std::vector<SelectedInversion> results =
        fsi_graph_run(m, ops, {opts.pattern}, sel, local);
    local.mixed_fallback = fell_back;
    if (stats != nullptr) *stats = local;
    return std::move(results.front());
  }

  PCyclicMatrix reduced = [&] {  // Stage 1: CLS.
    StageMeter meter("fsi.cls", local.seconds_cls, local.flops_cls);
    return cluster(m, c, q, opts.coarse_parallel);
  }();
  dense::Matrix gtilde = [&] {  // Stage 2: BSOFI.
    StageMeter meter("fsi.bsofi", local.seconds_bsofi, local.flops_bsofi);
    return bsofi::invert(reduced);
  }();
  reduced.release_blocks();  // the clustered products feed only BSOFI
  SelectedInversion out = [&] {  // Stage 3: WRP.
    StageMeter meter("fsi.wrap", local.seconds_wrap, local.flops_wrap);
    return wrap(ops, gtilde, opts.pattern, sel, opts.coarse_parallel);
  }();
  sched::recycle(std::move(gtilde));
  residual_spot_check(m, out, opts.pattern, sel);

  if (stats != nullptr) *stats = local;
  return out;
}

SelectedInversion fsi(const PCyclicMatrix& m, const FsiOptions& opts,
                      util::Rng& rng, FsiStats* stats) {
  const index_t c = opts.c;
  const index_t q =
      (opts.q >= 0) ? opts.q : static_cast<index_t>(rng.below(static_cast<std::uint64_t>(c)));
  FsiOptions fixed = opts;
  fixed.q = q;

  FsiStats local;

  // BlockOps factorisation feeds only the wrapping moves; attribute it there.
  double ops_seconds = 0.0;
  std::uint64_t ops_f = 0;
  std::unique_ptr<pcyclic::BlockOps> ops;
  {
    StageMeter meter("fsi.blockops", ops_seconds, ops_f);
    ops = std::make_unique<pcyclic::BlockOps>(m);
  }

  SelectedInversion out = fsi(m, *ops, fixed, rng, &local);
  local.seconds_wrap += ops_seconds;
  local.flops_wrap += ops_f;
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<SelectedInversion> fsi_multi(const PCyclicMatrix& m,
                                         const pcyclic::BlockOps& ops,
                                         const std::vector<Pattern>& patterns,
                                         const FsiOptions& opts, util::Rng& rng,
                                         FsiStats* stats) {
  FSI_CHECK(&ops.matrix() == &m, "fsi_multi: BlockOps must wrap the same matrix");
  FSI_CHECK(!patterns.empty(), "fsi_multi: need at least one pattern");
  const index_t c = opts.c;
  const index_t q =
      (opts.q >= 0) ? opts.q : static_cast<index_t>(rng.below(static_cast<std::uint64_t>(c)));
  Selection sel(m.num_blocks(), c, q);

  FsiStats local;
  local.q = q;

  if (opts.precision == Precision::Mixed) {
    std::vector<SelectedInversion> out;
    if (fsi_mixed_try(m, patterns, sel, opts, out, local)) {
      if (stats != nullptr) *stats = local;
      return out;
    }
  }

  if (use_graph(opts)) {
    std::vector<SelectedInversion> out = fsi_graph_run(m, ops, patterns, sel, local);
    if (stats != nullptr) *stats = local;
    return out;
  }

  PCyclicMatrix reduced = [&] {
    StageMeter meter("fsi.cls", local.seconds_cls, local.flops_cls);
    return cluster(m, c, q, opts.coarse_parallel);
  }();
  dense::Matrix gtilde = [&] {
    StageMeter meter("fsi.bsofi", local.seconds_bsofi, local.flops_bsofi);
    return bsofi::invert(reduced);
  }();
  reduced.release_blocks();

  std::vector<SelectedInversion> out;
  out.reserve(patterns.size());
  {
    StageMeter meter("fsi.wrap", local.seconds_wrap, local.flops_wrap);
    for (Pattern p : patterns)
      out.push_back(wrap(ops, gtilde, p, sel, opts.coarse_parallel));
  }
  sched::recycle(std::move(gtilde));
  for (std::size_t i = 0; i < patterns.size(); ++i)
    residual_spot_check(m, out[i], patterns[i], sel);

  if (stats != nullptr) *stats = local;
  return out;
}

dense::Matrix equal_time_block(const PCyclicMatrix& m, index_t k, index_t c) {
  FSI_OBS_SPAN("fsi.equal_time_block");
  const index_t l = m.num_blocks();
  FSI_CHECK(k >= 0 && k < l, "equal_time_block: block index out of range");
  FSI_CHECK(c > 0 && l % c == 0, "equal_time_block: c must divide L");
  // Choose q so that k is a selected (seed) index: (k + q + 1) % c == 0.
  const index_t q = m.wrap(-(k + 1)) % c;
  Selection sel(l, c, q);
  FSI_ASSERT(sel.contains(k));
  // Seed position of k among the selected indices.
  const index_t k0 = (k + q + 1) / c - 1;

  PCyclicMatrix reduced = cluster(m, c, q);
  bsofi::Bsofi factor(reduced);
  reduced.release_blocks();
  dense::Matrix row = factor.inverse_block_row(k0);
  factor.release_workspace();
  const index_t n = m.block_size();
  dense::Matrix out = dense::Matrix::copy_of(row.block(0, k0 * n, n, n));
  sched::recycle(std::move(row));
  return out;
}

double ComplexityModel::cls_flops() const {
  const double n3 = static_cast<double>(n_block) * n_block * n_block;
  return 2.0 * b() * (static_cast<double>(c) - 1.0) * n3;
}

double ComplexityModel::bsofi_flops() const {
  const double n3 = static_cast<double>(n_block) * n_block * n_block;
  return 7.0 * static_cast<double>(b()) * b() * n3;
}

double ComplexityModel::wrap_flops(Pattern pattern) const {
  const double n3 = static_cast<double>(n_block) * n_block * n_block;
  const double bd = static_cast<double>(b());
  const double cd = static_cast<double>(c);
  switch (pattern) {
    case Pattern::Diagonal:
      return 0.0;  // the seeds are the pattern
    case Pattern::SubDiagonal:
      return 2.0 * bd * n3;  // one adjacency move per seed
    case Pattern::Columns:
    case Pattern::Rows:
      // 3(bL - b^2)N^3 with L = bc.
      return 3.0 * (bd * (bd * cd) - bd * bd) * n3;
    case Pattern::AllDiagonals:
      return 4.0 * bd * (cd - 1.0) * n3;  // composed two-move diagonal steps
  }
  return 0.0;
}

double ComplexityModel::fsi_flops(Pattern pattern) const {
  const double n3 = static_cast<double>(n_block) * n_block * n_block;
  const double bd = static_cast<double>(b());
  const double cd = static_cast<double>(c);
  switch (pattern) {
    case Pattern::Diagonal:
      return (2.0 * (cd - 1.0) + 7.0 * bd) * bd * n3;
    case Pattern::SubDiagonal:
      return (2.0 * cd + 7.0 * bd) * bd * n3;
    case Pattern::Columns:
    case Pattern::Rows:
      return 3.0 * bd * bd * cd * n3;
    case Pattern::AllDiagonals:
      // CLS + BSOFI as for S1, plus ~4 N^3 per composed diagonal move.
      return (2.0 * (cd - 1.0) + 7.0 * bd) * bd * n3 +
             4.0 * bd * (cd - 1.0) * n3;
  }
  return 0.0;
}

double ComplexityModel::explicit_flops(Pattern pattern) const {
  const double n3 = static_cast<double>(n_block) * n_block * n_block;
  const double bd = static_cast<double>(b());
  const double cd = static_cast<double>(c);
  switch (pattern) {
    case Pattern::Diagonal:
      return 2.0 * bd * bd * cd * n3;
    case Pattern::SubDiagonal:
      return 4.0 * bd * bd * cd * n3;
    case Pattern::Columns:
    case Pattern::Rows:
      return bd * bd * bd * cd * cd * n3;
    case Pattern::AllDiagonals:
      // One W_k chain + inverse per diagonal block, L of them.
      return 2.0 * bd * bd * cd * cd * n3;
  }
  return 0.0;
}

}  // namespace fsi::selinv
