#include "fsi/bsofi/bsofi.hpp"

#include <algorithm>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/lu.hpp"
#include "fsi/dense/norms.hpp"
#include "fsi/dense/qr.hpp"
#include "fsi/obs/health.hpp"
#include "fsi/obs/trace.hpp"
#include "fsi/sched/workspace_pool.hpp"
#include "fsi/util/timer.hpp"

namespace fsi::bsofi {

using dense::MatrixView;
using dense::Side;
using dense::Trans;

Bsofi::Bsofi(const pcyclic::PCyclicMatrix& m)
    : n_(m.block_size()), b_(m.num_blocks()) {
  FSI_OBS_SPAN("bsofi.factor");
  const index_t n = n_;
  const index_t b = b_;
  panels_.reserve(static_cast<std::size_t>(b));
  taus_.reserve(static_cast<std::size_t>(b));

  if (b == 1) {
    // Degenerate p-cyclic matrix: M = I + B_1; a single QR.
    Matrix p = sched::acquire(n, n);
    dense::set_identity(p);
    dense::axpby(1.0, p, m.b(0));
    std::vector<double> tau;
    dense::geqrf(p, tau);
    panels_.push_back(std::move(p));
    taus_.push_back(std::move(tau));
    return;
  }

  // Carry blocks: x = current (i, i) fill, y = current (i, b-1) fill.
  // All workspaces come from the pool: a batched run re-factors thousands
  // of same-shape reduced matrices, and these buffers recycle across calls.
  Matrix x = sched::acquire(n, n);
  dense::set_identity(x);
  Matrix y = sched::acquire_copy(m.b(0));  // the +B_1 corner block

  for (index_t i = 0; i + 1 < b; ++i) {
    const bool last_panel = (i + 2 == b);

    // Panel = [x; -B_{i+2}] (paper indices; 0-based block b(i+1)).
    Matrix panel = sched::acquire(2 * n, n);
    dense::copy(x, panel.block(0, 0, n, n));
    {
      MatrixView bottom = panel.block(n, 0, n, n);
      ConstMatrixView bnext = m.b(i + 1);
      for (index_t cj = 0; cj < n; ++cj)
        for (index_t ci = 0; ci < n; ++ci) bottom(ci, cj) = -bnext(ci, cj);
    }
    std::vector<double> tau;
    dense::geqrf(panel, tau);

    if (!last_panel) {
      // Column i+1 currently holds [0; I] in rows (i, i+1).
      Matrix col_next = sched::acquire(2 * n, n);
      dense::set_identity(col_next.block(n, 0, n, n));
      dense::ormqr(Side::Left, Trans::Yes, panel, tau, col_next);
      rsup_.push_back(sched::acquire_copy(col_next.block(0, 0, n, n)));
      sched::recycle(std::move(x));
      x = sched::acquire_copy(col_next.block(n, 0, n, n));
      sched::recycle(std::move(col_next));

      // Last column holds [y; 0] in rows (i, i+1).
      Matrix col_last = sched::acquire(2 * n, n);
      dense::copy(y, col_last.block(0, 0, n, n));
      dense::ormqr(Side::Left, Trans::Yes, panel, tau, col_last);
      rlast_.push_back(sched::acquire_copy(col_last.block(0, 0, n, n)));
      sched::recycle(std::move(y));
      y = sched::acquire_copy(col_last.block(n, 0, n, n));
      sched::recycle(std::move(col_last));
    } else {
      // i = b-2: the next column IS the last column, holding [y; I].
      Matrix col = sched::acquire(2 * n, n);
      dense::copy(y, col.block(0, 0, n, n));
      dense::set_identity(col.block(n, 0, n, n));
      dense::ormqr(Side::Left, Trans::Yes, panel, tau, col);
      rsup_.push_back(sched::acquire_copy(col.block(0, 0, n, n)));
      sched::recycle(std::move(x));
      x = sched::acquire_copy(col.block(n, 0, n, n));
      sched::recycle(std::move(col));
    }

    panels_.push_back(std::move(panel));
    taus_.push_back(std::move(tau));
  }

  // Final N x N QR of the (b-1, b-1) fill.
  std::vector<double> tau;
  dense::geqrf(x, tau);
  panels_.push_back(std::move(x));
  taus_.push_back(std::move(tau));
  sched::recycle(std::move(y));
}

Matrix Bsofi::r_diag(index_t i) const {
  FSI_CHECK(i >= 0 && i < b_, "Bsofi::r_diag: index out of range");
  Matrix r(n_, n_);
  const Matrix& p = panels_[static_cast<std::size_t>(i)];
  for (index_t j = 0; j < n_; ++j)
    for (index_t r_i = 0; r_i <= j; ++r_i) r(r_i, j) = p(r_i, j);
  return r;
}

const Matrix& Bsofi::r_sup(index_t i) const {
  FSI_CHECK(i >= 0 && i + 1 < b_, "Bsofi::r_sup: index out of range");
  return rsup_[static_cast<std::size_t>(i)];
}

const Matrix& Bsofi::r_last(index_t i) const {
  FSI_CHECK(i >= 0 && i + 2 < b_, "Bsofi::r_last: index out of range");
  return rlast_[static_cast<std::size_t>(i)];
}

Matrix Bsofi::inverse() const {
  const index_t n = n_, b = b_;
  const index_t dim = n * b;
  Matrix g = sched::acquire(dim, dim);

  // ---- Stage 1: G := R^-1 (block upper triangular back-substitution). ----
  // Column j of R^-1: X_jj = R_jj^-1; X_ij = -R_ii^-1 (R_{i,i+1} X_{i+1,j}
  //                                   + [j == b-1] R_{i,b-1} X_{b-1,j}).
  // Block columns are independent — parallelise across them.  Per-column
  // spans expose the back-substitution imbalance (late columns are longer).
#pragma omp parallel for schedule(dynamic)
  for (index_t j = 0; j < b; ++j) {
    FSI_OBS_SPAN("bsofi.rinv.col");
    // X_jj = R_jj^-1.
    MatrixView xjj = g.block(j * n, j * n, n, n);
    dense::set_identity(xjj);
    dense::trsm(Side::Left, dense::Uplo::Upper, Trans::No, dense::Diag::NonUnit,
                1.0, panels_[static_cast<std::size_t>(j)].block(0, 0, n, n), xjj);
    for (index_t i = j - 1; i >= 0; --i) {
      MatrixView xij = g.block(i * n, j * n, n, n);
      // RHS = -R_{i,i+1} X_{i+1,j}  (always present for i < b-1)
      dense::gemm(Trans::No, Trans::No, -1.0, rsup_[static_cast<std::size_t>(i)],
                  g.block((i + 1) * n, j * n, n, n), 0.0, xij);
      // ... - R_{i,b-1} X_{b-1,j}, only nonzero when j == b-1 and i < b-2.
      if (j == b - 1 && i + 2 < b)
        dense::gemm(Trans::No, Trans::No, -1.0, rlast_[static_cast<std::size_t>(i)],
                    g.block((b - 1) * n, j * n, n, n), 1.0, xij);
      dense::trsm(Side::Left, dense::Uplo::Upper, Trans::No, dense::Diag::NonUnit,
                  1.0, panels_[static_cast<std::size_t>(i)].block(0, 0, n, n), xij);
    }
  }

  // ---- Stage 2: G := G Q^T = G Q_{b-1}^T Q_{b-2}^T ... Q_0^T. ----
  // Q_i is embedded at block rows/cols (i, i+1); right-multiplying by Q_i^T
  // touches only block columns (i, i+1) of G.  The final panel (index b-1)
  // is N x N and touches only the last block column.
  FSI_OBS_SPAN("bsofi.applyq");
  for (index_t i = b - 1; i >= 0; --i) {
    const index_t width = (i + 1 < b) ? 2 * n : n;
    dense::ormqr(Side::Right, Trans::Yes, panels_[static_cast<std::size_t>(i)],
                 taus_[static_cast<std::size_t>(i)],
                 g.block(0, i * n, dim, width));
  }
  return g;
}

Matrix Bsofi::inverse_block_row(index_t k0) const {
  FSI_OBS_SPAN("bsofi.block_row");
  FSI_CHECK(k0 >= 0 && k0 < b_, "inverse_block_row: row index out of range");
  const index_t n = n_, b = b_;
  const index_t dim = n * b;
  // Row k0 of X = R^-1 from X R = I, solved left-to-right:
  //   X_{k0,j} R_jj = delta_{k0,j} I - X_{k0,j-1} R_{j-1,j}
  //                   - [j == b-1] sum_{p <= b-3} X_{k0,p} R_{p,b-1}.
  Matrix row = sched::acquire(n, dim);
  {
    MatrixView xkk = row.block(0, k0 * n, n, n);
    dense::set_identity(xkk);
    dense::trsm(Side::Right, dense::Uplo::Upper, Trans::No, dense::Diag::NonUnit,
                1.0, panels_[static_cast<std::size_t>(k0)].block(0, 0, n, n),
                xkk);
  }
  for (index_t j = k0 + 1; j < b; ++j) {
    MatrixView xj = row.block(0, j * n, n, n);
    dense::gemm(Trans::No, Trans::No, -1.0, row.block(0, (j - 1) * n, n, n),
                rsup_[static_cast<std::size_t>(j - 1)], 0.0, xj);
    if (j == b - 1) {
      for (index_t p = k0; p + 2 < b; ++p)
        dense::gemm(Trans::No, Trans::No, -1.0, row.block(0, p * n, n, n),
                    rlast_[static_cast<std::size_t>(p)], 1.0, xj);
    }
    dense::trsm(Side::Right, dense::Uplo::Upper, Trans::No, dense::Diag::NonUnit,
                1.0, panels_[static_cast<std::size_t>(j)].block(0, 0, n, n), xj);
  }

  // Right-apply Q^T = Q_{b-1}^T ... Q_0^T, each touching columns (i, i+1).
  for (index_t i = b - 1; i >= 0; --i) {
    const index_t width = (i + 1 < b) ? 2 * n : n;
    dense::ormqr(Side::Right, Trans::Yes, panels_[static_cast<std::size_t>(i)],
                 taus_[static_cast<std::size_t>(i)],
                 row.block(0, i * n, n, width));
  }
  return row;
}

void Bsofi::release_workspace() {
  for (Matrix& p : panels_) sched::recycle(std::move(p));
  for (Matrix& r : rsup_) sched::recycle(std::move(r));
  for (Matrix& r : rlast_) sched::recycle(std::move(r));
  panels_.clear();
  rsup_.clear();
  rlast_.clear();
  taus_.clear();
}

Matrix invert(const pcyclic::PCyclicMatrix& m) {
  Bsofi factor(m);
  Matrix g = factor.inverse();
  factor.release_workspace();
  if (obs::health::enabled()) {
    util::WallTimer health_timer;
    // Exact 1-norm condition number of the reduced p-cyclic matrix: columns
    // hold one identity block plus exactly one +-B~ block, so
    // ||M~||_1 = 1 + max_i ||B~_i||_1, and BSOFI just produced the explicit
    // inverse — cond_1 = ||M~||_1 ||G~||_1 at O((bN)^2) cost, no Hager
    // iteration needed.
    double max_b = 0.0;
    for (index_t i = 0; i < m.num_blocks(); ++i)
      max_b = std::max(max_b, dense::one_norm(m.b(i)));
    obs::health::record_cond1((1.0 + max_b) * dense::one_norm(g.view()));
    if (!dense::all_finite(g.view()))
      obs::health::record_nonfinite("bsofi.inverse");
    obs::metrics::add_seconds(obs::metrics::Accum::HealthCheck,
                              health_timer.seconds());
  }
  return g;
}

Matrix invert_dense_lu(const pcyclic::PCyclicMatrix& m) {
  return dense::inverse(m.to_dense());
}

}  // namespace fsi::bsofi
