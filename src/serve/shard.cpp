#include "fsi/serve/shard.hpp"

#include <cstring>

#include "fsi/util/check.hpp"

namespace fsi::serve {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

template <class T>
std::uint64_t fnv1a_value(std::uint64_t h, T v) {
  // Hash the value representation, not the object: doubles go through
  // memcpy so -0.0 vs 0.0 stay distinct bit patterns (callers normalise if
  // they care) and there is no padding in the stream.
  return fnv1a(h, &v, sizeof v);
}

/// One more FNV round mixing the replica index into the key hash — the
/// rendezvous score of (key, replica).
std::uint64_t mix(std::uint64_t key_hash, std::uint64_t replica) {
  return fnv1a_value(key_hash, replica);
}

}  // namespace

std::uint64_t batch_key_hash(const BatchKey& key) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_value(h, key.lx);
  h = fnv1a_value(h, key.ly);
  h = fnv1a_value(h, key.l);
  h = fnv1a_value(h, static_cast<std::int64_t>(key.c));
  h = fnv1a_value(h, key.t);
  h = fnv1a_value(h, key.u);
  h = fnv1a_value(h, key.beta);
  return h;
}

std::size_t shard_for(const BatchKey& key, std::size_t replicas) {
  if (replicas <= 1) return 0;
  const std::uint64_t kh = batch_key_hash(key);
  std::size_t best = 0;
  std::uint64_t best_score = mix(kh, 0);
  for (std::size_t r = 1; r < replicas; ++r) {
    const std::uint64_t score = mix(kh, r);
    if (score > best_score) {
      best_score = score;
      best = r;
    }
  }
  return best;
}

ShardedClient::ShardedClient(const std::vector<Endpoint>& endpoints) {
  FSI_CHECK(!endpoints.empty(), "ShardedClient needs at least one endpoint");
  clients_.reserve(endpoints.size());
  for (const auto& ep : endpoints)
    clients_.push_back(std::make_unique<Client>(ep));
}

std::size_t ShardedClient::route(const InvertRequest& request) const {
  // The client does not resolve c (that needs the server's divisor rule),
  // so the routing key uses the *requested* c — identical requests still
  // agree, which is all sharding needs.
  const BatchKey key{request.lx, request.ly, request.l,
                     static_cast<index_t>(request.c),
                     request.t,  request.u,  request.beta};
  return shard_for(key, clients_.size());
}

std::future<InvertResponse> ShardedClient::submit(InvertRequest request) {
  return clients_[route(request)]->submit(std::move(request));
}

InvertResponse ShardedClient::request(InvertRequest req) {
  return clients_[route(req)]->request(std::move(req));
}

StatsResponse ShardedClient::stats(std::size_t i) {
  return clients_.at(i)->stats();
}

}  // namespace fsi::serve
