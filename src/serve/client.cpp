#include "fsi/serve/client.hpp"

#include <atomic>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include <unistd.h>

#include "fsi/obs/trace.hpp"
#include "fsi/util/check.hpp"

namespace fsi::serve {

namespace {

/// Place the server-reported breakdown of \p r onto the client's timeline:
/// the server-side total (queue wait + batch wait + exec) is centred in the
/// RTT slack, which splits the network/serialize overhead evenly between
/// the outbound and return legs.  All spans share the request's trace_id,
/// so chrome://tracing shows the stitched journey.
void record_stitched_spans(const InvertResponse& r, std::int64_t send_ns,
                           std::int64_t recv_ns) {
  obs::record_interval("serve.client.rtt", send_ns, recv_ns, r.trace_id);
  const auto server_ns = static_cast<std::int64_t>(
      r.queue_wait_ns + r.batch_wait_ns + r.exec_ns);
  if (server_ns <= 0) return;  // v1 server or a pre-queue reject
  const std::int64_t rtt = recv_ns - send_ns;
  const std::int64_t slack = rtt > server_ns ? rtt - server_ns : 0;
  std::int64_t t = send_ns + slack / 2;
  const auto leg = [&](const char* name, std::uint64_t dur) {
    if (dur == 0) return;
    obs::record_interval(name, t, t + static_cast<std::int64_t>(dur),
                         r.trace_id);
    t += static_cast<std::int64_t>(dur);
  };
  leg("serve.server.queue_wait", r.queue_wait_ns);
  leg("serve.server.batch_wait", r.batch_wait_ns);
  leg("serve.server.exec", r.exec_ns);
}

}  // namespace

struct Client::Impl {
  Socket sock;
  std::thread reader;
  std::atomic<bool> open{false};
  std::mutex write_mu;

  /// One in-flight request: its future's promise plus the send timestamp
  /// the reader needs to record the client-side RTT span.
  struct Inflight {
    std::promise<InvertResponse> promise;
    std::int64_t send_ns = 0;
  };

  std::mutex pending_mu;
  std::map<std::uint64_t, Inflight> pending;
  std::map<std::uint64_t, std::promise<StatsResponse>> pending_stats;
  std::uint64_t next_id = 1;  ///< shared by invert and stats requests

  void reader_loop();
  void fail_all(const std::string& why);
};

void Client::Impl::fail_all(const std::string& why) {
  std::map<std::uint64_t, Inflight> orphaned;
  std::map<std::uint64_t, std::promise<StatsResponse>> orphaned_stats;
  {
    std::lock_guard<std::mutex> lock(pending_mu);
    orphaned.swap(pending);
    orphaned_stats.swap(pending_stats);
  }
  for (auto& [id, inflight] : orphaned) {
    InvertResponse r;
    r.id = id;
    r.status = Status::Error;
    r.message = why;
    inflight.promise.set_value(std::move(r));
  }
  for (auto& [id, promise] : orphaned_stats) {
    promise.set_exception(
        std::make_exception_ptr(std::runtime_error("stats failed: " + why)));
  }
}

void Client::Impl::reader_loop() {
  FrameParser parser;
  std::vector<std::uint8_t> buf(1 << 16);
  std::vector<std::uint8_t> payload;
  std::string why = "connection closed";
  try {
    for (;;) {
      const long got = sock.recv_some(buf.data(), buf.size());
      if (got <= 0) break;
      parser.feed(buf.data(), static_cast<std::size_t>(got));
      while (parser.next(payload)) {
        const std::int64_t recv_ns = obs::now_ns();
        const Decoded d = decode_payload(payload.data(), payload.size());
        if (d.type == MsgType::StatsResponse) {
          std::promise<StatsResponse> promise;
          bool found = false;
          {
            std::lock_guard<std::mutex> lock(pending_mu);
            const auto it = pending_stats.find(d.stats.id);
            if (it != pending_stats.end()) {
              promise = std::move(it->second);
              pending_stats.erase(it);
              found = true;
            }
          }
          if (found) promise.set_value(StatsResponse(d.stats));
          continue;
        }
        FSI_CHECK(d.type == MsgType::InvertResponse,
                  "client: server sent a non-response message");
        std::promise<InvertResponse> promise;
        std::int64_t send_ns = 0;
        bool found = false;
        {
          std::lock_guard<std::mutex> lock(pending_mu);
          const auto it = pending.find(d.response.id);
          if (it != pending.end()) {
            promise = std::move(it->second.promise);
            send_ns = it->second.send_ns;
            pending.erase(it);
            found = true;
          }
        }
        // id 0: a server-initiated error for an undecodable request; it
        // cannot be matched, so it resolves the oldest outstanding future
        // below via fail_all when the server closes, or is dropped here.
        if (found) {
          if (obs::enabled() && send_ns > 0)
            record_stitched_spans(d.response, send_ns, recv_ns);
          promise.set_value(InvertResponse(d.response));
        }
      }
    }
  } catch (const std::exception& e) {
    why = e.what();
  }
  open.store(false, std::memory_order_relaxed);
  fail_all(why);
}

Client::Client(const Endpoint& endpoint) : impl_(std::make_unique<Impl>()) {
  impl_->sock = connect_to(endpoint);
  impl_->open.store(true, std::memory_order_relaxed);
  impl_->reader = std::thread([impl = impl_.get()] { impl->reader_loop(); });
}

Client::~Client() { close(); }

void Client::close() {
  if (impl_ == nullptr) return;
  impl_->open.store(false, std::memory_order_relaxed);
  impl_->sock.shutdown_both();
  if (impl_->reader.joinable()) impl_->reader.join();
  impl_->sock.close();
  impl_->fail_all("client closed");
}

bool Client::connected() const {
  return impl_->open.load(std::memory_order_relaxed);
}

std::future<InvertResponse> Client::submit(InvertRequest request) {
  FSI_CHECK(connected(), "client: connection is closed");
  const std::int64_t send_ns = obs::now_ns();
  request.client_send_ns = send_ns;
  std::future<InvertResponse> future;
  {
    std::lock_guard<std::mutex> lock(impl_->pending_mu);
    request.id = impl_->next_id++;
    // Auto-trace when tracing is on: pid << 32 | id is unique across the
    // clients of one machine, so server-side spans stay attributable.
    if (request.trace_id == 0 && obs::enabled())
      request.trace_id =
          (static_cast<std::uint64_t>(::getpid()) << 32) | request.id;
    auto [it, inserted] = impl_->pending.emplace(
        request.id, Impl::Inflight{std::promise<InvertResponse>(), send_ns});
    FSI_ASSERT(inserted);
    future = it->second.promise.get_future();
  }
  std::vector<std::uint8_t> frame;
  append_frame(frame, encode_request(request));
  bool sent = false;
  {
    std::lock_guard<std::mutex> lock(impl_->write_mu);
    sent = impl_->sock.send_all(frame.data(), frame.size());
  }
  if (!sent) {
    impl_->open.store(false, std::memory_order_relaxed);
    // The reader will fail_all() when recv notices, but resolve this one
    // now in case the reader is blocked on a half-open connection.
    std::promise<InvertResponse> promise;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(impl_->pending_mu);
      const auto it = impl_->pending.find(request.id);
      if (it != impl_->pending.end()) {
        promise = std::move(it->second.promise);
        impl_->pending.erase(it);
        found = true;
      }
    }
    if (found) {
      InvertResponse r;
      r.id = request.id;
      r.status = Status::Error;
      r.message = "send failed: connection closed";
      promise.set_value(std::move(r));
    }
  }
  return future;
}

InvertResponse Client::request(InvertRequest req) {
  return submit(std::move(req)).get();
}

std::future<StatsResponse> Client::submit_stats() {
  FSI_CHECK(connected(), "client: connection is closed");
  std::future<StatsResponse> future;
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(impl_->pending_mu);
    id = impl_->next_id++;
    auto [it, inserted] =
        impl_->pending_stats.emplace(id, std::promise<StatsResponse>());
    FSI_ASSERT(inserted);
    future = it->second.get_future();
  }
  std::vector<std::uint8_t> frame;
  append_frame(frame, encode_stats_request(id));
  bool sent = false;
  {
    std::lock_guard<std::mutex> lock(impl_->write_mu);
    sent = impl_->sock.send_all(frame.data(), frame.size());
  }
  if (!sent) {
    impl_->open.store(false, std::memory_order_relaxed);
    std::promise<StatsResponse> promise;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(impl_->pending_mu);
      const auto it = impl_->pending_stats.find(id);
      if (it != impl_->pending_stats.end()) {
        promise = std::move(it->second);
        impl_->pending_stats.erase(it);
        found = true;
      }
    }
    if (found)
      promise.set_exception(std::make_exception_ptr(
          std::runtime_error("stats failed: send failed")));
  }
  return future;
}

StatsResponse Client::stats() { return submit_stats().get(); }

}  // namespace fsi::serve
