#include "fsi/serve/client.hpp"

#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "fsi/util/check.hpp"

namespace fsi::serve {

struct Client::Impl {
  Socket sock;
  std::thread reader;
  std::atomic<bool> open{false};
  std::mutex write_mu;

  std::mutex pending_mu;
  std::map<std::uint64_t, std::promise<InvertResponse>> pending;
  std::uint64_t next_id = 1;

  void reader_loop();
  void fail_all(const std::string& why);
};

void Client::Impl::fail_all(const std::string& why) {
  std::map<std::uint64_t, std::promise<InvertResponse>> orphaned;
  {
    std::lock_guard<std::mutex> lock(pending_mu);
    orphaned.swap(pending);
  }
  for (auto& [id, promise] : orphaned) {
    InvertResponse r;
    r.id = id;
    r.status = Status::Error;
    r.message = why;
    promise.set_value(std::move(r));
  }
}

void Client::Impl::reader_loop() {
  FrameParser parser;
  std::vector<std::uint8_t> buf(1 << 16);
  std::vector<std::uint8_t> payload;
  std::string why = "connection closed";
  try {
    for (;;) {
      const long got = sock.recv_some(buf.data(), buf.size());
      if (got <= 0) break;
      parser.feed(buf.data(), static_cast<std::size_t>(got));
      while (parser.next(payload)) {
        const Decoded d = decode_payload(payload.data(), payload.size());
        FSI_CHECK(d.type == MsgType::InvertResponse,
                  "client: server sent a non-response message");
        std::promise<InvertResponse> promise;
        bool found = false;
        {
          std::lock_guard<std::mutex> lock(pending_mu);
          const auto it = pending.find(d.response.id);
          if (it != pending.end()) {
            promise = std::move(it->second);
            pending.erase(it);
            found = true;
          }
        }
        // id 0: a server-initiated error for an undecodable request; it
        // cannot be matched, so it resolves the oldest outstanding future
        // below via fail_all when the server closes, or is dropped here.
        if (found) promise.set_value(InvertResponse(d.response));
      }
    }
  } catch (const std::exception& e) {
    why = e.what();
  }
  open.store(false, std::memory_order_relaxed);
  fail_all(why);
}

Client::Client(const Endpoint& endpoint) : impl_(std::make_unique<Impl>()) {
  impl_->sock = connect_to(endpoint);
  impl_->open.store(true, std::memory_order_relaxed);
  impl_->reader = std::thread([impl = impl_.get()] { impl->reader_loop(); });
}

Client::~Client() { close(); }

void Client::close() {
  if (impl_ == nullptr) return;
  impl_->open.store(false, std::memory_order_relaxed);
  impl_->sock.shutdown_both();
  if (impl_->reader.joinable()) impl_->reader.join();
  impl_->sock.close();
  impl_->fail_all("client closed");
}

bool Client::connected() const {
  return impl_->open.load(std::memory_order_relaxed);
}

std::future<InvertResponse> Client::submit(InvertRequest request) {
  FSI_CHECK(connected(), "client: connection is closed");
  std::future<InvertResponse> future;
  {
    std::lock_guard<std::mutex> lock(impl_->pending_mu);
    request.id = impl_->next_id++;
    auto [it, inserted] =
        impl_->pending.emplace(request.id, std::promise<InvertResponse>());
    FSI_ASSERT(inserted);
    future = it->second.get_future();
  }
  std::vector<std::uint8_t> frame;
  append_frame(frame, encode_request(request));
  bool sent = false;
  {
    std::lock_guard<std::mutex> lock(impl_->write_mu);
    sent = impl_->sock.send_all(frame.data(), frame.size());
  }
  if (!sent) {
    impl_->open.store(false, std::memory_order_relaxed);
    // The reader will fail_all() when recv notices, but resolve this one
    // now in case the reader is blocked on a half-open connection.
    std::promise<InvertResponse> promise;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(impl_->pending_mu);
      const auto it = impl_->pending.find(request.id);
      if (it != impl_->pending.end()) {
        promise = std::move(it->second);
        impl_->pending.erase(it);
        found = true;
      }
    }
    if (found) {
      InvertResponse r;
      r.id = request.id;
      r.status = Status::Error;
      r.message = "send failed: connection closed";
      promise.set_value(std::move(r));
    }
  }
  return future;
}

InvertResponse Client::request(InvertRequest req) {
  return submit(std::move(req)).get();
}

}  // namespace fsi::serve
