#include "fsi/serve/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "fsi/util/check.hpp"

namespace fsi::serve {

Endpoint Endpoint::parse(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.is_unix = true;
    ep.path = spec.substr(5);
    FSI_CHECK(!ep.path.empty(), "endpoint: empty unix socket path");
    FSI_CHECK(ep.path.size() < sizeof(sockaddr_un{}.sun_path),
              "endpoint: unix socket path too long");
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    ep.is_unix = false;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    FSI_CHECK(colon != std::string::npos && colon > 0,
              "endpoint: expected tcp:<host>:<port>, got '" + spec + "'");
    ep.host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    char* end = nullptr;
    const long port = std::strtol(port_str.c_str(), &end, 10);
    FSI_CHECK(end != nullptr && *end == '\0' && port >= 0 && port <= 65535,
              "endpoint: bad tcp port '" + port_str + "'");
    ep.port = static_cast<int>(port);
    return ep;
  }
  FSI_CHECK(false,
            "endpoint: expected unix:<path> or tcp:<host>:<port>, got '" +
                spec + "'");
  return ep;  // unreachable
}

std::string Endpoint::describe() const {
  return is_unix ? "unix:" + path : "tcp:" + host + ":" + std::to_string(port);
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Socket::send_all(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  while (n > 0) {
    const long sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (sent == 0) return false;
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

long Socket::recv_some(void* out, std::size_t n) {
  for (;;) {
    const long got = ::recv(fd_, out, n, 0);
    if (got < 0 && errno == EINTR) continue;
    return got;
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

void make_unix_addr(const std::string& path, sockaddr_un& addr) {
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
}

void make_tcp_addr(const std::string& host, int port, sockaddr_in& addr) {
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string resolved =
      (host.empty() || host == "localhost") ? "127.0.0.1" : host;
  FSI_CHECK(::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) == 1,
            "endpoint: cannot parse IPv4 address '" + resolved + "'");
}

}  // namespace

Listener Listener::listen_on(const Endpoint& ep, int backlog,
                             bool reuse_port) {
  FSI_CHECK(!reuse_port || !ep.is_unix,
            "listener: SO_REUSEPORT requires a tcp: endpoint");
  Listener l;
  l.endpoint_ = ep;

  int pipe_fds[2];
  FSI_CHECK(::pipe(pipe_fds) == 0, "listener: pipe() failed");
  l.wake_read_ = pipe_fds[0];
  l.wake_write_ = pipe_fds[1];

  if (ep.is_unix) {
    l.listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    FSI_CHECK(l.listen_fd_ >= 0, "listener: socket(AF_UNIX) failed");
    ::unlink(ep.path.c_str());  // stale socket file from a previous run
    sockaddr_un addr;
    make_unix_addr(ep.path, addr);
    FSI_CHECK(::bind(l.listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof addr) == 0,
              "listener: bind(" + ep.path + ") failed: " +
                  std::string(std::strerror(errno)));
    l.unlink_on_close_ = true;
  } else {
    l.listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    FSI_CHECK(l.listen_fd_ >= 0, "listener: socket(AF_INET) failed");
    const int one = 1;
    ::setsockopt(l.listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (reuse_port)
      FSI_CHECK(::setsockopt(l.listen_fd_, SOL_SOCKET, SO_REUSEPORT, &one,
                             sizeof one) == 0,
                "listener: setsockopt(SO_REUSEPORT) failed");
    sockaddr_in addr;
    make_tcp_addr(ep.host, ep.port, addr);
    FSI_CHECK(::bind(l.listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof addr) == 0,
              "listener: bind(" + ep.describe() + ") failed: " +
                  std::string(std::strerror(errno)));
    if (ep.port == 0) {  // resolve the ephemeral port
      sockaddr_in bound;
      socklen_t len = sizeof bound;
      FSI_CHECK(::getsockname(l.listen_fd_,
                              reinterpret_cast<sockaddr*>(&bound), &len) == 0,
                "listener: getsockname failed");
      l.endpoint_.port = ntohs(bound.sin_port);
    }
  }
  FSI_CHECK(::listen(l.listen_fd_, backlog) == 0, "listener: listen failed");
  return l;
}

Listener::Listener(Listener&& other) noexcept
    : endpoint_(std::move(other.endpoint_)),
      listen_fd_(other.listen_fd_),
      wake_read_(other.wake_read_),
      wake_write_(other.wake_write_),
      unlink_on_close_(other.unlink_on_close_) {
  other.listen_fd_ = other.wake_read_ = other.wake_write_ = -1;
  other.unlink_on_close_ = false;
}

Listener::~Listener() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
  if (unlink_on_close_) ::unlink(endpoint_.path.c_str());
}

Socket Listener::accept_once() {
  pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_read_, POLLIN, 0}};
  for (;;) {
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Socket();
    }
    if ((fds[1].revents & POLLIN) != 0) return Socket();  // woken for stop
    if ((fds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      return fd >= 0 ? Socket(fd) : Socket();
    }
  }
}

void Listener::wake() {
  if (wake_write_ >= 0) {
    const char byte = 1;
    [[maybe_unused]] const long n = ::write(wake_write_, &byte, 1);
  }
}

Socket connect_to(const Endpoint& ep) {
  if (ep.is_unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    FSI_CHECK(fd >= 0, "connect: socket(AF_UNIX) failed");
    sockaddr_un addr;
    make_unix_addr(ep.path, addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      const int err = errno;
      ::close(fd);
      FSI_CHECK(false, "connect(" + ep.describe() + ") failed: " +
                           std::string(std::strerror(err)));
    }
    return Socket(fd);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  FSI_CHECK(fd >= 0, "connect: socket(AF_INET) failed");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr;
  make_tcp_addr(ep.host, ep.port, addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    FSI_CHECK(false, "connect(" + ep.describe() + ") failed: " +
                         std::string(std::strerror(err)));
  }
  return Socket(fd);
}

}  // namespace fsi::serve
