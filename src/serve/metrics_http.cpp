#include "fsi/serve/metrics_http.hpp"

#include <poll.h>

#include <atomic>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "fsi/obs/exporter.hpp"
#include "fsi/obs/log.hpp"
#include "fsi/util/check.hpp"

namespace fsi::serve {
namespace {

/// Everything before the header terminator is capped: a scraper's request
/// line + headers fit in well under 8 KiB, and anything larger is hostile.
constexpr std::size_t kMaxRequestBytes = 8192;
/// Per-connection read budget; a scraper sends its request immediately.
constexpr int kReadTimeoutMs = 2000;

/// Read until "\r\n\r\n", the cap, the timeout, or EOF.  Returns the raw
/// request text (possibly incomplete on timeout — the parser rejects it).
std::string read_request(Socket& sock) {
  std::string req;
  char buf[1024];
  while (req.size() < kMaxRequestBytes &&
         req.find("\r\n\r\n") == std::string::npos) {
    pollfd pfd{sock.fd(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kReadTimeoutMs);
    if (ready <= 0) break;  // timeout or error: give up on this client
    const long got = sock.recv_some(buf, sizeof buf);
    if (got <= 0) break;
    req.append(buf, static_cast<std::size_t>(got));
  }
  return req;
}

/// The request line's method and target ("GET", "/metrics").  Empty method
/// on anything that does not parse as an HTTP/1.x request line.
std::pair<std::string, std::string> parse_request_line(const std::string& req) {
  const std::size_t eol = req.find("\r\n");
  if (eol == std::string::npos) return {};
  const std::string line = req.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return {};
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || line.compare(sp2 + 1, 5, "HTTP/") != 0)
    return {};
  return {line.substr(0, sp1), line.substr(sp1 + 1, sp2 - sp1 - 1)};
}

void send_http(Socket& sock, const char* status, const std::string& content_type,
               const std::string& body) {
  std::string resp = "HTTP/1.1 ";
  resp += status;
  resp += "\r\nContent-Type: ";
  resp += content_type;
  resp += "\r\nContent-Length: ";
  resp += std::to_string(body.size());
  resp += "\r\nConnection: close\r\n\r\n";
  resp += body;
  sock.send_all(resp.data(), resp.size());
}

}  // namespace

struct MetricsExporter::Impl {
  explicit Impl(Endpoint ep) : configured(std::move(ep)) {}

  Endpoint configured;
  Endpoint bound;
  std::optional<Listener> listener;
  std::thread thread;
  std::atomic<bool> started{false};
  std::atomic<bool> stopping{false};
  std::atomic<std::uint64_t> served{0};

  void serve_loop() {
    for (;;) {
      Socket sock = listener->accept_once();
      if (stopping.load(std::memory_order_relaxed)) return;
      if (!sock.valid()) continue;
      handle(sock);
      served.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void handle(Socket& sock) {
    const auto [method, target] = parse_request_line(read_request(sock));
    if (method.empty()) {
      send_http(sock, "400 Bad Request", "text/plain; charset=utf-8",
                "bad request\n");
      return;
    }
    if (method != "GET") {
      send_http(sock, "405 Method Not Allowed", "text/plain; charset=utf-8",
                "GET only\n");
      return;
    }
    if (target == "/metrics") {
      send_http(sock, "200 OK", obs::kOpenMetricsContentType,
                obs::openmetrics());
    } else if (target == "/healthz") {
      send_http(sock, "200 OK", "text/plain; charset=utf-8", "ok\n");
    } else {
      send_http(sock, "404 Not Found", "text/plain; charset=utf-8",
                "try /metrics or /healthz\n");
    }
  }
};

MetricsExporter::MetricsExporter(Endpoint endpoint)
    : impl_(std::make_unique<Impl>(std::move(endpoint))) {}

MetricsExporter::~MetricsExporter() { stop(); }

void MetricsExporter::start() {
  FSI_CHECK(!impl_->started.load(), "serve: metrics exporter started twice");
  impl_->listener.emplace(Listener::listen_on(impl_->configured));
  impl_->bound = impl_->listener->endpoint();
  impl_->started.store(true);
  impl_->thread = std::thread([this] { impl_->serve_loop(); });
  FSI_LOG_INFO("serve.metrics_listen", {"endpoint", impl_->bound.describe()});
}

void MetricsExporter::stop() {
  if (!impl_->started.load()) return;
  if (impl_->stopping.exchange(true)) return;
  impl_->listener->wake();
  if (impl_->thread.joinable()) impl_->thread.join();
  impl_->listener.reset();
}

const Endpoint& MetricsExporter::endpoint() const {
  FSI_CHECK(impl_->started.load(), "serve: metrics exporter not started");
  return impl_->bound;
}

std::uint64_t MetricsExporter::requests_served() const {
  return impl_->served.load(std::memory_order_relaxed);
}

}  // namespace fsi::serve
