#include "fsi/serve/server.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "fsi/obs/build.hpp"
#include "fsi/obs/env.hpp"
#include "fsi/obs/log.hpp"
#include "fsi/obs/metrics.hpp"
#include "fsi/obs/trace.hpp"
#include "fsi/serve/queue.hpp"
#include "fsi/util/check.hpp"

namespace fsi::serve {

ServerOptions ServerOptions::from_env() {
  ServerOptions o;
  const char* sock = std::getenv("FSI_SERVE_SOCKET");
  if (sock != nullptr && sock[0] != '\0') o.endpoint = Endpoint::parse(sock);
  o.queue_depth = static_cast<std::size_t>(std::max(
      1L, obs::env_long("FSI_SERVE_QUEUE",
                        static_cast<long>(o.queue_depth))));
  o.batch_window_us =
      std::max(0L, obs::env_long("FSI_SERVE_BATCH_WINDOW_US",
                                 static_cast<long>(o.batch_window_us)));
  o.max_batch = static_cast<std::size_t>(std::max(
      1L, obs::env_long("FSI_SERVE_MAX_BATCH",
                        static_cast<long>(o.max_batch))));
  o.retry_after_ms = static_cast<std::uint32_t>(std::max(
      0L, obs::env_long("FSI_SERVE_RETRY_AFTER_MS",
                        static_cast<long>(o.retry_after_ms))));
  o.default_deadline_ms =
      std::max(0L, obs::env_long("FSI_SERVE_DEADLINE_MS",
                                 static_cast<long>(o.default_deadline_ms)));
  o.batch.num_workers = static_cast<int>(
      obs::env_long("FSI_SERVE_WORKERS", o.batch.num_workers));
  const char* log = std::getenv("FSI_SERVE_LOG");
  if (log != nullptr && log[0] != '\0') o.access_log = log;
  const char* metrics = std::getenv("FSI_SERVE_METRICS");
  if (metrics != nullptr && metrics[0] != '\0') o.metrics_endpoint = metrics;
  o.adaptive.enabled = obs::env_flag("FSI_SERVE_ADAPTIVE", o.adaptive.enabled);
  o.client_quota = static_cast<std::size_t>(std::max(
      0L, obs::env_long("FSI_SERVE_CLIENT_QUOTA",
                        static_cast<long>(o.client_quota))));
  o.replicas = static_cast<std::size_t>(std::max(
      1L, obs::env_long("FSI_SERVE_REPLICAS",
                        static_cast<long>(o.replicas))));
  return o;
}

namespace {

/// One live client connection: the socket, a write lock so the batcher and
/// the reader can both answer on it, and the liveness flag the queue's
/// cancellation checks read.
struct Conn {
  Socket sock;
  std::mutex write_mu;
  std::atomic<bool> open{true};
  std::thread reader;
  /// Process-unique connection id; the queue's per-client quota accounting
  /// keys on it.
  std::uint64_t id = 0;
};

/// Resolve the policy's zero ceilings from the server's static knobs: the
/// adaptive controller tunes *within* the configured window / max batch,
/// it never exceeds them.
AdaptiveConfig resolve_adaptive(const ServerOptions& o) {
  AdaptiveConfig c = o.adaptive;
  if (c.window_ceiling_us == 0) c.window_ceiling_us = o.batch_window_us;
  if (c.max_batch_ceiling == 0) c.max_batch_ceiling = o.max_batch;
  return c;
}

}  // namespace

struct Server::Impl {
  explicit Impl(ServerOptions o)
      : opts(std::move(o)),
        queue(opts.queue_depth, opts.client_quota),
        policy(resolve_adaptive(opts)) {}

  ServerOptions opts;
  AdmissionQueue queue;
  AdaptivePolicy policy;
  std::atomic<std::uint64_t> next_conn_id{1};
  std::optional<Listener> listener;
  Endpoint bound;  ///< resolved at start(); outlives the listener so
                   ///< endpoint() stays valid after stop()
  std::thread accept_thread;
  std::thread batcher_thread;
  std::atomic<bool> started{false};
  std::atomic<bool> stopping{false};
  std::int64_t start_ns = 0;  ///< obs::now_ns() at start(); uptime origin

  /// Optional per-request JSONL access log (ServerOptions::access_log).
  std::mutex log_mu;
  std::FILE* access_log = nullptr;

  std::mutex conns_mu;
  std::vector<std::shared_ptr<Conn>> conns;

  mutable std::mutex stats_mu;
  ServerStats stats;
  std::vector<double> ok_latencies_s;  ///< one entry per Ok response

  /// Batcher-thread-only cache: one HubbardModel per batch key, so repeated
  /// batches of the same shape skip the matrix-exponential setup.  LRU at
  /// the front, bounded — the key holds client-supplied doubles (t, u,
  /// beta), so an unbounded map would let a parameter-sweeping (or hostile)
  /// client grow server memory without limit.
  static constexpr std::size_t kModelCacheCap = 8;
  std::list<std::pair<BatchKey, std::unique_ptr<qmc::HubbardModel>>> models;

  // ---------------------------------------------------------------------
  void send_response(const std::shared_ptr<Conn>& conn, InvertResponse&& r,
                     std::uint32_t schema = kSchemaVersion);
  void log_response(const InvertResponse& r);
  void handle_payload(const std::shared_ptr<Conn>& conn,
                      const std::vector<std::uint8_t>& payload);
  void process_request(const std::shared_ptr<Conn>& conn, InvertRequest&& req,
                       std::uint32_t schema);
  StatsResponse build_stats(std::uint64_t id);
  void reader_loop(std::shared_ptr<Conn> conn);
  void accept_loop();
  void batcher_loop();
  void run_batch(std::vector<PendingRequest>&& batch);
  const qmc::HubbardModel& model_for(const BatchKey& key);

  void count(std::uint64_t ServerStats::* field) {
    std::lock_guard<std::mutex> lock(stats_mu);
    ++(stats.*field);
  }
};

void Server::Impl::send_response(const std::shared_ptr<Conn>& conn,
                                 InvertResponse&& r, std::uint32_t schema) {
  log_response(r);
  obs::Span span("serve.serialize");
  std::vector<std::uint8_t> frame;
  append_frame(frame, encode_response(r, schema));
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (!conn->open.load(std::memory_order_relaxed)) return;
  if (!conn->sock.send_all(frame.data(), frame.size()))
    conn->open.store(false, std::memory_order_relaxed);
}

void Server::Impl::log_response(const InvertResponse& r) {
  if (access_log == nullptr) return;
  // Wall-clock stamp (the rest of the serve path uses the monotonic clock,
  // which is meaningless across processes in a log file).
  const auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
  std::lock_guard<std::mutex> lock(log_mu);
  std::fprintf(
      access_log,
      "{\"ts_us\":%lld,\"id\":%llu,\"trace_id\":%llu,\"status\":\"%s\","
      "\"queue_wait_ns\":%llu,\"batch_wait_ns\":%llu,\"exec_ns\":%llu,"
      "\"batch_size\":%u,\"occupancy\":%.4f}\n",
      static_cast<long long>(wall), static_cast<unsigned long long>(r.id),
      static_cast<unsigned long long>(r.trace_id), status_name(r.status),
      static_cast<unsigned long long>(r.queue_wait_ns),
      static_cast<unsigned long long>(r.batch_wait_ns),
      static_cast<unsigned long long>(r.exec_ns), r.batch_size,
      r.batch_occupancy);
  std::fflush(access_log);  // tail -f sees complete lines
}

void Server::Impl::handle_payload(const std::shared_ptr<Conn>& conn,
                                  const std::vector<std::uint8_t>& payload) {
  Decoded d;
  try {
    d = decode_payload(payload.data(), payload.size());
  } catch (const util::CheckError& e) {
    // SchemaMismatch or a malformed body.  The frame boundary is intact, so
    // the connection survives; the client learns why its request died.
    // Answered in v1 — the arrival schema is unknown here and every client
    // decodes the v1 body.
    count(&ServerStats::malformed);
    obs::metrics::add(obs::metrics::Counter::ServeErrors, 1);
    FSI_LOG_WARN("serve.malformed", {"reason", e.what()});
    InvertResponse r;
    r.id = 0;
    r.status = Status::Malformed;
    r.message = e.what();
    send_response(conn, std::move(r), kMinSchemaVersion);
    return;
  }
  if (d.type == MsgType::StatsRequest) {
    StatsResponse s = build_stats(d.stats.id);
    std::vector<std::uint8_t> frame;
    append_frame(frame, encode_stats_response(s));
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (!conn->open.load(std::memory_order_relaxed)) return;
    if (!conn->sock.send_all(frame.data(), frame.size()))
      conn->open.store(false, std::memory_order_relaxed);
    return;
  }
  if (d.type != MsgType::InvertRequest) {
    count(&ServerStats::malformed);
    obs::metrics::add(obs::metrics::Counter::ServeErrors, 1);
    FSI_LOG_WARN("serve.malformed",
                 {"reason", "unsupported message type"},
                 {"type", static_cast<unsigned>(d.type)});
    InvertResponse r;
    r.id = 0;
    r.status = Status::Malformed;
    r.message = "server accepts InvertRequest and StatsRequest messages only";
    send_response(conn, std::move(r), kMinSchemaVersion);
    return;
  }
  process_request(conn, std::move(d.request), d.schema);
}

void Server::Impl::process_request(const std::shared_ptr<Conn>& conn,
                                   InvertRequest&& req, std::uint32_t schema) {
  const std::int64_t arrival_ns = obs::now_ns();
  InvertResponse reject;
  reject.id = req.id;
  reject.trace_id = req.trace_id;

  if (stopping.load()) {
    count(&ServerStats::shed_shutdown);
    reject.status = Status::ShuttingDown;
    send_response(conn, std::move(reject), schema);
    return;
  }

  const std::string why = validate_request(req);
  if (!why.empty()) {
    count(&ServerStats::malformed);
    obs::metrics::add(obs::metrics::Counter::ServeErrors, 1);
    FSI_LOG_WARN("serve.malformed", {"id", req.id}, {"reason", why});
    reject.status = Status::Malformed;
    reject.message = why;
    send_response(conn, std::move(reject), schema);
    return;
  }

  // Deadline: relative microsecond budget stamped at arrival.  A
  // non-positive budget (other than "none") is already expired — reject
  // before it can consume a queue slot.
  std::int64_t deadline_us = req.deadline_us;
  if (deadline_us == 0 && opts.default_deadline_ms > 0)
    deadline_us = opts.default_deadline_ms * 1000;
  // Clamp before converting to ns: a huge client-supplied budget (up to
  // INT64_MAX) would overflow `arrival_ns + deadline_us * 1000` — signed
  // overflow is UB and the wrapped deadline would expire instantly.
  constexpr std::int64_t kMaxDeadlineUs = 86'400'000'000;  // 24 h
  deadline_us = std::min(deadline_us, kMaxDeadlineUs);
  if (req.deadline_us < 0) {
    count(&ServerStats::deadline_miss);
    obs::metrics::add(obs::metrics::Counter::ServeDeadlineMiss, 1);
    FSI_LOG_WARN("serve.deadline_miss", {"id", req.id},
                 {"reason", "expired on arrival"});
    reject.status = Status::DeadlineMiss;
    reject.message = "deadline expired on arrival";
    send_response(conn, std::move(reject), schema);
    return;
  }

  PendingRequest p;
  p.c = effective_cluster(req);
  p.q = resolve_q(req, p.c);
  p.client_id = conn->id;
  p.arrival_ns = arrival_ns;
  p.deadline_ns = deadline_us > 0 ? arrival_ns + deadline_us * 1000 : 0;
  p.schema = schema;
  p.request = std::move(req);
  std::weak_ptr<Conn> weak = conn;
  p.alive = [weak] {
    const auto c = weak.lock();
    return c != nullptr && c->open.load(std::memory_order_relaxed);
  };
  p.respond = [this, weak, schema](InvertResponse&& r) {
    if (const auto c = weak.lock()) send_response(c, std::move(r), schema);
  };

  const Admit verdict = queue.admit(std::move(p));
  if (verdict != Admit::Ok) {
    // Explicit backpressure: the queue is the only buffer and it is full —
    // or this one client already holds its fair share of it.  Either way
    // the client gets RetryAfter, never a silent stall.
    const bool quota = verdict == Admit::OverQuota;
    count(quota ? &ServerStats::rejected_quota : &ServerStats::rejected_full);
    obs::metrics::add(quota ? obs::metrics::Counter::ServeQuotaRejected
                            : obs::metrics::Counter::ServeRejected,
                      1);
    FSI_LOG_WARN("serve.shed",
                 {"reason", quota ? "client over quota" : "admission queue full"},
                 {"depth", static_cast<unsigned long long>(queue.depth())},
                 {"retry_after_ms", opts.retry_after_ms});
    reject.status = Status::RetryAfter;
    reject.retry_after_ms = opts.retry_after_ms;
    reject.message = quota ? "client over per-connection quota"
                           : "admission queue full";
    send_response(conn, std::move(reject), schema);
    return;
  }
  count(&ServerStats::admitted);
  obs::metrics::add(obs::metrics::Counter::ServeRequests, 1);
}

void Server::Impl::reader_loop(std::shared_ptr<Conn> conn) {
  FrameParser parser;
  std::vector<std::uint8_t> buf(1 << 16);
  std::vector<std::uint8_t> payload;
  bool fatal = false;
  while (!fatal) {
    const long got = conn->sock.recv_some(buf.data(), buf.size());
    if (got <= 0) break;  // disconnect (or error): cancellation path
    parser.feed(buf.data(), static_cast<std::size_t>(got));
    for (;;) {
      bool have = false;
      try {
        have = parser.next(payload);
      } catch (const util::CheckError& e) {
        // Bad magic or oversized frame: the stream cannot be resynchronised.
        // Tell the client why (best effort), then drop the connection.
        count(&ServerStats::malformed);
        obs::metrics::add(obs::metrics::Counter::ServeErrors, 1);
        FSI_LOG_WARN("serve.frame_error", {"reason", e.what()});
        InvertResponse r;
        r.status = Status::Malformed;
        r.message = e.what();
        send_response(conn, std::move(r), kMinSchemaVersion);
        fatal = true;
        break;
      }
      if (!have) break;
      try {
        handle_payload(conn, payload);
      } catch (const std::exception& e) {
        // Defense in depth: handle_payload answers protocol errors itself,
        // so anything reaching here (e.g. std::bad_alloc from a hostile
        // frame) is unexpected — never let it escape the thread and
        // std::terminate the daemon.  Answer and drop the connection.
        count(&ServerStats::malformed);
        obs::metrics::add(obs::metrics::Counter::ServeErrors, 1);
        FSI_LOG_ERROR("serve.handler_error", {"reason", e.what()});
        InvertResponse r;
        r.status = Status::Malformed;
        r.message = e.what();
        send_response(conn, std::move(r), kMinSchemaVersion);
        fatal = true;
        break;
      }
    }
  }
  conn->open.store(false, std::memory_order_relaxed);
  conn->sock.shutdown_both();
  FSI_LOG_DEBUG("serve.disconnect");
}

void Server::Impl::accept_loop() {
  for (;;) {
    Socket s = listener->accept_once();
    if (stopping.load()) return;
    if (!s.valid()) continue;

    auto conn = std::make_shared<Conn>();
    conn->sock = std::move(s);
    conn->id = next_conn_id.fetch_add(1, std::memory_order_relaxed);
    count(&ServerStats::connections);
    FSI_LOG_DEBUG("serve.accept");
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      // Reap connections whose reader already finished, so a long-lived
      // daemon does not accumulate dead Conn entries.
      for (auto it = conns.begin(); it != conns.end();) {
        if (!(*it)->open.load() && (*it)->reader.joinable()) {
          (*it)->reader.join();
          it = conns.erase(it);
        } else {
          ++it;
        }
      }
      conns.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
  }
}

const qmc::HubbardModel& Server::Impl::model_for(const BatchKey& key) {
  for (auto it = models.begin(); it != models.end(); ++it) {
    if (it->first == key) {
      models.splice(models.begin(), models, it);  // mark most-recently-used
      count(&ServerStats::model_cache_hits);
      return *models.front().second;
    }
  }
  qmc::Lattice lat = key.ly == 1
                         ? qmc::Lattice::chain(static_cast<index_t>(key.lx))
                         : qmc::Lattice::rectangle(
                               static_cast<index_t>(key.lx),
                               static_cast<index_t>(key.ly));
  qmc::HubbardParams params;
  params.t = key.t;
  params.u = key.u;
  params.beta = key.beta;
  params.l = static_cast<index_t>(key.l);
  models.emplace_front(
      key, std::make_unique<qmc::HubbardModel>(std::move(lat), params));
  if (models.size() > kModelCacheCap) models.pop_back();
  {
    std::lock_guard<std::mutex> lock(stats_mu);
    ++stats.models_built;
    stats.model_cache_size = models.size();
  }
  return *models.front().second;
}

void Server::Impl::run_batch(std::vector<PendingRequest>&& batch) {
  const std::int64_t dispatch_ns = obs::now_ns();

  // Filter: clients that vanished while queued, deadlines that expired.
  std::vector<PendingRequest> live;
  live.reserve(batch.size());
  for (PendingRequest& p : batch) {
    if (!p.alive()) {
      count(&ServerStats::cancelled);
      obs::metrics::add(obs::metrics::Counter::ServeCancelled, 1);
      continue;
    }
    if (stopping.load()) {
      count(&ServerStats::shed_shutdown);
      InvertResponse r;
      r.id = p.request.id;
      r.status = Status::ShuttingDown;
      p.respond(std::move(r));
      continue;
    }
    if (p.expired(dispatch_ns)) {
      count(&ServerStats::deadline_miss);
      obs::metrics::add(obs::metrics::Counter::ServeDeadlineMiss, 1);
      InvertResponse r;
      r.id = p.request.id;
      r.trace_id = p.request.trace_id;
      r.status = Status::DeadlineMiss;
      r.queue_wait_us =
          static_cast<std::uint64_t>((dispatch_ns - p.arrival_ns) / 1000);
      r.queue_wait_ns = static_cast<std::uint64_t>(
          (p.popped_ns > 0 ? p.popped_ns : dispatch_ns) - p.arrival_ns);
      r.message = "deadline expired while queued";
      p.respond(std::move(r));
      continue;
    }
    live.push_back(std::move(p));
  }
  if (live.empty()) return;

  // Observability: the batch-formation interval (first arrival ->
  // dispatch); per-request spans are recorded after the engine runs, once
  // the full timing breakdown is known.
  std::int64_t first_arrival = live.front().arrival_ns;
  for (const PendingRequest& p : live)
    first_arrival = std::min(first_arrival, p.arrival_ns);
  obs::record_interval("serve.batch_form", first_arrival, dispatch_ns);

  const BatchKey key = live.front().key();
  const qmc::HubbardModel& model = model_for(key);

  std::vector<qmc::FsiBatchTask> tasks;
  tasks.reserve(live.size());
  const index_t n = model.num_sites();
  for (const PendingRequest& p : live) {
    tasks.push_back(qmc::FsiBatchTask{
        qmc::HsField::deserialize(static_cast<index_t>(key.l), n,
                                  p.request.field.data(),
                                  p.request.field.size()),
        p.q, p.request.time_dependent});
  }

  qmc::FsiBatchOptions batch_opts = opts.batch;
  batch_opts.cluster_size = key.c;
  // The batch runs at the requested precision (part of the BatchKey, so a
  // batch is homogeneous).  An out-of-range value cannot reach here —
  // validate_request rejected it — so the fallback to Fp64 is defensive.
  Precision prec = Precision::Fp64;
  (void)precision_from_u32(key.precision, prec);
  batch_opts.precision = prec;

  // Tag the engine's per-node executor spans (recorded on pool threads)
  // with this batch's trace: exactly one batch runs at a time (single
  // batcher thread), so the process-wide active-trace id is exact.  The
  // first traced request of the batch lends its id to the shared run.
  std::uint64_t batch_trace = 0;
  for (const PendingRequest& p : live) {
    if (p.request.trace_id != 0) {
      batch_trace = p.request.trace_id;
      break;
    }
  }

  std::vector<qmc::Measurements> results;
  std::string engine_error;
  qmc::SchedSummary engine_sched;  // mixed-task telemetry of the run
  obs::set_active_trace(batch_trace);
  const std::int64_t exec_t0 = obs::now_ns();
  try {
    obs::Span span("serve.execute");
    results = opts.engine
                  ? opts.engine(model, tasks, batch_opts)
                  : qmc::run_fsi_batch(model, tasks, batch_opts,
                                       &engine_sched);
    FSI_CHECK(results.size() == tasks.size(),
              "serve: engine returned wrong result count");
  } catch (const std::exception& e) {
    engine_error = e.what();
    FSI_LOG_ERROR("serve.engine_error", {"reason", engine_error},
                  {"batch_size", static_cast<unsigned long long>(live.size())});
  }
  const std::int64_t exec_t1 = obs::now_ns();
  obs::set_active_trace(0);
  const auto execute_us =
      static_cast<std::uint64_t>((exec_t1 - exec_t0) / 1000);
  const auto exec_ns = static_cast<std::uint64_t>(exec_t1 - exec_t0);
  const double occupancy =
      static_cast<double>(live.size()) /
      static_cast<double>(std::max<std::size_t>(1, opts.max_batch));

  {
    std::lock_guard<std::mutex> lock(stats_mu);
    ++stats.batches;
    stats.batched_requests += live.size();
    stats.queue_high_water =
        std::max(stats.queue_high_water, queue.max_depth_seen());
  }
  obs::metrics::add(obs::metrics::Counter::ServeBatches, 1);
  obs::metrics::record_windowed(obs::metrics::Hist::ServeBatchOccupancy,
                                occupancy);

  // Close the adaptive loop: what this batch actually cost.  The straggler
  // wait paid is dispatch minus the moment the queue first gathered a
  // request (a batch that filled instantly was never charged the window).
  {
    std::int64_t first_popped = dispatch_ns;
    for (const PendingRequest& p : live)
      if (p.popped_ns > 0) first_popped = std::min(first_popped, p.popped_ns);
    BatchObservation ob;
    ob.batch_size = live.size();
    ob.queue_depth_after = queue.depth();
    ob.window_wait_ns = dispatch_ns - first_popped;
    ob.exec_ns = exec_t1 - exec_t0;
    policy.observe(key, ob);
  }

  for (std::size_t i = 0; i < live.size(); ++i) {
    PendingRequest& p = live[i];
    // The v2 breakdown: queue wait ends when the queue gathered the request
    // (popped_ns), batch wait covers the straggler window + model/task
    // setup, exec is the shared engine run.
    const std::int64_t popped_ns =
        p.popped_ns > 0 ? p.popped_ns : dispatch_ns;
    InvertResponse r;
    r.id = p.request.id;
    r.trace_id = p.request.trace_id;
    r.q_used = static_cast<std::int32_t>(p.q);
    r.queue_wait_us =
        static_cast<std::uint64_t>((dispatch_ns - p.arrival_ns) / 1000);
    r.execute_us = execute_us;
    r.batch_size = static_cast<std::uint32_t>(live.size());
    r.queue_wait_ns = static_cast<std::uint64_t>(popped_ns - p.arrival_ns);
    r.batch_wait_ns = static_cast<std::uint64_t>(exec_t0 - popped_ns);
    r.exec_ns = exec_ns;
    r.batch_occupancy = occupancy;
    r.precision_used = key.precision;
    r.mixed_fallback = engine_sched.mixed_fallbacks > 0;
    obs::metrics::record_windowed(
        obs::metrics::Hist::ServeQueueWait,
        static_cast<double>(popped_ns - p.arrival_ns) * 1e-9);
    obs::record_interval("serve.queue_wait", p.arrival_ns, popped_ns,
                         p.request.trace_id);
    obs::record_interval("serve.batch_wait", popped_ns, exec_t0,
                         p.request.trace_id);
    if (!engine_error.empty()) {
      count(&ServerStats::errors);
      obs::metrics::add(obs::metrics::Counter::ServeErrors, 1);
      r.status = Status::Error;
      r.message = engine_error;
    } else {
      r.status = Status::Ok;
      r.l = key.l;
      r.dmax =
          static_cast<std::uint32_t>(results[i].num_distance_classes());
      r.measurements = results[i].serialize();
      r.deadline_exceeded = p.deadline_ns != 0 && exec_t1 >= p.deadline_ns;
      const double latency_s =
          static_cast<double>(exec_t1 - p.arrival_ns) * 1e-9;
      obs::metrics::record_windowed(obs::metrics::Hist::ServeLatency,
                                    latency_s);
      obs::record_interval("serve.request", p.arrival_ns, exec_t1,
                           p.request.trace_id);
      {
        std::lock_guard<std::mutex> lock(stats_mu);
        ++stats.served_ok;
        ok_latencies_s.push_back(latency_s);
      }
    }
    p.respond(std::move(r));
  }
}

StatsResponse Server::Impl::build_stats(std::uint64_t id) {
  StatsResponse s;
  s.id = id;
  s.stats_version = kStatsVersion;
  if (start_ns > 0)
    s.uptime_ns = static_cast<std::uint64_t>(obs::now_ns() - start_ns);
  {
    std::lock_guard<std::mutex> lock(stats_mu);
    s.connections = stats.connections;
    s.admitted = stats.admitted;
    s.served_ok = stats.served_ok;
    s.rejected_full = stats.rejected_full;
    s.rejected_quota = stats.rejected_quota;
    s.deadline_miss = stats.deadline_miss;
    s.cancelled = stats.cancelled;
    s.malformed = stats.malformed;
    s.errors = stats.errors;
    s.shed_shutdown = stats.shed_shutdown;
    s.batches = stats.batches;
    s.batched_requests = stats.batched_requests;
    s.models_built = stats.models_built;
    s.model_cache_hits = stats.model_cache_hits;
    s.model_cache_size = stats.model_cache_size;
    s.queue_high_water = stats.queue_high_water;
  }
  s.queue_depth = queue.depth();
  s.queue_high_water = std::max<std::uint64_t>(
      s.queue_high_water, queue.max_depth_seen());
  s.queue_capacity = queue.max_depth();

  const auto window_of = [](obs::metrics::Hist h) {
    const obs::metrics::WindowSnapshot ws = obs::metrics::window(h);
    WindowStat out;
    out.count = ws.count;
    out.mean = ws.mean();
    out.p50 = ws.p50;
    out.p95 = ws.p95;
    out.p99 = ws.p99;
    return out;
  };
  s.latency_s = window_of(obs::metrics::Hist::ServeLatency);
  s.queue_wait_s = window_of(obs::metrics::Hist::ServeQueueWait);
  s.occupancy = window_of(obs::metrics::Hist::ServeBatchOccupancy);
  const obs::BuildInfo& b = obs::build_info();
  s.build_version = b.version;
  s.build_git_sha = b.git_sha;
  s.build_compiler = b.compiler;
  s.build_type = b.build_type;

  // Stats v3: live adaptive-policy state of the most recently dispatched
  // key — what fsi_top renders and the tuning guide reads.
  s.replicas = opts.replicas;
  s.adaptive_enabled = policy.config().enabled;
  s.policy_keys = policy.keys();
  const KeyPolicy active = policy.active_state();
  s.policy_window_us = active.window_us;
  s.policy_max_batch = active.max_batch;
  s.policy_bypass = active.bypass;
  s.policy_speedup = active.speedup;
  s.bypass_enters = policy.bypass_enters();
  s.bypass_exits = policy.bypass_exits();

  // Stats v4: mixed-precision totals (process-wide metrics counters, the
  // same series the OpenMetrics exporter publishes) and the full per-key
  // policy table, LRU order.
  s.mixed_runs = obs::metrics::total(obs::metrics::Counter::MixedRuns);
  s.mixed_fallbacks =
      obs::metrics::total(obs::metrics::Counter::MixedFallbacks);
  for (const auto& [key, state] : policy.snapshot()) {
    PolicyKeyRow row;
    row.key_hash = hash(key);
    row.window_us = state.window_us;
    row.max_batch = state.max_batch;
    row.bypass = state.bypass;
    row.speedup = state.speedup;
    s.policy_rows.push_back(row);
  }
  return s;
}

void Server::Impl::batcher_loop() {
  // The policy is consulted per batch with the key about to dispatch; when
  // adaptive tuning is disabled its plan() degenerates to the static knobs.
  const auto planner = [this](const BatchKey& key) { return policy.plan(key); };
  for (;;) {
    std::vector<PendingRequest> batch = queue.next_batch(planner);
    if (batch.empty()) return;  // shutdown with an empty queue
    run_batch(std::move(batch));
  }
}

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() { stop(); }

void Server::start() {
  FSI_CHECK(!impl_->started.load(), "serve: start() called twice");
  if (!impl_->opts.access_log.empty()) {
    impl_->access_log = std::fopen(impl_->opts.access_log.c_str(), "a");
    FSI_CHECK(impl_->access_log != nullptr,
              "serve: cannot open access log: " + impl_->opts.access_log);
  }
  impl_->listener.emplace(Listener::listen_on(impl_->opts.endpoint, 16,
                                              impl_->opts.reuse_port));
  impl_->bound = impl_->listener->endpoint();
  impl_->start_ns = obs::now_ns();
  obs::metrics::set(obs::metrics::Gauge::ServeReplicas,
                    static_cast<double>(impl_->opts.replicas));
  impl_->started.store(true);
  impl_->accept_thread = std::thread([this] { impl_->accept_loop(); });
  impl_->batcher_thread = std::thread([this] { impl_->batcher_loop(); });
  FSI_LOG_INFO(
      "serve.start", {"endpoint", impl_->bound.describe()},
      {"queue_depth", static_cast<unsigned long long>(impl_->opts.queue_depth)},
      {"max_batch", static_cast<unsigned long long>(impl_->opts.max_batch)},
      {"git_sha", obs::build_info().git_sha});
}

void Server::stop() {
  if (!impl_->started.load()) return;
  if (impl_->stopping.exchange(true)) {
    // Second caller (e.g. the destructor after an explicit stop()): the
    // first stop() already joined everything.
    return;
  }
  // 1. The batcher answers remaining queued requests with ShuttingDown
  //    (run_batch's stopping check) and exits once the queue is empty.
  impl_->queue.shutdown();
  if (impl_->batcher_thread.joinable()) impl_->batcher_thread.join();
  // 2. Unblock and join the accept loop.
  impl_->listener->wake();
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  // 3. Close every connection and join its reader.
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(impl_->conns_mu);
    conns.swap(impl_->conns);
  }
  for (const auto& conn : conns) {
    conn->open.store(false, std::memory_order_relaxed);
    conn->sock.shutdown_both();
    if (conn->reader.joinable()) conn->reader.join();
  }
  impl_->listener.reset();
  {
    std::lock_guard<std::mutex> lock(impl_->stats_mu);
    FSI_LOG_INFO(
        "serve.stop",
        {"served_ok", static_cast<unsigned long long>(impl_->stats.served_ok)},
        {"shed", static_cast<unsigned long long>(impl_->stats.rejected_full)},
        {"errors", static_cast<unsigned long long>(impl_->stats.errors)});
  }
  if (impl_->access_log != nullptr) {
    std::lock_guard<std::mutex> lock(impl_->log_mu);
    std::fclose(impl_->access_log);
    impl_->access_log = nullptr;
  }
}

const Endpoint& Server::endpoint() const {
  FSI_CHECK(impl_->started.load(), "serve: server not started");
  return impl_->bound;
}

StatsResponse Server::stats_snapshot() const {
  return impl_->build_stats(0);
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(impl_->stats_mu);
  ServerStats s = impl_->stats;
  s.queue_high_water =
      std::max(s.queue_high_water, impl_->queue.max_depth_seen());
  return s;
}

const AdaptivePolicy& Server::policy() const { return impl_->policy; }

double Server::latency_quantile(double p) const {
  std::lock_guard<std::mutex> lock(impl_->stats_mu);
  if (impl_->ok_latencies_s.empty()) return 0.0;
  std::vector<double> sorted = impl_->ok_latencies_s;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::min(1.0, std::max(0.0, p));
  const auto idx = static_cast<std::size_t>(
      clamped * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[idx];
}

}  // namespace fsi::serve
