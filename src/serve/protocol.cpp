#include "fsi/serve/protocol.hpp"

#include <cmath>
#include <cstring>
#include <sstream>

#include "fsi/io/wire.hpp"
#include "fsi/precision.hpp"
#include "fsi/qmc/dqmc.hpp"
#include "fsi/qmc/hubbard.hpp"
#include "fsi/util/rng.hpp"

namespace fsi::serve {

const char* status_name(Status s) noexcept {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::RetryAfter: return "retry-after";
    case Status::DeadlineMiss: return "deadline-miss";
    case Status::Malformed: return "malformed";
    case Status::ShuttingDown: return "shutting-down";
    case Status::Error: return "error";
  }
  return "unknown";
}

SchemaMismatch::SchemaMismatch(std::uint32_t got)
    : util::CheckError("serve: schema version " + std::to_string(got) +
                       " (this build speaks " +
                       std::to_string(kMinSchemaVersion) + ".." +
                       std::to_string(kSchemaVersion) + ")"),
      got_version(got) {}

namespace {

void put_header(io::WireWriter& w, std::uint32_t version, MsgType type,
                std::uint64_t id) {
  FSI_CHECK(version >= kMinSchemaVersion && version <= kSchemaVersion,
            "serve: cannot encode schema version " + std::to_string(version));
  w.put_u32(version);
  w.put_u32(static_cast<std::uint32_t>(type));
  w.put_u64(id);
}

void put_window_stat(io::WireWriter& w, const WindowStat& s) {
  w.put_u64(s.count);
  w.put_f64(s.mean);
  w.put_f64(s.p50);
  w.put_f64(s.p95);
  w.put_f64(s.p99);
}

WindowStat get_window_stat(io::WireReader& r) {
  WindowStat s;
  s.count = r.get_u64();
  s.mean = r.get_f64();
  s.p50 = r.get_f64();
  s.p95 = r.get_f64();
  s.p99 = r.get_f64();
  return s;
}

}  // namespace

std::vector<std::uint8_t> encode_request(const InvertRequest& r,
                                         std::uint32_t version) {
  io::WireWriter w;
  put_header(w, version, MsgType::InvertRequest, r.id);
  w.put_u32(r.lx);
  w.put_u32(r.ly);
  w.put_u32(r.l);
  w.put_u32(r.c);
  w.put_i32(r.q);
  w.put_u64(r.seed);
  w.put_f64(r.t);
  w.put_f64(r.u);
  w.put_f64(r.beta);
  w.put_i64(r.deadline_us);
  w.put_u8(r.time_dependent ? 1 : 0);
  w.put_f64_vector(r.field);
  if (version >= 2) {
    w.put_u64(r.trace_id);
    w.put_i64(r.client_send_ns);
  }
  if (version >= 3) w.put_u32(r.precision);
  return w.take();
}

std::vector<std::uint8_t> encode_response(const InvertResponse& r,
                                          std::uint32_t version) {
  io::WireWriter w;
  put_header(w, version, MsgType::InvertResponse, r.id);
  w.put_u32(static_cast<std::uint32_t>(r.status));
  w.put_u32(r.retry_after_ms);
  w.put_i32(r.q_used);
  w.put_u8(r.deadline_exceeded ? 1 : 0);
  w.put_u64(r.queue_wait_us);
  w.put_u64(r.execute_us);
  w.put_u32(r.batch_size);
  w.put_u32(r.l);
  w.put_u32(r.dmax);
  w.put_f64_vector(r.measurements);
  w.put_string(r.message);
  if (version >= 2) {
    w.put_u64(r.trace_id);
    w.put_u64(r.queue_wait_ns);
    w.put_u64(r.batch_wait_ns);
    w.put_u64(r.exec_ns);
    w.put_f64(r.batch_occupancy);
  }
  if (version >= 3) {
    w.put_u32(r.precision_used);
    w.put_u8(r.mixed_fallback ? 1 : 0);
  }
  return w.take();
}

std::vector<std::uint8_t> encode_stats_request(std::uint64_t id) {
  io::WireWriter w;
  put_header(w, kSchemaVersion, MsgType::StatsRequest, id);
  return w.take();
}

std::vector<std::uint8_t> encode_stats_response(const StatsResponse& r) {
  io::WireWriter w;
  put_header(w, kSchemaVersion, MsgType::StatsResponse, r.id);
  w.put_u32(r.stats_version);
  w.put_u64(r.uptime_ns);
  w.put_u64(r.connections);
  w.put_u64(r.admitted);
  w.put_u64(r.served_ok);
  w.put_u64(r.rejected_full);
  w.put_u64(r.deadline_miss);
  w.put_u64(r.cancelled);
  w.put_u64(r.malformed);
  w.put_u64(r.errors);
  w.put_u64(r.shed_shutdown);
  w.put_u64(r.batches);
  w.put_u64(r.batched_requests);
  w.put_u64(r.models_built);
  w.put_u64(r.model_cache_hits);
  w.put_u64(r.model_cache_size);
  w.put_u64(r.queue_depth);
  w.put_u64(r.queue_high_water);
  w.put_u64(r.queue_capacity);
  put_window_stat(w, r.latency_s);
  put_window_stat(w, r.queue_wait_s);
  put_window_stat(w, r.occupancy);
  // Stats v2: build provenance.  Gated on the snapshot's own version tag so
  // re-encoding a decoded v1 snapshot round-trips byte-compatibly.
  if (r.stats_version >= 2) {
    w.put_string(r.build_version);
    w.put_string(r.build_git_sha);
    w.put_string(r.build_compiler);
    w.put_string(r.build_type);
  }
  // Stats v3: adaptive policy + scale-out block, same append-only rule.
  if (r.stats_version >= 3) {
    w.put_u64(r.rejected_quota);
    w.put_u64(r.replicas);
    w.put_u8(r.adaptive_enabled ? 1 : 0);
    w.put_u64(r.policy_keys);
    w.put_i64(r.policy_window_us);
    w.put_u64(r.policy_max_batch);
    w.put_u8(r.policy_bypass ? 1 : 0);
    w.put_f64(r.policy_speedup);
    w.put_u64(r.bypass_enters);
    w.put_u64(r.bypass_exits);
  }
  // Stats v4: mixed-precision totals + the per-key policy table.
  if (r.stats_version >= 4) {
    w.put_u64(r.mixed_runs);
    w.put_u64(r.mixed_fallbacks);
    w.put_u32(static_cast<std::uint32_t>(r.policy_rows.size()));
    for (const PolicyKeyRow& row : r.policy_rows) {
      w.put_u64(row.key_hash);
      w.put_i64(row.window_us);
      w.put_u64(row.max_batch);
      w.put_u8(row.bypass ? 1 : 0);
      w.put_f64(row.speedup);
    }
  }
  return w.take();
}

Decoded decode_payload(const std::uint8_t* data, std::size_t size) {
  io::WireReader r(data, size);
  const std::uint32_t schema = r.get_u32();
  if (schema < kMinSchemaVersion || schema > kSchemaVersion)
    throw SchemaMismatch(schema);
  const std::uint32_t type = r.get_u32();
  const std::uint64_t id = r.get_u64();

  Decoded d;
  d.schema = schema;
  if (type == static_cast<std::uint32_t>(MsgType::InvertRequest)) {
    d.type = MsgType::InvertRequest;
    InvertRequest& q = d.request;
    q.id = id;
    q.lx = r.get_u32();
    q.ly = r.get_u32();
    q.l = r.get_u32();
    q.c = r.get_u32();
    q.q = r.get_i32();
    q.seed = r.get_u64();
    q.t = r.get_f64();
    q.u = r.get_f64();
    q.beta = r.get_f64();
    q.deadline_us = r.get_i64();
    q.time_dependent = r.get_u8() != 0;
    q.field = r.get_f64_vector();
    if (schema >= 2) {
      q.trace_id = r.get_u64();
      q.client_send_ns = r.get_i64();
    }
    if (schema >= 3) q.precision = r.get_u32();
  } else if (type == static_cast<std::uint32_t>(MsgType::InvertResponse)) {
    d.type = MsgType::InvertResponse;
    InvertResponse& p = d.response;
    p.id = id;
    p.status = static_cast<Status>(r.get_u32());
    FSI_CHECK(p.status <= Status::Error, "serve: unknown response status");
    p.retry_after_ms = r.get_u32();
    p.q_used = r.get_i32();
    p.deadline_exceeded = r.get_u8() != 0;
    p.queue_wait_us = r.get_u64();
    p.execute_us = r.get_u64();
    p.batch_size = r.get_u32();
    p.l = r.get_u32();
    p.dmax = r.get_u32();
    p.measurements = r.get_f64_vector();
    p.message = r.get_string();
    if (schema >= 2) {
      p.trace_id = r.get_u64();
      p.queue_wait_ns = r.get_u64();
      p.batch_wait_ns = r.get_u64();
      p.exec_ns = r.get_u64();
      p.batch_occupancy = r.get_f64();
    }
    if (schema >= 3) {
      p.precision_used = r.get_u32();
      p.mixed_fallback = r.get_u8() != 0;
    }
  } else if (type == static_cast<std::uint32_t>(MsgType::StatsRequest) &&
             schema >= 2) {
    d.type = MsgType::StatsRequest;
    d.stats.id = id;
  } else if (type == static_cast<std::uint32_t>(MsgType::StatsResponse) &&
             schema >= 2) {
    d.type = MsgType::StatsResponse;
    StatsResponse& s = d.stats;
    s.id = id;
    s.stats_version = r.get_u32();
    s.uptime_ns = r.get_u64();
    s.connections = r.get_u64();
    s.admitted = r.get_u64();
    s.served_ok = r.get_u64();
    s.rejected_full = r.get_u64();
    s.deadline_miss = r.get_u64();
    s.cancelled = r.get_u64();
    s.malformed = r.get_u64();
    s.errors = r.get_u64();
    s.shed_shutdown = r.get_u64();
    s.batches = r.get_u64();
    s.batched_requests = r.get_u64();
    s.models_built = r.get_u64();
    s.model_cache_hits = r.get_u64();
    s.model_cache_size = r.get_u64();
    s.queue_depth = r.get_u64();
    s.queue_high_water = r.get_u64();
    s.queue_capacity = r.get_u64();
    s.latency_s = get_window_stat(r);
    s.queue_wait_s = get_window_stat(r);
    s.occupancy = get_window_stat(r);
    if (s.stats_version >= 2) {
      s.build_version = r.get_string();
      s.build_git_sha = r.get_string();
      s.build_compiler = r.get_string();
      s.build_type = r.get_string();
    }
    if (s.stats_version >= 3) {
      s.rejected_quota = r.get_u64();
      s.replicas = r.get_u64();
      s.adaptive_enabled = r.get_u8() != 0;
      s.policy_keys = r.get_u64();
      s.policy_window_us = r.get_i64();
      s.policy_max_batch = r.get_u64();
      s.policy_bypass = r.get_u8() != 0;
      s.policy_speedup = r.get_f64();
      s.bypass_enters = r.get_u64();
      s.bypass_exits = r.get_u64();
    }
    if (s.stats_version >= 4) {
      s.mixed_runs = r.get_u64();
      s.mixed_fallbacks = r.get_u64();
      const std::uint32_t rows = r.get_u32();
      // The policy table is LRU-bounded server-side (AdaptiveConfig
      // max_keys, default 64); an implausible count is a hostile frame.
      FSI_CHECK(rows <= 4096, "serve: implausible policy-row count " +
                                  std::to_string(rows));
      s.policy_rows.resize(rows);
      for (PolicyKeyRow& row : s.policy_rows) {
        row.key_hash = r.get_u64();
        row.window_us = r.get_i64();
        row.max_batch = r.get_u64();
        row.bypass = r.get_u8() != 0;
        row.speedup = r.get_f64();
      }
    }
  } else {
    FSI_CHECK(false, "serve: unknown message type " + std::to_string(type) +
                         " for schema " + std::to_string(schema));
  }
  FSI_CHECK(r.exhausted(), "serve: trailing bytes after message body");
  return d;
}

void append_frame(std::vector<std::uint8_t>& out,
                  const std::vector<std::uint8_t>& payload) {
  FSI_CHECK(payload.size() <= kMaxFrameBytes, "serve: frame payload too large");
  const std::uint32_t magic = kFrameMagic;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const auto append_u32 = [&out](std::uint32_t v) {
    std::uint8_t raw[sizeof v];
    std::memcpy(raw, &v, sizeof v);
    out.insert(out.end(), raw, raw + sizeof v);
  };
  append_u32(magic);
  append_u32(len);
  out.insert(out.end(), payload.begin(), payload.end());
}

void FrameParser::feed(const std::uint8_t* data, std::size_t n) {
  // Compact the consumed prefix before it dominates the buffer.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

bool FrameParser::next(std::vector<std::uint8_t>& payload) {
  constexpr std::size_t kHeader = 2 * sizeof(std::uint32_t);
  if (buffered() < kHeader) return false;
  std::uint32_t magic = 0, len = 0;
  std::memcpy(&magic, buf_.data() + pos_, sizeof magic);
  std::memcpy(&len, buf_.data() + pos_ + sizeof magic, sizeof len);
  FSI_CHECK(magic == kFrameMagic, "serve: bad frame magic");
  FSI_CHECK(len <= max_, "serve: frame length " + std::to_string(len) +
                             " exceeds limit " + std::to_string(max_));
  if (buffered() < kHeader + len) return false;
  payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + kHeader),
                 buf_.begin() +
                     static_cast<std::ptrdiff_t>(pos_ + kHeader + len));
  pos_ += kHeader + len;
  return true;
}

std::string validate_request(const InvertRequest& r) {
  std::ostringstream why;
  if (r.lx < 1 || r.ly < 1) {
    why << "lattice extents must be positive (lx=" << r.lx << " ly=" << r.ly
        << ")";
  } else if (r.lx * static_cast<std::uint64_t>(r.ly) > 4096) {
    why << "lattice too large (" << r.lx << "x" << r.ly << ")";
  } else if (r.l < 1 || r.l > 16384) {
    why << "slice count L=" << r.l << " out of range [1, 16384]";
  } else if (r.c != 0 && (r.c > r.l || r.l % r.c != 0)) {
    why << "cluster size c=" << r.c << " does not divide L=" << r.l;
  } else if (r.q >= 0 &&
             static_cast<std::uint32_t>(r.q) >=
                 static_cast<std::uint32_t>(effective_cluster(r))) {
    why << "wrap offset q=" << r.q << " out of [0, c=" << effective_cluster(r)
        << ")";
  } else if (!std::isfinite(r.t) || !std::isfinite(r.u) ||
             !std::isfinite(r.beta) || !(r.beta > 0.0)) {
    why << "non-finite or non-positive physics parameters";
  } else if (r.precision > static_cast<std::uint32_t>(Precision::Mixed)) {
    why << "unknown precision " << r.precision << " (0 = fp64, 1 = mixed)";
  } else if (r.field.size() !=
             static_cast<std::size_t>(r.l) * r.lx * r.ly) {
    why << "field length " << r.field.size() << " != L*N = "
        << static_cast<std::size_t>(r.l) * r.lx * r.ly;
  } else {
    for (double h : r.field) {
      if (h != 1.0 && h != -1.0) {
        why << "field entries must be +-1 (got " << h << ")";
        break;
      }
    }
  }
  return why.str();
}

index_t effective_cluster(const InvertRequest& r) {
  if (r.c > 0) return static_cast<index_t>(r.c);
  return qmc::default_cluster_size(static_cast<index_t>(r.l));
}

index_t resolve_q(const InvertRequest& r, index_t c) {
  if (r.q >= 0) return static_cast<index_t>(r.q);
  util::Rng rng(r.seed, /*stream=*/1);
  return static_cast<index_t>(rng.below(static_cast<std::uint64_t>(c)));
}

std::vector<double> random_field(std::uint32_t lx, std::uint32_t ly,
                                 std::uint32_t l, std::uint64_t seed) {
  util::Rng rng(seed);
  qmc::HsField field(static_cast<index_t>(l),
                     static_cast<index_t>(lx) * static_cast<index_t>(ly), rng);
  return field.serialize();
}

}  // namespace fsi::serve
