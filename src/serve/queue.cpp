#include "fsi/serve/queue.hpp"

#include <algorithm>
#include <cstring>
#include <tuple>

#include "fsi/obs/metrics.hpp"
#include "fsi/obs/trace.hpp"

namespace fsi::serve {

bool operator<(const BatchKey& a, const BatchKey& b) {
  return std::tie(a.lx, a.ly, a.l, a.c, a.t, a.u, a.beta, a.precision) <
         std::tie(b.lx, b.ly, b.l, b.c, b.t, b.u, b.beta, b.precision);
}

std::uint64_t hash(const BatchKey& key) {
  // Boost-style 64-bit combine over the fields; doubles go in by bit
  // pattern, so equal keys hash equal and -0.0 vs 0.0 never coalesce
  // anyway (operator== distinguishes them too: a key is an exact shape).
  const auto mix = [](std::uint64_t h, std::uint64_t v) {
    return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
  };
  const auto bits = [](double d) {
    std::uint64_t u = 0;
    std::memcpy(&u, &d, sizeof u);
    return u;
  };
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = mix(h, key.lx);
  h = mix(h, key.ly);
  h = mix(h, key.l);
  h = mix(h, static_cast<std::uint64_t>(key.c));
  h = mix(h, bits(key.t));
  h = mix(h, bits(key.u));
  h = mix(h, bits(key.beta));
  h = mix(h, key.precision);
  return h;
}

AdmissionQueue::AdmissionQueue(std::size_t max_depth,
                               std::size_t max_per_client)
    : max_depth_(max_depth), max_per_client_(max_per_client) {}

void AdmissionQueue::note_depth_locked() {
  high_water_ = std::max(high_water_, queue_.size());
  obs::metrics::set(obs::metrics::Gauge::ServeQueueDepth,
                    static_cast<double>(queue_.size()));
}

void AdmissionQueue::release_client_locked(std::uint64_t client_id) {
  if (client_id == 0) return;
  auto it = clients_.find(client_id);
  if (it == clients_.end()) return;
  if (--it->second == 0) clients_.erase(it);
}

Admit AdmissionQueue::admit(PendingRequest&& r) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || queue_.size() >= max_depth_) return Admit::Full;
    if (max_per_client_ != 0 && r.client_id != 0) {
      const auto it = clients_.find(r.client_id);
      if (it != clients_.end() && it->second >= max_per_client_)
        return Admit::OverQuota;
    }
    if (r.client_id != 0) ++clients_[r.client_id];
    queue_.push_back(std::move(r));
    note_depth_locked();
  }
  cv_.notify_one();
  return Admit::Ok;
}

bool AdmissionQueue::try_push(PendingRequest&& r) {
  return admit(std::move(r)) == Admit::Ok;
}

void AdmissionQueue::take_matching(const BatchKey& key, std::size_t max_batch,
                                   std::vector<PendingRequest>& out) {
  const std::int64_t now = obs::now_ns();
  for (auto it = queue_.begin(); it != queue_.end() && out.size() < max_batch;) {
    if (it->key() == key) {
      it->popped_ns = now;  // queue wait ends, batch-formation wait begins
      release_client_locked(it->client_id);
      out.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  note_depth_locked();
}

std::vector<PendingRequest> AdmissionQueue::next_batch(
    const std::function<BatchPlan(const BatchKey&)>& plan) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
  if (queue_.empty()) return {};  // shutdown with nothing queued

  // Plan once the oldest request is known: an adaptive policy picks a
  // per-key window/max-batch from what it has measured about this key.
  const BatchKey key = queue_.front().key();
  const BatchPlan p = plan(key);
  const std::size_t max_batch = std::max<std::size_t>(1, p.max_batch);

  std::vector<PendingRequest> batch;
  take_matching(key, max_batch, batch);

  // Straggler window: late-arriving compatible requests join this batch
  // instead of paying a whole engine run of their own.
  if (p.window.count() > 0) {
    const auto close_at = std::chrono::steady_clock::now() + p.window;
    while (batch.size() < max_batch && !shutdown_) {
      if (cv_.wait_until(lock, close_at) == std::cv_status::timeout) break;
      take_matching(key, max_batch, batch);
    }
  }
  return batch;
}

std::vector<PendingRequest> AdmissionQueue::next_batch(
    std::chrono::microseconds window, std::size_t max_batch) {
  return next_batch(
      [&](const BatchKey&) { return BatchPlan{window, max_batch}; });
}

void AdmissionQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::vector<PendingRequest> AdmissionQueue::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PendingRequest> out;
  out.reserve(queue_.size());
  for (auto& r : queue_) out.push_back(std::move(r));
  queue_.clear();
  clients_.clear();
  note_depth_locked();
  return out;
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t AdmissionQueue::max_depth_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

std::size_t AdmissionQueue::client_depth(std::uint64_t client_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = clients_.find(client_id);
  return it == clients_.end() ? 0 : it->second;
}

}  // namespace fsi::serve
