#include "fsi/serve/queue.hpp"

#include <algorithm>
#include <tuple>

#include "fsi/obs/metrics.hpp"
#include "fsi/obs/trace.hpp"

namespace fsi::serve {

bool operator<(const BatchKey& a, const BatchKey& b) {
  return std::tie(a.lx, a.ly, a.l, a.c, a.t, a.u, a.beta) <
         std::tie(b.lx, b.ly, b.l, b.c, b.t, b.u, b.beta);
}

AdmissionQueue::AdmissionQueue(std::size_t max_depth)
    : max_depth_(max_depth) {}

void AdmissionQueue::note_depth_locked() {
  high_water_ = std::max(high_water_, queue_.size());
  obs::metrics::set(obs::metrics::Gauge::ServeQueueDepth,
                    static_cast<double>(queue_.size()));
}

bool AdmissionQueue::try_push(PendingRequest&& r) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || queue_.size() >= max_depth_) return false;
    queue_.push_back(std::move(r));
    note_depth_locked();
  }
  cv_.notify_one();
  return true;
}

void AdmissionQueue::take_matching(const BatchKey& key, std::size_t max_batch,
                                   std::vector<PendingRequest>& out) {
  const std::int64_t now = obs::now_ns();
  for (auto it = queue_.begin(); it != queue_.end() && out.size() < max_batch;) {
    if (it->key() == key) {
      it->popped_ns = now;  // queue wait ends, batch-formation wait begins
      out.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  note_depth_locked();
}

std::vector<PendingRequest> AdmissionQueue::next_batch(
    std::chrono::microseconds window, std::size_t max_batch) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
  if (queue_.empty()) return {};  // shutdown with nothing queued

  std::vector<PendingRequest> batch;
  const BatchKey key = queue_.front().key();
  take_matching(key, max_batch, batch);

  // Straggler window: late-arriving compatible requests join this batch
  // instead of paying a whole engine run of their own.
  const auto close_at = std::chrono::steady_clock::now() + window;
  while (batch.size() < max_batch && !shutdown_) {
    if (cv_.wait_until(lock, close_at) == std::cv_status::timeout) break;
    take_matching(key, max_batch, batch);
  }
  return batch;
}

void AdmissionQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::vector<PendingRequest> AdmissionQueue::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PendingRequest> out;
  out.reserve(queue_.size());
  for (auto& r : queue_) out.push_back(std::move(r));
  queue_.clear();
  note_depth_locked();
  return out;
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t AdmissionQueue::max_depth_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

}  // namespace fsi::serve
