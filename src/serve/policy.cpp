#include "fsi/serve/policy.hpp"

#include <algorithm>

#include "fsi/obs/metrics.hpp"

namespace fsi::serve {
namespace {

/// Fold \p sample into an EMA, seeding it on the first sample so the
/// estimate has no zero-bias warm-up.
void ema_fold(double& ema, double sample, double alpha) {
  ema = (ema == 0.0) ? sample : alpha * sample + (1.0 - alpha) * ema;
}

}  // namespace

AdaptivePolicy::AdaptivePolicy(AdaptiveConfig config) : config_(config) {
  if (config_.window_ceiling_us < config_.window_floor_us)
    config_.window_ceiling_us = config_.window_floor_us;
  if (config_.max_batch_ceiling == 0) config_.max_batch_ceiling = 1;
  if (config_.max_keys == 0) config_.max_keys = 1;
}

AdaptivePolicy::Entry& AdaptivePolicy::touch(const BatchKey& key) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->key == key) {
      entries_.splice(entries_.begin(), entries_, it);
      return entries_.front();
    }
  }
  // New key starts at the ceilings: full coalescing until measurements say
  // otherwise (the static-knob behaviour is the prior).
  Entry e;
  e.key = key;
  e.state.window_us = config_.window_ceiling_us;
  e.state.max_batch = config_.max_batch_ceiling;
  entries_.push_front(std::move(e));
  while (entries_.size() > config_.max_keys) entries_.pop_back();
  return entries_.front();
}

BatchPlan AdaptivePolicy::plan(const BatchKey& key) {
  if (!config_.enabled) {
    return BatchPlan{std::chrono::microseconds(config_.window_ceiling_us),
                     config_.max_batch_ceiling};
  }
  std::lock_guard<std::mutex> lock(mu_);
  const KeyPolicy& s = touch(key).state;
  if (s.bypass) return BatchPlan{std::chrono::microseconds(0), 1};
  return BatchPlan{std::chrono::microseconds(s.window_us), s.max_batch};
}

void AdaptivePolicy::observe(const BatchKey& key, const BatchObservation& obs) {
  if (!config_.enabled || obs.batch_size == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  KeyPolicy& s = touch(key).state;
  ++s.batches;
  ema_fold(s.ema_occupancy, static_cast<double>(obs.batch_size),
           config_.ema_alpha);

  // Solo service time: what one request costs when it does not share an
  // engine run.  Only size-1 batches measure it.
  if (obs.batch_size == 1 && obs.exec_ns > 0)
    ema_fold(s.ema_solo_ns, static_cast<double>(obs.exec_ns),
             config_.ema_alpha);

  // Measured batching speedup of this dispatch: solo cost over the
  // per-request share of (straggler wait + engine run).  Defined once a
  // solo baseline exists; < 1 means coalescing made this request slower.
  const double per_req =
      static_cast<double>(obs.window_wait_ns + obs.exec_ns) /
      static_cast<double>(obs.batch_size);
  if (s.ema_solo_ns > 0.0 && per_req > 0.0)
    ema_fold(s.speedup, s.ema_solo_ns / per_req, config_.ema_alpha);

  if (!s.bypass) {
    const bool lose = obs.batch_size == 1 && obs.window_wait_ns > 0;
    const bool win = obs.batch_size >= 2 &&
                     (s.ema_solo_ns == 0.0 || per_req < s.ema_solo_ns);
    if (lose) {
      s.win_streak = 0;
      ++s.lose_streak;
      // Multiplicative decrease: each losing window halves the bet.
      s.window_us = std::max(config_.window_floor_us, s.window_us / 2);
      s.max_batch = std::max<std::size_t>(1, s.max_batch / 2);
      if (s.lose_streak >= config_.bypass_after) {
        s.bypass = true;
        s.window_us = 0;
        s.max_batch = 1;
        s.lose_streak = 0;
        ++s.bypass_enters;
        ++bypass_enters_;
        obs::metrics::add(obs::metrics::Counter::ServeBypassEnter, 1);
      }
    } else if (win) {
      s.lose_streak = 0;
      ++s.win_streak;
      // Multiplicative increase back toward the configured ceilings.
      s.window_us = std::min(config_.window_ceiling_us,
                             std::max(config_.window_floor_us,
                                      s.window_us * 2));
      s.max_batch =
          std::min(config_.max_batch_ceiling,
                   std::max<std::size_t>(2, s.max_batch * 2));
    } else {
      // Neutral dispatch (e.g. size 1 with no wait, or a batch that did
      // not beat solo): breaks both streaks, so only *consecutive*
      // evidence moves the mode — the hysteresis.
      s.lose_streak = 0;
      s.win_streak = 0;
    }
  } else {
    // In bypass the only signal is backlog: a dispatch that leaves
    // same-key work queued means arrivals outpace solo service, so
    // coalescing would amortise again.
    if (obs.queue_depth_after > 0) {
      ++s.win_streak;
      if (s.win_streak >= config_.resume_after) {
        s.bypass = false;
        s.window_us = config_.window_floor_us;  // slow start
        s.max_batch = config_.max_batch_ceiling;
        s.win_streak = 0;
        ++s.bypass_exits;
        ++bypass_exits_;
        obs::metrics::add(obs::metrics::Counter::ServeBypassExit, 1);
      }
    } else {
      s.win_streak = 0;
    }
  }

  active_ = s;
  publish_gauges(s);
}

void AdaptivePolicy::publish_gauges(const KeyPolicy& s) const {
  using obs::metrics::Gauge;
  obs::metrics::set(Gauge::ServePolicyWindowUs,
                    static_cast<double>(s.window_us));
  obs::metrics::set(Gauge::ServePolicyMaxBatch,
                    static_cast<double>(s.max_batch));
  obs::metrics::set(Gauge::ServePolicyBypass, s.bypass ? 1.0 : 0.0);
}

KeyPolicy AdaptivePolicy::state(const BatchKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_)
    if (e.key == key) return e.state;
  return KeyPolicy{};
}

KeyPolicy AdaptivePolicy::active_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

std::vector<std::pair<BatchKey, KeyPolicy>> AdaptivePolicy::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<BatchKey, KeyPolicy>> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.emplace_back(e.key, e.state);
  return out;
}

std::size_t AdaptivePolicy::keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t AdaptivePolicy::bypass_enters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bypass_enters_;
}

std::uint64_t AdaptivePolicy::bypass_exits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bypass_exits_;
}

}  // namespace fsi::serve
