#include "fsi/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "fsi/util/check.hpp"

namespace fsi::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  FSI_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  FSI_CHECK(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto hline = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c)
      os << std::string(width[c] + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << std::setw(static_cast<int>(width[c])) << cells[c] << " |";
    os << '\n';
  };
  hline();
  line(headers_);
  hline();
  for (const auto& row : rows_) line(row);
  hline();
  return os.str();
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(long long v) { return std::to_string(v); }

std::string Table::sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace fsi::util
