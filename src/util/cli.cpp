#include "fsi/util/cli.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace fsi::util {

Cli::Cli(int argc, char** argv) : argc_(argc), argv_(argv) {}

const char* Cli::find(const std::string& name) const {
  const std::string flag = "--" + name;
  for (int i = 1; i < argc_; ++i) {
    const char* arg = argv_[i];
    if (std::strncmp(arg, flag.c_str(), flag.size()) != 0) continue;
    const char* rest = arg + flag.size();
    if (*rest == '=') return rest + 1;
    if (*rest == '\0') {
      if (i + 1 < argc_) {
        const char* next = argv_[i + 1];
        // A leading '-' is another flag — unless it spells a negative
        // number (e.g. "--deadline-us -1").
        const bool negative_number =
            next[0] == '-' &&
            (std::isdigit(static_cast<unsigned char>(next[1])) != 0 ||
             (next[1] == '.' &&
              std::isdigit(static_cast<unsigned char>(next[2])) != 0));
        if (next[0] != '-' || negative_number) return next;
      }
      return "";  // bare flag
    }
  }
  return nullptr;
}

int Cli::get_int(const std::string& name, int fallback) const {
  const char* v = find(name);
  return (v != nullptr && *v != '\0') ? std::atoi(v) : fallback;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const char* v = find(name);
  return (v != nullptr && *v != '\0') ? std::atof(v) : fallback;
}

std::string Cli::get_string(const std::string& name, const std::string& fallback) const {
  const char* v = find(name);
  return (v != nullptr && *v != '\0') ? std::string(v) : fallback;
}

bool Cli::has(const std::string& name) const { return find(name) != nullptr; }

}  // namespace fsi::util
