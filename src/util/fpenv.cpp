#include "fsi/util/fpenv.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include <omp.h>

namespace fsi::util {

void enable_flush_to_zero() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  // Set on every OpenMP worker of the default team as well as the caller:
  // MXCSR is per-thread state.
#pragma omp parallel
  { _mm_setcsr(_mm_getcsr() | 0x8040u); }  // FTZ (bit 15) | DAZ (bit 6)
#endif
}

}  // namespace fsi::util
