#include "fsi/util/fpenv.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include <omp.h>

#include <cfenv>

#include "fsi/obs/metrics.hpp"

namespace fsi::util {

void enable_flush_to_zero() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  // Set on every OpenMP worker of the default team as well as the caller:
  // MXCSR is per-thread state.
#pragma omp parallel
  { _mm_setcsr(_mm_getcsr() | 0x8040u); }  // FTZ (bit 15) | DAZ (bit 6)
#endif
  obs::metrics::set(obs::metrics::Gauge::FlushToZero,
                    flush_to_zero_enabled() ? 1.0 : 0.0);
}

bool flush_to_zero_enabled() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return (_mm_getcsr() & 0x8040u) == 0x8040u;
#else
  return false;
#endif
}

int fp_flags_raised() noexcept {
  return std::fetestexcept(FE_INVALID | FE_DIVBYZERO | FE_OVERFLOW |
                           FE_UNDERFLOW);
}

void clear_fp_flags() noexcept { std::feclearexcept(FE_ALL_EXCEPT); }

}  // namespace fsi::util
