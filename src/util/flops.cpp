#include "fsi/util/flops.hpp"

#include <atomic>
#include <mutex>
#include <vector>

namespace fsi::util::flops {
namespace {

// Per-thread slot.  Slots are heap-allocated and intentionally never freed
// (they are tiny and must outlive the thread so that total() still sees the
// work of joined OpenMP workers).  The registry is only touched on first use
// per thread, so the hot path is a single relaxed atomic increment.
struct Slot {
  std::atomic<std::uint64_t> count{0};
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::vector<Slot*>& registry() {
  static std::vector<Slot*> r;
  return r;
}

Slot& local_slot() {
  thread_local Slot* slot = [] {
    auto* s = new Slot();
    std::lock_guard<std::mutex> lock(registry_mutex());
    registry().push_back(s);
    return s;
  }();
  return *slot;
}

}  // namespace

void add(std::uint64_t n) noexcept {
  local_slot().count.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t total() noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::uint64_t sum = 0;
  for (const Slot* s : registry()) sum += s->count.load(std::memory_order_relaxed);
  return sum;
}

void reset() noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (Slot* s : registry()) s->count.store(0, std::memory_order_relaxed);
}

}  // namespace fsi::util::flops
