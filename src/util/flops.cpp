#include "fsi/util/flops.hpp"

#include "fsi/obs/metrics.hpp"

// PR-1 audit note (ISSUE 1): the previous standalone implementation was
// already race-free — per-thread heap slots, merged on read — but used a
// locked fetch_add on the hot path and kept a registry separate from the
// observability counters.  flops is now a façade over the unified
// fsi::obs::metrics registry, whose owner-only load+store accumulation
// avoids the read-modify-write entirely (see metrics.hpp for the model).

namespace fsi::util::flops {

void add(std::uint64_t n) noexcept {
  obs::metrics::add(obs::metrics::Counter::Flops, n);
}

std::uint64_t total() noexcept {
  return obs::metrics::total(obs::metrics::Counter::Flops);
}

void reset() noexcept { obs::metrics::reset(obs::metrics::Counter::Flops); }

}  // namespace fsi::util::flops
