/// \file blas12.cpp
/// \brief Level-1/2 BLAS kernels: gemv, ger, axpby, scal (double + float).
///
/// These appear on two hot paths: the DQMC rank-1 Green's function update
/// (ger + gemv at every accepted Metropolis flip) and small fix-ups inside
/// the factorisations.  They are kept simple and cache-friendly
/// (column-major traversal) and credit their flops like the Level-3 kernels.

#include "fsi/dense/blas.hpp"
#include "fsi/util/flops.hpp"

namespace fsi::dense {

template <typename T>
void gemv(Trans ta, T alpha, BasicConstMatrixView<T> a, const T* x, T beta,
          T* y) {
  const index_t m = a.rows(), n = a.cols();
  const index_t ylen = (ta == Trans::No) ? m : n;
  if (beta == T(0)) {
    for (index_t i = 0; i < ylen; ++i) y[i] = T(0);
  } else if (beta != T(1)) {
    for (index_t i = 0; i < ylen; ++i) y[i] *= beta;
  }
  util::flops::add(2ull * m * n);
  if (ta == Trans::No) {
    for (index_t j = 0; j < n; ++j) {
      const T axj = alpha * x[j];
      if (axj == T(0)) continue;
      const T* aj = a.col(j);
#pragma omp simd
      for (index_t i = 0; i < m; ++i) y[i] += aj[i] * axj;
    }
  } else {
    for (index_t j = 0; j < n; ++j) {
      const T* aj = a.col(j);
      T dot = T(0);
#pragma omp simd reduction(+ : dot)
      for (index_t i = 0; i < m; ++i) dot += aj[i] * x[i];
      y[j] += alpha * dot;
    }
  }
}

template void gemv<double>(Trans, double, ConstMatrixView, const double*,
                           double, double*);
template void gemv<float>(Trans, float, ConstMatrixViewF, const float*, float,
                          float*);

template <typename T>
void ger(T alpha, const T* x, const T* y, BasicMatrixView<T> a) {
  const index_t m = a.rows(), n = a.cols();
  util::flops::add(2ull * m * n);
  for (index_t j = 0; j < n; ++j) {
    const T ayj = alpha * y[j];
    if (ayj == T(0)) continue;
    T* aj = a.col(j);
#pragma omp simd
    for (index_t i = 0; i < m; ++i) aj[i] += x[i] * ayj;
  }
}

template void ger<double>(double, const double*, const double*, MatrixView);
template void ger<float>(float, const float*, const float*, MatrixViewF);

template <typename T>
void axpby(T alpha_b, BasicMatrixView<T> b, BasicConstMatrixView<T> a) {
  FSI_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "axpby: shape mismatch");
  util::flops::add(2ull * a.rows() * a.cols());
  for (index_t j = 0; j < a.cols(); ++j) {
    T* bj = b.col(j);
    const T* aj = a.col(j);
#pragma omp simd
    for (index_t i = 0; i < a.rows(); ++i) bj[i] = alpha_b * bj[i] + aj[i];
  }
}

template void axpby<double>(double, MatrixView, ConstMatrixView);
template void axpby<float>(float, MatrixViewF, ConstMatrixViewF);

template <typename T>
void scal(T alpha, BasicMatrixView<T> a) {
  util::flops::add(static_cast<std::uint64_t>(a.rows()) * a.cols());
  for (index_t j = 0; j < a.cols(); ++j) {
    T* aj = a.col(j);
    for (index_t i = 0; i < a.rows(); ++i) aj[i] *= alpha;
  }
}

template void scal<double>(double, MatrixView);
template void scal<float>(float, MatrixViewF);

}  // namespace fsi::dense
