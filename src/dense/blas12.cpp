/// \file blas12.cpp
/// \brief Level-1/2 BLAS kernels: gemv, ger, axpby, scal.
///
/// These appear on two hot paths: the DQMC rank-1 Green's function update
/// (ger + gemv at every accepted Metropolis flip) and small fix-ups inside
/// the factorisations.  They are kept simple and cache-friendly
/// (column-major traversal) and credit their flops like the Level-3 kernels.

#include "fsi/dense/blas.hpp"
#include "fsi/util/flops.hpp"

namespace fsi::dense {

void gemv(Trans ta, double alpha, ConstMatrixView a, const double* x, double beta,
          double* y) {
  const index_t m = a.rows(), n = a.cols();
  const index_t ylen = (ta == Trans::No) ? m : n;
  if (beta == 0.0) {
    for (index_t i = 0; i < ylen; ++i) y[i] = 0.0;
  } else if (beta != 1.0) {
    for (index_t i = 0; i < ylen; ++i) y[i] *= beta;
  }
  util::flops::add(2ull * m * n);
  if (ta == Trans::No) {
    for (index_t j = 0; j < n; ++j) {
      const double axj = alpha * x[j];
      if (axj == 0.0) continue;
      const double* aj = a.col(j);
#pragma omp simd
      for (index_t i = 0; i < m; ++i) y[i] += aj[i] * axj;
    }
  } else {
    for (index_t j = 0; j < n; ++j) {
      const double* aj = a.col(j);
      double dot = 0.0;
#pragma omp simd reduction(+ : dot)
      for (index_t i = 0; i < m; ++i) dot += aj[i] * x[i];
      y[j] += alpha * dot;
    }
  }
}

void ger(double alpha, const double* x, const double* y, MatrixView a) {
  const index_t m = a.rows(), n = a.cols();
  util::flops::add(2ull * m * n);
  for (index_t j = 0; j < n; ++j) {
    const double ayj = alpha * y[j];
    if (ayj == 0.0) continue;
    double* aj = a.col(j);
#pragma omp simd
    for (index_t i = 0; i < m; ++i) aj[i] += x[i] * ayj;
  }
}

void axpby(double alpha_b, MatrixView b, ConstMatrixView a) {
  FSI_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "axpby: shape mismatch");
  util::flops::add(2ull * a.rows() * a.cols());
  for (index_t j = 0; j < a.cols(); ++j) {
    double* bj = b.col(j);
    const double* aj = a.col(j);
#pragma omp simd
    for (index_t i = 0; i < a.rows(); ++i) bj[i] = alpha_b * bj[i] + aj[i];
  }
}

void scal(double alpha, MatrixView a) {
  util::flops::add(static_cast<std::uint64_t>(a.rows()) * a.cols());
  for (index_t j = 0; j < a.cols(); ++j) {
    double* aj = a.col(j);
    for (index_t i = 0; i < a.rows(); ++i) aj[i] *= alpha;
  }
}

}  // namespace fsi::dense
