#include "fsi/dense/expm.hpp"

#include <cmath>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/lu.hpp"
#include "fsi/dense/norms.hpp"

namespace fsi::dense {

Matrix expm(ConstMatrixView a) {
  FSI_CHECK(a.rows() == a.cols(), "expm: matrix must be square");
  const index_t n = a.rows();

  // Scaling: theta_13 from Higham (2005).
  constexpr double kTheta13 = 5.371920351148152;
  const double norm = one_norm(a);
  int s = 0;
  if (norm > kTheta13) s = static_cast<int>(std::ceil(std::log2(norm / kTheta13)));

  Matrix as = Matrix::copy_of(a);
  if (s > 0) scal(std::ldexp(1.0, -s), as);

  // Padé-13 coefficients.
  constexpr double b[] = {64764752532480000.0, 32382376266240000.0,
                          7771770303897600.0,  1187353796428800.0,
                          129060195264000.0,   10559470521600.0,
                          670442572800.0,      33522128640.0,
                          1323241920.0,        40840800.0,
                          960960.0,            16380.0,
                          182.0,               1.0};

  const Matrix a2 = matmul(as, as);
  const Matrix a4 = matmul(a2, a2);
  const Matrix a6 = matmul(a2, a4);

  // U = A (A6 (b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I)
  Matrix w(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      w(i, j) = b[13] * a6(i, j) + b[11] * a4(i, j) + b[9] * a2(i, j);
  Matrix u_inner = matmul(a6, w);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i)
      u_inner(i, j) += b[7] * a6(i, j) + b[5] * a4(i, j) + b[3] * a2(i, j);
    u_inner(j, j) += b[1];
  }
  Matrix u = matmul(as, u_inner);

  // V = A6 (b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      w(i, j) = b[12] * a6(i, j) + b[10] * a4(i, j) + b[8] * a2(i, j);
  Matrix v = matmul(a6, w);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i)
      v(i, j) += b[6] * a6(i, j) + b[4] * a4(i, j) + b[2] * a2(i, j);
    v(j, j) += b[0];
  }

  // Solve (V - U) X = (V + U).
  Matrix vmu(n, n), vpu(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      vmu(i, j) = v(i, j) - u(i, j);
      vpu(i, j) = v(i, j) + u(i, j);
    }
  }
  LuFactorization lu(std::move(vmu));
  lu.solve(vpu);

  // Undo the scaling by repeated squaring.
  for (int i = 0; i < s; ++i) vpu = matmul(vpu, vpu);
  return vpu;
}

}  // namespace fsi::dense
