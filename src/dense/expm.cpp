#include "fsi/dense/expm.hpp"

#include <cmath>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/lu.hpp"
#include "fsi/dense/norms.hpp"

namespace fsi::dense {
namespace {

template <typename T>
BasicMatrix<T> expm_impl(BasicConstMatrixView<T> a) {
  FSI_CHECK(a.rows() == a.cols(), "expm: matrix must be square");
  const index_t n = a.rows();

  // Scaling: theta_13 from Higham (2005).  The threshold is tuned for fp64;
  // the fp32 instantiation reuses it (more conservative than fp32 needs).
  constexpr double kTheta13 = 5.371920351148152;
  const double norm = one_norm(a);
  int s = 0;
  if (norm > kTheta13) s = static_cast<int>(std::ceil(std::log2(norm / kTheta13)));

  BasicMatrix<T> as = BasicMatrix<T>::copy_of(a);
  if (s > 0) scal(static_cast<T>(std::ldexp(1.0, -s)), BasicMatrixView<T>(as));

  // Padé-13 coefficients.
  constexpr double b[] = {64764752532480000.0, 32382376266240000.0,
                          7771770303897600.0,  1187353796428800.0,
                          129060195264000.0,   10559470521600.0,
                          670442572800.0,      33522128640.0,
                          1323241920.0,        40840800.0,
                          960960.0,            16380.0,
                          182.0,               1.0};

  const BasicMatrix<T> a2 = matmul(BasicConstMatrixView<T>(as),
                                   BasicConstMatrixView<T>(as));
  const BasicMatrix<T> a4 = matmul(BasicConstMatrixView<T>(a2),
                                   BasicConstMatrixView<T>(a2));
  const BasicMatrix<T> a6 = matmul(BasicConstMatrixView<T>(a2),
                                   BasicConstMatrixView<T>(a4));

  // U = A (A6 (b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I)
  BasicMatrix<T> w(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      w(i, j) = static_cast<T>(b[13]) * a6(i, j) +
                static_cast<T>(b[11]) * a4(i, j) +
                static_cast<T>(b[9]) * a2(i, j);
  BasicMatrix<T> u_inner = matmul(BasicConstMatrixView<T>(a6),
                                  BasicConstMatrixView<T>(w));
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i)
      u_inner(i, j) += static_cast<T>(b[7]) * a6(i, j) +
                       static_cast<T>(b[5]) * a4(i, j) +
                       static_cast<T>(b[3]) * a2(i, j);
    u_inner(j, j) += static_cast<T>(b[1]);
  }
  BasicMatrix<T> u = matmul(BasicConstMatrixView<T>(as),
                            BasicConstMatrixView<T>(u_inner));

  // V = A6 (b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      w(i, j) = static_cast<T>(b[12]) * a6(i, j) +
                static_cast<T>(b[10]) * a4(i, j) +
                static_cast<T>(b[8]) * a2(i, j);
  BasicMatrix<T> v = matmul(BasicConstMatrixView<T>(a6),
                            BasicConstMatrixView<T>(w));
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i)
      v(i, j) += static_cast<T>(b[6]) * a6(i, j) +
                 static_cast<T>(b[4]) * a4(i, j) +
                 static_cast<T>(b[2]) * a2(i, j);
    v(j, j) += static_cast<T>(b[0]);
  }

  // Solve (V - U) X = (V + U).
  BasicMatrix<T> vmu(n, n), vpu(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      vmu(i, j) = v(i, j) - u(i, j);
      vpu(i, j) = v(i, j) + u(i, j);
    }
  }
  BasicLuFactorization<T> lu(std::move(vmu));
  lu.solve(vpu);

  // Undo the scaling by repeated squaring.
  for (int i = 0; i < s; ++i)
    vpu = matmul(BasicConstMatrixView<T>(vpu), BasicConstMatrixView<T>(vpu));
  return vpu;
}

}  // namespace

Matrix expm(ConstMatrixView a) { return expm_impl<double>(a); }
MatrixF expm(ConstMatrixViewF a) { return expm_impl<float>(a); }

}  // namespace fsi::dense
