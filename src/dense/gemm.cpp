/// \file gemm.cpp
/// \brief Packed, register-blocked, OpenMP-parallel GEMM (double + float).
///
/// Layout follows the classic Goto/BLIS decomposition, simplified to two
/// levels: the k-dimension is blocked by KC; within a k-block, op(A) is
/// packed into MR-row panels and op(B) into NR-column panels (zero-padded at
/// the edges so the micro-kernel always runs a full MR x NR tile).  The
/// (jr, ir) tile loop is OpenMP-workshared with dynamic scheduling; each
/// B-panel (KC x NR) stays resident in L2 while A-panels stream through.
///
/// Transposition is handled entirely in the packing routines, so there is a
/// single micro-kernel for all four trans combinations.  The kernel is a
/// template over the scalar; the fp32 instantiation doubles MR so a micro
/// tile still spans two SIMD vectors and the A panel keeps its 16 KiB
/// L1 footprint.

#include <algorithm>
#include <cstring>
#include <vector>

#include <omp.h>

#include "fsi/dense/blas.hpp"
#include "fsi/obs/metrics.hpp"
#include "fsi/util/flops.hpp"

namespace fsi::dense {
namespace {

/// Micro-tile geometry per scalar.  double: 8 x 6 (2 AVX2 vectors of
/// doubles, 12 accumulator registers).  float: 16 x 6 (2 AVX2 vectors of
/// floats).  KC = 256 keeps the packed A panel (MR x KC) at 16 KiB for both.
template <typename T>
struct Tile {
  static constexpr index_t kMr = 8;
  static constexpr index_t kNr = 6;
  static constexpr index_t kKc = 256;
};
template <>
struct Tile<float> {
  static constexpr index_t kMr = 16;
  static constexpr index_t kNr = 6;
  static constexpr index_t kKc = 256;
};

template <typename T>
inline const T& op_at(BasicConstMatrixView<T> a, Trans t, index_t i,
                      index_t j) {
  return t == Trans::No ? a(i, j) : a(j, i);
}

/// Pack op(A)(0:m, pc:pc+kc) into MR-row panels: panel ip holds rows
/// [ip*MR, ip*MR+MR) stored as apack[ip*MR*kc + p*MR + i], zero-padded.
template <typename T>
void pack_a_panel(BasicConstMatrixView<T> a, Trans ta, index_t pc, index_t kc,
                  index_t ir, index_t m, T* dst) {
  constexpr index_t kMr = Tile<T>::kMr;
  for (index_t p = 0; p < kc; ++p) {
    T* col = dst + static_cast<std::size_t>(p) * kMr;
    const index_t mr = std::min(kMr, m - ir);
    if (ta == Trans::No) {
      const T* src = &a(ir, pc + p);
      for (index_t i = 0; i < mr; ++i) col[i] = src[i];
    } else {
      for (index_t i = 0; i < mr; ++i) col[i] = a(pc + p, ir + i);
    }
    for (index_t i = mr; i < kMr; ++i) col[i] = T(0);
  }
}

/// Pack op(B)(pc:pc+kc, jr:jr+NR) as bpack[p*NR + j], zero-padded.
template <typename T>
void pack_b_panel(BasicConstMatrixView<T> b, Trans tb, index_t pc, index_t kc,
                  index_t jr, index_t n, T* dst) {
  constexpr index_t kNr = Tile<T>::kNr;
  const index_t nr = std::min(kNr, n - jr);
  for (index_t p = 0; p < kc; ++p) {
    T* row = dst + static_cast<std::size_t>(p) * kNr;
    for (index_t j = 0; j < nr; ++j) row[j] = op_at(b, tb, pc + p, jr + j);
    for (index_t j = nr; j < kNr; ++j) row[j] = T(0);
  }
}

/// acc := sum_p apanel(:,p) * bpanel(p,:)^T over the kc-long panels.
template <typename T>
inline void micro_kernel(const T* __restrict ap, const T* __restrict bp,
                         index_t kc, T* __restrict acc) {
  constexpr index_t kMr = Tile<T>::kMr;
  constexpr index_t kNr = Tile<T>::kNr;
  for (index_t j = 0; j < kNr * kMr; ++j) acc[j] = T(0);
  for (index_t p = 0; p < kc; ++p) {
    const T* a = ap + static_cast<std::size_t>(p) * kMr;
    const T* b = bp + static_cast<std::size_t>(p) * kNr;
    for (index_t j = 0; j < kNr; ++j) {
      const T bj = b[j];
      T* accj = acc + j * kMr;
#pragma omp simd
      for (index_t i = 0; i < kMr; ++i) accj[i] += a[i] * bj;
    }
  }
}

/// Reference path for small problems: no packing, no threading.
template <typename T>
void gemm_small(Trans ta, Trans tb, T alpha, BasicConstMatrixView<T> a,
                BasicConstMatrixView<T> b, BasicMatrixView<T> c) {
  const index_t m = c.rows(), n = c.cols();
  const index_t k = (ta == Trans::No) ? a.cols() : a.rows();
  for (index_t j = 0; j < n; ++j) {
    T* cj = c.col(j);
    for (index_t p = 0; p < k; ++p) {
      const T bpj = alpha * op_at(b, tb, p, j);
      if (bpj == T(0)) continue;
      if (ta == Trans::No) {
        const T* apcol = a.col(p);
#pragma omp simd
        for (index_t i = 0; i < m; ++i) cj[i] += apcol[i] * bpj;
      } else {
        for (index_t i = 0; i < m; ++i) cj[i] += a(p, i) * bpj;
      }
    }
  }
}

}  // namespace

template <typename T>
void gemm(Trans ta, Trans tb, T alpha, BasicConstMatrixView<T> a,
          BasicConstMatrixView<T> b, T beta, BasicMatrixView<T> c) {
  constexpr index_t kMr = Tile<T>::kMr;
  constexpr index_t kNr = Tile<T>::kNr;
  constexpr index_t kKc = Tile<T>::kKc;
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = (ta == Trans::No) ? a.cols() : a.rows();
  FSI_CHECK(((ta == Trans::No) ? a.rows() : a.cols()) == m, "gemm: op(A) rows mismatch");
  FSI_CHECK(((tb == Trans::No) ? b.rows() : b.cols()) == k, "gemm: op(B) rows mismatch");
  FSI_CHECK(((tb == Trans::No) ? b.cols() : b.rows()) == n, "gemm: op(B) cols mismatch");
  if (m == 0 || n == 0) return;

  // beta pass (not counted as flops, matching the 2mnk convention).
  if (beta == T(0)) {
    for (index_t j = 0; j < n; ++j) std::memset(c.col(j), 0, sizeof(T) * m);
  } else if (beta != T(1)) {
    for (index_t j = 0; j < n; ++j) {
      T* cj = c.col(j);
      for (index_t i = 0; i < m; ++i) cj[i] *= beta;
    }
  }
  if (k == 0 || alpha == T(0)) return;

  const std::size_t work = 2ull * m * n * k;
  util::flops::add(work);
  obs::metrics::add(obs::metrics::Counter::KernelCalls, 1);
  // Algorithmic traffic: read op(A), op(B), read+write C.
  obs::metrics::add(obs::metrics::Counter::BytesMoved,
                    sizeof(T) * (static_cast<std::uint64_t>(m) * k +
                                 static_cast<std::uint64_t>(k) * n +
                                 2ull * m * n));

  if (work < kParallelFlopThreshold) {
    gemm_small(ta, tb, alpha, a, b, c);
    return;
  }

  const index_t mtiles = (m + kMr - 1) / kMr;
  const index_t ntiles = (n + kNr - 1) / kNr;
  std::vector<T> apack(static_cast<std::size_t>(mtiles) * kMr * kKc);
  std::vector<T> bpack(static_cast<std::size_t>(ntiles) * kNr * kKc);

#pragma omp parallel
  {
    alignas(64) T acc[kMr * kNr];
    for (index_t pc = 0; pc < k; pc += kKc) {
      const index_t kc = std::min(kKc, k - pc);

#pragma omp for nowait
      for (index_t it = 0; it < mtiles; ++it)
        pack_a_panel(a, ta, pc, kc, it * kMr, m,
                     apack.data() + static_cast<std::size_t>(it) * kMr * kc);
#pragma omp for
      for (index_t jt = 0; jt < ntiles; ++jt)
        pack_b_panel(b, tb, pc, kc, jt * kNr, n,
                     bpack.data() + static_cast<std::size_t>(jt) * kNr * kc);
      // implicit barrier: packing complete before tiles are consumed

#pragma omp for collapse(2) schedule(dynamic, 4)
      for (index_t jt = 0; jt < ntiles; ++jt) {
        for (index_t it = 0; it < mtiles; ++it) {
          micro_kernel(apack.data() + static_cast<std::size_t>(it) * kMr * kc,
                       bpack.data() + static_cast<std::size_t>(jt) * kNr * kc, kc, acc);
          const index_t ir = it * kMr, jr = jt * kNr;
          const index_t mr = std::min(kMr, m - ir), nr = std::min(kNr, n - jr);
          for (index_t j = 0; j < nr; ++j) {
            T* cj = c.col(jr + j) + ir;
            const T* accj = acc + j * kMr;
            for (index_t i = 0; i < mr; ++i) cj[i] += alpha * accj[i];
          }
        }
      }
      // implicit barrier: C tile updates complete before packs are reused
    }
  }
}

template void gemm<double>(Trans, Trans, double, ConstMatrixView,
                           ConstMatrixView, double, MatrixView);
template void gemm<float>(Trans, Trans, float, ConstMatrixViewF,
                          ConstMatrixViewF, float, MatrixViewF);

Matrix matmul(ConstMatrixView a, ConstMatrixView b) {
  Matrix c(a.rows(), b.cols());
  gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, c);
  return c;
}

MatrixF matmul(ConstMatrixViewF a, ConstMatrixViewF b) {
  MatrixF c(a.rows(), b.cols());
  gemm(Trans::No, Trans::No, 1.0f, a, b, 0.0f, c);
  return c;
}

}  // namespace fsi::dense
