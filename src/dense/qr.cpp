#include "fsi/dense/qr.hpp"

#include <algorithm>
#include <cmath>

#include "fsi/obs/metrics.hpp"
#include "fsi/util/flops.hpp"

namespace fsi::dense {
namespace {

constexpr index_t kQrPanel = 48;

/// Generate an elementary reflector H = I - tau v v^T with v(0) = 1 such
/// that H [alpha; x] = [beta; 0]   (DLARFG).
double larfg(double& alpha, double* x, index_t n) {
  double xnorm2 = 0.0;
  for (index_t i = 0; i < n; ++i) xnorm2 += x[i] * x[i];
  if (xnorm2 == 0.0) return 0.0;  // already triangular; H = I
  const double beta = -std::copysign(std::sqrt(alpha * alpha + xnorm2), alpha);
  const double tau = (beta - alpha) / beta;
  const double inv = 1.0 / (alpha - beta);
  for (index_t i = 0; i < n; ++i) x[i] *= inv;
  alpha = beta;
  return tau;
}

/// Unblocked panel QR (DGEQR2).
void geqr2(MatrixView a, double* tau) {
  const index_t m = a.rows(), n = a.cols();
  std::vector<double> w(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n && j < m; ++j) {
    double* below = (j + 1 < m) ? a.col(j) + (j + 1) : nullptr;
    tau[j] = larfg(a(j, j), below, m - j - 1);
    if (tau[j] == 0.0 || j + 1 >= n) continue;
    // Apply H_j to the trailing columns: A := (I - tau v v^T) A.
    const double beta = a(j, j);
    a(j, j) = 1.0;  // temporarily store the full v (unit head)
    ConstMatrixView trail = a.block(j, j + 1, m - j, n - j - 1);
    MatrixView trail_mut = a.block(j, j + 1, m - j, n - j - 1);
    gemv(Trans::Yes, 1.0, trail, a.col(j) + j, 0.0, w.data());
    ger(-tau[j], a.col(j) + j, w.data(), trail_mut);
    a(j, j) = beta;
  }
}

/// Form the upper-triangular T of the compact-WY representation
/// Q = I - V T V^T from the k reflectors in v/tau (DLARFT, forward
/// columnwise).  V is m x k, unit lower trapezoidal as stored by geqr2.
void larft(ConstMatrixView v, const double* tau, MatrixView t) {
  const index_t m = v.rows(), k = v.cols();
  for (index_t i = 0; i < k; ++i) {
    t(i, i) = tau[i];
    if (i == 0) continue;
    // t(0:i, i) = -tau_i * V(:, 0:i)^T v_i, then T(0:i,0:i) * that.
    // v_i has implicit unit at row i and zeros above.
    for (index_t j = 0; j < i; ++j) {
      double dot = v(i, j);  // unit head of v_i times V(i, j)
      for (index_t r = i + 1; r < m; ++r) dot += v(r, j) * v(r, i);
      t(j, i) = -tau[i] * dot;
    }
    util::flops::add(2ull * (m - i) * i);
    // t(0:i, i) := T(0:i, 0:i) * t(0:i, i) (in-place trmv, upper).
    for (index_t r = 0; r < i; ++r) {
      double s = t(r, r) * t(r, i);
      for (index_t p = r + 1; p < i; ++p) s += t(r, p) * t(p, i);
      t(r, i) = s;
    }
  }
}

/// Copy the unit lower-trapezoidal V out of the packed QR storage into a
/// clean workspace (zeros above the diagonal, explicit unit diagonal), so
/// gemm can consume it directly.
Matrix extract_v(ConstMatrixView packed) {
  const index_t m = packed.rows(), k = packed.cols();
  Matrix v(m, k);
  for (index_t j = 0; j < k; ++j) {
    v(j, j) = 1.0;
    for (index_t i = j + 1; i < m; ++i) v(i, j) = packed(i, j);
  }
  return v;
}

/// Apply the block reflector H = I - V T V^T (or H^T) to C (DLARFB).
void larfb(Side side, Trans trans, ConstMatrixView v, ConstMatrixView t,
           MatrixView c) {
  const Trans t_op = (trans == Trans::No) ? Trans::No : Trans::Yes;
  if (side == Side::Left) {
    // C := (I - V T' V^T) C  =  C - V T' (V^T C).
    Matrix w(v.cols(), c.cols());
    gemm(Trans::Yes, Trans::No, 1.0, v, c, 0.0, w);
    trmm(Side::Left, Uplo::Upper, t_op, Diag::NonUnit, 1.0, t, w);
    gemm(Trans::No, Trans::No, -1.0, v, w, 1.0, c);
  } else {
    // C := C (I - V T' V^T)  =  C - (C V) T' V^T.
    Matrix w(c.rows(), v.cols());
    gemm(Trans::No, Trans::No, 1.0, c, v, 0.0, w);
    trmm(Side::Right, Uplo::Upper, t_op, Diag::NonUnit, 1.0, t, w);
    gemm(Trans::No, Trans::Yes, -1.0, w, v, 1.0, c);
  }
}

}  // namespace

void geqrf(MatrixView a, std::vector<double>& tau) {
  const index_t m = a.rows(), n = a.cols();
  FSI_CHECK(m >= n, "geqrf: requires rows >= cols");
  obs::metrics::add(obs::metrics::Counter::KernelCalls, 1);
  tau.assign(static_cast<std::size_t>(n), 0.0);
  for (index_t jb = 0; jb < n; jb += kQrPanel) {
    const index_t nb = std::min(kQrPanel, n - jb);
    MatrixView panel = a.block(jb, jb, m - jb, nb);
    geqr2(panel, tau.data() + jb);
    util::flops::add(2ull * (m - jb) * nb * nb);
    if (jb + nb < n) {
      Matrix v = extract_v(panel);
      Matrix t(nb, nb);
      larft(v, tau.data() + jb, t);
      larfb(Side::Left, Trans::Yes, v, t,
            a.block(jb, jb + nb, m - jb, n - jb - nb));
    }
  }
}

void ormqr(Side side, Trans trans, ConstMatrixView vfull,
           const std::vector<double>& tau, MatrixView c) {
  const index_t m = vfull.rows();
  const index_t k = vfull.cols();
  FSI_CHECK(static_cast<index_t>(tau.size()) >= k, "ormqr: tau too short");
  FSI_CHECK((side == Side::Left ? c.rows() : c.cols()) == m,
            "ormqr: C dimension must match Q order");
  obs::metrics::add(obs::metrics::Counter::KernelCalls, 1);

  // Q = H_0 H_1 ... H_{k-1}.  Block application order (LAPACK dormqr):
  //   Left  + Trans::Yes (Q^T C): forward      Left  + No (Q C): backward
  //   Right + Trans::No  (C Q)  : forward      Right + Yes (C Q^T): backward
  const bool forward = (side == Side::Left) == (trans == Trans::Yes);

  std::vector<index_t> starts;
  for (index_t jb = 0; jb < k; jb += kQrPanel) starts.push_back(jb);
  if (!forward) std::reverse(starts.begin(), starts.end());

  for (index_t jb : starts) {
    const index_t nb = std::min(kQrPanel, k - jb);
    Matrix v = extract_v(vfull.block(jb, jb, m - jb, nb));
    Matrix t(nb, nb);
    larft(v, tau.data() + jb, t);
    if (side == Side::Left)
      larfb(side, trans, v, t, c.block(jb, 0, m - jb, c.cols()));
    else
      larfb(side, trans, v, t, c.block(0, jb, c.rows(), m - jb));
  }
}

QrFactorization::QrFactorization(Matrix a) : packed_(std::move(a)) {
  geqrf(packed_, tau_);
}

Matrix QrFactorization::r() const {
  const index_t n = packed_.cols();
  Matrix r(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= j; ++i) r(i, j) = packed_(i, j);
  return r;
}

Matrix QrFactorization::q() const {
  Matrix q = Matrix::identity(packed_.rows());
  apply_q(Side::Left, Trans::No, q);
  return q;
}

}  // namespace fsi::dense
