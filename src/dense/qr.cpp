#include "fsi/dense/qr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "fsi/obs/metrics.hpp"
#include "fsi/util/flops.hpp"

namespace fsi::dense {
namespace {

constexpr index_t kQrPanel = 48;

/// Generate an elementary reflector H = I - tau v v^T with v(0) = 1 such
/// that H [alpha; x] = [beta; 0]   (DLARFG).
template <typename T>
T larfg(T& alpha, T* x, index_t n) {
  T xnorm2 = T(0);
  for (index_t i = 0; i < n; ++i) xnorm2 += x[i] * x[i];
  if (xnorm2 == T(0)) return T(0);  // already triangular; H = I
  const T beta = -std::copysign(std::sqrt(alpha * alpha + xnorm2), alpha);
  const T tau = (beta - alpha) / beta;
  const T inv = T(1) / (alpha - beta);
  for (index_t i = 0; i < n; ++i) x[i] *= inv;
  alpha = beta;
  return tau;
}

/// Unblocked panel QR (DGEQR2).
template <typename T>
void geqr2(BasicMatrixView<T> a, T* tau) {
  const index_t m = a.rows(), n = a.cols();
  std::vector<T> w(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n && j < m; ++j) {
    T* below = (j + 1 < m) ? a.col(j) + (j + 1) : nullptr;
    tau[j] = larfg(a(j, j), below, m - j - 1);
    if (tau[j] == T(0) || j + 1 >= n) continue;
    // Apply H_j to the trailing columns: A := (I - tau v v^T) A.
    const T beta = a(j, j);
    a(j, j) = T(1);  // temporarily store the full v (unit head)
    BasicConstMatrixView<T> trail = a.block(j, j + 1, m - j, n - j - 1);
    BasicMatrixView<T> trail_mut = a.block(j, j + 1, m - j, n - j - 1);
    gemv(Trans::Yes, T(1), trail, a.col(j) + j, T(0), w.data());
    ger(-tau[j], a.col(j) + j, w.data(), trail_mut);
    a(j, j) = beta;
  }
}

/// Form the upper-triangular T of the compact-WY representation
/// Q = I - V T V^T from the k reflectors in v/tau (DLARFT, forward
/// columnwise).  V is m x k, unit lower trapezoidal as stored by geqr2.
template <typename T>
void larft(BasicConstMatrixView<T> v, const T* tau, BasicMatrixView<T> t) {
  const index_t m = v.rows(), k = v.cols();
  for (index_t i = 0; i < k; ++i) {
    t(i, i) = tau[i];
    if (i == 0) continue;
    // t(0:i, i) = -tau_i * V(:, 0:i)^T v_i, then T(0:i,0:i) * that.
    // v_i has implicit unit at row i and zeros above.
    for (index_t j = 0; j < i; ++j) {
      T dot = v(i, j);  // unit head of v_i times V(i, j)
      for (index_t r = i + 1; r < m; ++r) dot += v(r, j) * v(r, i);
      t(j, i) = -tau[i] * dot;
    }
    util::flops::add(2ull * (m - i) * i);
    // t(0:i, i) := T(0:i, 0:i) * t(0:i, i) (in-place trmv, upper).
    for (index_t r = 0; r < i; ++r) {
      T s = t(r, r) * t(r, i);
      for (index_t p = r + 1; p < i; ++p) s += t(r, p) * t(p, i);
      t(r, i) = s;
    }
  }
}

/// Copy the unit lower-trapezoidal V out of the packed QR storage into a
/// clean workspace (zeros above the diagonal, explicit unit diagonal), so
/// gemm can consume it directly.
template <typename T>
BasicMatrix<T> extract_v(BasicConstMatrixView<T> packed) {
  const index_t m = packed.rows(), k = packed.cols();
  BasicMatrix<T> v(m, k);
  for (index_t j = 0; j < k; ++j) {
    v(j, j) = T(1);
    for (index_t i = j + 1; i < m; ++i) v(i, j) = packed(i, j);
  }
  return v;
}

/// Apply the block reflector H = I - V T V^T (or H^T) to C (DLARFB).
template <typename T>
void larfb(Side side, Trans trans, BasicConstMatrixView<T> v,
           BasicConstMatrixView<T> t, BasicMatrixView<T> c) {
  const Trans t_op = (trans == Trans::No) ? Trans::No : Trans::Yes;
  if (side == Side::Left) {
    // C := (I - V T' V^T) C  =  C - V T' (V^T C).
    BasicMatrix<T> w(v.cols(), c.cols());
    gemm(Trans::Yes, Trans::No, T(1), v, BasicConstMatrixView<T>(c), T(0),
         BasicMatrixView<T>(w));
    trmm(Side::Left, Uplo::Upper, t_op, Diag::NonUnit, T(1), t,
         BasicMatrixView<T>(w));
    gemm(Trans::No, Trans::No, T(-1), v, BasicConstMatrixView<T>(w), T(1), c);
  } else {
    // C := C (I - V T' V^T)  =  C - (C V) T' V^T.
    BasicMatrix<T> w(c.rows(), v.cols());
    gemm(Trans::No, Trans::No, T(1), BasicConstMatrixView<T>(c), v, T(0),
         BasicMatrixView<T>(w));
    trmm(Side::Right, Uplo::Upper, t_op, Diag::NonUnit, T(1), t,
         BasicMatrixView<T>(w));
    gemm(Trans::No, Trans::Yes, T(-1), BasicConstMatrixView<T>(w), v, T(1), c);
  }
}

}  // namespace

template <typename T>
void geqrf(BasicMatrixView<T> a, std::vector<T>& tau) {
  const index_t m = a.rows(), n = a.cols();
  FSI_CHECK(m >= n, "geqrf: requires rows >= cols");
  obs::metrics::add(obs::metrics::Counter::KernelCalls, 1);
  tau.assign(static_cast<std::size_t>(n), T(0));
  for (index_t jb = 0; jb < n; jb += kQrPanel) {
    const index_t nb = std::min(kQrPanel, n - jb);
    BasicMatrixView<T> panel = a.block(jb, jb, m - jb, nb);
    geqr2(panel, tau.data() + jb);
    util::flops::add(2ull * (m - jb) * nb * nb);
    if (jb + nb < n) {
      BasicMatrix<T> v = extract_v(BasicConstMatrixView<T>(panel));
      BasicMatrix<T> t(nb, nb);
      larft(BasicConstMatrixView<T>(v), tau.data() + jb,
            BasicMatrixView<T>(t));
      larfb(Side::Left, Trans::Yes, BasicConstMatrixView<T>(v),
            BasicConstMatrixView<T>(t),
            a.block(jb, jb + nb, m - jb, n - jb - nb));
    }
  }
}

template void geqrf<double>(MatrixView, std::vector<double>&);
template void geqrf<float>(MatrixViewF, std::vector<float>&);

template <typename T>
void geqp3(BasicMatrixView<T> a, std::vector<T>& tau,
           std::vector<index_t>& jpvt) {
  const index_t m = a.rows(), n = a.cols();
  FSI_CHECK(m >= n, "geqp3: requires rows >= cols");
  obs::metrics::add(obs::metrics::Counter::KernelCalls, 1);
  tau.assign(static_cast<std::size_t>(n), T(0));
  jpvt.resize(static_cast<std::size_t>(n));
  std::iota(jpvt.begin(), jpvt.end(), index_t(0));

  // Partial column norms: vn1 is downdated after each reflector, vn2 holds
  // the norm at the last exact evaluation.  When cancellation has eaten more
  // than sqrt(eps) of vn1 relative to vn2, the downdate is no longer
  // trustworthy and the norm is recomputed from the trailing rows.
  auto col_norm = [&](index_t j, index_t from) {
    T s = T(0);
    for (index_t i = from; i < m; ++i) s += a(i, j) * a(i, j);
    return std::sqrt(s);
  };
  std::vector<T> vn1(static_cast<std::size_t>(n)), vn2(vn1);
  for (index_t j = 0; j < n; ++j) vn1[j] = vn2[j] = col_norm(j, 0);
  const T tol3z = std::sqrt(std::numeric_limits<T>::epsilon());

  std::vector<T> w(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    // Pivot: swap the remaining column of largest partial norm into place.
    index_t p = j;
    for (index_t k = j + 1; k < n; ++k)
      if (vn1[k] > vn1[p]) p = k;
    if (p != j) {
      for (index_t i = 0; i < m; ++i) std::swap(a(i, j), a(i, p));
      std::swap(jpvt[j], jpvt[p]);
      std::swap(vn1[j], vn1[p]);
      std::swap(vn2[j], vn2[p]);
    }

    T* below = (j + 1 < m) ? a.col(j) + (j + 1) : nullptr;
    tau[j] = larfg(a(j, j), below, m - j - 1);
    if (j + 1 >= n) continue;

    if (tau[j] != T(0)) {
      // Apply H_j to the trailing columns (same gemv/ger pair as geqr2).
      const T beta = a(j, j);
      a(j, j) = T(1);
      BasicConstMatrixView<T> trail = a.block(j, j + 1, m - j, n - j - 1);
      BasicMatrixView<T> trail_mut = a.block(j, j + 1, m - j, n - j - 1);
      gemv(Trans::Yes, T(1), trail, a.col(j) + j, T(0), w.data());
      ger(-tau[j], a.col(j) + j, w.data(), trail_mut);
      a(j, j) = beta;
    }

    for (index_t k = j + 1; k < n; ++k) {
      if (vn1[k] == T(0)) continue;
      T temp = std::abs(a(j, k)) / vn1[k];
      temp = std::max(T(0), (T(1) + temp) * (T(1) - temp));
      const T ratio = vn1[k] / vn2[k];
      if (temp * ratio * ratio <= tol3z) {
        vn1[k] = (j + 1 < m) ? col_norm(k, j + 1) : T(0);
        vn2[k] = vn1[k];
      } else {
        vn1[k] *= std::sqrt(temp);
      }
    }
  }
  util::flops::add(2ull * m * n * n);
}

template void geqp3<double>(MatrixView, std::vector<double>&,
                            std::vector<index_t>&);
template void geqp3<float>(MatrixViewF, std::vector<float>&,
                           std::vector<index_t>&);

template <typename T>
void ormqr(Side side, Trans trans, BasicConstMatrixView<T> vfull,
           const std::vector<T>& tau, BasicMatrixView<T> c) {
  const index_t m = vfull.rows();
  const index_t k = vfull.cols();
  FSI_CHECK(static_cast<index_t>(tau.size()) >= k, "ormqr: tau too short");
  FSI_CHECK((side == Side::Left ? c.rows() : c.cols()) == m,
            "ormqr: C dimension must match Q order");
  obs::metrics::add(obs::metrics::Counter::KernelCalls, 1);

  // Q = H_0 H_1 ... H_{k-1}.  Block application order (LAPACK dormqr):
  //   Left  + Trans::Yes (Q^T C): forward      Left  + No (Q C): backward
  //   Right + Trans::No  (C Q)  : forward      Right + Yes (C Q^T): backward
  const bool forward = (side == Side::Left) == (trans == Trans::Yes);

  std::vector<index_t> starts;
  for (index_t jb = 0; jb < k; jb += kQrPanel) starts.push_back(jb);
  if (!forward) std::reverse(starts.begin(), starts.end());

  for (index_t jb : starts) {
    const index_t nb = std::min(kQrPanel, k - jb);
    BasicMatrix<T> v = extract_v(vfull.block(jb, jb, m - jb, nb));
    BasicMatrix<T> t(nb, nb);
    larft(BasicConstMatrixView<T>(v), tau.data() + jb, BasicMatrixView<T>(t));
    if (side == Side::Left)
      larfb(side, trans, BasicConstMatrixView<T>(v),
            BasicConstMatrixView<T>(t), c.block(jb, 0, m - jb, c.cols()));
    else
      larfb(side, trans, BasicConstMatrixView<T>(v),
            BasicConstMatrixView<T>(t), c.block(0, jb, c.rows(), m - jb));
  }
}

template void ormqr<double>(Side, Trans, ConstMatrixView,
                            const std::vector<double>&, MatrixView);
template void ormqr<float>(Side, Trans, ConstMatrixViewF,
                           const std::vector<float>&, MatrixViewF);

template <typename T>
BasicQrFactorization<T>::BasicQrFactorization(BasicMatrix<T> a)
    : packed_(std::move(a)) {
  geqrf<T>(packed_, tau_);
}

template <typename T>
BasicMatrix<T> BasicQrFactorization<T>::r() const {
  const index_t n = packed_.cols();
  BasicMatrix<T> r(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= j; ++i) r(i, j) = packed_(i, j);
  return r;
}

template <typename T>
BasicMatrix<T> BasicQrFactorization<T>::q() const {
  BasicMatrix<T> q = BasicMatrix<T>::identity(packed_.rows());
  apply_q(Side::Left, Trans::No, q);
  return q;
}

template class BasicQrFactorization<double>;
template class BasicQrFactorization<float>;

template <typename T>
BasicQrpFactorization<T>::BasicQrpFactorization(BasicMatrix<T> a)
    : packed_(std::move(a)) {
  geqp3<T>(packed_, tau_, jpvt_);
}

template <typename T>
BasicMatrix<T> BasicQrpFactorization<T>::r() const {
  const index_t n = packed_.cols();
  BasicMatrix<T> r(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= j; ++i) r(i, j) = packed_(i, j);
  return r;
}

template <typename T>
BasicMatrix<T> BasicQrpFactorization<T>::q() const {
  BasicMatrix<T> q = BasicMatrix<T>::identity(packed_.rows());
  apply_q(Side::Left, Trans::No, q);
  return q;
}

template class BasicQrpFactorization<double>;
template class BasicQrpFactorization<float>;

}  // namespace fsi::dense
