#include "fsi/dense/matrix.hpp"

#include <cstring>

namespace fsi::dense {
namespace {

template <typename T>
void copy_impl(BasicConstMatrixView<T> src, BasicMatrixView<T> dst) {
  FSI_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols(),
            "copy: shape mismatch");
  for (index_t j = 0; j < src.cols(); ++j)
    std::memcpy(dst.col(j), src.col(j), sizeof(T) * src.rows());
}

template <typename T>
void transpose_into_impl(BasicConstMatrixView<T> src, BasicMatrixView<T> dst) {
  FSI_CHECK(src.rows() == dst.cols() && src.cols() == dst.rows(),
            "transpose_into: shape mismatch");
  for (index_t j = 0; j < src.cols(); ++j) {
    const T* sj = src.col(j);
    for (index_t i = 0; i < src.rows(); ++i) dst(j, i) = sj[i];
  }
}

template <typename T>
void set_identity_impl(BasicMatrixView<T> dst) {
  FSI_CHECK(dst.rows() == dst.cols(), "set_identity: matrix must be square");
  set_all(dst, T(0));
  for (index_t i = 0; i < dst.rows(); ++i) dst(i, i) = T(1);
}

template <typename T>
void set_all_impl(BasicMatrixView<T> dst, T value) {
  for (index_t j = 0; j < dst.cols(); ++j) {
    T* dj = dst.col(j);
    for (index_t i = 0; i < dst.rows(); ++i) dj[i] = value;
  }
}

template <typename From, typename To>
void convert_impl(BasicConstMatrixView<From> src, BasicMatrixView<To> dst,
                  const char* what) {
  FSI_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols(), what);
  for (index_t j = 0; j < src.cols(); ++j) {
    const From* sj = src.col(j);
    To* dj = dst.col(j);
    for (index_t i = 0; i < src.rows(); ++i) dj[i] = static_cast<To>(sj[i]);
  }
}

}  // namespace

void copy(ConstMatrixView src, MatrixView dst) { copy_impl<double>(src, dst); }
void copy(ConstMatrixViewF src, MatrixViewF dst) { copy_impl<float>(src, dst); }

void transpose_into(ConstMatrixView src, MatrixView dst) {
  transpose_into_impl<double>(src, dst);
}
void transpose_into(ConstMatrixViewF src, MatrixViewF dst) {
  transpose_into_impl<float>(src, dst);
}

Matrix transposed(ConstMatrixView src) {
  Matrix t(src.cols(), src.rows());
  transpose_into(src, t);
  return t;
}
MatrixF transposed(ConstMatrixViewF src) {
  MatrixF t(src.cols(), src.rows());
  transpose_into(src, t);
  return t;
}

void set_identity(MatrixView dst) { set_identity_impl<double>(dst); }
void set_identity(MatrixViewF dst) { set_identity_impl<float>(dst); }

void set_all(MatrixView dst, double value) { set_all_impl<double>(dst, value); }
void set_all(MatrixViewF dst, float value) { set_all_impl<float>(dst, value); }

void promote(ConstMatrixViewF src, MatrixView dst) {
  convert_impl<float, double>(src, dst, "promote: shape mismatch");
}

Matrix promoted(ConstMatrixViewF src) {
  Matrix m(src.rows(), src.cols());
  promote(src, m);
  return m;
}

void demote(ConstMatrixView src, MatrixViewF dst) {
  convert_impl<double, float>(src, dst, "demote: shape mismatch");
}

MatrixF demoted(ConstMatrixView src) {
  MatrixF m(src.rows(), src.cols());
  demote(src, m);
  return m;
}

}  // namespace fsi::dense
