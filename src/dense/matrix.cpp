#include "fsi/dense/matrix.hpp"

#include <cstring>

namespace fsi::dense {

void copy(ConstMatrixView src, MatrixView dst) {
  FSI_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols(),
            "copy: shape mismatch");
  for (index_t j = 0; j < src.cols(); ++j)
    std::memcpy(dst.col(j), src.col(j), sizeof(double) * src.rows());
}

void transpose_into(ConstMatrixView src, MatrixView dst) {
  FSI_CHECK(src.rows() == dst.cols() && src.cols() == dst.rows(),
            "transpose_into: shape mismatch");
  for (index_t j = 0; j < src.cols(); ++j) {
    const double* sj = src.col(j);
    for (index_t i = 0; i < src.rows(); ++i) dst(j, i) = sj[i];
  }
}

Matrix transposed(ConstMatrixView src) {
  Matrix t(src.cols(), src.rows());
  transpose_into(src, t);
  return t;
}

void set_identity(MatrixView dst) {
  FSI_CHECK(dst.rows() == dst.cols(), "set_identity: matrix must be square");
  set_all(dst, 0.0);
  for (index_t i = 0; i < dst.rows(); ++i) dst(i, i) = 1.0;
}

void set_all(MatrixView dst, double value) {
  for (index_t j = 0; j < dst.cols(); ++j) {
    double* dj = dst.col(j);
    for (index_t i = 0; i < dst.rows(); ++i) dj[i] = value;
  }
}

}  // namespace fsi::dense
