#include "fsi/dense/norms.hpp"

#include <cmath>

namespace fsi::dense {

double frobenius_norm(ConstMatrixView a) {
  double s = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) {
    const double* col = a.col(j);
    for (index_t i = 0; i < a.rows(); ++i) s += col[i] * col[i];
  }
  return std::sqrt(s);
}

double one_norm(ConstMatrixView a) {
  double best = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) {
    double s = 0.0;
    const double* col = a.col(j);
    for (index_t i = 0; i < a.rows(); ++i) s += std::fabs(col[i]);
    best = std::max(best, s);
  }
  return best;
}

double inf_norm(ConstMatrixView a) {
  double best = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (index_t j = 0; j < a.cols(); ++j) s += std::fabs(a(i, j));
    best = std::max(best, s);
  }
  return best;
}

double max_abs(ConstMatrixView a) {
  double best = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) {
    const double* col = a.col(j);
    for (index_t i = 0; i < a.rows(); ++i) best = std::max(best, std::fabs(col[i]));
  }
  return best;
}

bool all_finite(ConstMatrixView a) {
  for (index_t j = 0; j < a.cols(); ++j) {
    const double* col = a.col(j);
    for (index_t i = 0; i < a.rows(); ++i)
      if (!std::isfinite(col[i])) return false;
  }
  return true;
}

double fro_distance(ConstMatrixView a, ConstMatrixView b) {
  FSI_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
            "fro_distance: shape mismatch");
  double s = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) {
    const double* ca = a.col(j);
    const double* cb = b.col(j);
    for (index_t i = 0; i < a.rows(); ++i) {
      const double d = ca[i] - cb[i];
      s += d * d;
    }
  }
  return std::sqrt(s);
}

double rel_fro_error(ConstMatrixView a, ConstMatrixView reference) {
  const double denom = frobenius_norm(reference);
  const double dist = fro_distance(a, reference);
  return denom == 0.0 ? dist : dist / denom;
}

}  // namespace fsi::dense
