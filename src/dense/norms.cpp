#include "fsi/dense/norms.hpp"

#include <cmath>

namespace fsi::dense {
namespace {

template <typename T>
double frobenius_norm_impl(BasicConstMatrixView<T> a) {
  double s = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) {
    const T* col = a.col(j);
    for (index_t i = 0; i < a.rows(); ++i)
      s += static_cast<double>(col[i]) * static_cast<double>(col[i]);
  }
  return std::sqrt(s);
}

template <typename T>
double one_norm_impl(BasicConstMatrixView<T> a) {
  double best = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) {
    double s = 0.0;
    const T* col = a.col(j);
    for (index_t i = 0; i < a.rows(); ++i)
      s += std::fabs(static_cast<double>(col[i]));
    best = std::max(best, s);
  }
  return best;
}

template <typename T>
double inf_norm_impl(BasicConstMatrixView<T> a) {
  double best = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (index_t j = 0; j < a.cols(); ++j)
      s += std::fabs(static_cast<double>(a(i, j)));
    best = std::max(best, s);
  }
  return best;
}

template <typename T>
double max_abs_impl(BasicConstMatrixView<T> a) {
  double best = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) {
    const T* col = a.col(j);
    for (index_t i = 0; i < a.rows(); ++i)
      best = std::max(best, std::fabs(static_cast<double>(col[i])));
  }
  return best;
}

template <typename T>
bool all_finite_impl(BasicConstMatrixView<T> a) {
  for (index_t j = 0; j < a.cols(); ++j) {
    const T* col = a.col(j);
    for (index_t i = 0; i < a.rows(); ++i)
      if (!std::isfinite(col[i])) return false;
  }
  return true;
}

template <typename T>
double fro_distance_impl(BasicConstMatrixView<T> a, BasicConstMatrixView<T> b) {
  FSI_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
            "fro_distance: shape mismatch");
  double s = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) {
    const T* ca = a.col(j);
    const T* cb = b.col(j);
    for (index_t i = 0; i < a.rows(); ++i) {
      const double d = static_cast<double>(ca[i]) - static_cast<double>(cb[i]);
      s += d * d;
    }
  }
  return std::sqrt(s);
}

}  // namespace

double frobenius_norm(ConstMatrixView a) { return frobenius_norm_impl(a); }
double frobenius_norm(ConstMatrixViewF a) { return frobenius_norm_impl(a); }

double one_norm(ConstMatrixView a) { return one_norm_impl(a); }
double one_norm(ConstMatrixViewF a) { return one_norm_impl(a); }

double inf_norm(ConstMatrixView a) { return inf_norm_impl(a); }
double inf_norm(ConstMatrixViewF a) { return inf_norm_impl(a); }

double max_abs(ConstMatrixView a) { return max_abs_impl(a); }
double max_abs(ConstMatrixViewF a) { return max_abs_impl(a); }

bool all_finite(ConstMatrixView a) { return all_finite_impl(a); }
bool all_finite(ConstMatrixViewF a) { return all_finite_impl(a); }

double fro_distance(ConstMatrixView a, ConstMatrixView b) {
  return fro_distance_impl(a, b);
}
double fro_distance(ConstMatrixViewF a, ConstMatrixViewF b) {
  return fro_distance_impl(a, b);
}

double rel_fro_error(ConstMatrixView a, ConstMatrixView reference) {
  const double denom = frobenius_norm(reference);
  const double dist = fro_distance(a, reference);
  return denom == 0.0 ? dist : dist / denom;
}

double rel_fro_error(ConstMatrixViewF a, ConstMatrixViewF reference) {
  const double denom = frobenius_norm(reference);
  const double dist = fro_distance(a, reference);
  return denom == 0.0 ? dist : dist / denom;
}

}  // namespace fsi::dense
