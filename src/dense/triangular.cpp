/// \file triangular.cpp
/// \brief Triangular kernels: trsm, trmm (recursive blocked), trtri.
///
/// trsm, trmm and trtri use the standard divide-and-conquer formulation so
/// that almost all of their flops are executed inside gemm, which is where
/// the machine-tuned code lives — the same strategy LAPACK uses with its
/// blocked drivers on top of Level-3 BLAS.  The recursions only ever hand
/// gemm rectangular off-diagonal blocks, so matrices that carry unrelated
/// data in the opposite triangle (e.g. the packed LU factors) are handled
/// correctly.  All kernels are scalar templates instantiated for double and
/// float.

#include "fsi/dense/blas.hpp"
#include "fsi/obs/metrics.hpp"
#include "fsi/util/flops.hpp"

namespace fsi::dense {
namespace {

constexpr index_t kTriBase = 64;  // unblocked base-case size

template <typename T>
T diag_coeff(BasicConstMatrixView<T> a, Diag diag, index_t i) {
  return diag == Diag::Unit ? T(1) : a(i, i);
}

template <typename T>
void trsm_unblocked(Side side, Uplo uplo, Trans trans, Diag diag,
                    BasicConstMatrixView<T> a, BasicMatrixView<T> b) {
  const index_t n = a.rows();
  const index_t m = (side == Side::Left) ? b.cols() : b.rows();
  util::flops::add(static_cast<std::uint64_t>(n) * n * m);

  if (side == Side::Left) {
    for (index_t j = 0; j < b.cols(); ++j) {
      T* bj = b.col(j);
      if (uplo == Uplo::Lower && trans == Trans::No) {
        for (index_t p = 0; p < n; ++p) {
          if (diag == Diag::NonUnit) bj[p] /= a(p, p);
          const T bpj = bj[p];
          for (index_t i = p + 1; i < n; ++i) bj[i] -= a(i, p) * bpj;
        }
      } else if (uplo == Uplo::Lower && trans == Trans::Yes) {
        for (index_t p = n - 1; p >= 0; --p) {
          T dot = T(0);
          const T* ap = a.col(p);
          for (index_t i = p + 1; i < n; ++i) dot += ap[i] * bj[i];
          bj[p] = (bj[p] - dot) / diag_coeff(a, diag, p);
        }
      } else if (uplo == Uplo::Upper && trans == Trans::No) {
        for (index_t p = n - 1; p >= 0; --p) {
          if (diag == Diag::NonUnit) bj[p] /= a(p, p);
          const T bpj = bj[p];
          const T* ap = a.col(p);
          for (index_t i = 0; i < p; ++i) bj[i] -= ap[i] * bpj;
        }
      } else {  // Upper, Trans
        for (index_t p = 0; p < n; ++p) {
          T dot = T(0);
          const T* ap = a.col(p);
          for (index_t i = 0; i < p; ++i) dot += ap[i] * bj[i];
          bj[p] = (bj[p] - dot) / diag_coeff(a, diag, p);
        }
      }
    }
    return;
  }

  // Side::Right: solve X * op(A) = B in-place, column-by-column of X.
  const index_t rows = b.rows();
  auto axpy_col = [&](T coeff, index_t src, index_t dst) {
    if (coeff == T(0)) return;
    const T* s = b.col(src);
    T* d = b.col(dst);
#pragma omp simd
    for (index_t i = 0; i < rows; ++i) d[i] -= coeff * s[i];
  };
  auto div_col = [&](index_t j) {
    if (diag == Diag::Unit) return;
    const T inv = T(1) / a(j, j);
    T* d = b.col(j);
    for (index_t i = 0; i < rows; ++i) d[i] *= inv;
  };
  const bool forward = (uplo == Uplo::Upper) == (trans == Trans::No);
  if (forward) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t p = 0; p < j; ++p)
        axpy_col(trans == Trans::No ? a(p, j) : a(j, p), p, j);
      div_col(j);
    }
  } else {
    for (index_t j = n - 1; j >= 0; --j) {
      for (index_t p = j + 1; p < n; ++p)
        axpy_col(trans == Trans::No ? a(p, j) : a(j, p), p, j);
      div_col(j);
    }
  }
}

template <typename T>
void trsm_rec(Side side, Uplo uplo, Trans trans, Diag diag,
              BasicConstMatrixView<T> a, BasicMatrixView<T> b) {
  const index_t n = a.rows();
  if (n <= kTriBase) {
    trsm_unblocked(side, uplo, trans, diag, a, b);
    return;
  }
  const index_t h = n / 2;
  BasicConstMatrixView<T> a11 = a.block(0, 0, h, h);
  BasicConstMatrixView<T> a12 = a.block(0, h, h, n - h);
  BasicConstMatrixView<T> a21 = a.block(h, 0, n - h, h);
  BasicConstMatrixView<T> a22 = a.block(h, h, n - h, n - h);

  if (side == Side::Left) {
    BasicMatrixView<T> b1 = b.block(0, 0, h, b.cols());
    BasicMatrixView<T> b2 = b.block(h, 0, n - h, b.cols());
    if (uplo == Uplo::Lower && trans == Trans::No) {
      trsm_rec(side, uplo, trans, diag, a11, b1);
      gemm(Trans::No, Trans::No, T(-1), a21, b1, T(1), b2);
      trsm_rec(side, uplo, trans, diag, a22, b2);
    } else if (uplo == Uplo::Lower && trans == Trans::Yes) {
      trsm_rec(side, uplo, trans, diag, a22, b2);
      gemm(Trans::Yes, Trans::No, T(-1), a21, b2, T(1), b1);
      trsm_rec(side, uplo, trans, diag, a11, b1);
    } else if (uplo == Uplo::Upper && trans == Trans::No) {
      trsm_rec(side, uplo, trans, diag, a22, b2);
      gemm(Trans::No, Trans::No, T(-1), a12, b2, T(1), b1);
      trsm_rec(side, uplo, trans, diag, a11, b1);
    } else {
      trsm_rec(side, uplo, trans, diag, a11, b1);
      gemm(Trans::Yes, Trans::No, T(-1), a12, b1, T(1), b2);
      trsm_rec(side, uplo, trans, diag, a22, b2);
    }
  } else {
    BasicMatrixView<T> b1 = b.block(0, 0, b.rows(), h);
    BasicMatrixView<T> b2 = b.block(0, h, b.rows(), n - h);
    if (uplo == Uplo::Upper && trans == Trans::No) {
      trsm_rec(side, uplo, trans, diag, a11, b1);
      gemm(Trans::No, Trans::No, T(-1), b1, a12, T(1), b2);
      trsm_rec(side, uplo, trans, diag, a22, b2);
    } else if (uplo == Uplo::Upper && trans == Trans::Yes) {
      trsm_rec(side, uplo, trans, diag, a22, b2);
      gemm(Trans::No, Trans::Yes, T(-1), b2, a12, T(1), b1);
      trsm_rec(side, uplo, trans, diag, a11, b1);
    } else if (uplo == Uplo::Lower && trans == Trans::No) {
      trsm_rec(side, uplo, trans, diag, a22, b2);
      gemm(Trans::No, Trans::No, T(-1), b2, a21, T(1), b1);
      trsm_rec(side, uplo, trans, diag, a11, b1);
    } else {
      trsm_rec(side, uplo, trans, diag, a11, b1);
      gemm(Trans::No, Trans::Yes, T(-1), b1, a21, T(1), b2);
      trsm_rec(side, uplo, trans, diag, a22, b2);
    }
  }
}

template <typename T>
void trmm_unblocked(Side side, Uplo uplo, Trans trans, Diag diag,
                    BasicConstMatrixView<T> a, BasicMatrixView<T> b) {
  const index_t n = a.rows();
  util::flops::add(static_cast<std::uint64_t>(n) * n *
                   ((side == Side::Left) ? b.cols() : b.rows()));

  if (side == Side::Left) {
    // Row i of the result mixes rows p of B; traversal order is chosen so
    // every row is consumed before being overwritten.
    const bool ascending = (uplo == Uplo::Upper) == (trans == Trans::No);
    for (index_t j = 0; j < b.cols(); ++j) {
      T* bj = b.col(j);
      auto run = [&](index_t i) {
        T s = diag_coeff(a, diag, i) * bj[i];
        if (uplo == Uplo::Upper && trans == Trans::No) {
          for (index_t p = i + 1; p < n; ++p) s += a(i, p) * bj[p];
        } else if (uplo == Uplo::Lower && trans == Trans::No) {
          for (index_t p = 0; p < i; ++p) s += a(i, p) * bj[p];
        } else if (uplo == Uplo::Upper && trans == Trans::Yes) {
          for (index_t p = 0; p < i; ++p) s += a(p, i) * bj[p];
        } else {
          for (index_t p = i + 1; p < n; ++p) s += a(p, i) * bj[p];
        }
        bj[i] = s;
      };
      if (ascending)
        for (index_t i = 0; i < n; ++i) run(i);
      else
        for (index_t i = n - 1; i >= 0; --i) run(i);
    }
  } else {
    // Column j of the result mixes columns p of B.
    const index_t rows = b.rows();
    const bool ascending = (uplo == Uplo::Lower && trans == Trans::No) ||
                           (uplo == Uplo::Upper && trans == Trans::Yes);
    auto run = [&](index_t j) {
      T* bj = b.col(j);
      const T djj = diag_coeff(a, diag, j);
      for (index_t i = 0; i < rows; ++i) bj[i] *= djj;
      auto accumulate = [&](index_t p, T coeff) {
        if (coeff == T(0)) return;
        const T* bp = b.col(p);
#pragma omp simd
        for (index_t i = 0; i < rows; ++i) bj[i] += coeff * bp[i];
      };
      if (uplo == Uplo::Upper && trans == Trans::No)
        for (index_t p = 0; p < j; ++p) accumulate(p, a(p, j));
      else if (uplo == Uplo::Lower && trans == Trans::No)
        for (index_t p = j + 1; p < n; ++p) accumulate(p, a(p, j));
      else if (uplo == Uplo::Upper && trans == Trans::Yes)
        for (index_t p = j + 1; p < n; ++p) accumulate(p, a(j, p));
      else
        for (index_t p = 0; p < j; ++p) accumulate(p, a(j, p));
    };
    if (ascending)
      for (index_t j = 0; j < n; ++j) run(j);
    else
      for (index_t j = n - 1; j >= 0; --j) run(j);
  }
}

template <typename T>
void trmm_rec(Side side, Uplo uplo, Trans trans, Diag diag,
              BasicConstMatrixView<T> a, BasicMatrixView<T> b) {
  const index_t n = a.rows();
  if (n <= kTriBase) {
    trmm_unblocked(side, uplo, trans, diag, a, b);
    return;
  }
  const index_t h = n / 2;
  BasicConstMatrixView<T> a11 = a.block(0, 0, h, h);
  BasicConstMatrixView<T> a12 = a.block(0, h, h, n - h);
  BasicConstMatrixView<T> a21 = a.block(h, 0, n - h, h);
  BasicConstMatrixView<T> a22 = a.block(h, h, n - h, n - h);

  if (side == Side::Left) {
    BasicMatrixView<T> b1 = b.block(0, 0, h, b.cols());
    BasicMatrixView<T> b2 = b.block(h, 0, n - h, b.cols());
    if (uplo == Uplo::Upper && trans == Trans::No) {
      trmm_rec(side, uplo, trans, diag, a11, b1);
      gemm(Trans::No, Trans::No, T(1), a12, b2, T(1), b1);
      trmm_rec(side, uplo, trans, diag, a22, b2);
    } else if (uplo == Uplo::Upper && trans == Trans::Yes) {
      trmm_rec(side, uplo, trans, diag, a22, b2);
      gemm(Trans::Yes, Trans::No, T(1), a12, b1, T(1), b2);
      trmm_rec(side, uplo, trans, diag, a11, b1);
    } else if (uplo == Uplo::Lower && trans == Trans::No) {
      trmm_rec(side, uplo, trans, diag, a22, b2);
      gemm(Trans::No, Trans::No, T(1), a21, b1, T(1), b2);
      trmm_rec(side, uplo, trans, diag, a11, b1);
    } else {
      trmm_rec(side, uplo, trans, diag, a11, b1);
      gemm(Trans::Yes, Trans::No, T(1), a21, b2, T(1), b1);
      trmm_rec(side, uplo, trans, diag, a22, b2);
    }
  } else {
    BasicMatrixView<T> b1 = b.block(0, 0, b.rows(), h);
    BasicMatrixView<T> b2 = b.block(0, h, b.rows(), n - h);
    if (uplo == Uplo::Upper && trans == Trans::No) {
      trmm_rec(side, uplo, trans, diag, a22, b2);
      gemm(Trans::No, Trans::No, T(1), b1, a12, T(1), b2);
      trmm_rec(side, uplo, trans, diag, a11, b1);
    } else if (uplo == Uplo::Upper && trans == Trans::Yes) {
      trmm_rec(side, uplo, trans, diag, a11, b1);
      gemm(Trans::No, Trans::Yes, T(1), b2, a12, T(1), b1);
      trmm_rec(side, uplo, trans, diag, a22, b2);
    } else if (uplo == Uplo::Lower && trans == Trans::No) {
      trmm_rec(side, uplo, trans, diag, a11, b1);
      gemm(Trans::No, Trans::No, T(1), b2, a21, T(1), b1);
      trmm_rec(side, uplo, trans, diag, a22, b2);
    } else {
      trmm_rec(side, uplo, trans, diag, a22, b2);
      gemm(Trans::No, Trans::Yes, T(1), b1, a21, T(1), b2);
      trmm_rec(side, uplo, trans, diag, a11, b1);
    }
  }
}

template <typename T>
void trtri_unblocked(Uplo uplo, Diag diag, BasicMatrixView<T> a) {
  const BasicConstMatrixView<T> ac = a;
  const index_t n = a.rows();
  util::flops::add(static_cast<std::uint64_t>(n) * n * n / 3);
  if (uplo == Uplo::Upper) {
    for (index_t j = 0; j < n; ++j) {
      T ajj;
      if (diag == Diag::NonUnit) {
        FSI_CHECK(a(j, j) != T(0), "trtri: singular triangular matrix");
        a(j, j) = T(1) / a(j, j);
        ajj = -a(j, j);
      } else {
        ajj = T(-1);
      }
      // a(0:j, j) := ajj * T * a(0:j, j), T = already-inverted leading block.
      for (index_t i = 0; i < j; ++i) {
        T s = diag_coeff(ac, diag, i) * a(i, j);
        for (index_t p = i + 1; p < j; ++p) s += a(i, p) * a(p, j);
        a(i, j) = s;
      }
      for (index_t i = 0; i < j; ++i) a(i, j) *= ajj;
    }
  } else {
    for (index_t j = n - 1; j >= 0; --j) {
      T ajj;
      if (diag == Diag::NonUnit) {
        FSI_CHECK(a(j, j) != T(0), "trtri: singular triangular matrix");
        a(j, j) = T(1) / a(j, j);
        ajj = -a(j, j);
      } else {
        ajj = T(-1);
      }
      for (index_t i = n - 1; i > j; --i) {
        T s = diag_coeff(ac, diag, i) * a(i, j);
        for (index_t p = j + 1; p < i; ++p) s += a(i, p) * a(p, j);
        a(i, j) = s;
      }
      for (index_t i = j + 1; i < n; ++i) a(i, j) *= ajj;
    }
  }
}

}  // namespace

template <typename T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha,
          BasicConstMatrixView<T> a, BasicMatrixView<T> b) {
  FSI_CHECK(a.rows() == a.cols(), "trsm: A must be square");
  const index_t expected = (side == Side::Left) ? b.rows() : b.cols();
  FSI_CHECK(a.rows() == expected, "trsm: dimension mismatch between A and B");
  if (b.rows() == 0 || b.cols() == 0) return;
  obs::metrics::add(obs::metrics::Counter::KernelCalls, 1);
  if (alpha != T(1)) scal(alpha, b);
  trsm_rec(side, uplo, trans, diag, a, b);
}

template void trsm<double>(Side, Uplo, Trans, Diag, double, ConstMatrixView,
                           MatrixView);
template void trsm<float>(Side, Uplo, Trans, Diag, float, ConstMatrixViewF,
                          MatrixViewF);

template <typename T>
void trmm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha,
          BasicConstMatrixView<T> a, BasicMatrixView<T> b) {
  FSI_CHECK(a.rows() == a.cols(), "trmm: A must be square");
  const index_t expected = (side == Side::Left) ? b.rows() : b.cols();
  FSI_CHECK(a.rows() == expected, "trmm: dimension mismatch between A and B");
  if (b.rows() == 0 || b.cols() == 0) return;
  obs::metrics::add(obs::metrics::Counter::KernelCalls, 1);
  trmm_rec(side, uplo, trans, diag, a, b);
  if (alpha != T(1)) scal(alpha, b);
}

template void trmm<double>(Side, Uplo, Trans, Diag, double, ConstMatrixView,
                           MatrixView);
template void trmm<float>(Side, Uplo, Trans, Diag, float, ConstMatrixViewF,
                          MatrixViewF);

template <typename T>
void trtri(Uplo uplo, Diag diag, BasicMatrixView<T> a) {
  FSI_CHECK(a.rows() == a.cols(), "trtri: matrix must be square");
  const index_t n = a.rows();
  if (n <= kTriBase) {
    trtri_unblocked(uplo, diag, a);
    return;
  }
  const index_t h = n / 2;
  BasicMatrixView<T> a11 = a.block(0, 0, h, h);
  BasicMatrixView<T> a22 = a.block(h, h, n - h, n - h);
  trtri(uplo, diag, a11);
  trtri(uplo, diag, a22);
  if (uplo == Uplo::Upper) {
    // inv([[A11, A12], [0, A22]]) has top-right block -A11^-1 A12 A22^-1;
    // a11/a22 hold the already-inverted triangles here.
    BasicMatrixView<T> a12 = a.block(0, h, h, n - h);
    trmm(Side::Left, Uplo::Upper, Trans::No, diag, T(1),
         BasicConstMatrixView<T>(a11), a12);
    trmm(Side::Right, Uplo::Upper, Trans::No, diag, T(-1),
         BasicConstMatrixView<T>(a22), a12);
  } else {
    // inv([[A11, 0], [A21, A22]]) has bottom-left block -A22^-1 A21 A11^-1.
    BasicMatrixView<T> a21 = a.block(h, 0, n - h, h);
    trmm(Side::Left, Uplo::Lower, Trans::No, diag, T(1),
         BasicConstMatrixView<T>(a22), a21);
    trmm(Side::Right, Uplo::Lower, Trans::No, diag, T(-1),
         BasicConstMatrixView<T>(a11), a21);
  }
}

template void trtri<double>(Uplo, Diag, MatrixView);
template void trtri<float>(Uplo, Diag, MatrixViewF);

}  // namespace fsi::dense
