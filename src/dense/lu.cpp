#include "fsi/dense/lu.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "fsi/obs/metrics.hpp"
#include "fsi/util/flops.hpp"

namespace fsi::dense {
namespace {

constexpr index_t kLuPanel = 64;

/// Unblocked panel factorisation (DGETF2) with partial pivoting.
/// ipiv entries are relative to the panel's first row.
template <typename T>
void getf2(BasicMatrixView<T> a, index_t* ipiv) {
  const index_t m = a.rows(), n = a.cols();
  const index_t k = std::min(m, n);
  for (index_t j = 0; j < k; ++j) {
    // Pivot: largest magnitude in column j at or below the diagonal.
    index_t p = j;
    T pmax = std::fabs(a(j, j));
    for (index_t i = j + 1; i < m; ++i) {
      const T v = std::fabs(a(i, j));
      if (v > pmax) {
        pmax = v;
        p = i;
      }
    }
    ipiv[j] = p;
    FSI_CHECK(pmax != T(0), "getrf: matrix is exactly singular");
    if (p != j)
      for (index_t c = 0; c < n; ++c) std::swap(a(j, c), a(p, c));

    const T inv = T(1) / a(j, j);
    T* colj = a.col(j);
    for (index_t i = j + 1; i < m; ++i) colj[i] *= inv;

    // Rank-1 trailing update.
    for (index_t c = j + 1; c < n; ++c) {
      const T ajc = a(j, c);
      if (ajc == T(0)) continue;
      T* colc = a.col(c);
#pragma omp simd
      for (index_t i = j + 1; i < m; ++i) colc[i] -= colj[i] * ajc;
    }
    util::flops::add(static_cast<std::uint64_t>(m - j) * (2 * (n - j) + 1));
  }
}

/// Apply the row interchanges ipiv[first..last) to the columns of \p a.
template <typename T>
void laswp(BasicMatrixView<T> a, const std::vector<index_t>& ipiv,
           index_t first, index_t last, bool forward) {
  auto swap_row = [&](index_t i) {
    const index_t p = ipiv[i];
    if (p == i) return;
    for (index_t c = 0; c < a.cols(); ++c) std::swap(a(i, c), a(p, c));
  };
  if (forward)
    for (index_t i = first; i < last; ++i) swap_row(i);
  else
    for (index_t i = last - 1; i >= first; --i) swap_row(i);
}

}  // namespace

template <typename T>
void getrf(BasicMatrixView<T> a, std::vector<index_t>& ipiv) {
  const index_t m = a.rows(), n = a.cols();
  const index_t k = std::min(m, n);
  obs::metrics::add(obs::metrics::Counter::KernelCalls, 1);
  ipiv.assign(static_cast<std::size_t>(k), 0);

  for (index_t jb = 0; jb < k; jb += kLuPanel) {
    const index_t nb = std::min(kLuPanel, k - jb);
    // Factor the panel a(jb:m, jb:jb+nb).
    getf2(a.block(jb, jb, m - jb, nb), ipiv.data() + jb);
    for (index_t i = jb; i < jb + nb; ++i) ipiv[i] += jb;

    // Apply the panel's pivots to the columns left and right of it.
    if (jb > 0) laswp(a.block(0, 0, m, jb), ipiv, jb, jb + nb, true);
    if (jb + nb < n) {
      laswp(a.block(0, jb + nb, m, n - jb - nb), ipiv, jb, jb + nb, true);
      // U12 := L11^-1 A12.
      trsm(Side::Left, Uplo::Lower, Trans::No, Diag::Unit, T(1),
           BasicConstMatrixView<T>(a.block(jb, jb, nb, nb)),
           a.block(jb, jb + nb, nb, n - jb - nb));
      // Trailing update A22 -= L21 U12.
      if (jb + nb < m)
        gemm(Trans::No, Trans::No, T(-1),
             BasicConstMatrixView<T>(a.block(jb + nb, jb, m - jb - nb, nb)),
             BasicConstMatrixView<T>(
                 a.block(jb, jb + nb, nb, n - jb - nb)),
             T(1), a.block(jb + nb, jb + nb, m - jb - nb, n - jb - nb));
    }
  }
}

template void getrf<double>(MatrixView, std::vector<index_t>&);
template void getrf<float>(MatrixViewF, std::vector<index_t>&);

template <typename T>
BasicLuFactorization<T>::BasicLuFactorization(BasicMatrix<T> a)
    : factors_(std::move(a)) {
  FSI_CHECK(factors_.rows() == factors_.cols(),
            "LuFactorization: matrix must be square");
  getrf<T>(factors_, ipiv_);
}

template <typename T>
void BasicLuFactorization<T>::solve(Trans trans, BasicMatrixView<T> b) const {
  FSI_CHECK(b.rows() == n(), "LU solve: RHS row count mismatch");
  if (trans == Trans::No) {
    // A = P^T L U  =>  L U X = P B.
    laswp(b, ipiv_, 0, n(), true);
    trsm(Side::Left, Uplo::Lower, Trans::No, Diag::Unit, T(1),
         BasicConstMatrixView<T>(factors_), b);
    trsm(Side::Left, Uplo::Upper, Trans::No, Diag::NonUnit, T(1),
         BasicConstMatrixView<T>(factors_), b);
  } else {
    // A^T = U^T L^T P  =>  X = P^T L^-T U^-T B.
    trsm(Side::Left, Uplo::Upper, Trans::Yes, Diag::NonUnit, T(1),
         BasicConstMatrixView<T>(factors_), b);
    trsm(Side::Left, Uplo::Lower, Trans::Yes, Diag::Unit, T(1),
         BasicConstMatrixView<T>(factors_), b);
    laswp(b, ipiv_, 0, n(), false);
  }
}

template <typename T>
void BasicLuFactorization<T>::solve_right(BasicMatrixView<T> b) const {
  FSI_CHECK(b.cols() == n(), "LU solve_right: RHS column count mismatch");
  // X A = B with A = P^T L U:  W := B U^-1 L^-1 solves W L U = B, then
  // X = W P, i.e. column swaps applied in descending order.
  trsm(Side::Right, Uplo::Upper, Trans::No, Diag::NonUnit, T(1),
       BasicConstMatrixView<T>(factors_), b);
  trsm(Side::Right, Uplo::Lower, Trans::No, Diag::Unit, T(1),
       BasicConstMatrixView<T>(factors_), b);
  for (index_t j = n() - 1; j >= 0; --j) {
    const index_t p = ipiv_[j];
    if (p == j) continue;
    for (index_t i = 0; i < b.rows(); ++i) std::swap(b(i, j), b(i, p));
  }
}

template <typename T>
BasicMatrix<T> BasicLuFactorization<T>::inverse() const {
  // DGETRI: A^-1 = U^-1 L^-1 P.
  BasicMatrix<T> inv = factors_;
  BasicMatrixView<T> v = inv;
  trtri(Uplo::Upper, Diag::NonUnit, v);
  // U^-1 must be an explicit upper-triangular matrix for the right-solve:
  // clear the strictly-lower part, which still holds the L factor.
  for (index_t j = 0; j < n(); ++j)
    for (index_t i = j + 1; i < n(); ++i) inv(i, j) = T(0);
  // Solve X L = U^-1 against the unit-lower factor kept in factors_.
  trsm(Side::Right, Uplo::Lower, Trans::No, Diag::Unit, T(1),
       BasicConstMatrixView<T>(factors_), v);
  // Column interchanges, descending.
  for (index_t j = n() - 1; j >= 0; --j) {
    const index_t p = ipiv_[j];
    if (p == j) continue;
    for (index_t i = 0; i < n(); ++i) std::swap(inv(i, j), inv(i, p));
  }
  return inv;
}

template <typename T>
double BasicLuFactorization<T>::log_abs_det() const {
  double s = 0.0;
  for (index_t i = 0; i < n(); ++i)
    s += std::log(std::fabs(static_cast<double>(factors_(i, i))));
  return s;
}

template <typename T>
int BasicLuFactorization<T>::sign_det() const {
  int sign = 1;
  for (index_t i = 0; i < n(); ++i) {
    if (ipiv_[i] != i) sign = -sign;
    if (factors_(i, i) < T(0)) sign = -sign;
  }
  return sign;
}

template class BasicLuFactorization<double>;
template class BasicLuFactorization<float>;

Matrix inverse(ConstMatrixView a) { return LuFactorization::of(a).inverse(); }
MatrixF inverse(ConstMatrixViewF a) {
  return LuFactorizationF::of(a).inverse();
}

double cond1_estimate(const LuFactorization& lu, double a_one_norm) {
  // Hager's 1-norm estimator for ||A^-1||_1: power iteration on the dual.
  const index_t n = lu.n();
  if (n == 0) return 0.0;
  Matrix x(n, 1);
  for (index_t i = 0; i < n; ++i) x(i, 0) = 1.0 / static_cast<double>(n);
  double est = 0.0;
  for (int iter = 0; iter < 5; ++iter) {
    Matrix y = x;
    lu.solve(Trans::No, y);
    double ynorm = 0.0;
    for (index_t i = 0; i < n; ++i) ynorm += std::fabs(y(i, 0));
    est = ynorm;
    // z = A^-T sign(y)
    Matrix z(n, 1);
    for (index_t i = 0; i < n; ++i) z(i, 0) = (y(i, 0) >= 0.0) ? 1.0 : -1.0;
    lu.solve(Trans::Yes, z);
    // Next x: e_j at the max |z_j|; stop if no growth.
    index_t jmax = 0;
    double zmax = std::fabs(z(0, 0));
    for (index_t i = 1; i < n; ++i) {
      if (std::fabs(z(i, 0)) > zmax) {
        zmax = std::fabs(z(i, 0));
        jmax = i;
      }
    }
    double zx = 0.0;
    for (index_t i = 0; i < n; ++i) zx += z(i, 0) * x(i, 0);
    if (zmax <= zx) break;
    x.fill(0.0);
    x(jmax, 0) = 1.0;
  }
  return est * a_one_norm;
}

}  // namespace fsi::dense
