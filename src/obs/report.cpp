#include "fsi/obs/report.hpp"

#include <cstdio>

namespace fsi::obs {

void Report::add_stage(std::string name, double measured_s,
                       double measured_flops, double predicted_flops) {
  rows_.push_back(
      {std::move(name), measured_s, measured_flops, predicted_flops});
}

StageRow Report::total() const {
  StageRow t;
  t.name = "total";
  for (const StageRow& r : rows_) {
    t.measured_s += r.measured_s;
    t.measured_flops += r.measured_flops;
    t.predicted_flops += r.predicted_flops;
  }
  return t;
}

namespace {

void format_row(std::string& out, const StageRow& r, double ref) {
  char line[160];
  std::snprintf(line, sizeof line, "%-8s %10.4f %9.1f %11.4f %10.0f%%\n",
                r.name.c_str(), r.measured_s, r.gflops(), r.predicted_s(ref),
                r.pct_of_predicted(ref));
  out += line;
}

}  // namespace

std::string Report::str() const {
  char head[160];
  std::snprintf(head, sizeof head,
                "stage      wall s   GFLOP/s     model s   %% of model   "
                "(model priced at %.1f GFLOP/s)\n",
                ref_gflops_);
  std::string out = head;
  for (const StageRow& r : rows_) format_row(out, r, ref_gflops_);
  format_row(out, total(), ref_gflops_);
  return out;
}

std::string Report::json() const {
  char buf[256];
  std::string out = "{\"ref_gflops\":";
  std::snprintf(buf, sizeof buf, "%.6g", ref_gflops_);
  out += buf;
  out += ",\"stages\":[";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const StageRow& r = rows_[i];
    if (i > 0) out += ',';
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"%s\",\"measured_s\":%.6g,\"measured_flops\":"
                  "%.6g,\"gflops\":%.6g,\"predicted_flops\":%.6g,"
                  "\"predicted_s\":%.6g,\"pct_of_predicted\":%.6g}",
                  r.name.c_str(), r.measured_s, r.measured_flops, r.gflops(),
                  r.predicted_flops, r.predicted_s(ref_gflops_),
                  r.pct_of_predicted(ref_gflops_));
    out += buf;
  }
  out += "]}";
  return out;
}

void Report::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace fsi::obs
