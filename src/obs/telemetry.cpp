#include "fsi/obs/telemetry.hpp"

#include <omp.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "fsi/obs/build.hpp"
#include "fsi/obs/health.hpp"
#include "fsi/obs/metrics.hpp"
#include "fsi/obs/trace.hpp"

namespace fsi::obs {
namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void json_escape(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  json_escape(out, s);
  out += '"';
  return out;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

BenchTelemetry::BenchTelemetry(std::string bench_name)
    : name_(std::move(bench_name)), start_s_(steady_seconds()) {}

void BenchTelemetry::add_info(const std::string& key,
                              const std::string& value) {
  info_.emplace_back(key, quoted(value));
}

void BenchTelemetry::add_info(const std::string& key, double value) {
  info_.emplace_back(key, num(value));
}

void BenchTelemetry::add_metric(const std::string& key, double value,
                                std::string unit, bool gate,
                                bool higher_is_better) {
  metrics_.push_back({key, value, std::move(unit), gate, higher_is_better});
}

std::string BenchTelemetry::json() const {
  std::string out = "{\"schema\":\"";
  out += kBenchSchema;
  out += "\",\"bench\":";
  out += quoted(name_);
  out += ",\"wall_s\":";
  out += num(steady_seconds() - start_s_);

  // Build/config fingerprint: enough to tell a true perf regression from a
  // compiler, flag, thread-count or FP-environment change — and to match an
  // artifact back to the exact commit that produced it.
  const BuildInfo& bi = build_info();
  out += ",\"build\":{\"version\":" + quoted(bi.version);
  out += ",\"git_sha\":" + quoted(bi.git_sha);
  out += ",\"build_type\":" + quoted(bi.build_type);
  out += ",\"cxx_flags\":" + quoted(bi.cxx_flags);
  out += ",\"compiler\":" + quoted(bi.compiler);
#if defined(NDEBUG)
  out += ",\"ndebug\":true";
#else
  out += ",\"ndebug\":false";
#endif
  out += ",\"omp_max_threads\":" + num(omp_get_max_threads());
  out += ",\"flush_to_zero\":" +
         num(metrics::get(metrics::Gauge::FlushToZero));
  out += ",\"pointer_bits\":" + num(8.0 * sizeof(void*));
  out += '}';

  out += ",\"config\":{";
  for (std::size_t i = 0; i < info_.size(); ++i) {
    if (i > 0) out += ',';
    out += quoted(info_[i].first) + ':' + info_[i].second;
  }
  out += '}';

  out += ",\"metrics\":[";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    const BenchMetric& m = metrics_[i];
    if (i > 0) out += ',';
    out += "{\"key\":" + quoted(m.key) + ",\"value\":" + num(m.value) +
           ",\"unit\":" + quoted(m.unit) +
           ",\"gate\":" + (m.gate ? "true" : "false") +
           ",\"higher_is_better\":" + (m.higher_is_better ? "true" : "false") +
           '}';
  }
  out += ']';

  out += ",\"counters\":{";
  {
    const auto counts = metrics::snapshot();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out += ',';
      out += quoted(counts[i].first) + ':' +
             std::to_string(counts[i].second);
    }
  }
  out += '}';

  out += ",\"accums\":{";
  for (int a = 0; a < static_cast<int>(metrics::Accum::kCount); ++a) {
    const auto acc = static_cast<metrics::Accum>(a);
    if (a > 0) out += ',';
    out += quoted(metrics::name(acc)) + ':' + num(metrics::seconds(acc));
  }
  out += '}';

  // Histograms: only non-empty ones, as summary stats (the decade buckets
  // stay internal — count/sum/min/max/last are what the gates and the serve
  // latency report consume).
  out += ",\"hists\":{";
  {
    bool first = true;
    for (int h = 0; h < static_cast<int>(metrics::Hist::kCount); ++h) {
      const auto hist_id = static_cast<metrics::Hist>(h);
      const metrics::HistSnapshot snap = metrics::hist(hist_id);
      if (snap.count == 0) continue;
      if (!first) out += ',';
      first = false;
      out += quoted(metrics::name(hist_id)) + ":{";
      out += "\"count\":" + std::to_string(snap.count);
      out += ",\"sum\":" + num(snap.sum);
      out += ",\"mean\":" + num(snap.mean());
      out += ",\"min\":" + num(snap.min);
      out += ",\"max\":" + num(snap.max);
      out += ",\"last\":" + num(snap.last);
      out += '}';
    }
  }
  out += '}';

  out += ",\"health\":";
  out += health::report().json();

  out += ",\"spans\":[";
  {
    const auto spans = summary();
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const SpanStats& s = spans[i];
      if (i > 0) out += ',';
      out += "{\"name\":" + quoted(s.name) +
             ",\"count\":" + std::to_string(s.count) +
             ",\"total_s\":" + num(s.total_s) + ",\"min_s\":" + num(s.min_s) +
             ",\"p50_s\":" + num(s.p50_s) + ",\"max_s\":" + num(s.max_s) + '}';
    }
  }
  out += "]}";
  return out;
}

std::string artifact_dir() {
  const char* dir = std::getenv("FSI_BENCH_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0') ? dir : "bench/artifacts";
  while (path.size() > 1 && path.back() == '/') path.pop_back();
  std::error_code ec;
  std::filesystem::create_directories(path, ec);  // best effort; open reports
  return path;
}

std::string BenchTelemetry::write() const {
  const std::string path = artifact_dir() + "/BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return "";
  const std::string doc = json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  const bool closed = std::fclose(f) == 0;
  return (ok && closed) ? path : "";
}

}  // namespace fsi::obs
