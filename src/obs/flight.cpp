#include "fsi/obs/flight.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "fsi/obs/build.hpp"
#include "fsi/obs/env.hpp"
#include "fsi/obs/metrics.hpp"
#include "fsi/obs/trace.hpp"

namespace fsi::obs::flight {
namespace {

std::atomic<bool> g_enabled{env_flag("FSI_FLIGHT", true)};

/// One ring record.  Every field is a relaxed atomic so the crash handler
/// (and snapshot()) read torn-free values while the owner overwrites — the
/// recorder stays ThreadSanitizer-clean with readers racing a wrap.
struct Rec {
  std::atomic<const char*> name{nullptr};
  std::atomic<std::int64_t> t0_ns{0};
  std::atomic<std::int64_t> dur_ns{0};
  std::atomic<std::uint64_t> trace_id{0};
  std::atomic<std::int32_t> omp_tid{0};
};

/// Per-thread wrapping ring.  head counts pushes forever; the live records
/// are the last min(head, kRingCapacity).  Owner-write-only.
struct Ring {
  int tid = -1;
  std::atomic<std::uint64_t> head{0};
  Rec recs[kRingCapacity];
};

static_assert((kRingCapacity & (kRingCapacity - 1)) == 0,
              "ring indexing relies on a power-of-two capacity");

// Fixed lock-free registry: the crash handler iterates this without a
// mutex.  Rings are never freed (threads' last moments must stay readable
// after the thread exits).
std::atomic<Ring*> g_rings[kMaxThreads] = {};
std::atomic<int> g_ring_count{0};

Ring& local_ring() {
  thread_local Ring* ring = [] {
    auto* r = new Ring();
    const int i = g_ring_count.fetch_add(1, std::memory_order_acq_rel);
    if (i < kMaxThreads) {
      r->tid = i;
      g_rings[i].store(r, std::memory_order_release);
    }
    return r;
  }();
  return *ring;
}

int registered_rings() noexcept {
  const int n = g_ring_count.load(std::memory_order_acquire);
  return n < kMaxThreads ? n : kMaxThreads;
}

// ---------------------------------------------------------------------------
// Async-signal-safe dump writer: a stack buffer flushed with write(2).
// No allocation, no locks, no stdio, no floating point.

struct DumpWriter {
  int fd;
  char buf[4096];
  std::size_t n = 0;

  explicit DumpWriter(int fd) : fd(fd) {}

  void flush() noexcept {
    std::size_t off = 0;
    while (off < n) {
      const ssize_t w = ::write(fd, buf + off, n - off);
      if (w <= 0) break;  // best effort: a failing disk mid-crash is final
      off += static_cast<std::size_t>(w);
    }
    n = 0;
  }

  void put(char c) noexcept {
    if (n == sizeof buf) flush();
    buf[n++] = c;
  }

  void str(const char* s) noexcept {
    for (; *s != '\0'; ++s) put(*s);
  }

  /// JSON string payload: escapes quote/backslash, maps control chars to
  /// '?' (the \uXXXX spelling would need snprintf, which is off-limits).
  void jstr(const char* s) noexcept {
    put('"');
    for (; *s != '\0'; ++s) {
      const char c = *s;
      if (c == '"' || c == '\\') {
        put('\\');
        put(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        put('?');
      } else {
        put(c);
      }
    }
    put('"');
  }

  void u64(std::uint64_t v) noexcept {
    char digits[24];
    int k = 0;
    do {
      digits[k++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (k > 0) put(digits[--k]);
  }

  void i64(std::int64_t v) noexcept {
    if (v < 0) {
      put('-');
      // Negate in unsigned space so INT64_MIN does not overflow.
      u64(~static_cast<std::uint64_t>(v) + 1);
    } else {
      u64(static_cast<std::uint64_t>(v));
    }
  }
};

void dump_body(DumpWriter& w, const char* reason) noexcept {
  w.str("{\"fsi_crash_dump\":1,\"signal\":");
  w.jstr(reason);
  w.str(",\"pid\":");
  w.i64(static_cast<std::int64_t>(::getpid()));
  w.str(",\"uptime_ns\":");
  w.i64(obs::now_ns());

  const BuildInfo& b = build_info();
  w.str(",\"build\":{\"version\":");
  w.jstr(b.version);
  w.str(",\"git_sha\":");
  w.jstr(b.git_sha);
  w.str(",\"compiler\":");
  w.jstr(b.compiler);
  w.str(",\"build_type\":");
  w.jstr(b.build_type);
  w.str(",\"cxx_flags\":");
  w.jstr(b.cxx_flags);
  w.str("}");

  w.str(",\"counters\":{");
  std::uint64_t totals[static_cast<int>(metrics::Counter::kCount)];
  const int nc = metrics::totals_signal_safe(
      totals, static_cast<int>(metrics::Counter::kCount));
  for (int c = 0; c < nc; ++c) {
    if (c != 0) w.put(',');
    w.jstr(metrics::name(static_cast<metrics::Counter>(c)));
    w.put(':');
    w.u64(totals[c]);
  }
  w.str("}");

  w.str(",\"rings\":[");
  bool first_ring = true;
  const int rings = registered_rings();
  for (int i = 0; i < rings; ++i) {
    const Ring* r = g_rings[i].load(std::memory_order_acquire);
    if (r == nullptr) continue;
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    const std::uint64_t live =
        head < kRingCapacity ? head : static_cast<std::uint64_t>(kRingCapacity);
    if (!first_ring) w.put(',');
    first_ring = false;
    w.str("{\"tid\":");
    w.i64(r->tid);
    w.str(",\"pushed\":");
    w.u64(head);
    w.str(",\"records\":[");
    bool first_rec = true;
    for (std::uint64_t k = head - live; k != head; ++k) {
      const Rec& rec = r->recs[k & (kRingCapacity - 1)];
      const char* name = rec.name.load(std::memory_order_relaxed);
      if (name == nullptr) continue;
      if (!first_rec) w.put(',');
      first_rec = false;
      w.str("{\"name\":");
      w.jstr(name);
      w.str(",\"t0_ns\":");
      w.i64(rec.t0_ns.load(std::memory_order_relaxed));
      w.str(",\"dur_ns\":");
      w.i64(rec.dur_ns.load(std::memory_order_relaxed));
      w.str(",\"trace_id\":");
      w.u64(rec.trace_id.load(std::memory_order_relaxed));
      w.str(",\"omp_tid\":");
      w.i64(rec.omp_tid.load(std::memory_order_relaxed));
      w.str("}");
    }
    w.str("]}");
  }
  w.str("]}\n");
  w.flush();
}

// ---------------------------------------------------------------------------
// Crash handlers.

/// Dump path, resolved once at install time so the handler never touches
/// the environment.
char g_dump_path[1024] = "";
std::atomic<bool> g_installed{false};
std::atomic_flag g_in_handler = ATOMIC_FLAG_INIT;

const char* signal_name(int sig) noexcept {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
  }
  return "SIGNAL";
}

void crash_handler(int sig) noexcept {
  // One dump per process: a second faulting thread (or a fault inside the
  // dump itself) skips straight to the re-raise.
  if (!g_in_handler.test_and_set()) {
    if (g_dump_path[0] != '\0') write_dump(signal_name(sig), g_dump_path);
  }
  // Restore the default disposition and re-raise so the exit status and
  // any core dump are exactly what they would have been without us.
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

void record(const char* name, std::int64_t t0_ns, std::int64_t dur_ns,
            std::uint64_t trace_id, std::int32_t omp_tid) noexcept {
  if (!enabled()) return;
  Ring& r = local_ring();
  const std::uint64_t h = r.head.load(std::memory_order_relaxed);
  Rec& rec = r.recs[h & (kRingCapacity - 1)];
  rec.name.store(name, std::memory_order_relaxed);
  rec.t0_ns.store(t0_ns, std::memory_order_relaxed);
  rec.dur_ns.store(dur_ns, std::memory_order_relaxed);
  rec.trace_id.store(trace_id, std::memory_order_relaxed);
  rec.omp_tid.store(omp_tid, std::memory_order_relaxed);
  r.head.store(h + 1, std::memory_order_release);
}

std::uint64_t recorded() noexcept {
  std::uint64_t total = 0;
  const int rings = registered_rings();
  for (int i = 0; i < rings; ++i)
    if (const Ring* r = g_rings[i].load(std::memory_order_acquire))
      total += r->head.load(std::memory_order_relaxed);
  return total;
}

std::vector<std::pair<int, Record>> snapshot() {
  std::vector<std::pair<int, Record>> out;
  const int rings = registered_rings();
  for (int i = 0; i < rings; ++i) {
    const Ring* r = g_rings[i].load(std::memory_order_acquire);
    if (r == nullptr) continue;
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    const std::uint64_t live =
        head < kRingCapacity ? head : static_cast<std::uint64_t>(kRingCapacity);
    for (std::uint64_t k = head - live; k != head; ++k) {
      const Rec& rec = r->recs[k & (kRingCapacity - 1)];
      Record copy;
      copy.name = rec.name.load(std::memory_order_relaxed);
      if (copy.name == nullptr) continue;
      copy.t0_ns = rec.t0_ns.load(std::memory_order_relaxed);
      copy.dur_ns = rec.dur_ns.load(std::memory_order_relaxed);
      copy.trace_id = rec.trace_id.load(std::memory_order_relaxed);
      copy.omp_tid = rec.omp_tid.load(std::memory_order_relaxed);
      out.emplace_back(r->tid, copy);
    }
  }
  return out;
}

void clear() noexcept {
  const int rings = registered_rings();
  for (int i = 0; i < rings; ++i) {
    Ring* r = g_rings[i].load(std::memory_order_acquire);
    if (r == nullptr) continue;
    for (Rec& rec : r->recs) rec.name.store(nullptr, std::memory_order_relaxed);
    r->head.store(0, std::memory_order_relaxed);
  }
}

void install_crash_handlers() {
  bool expected = false;
  if (!g_installed.compare_exchange_strong(expected, true)) return;

  const char* dir = std::getenv("FSI_CRASH_DIR");
  if (dir == nullptr || dir[0] == '\0') dir = ".";
  std::snprintf(g_dump_path, sizeof g_dump_path, "%s/crash-%ld.fsi.json", dir,
                static_cast<long>(::getpid()));

  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = crash_handler;
  sigemptyset(&sa.sa_mask);
  // No SA_RESETHAND: the handler restores SIG_DFL itself so the one-dump
  // guard, not the kernel, decides who writes.
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE})
    ::sigaction(sig, &sa, nullptr);
}

const char* crash_dump_path() noexcept { return g_dump_path; }

bool write_dump(const char* reason, const char* path) noexcept {
  const int fd =
      ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);  // NOLINT(vararg)
  if (fd < 0) return false;
  DumpWriter w(fd);
  dump_body(w, reason);
  ::close(fd);
  return true;
}

}  // namespace fsi::obs::flight
