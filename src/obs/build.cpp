#include "fsi/obs/build.hpp"

#include <cstdio>

#include "fsi_build_info.hpp"  // CMake-generated (src/obs/build_info.hpp.in)

namespace fsi::obs {
namespace {

void json_escape(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

void append_quoted(std::string& out, const char* key, const char* value,
                   bool first = false) {
  if (!first) out += ',';
  out += '"';
  out += key;
  out += "\":\"";
  json_escape(out, value);
  out += '"';
}

}  // namespace

const BuildInfo& build_info() noexcept {
  static constexpr BuildInfo info = {
      FSI_BUILD_VERSION,
      FSI_BUILD_GIT_SHA,
#if defined(__VERSION__)
      __VERSION__,
#else
      "unknown",
#endif
      FSI_BUILD_TYPE,
      FSI_BUILD_CXX_FLAGS,
  };
  return info;
}

std::string build_info_json() {
  const BuildInfo& b = build_info();
  std::string out = "{";
  append_quoted(out, "version", b.version, /*first=*/true);
  append_quoted(out, "git_sha", b.git_sha);
  append_quoted(out, "compiler", b.compiler);
  append_quoted(out, "build_type", b.build_type);
  append_quoted(out, "cxx_flags", b.cxx_flags);
  out += '}';
  return out;
}

std::string version_line(const char* tool) {
  const BuildInfo& b = build_info();
  std::string out = tool;
  out += ' ';
  out += b.version;
  out += " (";
  out += b.git_sha;
  out += ") ";
  out += b.compiler;
  out += " [";
  out += b.build_type;
  out += "]\n";
  return out;
}

}  // namespace fsi::obs
