#include "fsi/obs/health.hpp"

#include <atomic>
#include <cfenv>
#include <cmath>
#include <cstdio>
#include <mutex>

#include "fsi/obs/env.hpp"
#include "fsi/obs/log.hpp"

namespace fsi::obs::health {
namespace {

std::atomic<bool> g_enabled{env_flag("FSI_HEALTH", true)};

std::atomic<int> g_sample_every{[] {
  const long v = env_long("FSI_HEALTH_SAMPLE", 4);
  return static_cast<int>(v < 0 ? 0 : v);
}()};

/// Shared residual-sampling tick; fetch_add is fine here — this is hit once
/// per FSI call, not per kernel.
std::atomic<std::uint64_t> g_sample_tick{0};

std::atomic<std::uint64_t> g_nonfinite_count{0};

std::mutex& state_mutex() {
  static std::mutex m;
  return m;
}

Thresholds& thresholds_locked() {
  static Thresholds t = [] {
    Thresholds init;
    init.drift_warn = env_double("FSI_HEALTH_DRIFT_WARN", init.drift_warn);
    init.drift_fail = env_double("FSI_HEALTH_DRIFT_FAIL", init.drift_fail);
    init.cond_warn = env_double("FSI_HEALTH_COND_WARN", init.cond_warn);
    init.cond_fail = env_double("FSI_HEALTH_COND_FAIL", init.cond_fail);
    init.resid_warn = env_double("FSI_HEALTH_RESID_WARN", init.resid_warn);
    init.resid_fail = env_double("FSI_HEALTH_RESID_FAIL", init.resid_fail);
    return init;
  }();
  return t;
}

/// Bounded drift ring and the last nonfinite location, both cold-path.
struct ColdState {
  double drift_ring[kDriftHistoryCapacity] = {};
  std::size_t drift_total = 0;  ///< samples ever pushed (head = total % cap)
  std::string nonfinite_where;
};

ColdState& cold_locked() {
  static ColdState s;
  return s;
}

Status classify(double worst, std::uint64_t count, double warn,
                double fail) noexcept {
  if (count == 0) return Status::Ok;
  if (!std::isfinite(worst) || worst >= fail) return Status::Fail;
  if (worst >= warn) return Status::Warn;
  return Status::Ok;
}

/// Per-check streaming status, so WARN/FAIL *transitions* (and recoveries)
/// reach the operational log the moment they happen instead of waiting for
/// someone to ask for a report().  Indexed: 0 drift, 1 cond1, 2 residual.
std::atomic<int> g_stream_status[3] = {};

void note_transition(int idx, const char* check, double value, double warn,
                     double fail) noexcept {
  const Status now = classify(value, 1, warn, fail);
  const int prev = g_stream_status[idx].exchange(static_cast<int>(now),
                                                 std::memory_order_relaxed);
  if (prev == static_cast<int>(now)) return;
  if (now == Status::Fail) {
    FSI_LOG_ERROR("health.fail", {"check", check}, {"value", value},
                  {"threshold", fail});
  } else if (now == Status::Warn) {
    FSI_LOG_WARN("health.warn", {"check", check}, {"value", value},
                 {"threshold", warn});
  } else {
    FSI_LOG_INFO("health.recovered", {"check", check}, {"value", value});
  }
}

CheckRow hist_row(metrics::Hist h, double warn, double fail) {
  const metrics::HistSnapshot s = metrics::hist(h);
  CheckRow row;
  row.name = metrics::name(h);
  row.count = s.count;
  row.last = s.last;
  row.worst = s.max;
  row.warn = warn;
  row.fail = fail;
  row.status = classify(s.max, s.count, warn, fail);
  return row;
}

void json_escape(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

const char* status_name(Status s) noexcept {
  switch (s) {
    case Status::Ok: return "OK";
    case Status::Warn: return "WARN";
    case Status::Fail: return "FAIL";
  }
  return "?";
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

int sample_every() noexcept {
  return g_sample_every.load(std::memory_order_relaxed);
}

void set_sample_every(int every) noexcept {
  g_sample_every.store(every < 0 ? 0 : every, std::memory_order_relaxed);
}

Thresholds thresholds() noexcept {
  std::lock_guard<std::mutex> lock(state_mutex());
  return thresholds_locked();
}

void set_thresholds(const Thresholds& t) noexcept {
  std::lock_guard<std::mutex> lock(state_mutex());
  thresholds_locked() = t;
}

void record_drift(double drift) noexcept {
  if (!enabled()) return;
  metrics::record(metrics::Hist::WrapDrift, drift);
  const Thresholds t = thresholds();  // before state_mutex: shares the lock
  note_transition(0, "wrap_drift", drift, t.drift_warn, t.drift_fail);
  std::lock_guard<std::mutex> lock(state_mutex());
  ColdState& s = cold_locked();
  s.drift_ring[s.drift_total % kDriftHistoryCapacity] = drift;
  ++s.drift_total;
}

void record_cond1(double cond) noexcept {
  if (!enabled()) return;
  metrics::record(metrics::Hist::Cond1Reduced, cond);
  const Thresholds t = thresholds();
  note_transition(1, "cond1_reduced", cond, t.cond_warn, t.cond_fail);
}

void record_residual(double resid) noexcept {
  if (!enabled()) return;
  metrics::record(metrics::Hist::SelResidual, resid);
  const Thresholds t = thresholds();
  note_transition(2, "sel_residual", resid, t.resid_warn, t.resid_fail);
}

void record_nonfinite(const char* where) noexcept {
  if (!enabled()) return;
  g_nonfinite_count.fetch_add(1, std::memory_order_relaxed);
  FSI_LOG_ERROR("health.nonfinite", {"where", where != nullptr ? where : "?"});
  std::lock_guard<std::mutex> lock(state_mutex());
  cold_locked().nonfinite_where = where != nullptr ? where : "?";
}

bool should_sample_residual() noexcept {
  if (!enabled()) return false;
  const int every = sample_every();
  if (every <= 0) return false;
  return g_sample_tick.fetch_add(1, std::memory_order_relaxed) %
             static_cast<std::uint64_t>(every) ==
         0;
}

std::vector<double> drift_history() {
  std::lock_guard<std::mutex> lock(state_mutex());
  const ColdState& s = cold_locked();
  const std::size_t n = s.drift_total < kDriftHistoryCapacity
                            ? s.drift_total
                            : kDriftHistoryCapacity;
  std::vector<double> out;
  out.reserve(n);
  const std::size_t start = s.drift_total - n;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(s.drift_ring[(start + i) % kDriftHistoryCapacity]);
  return out;
}

HealthReport report() {
  const Thresholds t = thresholds();
  HealthReport rep;
  rep.rows.push_back(
      hist_row(metrics::Hist::WrapDrift, t.drift_warn, t.drift_fail));
  rep.rows.push_back(
      hist_row(metrics::Hist::Cond1Reduced, t.cond_warn, t.cond_fail));
  rep.rows.push_back(
      hist_row(metrics::Hist::SelResidual, t.resid_warn, t.resid_fail));

  // NaN/Inf in a result matrix: the numbers are gone, unconditional FAIL.
  {
    CheckRow row;
    row.name = "nonfinite";
    row.count = g_nonfinite_count.load(std::memory_order_relaxed);
    row.last = row.worst = static_cast<double>(row.count);
    row.status = row.count > 0 ? Status::Fail : Status::Ok;
    if (row.count > 0) {
      std::lock_guard<std::mutex> lock(state_mutex());
      row.note = cold_locked().nonfinite_where;
    }
    rep.rows.push_back(std::move(row));
  }

  // Accumulated IEEE exception flags.  invalid/divbyzero mean a meaningless
  // operation happened somewhere (possibly masked later) -> WARN; overflow/
  // underflow are routine in long B-chain products and deliberately explored
  // by the stabilisation ablations, so they are reported but stay OK.
  {
    CheckRow row;
    row.name = "fp_flags";
    const int raised = std::fetestexcept(FE_INVALID | FE_DIVBYZERO |
                                         FE_OVERFLOW | FE_UNDERFLOW);
    auto flag = [&](int f, const char* label) {
      if ((raised & f) == 0) return;
      ++row.count;
      if (!row.note.empty()) row.note += ' ';
      row.note += label;
    };
    flag(FE_INVALID, "invalid");
    flag(FE_DIVBYZERO, "divbyzero");
    flag(FE_OVERFLOW, "overflow");
    flag(FE_UNDERFLOW, "underflow");
    row.last = row.worst = static_cast<double>(raised);
    row.status = (raised & (FE_INVALID | FE_DIVBYZERO)) != 0 ? Status::Warn
                                                             : Status::Ok;
    rep.rows.push_back(std::move(row));
  }

  rep.drift_history = drift_history();
  for (const CheckRow& r : rep.rows)
    if (static_cast<int>(r.status) > static_cast<int>(rep.overall))
      rep.overall = r.status;
  return rep;
}

std::string HealthReport::str() const {
  std::string out =
      "check           status  samples       last      worst       warn    "
      "   fail  note\n";
  char line[256];
  for (const CheckRow& r : rows) {
    std::snprintf(line, sizeof line,
                  "%-15s %-6s %8llu %10.3g %10.3g %10.3g %10.3g  %s\n",
                  r.name.c_str(), status_name(r.status),
                  static_cast<unsigned long long>(r.count), r.last, r.worst,
                  r.warn, r.fail, r.note.c_str());
    out += line;
  }
  std::snprintf(line, sizeof line, "overall: %s\n", status_name(overall));
  out += line;
  return out;
}

std::string HealthReport::json() const {
  std::string out = "{\"schema\":\"";
  out += kHealthSchema;
  out += "\",\"overall\":\"";
  out += status_name(overall);
  out += "\",\"checks\":[";
  char buf[256];
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CheckRow& r = rows[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"";
    json_escape(out, r.name);
    out += "\",\"status\":\"";
    out += status_name(r.status);
    std::snprintf(buf, sizeof buf,
                  "\",\"count\":%llu,\"last\":%.6g,\"worst\":%.6g,"
                  "\"warn\":%.6g,\"fail\":%.6g,\"note\":\"",
                  static_cast<unsigned long long>(r.count), r.last, r.worst,
                  r.warn, r.fail);
    out += buf;
    json_escape(out, r.note);
    out += "\"}";
  }
  out += "],\"drift_history\":[";
  for (std::size_t i = 0; i < drift_history.size(); ++i) {
    if (i > 0) out += ',';
    std::snprintf(buf, sizeof buf, "%.6g", drift_history[i]);
    out += buf;
  }
  out += "]}";
  return out;
}

void HealthReport::print() const { std::fputs(str().c_str(), stdout); }

void reset() noexcept {
  metrics::reset(metrics::Hist::WrapDrift);
  metrics::reset(metrics::Hist::Cond1Reduced);
  metrics::reset(metrics::Hist::SelResidual);
  g_nonfinite_count.store(0, std::memory_order_relaxed);
  g_sample_tick.store(0, std::memory_order_relaxed);
  for (auto& s : g_stream_status)
    s.store(static_cast<int>(Status::Ok), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(state_mutex());
    ColdState& s = cold_locked();
    s.drift_total = 0;
    s.nonfinite_where.clear();
  }
  std::feclearexcept(FE_ALL_EXCEPT);
}

}  // namespace fsi::obs::health
