#include "fsi/obs/log.hpp"

#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "fsi/obs/env.hpp"
#include "fsi/obs/trace.hpp"

namespace fsi::obs::log {

std::atomic<int> g_level{static_cast<int>(Level::Info)};

namespace {

std::atomic<int> g_format{static_cast<int>(Format::Logfmt)};
std::atomic<std::uint32_t> g_site_limit{50};
std::atomic<std::uint64_t> g_lines{0};

// Sink state: the mutex serialises format+write so records never interleave;
// g_owned is the FILE* opened by set_file (closed on replacement).
std::mutex g_sink_mu;
std::FILE* g_sink = nullptr;  // nullptr = stderr
std::FILE* g_owned = nullptr;

/// One-time env init, run on the first gate check via the ODR-safe trick of
/// touching this struct from level()/should() callers through g_level's
/// initial value.  We do it eagerly instead: a namespace-scope initialiser
/// ordered before main for the common (static-init-safe) pattern of tools
/// logging from main only.
struct EnvInit {
  EnvInit() {
    if (const char* v = std::getenv("FSI_LOG_LEVEL")) {
      Level lv;
      if (parse_level(v, lv)) g_level.store(static_cast<int>(lv),
                                            std::memory_order_relaxed);
    }
    if (const char* v = std::getenv("FSI_LOG_FORMAT")) {
      if (std::strcmp(v, "json") == 0 || std::strcmp(v, "jsonl") == 0)
        g_format.store(static_cast<int>(Format::Jsonl),
                       std::memory_order_relaxed);
      else if (std::strcmp(v, "logfmt") == 0)
        g_format.store(static_cast<int>(Format::Logfmt),
                       std::memory_order_relaxed);
    }
    if (const char* v = std::getenv("FSI_LOG_FILE")) {
      if (*v != '\0') set_file(v);
    }
  }
};
EnvInit g_env_init;

/// ts=2026-08-09T12:34:56.789Z — wall clock, UTC, millisecond resolution.
void append_timestamp(std::string& out) {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const std::time_t secs = system_clock::to_time_t(now);
  const auto ms =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &secs);
#else
  gmtime_r(&secs, &tm);
#endif
  char buf[40];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  out += buf;
}

/// Escape for a double-quoted string in either format (logfmt quoting is a
/// JSON-compatible subset, so one escaper serves both).
void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

bool needs_quotes(const std::string& v) {
  if (v.empty()) return true;
  for (const char c : v)
    if (c == ' ' || c == '"' || c == '=' || c == '\\' ||
        static_cast<unsigned char>(c) < 0x21)
      return true;
  return false;
}

void append_logfmt_value(std::string& out, const Field& f) {
  if (f.is_string && needs_quotes(f.value)) {
    out += '"';
    append_escaped(out, f.value.c_str());
    out += '"';
  } else if (f.is_string) {
    out += f.value;  // bare token, no quoting needed
  } else {
    out += f.value;
  }
}

void append_json_value(std::string& out, const Field& f) {
  if (f.is_string) {
    out += '"';
    append_escaped(out, f.value.c_str());
    out += '"';
  } else {
    out += f.value;
  }
}

}  // namespace

const char* level_name(Level lv) noexcept {
  switch (lv) {
    case Level::Debug: return "debug";
    case Level::Info: return "info";
    case Level::Warn: return "warn";
    case Level::Error: return "error";
    case Level::Off: return "off";
  }
  return "?";
}

bool parse_level(const char* s, Level& out) noexcept {
  if (s == nullptr) return false;
  char lowered[8] = {};
  std::size_t n = 0;
  for (; s[n] != '\0' && n + 1 < sizeof lowered; ++n)
    lowered[n] =
        static_cast<char>(std::tolower(static_cast<unsigned char>(s[n])));
  if (s[n] != '\0') return false;
  if (std::strcmp(lowered, "debug") == 0) { out = Level::Debug; return true; }
  if (std::strcmp(lowered, "info") == 0) { out = Level::Info; return true; }
  if (std::strcmp(lowered, "warn") == 0 ||
      std::strcmp(lowered, "warning") == 0) { out = Level::Warn; return true; }
  if (std::strcmp(lowered, "error") == 0) { out = Level::Error; return true; }
  if (std::strcmp(lowered, "off") == 0 ||
      std::strcmp(lowered, "none") == 0) { out = Level::Off; return true; }
  return false;
}

Level level() noexcept {
  return static_cast<Level>(g_level.load(std::memory_order_relaxed));
}

void set_level(Level lv) noexcept {
  g_level.store(static_cast<int>(lv), std::memory_order_relaxed);
}

Format format() noexcept {
  return static_cast<Format>(g_format.load(std::memory_order_relaxed));
}

void set_format(Format f) noexcept {
  g_format.store(static_cast<int>(f), std::memory_order_relaxed);
}

bool set_file(const std::string& path) {
  if (path.empty()) {
    set_stream(nullptr);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_owned != nullptr) std::fclose(g_owned);
  g_owned = f;
  g_sink = f;
  return true;
}

void set_stream(std::FILE* stream) noexcept {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_owned != nullptr) {
    std::fclose(g_owned);
    g_owned = nullptr;
  }
  g_sink = stream;
}

Field::Field(const char* k, const char* v)
    : key(k), value(v != nullptr ? v : ""), is_string(true) {}

Field::Field(const char* k, const std::string& v)
    : key(k), value(v), is_string(true) {}

Field::Field(const char* k, long long v) : key(k), is_string(false) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", v);
  value = buf;
}

Field::Field(const char* k, unsigned long long v) : key(k), is_string(false) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", v);
  value = buf;
}

Field::Field(const char* k, double v) : key(k), is_string(false) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  // JSON has no inf/nan literals; quote them so jsonl output stays parseable.
  if (std::strchr(buf, 'n') != nullptr || std::strchr(buf, 'i') != nullptr)
    is_string = true;
  value = buf;
}

Field::Field(const char* k, bool v)
    : key(k), value(v ? "true" : "false"), is_string(false) {}

std::uint32_t site_limit() noexcept {
  return g_site_limit.load(std::memory_order_relaxed);
}

void set_site_limit(std::uint32_t per_second) noexcept {
  g_site_limit.store(per_second > 0 ? per_second : 1,
                     std::memory_order_relaxed);
}

bool admit(Site& site) noexcept {
  const std::int64_t now = obs::now_ns();
  constexpr std::int64_t kWindowNs = 1'000'000'000;
  std::int64_t start = site.window_start_ns.load(std::memory_order_relaxed);
  if (now - start >= kWindowNs) {
    // New window.  One thread wins the CAS and resets the counter; losers
    // fall through and count against the fresh window.
    if (site.window_start_ns.compare_exchange_strong(
            start, now, std::memory_order_relaxed))
      site.emitted_in_window.store(0, std::memory_order_relaxed);
  }
  const std::uint32_t n =
      site.emitted_in_window.fetch_add(1, std::memory_order_relaxed);
  if (n < g_site_limit.load(std::memory_order_relaxed)) return true;
  site.suppressed.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void write(Level lv, const char* event, Site* site,
           std::initializer_list<Field> fields) {
  const Format fmt = format();
  const std::uint64_t trace = obs::active_trace();
  std::uint64_t suppressed = 0;
  if (site != nullptr)
    suppressed = site->suppressed.exchange(0, std::memory_order_relaxed);

  std::string line;
  line.reserve(128);
  if (fmt == Format::Jsonl) {
    line += "{\"ts\":\"";
    append_timestamp(line);
    line += "\",\"level\":\"";
    line += level_name(lv);
    line += "\",\"event\":\"";
    append_escaped(line, event);
    line += '"';
    if (trace != 0) {
      char buf[32];
      std::snprintf(buf, sizeof buf, ",\"trace\":%" PRIu64, trace);
      line += buf;
    }
    for (const Field& f : fields) {
      line += ",\"";
      append_escaped(line, f.key);
      line += "\":";
      append_json_value(line, f);
    }
    if (suppressed != 0) {
      char buf[40];
      std::snprintf(buf, sizeof buf, ",\"suppressed\":%" PRIu64, suppressed);
      line += buf;
    }
    line += "}\n";
  } else {
    line += "ts=";
    append_timestamp(line);
    line += " level=";
    line += level_name(lv);
    line += " event=";
    line += event;
    if (trace != 0) {
      char buf[32];
      std::snprintf(buf, sizeof buf, " trace=%" PRIu64, trace);
      line += buf;
    }
    for (const Field& f : fields) {
      line += ' ';
      line += f.key;
      line += '=';
      append_logfmt_value(line, f);
    }
    if (suppressed != 0) {
      char buf[40];
      std::snprintf(buf, sizeof buf, " suppressed=%" PRIu64, suppressed);
      line += buf;
    }
    line += '\n';
  }

  std::lock_guard<std::mutex> lock(g_sink_mu);
  std::FILE* out = g_sink != nullptr ? g_sink : stderr;
  std::fwrite(line.data(), 1, line.size(), out);
  std::fflush(out);
  g_lines.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t lines_written() noexcept {
  return g_lines.load(std::memory_order_relaxed);
}

}  // namespace fsi::obs::log
