#include "fsi/precision.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include <string>

#include "fsi/util/check.hpp"

namespace fsi {

const char* precision_name(Precision p) noexcept {
  switch (p) {
    case Precision::Fp64: return "fp64";
    case Precision::Mixed: return "mixed";
  }
  return "unknown";
}

bool parse_precision(const std::string& text, Precision& out) noexcept {
  std::string t = text;
  std::transform(t.begin(), t.end(), t.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
  if (t == "fp64" || t == "double" || t == "64") {
    out = Precision::Fp64;
    return true;
  }
  if (t == "mixed" || t == "fp32" || t == "32") {
    out = Precision::Mixed;
    return true;
  }
  return false;
}

bool precision_from_u32(std::uint32_t v, Precision& out) noexcept {
  switch (v) {
    case static_cast<std::uint32_t>(Precision::Fp64):
      out = Precision::Fp64;
      return true;
    case static_cast<std::uint32_t>(Precision::Mixed):
      out = Precision::Mixed;
      return true;
  }
  return false;
}

Precision precision_from_env_value(const char* value) {
  if (value == nullptr || *value == '\0') return Precision::Fp64;
  Precision p = Precision::Fp64;
  FSI_CHECK(parse_precision(value, p),
            std::string("unknown FSI_PRECISION value \"") + value +
                "\" (accepted: fp64, double, 64, mixed, fp32, 32)");
  return p;
}

Precision precision_from_env() {
  // A throwing initializer is retried on the next call (C++ static-init
  // semantics), so only a successful parse populates the cache.
  static const Precision cached =
      precision_from_env_value(std::getenv("FSI_PRECISION"));
  return cached;
}

}  // namespace fsi
