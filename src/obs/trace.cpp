#include "fsi/obs/trace.hpp"

#include <omp.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "fsi/obs/env.hpp"
#include "fsi/obs/flight.hpp"
#include "fsi/obs/telemetry.hpp"

namespace fsi::obs {

namespace detail {
// env_flag honours every falsy spelling (FSI_TRACE=0/false/off/no/""), not
// just "0" — any other set value enables tracing.
std::atomic<bool> g_trace_enabled{env_flag("FSI_TRACE", false)};
}  // namespace detail

namespace {

/// One recorded span.
struct Event {
  const char* name;
  std::int64_t t0_ns;
  std::int64_t dur_ns;
  std::uint64_t trace_id;  ///< correlation id (0 = untagged)
  std::int32_t omp_tid;    ///< omp_get_thread_num() at span close
};

/// The process-wide correlation id (see set_active_trace in the header).
std::atomic<std::uint64_t> g_active_trace{0};

/// Bounded per-thread event buffer.  The owning thread appends; exporters
/// read entries [0, size) after an acquire load of size, so no entry is ever
/// written and read concurrently.  On overflow new events are dropped (and
/// counted) rather than wrapping, which would let the writer race readers.
struct ThreadBuffer {
  static constexpr std::size_t kCapacity = 1 << 16;

  explicit ThreadBuffer(int tid) : tid(tid), events(new Event[kCapacity]) {}

  const int tid;  ///< stable registration-order thread id
  Event* const events;
  std::atomic<std::size_t> size{0};

  void push(const Event& e, std::atomic<std::uint64_t>& dropped) noexcept {
    const std::size_t n = size.load(std::memory_order_relaxed);
    if (n >= kCapacity) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events[n] = e;
    size.store(n + 1, std::memory_order_release);
  }
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::vector<ThreadBuffer*>& registry() {
  static std::vector<ThreadBuffer*> r;
  return r;
}

std::atomic<std::uint64_t>& dropped_counter() {
  static std::atomic<std::uint64_t> d{0};
  return d;
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buf = [] {
    std::lock_guard<std::mutex> lock(registry_mutex());
    auto* b = new ThreadBuffer(static_cast<int>(registry().size()));
    registry().push_back(b);
    return b;
  }();
  return *buf;
}

std::chrono::steady_clock::time_point process_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

// Touch the epoch at static-init time so timestamps are process-relative.
const auto g_epoch_init = process_epoch();

void json_escape(std::string& out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - process_epoch())
      .count();
}

void record_interval(const char* name, std::int64_t t0_ns,
                     std::int64_t t1_ns) noexcept {
  record_interval(name, t0_ns, t1_ns,
                  g_active_trace.load(std::memory_order_relaxed));
}

void record_interval(const char* name, std::int64_t t0_ns, std::int64_t t1_ns,
                     std::uint64_t trace_id) noexcept {
  // The flight recorder sees every span close, trace enabled or not — its
  // ring is what the crash handler dumps (flight.hpp).
  flight::record(name, t0_ns, t1_ns - t0_ns, trace_id, omp_get_thread_num());
  if (!enabled()) return;
  local_buffer().push(
      {name, t0_ns, t1_ns - t0_ns, trace_id, omp_get_thread_num()},
      dropped_counter());
}

void set_active_trace(std::uint64_t trace_id) noexcept {
  g_active_trace.store(trace_id, std::memory_order_relaxed);
}

std::uint64_t active_trace() noexcept {
  return g_active_trace.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

void clear() noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  // Only safe when the owning threads are not concurrently recording (same
  // contract as metrics::reset); sizes drop to zero, storage is reused.
  for (ThreadBuffer* b : registry()) b->size.store(0, std::memory_order_relaxed);
  dropped_counter().store(0, std::memory_order_relaxed);
}

std::uint64_t dropped_events() noexcept {
  return dropped_counter().load(std::memory_order_relaxed);
}

namespace {

/// Copy out a consistent snapshot of every thread's recorded events.
std::vector<std::pair<int, Event>> snapshot_events() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::pair<int, Event>> out;
  for (const ThreadBuffer* b : registry()) {
    const std::size_t n = b->size.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) out.emplace_back(b->tid, b->events[i]);
  }
  return out;
}

}  // namespace

std::vector<SpanStats> summary() {
  std::map<std::string, std::vector<double>> durations;
  for (const auto& [tid, e] : snapshot_events())
    durations[e.name].push_back(static_cast<double>(e.dur_ns) * 1e-9);

  std::vector<SpanStats> out;
  out.reserve(durations.size());
  for (auto& [name, ds] : durations) {
    std::sort(ds.begin(), ds.end());
    SpanStats s;
    s.name = name;
    s.count = ds.size();
    for (double d : ds) s.total_s += d;
    s.min_s = ds.front();
    s.max_s = ds.back();
    s.p50_s = ds[ds.size() / 2];
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const SpanStats& a, const SpanStats& b) {
    return a.total_s > b.total_s;
  });
  return out;
}

double total_seconds(const std::string& name) {
  double total = 0.0;
  for (const auto& [tid, e] : snapshot_events())
    if (name == e.name) total += static_cast<double>(e.dur_ns) * 1e-9;
  return total;
}

std::string summary_str() {
  std::string out =
      "span                          count   total s     min s     p50 s     "
      "max s\n";
  char line[160];
  for (const SpanStats& s : summary()) {
    std::snprintf(line, sizeof line, "%-28s %6llu %9.4f %9.6f %9.6f %9.6f\n",
                  s.name.c_str(), static_cast<unsigned long long>(s.count),
                  s.total_s, s.min_s, s.p50_s, s.max_s);
    out += line;
  }
  if (const std::uint64_t d = dropped_events())
    out += "(" + std::to_string(d) + " events dropped: buffer full)\n";
  return out;
}

std::string chrome_trace_json() {
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const auto& [tid, e] : snapshot_events()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    json_escape(out, e.name);
    // Complete ("X") events; chrome expects microsecond timestamps.  Tagged
    // events carry their correlation id so a stitched client+server serve
    // timeline can be filtered by args.trace_id in the viewer.
    std::snprintf(buf, sizeof buf,
                  "\",\"cat\":\"fsi\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                  "\"pid\":0,\"tid\":%d,\"args\":{\"omp_tid\":%d",
                  static_cast<double>(e.t0_ns) * 1e-3,
                  static_cast<double>(e.dur_ns) * 1e-3, tid, e.omp_tid);
    out += buf;
    if (e.trace_id != 0) {
      std::snprintf(buf, sizeof buf, ",\"trace_id\":%llu",
                    static_cast<unsigned long long>(e.trace_id));
      out += buf;
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_trace_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

std::string write_trace_if_enabled(const std::string& basename) {
  if (!enabled()) return "";
  const char* env = std::getenv("FSI_TRACE_FILE");
  // A bare basename (no '/') lands under artifact_dir(), next to the
  // BENCH_*.json telemetry; an explicit path is honoured verbatim.
  std::string path;
  if (env != nullptr && env[0] != '\0') {
    path = env;
  } else if (basename.find('/') == std::string::npos) {
    path = artifact_dir() + "/" + basename + ".trace.json";
  } else {
    path = basename + ".trace.json";
  }
  if (!write_chrome_trace(path)) {
    std::fprintf(stderr, "[fsi.obs] could not write trace to %s\n",
                 path.c_str());
    return "";
  }
  return path;
}

}  // namespace fsi::obs
