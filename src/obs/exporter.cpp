#include "fsi/obs/exporter.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "fsi/obs/build.hpp"
#include "fsi/obs/metrics.hpp"

namespace fsi::obs {
namespace {

using metrics::Accum;
using metrics::Counter;
using metrics::Gauge;
using metrics::Hist;

/// One-line HELP text per family.  OpenMetrics requires HELP/TYPE before
/// any sample of the family, each family contiguous.
const char* counter_help(Counter c) {
  switch (c) {
    case Counter::Flops: return "Floating point operations (textbook counts)";
    case Counter::BytesMoved: return "Bytes read+written by dense kernels";
    case Counter::KernelCalls: return "Dense kernel invocations";
    case Counter::MpiMessages: return "Mini-MPI point-to-point messages sent";
    case Counter::MpiBytes: return "Mini-MPI point-to-point payload bytes";
    case Counter::PoolHits: return "Workspace-pool acquires from free lists";
    case Counter::PoolMisses: return "Workspace-pool acquires hitting malloc";
    case Counter::SchedTasks: return "Batch-scheduler tasks executed";
    case Counter::SchedSteals: return "Batch-scheduler steal-half operations";
    case Counter::ExecNodes: return "Task-graph nodes executed";
    case Counter::ExecSteals: return "Graph-executor steal-half operations";
    case Counter::ServeRequests: return "Inversion requests admitted";
    case Counter::ServeBatches: return "Coalesced batches dispatched";
    case Counter::ServeRejected: return "Requests shed with RETRY-AFTER";
    case Counter::ServeDeadlineMiss: return "Requests past deadline on dispatch";
    case Counter::ServeCancelled: return "Requests dropped on disconnect";
    case Counter::ServeErrors: return "Requests answered Malformed or Error";
    case Counter::ServeQuotaRejected: return "Requests shed: client over quota";
    case Counter::ServeBypassEnter: return "Adaptive-policy bypass entries";
    case Counter::ServeBypassExit: return "Adaptive-policy bypass exits";
    case Counter::MixedRuns: return "FSI runs attempted in mixed precision";
    case Counter::MixedFallbacks: return "Mixed runs gated back to fp64";
    case Counter::StabQrp: return "Pivoted-QR steps in UDT chains";
    case Counter::StabRecombine: return "UDT recombination inversions";
    case Counter::GreensRecomputes: return "Stabilised Greens recomputes";
    case Counter::kCount: break;
  }
  return "";
}

const char* hist_help(Hist h) {
  switch (h) {
    case Hist::WrapDrift: return "Wrap-vs-recompute drift per stabilisation";
    case Hist::Cond1Reduced: return "1-norm condition estimate, reduced matrix";
    case Hist::SelResidual: return "Sampled selected-inverse residual";
    case Hist::TaskSeconds: return "Per-task wall seconds, batch scheduler";
    case Hist::QueueDepth: return "Own-deque depth at scheduler pop";
    case Hist::ReadyDepth: return "Own-deque depth at graph-executor pop";
    case Hist::NodeSeconds: return "Per-node wall seconds, graph executor";
    case Hist::ServeLatency: return "Serve request latency seconds";
    case Hist::ServeQueueWait: return "Serve admission-queue wait seconds";
    case Hist::ServeBatchOccupancy: return "Dispatched batch size / max_batch";
    case Hist::kCount: break;
  }
  return "";
}

const char* gauge_help(Gauge g) {
  switch (g) {
    case Gauge::WrapInterval: return "DQMC stabilisation interval in effect";
    case Gauge::FlushToZero: return "1 when FTZ/DAZ enabled on main thread";
    case Gauge::HealthSampleEvery: return "Residual spot-check period (0=off)";
    case Gauge::SchedWorkers: return "Workers of most recent batch scheduler";
    case Gauge::ExecPoolWorkers: return "Threads in persistent executor pool";
    case Gauge::ServeQueueDepth: return "Serve admission-queue depth";
    case Gauge::ServePolicyWindowUs: return "Adaptive window of active key, us";
    case Gauge::ServePolicyMaxBatch: return "Adaptive max batch of active key";
    case Gauge::ServePolicyBypass: return "1 when active key is in bypass";
    case Gauge::ServeReplicas: return "Daemon replicas on this endpoint";
    case Gauge::StabScaleSpread: return "log10(dmax/dmin) of last UDT chain";
    case Gauge::GreensLastDrift: return "Most recent wrap-drift sample";
    case Gauge::GreensMaxDrift: return "Worst wrap-drift since reset";
    case Gauge::kCount: break;
  }
  return "";
}

const char* accum_help(Accum a) {
  switch (a) {
    case Accum::GreensRecompute: return "Seconds in stabilised recomputes";
    case Accum::HealthCheck: return "Seconds in health-layer estimators";
    case Accum::kCount: break;
  }
  return "";
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

/// OpenMetrics sample values are floats; %.9g round-trips everything the
/// registry produces while staying compact.  Non-finite values are spelled
/// the OpenMetrics way (+Inf/-Inf/NaN).
void append_double(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "NaN";
    return;
  }
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void append_family_header(std::string& out, const std::string& family,
                          const char* type, const char* help) {
  out += "# HELP " + family + " ";
  out += (help != nullptr && help[0] != '\0') ? help : "(no description)";
  out += '\n';
  out += "# TYPE " + family + " ";
  out += type;
  out += '\n';
}

/// Escape a label value: backslash, quote and newline per the spec.
void append_label_value(std::string& out, const char* s) {
  out += '"';
  for (; *s != '\0'; ++s) {
    switch (*s) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += *s;
    }
  }
  out += '"';
}

/// Upper bound of decade bucket \p i as OpenMetrics float text ("1e-17").
/// Bucket i holds values in [10^(min+i), 10^(min+i+1)); the last bucket is
/// unbounded above, so its cumulative series is the +Inf one.
void append_le(std::string& out, int i) {
  if (i >= metrics::kHistBuckets - 1) {
    out += "+Inf";
    return;
  }
  char buf[24];
  std::snprintf(buf, sizeof buf, "%.0e",
                std::pow(10.0, metrics::kHistMinDecade + i + 1));
  out += buf;
}

}  // namespace

std::string openmetrics() {
  std::string out;
  out.reserve(8192);

  // Build-info pseudo-gauge: the standard "info" pattern — constant 1,
  // provenance in the labels — so dashboards can join metrics to binaries.
  append_family_header(out, "fsi_build", "info", "Build provenance");
  const BuildInfo& b = build_info();
  out += "fsi_build_info{version=";
  append_label_value(out, b.version);
  out += ",git_sha=";
  append_label_value(out, b.git_sha);
  out += ",build_type=";
  append_label_value(out, b.build_type);
  out += "} 1\n";

  for (int c = 0; c < static_cast<int>(Counter::kCount); ++c) {
    const auto counter = static_cast<Counter>(c);
    const std::string family = std::string("fsi_") + metrics::name(counter);
    append_family_header(out, family, "counter", counter_help(counter));
    out += family + "_total ";
    append_u64(out, metrics::total(counter));
    out += '\n';
  }

  for (int g = 0; g < static_cast<int>(Gauge::kCount); ++g) {
    const auto gauge = static_cast<Gauge>(g);
    const std::string family = std::string("fsi_") + metrics::name(gauge);
    append_family_header(out, family, "gauge", gauge_help(gauge));
    out += family + ' ';
    append_double(out, metrics::get(gauge));
    out += '\n';
  }

  // Accumulators are monotone seconds totals — counters in exposition
  // terms.  Their registry names already end in "_s" (a seconds unit).
  for (int a = 0; a < static_cast<int>(Accum::kCount); ++a) {
    const auto accum = static_cast<Accum>(a);
    const std::string family = std::string("fsi_") + metrics::name(accum);
    append_family_header(out, family, "counter", accum_help(accum));
    out += family + "_total ";
    append_double(out, metrics::seconds(accum));
    out += '\n';
  }

  for (int h = 0; h < static_cast<int>(Hist::kCount); ++h) {
    const auto hist = static_cast<Hist>(h);
    const std::string family = std::string("fsi_") + metrics::name(hist);
    const metrics::HistSnapshot snap = metrics::hist(hist);

    append_family_header(out, family, "histogram", hist_help(hist));
    std::uint64_t cumulative = 0;
    for (int i = 0; i < metrics::kHistBuckets; ++i) {
      cumulative += snap.buckets[i];
      out += family + "_bucket{le=\"";
      append_le(out, i);
      out += "\"} ";
      append_u64(out, cumulative);
      out += '\n';
    }
    out += family + "_sum ";
    append_double(out, snap.sum);
    out += '\n';
    out += family + "_count ";
    append_u64(out, snap.count);
    out += '\n';

    // Rolling-window percentiles ride along as gauges: a percentile of the
    // last 10 seconds is a point-in-time reading, not a cumulative series.
    const metrics::WindowSnapshot win = metrics::window(hist);
    const struct { const char* suffix; double value; } gauges[] = {
        {"_window_p50", win.p50},
        {"_window_p95", win.p95},
        {"_window_p99", win.p99},
        {"_window_count", static_cast<double>(win.count)},
    };
    for (const auto& g : gauges) {
      const std::string wfamily = family + g.suffix;
      append_family_header(out, wfamily, "gauge", "Rolling 10s window");
      out += wfamily + ' ';
      append_double(out, g.value);
      out += '\n';
    }
  }

  out += "# EOF\n";
  return out;
}

bool write_openmetrics(const std::string& path) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = openmetrics();
  const bool wrote = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace fsi::obs
