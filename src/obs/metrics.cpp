#include "fsi/obs/metrics.hpp"

#include <atomic>
#include <mutex>

namespace fsi::obs::metrics {
namespace {

constexpr int kNumCounters = static_cast<int>(Counter::kCount);

// Per-thread slot: one cell per counter.  Slots are heap-allocated and
// intentionally never freed — they are tiny and must outlive the thread so
// that total() still sees the work of joined OpenMP workers.  Only the
// owning thread writes a slot; readers merge on read through the atomics.
struct Slot {
  std::atomic<std::uint64_t> cells[kNumCounters] = {};
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::vector<Slot*>& registry() {
  static std::vector<Slot*> r;
  return r;
}

Slot& local_slot() {
  thread_local Slot* slot = [] {
    auto* s = new Slot();
    std::lock_guard<std::mutex> lock(registry_mutex());
    registry().push_back(s);
    return s;
  }();
  return *slot;
}

}  // namespace

const char* name(Counter c) noexcept {
  switch (c) {
    case Counter::Flops: return "flops";
    case Counter::BytesMoved: return "bytes_moved";
    case Counter::KernelCalls: return "kernel_calls";
    case Counter::MpiMessages: return "mpi_messages";
    case Counter::MpiBytes: return "mpi_bytes";
    case Counter::kCount: break;
  }
  return "?";
}

void add(Counter c, std::uint64_t n) noexcept {
  // Owner-only write: load + store instead of fetch_add keeps the hot path
  // free of locked read-modify-write instructions (the PR-1 flops audit).
  std::atomic<std::uint64_t>& cell = local_slot().cells[static_cast<int>(c)];
  cell.store(cell.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

std::uint64_t total(Counter c) noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::uint64_t sum = 0;
  for (const Slot* s : registry())
    sum += s->cells[static_cast<int>(c)].load(std::memory_order_relaxed);
  return sum;
}

void reset(Counter c) noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (Slot* s : registry())
    s->cells[static_cast<int>(c)].store(0, std::memory_order_relaxed);
}

void reset_all() noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (Slot* s : registry())
    for (auto& cell : s->cells) cell.store(0, std::memory_order_relaxed);
}

std::vector<std::pair<const char*, std::uint64_t>> snapshot() {
  std::vector<std::pair<const char*, std::uint64_t>> out;
  out.reserve(kNumCounters);
  for (int c = 0; c < kNumCounters; ++c)
    out.emplace_back(name(static_cast<Counter>(c)),
                     total(static_cast<Counter>(c)));
  return out;
}

}  // namespace fsi::obs::metrics
