#include "fsi/obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>

#include "fsi/obs/trace.hpp"  // now_ns(): the windowed-histogram clock

namespace fsi::obs::metrics {
namespace {

constexpr int kNumCounters = static_cast<int>(Counter::kCount);
constexpr int kNumHists = static_cast<int>(Hist::kCount);
constexpr int kNumAccums = static_cast<int>(Accum::kCount);

/// One thread's view of one histogram.  min/max/sum are owner-written
/// plain-load-then-store relaxed atomics, like the counter cells.
struct HistSlot {
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{0.0};
  std::atomic<double> max{0.0};
  std::atomic<std::uint64_t> buckets[kHistBuckets] = {};
};

// Per-thread slot: one cell per counter, histogram and accumulator.  Slots
// are heap-allocated and intentionally never freed — they are tiny and must
// outlive the thread so that total() still sees the work of joined OpenMP
// workers.  Only the owning thread writes a slot; readers merge on read
// through the atomics.
struct Slot {
  std::atomic<std::uint64_t> cells[kNumCounters] = {};
  HistSlot hists[kNumHists];
  std::atomic<double> accums[kNumAccums] = {};
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::vector<Slot*>& registry() {
  static std::vector<Slot*> r;
  return r;
}

// Lock-free mirror of the registry for totals_signal_safe(): a fixed array
// of atomic slot pointers the crash handler can walk without taking the
// mutex.  Threads beyond kMaxSignalSlots still count normally through the
// mutexed registry; they are merely invisible to the signal-safe view.
constexpr int kMaxSignalSlots = 256;
std::atomic<Slot*> g_slot_mirror[kMaxSignalSlots] = {};
std::atomic<int> g_slot_mirror_count{0};

Slot& local_slot() {
  thread_local Slot* slot = [] {
    auto* s = new Slot();
    {
      std::lock_guard<std::mutex> lock(registry_mutex());
      registry().push_back(s);
    }
    const int i = g_slot_mirror_count.fetch_add(1, std::memory_order_acq_rel);
    if (i < kMaxSignalSlots)
      g_slot_mirror[i].store(s, std::memory_order_release);
    return s;
  }();
  return *slot;
}

}  // namespace

const char* name(Counter c) noexcept {
  switch (c) {
    case Counter::Flops: return "flops";
    case Counter::BytesMoved: return "bytes_moved";
    case Counter::KernelCalls: return "kernel_calls";
    case Counter::MpiMessages: return "mpi_messages";
    case Counter::MpiBytes: return "mpi_bytes";
    case Counter::PoolHits: return "pool_hits";
    case Counter::PoolMisses: return "pool_misses";
    case Counter::SchedTasks: return "sched_tasks";
    case Counter::SchedSteals: return "sched_steals";
    case Counter::ExecNodes: return "exec_nodes";
    case Counter::ExecSteals: return "exec_steals";
    case Counter::ServeRequests: return "serve_requests";
    case Counter::ServeBatches: return "serve_batches";
    case Counter::ServeRejected: return "serve_rejected";
    case Counter::ServeDeadlineMiss: return "serve_deadline_miss";
    case Counter::ServeCancelled: return "serve_cancelled";
    case Counter::ServeErrors: return "serve_errors";
    case Counter::ServeQuotaRejected: return "serve_quota_rejected";
    case Counter::ServeBypassEnter: return "serve_bypass_enter";
    case Counter::ServeBypassExit: return "serve_bypass_exit";
    case Counter::MixedRuns: return "mixed_runs";
    case Counter::MixedFallbacks: return "mixed_fallbacks";
    case Counter::StabQrp: return "stab_qrp";
    case Counter::StabRecombine: return "stab_recombine";
    case Counter::GreensRecomputes: return "greens_recomputes";
    case Counter::kCount: break;
  }
  return "?";
}

void add(Counter c, std::uint64_t n) noexcept {
  // Owner-only write: load + store instead of fetch_add keeps the hot path
  // free of locked read-modify-write instructions (the PR-1 flops audit).
  std::atomic<std::uint64_t>& cell = local_slot().cells[static_cast<int>(c)];
  cell.store(cell.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

std::uint64_t total(Counter c) noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::uint64_t sum = 0;
  for (const Slot* s : registry())
    sum += s->cells[static_cast<int>(c)].load(std::memory_order_relaxed);
  return sum;
}

void reset(Counter c) noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (Slot* s : registry())
    s->cells[static_cast<int>(c)].store(0, std::memory_order_relaxed);
}

namespace {

void reset_hist_slot(HistSlot& h) {
  h.count.store(0, std::memory_order_relaxed);
  h.sum.store(0.0, std::memory_order_relaxed);
  h.min.store(0.0, std::memory_order_relaxed);
  h.max.store(0.0, std::memory_order_relaxed);
  for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
}

std::atomic<double>& gauge_cell(Gauge g) {
  static std::atomic<double> cells[static_cast<int>(Gauge::kCount)] = {};
  return cells[static_cast<int>(g)];
}

std::atomic<double>& hist_last_cell(Hist h) {
  static std::atomic<double> cells[kNumHists] = {};
  return cells[static_cast<int>(h)];
}

}  // namespace

void reset_all() noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (Slot* s : registry()) {
    for (auto& cell : s->cells) cell.store(0, std::memory_order_relaxed);
    for (auto& h : s->hists) reset_hist_slot(h);
    for (auto& a : s->accums) a.store(0.0, std::memory_order_relaxed);
  }
  for (int g = 0; g < static_cast<int>(Gauge::kCount); ++g)
    gauge_cell(static_cast<Gauge>(g)).store(0.0, std::memory_order_relaxed);
  for (int h = 0; h < kNumHists; ++h)
    hist_last_cell(static_cast<Hist>(h)).store(0.0, std::memory_order_relaxed);
}

int totals_signal_safe(std::uint64_t* out, int n) noexcept {
  const int nc = n < kNumCounters ? n : kNumCounters;
  for (int c = 0; c < nc; ++c) out[c] = 0;
  int slots = g_slot_mirror_count.load(std::memory_order_acquire);
  if (slots > kMaxSignalSlots) slots = kMaxSignalSlots;
  for (int i = 0; i < slots; ++i) {
    const Slot* s = g_slot_mirror[i].load(std::memory_order_acquire);
    if (s == nullptr) continue;  // registration raced; skip, never block
    for (int c = 0; c < nc; ++c)
      out[c] += s->cells[c].load(std::memory_order_relaxed);
  }
  return nc;
}

std::vector<std::pair<const char*, std::uint64_t>> snapshot() {
  std::vector<std::pair<const char*, std::uint64_t>> out;
  out.reserve(kNumCounters);
  for (int c = 0; c < kNumCounters; ++c)
    out.emplace_back(name(static_cast<Counter>(c)),
                     total(static_cast<Counter>(c)));
  return out;
}

// ---------------------------------------------------------------------------
// Histograms.

const char* name(Hist h) noexcept {
  switch (h) {
    case Hist::WrapDrift: return "wrap_drift";
    case Hist::Cond1Reduced: return "cond1_reduced";
    case Hist::SelResidual: return "sel_residual";
    case Hist::TaskSeconds: return "task_seconds";
    case Hist::QueueDepth: return "queue_depth";
    case Hist::ReadyDepth: return "ready_depth";
    case Hist::NodeSeconds: return "node_seconds";
    case Hist::ServeLatency: return "serve_latency_s";
    case Hist::ServeQueueWait: return "serve_queue_wait_s";
    case Hist::ServeBatchOccupancy: return "serve_batch_occupancy";
    case Hist::kCount: break;
  }
  return "?";
}

int hist_bucket(double value) noexcept {
  if (!(value > 0.0)) return 0;  // non-positive and NaN: lowest bucket
  if (std::isinf(value)) return kHistBuckets - 1;
  const int decade = static_cast<int>(std::floor(std::log10(value)));
  return std::clamp(decade, kHistMinDecade, kHistMaxDecade) - kHistMinDecade;
}

void record(Hist h, double value) noexcept {
  HistSlot& slot = local_slot().hists[static_cast<int>(h)];
  const std::uint64_t n = slot.count.load(std::memory_order_relaxed);
  slot.count.store(n + 1, std::memory_order_relaxed);
  slot.sum.store(slot.sum.load(std::memory_order_relaxed) + value,
                 std::memory_order_relaxed);
  if (n == 0 || value < slot.min.load(std::memory_order_relaxed))
    slot.min.store(value, std::memory_order_relaxed);
  if (n == 0 || value > slot.max.load(std::memory_order_relaxed))
    slot.max.store(value, std::memory_order_relaxed);
  auto& bucket = slot.buckets[hist_bucket(value)];
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  // "last" is a single global cell: a racy overwrite just means another
  // thread's equally-recent sample wins, which is fine for a gauge-style
  // reading.
  hist_last_cell(h).store(value, std::memory_order_relaxed);
}

HistSnapshot hist(Hist h) noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  HistSnapshot out;
  for (const Slot* s : registry()) {
    const HistSlot& hs = s->hists[static_cast<int>(h)];
    const std::uint64_t n = hs.count.load(std::memory_order_relaxed);
    if (n == 0) continue;
    const double mn = hs.min.load(std::memory_order_relaxed);
    const double mx = hs.max.load(std::memory_order_relaxed);
    if (out.count == 0 || mn < out.min) out.min = mn;
    if (out.count == 0 || mx > out.max) out.max = mx;
    out.count += n;
    out.sum += hs.sum.load(std::memory_order_relaxed);
    for (int b = 0; b < kHistBuckets; ++b)
      out.buckets[b] += hs.buckets[b].load(std::memory_order_relaxed);
  }
  out.last = hist_last_cell(h).load(std::memory_order_relaxed);
  return out;
}

void reset(Hist h) noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (Slot* s : registry()) reset_hist_slot(s->hists[static_cast<int>(h)]);
  hist_last_cell(h).store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Windowed histograms.

namespace {

/// Fine log-spaced value bucket: kWindowSubBuckets per decade over the same
/// decade span as the lifetime histograms.  Non-positive and NaN samples go
/// to bucket 0, +inf to the last — nothing is silently dropped.
int window_value_bucket(double value) noexcept {
  if (!(value > 0.0)) return 0;
  if (std::isinf(value)) return kWindowValueBuckets - 1;
  const double scaled = std::log10(value) * kWindowSubBuckets;
  const int idx = static_cast<int>(std::floor(scaled)) -
                  kHistMinDecade * kWindowSubBuckets;
  return std::clamp(idx, 0, kWindowValueBuckets - 1);
}

/// Lower edge of a fine bucket (inverse of window_value_bucket).
double window_bucket_lower(int idx) noexcept {
  return std::pow(10.0, static_cast<double>(idx) / kWindowSubBuckets +
                            kHistMinDecade);
}

/// One wall second of samples.  epoch_s stamps which second the bucket
/// holds; a bucket whose second fell out of the window is stale and is
/// reset lazily on the next write (or skipped on read).
struct WindowBucket {
  std::int64_t epoch_s = -1;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::uint32_t vals[kWindowValueBuckets] = {};

  void reset(std::int64_t s) {
    epoch_s = s;
    count = 0;
    sum = min = max = 0.0;
    for (auto& v : vals) v = 0;
  }
};

/// Ring of one-second buckets guarded by one mutex per histogram.  Windowed
/// recording happens at request rate (the serve plane), so a mutex — not
/// the thread-local-slot machinery of the lifetime histograms — is the
/// right cost/complexity trade.
struct WindowedHist {
  std::mutex mu;
  WindowBucket ring[kWindowSeconds];
};

WindowedHist& windowed(Hist h) {
  static WindowedHist cells[kNumHists];
  return cells[static_cast<int>(h)];
}

/// Percentile estimate from merged fine buckets: the geometric midpoint of
/// the bucket holding the q-th sample, clamped to the observed range.
double window_percentile(const std::uint64_t (&vals)[kWindowValueBuckets],
                         std::uint64_t count, double q, double mn, double mx) {
  if (count == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count - 1) + 0.5);
  std::uint64_t seen = 0;
  for (int b = 0; b < kWindowValueBuckets; ++b) {
    seen += vals[b];
    if (seen > rank) {
      const double lo = window_bucket_lower(b);
      const double hi = window_bucket_lower(b + 1);
      return std::clamp(std::sqrt(lo * hi), mn, mx);
    }
  }
  return mx;
}

}  // namespace

void record_windowed(Hist h, double value, std::int64_t now_ns) noexcept {
  record(h, value);  // lifetime histogram stays consistent with the window
  const std::int64_t s = now_ns / 1'000'000'000;
  WindowedHist& w = windowed(h);
  std::lock_guard<std::mutex> lock(w.mu);
  WindowBucket& b = w.ring[static_cast<std::size_t>(s) %
                          static_cast<std::size_t>(kWindowSeconds)];
  if (b.epoch_s != s) b.reset(s);
  if (b.count == 0 || value < b.min) b.min = value;
  if (b.count == 0 || value > b.max) b.max = value;
  ++b.count;
  b.sum += value;
  ++b.vals[window_value_bucket(value)];
}

WindowSnapshot window(Hist h, std::int64_t now_ns) noexcept {
  const std::int64_t now_s = now_ns / 1'000'000'000;
  WindowSnapshot out;
  std::uint64_t vals[kWindowValueBuckets] = {};
  WindowedHist& w = windowed(h);
  {
    std::lock_guard<std::mutex> lock(w.mu);
    for (const WindowBucket& b : w.ring) {
      // Keep buckets stamped within (now_s - kWindowSeconds, now_s].
      if (b.epoch_s < 0 || b.epoch_s + kWindowSeconds <= now_s ||
          b.epoch_s > now_s || b.count == 0)
        continue;
      if (out.count == 0 || b.min < out.min) out.min = b.min;
      if (out.count == 0 || b.max > out.max) out.max = b.max;
      out.count += b.count;
      out.sum += b.sum;
      for (int v = 0; v < kWindowValueBuckets; ++v) vals[v] += b.vals[v];
    }
  }
  out.p50 = window_percentile(vals, out.count, 0.50, out.min, out.max);
  out.p95 = window_percentile(vals, out.count, 0.95, out.min, out.max);
  out.p99 = window_percentile(vals, out.count, 0.99, out.min, out.max);
  return out;
}

void record_windowed(Hist h, double value) noexcept {
  record_windowed(h, value, now_ns());
}

WindowSnapshot window(Hist h) noexcept { return window(h, now_ns()); }

void reset_window(Hist h) noexcept {
  WindowedHist& w = windowed(h);
  std::lock_guard<std::mutex> lock(w.mu);
  for (WindowBucket& b : w.ring) b.reset(-1);
}

// ---------------------------------------------------------------------------
// Gauges.

const char* name(Gauge g) noexcept {
  switch (g) {
    case Gauge::WrapInterval: return "wrap_interval";
    case Gauge::FlushToZero: return "flush_to_zero";
    case Gauge::HealthSampleEvery: return "health_sample_every";
    case Gauge::SchedWorkers: return "sched_workers";
    case Gauge::ExecPoolWorkers: return "exec_pool_workers";
    case Gauge::ServeQueueDepth: return "serve_queue_depth";
    case Gauge::ServePolicyWindowUs: return "serve_policy_window_us";
    case Gauge::ServePolicyMaxBatch: return "serve_policy_max_batch";
    case Gauge::ServePolicyBypass: return "serve_policy_bypass";
    case Gauge::ServeReplicas: return "serve_replicas";
    case Gauge::StabScaleSpread: return "stab_scale_spread_log10";
    case Gauge::GreensLastDrift: return "greens_last_drift";
    case Gauge::GreensMaxDrift: return "greens_max_drift";
    case Gauge::kCount: break;
  }
  return "?";
}

void set(Gauge g, double value) noexcept {
  gauge_cell(g).store(value, std::memory_order_relaxed);
}

double get(Gauge g) noexcept {
  return gauge_cell(g).load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Wall-time accumulators.

const char* name(Accum a) noexcept {
  switch (a) {
    case Accum::GreensRecompute: return "greens_recompute_s";
    case Accum::HealthCheck: return "health_check_s";
    case Accum::kCount: break;
  }
  return "?";
}

void add_seconds(Accum a, double s) noexcept {
  std::atomic<double>& cell = local_slot().accums[static_cast<int>(a)];
  cell.store(cell.load(std::memory_order_relaxed) + s,
             std::memory_order_relaxed);
}

double seconds(Accum a) noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  double sum = 0.0;
  for (const Slot* s : registry())
    sum += s->accums[static_cast<int>(a)].load(std::memory_order_relaxed);
  return sum;
}

void reset(Accum a) noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (Slot* s : registry())
    s->accums[static_cast<int>(a)].store(0.0, std::memory_order_relaxed);
}

}  // namespace fsi::obs::metrics
