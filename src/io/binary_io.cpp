#include "fsi/io/binary_io.hpp"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "fsi/util/check.hpp"

namespace fsi::io {
namespace {

constexpr std::uint32_t kMagic = 0x42495346;  // "FSIB" little-endian
constexpr std::uint32_t kVersion = 1;

enum class Tag : std::uint32_t {
  Matrix = 1,
  PCyclic = 2,
  HsField = 3,
  Measurements = 4,
  SelectedInversion = 5,
};

/// RAII FILE handle.
struct File {
  File(const std::string& path, const char* mode) : f(std::fopen(path.c_str(), mode)) {
    FSI_CHECK(f != nullptr, "binary_io: cannot open '" + path + "'");
  }
  ~File() {
    if (f != nullptr) std::fclose(f);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  std::FILE* f = nullptr;
};

void write_bytes(std::FILE* f, const void* data, std::size_t bytes) {
  FSI_CHECK(std::fwrite(data, 1, bytes, f) == bytes, "binary_io: short write");
}
void read_bytes(std::FILE* f, void* data, std::size_t bytes) {
  FSI_CHECK(std::fread(data, 1, bytes, f) == bytes,
            "binary_io: short read (truncated or corrupt file)");
}

void write_u32(std::FILE* f, std::uint32_t v) { write_bytes(f, &v, sizeof v); }
std::uint32_t read_u32(std::FILE* f) {
  std::uint32_t v = 0;
  read_bytes(f, &v, sizeof v);
  return v;
}
void write_i64(std::FILE* f, std::int64_t v) { write_bytes(f, &v, sizeof v); }
std::int64_t read_i64(std::FILE* f) {
  std::int64_t v = 0;
  read_bytes(f, &v, sizeof v);
  return v;
}

void write_header(std::FILE* f, Tag tag) {
  write_u32(f, kMagic);
  write_u32(f, kVersion);
  write_u32(f, static_cast<std::uint32_t>(tag));
}

void read_header(std::FILE* f, Tag expected) {
  FSI_CHECK(read_u32(f) == kMagic, "binary_io: bad magic (not an FSI file)");
  FSI_CHECK(read_u32(f) == kVersion, "binary_io: unsupported format version");
  FSI_CHECK(read_u32(f) == static_cast<std::uint32_t>(expected),
            "binary_io: record type mismatch");
}

void write_matrix_payload(std::FILE* f, dense::ConstMatrixView m) {
  write_i64(f, m.rows());
  write_i64(f, m.cols());
  for (dense::index_t j = 0; j < m.cols(); ++j)
    write_bytes(f, m.col(j), sizeof(double) * static_cast<std::size_t>(m.rows()));
}

dense::Matrix read_matrix_payload(std::FILE* f) {
  const auto rows = static_cast<dense::index_t>(read_i64(f));
  const auto cols = static_cast<dense::index_t>(read_i64(f));
  FSI_CHECK(rows >= 0 && cols >= 0 && rows < (1 << 24) && cols < (1 << 24),
            "binary_io: implausible matrix dimensions");
  dense::Matrix m(rows, cols);
  for (dense::index_t j = 0; j < cols; ++j)
    read_bytes(f, m.view().col(j), sizeof(double) * static_cast<std::size_t>(rows));
  return m;
}

}  // namespace

void save_matrix(const std::string& path, dense::ConstMatrixView m) {
  File file(path, "wb");
  write_header(file.f, Tag::Matrix);
  write_matrix_payload(file.f, m);
}

dense::Matrix load_matrix(const std::string& path) {
  File file(path, "rb");
  read_header(file.f, Tag::Matrix);
  return read_matrix_payload(file.f);
}

void save_pcyclic(const std::string& path, const pcyclic::PCyclicMatrix& m) {
  File file(path, "wb");
  write_header(file.f, Tag::PCyclic);
  write_i64(file.f, m.block_size());
  write_i64(file.f, m.num_blocks());
  for (dense::index_t i = 0; i < m.num_blocks(); ++i)
    write_matrix_payload(file.f, m.b(i));
}

pcyclic::PCyclicMatrix load_pcyclic(const std::string& path) {
  File file(path, "rb");
  read_header(file.f, Tag::PCyclic);
  const auto n = static_cast<dense::index_t>(read_i64(file.f));
  const auto l = static_cast<dense::index_t>(read_i64(file.f));
  pcyclic::PCyclicMatrix m(n, l);
  for (dense::index_t i = 0; i < l; ++i) {
    dense::Matrix b = read_matrix_payload(file.f);
    FSI_CHECK(b.rows() == n && b.cols() == n,
              "binary_io: p-cyclic block dimension mismatch");
    m.b_matrix(i) = std::move(b);
  }
  return m;
}

void save_field(const std::string& path, const qmc::HsField& field) {
  File file(path, "wb");
  write_header(file.f, Tag::HsField);
  write_i64(file.f, field.num_slices());
  write_i64(file.f, field.num_sites());
  const auto buf = field.serialize();
  write_bytes(file.f, buf.data(), sizeof(double) * buf.size());
}

qmc::HsField load_field(const std::string& path) {
  File file(path, "rb");
  read_header(file.f, Tag::HsField);
  const auto l = static_cast<dense::index_t>(read_i64(file.f));
  const auto n = static_cast<dense::index_t>(read_i64(file.f));
  FSI_CHECK(l > 0 && n > 0, "binary_io: implausible field dimensions");
  std::vector<double> buf(static_cast<std::size_t>(l) * n);
  read_bytes(file.f, buf.data(), sizeof(double) * buf.size());
  return qmc::HsField::deserialize(l, n, buf.data(), buf.size());
}

void save_measurements(const std::string& path, const qmc::Measurements& m) {
  File file(path, "wb");
  write_header(file.f, Tag::Measurements);
  write_i64(file.f, m.num_slices());
  write_i64(file.f, m.num_distance_classes());
  const auto buf = m.serialize();
  write_i64(file.f, static_cast<std::int64_t>(buf.size()));
  write_bytes(file.f, buf.data(), sizeof(double) * buf.size());
}

qmc::Measurements load_measurements(const std::string& path) {
  File file(path, "rb");
  read_header(file.f, Tag::Measurements);
  const auto l = static_cast<dense::index_t>(read_i64(file.f));
  const auto dmax = static_cast<dense::index_t>(read_i64(file.f));
  const auto len = static_cast<std::size_t>(read_i64(file.f));
  FSI_CHECK(len == qmc::Measurements::serialized_size(l, dmax),
            "binary_io: measurement payload size mismatch");
  std::vector<double> buf(len);
  read_bytes(file.f, buf.data(), sizeof(double) * len);
  return qmc::Measurements::deserialize(l, dmax, buf);
}

void save_selected_inversion(const std::string& path,
                             const pcyclic::SelectedInversion& s) {
  File file(path, "wb");
  write_header(file.f, Tag::SelectedInversion);
  write_u32(file.f, static_cast<std::uint32_t>(s.pattern()));
  write_i64(file.f, s.block_size());
  write_i64(file.f, s.selection().l_total);
  write_i64(file.f, s.selection().c);
  write_i64(file.f, s.selection().q);
  for (const auto& [k, l] : s.keys())
    write_matrix_payload(file.f, s.at(k, l).view());
}

pcyclic::SelectedInversion load_selected_inversion(const std::string& path) {
  File file(path, "rb");
  read_header(file.f, Tag::SelectedInversion);
  const auto pattern = static_cast<pcyclic::Pattern>(read_u32(file.f));
  FSI_CHECK(pattern >= pcyclic::Pattern::Diagonal &&
                pattern <= pcyclic::Pattern::AllDiagonals,
            "binary_io: unknown selection pattern");
  const auto n = static_cast<dense::index_t>(read_i64(file.f));
  const auto l = static_cast<dense::index_t>(read_i64(file.f));
  const auto c = static_cast<dense::index_t>(read_i64(file.f));
  const auto q = static_cast<dense::index_t>(read_i64(file.f));
  pcyclic::SelectedInversion s(pattern, n, pcyclic::Selection(l, c, q));
  for (const auto& [k, col] : s.keys()) {
    dense::Matrix block = read_matrix_payload(file.f);
    FSI_CHECK(block.rows() == n && block.cols() == n,
              "binary_io: selected block dimension mismatch");
    s.slot(k, col) = std::move(block);
  }
  return s;
}

}  // namespace fsi::io
