#include "fsi/io/wire.hpp"

#include <cstring>

#include "fsi/util/check.hpp"

namespace fsi::io {

void WireWriter::put_bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void WireWriter::put_u8(std::uint8_t v) { put_bytes(&v, sizeof v); }
void WireWriter::put_u32(std::uint32_t v) { put_bytes(&v, sizeof v); }
void WireWriter::put_i32(std::int32_t v) { put_bytes(&v, sizeof v); }
void WireWriter::put_u64(std::uint64_t v) { put_bytes(&v, sizeof v); }
void WireWriter::put_i64(std::int64_t v) { put_bytes(&v, sizeof v); }
void WireWriter::put_f64(double v) { put_bytes(&v, sizeof v); }

void WireWriter::put_f64_vector(const std::vector<double>& v) {
  put_u64(v.size());
  if (!v.empty()) put_bytes(v.data(), v.size() * sizeof(double));
}

void WireWriter::put_string(const std::string& s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  if (!s.empty()) put_bytes(s.data(), s.size());
}

void WireReader::get_bytes(void* out, std::size_t n) {
  FSI_CHECK(n <= remaining(), "wire: truncated payload");
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
}

std::uint8_t WireReader::get_u8() {
  std::uint8_t v = 0;
  get_bytes(&v, sizeof v);
  return v;
}
std::uint32_t WireReader::get_u32() {
  std::uint32_t v = 0;
  get_bytes(&v, sizeof v);
  return v;
}
std::int32_t WireReader::get_i32() {
  std::int32_t v = 0;
  get_bytes(&v, sizeof v);
  return v;
}
std::uint64_t WireReader::get_u64() {
  std::uint64_t v = 0;
  get_bytes(&v, sizeof v);
  return v;
}
std::int64_t WireReader::get_i64() {
  std::int64_t v = 0;
  get_bytes(&v, sizeof v);
  return v;
}
double WireReader::get_f64() {
  double v = 0;
  get_bytes(&v, sizeof v);
  return v;
}

std::vector<double> WireReader::get_f64_vector() {
  const std::uint64_t count = get_u64();
  // Divide instead of multiplying: `count * sizeof(double)` wraps for
  // hostile counts near 2^64 and would pass the bound.
  FSI_CHECK(count <= remaining() / sizeof(double),
            "wire: vector length exceeds payload");
  std::vector<double> v(static_cast<std::size_t>(count));
  if (count > 0) get_bytes(v.data(), v.size() * sizeof(double));
  return v;
}

std::string WireReader::get_string() {
  const std::uint32_t len = get_u32();
  FSI_CHECK(len <= remaining(), "wire: string length exceeds payload");
  std::string s(len, '\0');
  if (len > 0) get_bytes(s.data(), len);
  return s;
}

}  // namespace fsi::io
