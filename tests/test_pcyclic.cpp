/// Structure tests: PCyclicMatrix assembly, chain products, W matrices,
/// and the explicit inverse (Eqs. 2/3) against a dense LU inverse.

#include <gtest/gtest.h>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/lu.hpp"
#include "fsi/dense/norms.hpp"
#include "fsi/pcyclic/explicit_inverse.hpp"
#include "fsi/pcyclic/pcyclic.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using namespace fsi::pcyclic;
using fsi::testing::expect_close;

TEST(PCyclic, DenseAssemblyHasNormalForm) {
  util::Rng rng(101);
  const index_t n = 3, l = 4;
  PCyclicMatrix m = PCyclicMatrix::random(n, l, rng);
  Matrix d = m.to_dense();

  // Identity diagonal blocks.
  for (index_t i = 0; i < l; ++i)
    expect_close(Matrix::copy_of(d.block(i * n, i * n, n, n)),
                 Matrix::identity(n), 0.0, "diag");
  // Subdiagonal -B_{i+1}.
  for (index_t i = 1; i < l; ++i) {
    Matrix expected = Matrix::copy_of(m.b(i));
    dense::scal(-1.0, expected);
    expect_close(Matrix::copy_of(d.block(i * n, (i - 1) * n, n, n)), expected,
                 0.0, "subdiag");
  }
  // Corner +B_1.
  expect_close(Matrix::copy_of(d.block(0, (l - 1) * n, n, n)),
               Matrix::copy_of(m.b(0)), 0.0, "corner");
  // Everything else zero.
  EXPECT_EQ(d(0, n), 0.0);
  EXPECT_EQ(d(2 * n, 0), 0.0);
}

TEST(PCyclic, WrapIsTorus) {
  util::Rng rng(102);
  PCyclicMatrix m = PCyclicMatrix::random(2, 5, rng);
  EXPECT_EQ(m.wrap(5), 0);
  EXPECT_EQ(m.wrap(-1), 4);
  EXPECT_EQ(m.wrap(12), 2);
  EXPECT_EQ(m.wrap(0), 0);
}

TEST(PCyclic, ChainProductMatchesManualProduct) {
  util::Rng rng(103);
  const index_t n = 4, l = 6;
  PCyclicMatrix m = PCyclicMatrix::random(n, l, rng);

  // k > l: B_4 B_3 (0-based b(4) b(3)) for k=4, l=2.
  Matrix manual = dense::matmul(m.b(4), m.b(3));
  expect_close(chain_product(m, 4, 2), manual, 1e-14, "forward chain");

  // Wrapped chain k=1, l=4: B_1 B_0 B_5 (3 factors).
  Matrix w1 = dense::matmul(m.b(0), m.b(5));
  Matrix manual2 = dense::matmul(m.b(1), w1);
  expect_close(chain_product(m, 1, 4), manual2, 1e-14, "wrapped chain");

  // Empty chain.
  expect_close(chain_product(m, 3, 3), Matrix::identity(n), 0.0, "empty chain");
}

TEST(PCyclic, WMatrixIsIdentityPlusFullChain) {
  util::Rng rng(104);
  const index_t n = 3, l = 5;
  PCyclicMatrix m = PCyclicMatrix::random(n, l, rng);
  for (index_t k = 0; k < l; ++k) {
    // Full chain starting at k: B_k B_{k-1} ... B_{k+1}.
    Matrix prod = Matrix::identity(n);
    for (index_t t = 0; t < l; ++t) {
      prod = dense::matmul(m.b(m.wrap(k + 1 + t)), prod);
    }
    for (index_t d = 0; d < n; ++d) prod(d, d) += 1.0;
    expect_close(w_matrix(m, k), prod, 1e-13, "W_k");
  }
}

class ExplicitInverseSizes
    : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(ExplicitInverseSizes, MatchesDenseLuInverseEverywhere) {
  const auto [n, l] = GetParam();
  util::Rng rng(105, static_cast<std::uint64_t>(n * 100 + l));
  PCyclicMatrix m = PCyclicMatrix::random(n, l, rng);
  Matrix gd = full_inverse_dense(m);

  for (index_t k = 0; k < l; ++k) {
    for (index_t col = 0; col < l; ++col) {
      Matrix expected = dense_block(gd, n, k, col);
      Matrix actual = explicit_block(m, k, col);
      expect_close(actual, expected, 1e-9,
                   ("block (" + std::to_string(k) + "," + std::to_string(col) +
                    ")").c_str());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExplicitInverseSizes,
                         ::testing::Values(std::make_pair(index_t{1}, index_t{1}),
                                           std::make_pair(index_t{2}, index_t{2}),
                                           std::make_pair(index_t{3}, index_t{7}),
                                           std::make_pair(index_t{8}, index_t{5}),
                                           std::make_pair(index_t{16}, index_t{4})),
                         [](const auto& info) {
                           return "N" + std::to_string(info.param.first) + "L" +
                                  std::to_string(info.param.second);
                         });

TEST(PCyclic, ExplicitColumnMatchesDense) {
  util::Rng rng(106);
  const index_t n = 5, l = 6;
  PCyclicMatrix m = PCyclicMatrix::random(n, l, rng);
  Matrix gd = full_inverse_dense(m);
  const index_t col = 2;
  auto column = explicit_block_column(m, col);
  ASSERT_EQ(column.size(), static_cast<std::size_t>(l));
  for (index_t k = 0; k < l; ++k)
    expect_close(column[k], dense_block(gd, n, k, col), 1e-10, "column block");
}

TEST(PCyclic, InverseOfDenseAssemblyIsActualInverse) {
  util::Rng rng(107);
  PCyclicMatrix m = PCyclicMatrix::random(6, 4, rng);
  Matrix md = m.to_dense();
  Matrix g = full_inverse_dense(m);
  expect_close(dense::matmul(md, g), Matrix::identity(m.dim()), 1e-10, "M G = I");
}

TEST(PCyclic, BlockIndexOutOfRangeThrows) {
  util::Rng rng(108);
  PCyclicMatrix m = PCyclicMatrix::random(2, 3, rng);
  EXPECT_THROW(m.b(3), util::CheckError);
  EXPECT_THROW(m.b(-1), util::CheckError);
  EXPECT_THROW(explicit_block(m, 0, 5), util::CheckError);
}

}  // namespace
