/// Physics invariants of the Metropolis sweep: U=0 triviality, half-filling
/// sign-problem freedom, particle-hole symmetry of the spin ratios, and
/// temperature trends of the observables.

#include <gtest/gtest.h>

#include <cmath>

#include "fsi/qmc/dqmc.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using namespace fsi::qmc;

TEST(SweepPhysics, UZeroRatiosAreAllUnity) {
  // At U = 0 the HS field decouples: every flip ratio must be exactly 1
  // and every proposal is accepted.
  HubbardParams p;
  p.u = 0.0;
  p.beta = 1.0;
  p.l = 6;
  HubbardModel model(Lattice::chain(4), p);
  util::Rng rng(61);
  HsField field(6, 4, rng);
  EqualTimeGreens g_up(model, field, Spin::Up, 3);
  EqualTimeGreens g_dn(model, field, Spin::Down, 3);

  for (index_t i = 0; i < 4; ++i) {
    const double a = g_up.flip_alpha(i);
    EXPECT_DOUBLE_EQ(a, 0.0);
    EXPECT_DOUBLE_EQ(g_up.flip_ratio(i, a), 1.0);
  }
  double sign = 1.0;
  const index_t acc = metropolis_sweep(model, field, g_up, g_dn, rng, sign);
  EXPECT_EQ(acc, 6 * 4);  // r = 1 -> always accepted
  EXPECT_DOUBLE_EQ(sign, 1.0);
}

TEST(SweepPhysics, HalfFillingSpinRatiosAreConjugate) {
  // Particle-hole symmetry at mu = 0 on a bipartite lattice implies
  // r_up * r_dn > 0 for every proposal (sign-problem-free); verify over a
  // long random sequence of states and proposals.
  HubbardParams p;
  p.u = 5.0;
  p.beta = 2.0;
  p.l = 8;
  HubbardModel model(Lattice::rectangle(2, 3), p);
  util::Rng rng(62);
  HsField field(8, 6, rng);
  EqualTimeGreens g_up(model, field, Spin::Up, 4);
  EqualTimeGreens g_dn(model, field, Spin::Down, 4);

  double sign = 1.0;
  for (int sweep = 0; sweep < 3; ++sweep)
    metropolis_sweep(model, field, g_up, g_dn, rng, sign);
  EXPECT_DOUBLE_EQ(sign, 1.0);

  for (index_t i = 0; i < 6; ++i) {
    const double r =
        g_up.flip_ratio(i, g_up.flip_alpha(i)) *
        g_dn.flip_ratio(i, g_dn.flip_alpha(i));
    EXPECT_GT(r, 0.0) << "negative weight at half filling, site " << i;
  }
}

TEST(SweepPhysics, StrongerCouplingSuppressesDoubleOccupancy) {
  auto docc_at = [](double u) {
    HubbardParams p;
    p.u = u;
    p.beta = 2.0;
    p.l = 8;
    HubbardModel model(Lattice::rectangle(2, 2), p);
    DqmcOptions opt;
    opt.warmup_sweeps = 30;
    opt.measurement_sweeps = 120;
    opt.cluster_size = 4;
    opt.measure_time_dependent = false;
    opt.seed = 63;
    return run_dqmc(model, opt).measurements.double_occupancy();
  };
  const double weak = docc_at(1.0);
  const double strong = docc_at(8.0);
  EXPECT_LT(strong, weak - 0.03)
      << "U suppresses double occupancy (weak=" << weak
      << ", strong=" << strong << ")";
  EXPECT_LT(weak, 0.26);   // below/near the uncorrelated 1/4
  EXPECT_GT(strong, 0.0);
}

TEST(SweepPhysics, LocalMomentGrowsWithCoupling) {
  auto moment_at = [](double u) {
    HubbardParams p;
    p.u = u;
    p.beta = 2.0;
    p.l = 8;
    HubbardModel model(Lattice::rectangle(2, 2), p);
    DqmcOptions opt;
    opt.warmup_sweeps = 30;
    opt.measurement_sweeps = 120;
    opt.cluster_size = 4;
    opt.measure_time_dependent = false;
    opt.seed = 64;
    return run_dqmc(model, opt).measurements.local_moment();
  };
  EXPECT_GT(moment_at(8.0), moment_at(1.0) + 0.05);
}

TEST(SweepPhysics, EnginesStayInLockstep) {
  HubbardParams p;
  p.u = 3.0;
  p.l = 10;
  HubbardModel model(Lattice::chain(5), p);
  util::Rng rng(65);
  HsField field(10, 5, rng);
  EqualTimeGreens g_up(model, field, Spin::Up, 5);
  EqualTimeGreens g_dn(model, field, Spin::Down, 5);
  double sign = 1.0;
  for (int s = 0; s < 2; ++s) {
    metropolis_sweep(model, field, g_up, g_dn, rng, sign);
    EXPECT_EQ(g_up.slice(), g_dn.slice());
    EXPECT_EQ(g_up.slice(), 0);  // full sweeps return to slice 0
  }
}

TEST(SweepPhysics, AcceptanceDropsAtStrongCoupling) {
  auto acceptance_at = [](double u) {
    HubbardParams p;
    p.u = u;
    p.beta = 2.0;
    p.l = 8;
    HubbardModel model(Lattice::rectangle(2, 2), p);
    DqmcOptions opt;
    opt.warmup_sweeps = 10;
    opt.measurement_sweeps = 30;
    opt.cluster_size = 4;
    opt.measure_time_dependent = false;
    opt.seed = 66;
    return run_dqmc(model, opt).acceptance_rate;
  };
  // Stronger coupling -> stiffer field -> fewer accepted flips.
  EXPECT_GT(acceptance_at(1.0), acceptance_at(10.0) + 0.05);
}

}  // namespace
