/// Tests for the binned error analysis and the pair-field susceptibility.

#include <gtest/gtest.h>

#include <cmath>

#include "fsi/pcyclic/explicit_inverse.hpp"
#include "fsi/qmc/binning.hpp"
#include "fsi/qmc/dqmc.hpp"
#include "fsi/qmc/measurements.hpp"
#include "fsi/selinv/fsi.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using namespace fsi::qmc;

TEST(BinnedScalar, MeanOverAllSamples) {
  BinnedScalar b(3);
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) b.add(v);
  EXPECT_EQ(b.num_samples(), 5u);
  EXPECT_EQ(b.num_complete_bins(), 1u);  // [1,2,3] complete; [4,5] partial
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(BinnedScalar, IndependentSamplesErrorMatchesCLT) {
  // i.i.d. uniform(0,1): sigma = sqrt(1/12); standard error of the mean
  // ~ sigma / sqrt(n), independent of binning for uncorrelated data.
  util::Rng rng(81);
  BinnedScalar b(10);
  const int n = 20000;
  for (int i = 0; i < n; ++i) b.add(rng.uniform());
  EXPECT_NEAR(b.mean(), 0.5, 0.01);
  const double expected_err = std::sqrt(1.0 / 12.0 / n);
  EXPECT_NEAR(b.error(), expected_err, expected_err * 0.4);
  // Rebinning should not change the error much for i.i.d. samples.
  const double rebinned_err = b.rebinned(4).error();
  EXPECT_NEAR(rebinned_err, expected_err, expected_err * 0.6);
}

TEST(BinnedScalar, CorrelatedSamplesNeedBigBins) {
  // AR(1) series with strong autocorrelation: tiny bins underestimate the
  // error; the estimate must grow materially under rebinning.
  util::Rng rng(82);
  BinnedScalar small_bins(2);
  const double rho = 0.95;
  double x = 0.0;
  for (int i = 0; i < 40000; ++i) {
    x = rho * x + rng.uniform(-1.0, 1.0);
    small_bins.add(x);
  }
  const double err_small = small_bins.error();
  const double err_big = small_bins.rebinned(64).error();
  EXPECT_GT(err_big, 2.0 * err_small)
      << "binning must reveal the autocorrelation";
}

TEST(BinnedScalar, EdgeCases) {
  EXPECT_THROW(BinnedScalar(0), util::CheckError);
  BinnedScalar b(4);
  EXPECT_DOUBLE_EQ(b.mean(), 0.0);
  EXPECT_DOUBLE_EQ(b.error(), 0.0);  // no bins yet
  b.add(2.0);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  EXPECT_DOUBLE_EQ(b.error(), 0.0);  // still < 2 complete bins
}

// ---------------------------------------------------------------------------

TEST(PairSusceptibility, MatchesDenseInverseComputation) {
  const dense::index_t nx = 3, l = 6, c = 2, q = 1;
  HubbardParams p;
  p.u = 2.0;
  p.beta = 1.5;
  p.l = l;
  HubbardModel model(Lattice::chain(nx), p);
  util::Rng rng(83);
  HsField h(l, nx, rng);

  auto rows_of = [&](Spin spin) {
    const auto m = model.build_m(h, spin);
    const pcyclic::BlockOps ops(m);
    const pcyclic::Selection sel(l, c, q);
    const auto reduced = selinv::cluster(m, c, q);
    const auto gtilde = bsofi::invert(reduced);
    return selinv::wrap(ops, gtilde, pcyclic::Pattern::Rows, sel);
  };
  auto rows_up = rows_of(Spin::Up);
  auto rows_dn = rows_of(Spin::Down);

  Measurements meas(l, model.lattice().num_distance_classes());
  meas.add_sample(1.0);
  accumulate_pair_susceptibility(model.lattice(), rows_up, rows_dn, p.dtau(),
                                 1.0, true, meas);

  // Dense reference.
  Matrix gu = pcyclic::full_inverse_dense(model.build_m(h, Spin::Up));
  Matrix gd = pcyclic::full_inverse_dense(model.build_m(h, Spin::Down));
  const pcyclic::Selection sel(l, c, q);
  double expected = 0.0;
  for (dense::index_t k : sel.indices())
    for (dense::index_t ell = 0; ell < l; ++ell) {
      Matrix bu = pcyclic::dense_block(gu, nx, k, ell);
      Matrix bd = pcyclic::dense_block(gd, nx, k, ell);
      for (dense::index_t j = 0; j < nx; ++j)
        for (dense::index_t i = 0; i < nx; ++i)
          expected += bu(i, j) * bd(i, j);
    }
  expected *= p.dtau() / (nx * static_cast<double>(sel.b()));
  EXPECT_NEAR(meas.pair_susceptibility(), expected, 1e-10);
}

TEST(PairSusceptibility, PositiveAndFiniteInDqmc) {
  HubbardParams p;
  p.u = 2.0;
  p.beta = 2.0;
  p.l = 8;
  HubbardModel model(Lattice::rectangle(2, 2), p);
  DqmcOptions opt;
  opt.warmup_sweeps = 10;
  opt.measurement_sweeps = 30;
  opt.cluster_size = 4;
  opt.seed = 84;
  DqmcResult r = run_dqmc(model, opt);
  EXPECT_GT(r.measurements.pair_susceptibility(), 0.0);
  EXPECT_LT(r.measurements.pair_susceptibility(), 10.0);
}

TEST(PairSusceptibility, RejectsWrongPatterns) {
  const dense::index_t nx = 2, l = 4;
  HubbardParams p;
  p.l = l;
  HubbardModel model(Lattice::chain(nx), p);
  util::Rng rng(85);
  HsField h(l, nx, rng);
  const auto m = model.build_m(h, Spin::Up);
  const pcyclic::BlockOps ops(m);
  const pcyclic::Selection sel(l, 2, 0);
  const auto gtilde = bsofi::invert(selinv::cluster(m, 2, 0));
  auto cols = selinv::wrap(ops, gtilde, pcyclic::Pattern::Columns, sel);
  auto rows = selinv::wrap(ops, gtilde, pcyclic::Pattern::Rows, sel);
  Measurements meas(l, model.lattice().num_distance_classes());
  EXPECT_THROW(accumulate_pair_susceptibility(model.lattice(), cols, rows, 0.1,
                                              1.0, true, meas),
               util::CheckError);
}

}  // namespace
