/// Tests for the fsi::stab stabilized propagator-chain engine: the UDT
/// (ASvQRD) recurrence, the scale-separated inversion, strategy selection,
/// and the headline claim — at a beta where the naive QR-accumulate path
/// trips the obs::health gate, the UDT path still delivers Green's
/// functions that match an extended-precision reference.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/lu.hpp"
#include "fsi/dense/norms.hpp"
#include "fsi/obs/health.hpp"
#include "fsi/obs/metrics.hpp"
#include "fsi/qmc/greens.hpp"
#include "fsi/stab/chain.hpp"
#include "fsi/stab/reference.hpp"
#include "fsi/stab/strategy.hpp"
#include "fsi/stab/udt.hpp"
#include "fsi/util/check.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using namespace fsi::stab;
using fsi::testing::expect_close;
using fsi::testing::random_matrix;

qmc::HubbardModel make_model(dense::index_t nx, dense::index_t l,
                             double u = 4.0, double dtau = 0.25) {
  qmc::HubbardParams p;
  p.t = 1.0;
  p.u = u;
  p.beta = dtau * static_cast<double>(l);
  p.l = l;
  return qmc::HubbardModel(qmc::Lattice::chain(nx), p);
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  double m = 0.0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) {
      const double d = std::abs(a(i, j) - b(i, j));
      if (!std::isfinite(d)) return std::numeric_limits<double>::infinity();
      m = std::max(m, d);
    }
  return m;
}

// ---- UdtDecomposition ----------------------------------------------------

TEST(StabUdt, DecomposeReconstructsTheMatrix) {
  util::Rng rng(901);
  Matrix a = random_matrix(12, 12, rng);
  UdtDecomposition udt = udt_decompose(Matrix::copy_of(a));
  expect_close(udt.dense(), a, 1e-12, "U D T = A");
  // Scales are positive and descending (pivoted QR).
  for (index_t i = 0; i < 12; ++i) {
    EXPECT_GT(udt.d[static_cast<std::size_t>(i)], 0.0);
    if (i > 0) {
      EXPECT_LE(udt.d[static_cast<std::size_t>(i)],
                udt.d[static_cast<std::size_t>(i - 1)] * (1.0 + 1e-12));
    }
  }
  // U orthogonal.
  Matrix utu(12, 12);
  dense::gemm(dense::Trans::Yes, dense::Trans::No, 1.0, udt.u, udt.u, 0.0,
              utu);
  expect_close(utu, Matrix::identity(12), 1e-12, "U^T U = I");
}

TEST(StabUdt, AdvanceMatchesPlainProduct) {
  util::Rng rng(902);
  UdtDecomposition udt = UdtDecomposition::identity(10);
  Matrix product = Matrix::identity(10);
  for (int step = 0; step < 5; ++step) {
    Matrix b = random_matrix(10, 10, rng);
    udt_advance(udt, b);
    product = dense::matmul(b, product);
  }
  expect_close(udt.dense(), product, 1e-11, "UDT = B_5 ... B_1");
}

TEST(StabUdt, InverseOnePlusMatchesDenseInverse) {
  util::Rng rng(903);
  Matrix a = random_matrix(9, 9, rng);
  Matrix one_plus = Matrix::copy_of(a);
  for (index_t i = 0; i < 9; ++i) one_plus(i, i) += 1.0;
  Matrix expected = dense::inverse(one_plus);
  Matrix actual = inverse_one_plus(udt_decompose(std::move(a)));
  expect_close(actual, expected, 1e-11, "(1 + UDT)^-1");
}

TEST(StabUdt, ScaleSpreadOfGradedChain) {
  // diag(2, 1/2) repeated 40 times: d = (2^40, 2^-40), spread = 80*log10(2).
  UdtDecomposition udt = UdtDecomposition::identity(2);
  Matrix b(2, 2);
  b(0, 0) = 2.0;
  b(1, 1) = 0.5;
  for (int step = 0; step < 40; ++step) udt_advance(udt, b);
  EXPECT_NEAR(udt.scale_spread_log10(), 80.0 * std::log10(2.0), 1e-6);
  EXPECT_NEAR(udt.dmax(), std::pow(2.0, 40), 1e-3 * std::pow(2.0, 40));
}

TEST(StabUdt, IdentityDecomposition) {
  UdtDecomposition udt = UdtDecomposition::identity(4);
  EXPECT_EQ(udt.n(), 4);
  EXPECT_EQ(udt.scale_spread_log10(), 0.0);
  expect_close(udt.dense(), Matrix::identity(4), 1e-15, "identity UDT");
}

// ---- StabilizedChain -----------------------------------------------------

TEST(StabChain, MatchesNaiveGreensAtSmallBeta) {
  // Small beta: both paths are accurate; they must agree to ~1e-10.
  qmc::HubbardModel model = make_model(4, 8, /*u=*/2.0);
  util::Rng rng(904);
  qmc::HsField h(8, 4, rng);
  for (qmc::Spin spin : {qmc::Spin::Up, qmc::Spin::Down}) {
    for (index_t k : {index_t{0}, index_t{3}}) {
      Matrix g_naive = qmc::equal_time_greens(model, h, spin, k, 2);
      Matrix g_udt = qmc::stabilized_equal_time_greens(model, h, spin, k, 2);
      expect_close(g_udt, g_naive, 1e-10, "UDT vs naive at small beta");
    }
  }
}

TEST(StabChain, ClusterSizeDoesNotChangeTheAnswer) {
  qmc::HubbardModel model = make_model(4, 24);
  util::Rng rng(905);
  qmc::HsField h(24, 4, rng);
  Matrix ref = qmc::stabilized_equal_time_greens(model, h, qmc::Spin::Up, 5, 1);
  for (index_t c : {2, 3, 8}) {
    Matrix g = qmc::stabilized_equal_time_greens(model, h, qmc::Spin::Up, 5, c);
    expect_close(g, ref, 1e-11, "UDT cluster-size independence");
  }
}

TEST(StabChain, FlushAndFactorBookkeeping) {
  StabilizedChain chain(3, 4);
  EXPECT_EQ(chain.factors(), 0);
  EXPECT_EQ(chain.cluster_size(), 4);
  util::Rng rng(906);
  Matrix b = random_matrix(3, 3, rng);
  for (int step = 0; step < 6; ++step)
    chain.append([&](Matrix& m) { m = dense::matmul(b, m); });
  EXPECT_EQ(chain.factors(), 6);
  // 6 appends with cluster 4: one automatic flush + 2 pending; udt() must
  // flush the remainder and match the 6-fold product.
  Matrix product = Matrix::identity(3);
  for (int step = 0; step < 6; ++step) product = dense::matmul(b, product);
  expect_close(chain.udt().dense(), product, 1e-11, "chain flush");
}

TEST(StabChain, GreensPublishesScaleSpreadGauge) {
  obs::metrics::set(obs::metrics::Gauge::StabScaleSpread, -1.0);
  qmc::HubbardModel model = make_model(4, 32);
  util::Rng rng(907);
  qmc::HsField h(32, 4, rng);
  (void)qmc::stabilized_equal_time_greens(model, h, qmc::Spin::Up, 0, 8);
  // A beta = 8 chain spans many decades; the gauge must reflect that.
  EXPECT_GT(obs::metrics::get(obs::metrics::Gauge::StabScaleSpread), 1.0);
}

TEST(StabChain, CountsQrpAndRecombineWork) {
  const auto qrp0 = obs::metrics::total(obs::metrics::Counter::StabQrp);
  const auto rec0 = obs::metrics::total(obs::metrics::Counter::StabRecombine);
  qmc::HubbardModel model = make_model(4, 16);
  util::Rng rng(908);
  qmc::HsField h(16, 4, rng);
  (void)qmc::stabilized_equal_time_greens(model, h, qmc::Spin::Up, 0, 4);
  // 16 slices, cluster 4: exactly 4 QRP folds and 1 recombination.
  EXPECT_EQ(obs::metrics::total(obs::metrics::Counter::StabQrp) - qrp0, 4u);
  EXPECT_EQ(obs::metrics::total(obs::metrics::Counter::StabRecombine) - rec0,
            1u);
}

TEST(StabChain, RejectsBadConstruction) {
  EXPECT_THROW(StabilizedChain(0, 1), util::CheckError);
  EXPECT_THROW(StabilizedChain(4, 0), util::CheckError);
}

// ---- extended-precision reference ----------------------------------------

TEST(StabReference, MatchesDenseInverseAtTinyBeta) {
  util::Rng rng(909);
  std::vector<Matrix> bs;
  Matrix product = Matrix::identity(6);
  for (int step = 0; step < 4; ++step) {
    bs.push_back(random_matrix(6, 6, rng));
    product = dense::matmul(bs.back(), product);
  }
  for (index_t i = 0; i < 6; ++i) product(i, i) += 1.0;
  Matrix expected = dense::inverse(product);
  Matrix actual = reference_inverse_one_plus_chain(bs);
  expect_close(actual, expected, 1e-11, "reference vs dense inverse");
}

// ---- strategy selection --------------------------------------------------

TEST(StabStrategyParse, AcceptedSpellings) {
  StabStrategy s = StabStrategy::Udt;
  EXPECT_TRUE(parse_stab_strategy("naive", s));
  EXPECT_EQ(s, StabStrategy::Naive);
  EXPECT_TRUE(parse_stab_strategy("QR", s));
  EXPECT_EQ(s, StabStrategy::Naive);
  EXPECT_TRUE(parse_stab_strategy("udt", s));
  EXPECT_EQ(s, StabStrategy::Udt);
  EXPECT_TRUE(parse_stab_strategy("ASvQRD", s));
  EXPECT_EQ(s, StabStrategy::Udt);
  EXPECT_FALSE(parse_stab_strategy("turbo", s));
  EXPECT_EQ(s, StabStrategy::Udt);  // untouched on failure
  EXPECT_STREQ(stab_strategy_name(StabStrategy::Naive), "naive");
  EXPECT_STREQ(stab_strategy_name(StabStrategy::Udt), "udt");
}

TEST(StabStrategyParse, EnvValueFailsLoudOnGarbage) {
  EXPECT_EQ(stab_strategy_from_env_value(nullptr), StabStrategy::Naive);
  EXPECT_EQ(stab_strategy_from_env_value(""), StabStrategy::Naive);
  EXPECT_EQ(stab_strategy_from_env_value("udt"), StabStrategy::Udt);
  EXPECT_THROW(stab_strategy_from_env_value("yes"), util::CheckError);
  try {
    stab_strategy_from_env_value("qr2");
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    // The message must name the bad value and the accepted spellings.
    EXPECT_NE(std::string(e.what()).find("qr2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("asvqrd"), std::string::npos);
  }
}

TEST(StabStrategyParse, DefaultRecomputeMethodIsNaiveWhenUnset) {
  // The test harness never sets FSI_STAB, so the default must be the
  // bit-identical pre-stab path.
  EXPECT_EQ(qmc::default_recompute_method(),
            qmc::RecomputeMethod::QrAccumulate);
}

// ---- the headline: large-beta frontier -----------------------------------

/// Shared config for the frontier tests: a 6-site chain at beta = 256
/// (L = 1024, dtau = 0.25, U = 4).  Empirically the naive QR-accumulate
/// chain overflows double range near beta ~ 200 here (the accumulated R
/// product exceeds ~1e308 and goes non-finite), while the saturated UDT
/// chain stays accurate to ~1e-13.
constexpr dense::index_t kFrontierSites = 6;
constexpr dense::index_t kFrontierSlices = 1024;

TEST(StabLargeBeta, UdtMatchesExtendedPrecisionReferenceWhereNaiveDies) {
  qmc::HubbardModel model =
      make_model(kFrontierSites, kFrontierSlices, /*u=*/4.0);
  util::Rng rng(7, 910);
  qmc::HsField h(kFrontierSlices, kFrontierSites, rng);

  std::vector<Matrix> bs;
  bs.reserve(static_cast<std::size_t>(kFrontierSlices));
  for (index_t t = 0; t < kFrontierSlices; ++t)
    bs.push_back(
        model.b_matrix(h, (1 + t) % kFrontierSlices, qmc::Spin::Up));
  Matrix ref = reference_inverse_one_plus_chain(bs);

  // The naive path no longer resembles the answer (non-finite or worse
  // than the drift FAIL budget)...
  Matrix g_naive = qmc::equal_time_greens(model, h, qmc::Spin::Up, 0, 8);
  EXPECT_GT(max_abs_diff(g_naive, ref), obs::health::thresholds().drift_fail);

  // ...while the UDT path matches the extended-precision reference to well
  // under the 1e-8 acceptance bar.
  Matrix g_udt =
      qmc::stabilized_equal_time_greens(model, h, qmc::Spin::Up, 0, 8);
  EXPECT_LT(max_abs_diff(g_udt, ref), 1e-8);
}

TEST(StabLargeBeta, HealthGateFailsNaiveEngineAndPassesUdt) {
  qmc::HubbardModel model =
      make_model(kFrontierSites, kFrontierSlices, /*u=*/4.0);
  util::Rng rng(7, 911);
  qmc::HsField h(kFrontierSlices, kFrontierSites, rng);
  const index_t wrap = 8;

  // Naive engine: the constructor's recompute is already non-finite, and
  // the first stabilisation records it -> overall FAIL.
  obs::health::reset();
  {
    qmc::EqualTimeGreens eng(model, h, qmc::Spin::Up, 8, wrap, 0,
                             qmc::RecomputeMethod::QrAccumulate);
    for (index_t s = 0; s < 2 * wrap; ++s) eng.advance();
    EXPECT_FALSE(dense::all_finite(eng.g().view()));
  }
  EXPECT_EQ(obs::health::report().overall, obs::health::Status::Fail);

  // UDT engine at the same beta: wraps vs recomputes agree to ~1e-12 and
  // the health report stays clean.
  obs::health::reset();
  {
    qmc::EqualTimeGreens eng(model, h, qmc::Spin::Up, 8, wrap, 0,
                             qmc::RecomputeMethod::Udt);
    for (index_t s = 0; s < 2 * wrap; ++s) eng.advance();
    EXPECT_LT(eng.max_drift(), obs::health::thresholds().drift_warn);
    // The drift gauges exported for /metrics follow the engine.
    EXPECT_EQ(obs::metrics::get(obs::metrics::Gauge::GreensLastDrift),
              eng.last_drift());
    EXPECT_EQ(obs::metrics::get(obs::metrics::Gauge::GreensMaxDrift),
              eng.max_drift());
  }
  EXPECT_EQ(obs::health::report().overall, obs::health::Status::Ok);
  obs::health::reset();
}

}  // namespace
