/// \file openmetrics_checker.hpp
/// \brief Grammar checker for OpenMetrics text exposition, shared by the
/// exporter unit test and the live-scrape serve test.
///
/// Validates the subset the fsi exporter (and any conforming scraper)
/// relies on:
///   - every family is announced by `# HELP` then `# TYPE` before any of
///     its samples, and families are contiguous (no interleaving);
///   - the TYPE is one of counter | gauge | histogram | info;
///   - counter samples end in `_total`, info samples in `_info`;
///   - histogram families expose `_bucket{le="..."}` series with strictly
///     increasing `le` bounds ending at `+Inf`, cumulative (non-decreasing)
///     bucket counts, and a `_sum`/`_count` pair where `_count` equals the
///     `+Inf` bucket;
///   - the document ends with exactly `# EOF\n`.
///
/// On success the checker retains every unlabelled sample value so tests
/// can assert on specific series (value_of("fsi_flops_total")).

#pragma once

#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace fsi::testing {

class OpenMetricsChecker {
 public:
  /// Parse and validate; false sets error() to the offending line + reason.
  bool check(const std::string& text) {
    families_.clear();
    values_.clear();
    buckets_.clear();
    error_.clear();
    if (text.empty() || text.back() != '\n')
      return fail("document must end with a newline");

    std::vector<std::string> lines;
    std::size_t start = 0;
    for (std::size_t i = 0; i < text.size(); ++i)
      if (text[i] == '\n') {
        lines.push_back(text.substr(start, i - start));
        start = i + 1;
      }
    if (lines.empty() || lines.back() != "# EOF")
      return fail("document must end with '# EOF'");
    lines.pop_back();

    std::string family;       // family currently open for samples
    std::string family_type;  // its TYPE
    bool have_type = false;   // TYPE seen for the open family
    bool have_sample = false; // at least one sample seen
    std::set<std::string> closed;  // families already completed

    auto close_family = [&]() -> bool {
      if (family.empty()) return true;
      if (!have_type) return fail("family without TYPE: " + family);
      if (!have_sample) return fail("family without samples: " + family);
      if (family_type == "histogram" && !check_histogram(family)) return false;
      closed.insert(family);
      family.clear();
      return true;
    };

    for (const std::string& line : lines) {
      if (line.empty()) return fail("empty line inside document");
      if (line == "# EOF") return fail("'# EOF' before end of document");
      if (line.rfind("# HELP ", 0) == 0) {
        const std::string rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string::npos || sp == 0)
          return fail("malformed HELP: " + line);
        const std::string name = rest.substr(0, sp);
        if (!close_family()) return false;
        if (closed.count(name) != 0)
          return fail("family reopened (interleaved): " + name);
        family = name;
        have_type = false;
        have_sample = false;
        continue;
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string::npos) return fail("malformed TYPE: " + line);
        const std::string name = rest.substr(0, sp);
        const std::string type = rest.substr(sp + 1);
        if (name != family)
          return fail("TYPE for '" + name + "' but open family is '" +
                      family + "'");
        if (have_type) return fail("duplicate TYPE: " + name);
        if (have_sample) return fail("TYPE after samples: " + name);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "info")
          return fail("unknown TYPE '" + type + "' for " + name);
        family_type = type;
        have_type = true;
        families_[family] = type;
        continue;
      }
      if (line[0] == '#') return fail("unknown comment: " + line);

      // Sample line: <name>[{labels}] <value>
      if (family.empty() || !have_type)
        return fail("sample outside a family: " + line);
      std::size_t name_end = line.find_first_of("{ ");
      if (name_end == std::string::npos)
        return fail("malformed sample: " + line);
      const std::string sample = line.substr(0, name_end);
      std::string labels;
      std::size_t value_at = name_end;
      if (line[name_end] == '{') {
        const std::size_t close = line.find('}', name_end);
        if (close == std::string::npos)
          return fail("unterminated labels: " + line);
        labels = line.substr(name_end + 1, close - name_end - 1);
        value_at = close + 1;
      }
      if (value_at >= line.size() || line[value_at] != ' ')
        return fail("missing value: " + line);
      const std::string value_text = line.substr(value_at + 1);
      char* end = nullptr;
      double value;
      if (value_text == "+Inf") value = HUGE_VAL;
      else if (value_text == "-Inf") value = -HUGE_VAL;
      else if (value_text == "NaN") value = NAN;
      else {
        value = std::strtod(value_text.c_str(), &end);
        if (end == value_text.c_str() || *end != '\0')
          return fail("unparsable value: " + line);
      }

      // Suffix rules per type.
      const std::string suffix =
          sample.rfind(family, 0) == 0 ? sample.substr(family.size()) : "?";
      bool suffix_ok = false;
      if (family_type == "counter") suffix_ok = suffix == "_total";
      else if (family_type == "gauge") suffix_ok = suffix.empty();
      else if (family_type == "info") suffix_ok = suffix == "_info";
      else if (family_type == "histogram")
        suffix_ok = suffix == "_bucket" || suffix == "_sum" ||
                    suffix == "_count";
      if (!suffix_ok)
        return fail("sample '" + sample + "' invalid for " + family_type +
                    " family " + family);
      if (family_type == "histogram" && suffix == "_bucket") {
        const std::string le = label_value(labels, "le");
        if (le.empty()) return fail("bucket without le label: " + line);
        buckets_[family].emplace_back(
            le == "+Inf" ? HUGE_VAL : std::strtod(le.c_str(), nullptr),
            value);
      }
      have_sample = true;
      if (labels.empty()) values_[sample] = value;
    }
    return close_family();
  }

  const std::string& error() const { return error_; }
  /// family name -> TYPE, for every family seen.
  const std::map<std::string, std::string>& families() const {
    return families_;
  }
  bool has_value(const std::string& sample) const {
    return values_.count(sample) != 0;
  }
  double value_of(const std::string& sample) const {
    const auto it = values_.find(sample);
    return it != values_.end() ? it->second : NAN;
  }

 private:
  bool fail(const std::string& why) {
    error_ = why;
    return false;
  }

  static std::string label_value(const std::string& labels,
                                 const std::string& key) {
    const std::string needle = key + "=\"";
    const std::size_t at = labels.find(needle);
    if (at == std::string::npos) return "";
    const std::size_t start = at + needle.size();
    const std::size_t end = labels.find('"', start);
    if (end == std::string::npos) return "";
    return labels.substr(start, end - start);
  }

  bool check_histogram(const std::string& family) {
    const auto& bs = buckets_[family];
    if (bs.empty()) return fail("histogram without buckets: " + family);
    if (!std::isinf(bs.back().first))
      return fail("histogram missing +Inf bucket: " + family);
    for (std::size_t i = 1; i < bs.size(); ++i) {
      if (!(bs[i].first > bs[i - 1].first))
        return fail("le bounds not increasing: " + family);
      if (bs[i].second < bs[i - 1].second)
        return fail("bucket counts not cumulative: " + family);
    }
    if (!has_value(family + "_sum") || !has_value(family + "_count"))
      return fail("histogram missing _sum/_count: " + family);
    if (value_of(family + "_count") != bs.back().second)
      return fail("_count != +Inf bucket: " + family);
    return true;
  }

  std::map<std::string, std::string> families_;
  std::map<std::string, double> values_;
  std::map<std::string, std::vector<std::pair<double, double>>> buckets_;
  std::string error_;
};

}  // namespace fsi::testing
