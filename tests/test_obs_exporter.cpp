/// Tests for the OpenMetrics exporter: the full exposition passes the
/// grammar checker, specific series carry the registry's values, histogram
/// buckets are cumulative with monotone le bounds, the build-info line is
/// present, and textfile mode writes atomically.  The checker itself gets
/// negative coverage so a green run means it can actually fail.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "fsi/obs/build.hpp"
#include "fsi/obs/exporter.hpp"
#include "fsi/obs/metrics.hpp"
#include "openmetrics_checker.hpp"

namespace {

namespace m = fsi::obs::metrics;
using fsi::testing::OpenMetricsChecker;

struct ExporterFixture : ::testing::Test {
  void SetUp() override {
    m::reset_all();
    m::reset(m::Hist::ServeLatency);
    m::reset_window(m::Hist::ServeLatency);
  }
};

TEST_F(ExporterFixture, FullExpositionPassesGrammarCheck) {
  const std::string doc = fsi::obs::openmetrics();
  OpenMetricsChecker checker;
  EXPECT_TRUE(checker.check(doc)) << checker.error();

  // Every registry dimension shows up as at least one family.
  EXPECT_EQ(checker.families().at("fsi_build"), "info");
  EXPECT_EQ(checker.families().at("fsi_flops"), "counter");
  EXPECT_EQ(checker.families().at("fsi_wrap_interval"), "gauge");
  EXPECT_EQ(checker.families().at("fsi_serve_latency_s"), "histogram");
  EXPECT_EQ(checker.families().at("fsi_serve_latency_s_window_p95"), "gauge");
}

TEST_F(ExporterFixture, EndsWithEofAndNothingElse) {
  const std::string doc = fsi::obs::openmetrics();
  const std::string tail = "# EOF\n";
  ASSERT_GE(doc.size(), tail.size());
  EXPECT_EQ(doc.substr(doc.size() - tail.size()), tail);
}

TEST_F(ExporterFixture, CounterValuesSurviveTheRoundTrip) {
  m::add(m::Counter::Flops, 12345);
  m::add(m::Counter::ServeRequests, 7);
  OpenMetricsChecker checker;
  ASSERT_TRUE(checker.check(fsi::obs::openmetrics())) << checker.error();
  EXPECT_EQ(checker.value_of("fsi_flops_total"), 12345.0);
  EXPECT_EQ(checker.value_of("fsi_serve_requests_total"), 7.0);
}

TEST_F(ExporterFixture, GaugeValuesSurviveTheRoundTrip) {
  m::set(m::Gauge::WrapInterval, 8.0);
  OpenMetricsChecker checker;
  ASSERT_TRUE(checker.check(fsi::obs::openmetrics())) << checker.error();
  EXPECT_EQ(checker.value_of("fsi_wrap_interval"), 8.0);
}

TEST_F(ExporterFixture, HistogramSumCountAndCumulativeBuckets) {
  // Values spread over three decades so several buckets are non-empty.
  m::record_windowed(m::Hist::ServeLatency, 0.001);
  m::record_windowed(m::Hist::ServeLatency, 0.010);
  m::record_windowed(m::Hist::ServeLatency, 0.100);
  m::record_windowed(m::Hist::ServeLatency, 0.100);
  OpenMetricsChecker checker;
  // check() itself enforces monotone le and cumulative counts.
  ASSERT_TRUE(checker.check(fsi::obs::openmetrics())) << checker.error();
  EXPECT_EQ(checker.value_of("fsi_serve_latency_s_count"), 4.0);
  EXPECT_NEAR(checker.value_of("fsi_serve_latency_s_sum"), 0.211, 1e-9);
  EXPECT_EQ(checker.value_of("fsi_serve_latency_s_window_count"), 4.0);
}

TEST_F(ExporterFixture, BuildInfoLineCarriesTheStampedSha) {
  const std::string doc = fsi::obs::openmetrics();
  const fsi::obs::BuildInfo& b = fsi::obs::build_info();
  EXPECT_NE(doc.find("fsi_build_info{version=\""), std::string::npos);
  EXPECT_NE(doc.find(std::string("git_sha=\"") + b.git_sha + "\""),
            std::string::npos);
}

TEST_F(ExporterFixture, ContentTypeIsOpenMetrics) {
  EXPECT_NE(std::string(fsi::obs::kOpenMetricsContentType)
                .find("application/openmetrics-text"),
            std::string::npos);
}

TEST_F(ExporterFixture, TextfileModeWritesAValidDocumentAtomically) {
  const std::string path =
      ::testing::TempDir() + "fsi_exporter_textfile.om";
  ASSERT_TRUE(fsi::obs::write_openmetrics(path));

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string doc;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) doc.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  OpenMetricsChecker checker;
  EXPECT_TRUE(checker.check(doc)) << checker.error();
  // The .tmp staging file must not survive a successful write.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
}

TEST_F(ExporterFixture, WriteToUnwritablePathReportsFailure) {
  EXPECT_FALSE(fsi::obs::write_openmetrics("/nonexistent-dir/x/metrics.om"));
}

// --- the checker must reject broken documents, or green means nothing ----

TEST(OpenMetricsCheckerSelfTest, RejectsMissingEof) {
  OpenMetricsChecker c;
  EXPECT_FALSE(c.check("# HELP a b\n# TYPE a counter\na_total 1\n"));
}

TEST(OpenMetricsCheckerSelfTest, RejectsSampleBeforeType) {
  OpenMetricsChecker c;
  EXPECT_FALSE(c.check("# HELP a b\na_total 1\n# TYPE a counter\n# EOF\n"));
}

TEST(OpenMetricsCheckerSelfTest, RejectsInterleavedFamilies) {
  OpenMetricsChecker c;
  EXPECT_FALSE(c.check("# HELP a b\n# TYPE a counter\na_total 1\n"
                       "# HELP x y\n# TYPE x counter\nx_total 1\n"
                       "# HELP a b\n# TYPE a counter\na_total 2\n# EOF\n"));
}

TEST(OpenMetricsCheckerSelfTest, RejectsNonCumulativeBuckets) {
  OpenMetricsChecker c;
  EXPECT_FALSE(c.check(
      "# HELP h x\n# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n"
      "h_sum 1\nh_count 3\n# EOF\n"));
}

TEST(OpenMetricsCheckerSelfTest, RejectsMissingInfBucket) {
  OpenMetricsChecker c;
  EXPECT_FALSE(c.check("# HELP h x\n# TYPE h histogram\n"
                       "h_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n# EOF\n"));
}

TEST(OpenMetricsCheckerSelfTest, RejectsCounterWithoutTotalSuffix) {
  OpenMetricsChecker c;
  EXPECT_FALSE(c.check("# HELP a b\n# TYPE a counter\na 1\n# EOF\n"));
}

TEST(OpenMetricsCheckerSelfTest, AcceptsMinimalValidDocument) {
  OpenMetricsChecker c;
  EXPECT_TRUE(c.check("# HELP a b\n# TYPE a counter\na_total 1\n# EOF\n"))
      << c.error();
  EXPECT_EQ(c.value_of("a_total"), 1.0);
}

}  // namespace
