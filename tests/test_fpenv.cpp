/// Tests for the flush-to-zero floating-point mode used by the benches.
/// Kept in its own binary: enable_flush_to_zero() changes per-thread FP
/// state for the rest of the process.

#include <gtest/gtest.h>

#include <cmath>

#include "fsi/util/fpenv.hpp"

namespace {

volatile double sink;  // defeat constant folding

TEST(Fpenv, DenormalsExistUnderStrictIeee) {
  volatile double tiny = std::numeric_limits<double>::min();  // smallest normal
  volatile double denormal = tiny / 4.0;
  sink = denormal;
  EXPECT_GT(denormal, 0.0);  // strict IEEE keeps subnormals
}

TEST(Fpenv, FlushToZeroEliminatesDenormals) {
  fsi::util::enable_flush_to_zero();
  volatile double tiny = std::numeric_limits<double>::min();
  volatile double denormal = tiny / 4.0;  // FTZ: result flushed to 0
  sink = denormal;
#if defined(__x86_64__) || defined(__i386__)
  EXPECT_EQ(denormal, 0.0);
#else
  GTEST_SKIP() << "FTZ control is x86-only";
#endif
}

TEST(Fpenv, NormalArithmeticUnaffected) {
  fsi::util::enable_flush_to_zero();
  volatile double a = 1.5, b = 2.25;
  EXPECT_DOUBLE_EQ(a * b, 3.375);
  EXPECT_DOUBLE_EQ(a + b, 3.75);
}

TEST(Fpenv, IdempotentCalls) {
  fsi::util::enable_flush_to_zero();
  fsi::util::enable_flush_to_zero();  // must not crash or toggle back
  volatile double tiny = std::numeric_limits<double>::min();
  volatile double denormal = tiny / 4.0;
  sink = denormal;
#if defined(__x86_64__) || defined(__i386__)
  EXPECT_EQ(denormal, 0.0);
#endif
}

}  // namespace
