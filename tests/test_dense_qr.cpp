/// Unit tests for the Householder QR: reconstruction, orthogonality,
/// and all four ormqr application modes (needed by BSOFI).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <type_traits>
#include <vector>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/norms.hpp"
#include "fsi/dense/qr.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using namespace fsi::dense;
using fsi::testing::expect_close;
using fsi::testing::random_matrix;

struct QrShape {
  index_t m, n;
};

class QrShapes : public ::testing::TestWithParam<QrShape> {};

TEST_P(QrShapes, ReconstructsA) {
  const auto [m, n] = GetParam();
  util::Rng rng(21, static_cast<std::uint64_t>(m * 1000 + n));
  Matrix a = random_matrix(m, n, rng);
  QrFactorization qr(Matrix::copy_of(a));

  // Q * [R; 0] should equal A.
  Matrix r_full(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= std::min(j, m - 1); ++i) r_full(i, j) = qr.packed()(i, j);
  qr.apply_q(Side::Left, Trans::No, r_full);
  expect_close(r_full, a, 1e-11, "Q R = A");
}

TEST_P(QrShapes, QIsOrthogonal) {
  const auto [m, n] = GetParam();
  util::Rng rng(22, static_cast<std::uint64_t>(m * 1000 + n));
  Matrix a = random_matrix(m, n, rng);
  QrFactorization qr(std::move(a));
  Matrix q = qr.q();
  Matrix qtq(m, m);
  gemm(Trans::Yes, Trans::No, 1.0, q, q, 0.0, qtq);
  expect_close(qtq, Matrix::identity(m), 1e-11, "Q^T Q = I");
}

// ---- scalar-generic suite: the QR family at both widths ------------------

template <typename T>
class TypedQr : public ::testing::Test {};
using Scalars = ::testing::Types<double, float>;
TYPED_TEST_SUITE(TypedQr, Scalars);

TYPED_TEST(TypedQr, ReconstructsAAndQOrthogonal) {
  using T = TypeParam;
  for (auto [m, n] : {std::pair<index_t, index_t>{24, 24}, {40, 24}}) {
    util::Rng rng(51, static_cast<std::uint64_t>(m * 1000 + n));
    BasicMatrix<T> a = fsi::testing::random_matrix_t<T>(m, n, rng);
    BasicQrFactorization<T> qr(BasicMatrix<T>::copy_of(a));

    BasicMatrix<T> r_full(m, n);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i <= std::min(j, m - 1); ++i)
        r_full(i, j) = qr.packed()(i, j);
    qr.apply_q(Side::Left, Trans::No, r_full);
    fsi::testing::expect_close(r_full, a, fsi::testing::Tol<T>::tight,
                               "typed Q R = A");

    BasicMatrix<T> q = qr.q();
    BasicMatrix<T> qtq(m, m);
    gemm(Trans::Yes, Trans::No, T(1), q, q, T(0), qtq);
    fsi::testing::expect_close(qtq, BasicMatrix<T>::identity(m),
                               fsi::testing::Tol<T>::tight, "typed Q^T Q = I");
  }
}

TEST_P(QrShapes, QtAEqualsR) {
  const auto [m, n] = GetParam();
  util::Rng rng(23, static_cast<std::uint64_t>(m * 1000 + n));
  Matrix a = random_matrix(m, n, rng);
  QrFactorization qr(Matrix::copy_of(a));
  Matrix qta = a;
  qr.apply_q(Side::Left, Trans::Yes, qta);
  // Q^T A should be upper triangular with R on top and ~0 below.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j + 1; i < m; ++i) EXPECT_NEAR(qta(i, j), 0.0, 1e-10);
  Matrix r = qr.r();
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= j; ++i) EXPECT_NEAR(qta(i, j), r(i, j), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrShapes,
                         ::testing::Values(QrShape{1, 1}, QrShape{5, 3},
                                           QrShape{48, 48}, QrShape{64, 64},
                                           QrShape{100, 50}, QrShape{129, 97},
                                           // The BSOFI panel shape: 2N x N.
                                           QrShape{256, 128}),
                         [](const auto& info) {
                           return "m" + std::to_string(info.param.m) + "n" +
                                  std::to_string(info.param.n);
                         });

TEST(Qr, RightApplicationMatchesExplicitQ) {
  // BSOFI computes G = R^-1 Q^T via right-multiplications by Q_i^T;
  // check C op(Q) against multiplication with the explicit Q.
  const index_t m = 90, n = 45;
  util::Rng rng(24);
  Matrix a = random_matrix(m, n, rng);
  QrFactorization qr(std::move(a));
  Matrix q = qr.q();

  for (Trans trans : {Trans::No, Trans::Yes}) {
    Matrix c = random_matrix(30, m, rng);
    Matrix expected(30, m);
    gemm(Trans::No, trans, 1.0, c, q, 0.0, expected);
    Matrix actual = c;
    qr.apply_q(Side::Right, trans, actual);
    expect_close(actual, expected, 1e-11,
                 trans == Trans::No ? "C Q" : "C Q^T");
  }
}

TEST(Qr, LeftApplicationMatchesExplicitQ) {
  const index_t m = 70, n = 33;
  util::Rng rng(25);
  Matrix a = random_matrix(m, n, rng);
  QrFactorization qr(std::move(a));
  Matrix q = qr.q();

  for (Trans trans : {Trans::No, Trans::Yes}) {
    Matrix c = random_matrix(m, 12, rng);
    Matrix expected(m, 12);
    gemm(trans, Trans::No, 1.0, q, c, 0.0, expected);
    Matrix actual = c;
    qr.apply_q(Side::Left, trans, actual);
    expect_close(actual, expected, 1e-11, "op(Q) C");
  }
}

TEST(Qr, AlreadyTriangularInputGivesZeroTaus) {
  // An upper-triangular A needs no reflections in exact arithmetic;
  // the zero-column guard in larfg must not produce NaNs.
  Matrix a = Matrix::identity(6);
  a(0, 5) = 3.0;
  QrFactorization qr(Matrix::copy_of(a));
  Matrix r_full(6, 6);
  for (index_t j = 0; j < 6; ++j)
    for (index_t i = 0; i <= j; ++i) r_full(i, j) = qr.packed()(i, j);
  qr.apply_q(Side::Left, Trans::No, r_full);
  expect_close(r_full, a, 1e-13, "triangular input");
}

TEST(Qr, WideMatrixThrows) {
  EXPECT_THROW(QrFactorization(Matrix(3, 5)), util::CheckError);
}

// ---- column-pivoted QR (the fsi::stab workhorse) at both widths ----------

template <typename T>
class TypedQrp : public ::testing::Test {};
TYPED_TEST_SUITE(TypedQrp, Scalars);

TYPED_TEST(TypedQrp, ReconstructsAP) {
  using T = TypeParam;
  for (auto [m, n] : {std::pair<index_t, index_t>{24, 24}, {40, 24}}) {
    util::Rng rng(61, static_cast<std::uint64_t>(m * 1000 + n));
    BasicMatrix<T> a = fsi::testing::random_matrix_t<T>(m, n, rng);
    BasicQrpFactorization<T> qr(BasicMatrix<T>::copy_of(a));

    // Q R should equal A P, i.e. column j of Q R is column jpvt[j] of A.
    BasicMatrix<T> qr_prod(m, n);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i <= std::min(j, m - 1); ++i)
        qr_prod(i, j) = qr.packed()(i, j);
    qr.apply_q(Side::Left, Trans::No, qr_prod);

    BasicMatrix<T> ap(m, n);
    for (index_t j = 0; j < n; ++j) {
      const index_t orig = qr.jpvt()[static_cast<std::size_t>(j)];
      for (index_t i = 0; i < m; ++i) ap(i, j) = a(i, orig);
    }
    fsi::testing::expect_close(qr_prod, ap, fsi::testing::Tol<T>::tight,
                               "Q R = A P");

    // jpvt must be a permutation of 0..n-1.
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    for (index_t j = 0; j < n; ++j) {
      const index_t orig = qr.jpvt()[static_cast<std::size_t>(j)];
      ASSERT_GE(orig, 0);
      ASSERT_LT(orig, n);
      EXPECT_FALSE(seen[static_cast<std::size_t>(orig)]);
      seen[static_cast<std::size_t>(orig)] = true;
    }

    BasicMatrix<T> q = qr.q();
    BasicMatrix<T> qtq(m, m);
    gemm(Trans::Yes, Trans::No, T(1), q, q, T(0), qtq);
    fsi::testing::expect_close(qtq, BasicMatrix<T>::identity(m),
                               fsi::testing::Tol<T>::tight, "QRP Q^T Q = I");
  }
}

TYPED_TEST(TypedQrp, DiagonalOfRIsMonotone) {
  using T = TypeParam;
  const index_t m = 48, n = 48;
  util::Rng rng(62);
  BasicMatrix<T> a = fsi::testing::random_matrix_t<T>(m, n, rng);
  BasicQrpFactorization<T> qr(std::move(a));
  BasicMatrix<T> r = qr.r();
  for (index_t i = 1; i < n; ++i) {
    // Small slack: the downdated-norm pivoting guarantees monotonicity up
    // to rounding in the norm bookkeeping.
    const double prev = std::abs(static_cast<double>(r(i - 1, i - 1)));
    const double cur = std::abs(static_cast<double>(r(i, i)));
    EXPECT_LE(cur, prev * (1.0 + 64.0 * std::numeric_limits<T>::epsilon()))
        << "at i=" << i;
  }
}

TYPED_TEST(TypedQrp, RankRevealingOnGradedMatrix) {
  using T = TypeParam;
  // A = Q1 diag(graded) Q2 with singular values decaying geometrically over
  // kappa = 1e12 (double) / 1e6 (float): the pivoted |diag(R)| must track
  // the singular-value ladder, which unpivoted QR has no reason to do.
  const index_t n = 24;
  const double kappa = std::is_same_v<T, double> ? 1e12 : 1e6;
  util::Rng rng(63);
  BasicQrFactorization<T> q1(fsi::testing::random_matrix_t<T>(n, n, rng));
  BasicQrFactorization<T> q2(fsi::testing::random_matrix_t<T>(n, n, rng));
  std::vector<double> sv(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    sv[static_cast<std::size_t>(i)] =
        std::pow(kappa, -static_cast<double>(i) / (n - 1));
  BasicMatrix<T> a(n, n);
  for (index_t i = 0; i < n; ++i)
    a(i, i) = static_cast<T>(sv[static_cast<std::size_t>(i)]);
  q1.apply_q(Side::Left, Trans::No, a);
  q2.apply_q(Side::Right, Trans::Yes, a);

  BasicQrpFactorization<T> qrp(std::move(a));
  BasicMatrix<T> r = qrp.r();
  // |r_ii| is within a dimension-sized factor of sigma_i (Chan's bound is
  // exponential in n in the worst case, but graded matrices behave far
  // better; 2^i covers it with huge margin at n = 24).
  for (index_t i = 0; i < n; ++i) {
    const double rii = std::abs(static_cast<double>(r(i, i)));
    const double sigma = sv[static_cast<std::size_t>(i)];
    const double slack = std::pow(2.0, static_cast<double>(i) / 2.0 + 4.0);
    EXPECT_LE(rii, sigma * slack) << "i=" << i;
    EXPECT_GE(rii, sigma / slack) << "i=" << i;
  }
  // The headline rank-revealing property: the full kappa shows up as the
  // ratio of first to last pivot.
  const double spread = std::abs(static_cast<double>(r(0, 0))) /
                        std::abs(static_cast<double>(r(n - 1, n - 1)));
  EXPECT_GT(spread, kappa / 1e3);
  EXPECT_LT(spread, kappa * 1e3);
}

TEST(Qrp, WideMatrixThrows) {
  EXPECT_THROW(QrpFactorization(Matrix(3, 5)), util::CheckError);
}

}  // namespace
