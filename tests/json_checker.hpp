/// \file json_checker.hpp
/// \brief Minimal recursive-descent JSON validator shared by the obs tests.
///
/// Sufficient to *validate* exported trace/telemetry/health documents and to
/// pull out string/number values by key.  Not a general-purpose parser:
/// numbers and strings are validated and skipped, escapes are not decoded.

#pragma once

#include <cctype>
#include <map>
#include <set>
#include <string>

namespace fsi::testing {

class JsonChecker {
 public:
  explicit JsonChecker(std::string text) : s_(std::move(text)) {}

  /// Parse the whole document; false on any syntax error or trailing junk.
  bool parse() {
    pos_ = 0;
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

  /// String values seen for a given key (e.g. every event "name").
  const std::set<std::string>& strings_for(const std::string& key) {
    return by_key_[key];
  }
  /// Raw number literals seen for a given key (e.g. every "tid").
  const std::set<std::string>& numbers_for(const std::string& key) {
    return by_key_[key];
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    std::string v;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        pos_ += 2;
        v += '?';  // escaped char; exact value irrelevant for validation
      } else {
        v += s_[pos_++];
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    if (out != nullptr) *out = v;
    return true;
  }
  bool number(std::string* out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (!digits) return false;
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      const std::size_t before = pos_;
      eat_digits();
      if (pos_ == before) return false;
    }
    if (out != nullptr) *out = s_.substr(start, pos_ - start);
    return true;
  }
  bool value(const std::string& key = "") {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      std::string v;
      if (!string(&v)) return false;
      if (!key.empty()) by_key_[key].insert(v);
      return true;
    }
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    std::string num;
    if (!number(&num)) return false;
    if (!key.empty()) by_key_[key].insert(num);
    return true;
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_++] != ':') return false;
      if (!value(key)) return false;
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return s_[pos_++] == '}';
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') return ++pos_, true;
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return s_[pos_++] == ']';
    }
  }

  std::string s_;
  std::size_t pos_ = 0;
  std::map<std::string, std::set<std::string>> by_key_;
};

}  // namespace fsi::testing
