/// Tests for the measurement layer: accumulator algebra, equal-time
/// observables against exact free-fermion results, and SPXX consistency
/// between the FSI-selected blocks and a dense inverse.

#include <gtest/gtest.h>

#include <cmath>

#include "fsi/dense/expm.hpp"
#include "fsi/dense/lu.hpp"
#include "fsi/pcyclic/explicit_inverse.hpp"
#include "fsi/qmc/greens.hpp"
#include "fsi/qmc/measurements.hpp"
#include "fsi/selinv/fsi.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using namespace fsi::qmc;

TEST(Measurements, MergeAndSerializeRoundTrip) {
  Measurements a(4, 3), b(4, 3);
  a.add_sample(1.0);
  a.add_density(0.5, 0.4);
  a.add_double_occupancy(0.2);
  a.add_kinetic_energy(-1.0);
  a.add_spxx(2, 1, 0.25);
  b.add_sample(-1.0);
  b.add_density(-0.1, -0.2);

  Measurements c = Measurements::deserialize(4, 3, a.serialize());
  c.merge(b);
  EXPECT_DOUBLE_EQ(c.samples(), 2.0);
  EXPECT_DOUBLE_EQ(c.avg_sign(), 0.0);
  // sign_sum = 0: estimators must not divide by zero.
  EXPECT_DOUBLE_EQ(c.density(), 0.0);

  Measurements d = Measurements::deserialize(4, 3, a.serialize());
  EXPECT_DOUBLE_EQ(d.avg_sign(), 1.0);
  EXPECT_DOUBLE_EQ(d.density_up(), 0.5);
  EXPECT_DOUBLE_EQ(d.density(), 0.9);
  EXPECT_DOUBLE_EQ(d.double_occupancy(), 0.2);
  EXPECT_DOUBLE_EQ(d.local_moment(), 0.9 - 0.4);
  EXPECT_DOUBLE_EQ(d.spxx(2, 1), 0.25);
}

TEST(Measurements, ShapeMismatchThrows) {
  Measurements a(4, 3), b(5, 3);
  EXPECT_THROW(a.merge(b), util::CheckError);
  EXPECT_THROW(Measurements::deserialize(4, 4, a.serialize()), util::CheckError);
  EXPECT_THROW(a.spxx(4, 0), util::CheckError);
}

/// Build the full FSI block set for one spin of one configuration.
struct Blocks {
  pcyclic::SelectedInversion diag, rows, cols;
};
Blocks fsi_blocks(const HubbardModel& model, const HsField& h, Spin spin,
                  index_t c, index_t q) {
  const pcyclic::PCyclicMatrix m = model.build_m(h, spin);
  const pcyclic::BlockOps ops(m);
  const pcyclic::Selection sel(m.num_blocks(), c, q);
  const auto reduced = selinv::cluster(m, c, q);
  const auto gtilde = bsofi::invert(reduced);
  return Blocks{
      selinv::wrap(ops, gtilde, pcyclic::Pattern::AllDiagonals, sel),
      selinv::wrap(ops, gtilde, pcyclic::Pattern::Rows, sel),
      selinv::wrap(ops, gtilde, pcyclic::Pattern::Columns, sel)};
}

TEST(EqualTimeObservables, UZeroMatchesExactFreeFermions) {
  // At U = 0: G is h-independent, n_sigma = 1 - tr(G)/N exactly, and
  // d = <n_up n_dn> = n_up * n_dn site-resolved.
  const index_t nx = 4, l = 8;
  HubbardParams p;
  p.t = 1.0;
  p.u = 0.0;
  p.beta = 2.0;
  p.l = l;
  HubbardModel model(Lattice::chain(nx), p);
  util::Rng rng(701);
  HsField h(l, nx, rng);

  Blocks up = fsi_blocks(model, h, Spin::Up, 4, 1);
  Blocks dn = fsi_blocks(model, h, Spin::Down, 4, 1);

  Measurements meas(l, model.lattice().num_distance_classes());
  meas.add_sample(1.0);
  accumulate_equal_time(model.lattice(), up.diag, dn.diag, p.t, 1.0, true, meas);

  // Exact: G = (I + e^{beta t K})^-1.
  Matrix kb(nx, nx);
  dense::copy(model.lattice().adjacency(), kb);
  dense::scal(p.t * p.beta, kb);
  Matrix a = dense::expm(kb);
  for (index_t d = 0; d < nx; ++d) a(d, d) += 1.0;
  Matrix g = dense::inverse(a);

  double n_exact = 0.0, docc_exact = 0.0, kin_exact = 0.0;
  for (index_t i = 0; i < nx; ++i) {
    n_exact += (1.0 - g(i, i));
    docc_exact += (1.0 - g(i, i)) * (1.0 - g(i, i));
    for (index_t j : model.lattice().neighbors(i))
      kin_exact += p.t * 2.0 * g(j, i);  // both spins
  }
  n_exact /= nx;
  docc_exact /= nx;
  kin_exact /= nx;

  EXPECT_NEAR(meas.density_up(), n_exact, 1e-9);
  EXPECT_NEAR(meas.density_down(), n_exact, 1e-9);
  EXPECT_NEAR(meas.double_occupancy(), docc_exact, 1e-9);
  EXPECT_NEAR(meas.kinetic_energy(), kin_exact, 1e-9);
  // Half filling at mu = 0: n = 1 by particle-hole symmetry.
  EXPECT_NEAR(meas.density(), 1.0, 1e-9);
}

TEST(EqualTimeObservables, AfStructureFactorUZeroMatchesWick) {
  // At U = 0, m_i = 0 per configuration and S_AF reduces to the pure Wick
  // term sum_ij s_i s_j sum_s (delta_ij - G(j,i)) G(i,j) / N with the exact
  // free-fermion G.
  const index_t l = 4;
  HubbardParams p;
  p.t = 1.0;
  p.u = 0.0;
  p.beta = 1.0;
  p.l = l;
  HubbardModel model(Lattice::rectangle(2, 2), p);  // N = 4, bipartite
  util::Rng rng(705);
  HsField h(l, 4, rng);

  Blocks up = fsi_blocks(model, h, Spin::Up, 2, 0);
  Blocks dn = fsi_blocks(model, h, Spin::Down, 2, 0);
  Measurements meas(l, model.lattice().num_distance_classes());
  meas.add_sample(1.0);
  accumulate_equal_time(model.lattice(), up.diag, dn.diag, p.t, 1.0, true, meas);

  Matrix kb(4, 4);
  dense::copy(model.lattice().adjacency(), kb);
  dense::scal(p.t * p.beta, kb);
  Matrix a = dense::expm(kb);
  for (index_t d = 0; d < 4; ++d) a(d, d) += 1.0;
  Matrix g = dense::inverse(a);

  double expected = 0.0;
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 4; ++j) {
      const double delta = (i == j) ? 1.0 : 0.0;
      expected += model.lattice().parity(i) * model.lattice().parity(j) * 2.0 *
                  (delta - g(j, i)) * g(i, j);
    }
  expected /= 4.0;
  EXPECT_NEAR(meas.af_structure_factor(), expected, 1e-9);
  EXPECT_GT(meas.af_structure_factor(), 0.0);  // Pauli correlations are AF
}

TEST(EqualTimeObservables, AfSerializeRoundTripsThroughBuffer) {
  Measurements a(3, 2);
  a.add_sample(1.0);
  a.add_af_structure_factor(0.375);
  Measurements b = Measurements::deserialize(3, 2, a.serialize());
  EXPECT_DOUBLE_EQ(b.af_structure_factor(), 0.375);
}

TEST(Spxx, MatchesDenseInverseComputation) {
  // SPXX accumulated from FSI rows+columns must equal the same double sum
  // evaluated from the blocks of a dense NL x NL inverse.
  const index_t nx = 3, l = 6, c = 2, q = 1;
  HubbardParams p;
  p.t = 1.0;
  p.u = 2.0;
  p.beta = 1.5;
  p.l = l;
  HubbardModel model(Lattice::chain(nx), p);
  util::Rng rng(702);
  HsField h(l, nx, rng);

  Blocks up = fsi_blocks(model, h, Spin::Up, c, q);
  Blocks dn = fsi_blocks(model, h, Spin::Down, c, q);
  const index_t dmax = model.lattice().num_distance_classes();

  Measurements meas(l, dmax);
  meas.add_sample(1.0);
  accumulate_spxx(model.lattice(), up.rows, up.cols, dn.rows, dn.cols, 1.0,
                  true, meas);

  // Dense reference.
  Matrix gu = pcyclic::full_inverse_dense(model.build_m(h, Spin::Up));
  Matrix gd = pcyclic::full_inverse_dense(model.build_m(h, Spin::Down));
  const pcyclic::Selection sel(l, c, q);
  const auto selected = sel.indices();
  const auto& sizes = model.lattice().distance_class_sizes();

  for (index_t tau = 0; tau < l; ++tau) {
    std::vector<double> ref(static_cast<std::size_t>(dmax), 0.0);
    for (index_t k : selected) {
      const index_t ell = ((k - tau) % l + l) % l;
      Matrix gu_kl = pcyclic::dense_block(gu, nx, k, ell);
      Matrix gd_lk = pcyclic::dense_block(gd, nx, ell, k);
      Matrix gd_kl = pcyclic::dense_block(gd, nx, k, ell);
      Matrix gu_lk = pcyclic::dense_block(gu, nx, ell, k);
      for (index_t j = 0; j < nx; ++j)
        for (index_t i = 0; i < nx; ++i)
          ref[static_cast<std::size_t>(
              model.lattice().distance_class(i, j))] +=
              gu_kl(i, j) * gd_lk(j, i) + gd_kl(i, j) * gu_lk(j, i);
    }
    for (index_t d = 0; d < dmax; ++d) {
      const double expected =
          ref[static_cast<std::size_t>(d)] /
          (2.0 * static_cast<double>(selected.size()) *
           static_cast<double>(sizes[static_cast<std::size_t>(d)]));
      EXPECT_NEAR(meas.spxx(tau, d), expected, 1e-9)
          << "tau=" << tau << " d=" << d;
    }
  }
}

TEST(Spxx, SerialAndParallelAgree) {
  const index_t nx = 3, l = 4;
  HubbardParams p;
  p.l = l;
  HubbardModel model(Lattice::chain(nx), p);
  util::Rng rng(703);
  HsField h(l, nx, rng);
  Blocks up = fsi_blocks(model, h, Spin::Up, 2, 0);
  Blocks dn = fsi_blocks(model, h, Spin::Down, 2, 0);
  const index_t dmax = model.lattice().num_distance_classes();

  Measurements par(l, dmax), ser(l, dmax);
  par.add_sample(1.0);
  ser.add_sample(1.0);
  accumulate_spxx(model.lattice(), up.rows, up.cols, dn.rows, dn.cols, 1.0,
                  true, par);
  accumulate_spxx(model.lattice(), up.rows, up.cols, dn.rows, dn.cols, 1.0,
                  false, ser);
  for (index_t tau = 0; tau < l; ++tau)
    for (index_t d = 0; d < dmax; ++d)
      EXPECT_NEAR(par.spxx(tau, d), ser.spxx(tau, d), 1e-13);
}

TEST(Spxx, MismatchedPatternsThrow) {
  const index_t nx = 2, l = 4;
  HubbardParams p;
  p.l = l;
  HubbardModel model(Lattice::chain(nx), p);
  util::Rng rng(704);
  HsField h(l, nx, rng);
  Blocks up = fsi_blocks(model, h, Spin::Up, 2, 0);
  Blocks dn = fsi_blocks(model, h, Spin::Down, 2, 1);  // different q!
  Measurements meas(l, model.lattice().num_distance_classes());
  EXPECT_THROW(accumulate_spxx(model.lattice(), up.rows, up.cols, dn.rows,
                               dn.cols, 1.0, true, meas),
               util::CheckError);
  EXPECT_THROW(accumulate_spxx(model.lattice(), up.cols, up.rows, dn.rows,
                               dn.cols, 1.0, true, meas),
               util::CheckError);
}

}  // namespace
