/// Tests for the checkerboard kinetic propagator (QUEST-style extension).

#include <gtest/gtest.h>

#include <cmath>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/expm.hpp"
#include "fsi/dense/norms.hpp"
#include "fsi/qmc/checkerboard.hpp"
#include "fsi/qmc/dqmc.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using namespace fsi::qmc;
using fsi::testing::expect_close;

TEST(Checkerboard, BondCountMatchesLattice) {
  CheckerboardExpK chain(Lattice::chain(6), 0.1);
  EXPECT_EQ(chain.num_bonds(), 6);  // periodic chain: N bonds
  CheckerboardExpK rect(Lattice::rectangle(4, 4), 0.1);
  EXPECT_EQ(rect.num_bonds(), 32);  // 2 N bonds on the periodic square
}

TEST(Checkerboard, SingleBondIsExact) {
  // Two sites, one bond: the checkerboard product IS e^{coeff K}.
  const double coeff = 0.3;
  CheckerboardExpK cb(Lattice::chain(2), coeff);
  Matrix k(2, 2);
  k(0, 1) = k(1, 0) = coeff;
  expect_close(cb.to_dense(), dense::expm(k), 1e-14, "single bond");
}

TEST(Checkerboard, ApplyMatchesDenseMultiply) {
  util::Rng rng(901);
  Lattice lat = Lattice::rectangle(3, 3);
  CheckerboardExpK cb(lat, 0.125);
  Matrix g = fsi::testing::random_matrix(9, 5, rng);
  Matrix expected = dense::matmul(cb.to_dense(), g);
  Matrix actual = g;
  cb.apply_left(actual);
  expect_close(actual, expected, 1e-13, "apply_left");
}

TEST(Checkerboard, InverseUndoesApply) {
  util::Rng rng(902);
  CheckerboardExpK cb(Lattice::rectangle(4, 3), 0.2);
  Matrix g = fsi::testing::random_matrix(12, 4, rng);
  Matrix round = g;
  cb.apply_left(round);
  cb.apply_inverse_left(round);
  expect_close(round, g, 1e-13, "B^-1 B g = g");
}

TEST(Checkerboard, TrotterErrorIsSecondOrder) {
  // || cb(dtau) - expm(dtau K) || = O(dtau^2): halving dtau should cut the
  // error by ~4x (between 3x and 6x allows higher-order contamination).
  Lattice lat = Lattice::rectangle(4, 4);
  Matrix k(16, 16);
  dense::copy(lat.adjacency(), k);

  auto error_at = [&](double dtau) {
    Matrix kd = Matrix::copy_of(k.view());
    dense::scal(dtau, kd);
    Matrix exact = dense::expm(kd);
    CheckerboardExpK cb(lat, dtau);
    return dense::fro_distance(cb.to_dense(), exact) /
           dense::frobenius_norm(exact);
  };

  const double e1 = error_at(0.2);
  const double e2 = error_at(0.1);
  EXPECT_GT(e1, 1e-6);  // there IS an approximation error
  const double ratio = e1 / e2;
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 6.0);
}

TEST(Checkerboard, SmallCoeffIsAccurateEnoughForDqmc) {
  // At DQMC-typical t*dtau ~ 0.01 the approximation error sits far below
  // the physical Trotter error of the simulation itself.
  Lattice lat = Lattice::rectangle(4, 4);
  Matrix kd(16, 16);
  dense::copy(lat.adjacency(), kd);
  dense::scal(0.01, kd);
  CheckerboardExpK cb(lat, 0.01);
  EXPECT_LT(dense::rel_fro_error(cb.to_dense(), dense::expm(kd)), 1e-3);
}

TEST(Checkerboard, HubbardModelKineticModeWorksEndToEnd) {
  // A model built with the checkerboard kinetic mode must behave like the
  // exact model up to the O(dtau^2) bond-split error, and its B-matrix
  // inverse identity must hold exactly (the inverse uses the same splitting).
  HubbardParams exact_p;
  exact_p.u = 2.0;
  exact_p.beta = 1.0;
  exact_p.l = 16;
  HubbardParams cb_p = exact_p;
  cb_p.kinetic = Kinetic::Checkerboard;

  Lattice lat = Lattice::rectangle(3, 3);
  HubbardModel exact(lat, exact_p);
  HubbardModel cb(lat, cb_p);

  // expK agrees to the splitting error ~ (t dtau)^2 * ||commutators||.
  EXPECT_LT(dense::rel_fro_error(cb.expk(), exact.expk()), 3e-2);
  EXPECT_GT(dense::rel_fro_error(cb.expk(), exact.expk()), 1e-5);
  // B * B^-1 = I holds exactly for the checkerboard realisation too.
  util::Rng rng(903);
  HsField h(16, 9, rng);
  Matrix prod = dense::matmul(cb.b_matrix(h, 3, Spin::Up),
                              cb.b_matrix_inv(h, 3, Spin::Up));
  expect_close(prod, Matrix::identity(9), 1e-12, "checkerboard B B^-1");
}

TEST(Checkerboard, DqmcObservablesCloseToExactKinetic) {
  // Full DQMC with both kinetic modes: same seed, observables within the
  // splitting error + Monte Carlo noise envelope.
  HubbardParams p;
  p.u = 2.0;
  p.beta = 1.0;
  p.l = 8;
  Lattice lat = Lattice::rectangle(2, 2);

  auto run = [&](Kinetic k) {
    HubbardParams q = p;
    q.kinetic = k;
    HubbardModel model(lat, q);
    qmc::DqmcOptions opt;
    opt.warmup_sweeps = 10;
    opt.measurement_sweeps = 40;
    opt.cluster_size = 4;
    opt.measure_time_dependent = false;
    opt.seed = 9;
    return qmc::run_dqmc(model, opt);
  };
  auto exact = run(Kinetic::Exact);
  auto cb = run(Kinetic::Checkerboard);
  EXPECT_NEAR(exact.measurements.density(), cb.measurements.density(), 0.1);
  EXPECT_NEAR(exact.measurements.double_occupancy(),
              cb.measurements.double_occupancy(), 0.05);
}

TEST(Checkerboard, DimensionMismatchThrows) {
  CheckerboardExpK cb(Lattice::chain(4), 0.1);
  Matrix wrong(3, 3);
  dense::MatrixView v = wrong;
  EXPECT_THROW(cb.apply_left(v), util::CheckError);
}

}  // namespace
