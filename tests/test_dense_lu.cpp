/// Unit tests for the LU factorisation family (getrf/getrs/getri),
/// determinant bookkeeping and the condition estimator.

#include <gtest/gtest.h>

#include <cmath>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/lu.hpp"
#include "fsi/dense/norms.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using namespace fsi::dense;
using fsi::testing::expect_close;
using fsi::testing::random_dd_matrix;
using fsi::testing::random_matrix;

class LuSizes : public ::testing::TestWithParam<index_t> {};

TEST_P(LuSizes, SolveResidualIsSmall) {
  const index_t n = GetParam();
  util::Rng rng(3, static_cast<std::uint64_t>(n));
  Matrix a = random_matrix(n, n, rng);
  LuFactorization lu = LuFactorization::of(a);

  Matrix b = random_matrix(n, 7, rng);
  Matrix x = b;
  lu.solve(x);
  Matrix ax(n, 7);
  gemm(Trans::No, Trans::No, 1.0, a, x, 0.0, ax);
  expect_close(ax, b, 1e-10, "A x = b");
}

TEST_P(LuSizes, TransposedSolve) {
  const index_t n = GetParam();
  util::Rng rng(4, static_cast<std::uint64_t>(n));
  Matrix a = random_matrix(n, n, rng);
  LuFactorization lu = LuFactorization::of(a);

  Matrix b = random_matrix(n, 3, rng);
  Matrix x = b;
  lu.solve(Trans::Yes, x);
  Matrix atx(n, 3);
  gemm(Trans::Yes, Trans::No, 1.0, a, x, 0.0, atx);
  expect_close(atx, b, 1e-10, "A^T x = b");
}

TEST_P(LuSizes, RightSolve) {
  const index_t n = GetParam();
  util::Rng rng(5, static_cast<std::uint64_t>(n));
  Matrix a = random_matrix(n, n, rng);
  LuFactorization lu = LuFactorization::of(a);

  Matrix b = random_matrix(5, n, rng);
  Matrix x = b;
  lu.solve_right(x);
  Matrix xa(5, n);
  gemm(Trans::No, Trans::No, 1.0, x, a, 0.0, xa);
  expect_close(xa, b, 1e-10, "x A = b");
}

TEST_P(LuSizes, InverseTimesMatrixIsIdentity) {
  const index_t n = GetParam();
  util::Rng rng(6, static_cast<std::uint64_t>(n));
  Matrix a = random_matrix(n, n, rng);
  Matrix ainv = inverse(a);
  Matrix prod = matmul(a, ainv);
  expect_close(prod, Matrix::identity(n), 1e-9, "A A^-1");
  Matrix prod2 = matmul(ainv, a);
  expect_close(prod2, Matrix::identity(n), 1e-9, "A^-1 A");
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSizes,
                         ::testing::Values(1, 2, 5, 17, 64, 65, 129, 300));

TEST(Lu, FactorsReproduceMatrix) {
  // Reconstruct P^T L U and compare with A.
  const index_t n = 90;
  util::Rng rng(7);
  Matrix a = random_matrix(n, n, rng);
  LuFactorization lu = LuFactorization::of(a);

  Matrix l = Matrix::identity(n), u(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j + 1; i < n; ++i) l(i, j) = lu.factors()(i, j);
    for (index_t i = 0; i <= j; ++i) u(i, j) = lu.factors()(i, j);
  }
  Matrix pa = matmul(l, u);
  // Undo the pivoting: apply swaps in reverse to rows of PA.
  for (index_t i = n - 1; i >= 0; --i) {
    const index_t p = lu.pivots()[i];
    if (p == i) continue;
    for (index_t c = 0; c < n; ++c) std::swap(pa(i, c), pa(p, c));
  }
  expect_close(pa, a, 1e-11, "P^T L U = A");
}

TEST(Lu, DeterminantOfKnownMatrix) {
  // det([[2, 1], [1, 3]]) = 5.
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  LuFactorization lu = LuFactorization::of(a);
  EXPECT_NEAR(lu.sign_det() * std::exp(lu.log_abs_det()), 5.0, 1e-12);
}

TEST(Lu, DeterminantSignOfPermutation) {
  // A row-swapped identity has determinant -1.
  Matrix a(3, 3);
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(2, 2) = 1;
  LuFactorization lu = LuFactorization::of(a);
  EXPECT_EQ(lu.sign_det(), -1);
  EXPECT_NEAR(lu.log_abs_det(), 0.0, 1e-14);
}

TEST(Lu, SingularMatrixThrows) {
  Matrix a(3, 3);  // all zeros
  EXPECT_THROW(LuFactorization::of(a), util::CheckError);
}

TEST(Lu, NonSquareThrows) {
  EXPECT_THROW(LuFactorization(Matrix(3, 4)), util::CheckError);
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  LuFactorization lu = LuFactorization::of(a);
  Matrix b(2, 1);
  b(0, 0) = 3;
  b(1, 0) = 4;
  Matrix x = b;
  lu.solve(x);
  EXPECT_NEAR(x(0, 0), 4.0, 1e-14);
  EXPECT_NEAR(x(1, 0), 3.0, 1e-14);
}

TEST(Lu, ConditionEstimateIsInRightBallpark) {
  // diag(1, 1e-4) has kappa_1 = 1e4 exactly.
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 1e-4;
  LuFactorization lu = LuFactorization::of(a);
  const double est = cond1_estimate(lu, one_norm(a));
  EXPECT_GT(est, 1e3);
  EXPECT_LT(est, 1e5);
}

TEST(Lu, DiagonallyDominantIsStable) {
  const index_t n = 200;
  util::Rng rng(9);
  Matrix a = random_dd_matrix(n, rng);
  Matrix ainv = inverse(a);
  expect_close(matmul(a, ainv), Matrix::identity(n), 1e-12, "dd inverse");
}

// ---- scalar-generic suite: the LU family at both widths ------------------
// The fp32 instantiation backs BlockOpsF (mixed-precision WRP walks).

template <typename T>
class TypedLu : public ::testing::Test {};
using Scalars = ::testing::Types<double, float>;
TYPED_TEST_SUITE(TypedLu, Scalars);

TYPED_TEST(TypedLu, SolvesAllThreeModes) {
  using T = TypeParam;
  const index_t n = 37;
  util::Rng rng(61, static_cast<std::uint64_t>(n));
  BasicMatrix<T> a = fsi::testing::random_dd_matrix_t<T>(n, rng);
  BasicLuFactorization<T> lu = BasicLuFactorization<T>::of(a);

  BasicMatrix<T> b = fsi::testing::random_matrix_t<T>(n, 5, rng);
  BasicMatrix<T> x = b;
  lu.solve(x);
  BasicMatrix<T> ax(n, 5);
  gemm(Trans::No, Trans::No, T(1), a, x, T(0), ax);
  fsi::testing::expect_close(ax, b, fsi::testing::Tol<T>::tight, "typed Ax=b");

  x = b;
  lu.solve(Trans::Yes, x);
  gemm(Trans::Yes, Trans::No, T(1), a, x, T(0), ax);
  fsi::testing::expect_close(ax, b, fsi::testing::Tol<T>::tight,
                             "typed A^Tx=b");

  BasicMatrix<T> br = fsi::testing::random_matrix_t<T>(5, n, rng);
  BasicMatrix<T> xr = br;
  lu.solve_right(xr);
  BasicMatrix<T> xa(5, n);
  gemm(Trans::No, Trans::No, T(1), xr, a, T(0), xa);
  fsi::testing::expect_close(xa, br, fsi::testing::Tol<T>::tight,
                             "typed xA=b");
}

TYPED_TEST(TypedLu, InverseRoundTripsAndSingularThrows) {
  using T = TypeParam;
  const index_t n = 48;
  util::Rng rng(62);
  BasicMatrix<T> a = fsi::testing::random_dd_matrix_t<T>(n, rng);
  BasicMatrix<T> ainv = BasicLuFactorization<T>::of(a).inverse();
  fsi::testing::expect_close(matmul(a, ainv), BasicMatrix<T>::identity(n),
                             fsi::testing::Tol<T>::loose, "typed A A^-1 = I");
  EXPECT_THROW(BasicLuFactorization<T>(BasicMatrix<T>(3, 3)),
               util::CheckError);
}

}  // namespace
