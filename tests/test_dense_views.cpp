/// Tests that every dense kernel honours non-compact leading dimensions —
/// the FSI code paths constantly hand kernels N x N sub-blocks of larger
/// (bN x bN or NL x NL) matrices, so ld > rows is the common case, not the
/// exception.

#include <gtest/gtest.h>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/lu.hpp"
#include "fsi/dense/norms.hpp"
#include "fsi/dense/qr.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using namespace fsi::dense;
using fsi::testing::expect_close;
using fsi::testing::naive_gemm;
using fsi::testing::random_matrix;

/// Host matrix with a marked interior window; checks writes stay inside.
struct Window {
  Matrix host;
  index_t i0, j0, m, n;

  Window(index_t hm, index_t hn, index_t i0_, index_t j0_, index_t m_,
         index_t n_, std::uint64_t seed)
      : host(hm, hn), i0(i0_), j0(j0_), m(m_), n(n_) {
    util::Rng rng(seed);
    for (index_t j = 0; j < hn; ++j)
      for (index_t i = 0; i < hm; ++i) host(i, j) = rng.uniform(-1, 1);
    snapshot = host;
  }

  MatrixView view() { return host.block(i0, j0, m, n); }
  ConstMatrixView cview() const { return host.block(i0, j0, m, n); }

  /// All entries outside the window are untouched.
  void expect_frame_intact() const {
    for (index_t j = 0; j < host.cols(); ++j)
      for (index_t i = 0; i < host.rows(); ++i) {
        const bool inside =
            i >= i0 && i < i0 + m && j >= j0 && j < j0 + n;
        if (!inside) {
          ASSERT_EQ(host(i, j), snapshot(i, j))
              << "frame corrupted at (" << i << "," << j << ")";
        }
      }
  }

  Matrix snapshot;
};

TEST(Views, GemmReadsAndWritesThroughStrides) {
  // Large enough to hit the packed parallel path.
  Window wa(200, 300, 7, 11, 130, 257, 1);
  Window wb(300, 200, 3, 5, 257, 126, 2);
  Window wc(160, 140, 9, 4, 130, 126, 3);

  Matrix a = Matrix::copy_of(wa.cview());
  Matrix b = Matrix::copy_of(wb.cview());
  Matrix c_ref = Matrix::copy_of(wc.cview());
  naive_gemm(Trans::No, Trans::No, 1.5, a, b, -0.5, c_ref);

  gemm(Trans::No, Trans::No, 1.5, wa.cview(), wb.cview(), -0.5, wc.view());
  expect_close(wc.cview(), c_ref, 1e-12, "strided gemm");
  wc.expect_frame_intact();
  wa.expect_frame_intact();
  wb.expect_frame_intact();
}

TEST(Views, GemmTransposedStridedOperands) {
  Window wa(300, 200, 2, 2, 257, 90, 4);   // op(A) = A^T: 90 x 257
  Window wb(250, 300, 1, 6, 101, 257, 5);  // op(B) = B^T: 257 x 101
  Window wc(100, 110, 5, 3, 90, 101, 6);

  Matrix c_ref = Matrix::copy_of(wc.cview());
  naive_gemm(Trans::Yes, Trans::Yes, 1.0, Matrix::copy_of(wa.cview()),
             Matrix::copy_of(wb.cview()), 1.0, c_ref);
  gemm(Trans::Yes, Trans::Yes, 1.0, wa.cview(), wb.cview(), 1.0, wc.view());
  expect_close(wc.cview(), c_ref, 1e-12, "strided gemm TT");
  wc.expect_frame_intact();
}

TEST(Views, TrsmOnSubBlocks) {
  util::Rng rng(7);
  Matrix host(120, 120);
  for (index_t j = 0; j < 120; ++j)
    for (index_t i = 0; i < 120; ++i) host(i, j) = rng.uniform(-1, 1);
  MatrixView a = host.block(10, 10, 90, 90);
  for (index_t i = 0; i < 90; ++i) a(i, i) = 3.0 + rng.uniform();

  Window wb(130, 40, 15, 2, 90, 21, 8);
  Matrix b0 = Matrix::copy_of(wb.cview());
  trsm(Side::Left, Uplo::Upper, Trans::No, Diag::NonUnit, 1.0, a, wb.view());
  // Multiply back with trmm on the same strided views.
  Matrix x = Matrix::copy_of(wb.cview());
  trmm(Side::Left, Uplo::Upper, Trans::No, Diag::NonUnit, 1.0, a, x);
  expect_close(x, b0, 1e-10, "strided trsm round trip");
  wb.expect_frame_intact();
}

TEST(Views, CopyTransposeIdentityHelpers) {
  Window src(60, 50, 4, 3, 33, 21, 9);
  Matrix dst_host(70, 70);
  MatrixView dst = dst_host.block(5, 6, 21, 33);
  transpose_into(src.cview(), dst);
  for (index_t j = 0; j < 21; ++j)
    for (index_t i = 0; i < 33; ++i)
      ASSERT_EQ(dst(j, i), src.cview()(i, j));

  MatrixView sq = dst_host.block(40, 40, 20, 20);
  set_identity(sq);
  EXPECT_EQ(sq(3, 3), 1.0);
  EXPECT_EQ(sq(3, 4), 0.0);
  EXPECT_EQ(dst_host(39, 40), 0.0);  // outside untouched (zero-init host)
}

TEST(Views, BlockOfBlockComposes) {
  util::Rng rng(10);
  Matrix host = random_matrix(40, 40, rng);
  ConstMatrixView outer = host.block(4, 8, 30, 30);
  ConstMatrixView inner = outer.block(2, 3, 5, 5);
  for (index_t j = 0; j < 5; ++j)
    for (index_t i = 0; i < 5; ++i)
      ASSERT_EQ(inner(i, j), host(4 + 2 + i, 8 + 3 + j));
}

TEST(Views, LuSolveIntoStridedRhs) {
  util::Rng rng(11);
  Matrix a = fsi::testing::random_dd_matrix(50, rng);
  LuFactorization lu = LuFactorization::of(a);

  Window wb(80, 30, 12, 4, 50, 9, 12);
  Matrix b0 = Matrix::copy_of(wb.cview());
  lu.solve(wb.view());
  Matrix ax(50, 9);
  gemm(Trans::No, Trans::No, 1.0, a, wb.cview(), 0.0, ax);
  expect_close(ax, b0, 1e-10, "strided LU solve");
  wb.expect_frame_intact();
}

TEST(Views, OrmqrOnStridedC) {
  util::Rng rng(13);
  Matrix a = random_matrix(60, 25, rng);
  QrFactorization qr(Matrix::copy_of(a));

  Window wc(90, 40, 8, 7, 60, 12, 14);
  Matrix c0 = Matrix::copy_of(wc.cview());
  qr.apply_q(Side::Left, Trans::Yes, wc.view());
  // Undo with Q.
  qr.apply_q(Side::Left, Trans::No, wc.view());
  expect_close(wc.cview(), c0, 1e-11, "Q Q^T C on strided C");
  wc.expect_frame_intact();
}

}  // namespace
