/// Unit tests for the Level-1/2/3 kernels against naive references,
/// including a parameterised sweep over the sizes / transposes / scalars
/// that exercise both the small serial path and the packed parallel path.

#include <gtest/gtest.h>

#include <limits>
#include <tuple>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/norms.hpp"
#include "fsi/util/flops.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using namespace fsi::dense;
using fsi::testing::expect_close;
using fsi::testing::naive_gemm;
using fsi::testing::random_matrix;

struct GemmCase {
  index_t m, n, k;
  Trans ta, tb;
  double alpha, beta;
};

std::string gemm_case_name(const ::testing::TestParamInfo<GemmCase>& info) {
  const auto& p = info.param;
  std::string s = "m" + std::to_string(p.m) + "n" + std::to_string(p.n) + "k" +
                  std::to_string(p.k);
  s += (p.ta == Trans::No) ? "N" : "T";
  s += (p.tb == Trans::No) ? "N" : "T";
  s += "_i" + std::to_string(info.index);
  return s;
}

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesNaiveReference) {
  const GemmCase p = GetParam();
  util::Rng rng(42, static_cast<std::uint64_t>(p.m * 131 + p.n * 17 + p.k));
  Matrix a = (p.ta == Trans::No) ? random_matrix(p.m, p.k, rng)
                                 : random_matrix(p.k, p.m, rng);
  Matrix b = (p.tb == Trans::No) ? random_matrix(p.k, p.n, rng)
                                 : random_matrix(p.n, p.k, rng);
  Matrix c = random_matrix(p.m, p.n, rng);
  Matrix c_ref = c;

  gemm(p.ta, p.tb, p.alpha, a, b, p.beta, c);
  naive_gemm(p.ta, p.tb, p.alpha, a, b, p.beta, c_ref);
  expect_close(c, c_ref, 1e-12, "gemm");
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmTest,
    ::testing::Values(
        // Small path (below the parallel threshold).
        GemmCase{1, 1, 1, Trans::No, Trans::No, 1.0, 0.0},
        GemmCase{3, 5, 7, Trans::No, Trans::No, 2.0, 0.5},
        GemmCase{8, 6, 256, Trans::No, Trans::No, 1.0, 1.0},
        GemmCase{17, 23, 31, Trans::Yes, Trans::No, -1.0, 1.0},
        GemmCase{17, 23, 31, Trans::No, Trans::Yes, 1.0, 0.0},
        GemmCase{17, 23, 31, Trans::Yes, Trans::Yes, 0.5, 2.0},
        // Parallel packed path (>= 2^21 flops), incl. non-multiple-of-tile
        // edges and k crossing the KC=256 blocking boundary.
        GemmCase{128, 128, 128, Trans::No, Trans::No, 1.0, 0.0},
        GemmCase{130, 126, 257, Trans::No, Trans::No, 1.0, 1.0},
        GemmCase{130, 126, 257, Trans::Yes, Trans::No, -2.0, 0.0},
        GemmCase{130, 126, 257, Trans::No, Trans::Yes, 1.0, -1.0},
        GemmCase{130, 126, 257, Trans::Yes, Trans::Yes, 3.0, 0.25},
        GemmCase{97, 203, 511, Trans::No, Trans::No, 1.0, 0.0},
        GemmCase{256, 64, 520, Trans::Yes, Trans::Yes, 1.0, 1.0}),
    gemm_case_name);

TEST(Gemm, ZeroSizedOperandsAreNoOps) {
  Matrix a(0, 5), b(5, 0), c(0, 0);
  EXPECT_NO_THROW(gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, c));

  util::Rng rng(1);
  Matrix a2 = random_matrix(4, 0, rng);
  Matrix b2 = random_matrix(0, 3, rng);
  Matrix c2 = random_matrix(4, 3, rng);
  Matrix c2_before = c2;
  gemm(Trans::No, Trans::No, 1.0, a2, b2, 1.0, c2);  // k = 0: C unchanged
  expect_close(c2, c2_before, 0.0, "k=0 gemm");
}

TEST(Gemm, BetaZeroOverwritesNaNs) {
  // beta = 0 must overwrite even non-finite C contents (BLAS semantics).
  Matrix a = Matrix::identity(4);
  Matrix b = Matrix::identity(4);
  Matrix c(4, 4);
  c.fill(std::numeric_limits<double>::quiet_NaN());
  gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, c);
  expect_close(c, Matrix::identity(4), 0.0, "beta=0");
}

TEST(Gemm, DimensionMismatchThrows) {
  Matrix a(3, 4), b(5, 6), c(3, 6);
  EXPECT_THROW(gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, c), util::CheckError);
}

TEST(Gemm, CountsTwoMnkFlops) {
  Matrix a(32, 48), b(48, 16), c(32, 16);
  util::flops::Scope scope;
  gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, c);
  EXPECT_EQ(scope.elapsed(), 2ull * 32 * 48 * 16);
}

TEST(Gemv, BothTransposes) {
  util::Rng rng(7);
  Matrix a = random_matrix(13, 9, rng);
  std::vector<double> x(13), y9(9), x9(9), y13(13);
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto& v : x9) v = rng.uniform(-1, 1);
  for (auto& v : y9) v = rng.uniform(-1, 1);
  for (auto& v : y13) v = rng.uniform(-1, 1);

  // y := 2 A^T x + 0.5 y
  std::vector<double> yref = y9;
  for (index_t j = 0; j < 9; ++j) {
    double dot = 0;
    for (index_t i = 0; i < 13; ++i) dot += a(i, j) * x[i];
    yref[j] = 2.0 * dot + 0.5 * y9[j];
  }
  gemv(Trans::Yes, 2.0, a, x.data(), 0.5, y9.data());
  for (index_t j = 0; j < 9; ++j) EXPECT_NEAR(y9[j], yref[j], 1e-13);

  // y := A x
  std::vector<double> yref2(13, 0.0);
  for (index_t j = 0; j < 9; ++j)
    for (index_t i = 0; i < 13; ++i) yref2[i] += a(i, j) * x9[j];
  gemv(Trans::No, 1.0, a, x9.data(), 0.0, y13.data());
  for (index_t i = 0; i < 13; ++i) EXPECT_NEAR(y13[i], yref2[i], 1e-13);
}

TEST(Ger, RankOneUpdate) {
  util::Rng rng(8);
  Matrix a = random_matrix(6, 4, rng);
  Matrix ref = a;
  std::vector<double> x(6), y(4);
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (auto& v : y) v = rng.uniform(-1, 1);
  ger(-1.5, x.data(), y.data(), a);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 6; ++i)
      EXPECT_NEAR(a(i, j), ref(i, j) - 1.5 * x[i] * y[j], 1e-14);
}

struct TrsmCase {
  Side side;
  Uplo uplo;
  Trans trans;
  Diag diag;
  index_t n, m;
};

using TrsmParam = std::tuple<Side, Uplo, Trans, Diag, index_t, index_t>;

class TrsmTest : public ::testing::TestWithParam<TrsmParam> {};

TEST_P(TrsmTest, SolveThenMultiplyRoundTrips) {
  const auto& t = GetParam();
  const TrsmCase p{std::get<0>(t), std::get<1>(t), std::get<2>(t),
                   std::get<3>(t), std::get<4>(t), std::get<5>(t)};
  util::Rng rng(11, static_cast<std::uint64_t>(p.n * 1000 + p.m));
  // Well-conditioned triangular A.  Unit-diagonal triangulars with O(1)
  // off-diagonals are exponentially ill-conditioned, so damp the
  // off-diagonal part; the nonunit case gets a boosted diagonal instead.
  Matrix a = random_matrix(p.n, p.n, rng);
  const double damp = (p.diag == Diag::Unit) ? 4.0 / p.n : 1.0;
  scal(damp, a);
  for (index_t i = 0; i < p.n; ++i) a(i, i) = 2.0 + rng.uniform();

  const index_t brows = (p.side == Side::Left) ? p.n : p.m;
  const index_t bcols = (p.side == Side::Left) ? p.m : p.n;
  Matrix b = random_matrix(brows, bcols, rng);
  Matrix x = b;
  trsm(p.side, p.uplo, p.trans, p.diag, 2.0, a, x);

  // Multiply back with trmm and compare against 2 * B.
  Matrix back = x;
  trmm(p.side, p.uplo, p.trans, p.diag, 1.0, a, back);
  Matrix twob = b;
  scal(2.0, twob);
  expect_close(back, twob, 1e-11, "trsm/trmm round trip");
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, TrsmTest,
    ::testing::Combine(::testing::Values(Side::Left, Side::Right),
                       ::testing::Values(Uplo::Lower, Uplo::Upper),
                       ::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(Diag::NonUnit, Diag::Unit),
                       ::testing::Values(index_t{37}, index_t{150}),
                       ::testing::Values(index_t{21})),
    [](const auto& info) {
      const auto& p = info.param;
      std::string s;
      s += (std::get<0>(p) == Side::Left) ? "L" : "R";
      s += (std::get<1>(p) == Uplo::Lower) ? "lo" : "up";
      s += (std::get<2>(p) == Trans::No) ? "N" : "T";
      s += (std::get<3>(p) == Diag::NonUnit) ? "n" : "u";
      s += std::to_string(std::get<4>(p));
      return s;
    });

TEST(Trtri, InverseOfTriangularIsInverse) {
  util::Rng rng(13);
  for (index_t n : {5, 64, 130}) {
    for (Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
      Matrix a = fsi::testing::random_matrix(n, n, rng);
      for (index_t i = 0; i < n; ++i) a(i, i) = 2.0 + rng.uniform();
      // Zero the opposite triangle to build an explicit triangular matrix.
      Matrix t(n, n);
      for (index_t j = 0; j < n; ++j)
        for (index_t i = 0; i < n; ++i)
          if ((uplo == Uplo::Upper && i <= j) || (uplo == Uplo::Lower && i >= j))
            t(i, j) = a(i, j);
      Matrix tinv = t;
      MatrixView tv = tinv;
      trtri(uplo, Diag::NonUnit, tv);
      Matrix prod = matmul(t, tinv);
      expect_close(prod, Matrix::identity(n), 1e-11, "trtri");
    }
  }
}

TEST(Trtri, RespectsGarbageInOppositeTriangle) {
  // trtri on packed storage (e.g. LU output) must not read the other
  // triangle.  Fill it with NaNs and check the result is still finite/right.
  util::Rng rng(14);
  const index_t n = 150;
  Matrix t(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < j; ++i) t(i, j) = rng.uniform(-1, 1);
    t(j, j) = 2.0 + rng.uniform();
    for (index_t i = j + 1; i < n; ++i) t(i, j) = std::numeric_limits<double>::quiet_NaN();
  }
  Matrix packed = t;
  MatrixView pv = packed;
  trtri(Uplo::Upper, Diag::NonUnit, pv);

  Matrix clean_t(n, n), clean_inv(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= j; ++i) {
      clean_t(i, j) = t(i, j);
      clean_inv(i, j) = packed(i, j);
    }
  Matrix prod = matmul(clean_t, clean_inv);
  expect_close(prod, Matrix::identity(n), 1e-11, "trtri packed");
}

TEST(Scal, ScalesEverything) {
  util::Rng rng(15);
  Matrix a = fsi::testing::random_matrix(7, 3, rng);
  Matrix ref = a;
  scal(-0.25, a);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 7; ++i) EXPECT_DOUBLE_EQ(a(i, j), -0.25 * ref(i, j));
}

// ---- scalar-generic suites: the same kernels at both widths --------------
// The fp64 suites above pin the numerics; these pin the float instantiation
// of every Level-1/2/3 template the mixed-precision CLS/WRP path uses.

template <typename T>
class TypedBlas : public ::testing::Test {};
using Scalars = ::testing::Types<double, float>;
TYPED_TEST_SUITE(TypedBlas, Scalars);

TYPED_TEST(TypedBlas, GemmMatchesNaiveAllTransposes) {
  using T = TypeParam;
  using fsi::testing::naive_gemm_t;
  using fsi::testing::random_matrix_t;
  const index_t m = 33, n = 17, k = 29;
  for (Trans ta : {Trans::No, Trans::Yes}) {
    for (Trans tb : {Trans::No, Trans::Yes}) {
      util::Rng rng(42, static_cast<std::uint64_t>(ta == Trans::Yes) * 2 +
                            static_cast<std::uint64_t>(tb == Trans::Yes));
      BasicMatrix<T> a = (ta == Trans::No) ? random_matrix_t<T>(m, k, rng)
                                           : random_matrix_t<T>(k, m, rng);
      BasicMatrix<T> b = (tb == Trans::No) ? random_matrix_t<T>(k, n, rng)
                                           : random_matrix_t<T>(n, k, rng);
      BasicMatrix<T> c = random_matrix_t<T>(m, n, rng);
      BasicMatrix<T> c_ref = c;
      gemm(ta, tb, T(0.5), a, b, T(-1), c);
      naive_gemm_t<T>(ta, tb, T(0.5), a, b, T(-1), c_ref);
      fsi::testing::expect_close(c, c_ref, fsi::testing::Tol<T>::tight,
                                 "typed gemm");
    }
  }
}

TYPED_TEST(TypedBlas, GemmParallelPathMatchesNaive) {
  // Big enough to cross the packed parallel threshold at both widths.
  using T = TypeParam;
  const index_t m = 190, n = 170, k = 150;
  util::Rng rng(43);
  BasicMatrix<T> a = fsi::testing::random_matrix_t<T>(m, k, rng);
  BasicMatrix<T> b = fsi::testing::random_matrix_t<T>(k, n, rng);
  BasicMatrix<T> c(m, n);
  BasicMatrix<T> c_ref(m, n);
  gemm(Trans::No, Trans::No, T(1), a, b, T(0), c);
  fsi::testing::naive_gemm_t<T>(Trans::No, Trans::No, T(1), a, b, T(0), c_ref);
  fsi::testing::expect_close(c, c_ref, fsi::testing::Tol<T>::tight,
                             "typed parallel gemm");
}

TYPED_TEST(TypedBlas, TrsmTrmmRoundTrip) {
  using T = TypeParam;
  const index_t n = 41, m = 13;
  for (Side side : {Side::Left, Side::Right}) {
    for (Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
      for (Trans trans : {Trans::No, Trans::Yes}) {
        util::Rng rng(44, static_cast<std::uint64_t>(side == Side::Right) * 4 +
                              static_cast<std::uint64_t>(uplo == Uplo::Upper) *
                                  2 +
                              static_cast<std::uint64_t>(trans == Trans::Yes));
        BasicMatrix<T> a = fsi::testing::random_matrix_t<T>(n, n, rng);
        for (index_t i = 0; i < n; ++i)
          a(i, i) = T(2) + static_cast<T>(rng.uniform());
        const index_t brows = (side == Side::Left) ? n : m;
        const index_t bcols = (side == Side::Left) ? m : n;
        BasicMatrix<T> b = fsi::testing::random_matrix_t<T>(brows, bcols, rng);
        BasicMatrix<T> x = b;
        trsm(side, uplo, trans, Diag::NonUnit, T(1), a, x);
        trmm(side, uplo, trans, Diag::NonUnit, T(1), a, x);
        fsi::testing::expect_close(x, b, fsi::testing::Tol<T>::tight,
                                   "typed trsm/trmm");
      }
    }
  }
}

TYPED_TEST(TypedBlas, GemvGerScalAgreeWithReference) {
  using T = TypeParam;
  const index_t m = 19, n = 11;
  util::Rng rng(45);
  BasicMatrix<T> a = fsi::testing::random_matrix_t<T>(m, n, rng);
  std::vector<T> x(static_cast<std::size_t>(n)), y(static_cast<std::size_t>(m));
  for (auto& v : x) v = static_cast<T>(rng.uniform(-1.0, 1.0));
  for (auto& v : y) v = static_cast<T>(rng.uniform(-1.0, 1.0));

  // gemv vs explicit loops.
  std::vector<T> y_ref = y;
  for (index_t i = 0; i < m; ++i) {
    T dot = T(0);
    for (index_t j = 0; j < n; ++j)
      dot += a(i, j) * x[static_cast<std::size_t>(j)];
    y_ref[static_cast<std::size_t>(i)] =
        T(2) * dot + y_ref[static_cast<std::size_t>(i)];
  }
  gemv(Trans::No, T(2), a, x.data(), T(1), y.data());
  for (index_t i = 0; i < m; ++i)
    EXPECT_NEAR(static_cast<double>(y[static_cast<std::size_t>(i)]),
                static_cast<double>(y_ref[static_cast<std::size_t>(i)]),
                fsi::testing::Tol<T>::tight);

  // ger then scal round trip: A' = s * (A + alpha x y^T).
  BasicMatrix<T> u = a;
  ger(T(-1.5), y.data(), x.data(), u);
  scal(T(-2), u);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      EXPECT_NEAR(static_cast<double>(u(i, j)),
                  -2.0 * (static_cast<double>(a(i, j)) -
                          1.5 * static_cast<double>(y[static_cast<std::size_t>(
                                    i)]) *
                              static_cast<double>(x[static_cast<std::size_t>(
                                  j)])),
                  fsi::testing::Tol<T>::tight);
}

}  // namespace
