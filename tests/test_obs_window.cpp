/// Tests for the windowed-histogram layer of obs::metrics: empty-window
/// zeros, percentile estimates against known samples, deterministic
/// rollover driven by explicit timestamps, and consistency with the
/// lifetime histogram that record_windowed also feeds.

#include <gtest/gtest.h>

#include <cstdint>

#include "fsi/obs/metrics.hpp"

namespace {

namespace m = fsi::obs::metrics;

constexpr std::int64_t kSecond = 1'000'000'000;

/// Fresh window + lifetime state per test (same histogram throughout).
struct WindowFixture : ::testing::Test {
  static constexpr m::Hist kHist = m::Hist::ServeLatency;
  void SetUp() override {
    m::reset(kHist);
    m::reset_window(kHist);
  }
  void TearDown() override {
    m::reset(kHist);
    m::reset_window(kHist);
  }
};

TEST_F(WindowFixture, EmptyWindowIsAllZeros) {
  const m::WindowSnapshot w = m::window(kHist, 123 * kSecond);
  EXPECT_EQ(w.count, 0u);
  EXPECT_EQ(w.sum, 0.0);
  EXPECT_EQ(w.min, 0.0);
  EXPECT_EQ(w.max, 0.0);
  EXPECT_EQ(w.p50, 0.0);
  EXPECT_EQ(w.p95, 0.0);
  EXPECT_EQ(w.p99, 0.0);
  EXPECT_EQ(w.mean(), 0.0);
}

TEST_F(WindowFixture, SingleSampleClampsEveryPercentile) {
  const std::int64_t now = 50 * kSecond;
  m::record_windowed(kHist, 0.0042, now);
  const m::WindowSnapshot w = m::window(kHist, now);
  EXPECT_EQ(w.count, 1u);
  EXPECT_DOUBLE_EQ(w.min, 0.0042);
  EXPECT_DOUBLE_EQ(w.max, 0.0042);
  // The estimate is the bucket's geometric midpoint clamped to [min, max]
  // — with one sample that collapses to the sample itself.
  EXPECT_DOUBLE_EQ(w.p50, 0.0042);
  EXPECT_DOUBLE_EQ(w.p95, 0.0042);
  EXPECT_DOUBLE_EQ(w.p99, 0.0042);
}

TEST_F(WindowFixture, PercentilesTrackKnownDistribution) {
  // 100 samples spread over one decade: 1..100 ms.
  const std::int64_t now = 7 * kSecond;
  for (int i = 1; i <= 100; ++i)
    m::record_windowed(kHist, 1e-3 * i, now);
  const m::WindowSnapshot w = m::window(kHist, now);
  EXPECT_EQ(w.count, 100u);
  EXPECT_DOUBLE_EQ(w.min, 1e-3);
  EXPECT_DOUBLE_EQ(w.max, 0.1);
  EXPECT_NEAR(w.mean(), 0.0505, 1e-12);
  // Log-spaced buckets (kWindowSubBuckets per decade) bound the relative
  // estimation error; a generous 40% envelope keeps this host-independent.
  EXPECT_NEAR(w.p50, 0.050, 0.020);
  EXPECT_NEAR(w.p95, 0.095, 0.038);
  EXPECT_NEAR(w.p99, 0.099, 0.040);
  EXPECT_LE(w.p50, w.p95);
  EXPECT_LE(w.p95, w.p99);
  EXPECT_GE(w.p50, w.min);
  EXPECT_LE(w.p99, w.max);
}

TEST_F(WindowFixture, SamplesExpireAfterWindowSeconds) {
  const std::int64_t t0 = 100 * kSecond;
  m::record_windowed(kHist, 0.5, t0);
  // Visible right away and up to kWindowSeconds - 1 seconds later...
  EXPECT_EQ(m::window(kHist, t0).count, 1u);
  EXPECT_EQ(
      m::window(kHist, t0 + (m::kWindowSeconds - 1) * kSecond).count, 1u);
  // ...gone once its wall second falls out of the window.
  EXPECT_EQ(m::window(kHist, t0 + m::kWindowSeconds * kSecond).count, 0u);
}

TEST_F(WindowFixture, RolloverEvictsOldSecondsButKeepsRecentOnes) {
  const std::int64_t t0 = 200 * kSecond;
  m::record_windowed(kHist, 0.001, t0);                // second 200
  m::record_windowed(kHist, 0.010, t0 + 5 * kSecond);  // second 205
  m::record_windowed(kHist, 0.100, t0 + 9 * kSecond);  // second 209

  // At second 209 everything is inside the 10 s window.
  EXPECT_EQ(m::window(kHist, t0 + 9 * kSecond).count, 3u);

  // At second 210 the first sample expired; at 215 only the last remains.
  m::WindowSnapshot w = m::window(kHist, t0 + 10 * kSecond);
  EXPECT_EQ(w.count, 2u);
  EXPECT_DOUBLE_EQ(w.min, 0.010);
  w = m::window(kHist, t0 + 15 * kSecond);
  EXPECT_EQ(w.count, 1u);
  EXPECT_DOUBLE_EQ(w.max, 0.100);
  EXPECT_EQ(m::window(kHist, t0 + 19 * kSecond).count, 0u);
}

TEST_F(WindowFixture, RingReusesBucketsAcrossWraps) {
  // Write the same ring bucket twice, 10 s apart: the second write must
  // reset the stale second, not accumulate into it.
  const std::int64_t t0 = 300 * kSecond;
  m::record_windowed(kHist, 1.0, t0);
  m::record_windowed(kHist, 2.0, t0 + m::kWindowSeconds * kSecond);
  const m::WindowSnapshot w =
      m::window(kHist, t0 + m::kWindowSeconds * kSecond);
  EXPECT_EQ(w.count, 1u);
  EXPECT_DOUBLE_EQ(w.min, 2.0);
  EXPECT_DOUBLE_EQ(w.max, 2.0);
}

TEST_F(WindowFixture, FutureTimestampedBucketsAreExcluded) {
  // A snapshot strictly before a sample's second must not see it (the
  // window is (now - kWindowSeconds, now], not "any live bucket").
  const std::int64_t t0 = 400 * kSecond;
  m::record_windowed(kHist, 0.25, t0 + 3 * kSecond);
  EXPECT_EQ(m::window(kHist, t0).count, 0u);
  EXPECT_EQ(m::window(kHist, t0 + 3 * kSecond).count, 1u);
}

TEST_F(WindowFixture, FeedsLifetimeHistogramExactlyOnce) {
  const std::int64_t now = 500 * kSecond;
  m::record_windowed(kHist, 0.5, now);
  m::record_windowed(kHist, 0.7, now);
  const m::HistSnapshot lifetime = m::hist(kHist);
  EXPECT_EQ(lifetime.count, 2u);
  EXPECT_DOUBLE_EQ(lifetime.sum, 1.2);
  // reset_window drops the rolling view but not the lifetime histogram.
  m::reset_window(kHist);
  EXPECT_EQ(m::window(kHist, now).count, 0u);
  EXPECT_EQ(m::hist(kHist).count, 2u);
}

TEST_F(WindowFixture, NonPositiveAndHugeSamplesAreNotDropped) {
  const std::int64_t now = 600 * kSecond;
  m::record_windowed(kHist, 0.0, now);
  m::record_windowed(kHist, -3.0, now);
  m::record_windowed(kHist, 1e12, now);
  const m::WindowSnapshot w = m::window(kHist, now);
  EXPECT_EQ(w.count, 3u);
  EXPECT_DOUBLE_EQ(w.min, -3.0);
  EXPECT_DOUBLE_EQ(w.max, 1e12);
  EXPECT_LE(w.p50, w.p99);
}

}  // namespace
