/// Error-path and contract tests for the selected-inversion layer: every
/// FSI_CHECK on the public API boundary must fire for malformed input, and
/// q-randomisation must be uniform enough for the paper's "blocks selected
/// uniformly across a set of Green's functions" purpose.

#include <gtest/gtest.h>

#include <array>

#include "fsi/selinv/fsi.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using dense::index_t;
using dense::Matrix;
using pcyclic::PCyclicMatrix;
using pcyclic::Selection;

TEST(SelinvErrors, WrapRejectsWrongReducedDimensions) {
  util::Rng rng(51);
  PCyclicMatrix m = PCyclicMatrix::random(3, 8, rng);
  pcyclic::BlockOps ops(m);
  Selection sel(8, 4, 0);
  Matrix wrong(5, 5);  // not (b*N)^2 = 6x6
  EXPECT_THROW(selinv::wrap(ops, wrong, pcyclic::Pattern::Columns, sel),
               util::CheckError);
}

TEST(SelinvErrors, WrapRejectsMismatchedSelection) {
  util::Rng rng(52);
  PCyclicMatrix m = PCyclicMatrix::random(3, 8, rng);
  pcyclic::BlockOps ops(m);
  Selection wrong_l(12, 4, 0);  // selection for a different L
  Matrix gtilde(9, 9);          // b=3 blocks of 3x3
  EXPECT_THROW(selinv::wrap(ops, gtilde, pcyclic::Pattern::Columns, wrong_l),
               util::CheckError);
}

TEST(SelinvErrors, FsiRejectsBadClusterSize) {
  util::Rng rng(53);
  PCyclicMatrix m = PCyclicMatrix::random(2, 10, rng);
  selinv::FsiOptions opts;
  opts.c = 4;  // does not divide 10
  opts.q = 0;
  EXPECT_THROW(selinv::fsi(m, opts, rng), util::CheckError);
  opts.c = 0;
  EXPECT_THROW(selinv::fsi(m, opts, rng), util::CheckError);
}

TEST(SelinvErrors, FsiRejectsOutOfRangeQ) {
  util::Rng rng(54);
  PCyclicMatrix m = PCyclicMatrix::random(2, 8, rng);
  selinv::FsiOptions opts;
  opts.c = 4;
  opts.q = 4;  // must be < c
  EXPECT_THROW(selinv::fsi(m, opts, rng), util::CheckError);
}

TEST(SelinvErrors, QRandomisationIsRoughlyUniform) {
  // The paper: "q is chosen in the uniform distribution to allow blocks to
  // be selected uniformly across a set of Green's functions."
  util::Rng rng(55);
  PCyclicMatrix m = PCyclicMatrix::random(2, 8, rng);
  selinv::FsiOptions opts;
  opts.c = 4;
  opts.q = -1;
  opts.pattern = pcyclic::Pattern::Diagonal;

  std::array<int, 4> counts{};
  const int reps = 400;
  for (int r = 0; r < reps; ++r) {
    selinv::FsiStats stats;
    (void)selinv::fsi(m, opts, rng, &stats);
    ASSERT_GE(stats.q, 0);
    ASSERT_LT(stats.q, 4);
    ++counts[static_cast<std::size_t>(stats.q)];
  }
  for (int q = 0; q < 4; ++q) {
    EXPECT_GT(counts[static_cast<std::size_t>(q)], reps / 4 - 60) << "q=" << q;
    EXPECT_LT(counts[static_cast<std::size_t>(q)], reps / 4 + 60) << "q=" << q;
  }
}

TEST(SelinvErrors, StatsPointerIsOptional) {
  util::Rng rng(56);
  PCyclicMatrix m = PCyclicMatrix::random(2, 4, rng);
  selinv::FsiOptions opts;
  opts.c = 2;
  opts.q = 0;
  EXPECT_NO_THROW(selinv::fsi(m, opts, rng, nullptr));
}

TEST(SelinvErrors, AllPatternsSurviveCEqualsL) {
  // Degenerate reduction to a single cluster (b = 1): every pattern must
  // still produce correct block counts and not crash.
  util::Rng rng(57);
  PCyclicMatrix m = PCyclicMatrix::random(3, 6, rng);
  for (auto pat :
       {pcyclic::Pattern::Diagonal, pcyclic::Pattern::SubDiagonal,
        pcyclic::Pattern::Columns, pcyclic::Pattern::Rows,
        pcyclic::Pattern::AllDiagonals}) {
    selinv::FsiOptions opts;
    opts.c = 6;
    opts.q = 0;
    opts.pattern = pat;
    auto s = selinv::fsi(m, opts, rng);
    EXPECT_EQ(s.size(), Selection(6, 6, 0).block_count(pat))
        << pcyclic::pattern_name(pat);
  }
}

}  // namespace
