/// Tests for the multi-pattern FSI driver and the partial-BSOFI
/// equal-time-block helper.

#include <gtest/gtest.h>

#include "fsi/dense/norms.hpp"
#include "fsi/pcyclic/explicit_inverse.hpp"
#include "fsi/selinv/fsi.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using dense::index_t;
using dense::Matrix;
using fsi::testing::expect_close;
using pcyclic::PCyclicMatrix;

TEST(FsiMulti, MatchesSinglePatternRuns) {
  util::Rng rng(91);
  PCyclicMatrix m = PCyclicMatrix::random(5, 12, rng);
  pcyclic::BlockOps ops(m);
  selinv::FsiOptions opts;
  opts.c = 4;
  opts.q = 2;

  const std::vector<pcyclic::Pattern> patterns{
      pcyclic::Pattern::AllDiagonals, pcyclic::Pattern::Rows,
      pcyclic::Pattern::Columns, pcyclic::Pattern::SubDiagonal};
  selinv::FsiStats stats;
  auto multi = selinv::fsi_multi(m, ops, patterns, opts, rng, &stats);
  ASSERT_EQ(multi.size(), patterns.size());
  EXPECT_EQ(stats.q, 2);

  for (std::size_t p = 0; p < patterns.size(); ++p) {
    selinv::FsiOptions single = opts;
    single.pattern = patterns[p];
    auto ref = selinv::fsi(m, ops, single, opts.q >= 0 ? rng : rng);
    ASSERT_EQ(multi[p].size(), ref.size());
    for (const auto& [k, col] : ref.keys())
      expect_close(multi[p].at(k, col), ref.at(k, col), 0.0,
                   pcyclic::pattern_name(patterns[p]));
  }
}

TEST(FsiMulti, SharedReductionCostsOneClsAndBsofi) {
  util::Rng rng(92);
  PCyclicMatrix m = PCyclicMatrix::random(8, 12, rng);
  pcyclic::BlockOps ops(m);
  selinv::FsiOptions opts;
  opts.c = 3;
  opts.q = 0;

  selinv::FsiStats one, three;
  (void)selinv::fsi_multi(m, ops, {pcyclic::Pattern::Diagonal}, opts, rng, &one);
  (void)selinv::fsi_multi(m, ops,
                          {pcyclic::Pattern::Diagonal, pcyclic::Pattern::Rows,
                           pcyclic::Pattern::Columns},
                          opts, rng, &three);
  // CLS and BSOFI flops must be identical — they are shared, not repeated.
  EXPECT_EQ(one.flops_cls, three.flops_cls);
  EXPECT_EQ(one.flops_bsofi, three.flops_bsofi);
  EXPECT_GT(three.flops_wrap, one.flops_wrap);
}

TEST(FsiMulti, EmptyPatternListThrows) {
  util::Rng rng(93);
  PCyclicMatrix m = PCyclicMatrix::random(3, 4, rng);
  pcyclic::BlockOps ops(m);
  selinv::FsiOptions opts;
  opts.c = 2;
  EXPECT_THROW(selinv::fsi_multi(m, ops, {}, opts, rng), util::CheckError);
}

TEST(EqualTimeBlock, MatchesDenseInverseForEveryKAndC) {
  util::Rng rng(94);
  const index_t n = 4, l = 12;
  PCyclicMatrix m = PCyclicMatrix::random(n, l, rng);
  Matrix g = pcyclic::full_inverse_dense(m);
  for (index_t c : {index_t{2}, index_t{3}, index_t{4}, index_t{6}}) {
    for (index_t k = 0; k < l; ++k) {
      Matrix blk = selinv::equal_time_block(m, k, c);
      expect_close(blk, pcyclic::dense_block(g, n, k, k), 1e-9,
                   ("k=" + std::to_string(k) + " c=" + std::to_string(c))
                       .c_str());
    }
  }
}

TEST(EqualTimeBlock, InvalidArgumentsThrow) {
  util::Rng rng(95);
  PCyclicMatrix m = PCyclicMatrix::random(3, 8, rng);
  EXPECT_THROW(selinv::equal_time_block(m, 8, 2), util::CheckError);
  EXPECT_THROW(selinv::equal_time_block(m, 0, 3), util::CheckError);  // 3 ∤ 8
}

}  // namespace
