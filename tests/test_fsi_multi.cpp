/// Tests for the multi-pattern FSI driver and the partial-BSOFI
/// equal-time-block helper.

#include <gtest/gtest.h>

#include "fsi/dense/norms.hpp"
#include "fsi/pcyclic/explicit_inverse.hpp"
#include "fsi/selinv/fsi.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using dense::index_t;
using dense::Matrix;
using fsi::testing::expect_close;
using pcyclic::PCyclicMatrix;

TEST(FsiMulti, MatchesSinglePatternRuns) {
  util::Rng rng(91);
  PCyclicMatrix m = PCyclicMatrix::random(5, 12, rng);
  pcyclic::BlockOps ops(m);
  selinv::FsiOptions opts;
  opts.c = 4;
  opts.q = 2;

  const std::vector<pcyclic::Pattern> patterns{
      pcyclic::Pattern::AllDiagonals, pcyclic::Pattern::Rows,
      pcyclic::Pattern::Columns, pcyclic::Pattern::SubDiagonal};
  selinv::FsiStats stats;
  auto multi = selinv::fsi_multi(m, ops, patterns, opts, rng, &stats);
  ASSERT_EQ(multi.size(), patterns.size());
  EXPECT_EQ(stats.q, 2);

  for (std::size_t p = 0; p < patterns.size(); ++p) {
    selinv::FsiOptions single = opts;
    single.pattern = patterns[p];
    auto ref = selinv::fsi(m, ops, single, opts.q >= 0 ? rng : rng);
    ASSERT_EQ(multi[p].size(), ref.size());
    for (const auto& [k, col] : ref.keys())
      expect_close(multi[p].at(k, col), ref.at(k, col), 0.0,
                   pcyclic::pattern_name(patterns[p]));
  }
}

TEST(FsiMulti, SharedReductionCostsOneClsAndBsofi) {
  util::Rng rng(92);
  PCyclicMatrix m = PCyclicMatrix::random(8, 12, rng);
  pcyclic::BlockOps ops(m);
  selinv::FsiOptions opts;
  opts.c = 3;
  opts.q = 0;

  selinv::FsiStats one, three;
  (void)selinv::fsi_multi(m, ops, {pcyclic::Pattern::Diagonal}, opts, rng, &one);
  (void)selinv::fsi_multi(m, ops,
                          {pcyclic::Pattern::Diagonal, pcyclic::Pattern::Rows,
                           pcyclic::Pattern::Columns},
                          opts, rng, &three);
  // CLS and BSOFI flops must be identical — they are shared, not repeated.
  EXPECT_EQ(one.flops_cls, three.flops_cls);
  EXPECT_EQ(one.flops_bsofi, three.flops_bsofi);
  EXPECT_GT(three.flops_wrap, one.flops_wrap);
}

TEST(FsiMulti, GraphExecutorBitIdenticalToOmpLoops) {
  util::Rng rng(96);
  PCyclicMatrix m = PCyclicMatrix::random(5, 12, rng);
  pcyclic::BlockOps ops(m);
  const std::vector<pcyclic::Pattern> patterns{
      pcyclic::Pattern::AllDiagonals, pcyclic::Pattern::Rows,
      pcyclic::Pattern::Columns};

  selinv::FsiOptions loops;
  loops.c = 4;
  loops.exec = selinv::FsiOptions::Exec::OmpLoops;
  util::Rng rng_loops(7);
  selinv::FsiStats stats_loops;
  const auto ref =
      selinv::fsi_multi(m, ops, patterns, loops, rng_loops, &stats_loops);

  selinv::FsiOptions graph = loops;
  graph.exec = selinv::FsiOptions::Exec::Graph;
  util::Rng rng_graph(7);
  selinv::FsiStats stats_graph;
  const auto got =
      selinv::fsi_multi(m, ops, patterns, graph, rng_graph, &stats_graph);

  // Same rng stream -> same wrapping offset q, and every entry must agree
  // to the last bit: graph nodes run the identical serial kernel sequences
  // on disjoint outputs.
  EXPECT_EQ(stats_graph.q, stats_loops.q);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    ASSERT_EQ(got[p].size(), ref[p].size());
    for (const auto& [k, col] : ref[p].keys())
      expect_close(got[p].at(k, col), ref[p].at(k, col), 0.0,
                   pcyclic::pattern_name(patterns[p]));
  }
  // Graph-mode stage seconds come from node-span sums and must be populated.
  EXPECT_GT(stats_graph.seconds_cls, 0.0);
  EXPECT_GT(stats_graph.seconds_bsofi, 0.0);
  EXPECT_GT(stats_graph.seconds_wrap, 0.0);
  EXPECT_EQ(stats_graph.flops_cls, stats_loops.flops_cls);
  EXPECT_EQ(stats_graph.flops_bsofi, stats_loops.flops_bsofi);
  EXPECT_EQ(stats_graph.flops_wrap, stats_loops.flops_wrap);
}

TEST(FsiMulti, SinglePatternGraphMatchesLoops) {
  util::Rng rng(97);
  PCyclicMatrix m = PCyclicMatrix::random(4, 10, rng);
  pcyclic::BlockOps ops(m);
  selinv::FsiOptions opts;
  opts.c = 5;
  opts.q = 3;
  opts.pattern = pcyclic::Pattern::Columns;

  opts.exec = selinv::FsiOptions::Exec::OmpLoops;
  const auto ref = selinv::fsi(m, ops, opts, rng);
  opts.exec = selinv::FsiOptions::Exec::Graph;
  const auto got = selinv::fsi(m, ops, opts, rng);
  ASSERT_EQ(got.size(), ref.size());
  for (const auto& [k, col] : ref.keys())
    expect_close(got.at(k, col), ref.at(k, col), 0.0, "columns");
}

TEST(FsiMulti, EmptyPatternListThrows) {
  util::Rng rng(93);
  PCyclicMatrix m = PCyclicMatrix::random(3, 4, rng);
  pcyclic::BlockOps ops(m);
  selinv::FsiOptions opts;
  opts.c = 2;
  EXPECT_THROW(selinv::fsi_multi(m, ops, {}, opts, rng), util::CheckError);
}

TEST(EqualTimeBlock, MatchesDenseInverseForEveryKAndC) {
  util::Rng rng(94);
  const index_t n = 4, l = 12;
  PCyclicMatrix m = PCyclicMatrix::random(n, l, rng);
  Matrix g = pcyclic::full_inverse_dense(m);
  for (index_t c : {index_t{2}, index_t{3}, index_t{4}, index_t{6}}) {
    for (index_t k = 0; k < l; ++k) {
      Matrix blk = selinv::equal_time_block(m, k, c);
      expect_close(blk, pcyclic::dense_block(g, n, k, k), 1e-9,
                   ("k=" + std::to_string(k) + " c=" + std::to_string(c))
                       .c_str());
    }
  }
}

TEST(EqualTimeBlock, InvalidArgumentsThrow) {
  util::Rng rng(95);
  PCyclicMatrix m = PCyclicMatrix::random(3, 8, rng);
  EXPECT_THROW(selinv::equal_time_block(m, 8, 2), util::CheckError);
  EXPECT_THROW(selinv::equal_time_block(m, 0, 3), util::CheckError);  // 3 ∤ 8
}

}  // namespace
