/// Tests for the rectangular cases of the blocked getrf (the factorisation
/// core must handle m != n even though the library's drivers are square).

#include <gtest/gtest.h>

#include "fsi/dense/blas.hpp"
#include "fsi/dense/lu.hpp"
#include "fsi/dense/norms.hpp"
#include "testing.hpp"

namespace {

using namespace fsi;
using namespace fsi::dense;
using fsi::testing::expect_close;
using fsi::testing::random_matrix;

/// Reconstruct P^T L U from packed getrf output and compare with A.
void check_reconstruction(const Matrix& a) {
  const index_t m = a.rows(), n = a.cols();
  const index_t k = std::min(m, n);
  Matrix packed = a;
  std::vector<index_t> ipiv;
  getrf(packed, ipiv);
  ASSERT_EQ(ipiv.size(), static_cast<std::size_t>(k));

  // L: m x k unit lower trapezoidal; U: k x n upper trapezoidal.
  Matrix l(m, k), u(k, n);
  for (index_t j = 0; j < k; ++j) {
    l(j, j) = 1.0;
    for (index_t i = j + 1; i < m; ++i) l(i, j) = packed(i, j);
  }
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= std::min(j, k - 1); ++i) u(i, j) = packed(i, j);

  Matrix lu_prod(m, n);
  gemm(Trans::No, Trans::No, 1.0, l, u, 0.0, lu_prod);
  // Undo pivoting (reverse swaps).
  for (index_t i = k - 1; i >= 0; --i) {
    const index_t p = ipiv[static_cast<std::size_t>(i)];
    if (p == i) continue;
    for (index_t c = 0; c < n; ++c) std::swap(lu_prod(i, c), lu_prod(p, c));
  }
  expect_close(lu_prod, a, 1e-11, "P^T L U = A");
}

TEST(LuRect, TallMatrices) {
  util::Rng rng(41);
  check_reconstruction(random_matrix(7, 3, rng));
  check_reconstruction(random_matrix(130, 40, rng));
  check_reconstruction(random_matrix(65, 64, rng));
}

TEST(LuRect, WideMatrices) {
  util::Rng rng(42);
  check_reconstruction(random_matrix(3, 7, rng));
  check_reconstruction(random_matrix(40, 130, rng));
  check_reconstruction(random_matrix(64, 65, rng));
}

TEST(LuRect, SingleRowAndColumn) {
  util::Rng rng(43);
  check_reconstruction(random_matrix(1, 9, rng));
  check_reconstruction(random_matrix(9, 1, rng));
}

TEST(LuRect, PanelBoundaryCrossing) {
  // Sizes straddling the 64-wide LU panel, both orientations.
  util::Rng rng(44);
  check_reconstruction(random_matrix(129, 127, rng));
  check_reconstruction(random_matrix(127, 129, rng));
}

}  // namespace
